// Service: the qtd daemon embedded in-process — the full HTTP/JSON loop
// of the multi-tenant simulation service without leaving one binary.
//
// The example starts the server on a loopback port, then walks the
// three behaviours that make repeated transport calculations cheap:
//
//  1. submit-and-stream: POST /v1/runs?stream=sse returns a live
//     server-sent event stream of the per-iteration telemetry;
//  2. content-addressed caching: resubmitting the identical spec is
//     answered instantly from the cache (no solver slot consumed);
//  3. warm starts: a near-identical spec (same device, different bias)
//     is seeded with the cached converged Σ≷ state and converges in
//     fewer iterations than a cold solve;
//  4. observability: a config.trace=true run leaves a Chrome trace-event
//     artifact behind (GET /v1/runs/{id}/trace, Perfetto-loadable) and
//     every run feeds the Prometheus series on GET /metrics.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"

	"repro/internal/qt"
	"repro/internal/server"
)

func main() {
	svc, err := server.New(server.Config{Slots: 2, QueueCap: 16})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, svc)
	base := "http://" + ln.Addr().String()
	fmt.Println("qtd listening on", base)

	spec := qt.Spec{Atoms: 12, Slabs: 3, Orbitals: 2, EnergyPoints: 12, PhononModes: 3, Bias: 0.3}
	cfg := qt.RunConfig{Spec: spec, MaxIterations: 40, Tolerance: 1e-6}

	// 1. Submit and stream: every frame of the run's telemetry arrives
	// as a server-sent event while the solver iterates.
	fmt.Println("\n-- submit and stream --")
	first := streamRun(base, "acme", cfg)
	fmt.Printf("run %s: converged=%v in %d iterations\n", first.ID, first.Converged, first.Iterations)

	// 2. The identical configuration hashes to the same content address:
	// the answer comes from the cache, instantly, from any tenant.
	fmt.Println("\n-- duplicate spec --")
	dup := submit(base, "other-tenant", cfg)
	fmt.Printf("run %s: status=%s cache_hit=%v source=%s (same current: %.6g)\n",
		dup.ID, dup.Status, dup.CacheHit, dup.SourceRun, dup.Current)

	// 3. A neighbouring bias point shares the warm key: the solver
	// starts from the cached converged Σ≷ state instead of zero.
	fmt.Println("\n-- near-duplicate (warm start) --")
	near := cfg
	near.Spec.Bias = 0.32
	warm := streamRun(base, "acme", near)
	fmt.Printf("run %s: warm_start=%v source=%s, converged in %d iterations (cold run took %d)\n",
		warm.ID, warm.WarmStart, warm.SourceRun, warm.Iterations, first.Iterations)

	// The registry remembers all of it.
	resp, err := http.Get(base + "/v1/runs?tenant=acme")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Runs []server.Record `json:"runs"`
	}
	json.NewDecoder(resp.Body).Decode(&list)
	fmt.Println("\n-- registry (tenant acme) --")
	for _, r := range list.Runs {
		fmt.Printf("%s  %-9s converged=%-5v iters=%d\n", r.ID, r.Status, r.Converged, r.Iterations)
	}

	// 4. A traced run (config.trace=true hashes to its own cache entry)
	// records every BC/RGF/SSE/exchange phase; the artifact is plain
	// Chrome trace-event JSON.
	fmt.Println("\n-- traced run --")
	tcfg := cfg
	tcfg.Trace = true
	tcfg.Ranks = 2
	traced := streamRun(base, "acme", tcfg)
	var chrome struct {
		TraceEvents []struct {
			Cat string `json:"cat"`
		} `json:"traceEvents"`
	}
	getJSON(base+"/v1/runs/"+traced.ID+"/trace", &chrome)
	cats := map[string]int{}
	for _, ev := range chrome.TraceEvents {
		if ev.Cat != "" {
			cats[ev.Cat]++
		}
	}
	fmt.Printf("run %s: %d trace events, spans per category %v\n", traced.ID, len(chrome.TraceEvents), cats)

	// Everything above also moved the Prometheus needles.
	fmt.Println("\n-- /metrics (excerpt) --")
	resp2, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp2.Body.Close()
	sc := bufio.NewScanner(resp2.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "qtd_cache_") || strings.HasPrefix(line, "qtd_warm_starts_total") ||
			strings.HasPrefix(line, "qtd_runs_total") {
			fmt.Println(line)
		}
	}
}

// getJSON fetches and decodes one JSON endpoint.
func getJSON(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}

// submit POSTs one run without streaming and returns the record.
func submit(base, tenant string, cfg qt.RunConfig) server.Record {
	body, _ := json.Marshal(map[string]any{"tenant": tenant, "config": cfg})
	resp, err := http.Post(base+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var rec server.Record
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		log.Fatal(err)
	}
	return rec
}

// streamRun submits with ?stream=sse and consumes the event stream,
// printing each iteration; it returns the final record of the done
// frame.
func streamRun(base, tenant string, cfg qt.RunConfig) server.Record {
	body, _ := json.Marshal(map[string]any{"tenant": tenant, "config": cfg})
	resp, err := http.Post(base+"/v1/runs?stream=sse", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()

	var final server.Record
	event := ""
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := []byte(strings.TrimPrefix(line, "data: "))
			switch event {
			case "iter":
				var st qt.IterStats
				json.Unmarshal(data, &st)
				fmt.Printf("  iter %2d: I = %.8g  Δ = %.2e\n", st.Iter+1, st.Current, st.Residual)
			case "done":
				json.Unmarshal(data, &final)
				return final
			}
		}
	}
	log.Fatal("stream ended without a done frame")
	return final
}
