// Ensemble: the device-zoo workflow at laptop scale — a disordered
// nanowire profile (band-offset step, gate well, substitutional doping,
// bond strain) swept over bias, with every bias point averaged over N
// disorder realizations. Single-realization currents are meaningless in
// the disordered regime; the deliverable is the ensemble mean with its
// 95% confidence interval, reduced Welford-style as members finish.
//
// The study runs in-process through ensemble.Study: realizations fan
// out over the linalg worker budget, member 0 solves cold and donates
// its converged Σ≷ state to warm-start the siblings.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/device"
	"repro/internal/ensemble"
	"repro/internal/qt"
)

func main() {
	profile := &device.Profile{
		Regions: []device.Region{{From: 3, To: 5, Offset: 0.06}},
		Gates:   []device.Gate{{Center: 3.0, Width: 1.2, Depth: 0.05}},
		Doping:  &device.Doping{Fraction: 0.2, Shift: -0.07},
		Strain:  &device.Strain{Amplitude: 0.03},
	}

	const members = 8
	fmt.Printf("disorder-averaged I-V (N=%d realizations per bias)\n\n", members)
	fmt.Println("  bias      <I> ± CI95          std        min..max     converged")

	for _, bias := range []float64{0.05, 0.10, 0.15, 0.20, 0.25} {
		st := &ensemble.Study{
			Spec: qt.Spec{
				Atoms: 24, Slabs: 6, Orbitals: 2,
				EnergyPoints: 20, PhononModes: 3,
				Bias:    bias,
				Profile: profile,
			},
			Members:   members,
			BaseSeed:  4000,
			WarmStart: true, // member 0 donates its Σ≷ state to the rest
			Options:   []qt.Option{qt.WithMaxIterations(25), qt.WithTolerance(1e-5)},
		}
		res, err := st.Run(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		cur := res.Report.Current
		fmt.Printf("  %.2f   %.6g ± %.2g   %.3g   %.5g..%.5g   %d/%d\n",
			bias, cur.Mean, cur.CI95, cur.Std, cur.Min, cur.Max,
			res.Report.Converged, members)
	}

	fmt.Println("\nThe CI shrinks as 1/sqrt(N): rerun with more members to tighten")
	fmt.Println("the bars; identical (profile, seed) members are bitwise-reproducible.")
}
