// Mixedprecision: the §5.4 / Fig. 7 experiment — run the self-consistent
// loop with the SSE phase in emulated half precision, with and without the
// dynamic normalization factors, and compare the convergence of the
// electronic current against the double-precision reference. All three
// trajectories run through the qt facade; the kernel wrapping uses the
// WithSSEKernel escape hatch.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"repro/internal/qt"
	"repro/internal/sse"
)

// unitsScaled pre-scales the SSE inputs to the tiny magnitudes the
// production unit system produces (the paper's Fig. 7a shows Σ≷ values
// down to 1e-21) and undoes the quadratic effect on the outputs — an
// exact identity in fp64 that exposes the fp16 dynamic-range behaviour.
type unitsScaled struct {
	inner sse.Kernel
	scale float64
}

func (u unitsScaled) Name() string { return u.inner.Name() + " (units-scaled)" }

func (u unitsScaled) Compute(in *sse.Input) *sse.Output {
	s := complex(u.scale, 0)
	scaled := &sse.Input{Dev: in.Dev,
		GL: in.GL.Clone(), GG: in.GG.Clone(), DL: in.DL.Clone(), DG: in.DG.Clone()}
	for _, buf := range [][]complex128{scaled.GL.Data, scaled.GG.Data, scaled.DL.Data, scaled.DG.Data} {
		for i := range buf {
			buf[i] *= s
		}
	}
	out := u.inner.Compute(scaled)
	inv := complex(1/(u.scale*u.scale), 0)
	for _, buf := range [][]complex128{out.SigL.Data, out.SigG.Data, out.PiL.Data, out.PiG.Data} {
		for i := range buf {
			buf[i] *= inv
		}
	}
	return out
}

func main() {
	spec := qt.Spec{
		Atoms: 16, Slabs: 4, Orbitals: 2,
		EnergyPoints: 20, PhononModes: 3,
		Coupling: 0.12,
	}
	const iters = 12

	run := func(k sse.Kernel) []float64 {
		sim, err := qt.New(spec,
			qt.WithSSEKernel(k),
			qt.WithMaxIterations(iters),
			qt.WithTolerance(1e-300), // fixed iteration count for comparable trajectories
		)
		if err != nil {
			log.Fatal(err)
		}
		r, err := sim.Start(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		res, err := r.Wait()
		if err != nil {
			log.Fatal(err)
		}
		out := make([]float64, len(res.Trace))
		for i, it := range res.Trace {
			out[i] = it.Current
		}
		return out
	}

	const units = 1e-7 // production-unit magnitude emulation
	fmt.Println("running fp64 reference...")
	ref := run(unitsScaled{sse.DaCe{}, units})
	fmt.Println("running fp16 with normalization...")
	norm := run(unitsScaled{sse.Mixed{Normalize: true}, units})
	fmt.Println("running fp16 without normalization...")
	raw := run(unitsScaled{sse.Mixed{Normalize: false}, units})

	fmt.Printf("\n%-6s %-14s %-14s %-14s %-12s %-12s\n",
		"iter", "fp64", "fp16+norm", "fp16 raw", "err(norm)", "err(raw)")
	for i := range ref {
		fmt.Printf("%-6d %-14.8f %-14.8f %-14.8f %-12.2e %-12.2e\n",
			i+1, ref[i], norm[i], raw[i],
			relErr(norm[i], ref[i]), relErr(raw[i], ref[i]))
	}

	last := len(ref) - 1
	fmt.Printf("\nconverged current, relative to fp64:\n")
	fmt.Printf("  with normalization:    %.2e   (paper: 1.2e-6)\n", relErr(norm[last], ref[last]))
	fmt.Printf("  without normalization: %.2e   (paper: 3e-3)\n", relErr(raw[last], ref[last]))
	fmt.Println("\nnormalization computes per-tensor power-of-two factors from the")
	fmt.Println("magnitudes of ∇H, G≷ and D≷, clamps outliers into the binary16")
	fmt.Println("range, and denormalizes the accumulated Σ≷ algebraically (§5.4).")
}

func relErr(a, b float64) float64 { return math.Abs(a-b) / math.Abs(b) }
