// Quickstart: the canonical use of the qt facade — a complete
// self-consistent electro-thermal simulation is three lines:
//
//	sim, _ := qt.New(qt.Spec{Atoms: 24, Slabs: 6, Orbitals: 2})
//	run, _ := sim.Start(context.Background())
//	res, _ := run.Wait()
//
// Everything else — the ballistic limit, per-iteration telemetry, and
// the I-V sweep driver — hangs off the same two types.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/qt"
)

func main() {
	ctx := context.Background()

	// A 24-atom FinFET slice: 6 slabs of 4 atoms, 2 orbitals per atom.
	sim, err := qt.New(qt.Spec{Atoms: 24, Slabs: 6, Orbitals: 2})
	if err != nil {
		log.Fatal(err)
	}
	run, err := sim.Start(ctx)
	if err != nil {
		log.Fatal(err)
	}
	res, err := run.Wait()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("self-consistent solve: converged=%v in %d iterations\n", res.Converged, res.Iterations)
	fmt.Printf("  current: %.6g (a.u.), hottest slab: %.1f K at slab %d\n",
		res.Current, res.MaxTemperature, res.HotSpot)

	// One GF phase with zero scattering self-energies = ballistic limit.
	obs, err := sim.Ballistic()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nballistic transport at Vds = %.2f V:\n", sim.Spec.Bias)
	fmt.Printf("  source current:  %.6g (a.u.)\n", obs.CurrentL)
	fmt.Printf("  drain current:   %.6g (conservation: sum %.2e)\n",
		obs.CurrentR, obs.CurrentL+obs.CurrentR)
	fmt.Printf("  energy current:  %.6g\n", obs.EnergyCurrentL)

	fmt.Println("\ncurrent through each slab interface (must be flat without scattering):")
	for i, j := range obs.InterfaceCurrent {
		fmt.Printf("  interface %d: %.6g\n", i, j)
	}

	// An I-V characteristic through the Sweep driver: one spec fanned
	// across the bias axis (a smaller structure keeps the sweep quick).
	fmt.Println("\nI-V characteristic (self-consistent, 5 iterations/point):")
	points, err := qt.Sweep{
		Spec:    qt.Spec{Atoms: 16, Slabs: 4, Orbitals: 2, EnergyPoints: 16, PhononModes: 3},
		Options: []qt.Option{qt.WithMaxIterations(5)},
		Bias:    []float64{0.0, 0.1, 0.2, 0.3, 0.4, 0.5},
	}.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, pt := range points {
		fmt.Printf("  Vds = %.1f V  ->  I = %.6g\n", pt.Bias, pt.Result.Current)
	}
}
