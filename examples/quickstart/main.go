// Quickstart: build a synthetic nano-device, solve the ballistic Green's
// functions once, and print the current-voltage behaviour — the minimal
// end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	"repro/internal/device"
	"repro/internal/negf"
)

func main() {
	// A 24-atom FinFET slice: 6 slabs of 4 atoms, 2 orbitals per atom.
	params := device.TestParams(24, 6, 2)
	params.Vds = 0.3 // 0.3 V drain-source bias

	dev, err := device.Build(params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built device: %d atoms, %d slabs, block size %d, up to %d neighbours/atom\n",
		params.Na, params.Bnum, params.ElBlockSize(), dev.MaxNb())

	// One GF phase with zero scattering self-energies = ballistic limit.
	solver := negf.New(dev, negf.DefaultOptions())
	if err := solver.GFPhase(); err != nil {
		log.Fatal(err)
	}
	obs := solver.Obs

	fmt.Printf("\nballistic transport at Vds = %.2f V:\n", params.Vds)
	fmt.Printf("  source current:  %.6g (a.u.)\n", obs.CurrentL)
	fmt.Printf("  drain current:   %.6g (conservation: sum %.2e)\n",
		obs.CurrentR, obs.CurrentL+obs.CurrentR)
	fmt.Printf("  energy current:  %.6g\n", obs.EnergyCurrentL)

	fmt.Println("\ncurrent through each slab interface (must be flat without scattering):")
	for i, j := range obs.InterfaceCurrent {
		fmt.Printf("  interface %d: %.6g\n", i, j)
	}

	// A small I-V sweep.
	fmt.Println("\nI-V characteristic:")
	for _, v := range []float64{0.0, 0.1, 0.2, 0.3, 0.4, 0.5} {
		p := params
		p.Vds = v
		d := device.MustBuild(p)
		s := negf.New(d, negf.DefaultOptions())
		if err := s.GFPhase(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  Vds = %.1f V  ->  I = %.6g\n", v, s.Obs.CurrentL)
	}
}
