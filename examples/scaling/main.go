// Scaling: the communication-avoidance study (§5.2, Fig. 5) — run the SSE
// phase under the original momentum×energy decomposition and under the
// communication-avoiding atom×energy tiling, on the same simulated MPI
// fabric, and compare the measured traffic with the analytic model that
// reproduces Tables 4–5 at paper scale.
package main

import (
	"fmt"
	"log"
	"math/cmplx"

	"repro/internal/comm"
	"repro/internal/decomp"
	"repro/internal/device"
	"repro/internal/model"
	"repro/internal/qt"
	"repro/internal/sse"
)

func main() {
	dev, err := qt.Spec{
		Atoms: 24, Slabs: 4, Orbitals: 2,
		EnergyPoints: 16, PhononModes: 4,
	}.Build()
	if err != nil {
		log.Fatal(err)
	}

	in := sse.RandomInput(dev, 11)
	reference := (sse.DaCe{}).Compute(in)

	fmt.Println("distributed SSE: measured bytes on the simulated fabric")
	fmt.Printf("%-8s %-14s %-14s %-11s %-10s\n", "ranks", "OMEN [B]", "DaCe [B]", "reduction", "max err")
	for _, ranks := range []int{2, 4, 8} {
		_, so, err := decomp.RunOMEN(comm.NewWorld(ranks), in, ranks)
		if err != nil {
			log.Fatal(err)
		}
		outD, sd, err := decomp.RunDaCe(comm.NewWorld(ranks), in, ranks/2, 2)
		if err != nil {
			log.Fatal(err)
		}
		var mx float64
		for i := range outD.SigL.Data {
			if d := cmplx.Abs(outD.SigL.Data[i] - reference.SigL.Data[i]); d > mx {
				mx = d
			}
		}
		fmt.Printf("%-8d %-14d %-14d %-11.1fx %-10.1e\n",
			ranks, so.BytesSent, sd.BytesSent,
			float64(so.BytesSent)/float64(sd.BytesSent), mx)
	}

	fmt.Println("\nthe same comparison at paper scale (analytic, Table 4):")
	fmt.Printf("%-14s %-12s %-12s %-10s\n", "Nkz (procs)", "OMEN [TiB]", "DaCe [TiB]", "reduction")
	for _, r := range model.Table4([]int{3, 7, 11}) {
		fmt.Printf("%-2d (%d)      %-12.2f %-12.2f %.0fx\n", r.Nkz, r.Procs, r.OMENTiB, r.DaCeTiB, r.Ratio)
	}

	p := device.Small(7)
	fmt.Printf("\nMPI invocations per iteration: OMEN %d vs DaCe %d (constant)\n",
		model.OMENMPIInvocations(p, p.NE), model.DaCeMPIInvocations())
}
