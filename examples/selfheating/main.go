// Selfheating: the paper's headline physics (Figs. 1d and 11) at laptop
// scale — a full self-consistent electro-thermal simulation with
// electron-phonon scattering, showing Joule heating inside the channel,
// the electron/phonon energy-current exchange, and the energy-conservation
// check that validates the coupled GF+SSE implementation (§8.1).
//
// The run executes through the qt facade with the per-iteration
// telemetry stream consumed live — the convergence trace prints while
// the solver works.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"repro/internal/qt"
)

func main() {
	sim, err := qt.New(qt.Spec{
		Atoms: 24, Slabs: 6, Orbitals: 2,
		EnergyPoints: 24, PhononModes: 4,
		Bias:     0.4,
		Coupling: 0.12, // strong electron-phonon coupling: visible heating
	}, qt.WithMaxIterations(20))
	if err != nil {
		log.Fatal(err)
	}

	run, err := sim.Start(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	// The telemetry stream delivers one unified IterStats per iteration
	// while the solver runs.
	fmt.Println("self-consistent Born loop (streamed):")
	for it := range run.Stats() {
		fmt.Printf("  iter %2d: I = %.8g   Δ = %.2e\n", it.Iter+1, it.Current, it.Residual)
	}
	res, err := run.Wait()
	if err != nil {
		log.Fatal(err)
	}
	obs := res.Observables
	fmt.Printf("converged=%v after %d iterations, final Δ = %.2e\n",
		res.Converged, res.Iterations, res.Trace[len(res.Trace)-1].Residual)

	// §8.1: "As their sum is constant over the entire FinFET axis x, it
	// can be inferred that energy is conserved and that the GF+SSE model
	// was correctly implemented."
	fmt.Println("\nenergy currents along x (electron / phonon / total):")
	tot := obs.TotalEnergyCurrent()
	for i := range tot {
		fmt.Printf("  x=%d: %+.5g  %+.5g  ->  %+.5g\n",
			i, obs.InterfaceEnergyCurrent[i], obs.PhononInterfaceEnergy[i], tot[i])
	}
	fmt.Printf("collision-integral balance: electron loss %.5g vs phonon gain %.5g (%.0f%% agreement)\n",
		obs.ElectronEnergyLoss, obs.PhononEnergyGain,
		100*(1-math.Abs(obs.ElectronEnergyLoss-obs.PhononEnergyGain)/
			math.Max(obs.ElectronEnergyLoss, obs.PhononEnergyGain)))

	// The temperature profile: heating peaks inside the channel where the
	// field is strongest, and decays toward the contacts that absorb the
	// heat (Fig. 1d).
	fmt.Println("\nlattice temperature along the channel:")
	tc := sim.Spec.Temperature
	for i, t := range obs.SlabTemperature(sim.Device) {
		bar := int((t - tc) * 2)
		if bar < 0 {
			bar = 0
		}
		fmt.Printf("  slab %d: %6.1f K %s\n", i, t, stars(bar))
	}
	fmt.Printf("hot spot: %.1f K at slab %d (contacts held at %.0f K)\n",
		res.MaxTemperature, res.HotSpot, tc)

	fmt.Println("\ndissipated power per slab (P_diss of Fig. 11):")
	for i, p := range obs.DissipatedPower {
		fmt.Printf("  slab %d: %+.5g\n", i, p)
	}

	// Spectral current: carried inside the bias window.
	fmt.Println("\nspectral distribution of the source current:")
	var jMax float64
	for _, j := range obs.SpectralCurrent {
		jMax = math.Max(jMax, math.Abs(j))
	}
	for ie, j := range obs.SpectralCurrent {
		if math.Abs(j) < 0.02*jMax {
			continue
		}
		fmt.Printf("  E = %+0.2f eV: %-40s %.4g\n",
			sim.Device.P.Energy(ie), stars(int(30*math.Abs(j)/jMax)), j)
	}
}

func stars(n int) string {
	if n > 60 {
		n = 60
	}
	s := ""
	for i := 0; i < n; i++ {
		s += "*"
	}
	return s
}
