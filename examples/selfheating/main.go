// Selfheating: the paper's headline physics (Figs. 1d and 11) at laptop
// scale — a full self-consistent electro-thermal simulation with
// electron-phonon scattering, showing Joule heating inside the channel,
// the electron/phonon energy-current exchange, and the energy-conservation
// check that validates the coupled GF+SSE implementation (§8.1).
package main

import (
	"errors"
	"fmt"
	"log"
	"math"

	"repro/internal/device"
	"repro/internal/negf"
)

func main() {
	params := device.TestParams(24, 6, 2)
	params.NE = 24
	params.Nomega = 4
	params.Vds = 0.4
	params.Coupling = 0.12 // strong electron-phonon coupling: visible heating

	dev, err := device.Build(params)
	if err != nil {
		log.Fatal(err)
	}

	opts := negf.DefaultOptions()
	opts.MaxIter = 20
	solver := negf.New(dev, opts)
	obs, err := solver.Run()
	if err != nil && !errors.Is(err, negf.ErrNotConverged) {
		log.Fatal(err)
	}
	fmt.Printf("self-consistent Born loop: %d iterations, final Δ = %.2e\n",
		len(solver.IterTrace), solver.IterTrace[len(solver.IterTrace)-1].RelChange)

	// §8.1: "As their sum is constant over the entire FinFET axis x, it
	// can be inferred that energy is conserved and that the GF+SSE model
	// was correctly implemented."
	fmt.Println("\nenergy currents along x (electron / phonon / total):")
	tot := obs.TotalEnergyCurrent()
	for i := range tot {
		fmt.Printf("  x=%d: %+.5g  %+.5g  ->  %+.5g\n",
			i, obs.InterfaceEnergyCurrent[i], obs.PhononInterfaceEnergy[i], tot[i])
	}
	fmt.Printf("collision-integral balance: electron loss %.5g vs phonon gain %.5g (%.0f%% agreement)\n",
		obs.ElectronEnergyLoss, obs.PhononEnergyGain,
		100*(1-math.Abs(obs.ElectronEnergyLoss-obs.PhononEnergyGain)/
			math.Max(obs.ElectronEnergyLoss, obs.PhononEnergyGain)))

	// The temperature profile: heating peaks inside the channel where the
	// field is strongest, and decays toward the contacts that absorb the
	// heat (Fig. 1d).
	fmt.Println("\nlattice temperature along the channel:")
	temps := obs.SlabTemperature(dev)
	tMax, xMax := 0.0, 0
	for i, t := range temps {
		bar := int((t - params.TC) * 2)
		if bar < 0 {
			bar = 0
		}
		fmt.Printf("  slab %d: %6.1f K %s\n", i, t, stars(bar))
		if t > tMax {
			tMax, xMax = t, i
		}
	}
	fmt.Printf("hot spot: %.1f K at slab %d (contacts held at %.0f K)\n", tMax, xMax, params.TC)

	fmt.Println("\ndissipated power per slab (P_diss of Fig. 11):")
	for i, p := range obs.DissipatedPower {
		fmt.Printf("  slab %d: %+.5g\n", i, p)
	}

	// Spectral current: carried inside the bias window.
	fmt.Println("\nspectral distribution of the source current:")
	var jMax float64
	for _, j := range obs.SpectralCurrent {
		jMax = math.Max(jMax, math.Abs(j))
	}
	for ie, j := range obs.SpectralCurrent {
		if math.Abs(j) < 0.02*jMax {
			continue
		}
		fmt.Printf("  E = %+0.2f eV: %-40s %.4g\n",
			params.Energy(ie), stars(int(30*math.Abs(j)/jMax)), j)
	}
}

func stars(n int) string {
	if n > 60 {
		n = 60
	}
	s := ""
	for i := 0; i < n; i++ {
		s += "*"
	}
	return s
}
