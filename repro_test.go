package repro

import (
	"math"
	"testing"

	"repro/internal/bc"
	"repro/internal/negf"
	"repro/internal/sse"
)

// Correctness counterparts of the ablation benchmarks: the design knobs
// the benchmarks time must not change the physics. These are the root
// package's real tests (it otherwise holds only benchmarks).

// TestAblationCacheModesAgree: the §7.1.2 boundary-condition cache is a
// pure memoization — NoCache and CacheBC must produce identical currents
// and observables, warm or cold.
func TestAblationCacheModesAgree(t *testing.T) {
	run := func(mode bc.Mode) *negf.Solver {
		dev := benchDevice()
		opts := negf.DefaultOptions()
		opts.CacheMode = mode
		s := negf.New(dev, opts)
		if err := s.GFPhase(); err != nil {
			t.Fatal(err)
		}
		s.SSEPhase()
		if err := s.GFPhase(); err != nil { // warm-cache pass
			t.Fatal(err)
		}
		return s
	}
	plain, cached := run(bc.NoCache), run(bc.CacheBC)
	if plain.Obs.CurrentL != cached.Obs.CurrentL {
		t.Errorf("cache changed the current: %.17g vs %.17g",
			cached.Obs.CurrentL, plain.Obs.CurrentL)
	}
	for i := range plain.Obs.InterfaceCurrent {
		if plain.Obs.InterfaceCurrent[i] != cached.Obs.InterfaceCurrent[i] {
			t.Errorf("cache changed interface current %d", i)
		}
	}
}

// TestAblationSSEWorkerCountInvariant: the SSE map parallelism the
// worker-scaling benchmarks sweep must not change the self-energies —
// each worker writes only atom-owned regions, so any worker count gives
// bitwise-identical output.
func TestAblationSSEWorkerCountInvariant(t *testing.T) {
	in := benchInput()
	ref := func() *sse.Output {
		old := sse.SetWorkers(1)
		defer sse.SetWorkers(old)
		return (sse.DaCe{}).Compute(in)
	}()
	for _, workers := range []int{2, 4} {
		old := sse.SetWorkers(workers)
		out := (sse.DaCe{}).Compute(in)
		sse.SetWorkers(old)
		for i, v := range out.SigL.Data {
			if v != ref.SigL.Data[i] {
				t.Fatalf("workers=%d: SigL[%d] differs", workers, i)
			}
		}
		for i, v := range out.PiL.Data {
			if v != ref.PiL.Data[i] {
				t.Fatalf("workers=%d: PiL[%d] differs", workers, i)
			}
		}
	}
}

// TestAblationMixedKernelTracksFP64: the mixed-precision ablation config
// the benchmarks and Fig. 7 exercise — with normalization the kernel
// must track the fp64 result to the quantization level, without it the
// subnormal-magnitude Green's functions must visibly degrade.
func TestAblationMixedKernelTracksFP64(t *testing.T) {
	in := benchInput()
	ref := (sse.DaCe{}).Compute(in)
	mix := (sse.Mixed{Normalize: true}).Compute(in)
	var dev, scale float64
	for i, r := range ref.SigL.Data {
		if a := math.Max(math.Abs(real(r)), math.Abs(imag(r))); a > scale {
			scale = a
		}
		d := mix.SigL.Data[i] - r
		if a := math.Max(math.Abs(real(d)), math.Abs(imag(d))); a > dev {
			dev = a
		}
	}
	if rel := dev / scale; rel > 5e-3 {
		t.Errorf("normalized mixed kernel deviates by %g (tol 5e-3)", rel)
	}
}
