package main

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/model"
	"repro/internal/staging"
)

// runTable3 — single-iteration computational load (Pflop), Small structure.
func runTable3(bool) {
	header("Table 3: Single Iteration Computational Load (Pflop), Small structure")
	row("Kernel \\ Nkz", "3", "5", "7", "9", "11")
	rows := model.Table3([]int{3, 5, 7, 9, 11})
	line := func(name string, sel func(model.Table3Row) float64, paper []float64) {
		cols := []string{name}
		for _, r := range rows {
			cols = append(cols, f2(sel(r)))
		}
		row(cols...)
		cols = []string{"  (paper)"}
		for _, p := range paper {
			cols = append(cols, f2(p))
		}
		row(cols...)
	}
	line("Boundary Cond.", func(r model.Table3Row) float64 { return r.BC }, []float64{8.45, 14.12, 19.77, 25.42, 31.06})
	line("RGF", func(r model.Table3Row) float64 { return r.RGF }, []float64{52.95, 88.25, 123.55, 158.85, 194.15})
	line("SSE (OMEN)", func(r model.Table3Row) float64 { return r.SSEOMEN }, []float64{24.41, 67.80, 132.89, 219.67, 328.15})
	line("SSE (DaCe)", func(r model.Table3Row) float64 { return r.SSEDaCe }, []float64{12.38, 34.19, 66.85, 110.36, 164.71})
}

// runTable4 — SSE communication volume, weak scaling (TiB).
func runTable4(bool) {
	header("Table 4: SSE Communication Volume, Weak Scaling (TiB), Small structure")
	row("Nkz (procs)", "OMEN", "(paper)", "DaCe", "(paper)", "reduction")
	paperO := []float64{32.11, 89.18, 174.80, 288.95, 431.65}
	paperD := []float64{0.54, 1.22, 2.17, 3.38, 4.86}
	for i, r := range model.Table4([]int{3, 5, 7, 9, 11}) {
		row(fmt.Sprintf("%d (%d)", r.Nkz, r.Procs),
			f2(r.OMENTiB), f2(paperO[i]), f2(r.DaCeTiB), f2(paperD[i]),
			fmt.Sprintf("%.0fx", r.Ratio))
	}
}

// runTable5 — SSE communication volume, strong scaling (TiB).
func runTable5(bool) {
	header("Table 5: SSE Communication Volume, Strong Scaling (TiB), Small, Nkz=7")
	row("Processes", "OMEN", "(paper)", "DaCe", "(paper)", "reduction")
	paperO := []float64{108.24, 117.75, 136.76, 174.80, 212.84}
	paperD := []float64{0.95, 1.13, 1.48, 2.17, 2.87}
	for i, r := range model.Table5([]int{224, 448, 896, 1792, 2688}) {
		row(fmt.Sprintf("%d", r.Procs),
			f2(r.OMENTiB), f2(paperO[i]), f2(r.DaCeTiB), f2(paperD[i]),
			fmt.Sprintf("%.0fx", r.Ratio))
	}
	ex := model.WorkedExample()
	fmt.Println("\n§6.1.2 worked example (Large, NE=1000):")
	fmt.Printf("  OMEN D≷/Π≷ per process: %.0f GiB (paper: 276 GiB)\n", ex.OMENDPerProcessGiB)
	fmt.Printf("  OMEN G≷ replication:    %.2f PiB (paper: 2.58 PiB)\n", ex.OMENGTotalPiB)
	fmt.Printf("  DaCe D≷ halo/process:   %.2f MiB (paper: 28.26 MiB)\n", ex.DaCeDPerProcMiB)
	fmt.Printf("  DaCe G≷ distributed:    %.2f TiB (paper: 1.8 TiB)\n", ex.DaCeGTotalTiB)
	p := device.Small(7)
	fmt.Printf("  MPI invocations: OMEN %d per iteration vs DaCe %d\n",
		model.OMENMPIInvocations(p, p.NE), model.DaCeMPIInvocations())
}

// runTable11 — full-scale 10,240-atom run breakdown.
func runTable11(bool) {
	header("Table 11: Full-Scale 10,240-Atom Run Breakdown (4,560 Summit nodes, model)")
	r := model.Table11()
	row("Phase", "Time [s]", "Eflop", "Pflop/s", "(paper t)", "(paper Eflop)")
	row("Data Ingestion", f2(r.Ingestion), "-", "-", "31.10", "-")
	row("GF (RGF)", f2(r.Double.GFSec), f2(r.Double.GFEflop),
		f1(r.Double.GFEflop*1000/r.Double.GFSec), "41.36", "6.00")
	row("SSE (double)", f2(r.Double.SSESec), f2(r.Double.SSEEflop),
		f1(r.Double.SSEEflop*1000/r.Double.SSESec), "41.91", "2.18")
	row("SSE (mixed)", f2(r.Mixed.SSESec), f2(r.Mixed.SSEEflop), "-", "36.16", "2.18")
	row("Communication", f2(r.Double.CommSec), "-", "-", "11.50", "-")
	row("Total (double)", f2(r.Double.TotalSec), f2(r.Double.UsefulEflop),
		f1(r.Double.SustainedPflops), "94.77", "8.17")
	row("Total (mixed)", f2(r.Mixed.TotalSec), f2(r.Mixed.UsefulEflop),
		f1(r.Mixed.SustainedPflops), "89.02", "8.17")
	fmt.Printf("\nSustained: %.1f Pflop/s double (paper 86.26), %.1f mixed (paper 91.68)\n",
		r.Double.SustainedPflops, r.Mixed.SustainedPflops)
	fmt.Printf("%% of HPL: %.1f%% (paper 58.05%%), %% of peak: %.1f%% (paper 42.96%%)\n",
		r.PctOfHPL, r.PctOfPeak)
}

// runTable12 — per-atom performance comparison.
func runTable12(bool) {
	header("Table 12: Per-Atom Performance (P=6,840 GPUs, Nkz=21, NE=1,220)")
	row("Variant", "Na", "Time [s]", "Time/Atom [s]", "Speedup")
	rows := model.Table12()
	base := rows[0].TimePerAtom
	for _, r := range rows {
		row(r.Variant, fmt.Sprintf("%d", r.Na), f1(r.TimeSec),
			fmt.Sprintf("%.3f", r.TimePerAtom), fmt.Sprintf("%.1fx", base/r.TimePerAtom))
	}
	fmt.Println("(paper: OMEN 4,695.7 s / 4.413 s-per-atom; DaCe 333.36 s / 0.033; 140.9x)")
}

// runFigure8 — scaling model series.
func runFigure8(bool) {
	header("Figure 8: Strong & Weak Scaling, OMEN vs DaCe (model)")
	for _, m := range []model.Machine{model.PizDaint(), model.Summit()} {
		fmt.Printf("\n-- %s, strong scaling (Small, Nkz=7), per-iteration seconds --\n", m.Name)
		row("GPUs", "OMEN comp", "OMEN comm", "DaCe comp", "DaCe comm", "speedup")
		var gpus []int
		if m.Name == "Piz Daint" {
			gpus = []int{100, 300, 1000, 2000, 5300}
		} else {
			gpus = []int{114, 500, 1000, 1400}
		}
		for _, pt := range model.StrongScaling(m, gpus) {
			row(fmt.Sprintf("%d", pt.GPUs),
				f1(pt.OMEN.TotalSec-pt.OMEN.CommSec), f1(pt.OMEN.CommSec),
				f1(pt.DaCe.TotalSec-pt.DaCe.CommSec), f1(pt.DaCe.CommSec),
				fmt.Sprintf("%.1fx", pt.Speedup))
		}
		fmt.Printf("\n-- %s, weak scaling (Nkz grows with allocation) --\n", m.Name)
		row("Nkz", "GPUs", "OMEN total", "DaCe total", "speedup")
		for i, pt := range model.WeakScaling(m, []int{3, 5, 7, 9, 11}) {
			row(fmt.Sprintf("%d", []int{3, 5, 7, 9, 11}[i]), fmt.Sprintf("%d", pt.GPUs),
				f1(pt.OMEN.TotalSec), f1(pt.DaCe.TotalSec), fmt.Sprintf("%.1fx", pt.Speedup))
		}
	}
	fmt.Println("\n(paper: up to 16.3x total speedup on Piz Daint, 24.5x on Summit)")
}

// runFigure9 — extreme-scale strong scaling.
func runFigure9(bool) {
	header("Figure 9: Strong Scaling on Summit, Large structure, Nkz=21 (model)")
	row("GPUs", "No Cache", "Cache BC", "BC+Spec", "Mixed", "% of HPL")
	for _, pt := range model.Figure9([]int{3420, 6840, 13680, 27360}) {
		row(fmt.Sprintf("%d", pt.GPUs),
			f1(pt.Double[model.NoCache].SustainedPflops),
			f1(pt.Double[model.CacheBC].SustainedPflops),
			f1(pt.Double[model.CacheBCSpec].SustainedPflops),
			f1(pt.MixedPflops),
			f1(pt.PctOfHPL))
	}
	fmt.Println("(paper, double precision: 11.53 [63%], 28.23 [77%], 47.31 [64%], 86.26 [59%] Pflop/s)")
}

// runFigure10 — roofline.
func runFigure10(bool) {
	header("Figure 10: Roofline of the Computational Kernels (V100)")
	row("Kernel", "OI [F/B]", "Attainable", "Achieved", "Bound")
	for _, pt := range model.Roofline(device.Large(21)) {
		row(pt.Kernel, f2(pt.Intensity),
			fmt.Sprintf("%.2f Tflop/s", pt.Attainable/1e12),
			fmt.Sprintf("%.2f Tflop/s", pt.Achieved/1e12),
			pt.Bound)
	}
	fmt.Println("(paper: RGF compute-bound near the DP ceiling; SSE-64 and SSE-16 memory-bound under the L2 roof)")
}

// runIngestion — §7.1.1 data-ingestion comparison.
func runIngestion(bool) {
	header("Data Ingestion (§7.1.1): naive parallel reads vs chunked broadcast")
	row("Nodes", "Naive [s]", "Staged [s]", "Speedup")
	for _, r := range staging.Compare([]int{100, 1000, 2589, 4560, 5300}) {
		row(fmt.Sprintf("%d", r.Nodes), f1(r.NaiveSec), f1(r.StagedSec), fmt.Sprintf("%.0fx", r.Speedup))
	}
	fmt.Println("(paper: 1,112 s at 2,589 nodes naive; >30 min near full scale; 31.1 s staged at 4,560 nodes)")
}
