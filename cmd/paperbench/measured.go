package main

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/batch"
	"repro/internal/comm"
	"repro/internal/decomp"
	"repro/internal/device"
	"repro/internal/linalg"
	"repro/internal/model"
	"repro/internal/negf"
	"repro/internal/qt"
	"repro/internal/sparse"
	"repro/internal/sse"
	"repro/internal/stream"
)

// timeIt runs f repeatedly until ~80 ms elapse and returns the per-call time.
func timeIt(f func()) time.Duration {
	f() // warm-up
	var n int
	start := time.Now()
	for time.Since(start) < 80*time.Millisecond {
		f()
		n++
	}
	return time.Since(start) / time.Duration(n)
}

// measuredSpec is the scaled-down structure used by the measured tables.
func measuredSpec(quick bool) qt.Spec {
	spec := qt.Spec{Atoms: 24, Slabs: 4, Orbitals: 3, EnergyPoints: 24, PhononModes: 4}
	if quick {
		spec = qt.Spec{Atoms: 12, Slabs: 3, Orbitals: 2, EnergyPoints: 12, PhononModes: 3}
	}
	return spec
}

// measuredDevice builds the scaled-down device used by the measured tables.
func measuredDevice(quick bool) *device.Device {
	dev, err := measuredSpec(quick).Build()
	if err != nil {
		panic(err)
	}
	return dev
}

// facadeTrace runs one facade configuration for a fixed iteration count
// and returns the per-iteration currents.
func facadeTrace(spec qt.Spec, iters int, opts ...qt.Option) []float64 {
	sim, err := qt.New(spec, append([]qt.Option{
		qt.WithMaxIterations(iters), qt.WithTolerance(1e-300),
	}, opts...)...)
	if err != nil {
		panic(err)
	}
	run, err := sim.Start(context.Background())
	if err != nil {
		panic(err)
	}
	res, err := run.Wait()
	if err != nil {
		panic(err)
	}
	tr := make([]float64, len(res.Trace))
	for i, it := range res.Trace {
		tr[i] = it.Current
	}
	return tr
}

// runTable6 — CUDA-stream sweep (discrete-event model of the GF pipeline).
func runTable6(bool) {
	header("Table 6: Streams in Green's Functions (copy/compute overlap model)")
	tasks := stream.GFTaskSet(64, 9.32, 0.082)
	row("Streams", "Time [s]", "(paper [s])")
	paper := map[int]float64{1: 10.07, 2: 9.94, 4: 9.86, 16: 9.61, 32: 9.32}
	for _, r := range stream.Sweep(tasks, []int{1, 2, 4, 16, 32}) {
		row(fmt.Sprintf("%d", r.Streams), f2(r.TimeSec), f2(paper[r.Streams]))
	}
}

// runTable7 — sparse/dense multiplication methods on Hamiltonian-shaped
// blocks (measured on this CPU; the paper measures P100/V100).
func runTable7(quick bool) {
	header("Table 7: Matrix Multiplication Performance (measured, CPU)")
	n := 256
	if quick {
		n = 128
	}
	rng := rand.New(rand.NewSource(7))
	// Off-diagonal Hamiltonian blocks couple each atom to the few
	// neighbours in the next slab: ~5% density.
	spD := linalg.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.05 {
				spD.Set(i, j, complex(rng.NormFloat64(), rng.NormFloat64()))
			}
		}
	}
	dn := linalg.New(n, n)
	for i := range dn.Data {
		dn.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	sp := sparse.FromDense(spD, 0)
	spc := sp.ToCSC()

	row("Method", "NN", "NT", "TN", "")
	gNN := timeIt(func() { linalg.Mul(spD, dn) })
	gNT := timeIt(func() { linalg.MatMul(spD, linalg.NoTrans, dn, linalg.Trans) })
	gTN := timeIt(func() { linalg.MatMul(spD, linalg.Trans, dn, linalg.NoTrans) })
	row("GEMM (dense)", gNN.String(), gNT.String(), gTN.String(), "")
	cNN := timeIt(func() { sparse.CSRMM(sp, linalg.NoTrans, dn, linalg.NoTrans) })
	cNT := timeIt(func() { sparse.CSRMM(sp, linalg.NoTrans, dn, linalg.Trans) })
	cTN := timeIt(func() { sparse.CSRMM(sp, linalg.Trans, dn, linalg.NoTrans) })
	row("CSRMM2", cNN.String(), cNT.String(), cTN.String(), "")
	gi := timeIt(func() { sparse.GEMMI(dn, spc) })
	row("GEMMI", gi.String(), "-", "-", "")
	best := cNN
	if cNT < best {
		best = cNT
	}
	if cTN < best {
		best = cTN
	}
	fmt.Printf("\nshape check: sparse kernels beat dense GEMM %.1fx (paper: 6-10x on GPUs).\n",
		float64(gNN)/float64(best))
	fmt.Println("(on GPUs the paper finds NT fastest and TN slowest; CPU cache behaviour reorders the modes)")
}

// runTable8 — the F·gR·E three-matrix product of the RGF inner loop.
func runTable8(quick bool) {
	header("Table 8: 3-Matrix Multiplication Performance (measured, CPU)")
	n := 256
	if quick {
		n = 128
	}
	rng := rand.New(rand.NewSource(8))
	mkSparse := func() *linalg.Matrix {
		m := linalg.New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.05 {
					m.Set(i, j, complex(rng.NormFloat64(), rng.NormFloat64()))
				}
			}
		}
		return m
	}
	fD, eD := mkSparse(), mkSparse()
	g := linalg.New(n, n)
	for i := range g.Data {
		g.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	f := sparse.FromDense(fD, 0)
	eCSC := sparse.FromDense(eD, 0).ToCSC()
	eT := sparse.FromDense(eD, 0).Transpose()

	t1 := timeIt(func() { linalg.Mul(linalg.Mul(fD, g), eD) })
	t2 := timeIt(func() {
		fg := sparse.CSRMM(f, linalg.NoTrans, g, linalg.NoTrans)
		sparse.GEMMI(fg, eCSC)
	})
	t3 := timeIt(func() {
		fg := sparse.CSRMM(f, linalg.NoTrans, g, linalg.NoTrans)
		sparse.CSRMM(eT, linalg.NoTrans, fg, linalg.Trans)
	})
	row("Approach", "Time", "vs best", "")
	best := t3
	row("GEMM/GEMM", t1.String(), fmt.Sprintf("%.1fx", float64(t1)/float64(best)), "")
	row("CSRMM2/GEMMI", t2.String(), fmt.Sprintf("%.1fx", float64(t2)/float64(best)), "")
	row("CSRMM2/CSRMM2", t3.String(), "1.0x", "")
	fmt.Println("(paper: CSRMM2/CSRMM2 best, 5.10-9.74x over the alternatives)")
}

// runTable9 — SBSMM vs padded vendor-style batched GEMM.
func runTable9(quick bool) {
	header("Table 9: Strided Matrix Multiplication Performance (measured, CPU)")
	n, count := 12, 8192
	if quick {
		count = 2048
	}
	rng := rand.New(rand.NewSource(9))
	mk := func(scale float64) []complex128 {
		b := make([]complex128, n*n*count)
		for i := range b {
			b[i] = complex(scale*rng.NormFloat64(), scale*rng.NormFloat64())
		}
		return b
	}
	a, b := mk(1e-4), mk(1e-4)
	c := make([]complex128, n*n*count)

	tPad := timeIt(func() { batch.SBSMMPadded(c, a, b, n, count) })
	tSBS := timeIt(func() { batch.SBSMM(c, a, b, n, count) })
	ha, hb := batch.EncodeHalf(a, n, count), batch.EncodeHalf(b, n, count)
	tHalf := timeIt(func() { batch.SBSMMHalf(c, ha, hb) })

	useful := float64(batch.UsefulFlops(n, count))
	row("Kernel", "Time", "Gflop/s", "useful/executed", "")
	row("Padded (vendor)", tPad.String(),
		f1(useful/tPad.Seconds()/1e9),
		fmt.Sprintf("%.1f%%", 100*useful/float64(batch.PaddedFlops(count))), "")
	row("DaCe SBSMM", tSBS.String(), f1(useful/tSBS.Seconds()/1e9), "100%", "")
	row("SBSMM fp16", tHalf.String(), f1(useful/tHalf.Seconds()/1e9), "100%", "")
	fmt.Printf("\nSBSMM vs padded speedup: %.2fx (paper: 5.76x fp64, 31x fp16 incl. Tensor Cores)\n",
		tPad.Seconds()/tSBS.Seconds())
}

// runTable10 — single-node GF and SSE phase runtimes per variant.
func runTable10(quick bool) {
	header("Table 10: Single-Node Performance, GF and SSE phases (measured)")
	dev := measuredDevice(quick)
	s := negf.New(dev, negf.DefaultOptions())
	gfTime := timeIt(func() {
		if err := s.GFPhase(); err != nil {
			panic(err)
		}
	})
	in := &sse.Input{Dev: dev, GL: s.GL, GG: s.GG, DL: s.DL, DG: s.DG}
	outO := (sse.OMEN{}).Compute(in)
	outD := (sse.DaCe{}).Compute(in)
	tOMEN := timeIt(func() { (sse.OMEN{}).Compute(in) })
	tDaCe := timeIt(func() { (sse.DaCe{}).Compute(in) })
	row("Variant", "GF", "SSE", "SSE matmuls", "")
	row("OMEN kernel", gfTime.String(), tOMEN.String(), fmt.Sprintf("%d", outO.Stats.MatMuls), "")
	row("DaCe kernel", gfTime.String(), tDaCe.String(), fmt.Sprintf("%d", outD.Stats.MatMuls), "")
	fmt.Printf("\nSSE speedup DaCe over OMEN: %.2fx (paper: 9.97x single node, up to 4.8x vs cuBLAS)\n",
		tOMEN.Seconds()/tDaCe.Seconds())
	fmt.Println("(paper also reports a pure-Python baseline 1,000x slower; interpreted dispatch has no Go analogue)")
}

// runCommMeasured — measured SSE communication volumes on the simulated
// MPI runtime, the executable counterpart of Tables 4–5.
func runCommMeasured(quick bool) {
	header("Measured SSE Communication (simulated MPI, scaled-down device)")
	dev := measuredDevice(quick)
	in := sse.RandomInput(dev, 42)

	row("Ranks", "OMEN bytes", "OMEN calls", "DaCe bytes", "DaCe a2a", "reduction")
	for _, ranks := range []int{2, 4, 8} {
		_, so, err := decomp.RunOMEN(comm.NewWorld(ranks), in, ranks)
		if err != nil {
			panic(err)
		}
		ta := ranks
		te := 1
		if ranks%2 == 0 {
			ta, te = ranks/2, 2
		}
		_, sd, err := decomp.RunDaCe(comm.NewWorld(ranks), in, ta, te)
		if err != nil {
			panic(err)
		}
		calls := so.Collectives["Bcast"] + so.Collectives["Reduce"] + so.Sends
		row(fmt.Sprintf("%d", ranks),
			fmt.Sprintf("%d", so.BytesSent), fmt.Sprintf("%d", calls),
			fmt.Sprintf("%d", sd.BytesSent), fmt.Sprintf("%d", sd.Collectives["Alltoallv"]),
			fmt.Sprintf("%.1fx", float64(so.BytesSent)/float64(sd.BytesSent)))
	}
	fmt.Println("\n§7.1.8 bandwidth-bound check (model):")
	fmt.Printf("  D≷/Π≷ exchange at %.1f%% of the injection bound (paper: 84.57%%)\n", model.AlltoallUtilization*100)
	fmt.Printf("  G≷/Σ≷ exchange at %.1f%% (paper: 42.32%%)\n", model.AlltoallUtilizationG*100)
}

// unitsScaled wraps an SSE kernel, pre-scaling the Green's-function
// tensors by a units factor and algebraically undoing the (quadratic)
// effect on the outputs. For exact arithmetic this is an identity; it
// places the kernel inputs at the tiny magnitudes the production code's
// unit system produces (Fig. 7a shows Σ≷ values down to 1e-21), which is
// the regime where unnormalized fp16 collapses.
type unitsScaled struct {
	inner sse.Kernel
	scale float64
}

func (u unitsScaled) Name() string { return u.inner.Name() + " (units-scaled)" }

func (u unitsScaled) Compute(in *sse.Input) *sse.Output {
	s := complex(u.scale, 0)
	scaled := &sse.Input{Dev: in.Dev,
		GL: in.GL.Clone(), GG: in.GG.Clone(), DL: in.DL.Clone(), DG: in.DG.Clone()}
	for _, buf := range [][]complex128{scaled.GL.Data, scaled.GG.Data, scaled.DL.Data, scaled.DG.Data} {
		for i := range buf {
			buf[i] *= s
		}
	}
	out := u.inner.Compute(scaled)
	inv := complex(1/(u.scale*u.scale), 0)
	for _, buf := range [][]complex128{out.SigL.Data, out.SigG.Data, out.PiL.Data, out.PiG.Data} {
		for i := range buf {
			buf[i] *= inv
		}
	}
	return out
}

// runFigure7 — mixed-precision SSE distribution and convergence.
func runFigure7(quick bool) {
	header("Figure 7: Double- vs Half-Precision SSE")
	spec := qt.Spec{Atoms: 16, Slabs: 4, Orbitals: 2, EnergyPoints: 20, PhononModes: 3, Coupling: 0.12}
	if quick {
		spec = qt.Spec{Atoms: 12, Slabs: 3, Orbitals: 2, EnergyPoints: 12, PhononModes: 3, Coupling: 0.12}
	}
	iters := 14

	// All three variants see inputs at the production unit scale (~1e-8
	// of our synthetic magnitudes) so the fp16 dynamic-range effects of
	// §5.4 are exercised exactly as in the paper.
	const units = 1e-7
	ref := facadeTrace(spec, iters, qt.WithSSEKernel(unitsScaled{sse.DaCe{}, units}))
	norm := facadeTrace(spec, iters, qt.WithSSEKernel(unitsScaled{sse.Mixed{Normalize: true}, units}))
	raw := facadeTrace(spec, iters, qt.WithSSEKernel(unitsScaled{sse.Mixed{Normalize: false}, units}))

	fmt.Println("(b) Convergence of the electronic current (a.u.):")
	row("Iter", "64-bit", "16-bit norm.", "16-bit unnorm.", "rel.err norm", "rel.err unnorm")
	for i := range ref {
		row(fmt.Sprintf("%d", i+1),
			fmt.Sprintf("%.8f", ref[i]),
			fmt.Sprintf("%.8f", norm[i]),
			fmt.Sprintf("%.8f", raw[i]),
			fmt.Sprintf("%.2e", math.Abs(norm[i]-ref[i])/math.Abs(ref[i])),
			fmt.Sprintf("%.2e", math.Abs(raw[i]-ref[i])/math.Abs(ref[i])))
	}
	last := len(ref) - 1
	fmt.Printf("\nfinal relative difference: normalized %.2e (paper: 1.2e-6), unnormalized %.2e (paper: 3e-3)\n",
		math.Abs(norm[last]-ref[last])/math.Abs(ref[last]),
		math.Abs(raw[last]-ref[last])/math.Abs(ref[last]))

	// (a) Output distribution: magnitude range of Σ< values per variant.
	dev, err := spec.Build()
	if err != nil {
		panic(err)
	}
	s := negf.New(dev, negf.DefaultOptions())
	if err := s.GFPhase(); err != nil {
		panic(err)
	}
	in := &sse.Input{Dev: dev, GL: s.GL, GG: s.GG, DL: s.DL, DG: s.DG}
	stats := func(k sse.Kernel) (mn, mx float64) {
		out := k.Compute(in)
		mn = math.Inf(1)
		for _, v := range out.SigL.Data {
			for _, x := range []float64{math.Abs(real(v)), math.Abs(imag(v))} {
				if x == 0 {
					continue
				}
				if x < mn {
					mn = x
				}
				if x > mx {
					mx = x
				}
			}
		}
		return mn, mx
	}
	fmt.Println("\n(a) Σ< non-zero magnitude range:")
	for _, k := range []sse.Kernel{sse.DaCe{}, sse.Mixed{Normalize: true}, sse.Mixed{Normalize: false}} {
		mn, mx := stats(k)
		fmt.Printf("  %-24s [%.3e, %.3e]\n", k.Name(), mn, mx)
	}
}

// runFigure11 — electro-thermal observables of a converged simulation.
func runFigure11(quick bool) {
	header("Figure 11: Electro-Thermal Simulation of the FinFET (measured)")
	spec := qt.Spec{Atoms: 24, Slabs: 6, Orbitals: 2, EnergyPoints: 24, PhononModes: 4, Coupling: 0.12}
	if quick {
		spec = qt.Spec{Atoms: 16, Slabs: 4, Orbitals: 2, EnergyPoints: 16, PhononModes: 3, Coupling: 0.12}
	}
	sim, err := qt.New(spec, qt.WithMaxIterations(20))
	if err != nil {
		panic(err)
	}
	run, err := sim.Start(context.Background())
	if err != nil {
		panic(err)
	}
	res, err := run.Wait()
	if err != nil {
		panic(err)
	}
	if !res.Converged {
		fmt.Printf("(loop: not converged after %d iterations)\n", res.Iterations)
	}
	dev, obs := sim.Device, res.Observables

	fmt.Printf("contact currents: IL=%.6g IR=%.6g (conservation: %.1e)\n",
		obs.CurrentL, obs.CurrentR, math.Abs(obs.CurrentL+obs.CurrentR)/math.Abs(obs.CurrentL))
	fmt.Printf("energy balance: electron loss %.4g vs phonon gain %.4g (ratio %.2f)\n",
		obs.ElectronEnergyLoss, obs.PhononEnergyGain, obs.PhononEnergyGain/obs.ElectronEnergyLoss)

	fmt.Println("\nEnergy currents along x (left panel): electron, phonon, total")
	row("Interface", "Electron", "Phonon", "Total")
	tot := obs.TotalEnergyCurrent()
	for i := range tot {
		row(fmt.Sprintf("%d", i),
			fmt.Sprintf("%.6g", obs.InterfaceEnergyCurrent[i]),
			fmt.Sprintf("%.6g", obs.PhononInterfaceEnergy[i]),
			fmt.Sprintf("%.6g", tot[i]))
	}

	fmt.Println("\nSpectral current (middle panel), per energy:")
	for ie, j := range obs.SpectralCurrent {
		if math.Abs(j) < 1e-9 {
			continue
		}
		bar := int(40 * j / maxAbs(obs.SpectralCurrent))
		fmt.Printf("  E=%+.2f eV %-42s %.4g\n", dev.P.Energy(ie), hbar(bar), j)
	}

	fmt.Println("\nConduction-band-edge profile from the LDOS (middle panel backdrop):")
	edges := obs.BandEdge(dev.P, 0.1)
	for i, e := range edges {
		fmt.Printf("  slab %d: band edge ≈ %+.2f eV\n", i, e)
	}

	fmt.Println("\nTemperature and dissipated power per slab (right panels):")
	row("Slab", "T [K]", "P_diss")
	temps := obs.SlabTemperature(dev)
	for i, t := range temps {
		row(fmt.Sprintf("%d", i), f1(t), fmt.Sprintf("%.4g", obs.DissipatedPower[i]))
	}
	fmt.Println("(paper: heat generated near the channel end, Tmax inside the channel, energy conserved)")
}

func maxAbs(v []float64) float64 {
	var m float64 = 1e-300
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

func hbar(n int) string {
	if n < 0 {
		n = 0
	}
	if n > 40 {
		n = 40
	}
	s := ""
	for i := 0; i < n; i++ {
		s += "#"
	}
	return s
}
