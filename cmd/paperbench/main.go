// Command paperbench regenerates every table and figure of the paper's
// evaluation section, printing the same rows/series the paper reports.
//
// Analytic artifacts (Tables 3–5, 11–12, Figs 8–10, the §6.1.2 worked
// example, §7.1.1 ingestion) are evaluated at paper scale from the
// performance model. Measured artifacts (Tables 6–10, Fig 7, Fig 11,
// measured communication volumes) execute the real kernels on scaled-down
// synthetic devices — see DESIGN.md §2 for the substitution rules and
// EXPERIMENTS.md for paper-vs-reproduction numbers.
//
// Usage:
//
//	paperbench -all
//	paperbench -table 3        # one table (3,4,5,6,7,8,9,10,11,12)
//	paperbench -figure 7       # one figure (7,8,9,10,11) or "ingestion"
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

func main() {
	table := flag.String("table", "", "regenerate one table: 3,4,5,6,7,8,9,10,11,12 or comm")
	figure := flag.String("figure", "", "regenerate one figure: 7,8,9,10,11 or ingestion")
	all := flag.Bool("all", false, "regenerate everything")
	quick := flag.Bool("quick", false, "smaller measured workloads (faster, noisier)")
	flag.Parse()

	runners := map[string]func(bool){
		"table3":          runTable3,
		"table4":          runTable4,
		"table5":          runTable5,
		"table6":          runTable6,
		"table7":          runTable7,
		"table8":          runTable8,
		"table9":          runTable9,
		"table10":         runTable10,
		"table11":         runTable11,
		"table12":         runTable12,
		"tablecomm":       runCommMeasured,
		"figure7":         runFigure7,
		"figure8":         runFigure8,
		"figure9":         runFigure9,
		"figure10":        runFigure10,
		"figure11":        runFigure11,
		"figureingestion": runIngestion,
	}
	order := []string{
		"table3", "table4", "table5", "table6", "table7", "table8", "table9",
		"table10", "table11", "table12", "tablecomm",
		"figure7", "figure8", "figure9", "figure10", "figure11", "figureingestion",
	}

	switch {
	case *all:
		for _, k := range order {
			runners[k](*quick)
		}
	case *table != "":
		k := "table" + strings.ToLower(*table)
		if f, ok := runners[k]; ok {
			f(*quick)
		} else {
			fmt.Fprintf(os.Stderr, "unknown table %q\n", *table)
			os.Exit(2)
		}
	case *figure != "":
		k := "figure" + strings.ToLower(*figure)
		if f, ok := runners[k]; ok {
			f(*quick)
		} else {
			fmt.Fprintf(os.Stderr, "unknown figure %q\n", *figure)
			os.Exit(2)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// header prints a section banner.
func header(title string) {
	fmt.Printf("\n%s\n%s\n", title, strings.Repeat("=", len(title)))
}

// row prints aligned columns.
func row(cols ...string) {
	for _, c := range cols {
		fmt.Printf("%-16s", c)
	}
	fmt.Println()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
