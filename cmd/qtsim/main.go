// Command qtsim runs a complete self-consistent electro-thermal quantum
// transport simulation (GF ↔ SSE to convergence) through the qt facade
// and reports the physical observables of Fig. 11: contact and
// interface currents, energy currents, dissipated power, and the
// atomically resolved lattice temperature.
//
// The solver matrix is fully reachable: -ranks 0 runs the sequential
// solver, -ranks P the distributed one (with -schedule
// phases|overlap|pipeline and -depth for the pipelined window), and
// -kernel selects the SSE variant. -autoplan calibrates a cost model on
// a short probe run and picks schedule, workers, pipeline depth and
// GEMM blocking automatically; the resolved plan prints in the report
// header. -format text|json|csv selects the report encoding (the
// machine-readable forms share the distsim schema via internal/report).
//
// Device-zoo runs load a declarative disorder profile with -profile
// FILE (JSON device.Profile: regions, gates, doping, vacancies, strain)
// and pick the realization with -dseed. -ensemble N averages N
// realizations (seeds dseed..dseed+N-1) and reports the Welford-reduced
// mean/variance/CI ensemble schema instead of a single run.
//
// Example:
//
//	qtsim -na 24 -bnum 6 -norb 2 -ne 24 -nw 4 -vds 0.3 -coupling 0.12
//	qtsim -ranks 4 -schedule overlap -format json
//	qtsim -profile device.json -dseed 42 -ensemble 16 -format csv
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/device"
	"repro/internal/ensemble"
	"repro/internal/obs"
	"repro/internal/qt"
	"repro/internal/report"
)

func main() {
	na := flag.Int("na", 24, "number of atoms")
	bnum := flag.Int("bnum", 6, "number of slabs (blocks)")
	norb := flag.Int("norb", 2, "orbitals per atom")
	nkz := flag.Int("nkz", 3, "momentum points")
	ne := flag.Int("ne", 24, "energy points")
	nw := flag.Int("nw", 4, "phonon frequencies")
	vds := flag.Float64("vds", 0.3, "drain-source bias (eV)")
	tc := flag.Float64("tc", 300, "contact temperature (K)")
	coupling := flag.Float64("coupling", 0.12, "electron-phonon coupling strength")
	kernel := flag.String("kernel", "dace", "SSE kernel: omen | dace | mixed")
	iters := flag.Int("maxiter", 25, "maximum self-consistent iterations")
	tol := flag.Float64("tol", 1e-5, "relative current change at convergence")
	seed := flag.Uint64("seed", 0x5eed, "structure seed")
	profileFile := flag.String("profile", "", "JSON device profile (regions, gates, doping, vacancies, strain)")
	dseed := flag.Uint64("dseed", 1, "disorder realization seed (requires -profile)")
	members := flag.Int("ensemble", 0, "average N disorder realizations, seeds dseed..dseed+N-1 (requires -profile)")
	ranks := flag.Int("ranks", 0, "simulated MPI world size (0 = sequential solver)")
	schedule := flag.String("schedule", "phases", "distributed schedule: phases | overlap | pipeline")
	depth := flag.Int("depth", 0, "pipelined-iteration window depth (with -schedule pipeline; 0 = solver default)")
	autoplan := flag.Bool("autoplan", false, "autotune schedule, workers, pipeline depth and GEMM blocking from a calibrated cost model (requires -ranks)")
	format := flag.String("format", "text", "output format: text, json, or csv")
	traceFile := flag.String("trace", "", "record per-phase spans and write Chrome trace-event JSON to FILE (load in Perfetto)")
	metrics := flag.Bool("metrics", false, "print a Prometheus-text snapshot of the run's counters to stderr")
	flag.Parse()

	f, err := report.ParseFormat(*format)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qtsim:", err)
		os.Exit(2)
	}

	spec := qt.Spec{
		Atoms: *na, Slabs: *bnum, Orbitals: *norb,
		MomentumPoints: *nkz, EnergyPoints: *ne, PhononModes: *nw,
		Temperature: *tc, Coupling: *coupling, Seed: *seed,
	}
	if *profileFile != "" {
		raw, err := os.ReadFile(*profileFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qtsim:", err)
			os.Exit(2)
		}
		var pr device.Profile
		if err := json.Unmarshal(raw, &pr); err != nil {
			fmt.Fprintf(os.Stderr, "qtsim: parse %s: %v\n", *profileFile, err)
			os.Exit(2)
		}
		spec.Profile = &pr
		spec.DisorderSeed = *dseed
	} else if *members > 0 {
		fmt.Fprintln(os.Stderr, "qtsim: -ensemble requires -profile (a clean device has nothing to average over)")
		os.Exit(2)
	}
	opts := []qt.Option{
		qt.WithBias(*vds),
		qt.WithMaxIterations(*iters),
		qt.WithTolerance(*tol),
	}
	// -kernel mixed is precision shorthand, everything else goes through
	// the shared spelling parser.
	if *kernel == "mixed" {
		opts = append(opts, qt.WithPrecision(qt.Mixed))
	} else {
		k, err := qt.ParseKernel(*kernel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qtsim: %v (or mixed)\n", err)
			os.Exit(2)
		}
		opts = append(opts, qt.WithKernel(k))
	}
	switch {
	case *autoplan && *ranks < 1:
		fmt.Fprintln(os.Stderr, "qtsim: -autoplan requires -ranks (the plan space is the distributed solver's)")
		os.Exit(2)
	case *autoplan:
		// WithAutoPlan owns the schedule/worker/depth knobs; -schedule and
		// -depth are ignored (qt.New rejects explicit combinations).
		opts = append(opts, qt.WithRanks(*ranks), qt.WithAutoPlan())
	case *ranks > 0:
		sched, err := qt.ParseSchedule(*schedule)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qtsim:", err)
			os.Exit(2)
		}
		opts = append(opts, qt.WithRanks(*ranks), qt.WithSchedule(sched))
		if *depth > 0 {
			opts = append(opts, qt.WithPipelineDepth(*depth))
		}
	}
	if *traceFile != "" {
		opts = append(opts, qt.WithTrace())
	}

	if *members > 0 {
		runEnsemble(spec, opts, *members, *dseed, f)
		return
	}

	sim, err := qt.New(spec, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qtsim:", err)
		os.Exit(2)
	}

	start := time.Now()
	run, err := sim.Start(context.Background())
	if err != nil {
		fmt.Fprintln(os.Stderr, "qtsim:", err)
		os.Exit(1)
	}
	res, err := run.Wait()
	if err != nil {
		fmt.Fprintln(os.Stderr, "qtsim:", err)
		os.Exit(1)
	}

	wall := time.Since(start)

	if *traceFile != "" {
		if err := writeTrace(*traceFile, res); err != nil {
			fmt.Fprintln(os.Stderr, "qtsim:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "qtsim: wrote %d spans to %s\n", len(res.Spans.Spans), *traceFile)
	}
	if *metrics {
		printMetrics(res, wall)
	}

	rep := report.NewRun(sim, res, *kernel, wall.Nanoseconds())
	if *ranks > 0 {
		// The resolved config is authoritative: under -autoplan the
		// schedule may differ from the -schedule flag.
		if sched := sim.Config().Schedule; sched != "" {
			rep.Schedule = sched
		} else {
			rep.Schedule = *schedule
		}
	}
	if err := report.Write(os.Stdout, f, rep); err != nil {
		fmt.Fprintln(os.Stderr, "qtsim:", err)
		os.Exit(1)
	}
	if f == report.Text {
		printPanels(sim, res)
	}
}

// runEnsemble drives an N-realization study in-process and writes the
// Welford-reduced ensemble report; member progress streams on stderr.
func runEnsemble(spec qt.Spec, opts []qt.Option, members int, baseSeed uint64, f report.Format) {
	st := &ensemble.Study{
		Spec: spec, Members: members, BaseSeed: baseSeed,
		Options: opts, WarmStart: true,
		OnMember: func(m ensemble.Member) {
			status := "failed"
			if m.Err == nil && m.Result != nil {
				status = fmt.Sprintf("I=%.8g iters=%d converged=%v",
					m.Result.Current, m.Result.Iterations, m.Result.Converged)
			}
			fmt.Fprintf(os.Stderr, "qtsim: member %d (seed %d): %s\n", m.Index, m.Seed, status)
		},
	}
	res, err := st.Run(context.Background())
	if err != nil {
		fmt.Fprintln(os.Stderr, "qtsim:", err)
		os.Exit(1)
	}
	if err := report.Write(os.Stdout, f, res.Report); err != nil {
		fmt.Fprintln(os.Stderr, "qtsim:", err)
		os.Exit(1)
	}
}

// writeTrace exports the run's span recording as Chrome trace-event JSON.
func writeTrace(path string, res *qt.Result) error {
	if res.Spans == nil {
		return fmt.Errorf("run recorded no spans")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := res.Spans.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printMetrics renders the run's counters in Prometheus text form on
// stderr — the same exposition qtd serves on /metrics, for one-shot runs.
func printMetrics(res *qt.Result, wall time.Duration) {
	r := obs.NewRegistry()
	r.GaugeFunc("qtsim_run_duration_seconds", "Run wall time.",
		func() float64 { return wall.Seconds() })
	r.GaugeFunc("qtsim_iterations", "Self-consistent iterations executed.",
		func() float64 { return float64(res.Iterations) })
	r.GaugeFunc("qtsim_converged", "1 when the run reached tolerance.",
		func() float64 {
			if res.Converged {
				return 1
			}
			return 0
		})
	sse := r.Counter("qtsim_sse_bytes_total", "Distributed SSE exchange traffic (wire bytes).")
	red := r.Counter("qtsim_reduce_bytes_total", "Observable-reduction traffic (bytes).")
	fbk := r.Counter("qtsim_fallback_blocks_total", "Mixed-precision segments shipped as verbatim fp64.")
	for _, st := range res.Trace {
		sse.Add(float64(st.SSEBytes))
		red.Add(float64(st.ReduceBytes))
		fbk.Add(float64(st.FallbackBlocks))
	}
	r.WritePrometheus(os.Stderr)
}

// printPanels renders the text-only ASCII panels: the local density of
// states and the atomic temperature map.
func printPanels(sim *qt.Simulation, res *qt.Result) {
	obs := res.Observables
	p := sim.Device.P
	var dosMax float64
	for _, dos := range obs.LDOS {
		for _, v := range dos {
			if v > dosMax {
				dosMax = v
			}
		}
	}
	// The LDOS is a single-node diagnostic the distributed solver does
	// not aggregate; print it only when it was computed.
	if len(obs.LDOS) >= p.Bnum && dosMax > 0 {
		fmt.Println("\nlocal density of states (rows = E descending, cols = slabs; '#' ∝ weight):")
		for n := p.NE - 1; n >= 0; n-- {
			fmt.Printf("  E=%+5.2f ", p.Energy(n))
			for i := 0; i < p.Bnum; i++ {
				c := " "
				switch w := obs.LDOS[i][n] / dosMax; {
				case w > 0.6:
					c = "#"
				case w > 0.25:
					c = "+"
				case w > 0.05:
					c = "."
				}
				fmt.Print(c)
			}
			fmt.Println()
		}
	}

	rows := p.AtomsPerSlab()
	if len(obs.AtomTemperature) < rows*p.Bnum {
		return
	}
	fmt.Println("\natomic temperature map (x = slab, y = row):")
	for r := rows - 1; r >= 0; r-- {
		for sInd := 0; sInd < p.Bnum; sInd++ {
			fmt.Printf(" %5.0f", obs.AtomTemperature[sInd*rows+r])
		}
		fmt.Println()
	}
}
