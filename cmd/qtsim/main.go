// Command qtsim runs a complete self-consistent electro-thermal quantum
// transport simulation (GF ↔ SSE to convergence) on a synthetic FinFET
// slice and reports the physical observables of Fig. 11: contact and
// interface currents, energy currents, dissipated power, and the
// atomically resolved lattice temperature.
//
// Example:
//
//	qtsim -na 24 -bnum 6 -norb 2 -ne 24 -nw 4 -vds 0.3 -coupling 0.12
package main

import (
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/device"
	"repro/internal/negf"
	"repro/internal/sse"
)

func main() {
	na := flag.Int("na", 24, "number of atoms")
	bnum := flag.Int("bnum", 6, "number of slabs (blocks)")
	norb := flag.Int("norb", 2, "orbitals per atom")
	nkz := flag.Int("nkz", 3, "momentum points")
	ne := flag.Int("ne", 24, "energy points")
	nw := flag.Int("nw", 4, "phonon frequencies")
	vds := flag.Float64("vds", 0.3, "drain-source bias (eV)")
	tc := flag.Float64("tc", 300, "contact temperature (K)")
	coupling := flag.Float64("coupling", 0.12, "electron-phonon coupling strength")
	kernel := flag.String("kernel", "dace", "SSE kernel: omen | dace | mixed")
	iters := flag.Int("maxiter", 25, "maximum self-consistent iterations")
	seed := flag.Uint64("seed", 0x5eed, "structure seed")
	flag.Parse()

	p := device.TestParams(*na, *bnum, *norb)
	p.Nkz = *nkz
	p.NE = *ne
	p.Nomega = *nw
	p.Vds = *vds
	p.TC = *tc
	p.Coupling = *coupling
	p.Seed = *seed
	if err := p.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	dev, err := device.Build(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	opts := negf.DefaultOptions()
	opts.MaxIter = *iters
	switch *kernel {
	case "omen":
		opts.Kernel = sse.OMEN{}
	case "dace":
		opts.Kernel = sse.DaCe{}
	case "mixed":
		opts.Kernel = sse.Mixed{Normalize: true}
	default:
		fmt.Fprintf(os.Stderr, "unknown kernel %q\n", *kernel)
		os.Exit(2)
	}

	fmt.Printf("device: Na=%d bnum=%d Norb=%d Nb<=%d | grid: Nkz=%d NE=%d Nω=%d | Vds=%.2f V, T=%g K\n",
		p.Na, p.Bnum, p.Norb, dev.MaxNb(), p.Nkz, p.NE, p.Nomega, p.Vds, p.TC)
	fmt.Printf("kernel: %s\n\n", opts.Kernel.Name())

	start := time.Now()
	s := negf.New(dev, opts)
	obs, err := s.Run()
	elapsed := time.Since(start)
	switch {
	case err == nil:
		fmt.Printf("converged in %d iterations (%.2fs)\n", len(s.IterTrace), elapsed.Seconds())
	case errors.Is(err, negf.ErrNotConverged):
		fmt.Printf("NOT converged after %d iterations (%.2fs)\n", len(s.IterTrace), elapsed.Seconds())
	default:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println("\nconvergence trace (current, relative change):")
	for _, it := range s.IterTrace {
		fmt.Printf("  iter %2d: I = %.8g   Δ = %.2e   (SSE matmuls %d)\n",
			it.Iter+1, it.Current, it.RelChange, it.SSEStats.MatMuls)
	}

	fmt.Printf("\ncontact currents:   IL = %.6g, IR = %.6g  (balance %.1e)\n",
		obs.CurrentL, obs.CurrentR, math.Abs(obs.CurrentL+obs.CurrentR)/math.Abs(obs.CurrentL))
	fmt.Printf("energy currents:    source %.6g (electron), %.6g (phonon)\n",
		obs.EnergyCurrentL, obs.PhononEnergyCurrentL)
	fmt.Printf("energy balance:     electron loss %.6g vs phonon gain %.6g\n",
		obs.ElectronEnergyLoss, obs.PhononEnergyGain)

	fmt.Println("\nprofile along transport direction:")
	fmt.Printf("  %-6s %-12s %-12s %-12s %-12s\n", "slab", "I(el)", "JE(el)", "JQ(ph)", "T [K]")
	temps := obs.SlabTemperature(dev)
	for i := 0; i < p.Bnum; i++ {
		ic, je, jq := "-", "-", "-"
		if i < len(obs.InterfaceCurrent) {
			ic = fmt.Sprintf("%.5g", obs.InterfaceCurrent[i])
			je = fmt.Sprintf("%.5g", obs.InterfaceEnergyCurrent[i])
			jq = fmt.Sprintf("%.5g", obs.PhononInterfaceEnergy[i])
		}
		fmt.Printf("  %-6d %-12s %-12s %-12s %-12.1f\n", i, ic, je, jq, temps[i])
	}

	fmt.Println("\nlocal density of states (rows = E descending, cols = slabs; '#' ∝ weight):")
	var dosMax float64
	for _, dos := range obs.LDOS {
		for _, v := range dos {
			if v > dosMax {
				dosMax = v
			}
		}
	}
	for n := p.NE - 1; n >= 0; n-- {
		fmt.Printf("  E=%+5.2f ", p.Energy(n))
		for i := 0; i < p.Bnum; i++ {
			c := " "
			switch w := obs.LDOS[i][n] / dosMax; {
			case w > 0.6:
				c = "#"
			case w > 0.25:
				c = "+"
			case w > 0.05:
				c = "."
			}
			fmt.Print(c)
		}
		fmt.Println()
	}

	fmt.Println("\natomic temperature map (x = slab, y = row):")
	rows := p.AtomsPerSlab()
	for r := rows - 1; r >= 0; r-- {
		for sInd := 0; sInd < p.Bnum; sInd++ {
			fmt.Printf(" %5.0f", obs.AtomTemperature[sInd*rows+r])
		}
		fmt.Println()
	}
}
