// Command distsim runs the distributed self-consistent NEGF solver
// (internal/dist) across a sweep of simulated MPI world sizes and
// reports, per iteration, the measured communication volume of the SSE
// exchange next to the analytic prediction of the paper's model
// (internal/model/commvol.go) — the executable form of the scaling story
// the paper tells for the full GF↔SSE loop.
//
// Three sweep modes (combine with commas, or use "all"):
//
//   - strong:  a fixed structure solved on P ∈ {1, 2, 4, 8} ranks; the
//     global contact current must be invariant (printed for inspection)
//     while the per-rank work shrinks.
//   - weak:    the energy grid grows with P (NE = ne·P), keeping the
//     per-rank GF work constant while the exchange volume grows.
//   - overlap: each world size runs twice — bulk-synchronous phases vs
//     the overlapped task-graph schedule (internal/sdfg) — and the
//     measured per-iteration makespans are compared against the
//     internal/stream copy/compute-overlap prediction built from the
//     measured compute/communication split.
//
// -precision mixed threads the §5.4 mixed-precision path through every
// sweep: the SSE tiles run the normalized binary16 kernel and the four
// Alltoallv exchanges ship half-width split-complex wire payloads. Each
// world size then also runs the fp64 baseline at the identical
// decomposition, and the report gains the measured fp64→mixed volume
// reduction, the per-iteration Σ≷/Π≷ quantization deviation (error
// probe), and the current check against the sequential fp64 solver
// under the documented dist.MixedCurrentTol.
//
// Output formats: -format text (human tables), json, or csv — the
// machine-readable forms feed scaling-sweep trajectories.
//
// Example:
//
//	distsim -mode strong,overlap -na 24 -bnum 4 -norb 2 -ne 16 -nw 4 -iters 3
//	distsim -mode strong -precision mixed -iters 3
package main

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/decomp"
	"repro/internal/device"
	"repro/internal/dist"
	"repro/internal/model"
	"repro/internal/negf"
	"repro/internal/stream"
)

// scaleRow is one world size of a strong/weak sweep.
type scaleRow struct {
	Sweep         string  `json:"sweep"`
	P             int     `json:"p"`
	Ta            int     `json:"ta"`
	TE            int     `json:"te"`
	Precision     string  `json:"precision"`
	Current       float64 `json:"current"`
	SSEMeasBytes  int64   `json:"sse_meas_bytes_per_iter"`
	SSEModelBytes int64   `json:"sse_model_bytes_per_iter"`
	Ratio         float64 `json:"meas_over_model"`
	ReduceBytes   int64   `json:"reduce_bytes_per_iter"`
	WallNs        int64   `json:"wall_ns_per_iter"`
	RelVsSeq      float64 `json:"rel_vs_sequential"` // -1 when not verified
	// Mixed-precision comparison columns (zero under -precision fp64):
	// the fp64 baseline's measured exchange volume at the identical
	// decomposition, the measured fp64/mixed volume reduction, and the
	// worst per-iteration Σ≷/Π≷ quantization deviation from the probe.
	FP64SSEBytes int64   `json:"fp64_sse_bytes_per_iter,omitempty"`
	VolumeRatio  float64 `json:"fp64_over_mixed_volume,omitempty"`
	SigmaErr     float64 `json:"max_sigma_qerr,omitempty"`
}

// overlapRow is one world size of the schedule comparison.
type overlapRow struct {
	P              int     `json:"p"`
	Workers        int     `json:"workers"`
	PhasesWallNs   int64   `json:"phases_wall_ns_per_iter"`
	OverlapWallNs  int64   `json:"overlap_wall_ns_per_iter"`
	Speedup        float64 `json:"speedup"`
	ComputeNs      int64   `json:"rank0_compute_ns_per_iter"`
	CommNs         int64   `json:"rank0_comm_ns_per_iter"`
	StreamPredGain float64 `json:"stream_pred_gain"` // predicted serial/overlapped
	MaxRelDiff     float64 `json:"max_rel_current_diff"`
}

type report struct {
	Strong  []scaleRow   `json:"strong,omitempty"`
	Weak    []scaleRow   `json:"weak,omitempty"`
	Overlap []overlapRow `json:"overlap,omitempty"`
}

func main() {
	mode := flag.String("mode", "strong,weak", "comma-separated sweep modes: strong, weak, overlap (or all)")
	format := flag.String("format", "text", "output format: text, json, or csv")
	na := flag.Int("na", 24, "atoms")
	bnum := flag.Int("bnum", 4, "slabs")
	norb := flag.Int("norb", 2, "orbitals per atom")
	nkz := flag.Int("nkz", 3, "momentum points")
	ne := flag.Int("ne", 16, "energy points (per rank in weak mode)")
	nw := flag.Int("nw", 4, "phonon frequency points")
	iters := flag.Int("iters", 3, "self-consistent iterations per run")
	ranks := flag.String("ranks", "1,2,4,8", "comma-separated world sizes")
	workers := flag.Int("workers", 2, "per-rank worker pool of the overlapped schedule")
	verify := flag.Bool("verify", true, "check currents against the sequential solver (strong mode)")
	precFlag := flag.String("precision", "fp64", "SSE precision: fp64, or mixed (binary16 tile kernel + half-width wire payloads, with an fp64 baseline run per world size for the volume/error columns)")
	flag.Parse()

	prec, err := decomp.ParsePrecision(*precFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "distsim:", err)
		os.Exit(1)
	}

	modes := map[string]bool{}
	for _, m := range strings.Split(*mode, ",") {
		m = strings.TrimSpace(m)
		if m == "all" {
			modes["strong"], modes["weak"], modes["overlap"] = true, true, true
			continue
		}
		if m != "strong" && m != "weak" && m != "overlap" && m != "both" {
			fmt.Fprintf(os.Stderr, "distsim: unknown mode %q (want strong, weak, overlap, or all)\n", m)
			os.Exit(1)
		}
		if m == "both" { // backwards-compatible alias
			modes["strong"], modes["weak"] = true, true
			continue
		}
		modes[m] = true
	}
	if *format != "text" && *format != "json" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "distsim: unknown format %q (want text, json, or csv)\n", *format)
		os.Exit(1)
	}
	ps, err := parseRanks(*ranks)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	base := device.TestParams(*na, *bnum, *norb)
	base.Nkz = *nkz
	base.NE = *ne
	base.Nomega = *nw

	var rep report
	text := *format == "text"
	if modes["strong"] {
		rep.Strong = runScaleSweep("strong", base, ps, *iters, *verify, text, prec,
			func(p device.Params, _ int) device.Params { return p })
	}
	if modes["weak"] {
		rep.Weak = runScaleSweep("weak", base, ps, *iters, false, text, prec,
			func(p device.Params, ranks int) device.Params {
				p.NE = base.NE * ranks
				return p
			})
	}
	if modes["overlap"] {
		rep.Overlap = runOverlapSweep(base, ps, *iters, *workers, text, prec)
	}

	switch *format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "distsim:", err)
			os.Exit(1)
		}
	case "csv":
		if err := writeCSV(os.Stdout, rep); err != nil {
			fmt.Fprintln(os.Stderr, "distsim:", err)
			os.Exit(1)
		}
	}
}

func parseRanks(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || p <= 0 {
			return nil, fmt.Errorf("distsim: bad rank count %q", f)
		}
		out = append(out, p)
	}
	return out, nil
}

func runDist(dev *device.Device, opts dist.Options) *dist.Result {
	res, err := dist.Run(dev, opts)
	if err != nil && !errors.Is(err, negf.ErrNotConverged) {
		fmt.Fprintf(os.Stderr, "distsim: P=%d: %v\n", opts.Ranks, err)
		os.Exit(1)
	}
	return res
}

func buildDevice(p device.Params, ranks int) *device.Device {
	dev, err := device.Build(p)
	if err != nil {
		fmt.Fprintf(os.Stderr, "distsim: P=%d: %v\n", ranks, err)
		os.Exit(1)
	}
	return dev
}

// runScaleSweep executes the distributed loop for every world size and
// returns (and in text mode prints) the measured-vs-modelled rows.
func runScaleSweep(sweep string, base device.Params, ranks []int, iters int, verify, text bool,
	prec dist.Precision, scale func(device.Params, int) device.Params) []scaleRow {

	mixed := prec == dist.PrecisionMixed
	if text {
		fmt.Printf("── %s scaling (%s) ──\n", sweep, prec)
		fmt.Printf("   base: Na=%d bnum=%d Norb=%d Nkz=%d NE=%d Nω=%d, %d iterations\n",
			base.Na, base.Bnum, base.Norb, base.Nkz, base.NE, base.Nomega, iters)
		fmt.Printf("   %2s  %5s  %14s  %13s  %13s  %6s  %11s  %8s\n",
			"P", "ta×te", "current", "SSE meas/it", "SSE model/it", "ratio", "reduce/it", "time/it")
	}

	var rows []scaleRow
	var refCurrent float64
	haveRef := false
	var a2aPerIter int64
	for _, p := range ranks {
		dp := scale(base, p)
		dev := buildDevice(dp, p)
		opts := dist.DefaultOptions(p)
		opts.MaxIter = iters
		opts.Tol = 1e-300 // run all iterations: we are measuring, not converging
		opts.Precision = prec
		opts.ErrorProbe = mixed
		res := runDist(dev, opts)

		var sseBytes, reduceBytes, wallNs int64
		var qerr float64
		for _, it := range res.IterTrace {
			sseBytes += it.SSEBytes
			reduceBytes += it.ReduceBytes
			wallNs += it.WallNs
			if it.SigmaErr > qerr {
				qerr = it.SigmaErr
			}
		}
		n := int64(len(res.IterTrace))
		a2aPerIter = res.Comm.Collectives["Alltoallv"] / n
		last := res.IterTrace[len(res.IterTrace)-1]
		modelled := model.DaCeCommVolume(dev.P, opts.Ta, opts.TE)
		if mixed {
			modelled = model.DaCeCommVolumeMixed(dev.P, opts.Ta, opts.TE)
		}
		row := scaleRow{
			Sweep: sweep, P: p, Ta: opts.Ta, TE: opts.TE,
			Precision:    prec.String(),
			Current:      last.Current,
			SSEMeasBytes: sseBytes / n, SSEModelBytes: int64(modelled),
			Ratio:       float64(sseBytes/n) / modelled,
			ReduceBytes: reduceBytes / n,
			WallNs:      wallNs / n,
			RelVsSeq:    -1,
			SigmaErr:    qerr,
		}
		if mixed {
			// The volume column needs the fp64 baseline at the identical
			// decomposition: run it and compare measured exchange bytes.
			fpOpts := opts
			fpOpts.Precision = dist.PrecisionFP64
			fpOpts.ErrorProbe = false
			fpRes := runDist(dev, fpOpts)
			var fpSSE int64
			for _, it := range fpRes.IterTrace {
				fpSSE += it.SSEBytes
			}
			row.FP64SSEBytes = fpSSE / int64(len(fpRes.IterTrace))
			if row.SSEMeasBytes > 0 {
				row.VolumeRatio = float64(row.FP64SSEBytes) / float64(row.SSEMeasBytes)
			}
		}
		if verify {
			if !haveRef {
				refCurrent = sequentialCurrent(dev, iters)
				haveRef = true
			}
			row.RelVsSeq = relDiff(last.Current, refCurrent)
		}
		rows = append(rows, row)
		if text {
			fmt.Printf("   %2d  %2d×%-2d  %14.6e  %13s  %13s  %6.3f  %11s  %8s\n",
				p, opts.Ta, opts.TE, row.Current,
				fmtBytes(row.SSEMeasBytes), fmtBytes(row.SSEModelBytes), row.Ratio,
				fmtBytes(row.ReduceBytes), time.Duration(row.WallNs).Round(time.Millisecond))
			if mixed && row.FP64SSEBytes > 0 {
				fmt.Printf("       vs fp64 exchange: %s → %s per iteration (%.2fx less); max Σ qerr %.2e\n",
					fmtBytes(row.FP64SSEBytes), fmtBytes(row.SSEMeasBytes), row.VolumeRatio, row.SigmaErr)
			} else if mixed {
				fmt.Printf("       vs fp64 exchange: no off-rank traffic at P=1; max Σ qerr %.2e\n", row.SigmaErr)
			}
			if verify {
				tol, status := 1e-12, "ok"
				if mixed {
					tol = dist.MixedCurrentTol
				}
				if row.RelVsSeq > tol {
					status = "MISMATCH"
				}
				fmt.Printf("       vs sequential fp64: rel %.2e (%s, tol %.0e)\n", row.RelVsSeq, status, tol)
			}
		}
	}
	if text {
		fmt.Printf("   MPI collectives per iteration: %d Alltoallv measured, %d modelled (§6.1.2)\n",
			a2aPerIter, model.DaCeMPIInvocations())
		fmt.Println("   note: the model charges each rank its full tile halo, including the")
		fmt.Println("   locally owned share; the runtime counts only off-rank bytes, so the")
		fmt.Println("   measured/modelled ratio rises toward 1 as P grows.")
		fmt.Println()
	}
	return rows
}

// runOverlapSweep is the schedule A/B experiment: for every world size,
// run the same workload bulk-synchronously and as an overlapped task
// graph, compare measured per-iteration makespans, and set the result
// against the internal/stream prediction derived from the measured
// compute/communication split.
func runOverlapSweep(base device.Params, ranks []int, iters, workers int, text bool, prec dist.Precision) []overlapRow {
	if text {
		fmt.Printf("── overlap vs phases (workers=%d, %s) ──\n", workers, prec)
		fmt.Printf("   %2s  %10s  %10s  %7s  %12s  %9s  %9s\n",
			"P", "phases/it", "overlap/it", "speedup", "stream pred", "comm/comp", "max rel")
	}
	var rows []overlapRow
	for _, p := range ranks {
		dev := buildDevice(base, p)

		phases := dist.DefaultOptions(p)
		phases.MaxIter = iters
		phases.Tol = 1e-300
		phases.Precision = prec
		pres := runDist(dev, phases)

		overlap := phases
		overlap.Schedule = dist.ScheduleOverlap
		overlap.Workers = workers
		ores := runDist(dev, overlap)

		var pWall, oWall, compute, comm int64
		maxRel := 0.0
		for i := range ores.IterTrace {
			pWall += pres.IterTrace[i].WallNs
			oWall += ores.IterTrace[i].WallNs
			compute += ores.IterTrace[i].ComputeNs
			comm += ores.IterTrace[i].CommNs
			if rel := relDiff(ores.IterTrace[i].Current, pres.IterTrace[i].Current); rel > maxRel {
				maxRel = rel
			}
		}
		n := int64(len(ores.IterTrace))
		pWall, oWall, compute, comm = pWall/n, oWall/n, compute/n, comm/n

		// Stream-model prediction: rank 0's measured per-iteration compute
		// spread over its points, with the measured communication share as
		// the copy fraction; full pipelining bounds the attainable gain.
		points := ores.Load[0].Pairs + ores.Load[0].Points
		frac := 0.0
		if compute > 0 {
			frac = float64(comm) / float64(compute)
		}
		tasks := stream.GFTaskSet(points, float64(compute)/1e9, frac)
		pred := stream.Makespan(tasks, 1) / stream.Makespan(tasks, 32)

		row := overlapRow{
			P: p, Workers: workers,
			PhasesWallNs: pWall, OverlapWallNs: oWall,
			Speedup:   float64(pWall) / float64(oWall),
			ComputeNs: compute, CommNs: comm,
			StreamPredGain: pred,
			MaxRelDiff:     maxRel,
		}
		rows = append(rows, row)
		if text {
			fmt.Printf("   %2d  %10s  %10s  %6.3fx  %11.3fx  %9.3f  %9.2e\n",
				p, time.Duration(pWall).Round(time.Millisecond),
				time.Duration(oWall).Round(time.Millisecond),
				row.Speedup, row.StreamPredGain, frac, maxRel)
		}
	}
	if text {
		fmt.Println("   speedup = phases/overlap makespan; stream pred = §7.1.3 pipelining bound")
		fmt.Println("   from the measured comm/compute split; max rel = worst per-iteration")
		fmt.Println("   current difference between the two schedules (must be ~1e-16).")
		fmt.Println()
	}
	return rows
}

func writeCSV(f *os.File, rep report) error {
	w := csv.NewWriter(f)
	defer w.Flush()
	if len(rep.Strong)+len(rep.Weak) > 0 {
		if err := w.Write([]string{"sweep", "p", "ta", "te", "precision", "current",
			"sse_meas_bytes_per_iter", "sse_model_bytes_per_iter", "meas_over_model",
			"reduce_bytes_per_iter", "wall_ns_per_iter", "rel_vs_sequential",
			"fp64_sse_bytes_per_iter", "fp64_over_mixed_volume", "max_sigma_qerr"}); err != nil {
			return err
		}
		for _, r := range append(append([]scaleRow(nil), rep.Strong...), rep.Weak...) {
			if err := w.Write([]string{r.Sweep, itoa(r.P), itoa(r.Ta), itoa(r.TE), r.Precision,
				ftoa(r.Current), itoa64(r.SSEMeasBytes), itoa64(r.SSEModelBytes),
				ftoa(r.Ratio), itoa64(r.ReduceBytes), itoa64(r.WallNs), ftoa(r.RelVsSeq),
				itoa64(r.FP64SSEBytes), ftoa(r.VolumeRatio), ftoa(r.SigmaErr)}); err != nil {
				return err
			}
		}
	}
	if len(rep.Overlap) > 0 {
		if err := w.Write([]string{"p", "workers", "phases_wall_ns_per_iter",
			"overlap_wall_ns_per_iter", "speedup", "rank0_compute_ns_per_iter",
			"rank0_comm_ns_per_iter", "stream_pred_gain", "max_rel_current_diff"}); err != nil {
			return err
		}
		for _, r := range rep.Overlap {
			if err := w.Write([]string{itoa(r.P), itoa(r.Workers), itoa64(r.PhasesWallNs),
				itoa64(r.OverlapWallNs), ftoa(r.Speedup), itoa64(r.ComputeNs),
				itoa64(r.CommNs), ftoa(r.StreamPredGain), ftoa(r.MaxRelDiff)}); err != nil {
				return err
			}
		}
	}
	return nil
}

func itoa(v int) string     { return strconv.Itoa(v) }
func itoa64(v int64) string { return strconv.FormatInt(v, 10) }
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func sequentialCurrent(dev *device.Device, iters int) float64 {
	opts := negf.DefaultOptions()
	opts.MaxIter = iters
	opts.Tol = 1e-300
	s := negf.New(dev, opts)
	if _, err := s.Run(); len(s.IterTrace) == 0 {
		fmt.Fprintf(os.Stderr, "distsim: sequential reference failed: %v\n", err)
		os.Exit(1)
	}
	return s.IterTrace[len(s.IterTrace)-1].Current
}

func relDiff(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := b
	if m < 0 {
		m = -m
	}
	if m == 0 {
		return d
	}
	return d / m
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}
