// Command distsim runs the distributed self-consistent NEGF solver
// (internal/dist) across a sweep of simulated MPI world sizes and reports,
// per iteration, the measured communication volume of the SSE exchange
// next to the analytic prediction of the paper's model
// (internal/model/commvol.go) — the executable form of the scaling story
// the paper tells for the full GF↔SSE loop.
//
// Two sweep modes:
//
//   - strong: a fixed structure solved on P ∈ {1, 2, 4, 8} ranks; the
//     global contact current must be invariant (printed for inspection)
//     while the per-rank work shrinks.
//   - weak:   the energy grid grows with P (NE = ne·P), keeping the
//     per-rank GF work constant while the exchange volume grows.
//
// Example:
//
//	distsim -mode both -na 24 -bnum 4 -norb 2 -ne 16 -nw 4 -iters 3
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/device"
	"repro/internal/dist"
	"repro/internal/model"
	"repro/internal/negf"
)

func main() {
	mode := flag.String("mode", "both", "sweep mode: strong, weak, or both")
	na := flag.Int("na", 24, "atoms")
	bnum := flag.Int("bnum", 4, "slabs")
	norb := flag.Int("norb", 2, "orbitals per atom")
	nkz := flag.Int("nkz", 3, "momentum points")
	ne := flag.Int("ne", 16, "energy points (per rank in weak mode)")
	nw := flag.Int("nw", 4, "phonon frequency points")
	iters := flag.Int("iters", 3, "self-consistent iterations per run")
	ranks := flag.String("ranks", "1,2,4,8", "comma-separated world sizes")
	verify := flag.Bool("verify", true, "check currents against the sequential solver (strong mode)")
	flag.Parse()

	if *mode != "strong" && *mode != "weak" && *mode != "both" {
		fmt.Fprintf(os.Stderr, "distsim: unknown mode %q (want strong, weak, or both)\n", *mode)
		os.Exit(1)
	}
	ps, err := parseRanks(*ranks)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	base := device.TestParams(*na, *bnum, *norb)
	base.Nkz = *nkz
	base.NE = *ne
	base.Nomega = *nw

	if *mode == "strong" || *mode == "both" {
		runSweep("strong scaling (fixed structure)", base, ps, *iters, *verify,
			func(p device.Params, _ int) device.Params { return p })
	}
	if *mode == "weak" || *mode == "both" {
		runSweep("weak scaling (NE grows with P)", base, ps, *iters, false,
			func(p device.Params, ranks int) device.Params {
				p.NE = base.NE * ranks
				return p
			})
	}
}

func parseRanks(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		var p int
		if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &p); err != nil || p <= 0 {
			return nil, fmt.Errorf("distsim: bad rank count %q", f)
		}
		out = append(out, p)
	}
	return out, nil
}

// runSweep executes the distributed loop for every world size and prints
// the measured-vs-modelled communication table.
func runSweep(title string, base device.Params, ranks []int, iters int, verify bool,
	scale func(device.Params, int) device.Params) {

	fmt.Printf("── %s ──\n", title)
	fmt.Printf("   base: Na=%d bnum=%d Norb=%d Nkz=%d NE=%d Nω=%d, %d iterations\n",
		base.Na, base.Bnum, base.Norb, base.Nkz, base.NE, base.Nomega, iters)
	fmt.Printf("   %2s  %5s  %14s  %13s  %13s  %6s  %11s  %8s\n",
		"P", "ta×te", "current", "SSE meas/it", "SSE model/it", "ratio", "reduce/it", "time")

	var refCurrent float64
	haveRef := false
	var a2aPerIter int64
	for _, p := range ranks {
		dp := scale(base, p)
		dev, err := device.Build(dp)
		if err != nil {
			fmt.Fprintf(os.Stderr, "distsim: P=%d: %v\n", p, err)
			os.Exit(1)
		}
		opts := dist.DefaultOptions(p)
		opts.MaxIter = iters
		opts.Tol = 1e-300 // run all iterations: we are measuring, not converging
		start := time.Now()
		res, err := dist.Run(dev, opts)
		if err != nil && !errors.Is(err, negf.ErrNotConverged) {
			fmt.Fprintf(os.Stderr, "distsim: P=%d: %v\n", p, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)

		var sseBytes, reduceBytes int64
		for _, it := range res.IterTrace {
			sseBytes += it.SSEBytes
			reduceBytes += it.ReduceBytes
		}
		n := int64(len(res.IterTrace))
		a2aPerIter = res.Comm.Collectives["Alltoallv"] / n
		last := res.IterTrace[len(res.IterTrace)-1]
		modelled := model.DaCeCommVolume(dev.P, opts.Ta, opts.TE)
		ratio := float64(sseBytes/n) / modelled
		fmt.Printf("   %2d  %2d×%-2d  %14.6e  %13s  %13s  %6.3f  %11s  %8s\n",
			p, opts.Ta, opts.TE, last.Current,
			fmtBytes(sseBytes/n), fmtBytes(int64(modelled)), ratio,
			fmtBytes(reduceBytes/n), elapsed.Round(time.Millisecond))

		if verify {
			if !haveRef {
				refCurrent = sequentialCurrent(dev, iters)
				haveRef = true
			}
			rel := relDiff(last.Current, refCurrent)
			status := "ok"
			if rel > 1e-12 {
				status = "MISMATCH"
			}
			fmt.Printf("       vs sequential: rel %.2e (%s)\n", rel, status)
		}
	}
	fmt.Printf("   MPI collectives per iteration: %d Alltoallv measured, %d modelled (§6.1.2)\n",
		a2aPerIter, model.DaCeMPIInvocations())
	fmt.Println("   note: the model charges each rank its full tile halo, including the")
	fmt.Println("   locally owned share; the runtime counts only off-rank bytes, so the")
	fmt.Println("   measured/modelled ratio rises toward 1 as P grows.")
	fmt.Println()
}

func sequentialCurrent(dev *device.Device, iters int) float64 {
	opts := negf.DefaultOptions()
	opts.MaxIter = iters
	opts.Tol = 1e-300
	s := negf.New(dev, opts)
	if _, err := s.Run(); len(s.IterTrace) == 0 {
		fmt.Fprintf(os.Stderr, "distsim: sequential reference failed: %v\n", err)
		os.Exit(1)
	}
	return s.IterTrace[len(s.IterTrace)-1].Current
}

func relDiff(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := b
	if m < 0 {
		m = -m
	}
	if m == 0 {
		return d
	}
	return d / m
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}
