// Command distsim runs the distributed self-consistent NEGF solver
// through the qt facade across a sweep of simulated MPI world sizes and
// reports, per iteration, the measured communication volume of the SSE
// exchange next to the analytic prediction of the paper's model
// (internal/model/commvol.go) — the executable form of the scaling story
// the paper tells for the full GF↔SSE loop.
//
// Three sweep modes (combine with commas, or use "all"):
//
//   - strong:  a fixed structure solved on P ∈ {1, 2, 4, 8} ranks; the
//     global contact current must be invariant (printed for inspection)
//     while the per-rank work shrinks.
//   - weak:    the energy grid grows with P (NE = ne·P), keeping the
//     per-rank GF work constant while the exchange volume grows.
//   - overlap: each world size runs twice — bulk-synchronous phases vs
//     the overlapped task-graph schedule (internal/sdfg) — and the
//     measured per-iteration makespans are compared against the
//     internal/stream copy/compute-overlap prediction built from the
//     measured compute/communication split.
//
// -precision mixed threads the §5.4 mixed-precision path through every
// sweep: the SSE tiles run the normalized binary16 kernel and the four
// Alltoallv exchanges ship half-width split-complex wire payloads. Each
// world size then also runs the fp64 baseline at the identical
// decomposition, and the report gains the measured fp64→mixed volume
// reduction, the per-iteration Σ≷/Π≷ quantization deviation (error
// probe), and the current check against the sequential fp64 solver
// under the documented dist.MixedCurrentTol.
//
// Output formats: -format text (human tables), json, or csv — the
// shared encoders of internal/report, keyed on the facade's unified
// per-iteration telemetry schema.
//
// Example:
//
//	distsim -mode strong,overlap -na 24 -bnum 4 -norb 2 -ne 16 -nw 4 -iters 3
//	distsim -mode strong -precision mixed -iters 3
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/model"
	"repro/internal/qt"
	"repro/internal/report"
	"repro/internal/stream"
)

func main() {
	mode := flag.String("mode", "strong,weak", "comma-separated sweep modes: strong, weak, overlap (or all)")
	format := flag.String("format", "text", "output format: text, json, or csv")
	na := flag.Int("na", 24, "atoms")
	bnum := flag.Int("bnum", 4, "slabs")
	norb := flag.Int("norb", 2, "orbitals per atom")
	nkz := flag.Int("nkz", 3, "momentum points")
	ne := flag.Int("ne", 16, "energy points (per rank in weak mode)")
	nw := flag.Int("nw", 4, "phonon frequency points")
	iters := flag.Int("iters", 3, "self-consistent iterations per run")
	ranks := flag.String("ranks", "1,2,4,8", "comma-separated world sizes")
	workers := flag.Int("workers", 2, "per-rank worker pool of the overlapped schedule")
	verify := flag.Bool("verify", true, "check currents against the sequential solver (strong mode)")
	precFlag := flag.String("precision", "fp64", "SSE precision: fp64, or mixed (binary16 tile kernel + half-width wire payloads, with an fp64 baseline run per world size for the volume/error columns)")
	flag.Parse()

	prec, err := qt.ParsePrecision(*precFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "distsim:", err)
		os.Exit(1)
	}
	f, err := report.ParseFormat(*format)
	if err != nil {
		fmt.Fprintln(os.Stderr, "distsim:", err)
		os.Exit(1)
	}

	modes := map[string]bool{}
	for _, m := range strings.Split(*mode, ",") {
		m = strings.TrimSpace(m)
		if m == "all" {
			modes["strong"], modes["weak"], modes["overlap"] = true, true, true
			continue
		}
		if m != "strong" && m != "weak" && m != "overlap" && m != "both" {
			fmt.Fprintf(os.Stderr, "distsim: unknown mode %q (want strong, weak, overlap, or all)\n", m)
			os.Exit(1)
		}
		if m == "both" { // backwards-compatible alias
			modes["strong"], modes["weak"] = true, true
			continue
		}
		modes[m] = true
	}
	ps, err := parseRanks(*ranks)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	spec := qt.Spec{
		Atoms: *na, Slabs: *bnum, Orbitals: *norb,
		MomentumPoints: *nkz, EnergyPoints: *ne, PhononModes: *nw,
	}

	rep := &report.Scaling{Meta: report.Meta{
		Atoms: *na, Slabs: *bnum, Orbitals: *norb,
		MomentumPoints: *nkz, EnergyPoints: *ne, PhononModes: *nw,
		Iterations: *iters, Workers: *workers, Precision: prec.String(),
	}}
	if modes["strong"] {
		rep.Strong = runScaleSweep(rep, "strong", spec, ps, *iters, *verify, prec,
			func(s qt.Spec, _ int) qt.Spec { return s })
	}
	if modes["weak"] {
		rep.Weak = runScaleSweep(rep, "weak", spec, ps, *iters, false, prec,
			func(s qt.Spec, ranks int) qt.Spec {
				s.EnergyPoints = spec.EnergyPoints * ranks
				return s
			})
	}
	if modes["overlap"] {
		rep.Overlap = runOverlapSweep(spec, ps, *iters, *workers, prec)
	}

	if err := report.Write(os.Stdout, f, rep); err != nil {
		fmt.Fprintln(os.Stderr, "distsim:", err)
		os.Exit(1)
	}
}

func parseRanks(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || p <= 0 {
			return nil, fmt.Errorf("distsim: bad rank count %q", f)
		}
		out = append(out, p)
	}
	return out, nil
}

// solve runs one facade configuration to completion and returns its
// result (converged or capped — the sweeps measure, they do not wait
// for convergence).
func solve(spec qt.Spec, opts ...qt.Option) (*qt.Simulation, *qt.Result) {
	sim, err := qt.New(spec, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "distsim:", err)
		os.Exit(1)
	}
	run, err := sim.Start(context.Background())
	if err != nil {
		fmt.Fprintln(os.Stderr, "distsim:", err)
		os.Exit(1)
	}
	res, err := run.Wait()
	if err != nil {
		fmt.Fprintln(os.Stderr, "distsim:", err)
		os.Exit(1)
	}
	return sim, res
}

// measureOpts is the shared option set of every sweep point: run all
// iterations (we are measuring, not converging) at the requested world
// size and precision.
func measureOpts(p, iters int, prec qt.Precision, probe bool) []qt.Option {
	opts := []qt.Option{
		qt.WithRanks(p),
		qt.WithMaxIterations(iters),
		qt.WithTolerance(1e-300),
		qt.WithPrecision(prec),
	}
	if probe {
		opts = append(opts, qt.WithErrorProbe())
	}
	return opts
}

// runScaleSweep executes the distributed loop for every world size and
// returns the measured-vs-modelled rows.
func runScaleSweep(rep *report.Scaling, sweep string, base qt.Spec, ranks []int, iters int,
	verify bool, prec qt.Precision, scale func(qt.Spec, int) qt.Spec) []report.ScaleRow {

	mixed := prec == qt.Mixed
	var rows []report.ScaleRow
	var refCurrent float64
	haveRef := false
	for _, p := range ranks {
		sp := scale(base, p)
		sim, res := solve(sp, measureOpts(p, iters, prec, mixed)...)

		agg := report.PerIter(res.Trace)
		n := int64(len(res.Trace))
		rep.AlltoallvPerIter = res.Comm.Collectives["Alltoallv"] / n
		last := res.Trace[len(res.Trace)-1]
		ta, te := sim.Tiles()
		modelled := model.DaCeCommVolume(sim.Device.P, ta, te)
		if mixed {
			modelled = model.DaCeCommVolumeMixed(sim.Device.P, ta, te)
		}
		row := report.ScaleRow{
			Sweep: sweep, P: p, Ta: ta, TE: te,
			Precision:    prec.String(),
			Current:      last.Current,
			SSEMeasBytes: agg.SSEBytes, SSEModelBytes: int64(modelled),
			Ratio:       float64(agg.SSEBytes) / modelled,
			ReduceBytes: agg.ReduceBytes,
			WallNs:      agg.WallNs,
			RelVsSeq:    -1,
			SigmaErr:    agg.MaxSigmaErr,
		}
		if mixed {
			// The volume column needs the fp64 baseline at the identical
			// decomposition: run it and compare measured exchange bytes.
			_, fpRes := solve(sp, measureOpts(p, iters, qt.FP64, false)...)
			row.FP64SSEBytes = report.PerIter(fpRes.Trace).SSEBytes
			if row.SSEMeasBytes > 0 {
				row.VolumeRatio = float64(row.FP64SSEBytes) / float64(row.SSEMeasBytes)
			}
		}
		if verify {
			if !haveRef {
				_, seq := solve(sp, qt.WithMaxIterations(iters), qt.WithTolerance(1e-300))
				refCurrent = seq.Trace[len(seq.Trace)-1].Current
				haveRef = true
			}
			row.RelVsSeq = relDiff(last.Current, refCurrent)
		}
		rows = append(rows, row)
	}
	return rows
}

// runOverlapSweep is the schedule A/B experiment: for every world size,
// run the same workload bulk-synchronously and as an overlapped task
// graph, compare measured per-iteration makespans, and set the result
// against the internal/stream prediction derived from the measured
// compute/communication split.
func runOverlapSweep(base qt.Spec, ranks []int, iters, workers int, prec qt.Precision) []report.OverlapRow {
	var rows []report.OverlapRow
	for _, p := range ranks {
		_, pres := solve(base, measureOpts(p, iters, prec, false)...)
		_, ores := solve(base, append(measureOpts(p, iters, prec, false),
			qt.WithSchedule(qt.Overlap), qt.WithWorkers(workers))...)

		maxRel := 0.0
		for i := range ores.Trace {
			if rel := relDiff(ores.Trace[i].Current, pres.Trace[i].Current); rel > maxRel {
				maxRel = rel
			}
		}
		pAgg, oAgg := report.PerIter(pres.Trace), report.PerIter(ores.Trace)

		// Stream-model prediction: rank 0's measured per-iteration compute
		// spread over its points, with the measured communication share as
		// the copy fraction; full pipelining bounds the attainable gain.
		points := ores.Load[0].Pairs + ores.Load[0].Points
		frac := 0.0
		if oAgg.ComputeNs > 0 {
			frac = float64(oAgg.CommNs) / float64(oAgg.ComputeNs)
		}
		tasks := stream.GFTaskSet(points, float64(oAgg.ComputeNs)/1e9, frac)
		pred := stream.Makespan(tasks, 1) / stream.Makespan(tasks, 32)

		rows = append(rows, report.OverlapRow{
			P: p, Workers: workers,
			PhasesWallNs: pAgg.WallNs, OverlapWallNs: oAgg.WallNs,
			Speedup:   float64(pAgg.WallNs) / float64(oAgg.WallNs),
			ComputeNs: oAgg.ComputeNs, CommNs: oAgg.CommNs,
			StreamPredGain: pred,
			MaxRelDiff:     maxRel,
		})
	}
	return rows
}

func relDiff(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := b
	if m < 0 {
		m = -m
	}
	if m == 0 {
		return d
	}
	return d / m
}
