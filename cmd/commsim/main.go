// Command commsim runs the SSE phase under both domain decompositions on
// the simulated MPI runtime, verifies that they produce identical
// self-energies, and reports the measured communication volumes and call
// counts side by side with the analytic model — the executable form of
// the paper's Fig. 5 / Tables 4–5 comparison.
//
// Example:
//
//	commsim -ranks 8 -na 24 -ne 16
package main

import (
	"flag"
	"fmt"
	"math/cmplx"
	"os"

	"repro/internal/comm"
	"repro/internal/decomp"
	"repro/internal/model"
	"repro/internal/qt"
	"repro/internal/sse"
)

func main() {
	ranks := flag.Int("ranks", 6, "simulated MPI ranks")
	na := flag.Int("na", 24, "atoms")
	bnum := flag.Int("bnum", 4, "slabs")
	norb := flag.Int("norb", 2, "orbitals per atom")
	ne := flag.Int("ne", 16, "energy points")
	nw := flag.Int("nw", 4, "phonon frequencies")
	ta := flag.Int("ta", 0, "atom tiles for DaCe (0 = auto)")
	flag.Parse()

	dev, err := qt.Spec{
		Atoms: *na, Slabs: *bnum, Orbitals: *norb,
		EnergyPoints: *ne, PhononModes: *nw,
	}.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	p := dev.P

	// Synthetic Green's functions (the decomposition moves data; it does
	// not care where it came from).
	in := sse.RandomInput(dev, 1)

	seq := (sse.DaCe{}).Compute(in)

	fmt.Printf("device Na=%d NE=%d Nkz=%d Nω=%d, %d ranks\n\n", p.Na, p.NE, p.Nkz, p.Nomega, *ranks)

	outO, so, err := decomp.RunOMEN(comm.NewWorld(*ranks), in, *ranks)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("OMEN decomposition (momentum x energy):\n")
	fmt.Printf("  bytes moved:   %d\n", so.BytesSent)
	fmt.Printf("  broadcasts:    %d (one per (qz,ω) round)\n", so.Collectives["Bcast"])
	fmt.Printf("  p2p messages:  %d (G≷ stencil replication + Π≷ reduction)\n", so.Sends)
	fmt.Printf("  max |Σ−seq|:   %.2e\n\n", maxDiff(outO.SigL.Data, seq.SigL.Data))

	taV := *ta
	if taV <= 0 {
		taV = *ranks
		for taV > 1 && *ranks%taV != 0 {
			taV--
		}
	}
	te := *ranks / taV
	outD, sd, err := decomp.RunDaCe(comm.NewWorld(*ranks), in, taV, te)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("DaCe decomposition (Ta=%d x TE=%d atom x energy tiles):\n", taV, te)
	fmt.Printf("  bytes moved:   %d\n", sd.BytesSent)
	fmt.Printf("  collectives:   %d Alltoallv (constant, §5.2)\n", sd.Collectives["Alltoallv"])
	fmt.Printf("  max |Σ−seq|:   %.2e\n\n", maxDiff(outD.SigL.Data, seq.SigL.Data))

	fmt.Printf("measured volume reduction: %.1fx\n", float64(so.BytesSent)/float64(sd.BytesSent))
	fmt.Printf("modelled at this size:     %.1fx\n",
		model.OMENCommVolume(p, *ranks)/model.DaCeCommVolume(p, taV, te))
	fmt.Println("\n(at paper scale the model gives 59-114x, Tables 4-5; run paperbench -table 4)")
}

func maxDiff(a, b []complex128) float64 {
	var mx float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > mx {
			mx = d
		}
	}
	return mx
}
