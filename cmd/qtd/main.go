// Command qtd is the multi-tenant simulation daemon: it serves the qt
// facade over HTTP/JSON, streams per-iteration telemetry as server-sent
// events, schedules runs through a fair-share queue onto a bounded pool
// of solver slots, answers repeated specs from a content-addressed
// result cache (and warm-starts near-identical ones from cached
// converged Σ≷ states), and records every run in a persistent registry.
//
// API (all under /v1):
//
//	POST   /runs              submit {tenant, priority, config}; 202 queued,
//	                          200 cached, 429 + Retry-After when shedding.
//	                          ?stream=sse streams run/iter/done frames and
//	                          cancels the run if the client hangs up.
//	GET    /runs              query the registry (?tenant= &status= &key= &limit=;
//	                          newest 100 by default, limit capped at 1000)
//	GET    /runs/{id}         one registry record
//	DELETE /runs/{id}         cancel a queued or running run
//	GET    /runs/{id}/stream  attach to (or replay) the telemetry stream
//	GET    /runs/{id}/report  the rendered report (?format=text|json|csv)
//	GET    /runs/{id}/trace   Chrome trace-event JSON of a config.trace=true
//	                          run (load in Perfetto / chrome://tracing)
//	POST   /ensembles         submit a disorder study {tenant, members,
//	                          base_seed, config} — config.spec.profile
//	                          required; members run as registry-linked
//	                          runs (GET /runs?study=), duplicates answer
//	                          from the cache, siblings warm-start.
//	                          ?stream=sse streams study/member/done frames
//	GET    /ensembles         query studies (?tenant= &status= &limit=)
//	GET    /ensembles/{id}    one study record (lineage, progress, report)
//	DELETE /ensembles/{id}    cancel a running study and its members
//	GET    /ensembles/{id}/stream  attach to (or replay) member progress
//	GET    /ensembles/{id}/report  the reduced mean/variance/CI report
//	                          (?format=text|json|csv)
//	GET    /stats             queue, slot, and cache counters
//	GET    /healthz           liveness
//
// Observability (outside /v1):
//
//	GET /metrics              Prometheus text exposition: per-tenant queue
//	                          depth/wait/sheds, slot utilization, cache and
//	                          warm-start counters, run duration/iteration
//	                          histograms, exchange byte totals
//	GET /debug/pprof/         runtime profiles (only with -pprof)
//
// Example:
//
//	qtd -addr :8080 -data ./qtd-data -slots 4
//	curl -s localhost:8080/v1/runs -d '{"tenant":"acme","config":{"spec":{"atoms":24,"slabs":6}}}'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	data := flag.String("data", "", "run registry directory (empty = in-memory only)")
	slots := flag.Int("slots", 0, "concurrent solver slots (0 = half the CPUs, min 2)")
	queueCap := flag.Int("queue", 64, "admission queue capacity")
	cacheCap := flag.Int("cache", 128, "result cache capacity (entries)")
	noWarm := flag.Bool("no-warm-start", false, "disable warm-starting from cached Σ≷ states")
	logLevel := flag.String("log", "info", "structured log level: debug, info, warn, error")
	withPprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintln(os.Stderr, "qtd: -log:", err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	svc, err := server.New(server.Config{
		Slots: *slots, QueueCap: *queueCap, CacheCap: *cacheCap,
		DataDir: *data, NoWarmStart: *noWarm,
		Logger: logger,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "qtd:", err)
		os.Exit(1)
	}

	// The service handles everything it routes (/v1, /metrics); the outer
	// mux only exists to optionally graft the pprof endpoints beside it.
	handler := http.Handler(svc)
	if *withPprof {
		mux := http.NewServeMux()
		mux.Handle("/", svc)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}

	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("qtd: listening on %s (registry: %s)", *addr, registryLabel(*data))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "qtd:", err)
		os.Exit(1)
	case s := <-sig:
		log.Printf("qtd: %s, shutting down", s)
	}

	// Cancel in-flight runs first (their SSE streams terminate and the
	// registry records them as cancelled), then drain the HTTP side.
	svc.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	httpSrv.Shutdown(ctx)
}

func registryLabel(dir string) string {
	if dir == "" {
		return "in-memory"
	}
	return dir
}
