// Package staging models the data-ingestion path of the simulator
// (§7.1.1): loading the CP2K-produced material files (GiBs across many
// files) at scale.
//
// Two strategies are compared:
//
//   - Naive: every rank opens and reads its inputs from the parallel
//     filesystem. The PFS delivers a fixed aggregate bandwidth, so the
//     time grows linearly with the node count — over 30 minutes at
//     near-full Piz Daint scale.
//
//   - Staged: a single reader loads the material once, then delivers it
//     with a chunked, pipelined broadcast over the interconnect. The time
//     is one read plus one pipelined broadcast: under a minute, 31.1 s on
//     4,560 Summit nodes.
//
// Besides the closed-form model, the package executes a real chunked
// broadcast over the simulated MPI runtime to verify the data path and to
// measure the per-strategy byte volumes.
package staging

import (
	"fmt"

	"repro/internal/comm"
)

// PFS describes a parallel filesystem and interconnect for the model.
type PFS struct {
	// AggregateBW is the filesystem's total delivered bandwidth under
	// contention (bytes/s). Calibrated from the paper's measurement of
	// 1,112 s for 2,589 nodes reading ~10 GiB each: ≈ 25 GB/s.
	AggregateBW float64
	// NodeReadBW is what a single reader obtains (bytes/s).
	NodeReadBW float64
	// InjectionBW is the per-node network bandwidth for the broadcast.
	InjectionBW float64
}

// Default returns a Piz Daint/Summit-era filesystem description.
func Default() PFS {
	return PFS{
		AggregateBW: 25e9,
		NodeReadBW:  0.4e9,
		InjectionBW: 23e9,
	}
}

// NaiveTime models every node independently reading `bytes` of input from
// the shared filesystem: contention serializes the aggregate volume.
func (f PFS) NaiveTime(bytes float64, nodes int) float64 {
	return bytes * float64(nodes) / f.AggregateBW
}

// StagedTime models the chunked-broadcast strategy: one read from the PFS
// followed by a pipelined binomial broadcast (the log₂ P term vanishes
// into the pipeline once the chunk count exceeds the tree depth).
func (f PFS) StagedTime(bytes float64, nodes int) float64 {
	read := bytes / f.NodeReadBW
	bcast := bytes / f.InjectionBW * 2 // pipelined; factor 2 for store+forward
	_ = nodes
	return read + bcast
}

// ChunkedBcast distributes data from rank 0 to every rank in chunks over
// the simulated MPI fabric, returning each rank's reassembled copy length
// and the measured traffic. It is the executable counterpart of the model:
// the broadcast volume is (P−1)·len(data) regardless of chunking, while
// the naive strategy would read P·len(data) from the filesystem.
func ChunkedBcast(w *comm.World, data []complex128, chunk int) error {
	if chunk <= 0 {
		return fmt.Errorf("staging: chunk size must be positive")
	}
	total := len(data)
	return w.Run(func(c *comm.Comm) error {
		buf := make([]complex128, 0, total)
		for off := 0; off < total; off += chunk {
			end := off + chunk
			if end > total {
				end = total
			}
			var part []complex128
			if c.Rank() == 0 {
				part = data[off:end]
			}
			part = c.Bcast(0, part)
			buf = append(buf, part...)
		}
		if len(buf) != total {
			return fmt.Errorf("staging: rank %d assembled %d of %d elements", c.Rank(), len(buf), total)
		}
		for i, v := range buf {
			if v != data[i] {
				return fmt.Errorf("staging: rank %d corrupted element %d", c.Rank(), i)
			}
		}
		return nil
	})
}

// IngestionRow is one point of the §7.1.1 comparison.
type IngestionRow struct {
	Nodes     int
	NaiveSec  float64
	StagedSec float64
	Speedup   float64
}

// Compare evaluates both strategies for a 10 GiB material load.
func Compare(nodes []int) []IngestionRow {
	f := Default()
	const bytes = 10 * (1 << 30)
	out := make([]IngestionRow, 0, len(nodes))
	for _, n := range nodes {
		nv := f.NaiveTime(bytes, n)
		st := f.StagedTime(bytes, n)
		out = append(out, IngestionRow{Nodes: n, NaiveSec: nv, StagedSec: st, Speedup: nv / st})
	}
	return out
}
