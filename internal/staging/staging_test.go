package staging

import (
	"math/rand"
	"testing"

	"repro/internal/comm"
)

func TestNaiveScalesLinearly(t *testing.T) {
	f := Default()
	t1 := f.NaiveTime(1<<30, 1000)
	t2 := f.NaiveTime(1<<30, 2000)
	if t2/t1 < 1.99 || t2/t1 > 2.01 {
		t.Fatalf("naive ingestion should scale linearly with nodes: %g", t2/t1)
	}
}

func TestStagedIndependentOfNodes(t *testing.T) {
	f := Default()
	if f.StagedTime(1<<30, 100) != f.StagedTime(1<<30, 5000) {
		t.Fatal("staged ingestion should not depend on node count")
	}
}

func TestPaperCalibration(t *testing.T) {
	// §7.1.1: 1,112 s at 2,589 nodes naive; 31.1 s staged at 4,560 nodes;
	// "over 30 minutes" at 5,300 nodes.
	f := Default()
	const bytes = 10 * (1 << 30)
	naive := f.NaiveTime(bytes, 2589)
	if naive < 900 || naive > 1400 {
		t.Fatalf("naive(2589) = %.0f s, paper measured 1,112 s", naive)
	}
	full := f.NaiveTime(bytes, 5300)
	if full < 1800 {
		t.Fatalf("naive(5300) = %.0f s, paper says over 30 minutes", full)
	}
	staged := f.StagedTime(bytes, 4560)
	if staged < 15 || staged > 60 {
		t.Fatalf("staged(4560) = %.1f s, paper measured 31.1 s", staged)
	}
}

func TestCompareRows(t *testing.T) {
	rows := Compare([]int{100, 2589, 4560})
	for _, r := range rows {
		if r.StagedSec >= r.NaiveSec && r.Nodes > 10 {
			t.Fatalf("staging should win at %d nodes", r.Nodes)
		}
	}
	// The win grows with scale.
	if rows[2].Speedup <= rows[0].Speedup {
		t.Fatal("staging advantage should grow with node count")
	}
}

func TestChunkedBcastDeliversData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]complex128, 1000)
	for i := range data {
		data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	w := comm.NewWorld(8)
	if err := ChunkedBcast(w, data, 64); err != nil {
		t.Fatal(err)
	}
	// Volume: (P−1) × payload, regardless of chunking.
	want := int64(7) * int64(len(data)) * 16
	if got := w.Stats().BytesSent; got != want {
		t.Fatalf("broadcast volume %d, want %d", got, want)
	}
}

func TestChunkedBcastRejectsBadChunk(t *testing.T) {
	if err := ChunkedBcast(comm.NewWorld(2), make([]complex128, 4), 0); err == nil {
		t.Fatal("expected error for zero chunk")
	}
}
