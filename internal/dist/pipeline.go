package dist

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/bc"
	"repro/internal/comm"
	"repro/internal/decomp"
	"repro/internal/device"
	"repro/internal/negf"
	"repro/internal/obs"
	"repro/internal/sdfg"
	"repro/internal/tensor"
)

// stopRideFlag is the cancellation contribution rank 0 adds to the
// ride-along control word of the observable reduction. Failure flags are
// whole (each failing rank adds 1, the sum stays integral), so a
// fractional part marks a pure stop request and the two agreements share
// one reduced word without a second collective. 0.5 is exact in binary
// floating point, so the encoding survives the summation bit-for-bit.
const stopRideFlag = 0.5

// flagFailure reports whether the reduced control word carries at least
// one rank's solve failure (failure outranks a stop request).
func flagFailure(f float64) bool { return f >= 1 }

// pipeRun is one rank's control state across the whole pipelined run:
// the speculation fence plus the convergence bookkeeping every rank
// tracks symmetrically. All plain fields are written only by conv nodes
// (which form a dependency chain) or between window drains, so the
// executor's scheduling lock and the drain barrier order every access;
// stopAt alone is read by speculative nodes racing the deciding conv
// node and is therefore atomic.
type pipeRun struct {
	// stopAt is the first absolute iteration index whose work must be
	// discarded. Speculative nodes consult it to cut work short; comm
	// nodes consult it after the conv fence of the previous iteration,
	// where its value is identical on every rank (it derives only from
	// globally reduced data), so all ranks skip or post each collective
	// in agreement.
	stopAt atomic.Int64

	halt      bool // set with stopAt: no further window is built
	converged bool
	failed    bool
	err       error // this rank's own solve failure, if any

	stopErr  error // rank 0: pending Progress cancellation
	wantStop bool  // rank 0: ride the stop request on the next reduction

	prev     float64     // previous valid iteration's global current
	global   *partialObs // last valid iteration's reduced observables
	lastConv time.Duration
	decided  time.Duration // window-relative instant the halt decision landed
}

// windowIter is the per-iteration slice of a window's state: the shared
// iterRun node state plus private result slots and the measured
// compute/communication split the conv node folds into IterStats.
type windowIter struct {
	st    *iterRun
	elRes []*negf.ElectronPointResult
	phRes []*negf.PhononPointResult

	compNs, commNs atomic.Int64
}

// runRankPipeline is one rank's life under SchedulePipeline: the task
// graph spans a window of PipelineDepth iterations, so iteration n+1's
// boundary and point solves start as soon as iteration n's mixed Σ≷/Π≷
// is available for their points — the cross-iteration form of the §7.1.3
// overlap. Convergence and cancellation agreement ride the per-iteration
// observable IAllreduce (no dedicated barrier or agreement collective),
// and the per-iteration conv fence discards speculated work when either
// lands. Per-iteration arithmetic is untouched, so the recorded currents
// match SchedulePhases bitwise.
func runRankPipeline(c *comm.Comm, dev *device.Device, opts Options, res *Result) error {
	rs := newRankState(c, dev, opts)
	r := c.Rank()
	ex := sdfg.NewExecutor(opts.Workers)

	trc := opts.Tracer
	var traceBase int64
	if trc != nil {
		ex.Observer = func(label string, kind sdfg.Kind, worker int, start, end time.Duration) {
			cat := "task"
			switch {
			case label == "sse/tile":
				cat = "sse"
			case label == "post/obs" || label == "wait/obs":
				cat = "reduce"
			case kind == sdfg.Comm:
				cat = "exchange"
			}
			trc.Add(obs.Span{
				Name: label, Cat: cat, Rank: r, Track: 100 + worker, I: -1, J: -1,
				Start: traceBase + start.Nanoseconds(), Dur: (end - start).Nanoseconds(),
			})
		}
	}

	pr := &pipeRun{prev: math.NaN()}
	pr.stopAt.Store(math.MaxInt64)

	for base := 0; base < opts.MaxIter && !pr.halt; {
		w := opts.PipelineDepth
		if rem := opts.MaxIter - base; w > rem {
			w = rem
		}
		winStart := time.Now()
		tWin := trc.Begin()
		traceBase = tWin
		pr.lastConv = 0
		win := make([]*windowIter, w)
		for k := range win {
			win[k] = &windowIter{
				st:    &iterRun{},
				elRes: make([]*negf.ElectronPointResult, len(rs.pairs)),
				phRes: make([]*negf.PhononPointResult, len(rs.points)),
			}
		}
		g := rs.buildWindowGraph(opts, pr, win, base, winStart, res)
		if _, err := ex.Run(g); err != nil {
			return fmt.Errorf("dist: pipeline window at iteration %d: %w", base, err)
		}
		drain := time.Since(winStart)
		trc.End(r, 0, "iter", "window", base, -1, tWin)
		if trc != nil && pr.halt {
			// The tail between the halt decision and the window drain is
			// pure speculation overhead: record it as a stall span, plus
			// one marker per discarded iteration.
			trc.Add(obs.Span{
				Name: "pipeline/fence", Cat: "stall", Rank: r, Track: 99, I: base, J: -1,
				Start: tWin + pr.decided.Nanoseconds(), Dur: (drain - pr.decided).Nanoseconds(),
			})
			for k := range win {
				if a := base + k; int64(a) >= pr.stopAt.Load() {
					trc.Add(obs.Span{
						Name: "pipeline/discard", Cat: "stall", Rank: r, Track: 99, I: a, J: -1,
						Start: tWin + pr.decided.Nanoseconds(), Dur: (drain - pr.decided).Nanoseconds(),
					})
				}
			}
		}
		if pr.failed {
			if pr.err != nil {
				return fmt.Errorf("dist: iteration %d: %w", pr.stopAt.Load(), pr.err)
			}
			return nil
		}
		base += w
	}

	if r == 0 {
		res.stopErr = pr.stopErr
	}
	rs.epilogue(opts, res, pr.converged, pr.global)
	return nil
}

// buildWindowGraph lays out a window of w consecutive self-consistent
// iterations as one dataflow graph. Each iteration replicates the
// overlapped schedule's node structure with three changes:
//
//   - mixing is split into per-point nodes, so iteration k+1's solve of a
//     point depends only on the mixed Σ (or Π) of that same point — the
//     finest-grained cross-iteration release the data allows;
//   - every comm post of iteration k+1 additionally depends on the conv
//     fence of iteration k, so the (symmetric) skip decision is settled
//     before any rank commits to a collective — all ranks post or all
//     skip, keeping the nonblocking exchanges matched;
//   - a conv node per iteration consumes the ride-along reduction,
//     records IterStats, runs the Progress hook on rank 0 and moves the
//     speculation fence on convergence, failure, or a stop request.
//
// Decisions derive only from globally reduced values (the current and
// the control word), so every rank moves the fence identically with no
// agreement collective of its own; a rank-0 cancellation is folded into
// the next reduction's control word instead of being acted on locally.
func (rs *rankState) buildWindowGraph(opts Options, pr *pipeRun, win []*windowIter,
	base int, winStart time.Time, res *Result) *sdfg.Graph {

	p := rs.dev.P
	c := rs.c
	r := c.Rank()
	g := sdfg.New()

	var prevConv sdfg.NodeID = -1
	var prevBCEl, prevBCPh, prevMixSig, prevMixPi []sdfg.NodeID

	for k := range win {
		k := k
		a := base + k
		wi := win[k]
		st := wi.st
		st.part = newPartialObs(p)
		st.plan = decomp.NewDaCePlan(r, rs.tiles, rs.src, rs.atomSets, rs.in).
			WithPrecision(opts.Precision)

		skip := func() bool { return pr.stopAt.Load() <= int64(a) }
		// add wraps every node with the per-iteration compute/comm timers
		// the conv node folds into IterStats — conv depends (transitively)
		// on every node of its iteration, so the counters are complete
		// when it reads them.
		add := func(spec sdfg.Spec, deps ...sdfg.NodeID) sdfg.NodeID {
			inner := spec.Run
			isComm := spec.Kind == sdfg.Comm
			spec.Run = func() error {
				t0 := time.Now()
				err := inner()
				d := time.Since(t0).Nanoseconds()
				if isComm {
					wi.commNs.Add(d)
				} else {
					wi.compNs.Add(d)
				}
				return err
			}
			return g.Add(spec, deps...)
		}

		// ── GF solves. A point's BC chain serializes on the previous
		// iteration's BC node for the same point: the boundary depends
		// only on (momentum, energy) — the iteration-lag bc.Cache
		// tolerates trivially — so every iteration past the first is a
		// guaranteed cache hit instead of a duplicated decimation.
		elDone := make([]sdfg.NodeID, len(rs.pairs))
		bcEl := make([]sdfg.NodeID, len(rs.pairs))
		for i, pair := range rs.pairs {
			i, ik, ie := i, pair[0], pair[1]
			var deps []sdfg.NodeID
			if opts.CacheMode == bc.CacheBC {
				var bdeps []sdfg.NodeID
				if k > 0 {
					bdeps = append(bdeps, prevBCEl[i])
				}
				bcEl[i] = add(sdfg.Spec{
					Label: fmt.Sprintf("bc/el/%d,%d", ik, ie), Phase: 3 * k,
					Run: func() error {
						if skip() || st.failed() {
							return nil
						}
						if err := rs.ps.PrepareElectronBC(rs.hams[ik], ik, ie); err != nil {
							st.fail(fmt.Errorf("point (kz=%d, E=%d): %w", ik, ie, err))
						}
						return nil
					},
				}, bdeps...)
				deps = append(deps, bcEl[i])
			}
			if k > 0 {
				deps = append(deps, prevMixSig[i])
			}
			elDone[i] = add(sdfg.Spec{
				Label: fmt.Sprintf("rgf/el/%d,%d", ik, ie), Phase: 3 * k,
				Run: func() error {
					if skip() || st.failed() {
						return nil
					}
					pt, err := rs.ps.SolveElectronPoint(rs.hams[ik], ik, ie)
					if err != nil {
						st.fail(fmt.Errorf("point (kz=%d, E=%d): %w", ik, ie, err))
						return nil
					}
					wi.elRes[i] = pt
					return nil
				},
			}, deps...)
		}
		phDone := make([]sdfg.NodeID, len(rs.points))
		bcPh := make([]sdfg.NodeID, len(rs.points))
		for j, point := range rs.points {
			j, iq, m := j, point[0], point[1]
			var deps []sdfg.NodeID
			if opts.CacheMode == bc.CacheBC {
				var bdeps []sdfg.NodeID
				if k > 0 {
					bdeps = append(bdeps, prevBCPh[j])
				}
				bcPh[j] = add(sdfg.Spec{
					Label: fmt.Sprintf("bc/ph/%d,%d", iq, m), Phase: 3 * k,
					Run: func() error {
						if skip() || st.failed() {
							return nil
						}
						if err := rs.ps.PreparePhononBC(rs.dyns[iq], iq, m); err != nil {
							st.fail(fmt.Errorf("point (qz=%d, ω=%d): %w", iq, m, err))
						}
						return nil
					},
				}, bdeps...)
				deps = append(deps, bcPh[j])
			}
			if k > 0 {
				deps = append(deps, prevMixPi[j])
			}
			phDone[j] = add(sdfg.Spec{
				Label: fmt.Sprintf("rgf/ph/%d,%d", iq, m), Phase: 3 * k,
				Run: func() error {
					if skip() || st.failed() {
						return nil
					}
					pt, err := rs.ps.SolvePhononPoint(rs.dyns[iq], iq, m)
					if err != nil {
						st.fail(fmt.Errorf("point (qz=%d, ω=%d): %w", iq, m, err))
						return nil
					}
					wi.phRes[j] = pt
					return nil
				},
			}, deps...)
		}

		elAccum := add(sdfg.Spec{
			Label: "accum/el", Phase: 3 * k,
			Run: func() error {
				if skip() || st.failed() {
					return nil
				}
				for i, pair := range rs.pairs {
					st.part.addElectron(p, pair[1], wi.elRes[i])
				}
				return nil
			},
		}, elDone...)
		// accum/ph overwrites the shared dos/occ accumulators the
		// temperature map is fitted from, so — unlike the pure speculation
		// upstream — it is fenced on the previous conv: a converged
		// decision keeps the accumulators at the converged iteration.
		phAccumDeps := append([]sdfg.NodeID{}, phDone...)
		if prevConv >= 0 {
			phAccumDeps = append(phAccumDeps, prevConv)
		}
		phAccum := add(sdfg.Spec{
			Label: "accum/ph", Phase: 3 * k,
			Run: func() error {
				if skip() || st.failed() {
					return nil
				}
				for at := range rs.dos {
					for m := range rs.dos[at] {
						rs.dos[at][m], rs.occ[at][m] = 0, 0
					}
				}
				for j, point := range rs.points {
					st.part.addPhonon(p, point[1], wi.phRes[j], rs.dos, rs.occ)
				}
				return nil
			},
		}, phAccumDeps...)

		elLoss := add(sdfg.Spec{
			Label: "collision/el", Phase: 3 * k,
			Run: func() error {
				if skip() {
					return nil
				}
				st.part.elLoss = rs.ps.ElectronCollisionSum(rs.pairs)
				return nil
			},
		}, elDone...)
		phGain := add(sdfg.Spec{
			Label: "collision/ph", Phase: 3 * k,
			Run: func() error {
				if skip() {
					return nil
				}
				st.part.phGain = rs.ps.PhononCollisionSum(rs.points)
				return nil
			},
		}, phDone...)

		// ── SSE exchanges. Posts gate on the previous conv fence: the
		// skip decision below derives only from reduced data settled at
		// that fence, so it is identical on every rank — all post or all
		// skip, and the nonblocking collectives stay matched. Within one
		// iteration the decision cannot change (only this iteration's own
		// conv, which runs after all of these nodes, can move the fence
		// into it), so a posted request is always waited.
		commDeps := func(deps ...sdfg.NodeID) []sdfg.NodeID {
			if prevConv >= 0 {
				deps = append(deps, prevConv)
			}
			return deps
		}
		postG := add(sdfg.Spec{
			Label: "post/G", Kind: sdfg.Comm, Phase: 3*k + 1,
			Run: func() error {
				if skip() {
					return nil
				}
				st.reqG = st.plan.PostG(c)
				return nil
			},
		}, commDeps(elDone...)...)
		postD := add(sdfg.Spec{
			Label: "post/D", Kind: sdfg.Comm, Phase: 3*k + 1,
			Run: func() error {
				if skip() {
					return nil
				}
				st.reqD = st.plan.PostD(c)
				return nil
			},
		}, commDeps(phDone...)...)
		waitG := add(sdfg.Spec{
			Label: "wait/G", Kind: sdfg.Comm, Phase: 3*k + 1,
			Run: func() error {
				if st.reqG == nil {
					return nil
				}
				st.plan.UnpackG(st.reqG.Wait())
				return nil
			},
		}, postG, postD)
		waitD := add(sdfg.Spec{
			Label: "wait/D", Kind: sdfg.Comm, Phase: 3*k + 1,
			Run: func() error {
				if st.reqD == nil {
					return nil
				}
				st.plan.UnpackD(st.reqD.Wait())
				return nil
			},
		}, postD, postG)
		tile := add(sdfg.Spec{
			Label: "sse/tile", Phase: 3*k + 1,
			Run: func() error {
				if skip() {
					return nil
				}
				st.plan.ComputeTile()
				st.part.sse = st.plan.Output().Stats
				return nil
			},
		}, waitG, waitD)
		postSig := add(sdfg.Spec{
			Label: "post/Sigma", Kind: sdfg.Comm, Phase: 3*k + 1,
			Run: func() error {
				if skip() {
					return nil
				}
				st.reqSig = st.plan.PostSigma(c)
				return nil
			},
		}, tile)
		postPi := add(sdfg.Spec{
			Label: "post/Pi", Kind: sdfg.Comm, Phase: 3*k + 1,
			Run: func() error {
				if skip() {
					return nil
				}
				st.reqPi = st.plan.PostPi(c)
				return nil
			},
		}, tile)
		waitSig := add(sdfg.Spec{
			Label: "wait/Sigma", Kind: sdfg.Comm, Phase: 3*k + 1,
			Run: func() error {
				if st.reqSig == nil {
					return nil
				}
				st.plan.UnpackSigma(st.reqSig.Wait())
				return nil
			},
		}, postSig, postPi)
		waitPi := add(sdfg.Spec{
			Label: "wait/Pi", Kind: sdfg.Comm, Phase: 3*k + 1,
			Run: func() error {
				if st.reqPi == nil {
					return nil
				}
				st.plan.UnpackPi(st.reqPi.Wait())
				return nil
			},
		}, postPi, postSig)

		// Per-point mixing: the cross-iteration release points. The next
		// iteration's solve of point i starts the moment its own Σ plane
		// is mixed — it does not wait for the whole mixing sweep. A
		// skipped mix leaves the solver state at the last valid iteration,
		// which is exactly the discard rule of the speculation fence.
		mixSig := make([]sdfg.NodeID, len(rs.pairs))
		for i, pair := range rs.pairs {
			ik, ie := pair[0], pair[1]
			mixSig[i] = add(sdfg.Spec{
				Label: fmt.Sprintf("mix/Sigma/%d,%d", ik, ie), Phase: 3*k + 1,
				Run: func() error {
					if skip() {
						return nil
					}
					out := st.plan.Output()
					tensor.MixSlice(rs.ps.SigL.Plane(ik, ie), out.SigL.Plane(ik, ie), opts.Mixing)
					tensor.MixSlice(rs.ps.SigG.Plane(ik, ie), out.SigG.Plane(ik, ie), opts.Mixing)
					return nil
				},
			}, waitSig, elLoss)
		}
		mixPi := make([]sdfg.NodeID, len(rs.points))
		for j, point := range rs.points {
			iq, m := point[0], point[1]
			mixPi[j] = add(sdfg.Spec{
				Label: fmt.Sprintf("mix/Pi/%d,%d", iq, m), Phase: 3*k + 1,
				Run: func() error {
					if skip() {
						return nil
					}
					out := st.plan.Output()
					tensor.MixSlice(rs.ps.PiL.Plane(iq, m-1), out.PiL.Plane(iq, m-1), opts.Mixing)
					tensor.MixSlice(rs.ps.PiG.Plane(iq, m-1), out.PiG.Plane(iq, m-1), opts.Mixing)
					return nil
				},
			}, waitPi, phGain)
		}

		// ── Ride-along reduction: observables plus the control word
		// (failure count + fractional stop request) in one IAllreduce.
		obsPost := add(sdfg.Spec{
			Label: "post/obs", Kind: sdfg.Comm, Phase: 3*k + 2,
			Run: func() error {
				if skip() {
					return nil
				}
				if st.failed() {
					st.part.flag = 1
				}
				if r == 0 && pr.wantStop {
					st.part.flag += stopRideFlag
				}
				st.part.sseB = float64(st.plan.OffRankBytes())
				st.part.redB = reduceShare(c, vecLen(p))
				st.part.fbk = float64(st.plan.FallbackBlocks())
				st.reqObs = c.IAllreduce(decomp.SlotObs, st.part.pack())
				return nil
			},
		}, elAccum, phAccum, elLoss, phGain, tile, postSig, postPi)
		waitObs := add(sdfg.Spec{
			Label: "wait/obs", Kind: sdfg.Comm, Phase: 3*k + 2,
			Run: func() error {
				if st.reqObs == nil {
					return nil
				}
				st.global = unpackObs(st.reqObs.Wait(), p)
				return nil
			},
		}, obsPost)

		// ── Conv fence: the correctness gate of the speculation. It runs
		// after every node of its iteration (transitively through its
		// deps), computes the identical decision on every rank from the
		// reduced data, and moves the fence — discarding the in-flight
		// speculated iterations behind it.
		convDeps := append([]sdfg.NodeID{waitObs}, mixSig...)
		convDeps = append(convDeps, mixPi...)
		if prevConv >= 0 {
			convDeps = append(convDeps, prevConv)
		}
		conv := add(sdfg.Spec{
			Label: fmt.Sprintf("conv/%d", a), Phase: 3*k + 2,
			Run: func() error {
				if pr.stopAt.Load() <= int64(a) {
					return nil
				}
				gl := st.global
				if gl == nil {
					return nil
				}
				if gl.flag != 0 {
					pr.stopAt.Store(int64(a))
					pr.halt = true
					pr.decided = time.Since(winStart)
					if flagFailure(gl.flag) {
						pr.failed = true
						pr.err = st.err // nil on healthy ranks
					}
					return nil
				}
				cur := gl.currentL
				rel := math.Abs(cur-pr.prev) / math.Max(math.Abs(cur), 1e-300)
				now := time.Since(winStart)
				if r == 0 {
					iterSt := IterStats{
						Iter: a, Current: cur, RelChange: rel,
						ElEnergyLoss: gl.elLoss, PhEnergyGain: gl.phGain,
						SSE:      gl.sse,
						SSEBytes: int64(gl.sseB), ReduceBytes: int64(gl.redB),
						FallbackBlocks: int64(gl.fbk),
						WallNs:         (now - pr.lastConv).Nanoseconds(),
						ComputeNs:      wi.compNs.Load(),
						CommNs:         wi.commNs.Load(),
					}
					res.IterTrace = append(res.IterTrace, iterSt)
					if opts.Progress != nil && pr.stopErr == nil {
						if err := opts.Progress(iterSt); err != nil {
							pr.stopErr = err
							pr.wantStop = true
						}
					}
				}
				pr.lastConv = now
				pr.global = gl
				pr.prev = cur
				if a > 0 && rel < opts.Tol {
					pr.converged = true
					pr.halt = true
					pr.decided = now
					pr.stopAt.Store(int64(a + 1))
				}
				return nil
			},
		}, convDeps...)

		prevConv = conv
		prevBCEl, prevBCPh = bcEl, bcPh
		prevMixSig, prevMixPi = mixSig, mixPi
	}
	return g
}
