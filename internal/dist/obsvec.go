package dist

import (
	"repro/internal/device"
	"repro/internal/negf"
	"repro/internal/sse"
)

// partialObs is one rank's additive share of the global observables — the
// payload of the per-iteration Allreduce. Every field is a plain sum over
// the rank's owned points, so the elementwise reduction of the packed
// vectors yields the global values.
type partialObs struct {
	currentL, currentR float64
	energyL            float64
	phononEnergyL      float64
	elLoss, phGain     float64
	ifaceCur, ifaceEn  []float64
	phIfaceEn          []float64
	diss               []float64
	spectral           []float64
	sse                sse.Stats
	// flag is the failure-agreement bit of the overlapped schedule: the
	// reduced value is nonzero iff any rank's GF solves errored this
	// iteration. The bulk-synchronous path agrees through a dedicated
	// Allreduce instead and leaves it zero.
	flag float64
	// sseB/redB carry each rank's measured off-rank SSE exchange and
	// reduction bytes, so both schedules get per-iteration traffic totals
	// without the barriers counter snapshots would need; fbk carries the
	// rank's fp64-fallback segment count of the mixed-precision wire
	// encoder (zero under FP64).
	sseB, redB, fbk float64
}

func newPartialObs(p device.Params) *partialObs {
	return &partialObs{
		ifaceCur:  make([]float64, p.Bnum-1),
		ifaceEn:   make([]float64, p.Bnum-1),
		phIfaceEn: make([]float64, p.Bnum-1),
		diss:      make([]float64, p.Bnum),
		spectral:  make([]float64, p.NE),
	}
}

// vecLen is the packed length: 6 scalars, three (Bnum−1) profiles, the
// Bnum dissipation profile, the NE spectral current, 4 kernel counters,
// and the 4 control fields (failure flag, byte counters, fallback count).
func vecLen(p device.Params) int {
	return 6 + 3*(p.Bnum-1) + p.Bnum + p.NE + 4 + 4
}

// pack serializes the partial into the real parts of a complex vector,
// the currency of the comm runtime. The capacity hint counts every field
// vecLen counts — including the 4 control words (failure flag, 2 byte
// counters, fallback count) — so the per-iteration Allreduce payload is
// built with a single allocation instead of reallocating mid-append.
func (po *partialObs) pack() []complex128 {
	out := make([]complex128, 0,
		6+len(po.ifaceCur)+len(po.ifaceEn)+len(po.phIfaceEn)+len(po.diss)+len(po.spectral)+4+4)
	put := func(vs ...float64) {
		for _, v := range vs {
			out = append(out, complex(v, 0))
		}
	}
	put(po.currentL, po.currentR, po.energyL, po.phononEnergyL, po.elLoss, po.phGain)
	put(po.ifaceCur...)
	put(po.ifaceEn...)
	put(po.phIfaceEn...)
	put(po.diss...)
	put(po.spectral...)
	put(float64(po.sse.MatMuls), float64(po.sse.Flops),
		float64(po.sse.ScalarOps), float64(po.sse.BytesMoved))
	put(po.flag, po.sseB, po.redB, po.fbk)
	return out
}

// unpackObs deserializes a reduced vector back into the (now global)
// observable totals.
func unpackObs(v []complex128, p device.Params) *partialObs {
	if len(v) != vecLen(p) {
		panic("dist: observable vector length mismatch")
	}
	po := newPartialObs(p)
	pos := 0
	get := func() float64 { f := real(v[pos]); pos++; return f }
	fill := func(dst []float64) {
		for i := range dst {
			dst[i] = get()
		}
	}
	po.currentL, po.currentR = get(), get()
	po.energyL, po.phononEnergyL = get(), get()
	po.elLoss, po.phGain = get(), get()
	fill(po.ifaceCur)
	fill(po.ifaceEn)
	fill(po.phIfaceEn)
	fill(po.diss)
	fill(po.spectral)
	po.sse = sse.Stats{
		MatMuls: int64(get()), Flops: int64(get()),
		ScalarOps: int64(get()), BytesMoved: int64(get()),
	}
	po.flag, po.sseB, po.redB, po.fbk = get(), get(), get(), get()
	return po
}

// observables converts a globally reduced partial into the sequential
// solver's Observables shape (LDOS and AtomTemperature are filled by the
// caller or left nil).
func (po *partialObs) observables(p device.Params) negf.Observables {
	return negf.Observables{
		CurrentL:               po.currentL,
		CurrentR:               po.currentR,
		EnergyCurrentL:         po.energyL,
		PhononEnergyCurrentL:   po.phononEnergyL,
		ElectronEnergyLoss:     po.elLoss,
		PhononEnergyGain:       po.phGain,
		InterfaceCurrent:       po.ifaceCur,
		InterfaceEnergyCurrent: po.ifaceEn,
		PhononInterfaceEnergy:  po.phIfaceEn,
		DissipatedPower:        po.diss,
		SpectralCurrent:        po.spectral,
	}
}
