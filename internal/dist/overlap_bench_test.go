package dist

import (
	"errors"
	"testing"

	"repro/internal/device"
	"repro/internal/negf"
)

// The overlap benchmark pair: the same imbalanced workload (point counts
// not divisible by the world size, so ranks finish their GF shards at
// different times) through both schedules. Compare with
//
//	go test ./internal/dist -bench 'Schedule' -benchtime 3x
//
// The overlapped schedule's makespan must come in below the phase-barrier
// one: the fast ranks' exchange posts and collision partials hide behind
// the slow ranks' remaining solves instead of idling at the barrier, and
// the worker pool exploits the per-rank point parallelism the graph
// exposes. cmd/distsim -mode overlap prints the same comparison next to
// the internal/stream prediction.
func benchDevice(b *testing.B) *device.Device {
	b.Helper()
	p := device.TestParams(12, 3, 2)
	p.Nkz = 3
	p.NE = 14 // 42 pairs over 4 ranks: 10/11/10/11 — imbalanced on purpose
	p.Nomega = 3
	dev, err := device.Build(p)
	if err != nil {
		b.Fatal(err)
	}
	return dev
}

func benchSchedule(b *testing.B, sched Schedule, workers, depth int) {
	b.ReportAllocs()
	dev := benchDevice(b)
	opts := DefaultOptions(4)
	opts.Schedule = sched
	opts.Workers = workers
	opts.PipelineDepth = depth
	opts.MaxIter = 3
	opts.Tol = 1e-300
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(dev, opts)
		if err != nil && !errors.Is(err, negf.ErrNotConverged) {
			b.Fatal(err)
		}
		var wall int64
		for _, it := range res.IterTrace {
			wall += it.WallNs
		}
		b.ReportMetric(float64(wall)/float64(len(res.IterTrace)), "ns/iter")
	}
}

func BenchmarkSchedulePhases(b *testing.B)    { benchSchedule(b, SchedulePhases, 0, 0) }
func BenchmarkScheduleOverlap1W(b *testing.B) { benchSchedule(b, ScheduleOverlap, 1, 0) }
func BenchmarkScheduleOverlap2W(b *testing.B) { benchSchedule(b, ScheduleOverlap, 2, 0) }
func BenchmarkScheduleOverlap4W(b *testing.B) { benchSchedule(b, ScheduleOverlap, 4, 0) }

// The pipelined variants remove the iteration barrier on top of the
// overlap graph: the next iteration's BC solves and electron points
// start as soon as their mixed Σ is in, so the cross-iteration bubble
// closes. Depth 2 is the default window; deeper windows only pay off
// when convergence is far away.
func BenchmarkSchedulePipeline2W(b *testing.B)   { benchSchedule(b, SchedulePipeline, 2, 2) }
func BenchmarkSchedulePipeline4W(b *testing.B)   { benchSchedule(b, SchedulePipeline, 4, 2) }
func BenchmarkSchedulePipeline4WD3(b *testing.B) { benchSchedule(b, SchedulePipeline, 4, 3) }
