package dist

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/bc"
	"repro/internal/negf"
)

// TestOverlapMatchesSequential is the acceptance criterion of the
// overlapped schedule: per-iteration contact currents identical (within
// floating-point reduction ordering, ≤1e-12) to the sequential solver for
// every world size, despite the completely different execution order.
func TestOverlapMatchesSequential(t *testing.T) {
	const iters = 5
	dev := testDevice(t)
	ref := sequentialTrace(t, dev, iters)

	for _, ranks := range []int{1, 2, 4, 8} {
		opts := DefaultOptions(ranks)
		opts.Schedule = ScheduleOverlap
		opts.Workers = 3
		opts.MaxIter = iters
		opts.Tol = 1e-300
		res, err := Run(dev, opts)
		if !errors.Is(err, negf.ErrNotConverged) {
			t.Fatalf("P=%d: expected ErrNotConverged, got %v", ranks, err)
		}
		if len(res.IterTrace) != iters {
			t.Fatalf("P=%d: trace has %d iterations, want %d", ranks, len(res.IterTrace), iters)
		}
		for i, st := range res.IterTrace {
			if e := relErr(st.Current, ref[i].Current); e > 1e-12 {
				t.Errorf("P=%d iter %d: current %.17g vs sequential %.17g (rel %.3g)",
					ranks, i, st.Current, ref[i].Current, e)
			}
			if e := relErr(st.ElEnergyLoss, ref[i].ElEnergyLoss); e > 1e-10 {
				t.Errorf("P=%d iter %d: R_e %.17g vs %.17g (rel %.3g)",
					ranks, i, st.ElEnergyLoss, ref[i].ElEnergyLoss, e)
			}
			if e := relErr(st.PhEnergyGain, ref[i].PhEnergyGain); e > 1e-10 {
				t.Errorf("P=%d iter %d: R_ph %.17g vs %.17g (rel %.3g)",
					ranks, i, st.PhEnergyGain, ref[i].PhEnergyGain, e)
			}
		}
	}
}

// TestOverlapMatchesPhases compares the two schedules directly: identical
// arithmetic means bitwise-equal traces, kernel counters, and traffic.
func TestOverlapMatchesPhases(t *testing.T) {
	const iters = 4
	dev := testDevice(t)

	phases := DefaultOptions(4)
	phases.MaxIter = iters
	phases.Tol = 1e-300
	pres, err := Run(dev, phases)
	if !errors.Is(err, negf.ErrNotConverged) {
		t.Fatalf("phases: %v", err)
	}

	overlap := phases
	overlap.Schedule = ScheduleOverlap
	overlap.Workers = 4
	ores, err := Run(dev, overlap)
	if !errors.Is(err, negf.ErrNotConverged) {
		t.Fatalf("overlap: %v", err)
	}

	if len(ores.IterTrace) != len(pres.IterTrace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(ores.IterTrace), len(pres.IterTrace))
	}
	for i := range ores.IterTrace {
		o, p := ores.IterTrace[i], pres.IterTrace[i]
		if o.Current != p.Current {
			t.Errorf("iter %d: current %.17g vs %.17g", i, o.Current, p.Current)
		}
		if o.SSE != p.SSE {
			t.Errorf("iter %d: SSE stats differ: %+v vs %+v", i, o.SSE, p.SSE)
		}
		// The overlapped path counts its traffic at pack time, the phase
		// path by counter snapshots — both measure the same exchanges.
		if o.SSEBytes != p.SSEBytes {
			t.Errorf("iter %d: SSE bytes %d vs %d", i, o.SSEBytes, p.SSEBytes)
		}
		if o.ReduceBytes != p.ReduceBytes {
			t.Errorf("iter %d: reduce bytes %d vs %d", i, o.ReduceBytes, p.ReduceBytes)
		}
	}
	if ores.Obs.CurrentL != pres.Obs.CurrentL {
		t.Errorf("final current %.17g vs %.17g", ores.Obs.CurrentL, pres.Obs.CurrentL)
	}
	for a := range ores.Obs.AtomTemperature {
		if d := math.Abs(ores.Obs.AtomTemperature[a] - pres.Obs.AtomTemperature[a]); d > 1e-9 {
			t.Errorf("temperature[%d] differs by %g K", a, d)
		}
	}
	for i := range ores.Load {
		if ores.Load[i].Pairs != pres.Load[i].Pairs || ores.Load[i].Points != pres.Load[i].Points {
			t.Errorf("load[%d] differs: %+v vs %+v", i, ores.Load[i], pres.Load[i])
		}
	}
}

// TestOverlapAtomTiling runs the overlapped schedule through the Ta>1
// atom-tile split, exercising the neighbour-halo packs under the
// nonblocking exchange.
func TestOverlapAtomTiling(t *testing.T) {
	const iters = 3
	dev := testDevice(t)
	ref := sequentialTrace(t, dev, iters)

	opts := DefaultOptions(4)
	opts.Ta, opts.TE = 2, 2
	opts.Schedule = ScheduleOverlap
	opts.MaxIter = iters
	opts.Tol = 1e-300
	res, err := Run(dev, opts)
	if !errors.Is(err, negf.ErrNotConverged) {
		t.Fatalf("expected ErrNotConverged, got %v", err)
	}
	for i, st := range res.IterTrace {
		if e := relErr(st.Current, ref[i].Current); e > 1e-12 {
			t.Errorf("Ta=2 TE=2 iter %d: current %.17g vs %.17g (rel %.3g)",
				i, st.Current, ref[i].Current, e)
		}
	}
}

// TestOverlapCommAccounting cross-checks the pack-time byte counting of
// the overlapped schedule against the comm layer's own counters, with no
// barriers involved.
func TestOverlapCommAccounting(t *testing.T) {
	const iters = 2
	dev := testDevice(t)
	opts := DefaultOptions(4)
	opts.Schedule = ScheduleOverlap
	opts.MaxIter = iters
	opts.Tol = 1e-300
	res, err := Run(dev, opts)
	if !errors.Is(err, negf.ErrNotConverged) {
		t.Fatal(err)
	}
	if got := res.Comm.Collectives["Alltoallv"]; got != 4*iters {
		t.Errorf("Alltoallv count = %d, want %d", got, 4*iters)
	}
	if got := res.Comm.Collectives["Allreduce"]; got != iters {
		t.Errorf("Allreduce count = %d, want %d", got, iters)
	}
	if got := res.Comm.Collectives["Barrier"]; got != 0 {
		t.Errorf("overlapped schedule must be barrier-free, saw %d barriers", got)
	}
	var sse, red int64
	for _, it := range res.IterTrace {
		if it.SSEBytes <= 0 || it.ReduceBytes <= 0 {
			t.Errorf("iter %d: empty traffic: %+v", it.Iter, it)
		}
		sse += it.SSEBytes
		red += it.ReduceBytes
	}
	if got := res.Comm.CollectiveBytes["Alltoallv"]; got != sse {
		t.Errorf("pack-time SSE bytes %d != comm-layer %d", sse, got)
	}
	if got := res.Comm.CollectiveBytes["Allreduce"]; got != red {
		t.Errorf("analytic reduce bytes %d != comm-layer %d", red, got)
	}

	// Single rank: everything is a self-send; no traffic at all.
	opts = DefaultOptions(1)
	opts.Schedule = ScheduleOverlap
	opts.MaxIter = 2
	opts.Tol = 1e-300
	res, err = Run(dev, opts)
	if err != nil && !errors.Is(err, negf.ErrNotConverged) {
		t.Fatal(err)
	}
	if res.Comm.BytesSent != 0 {
		t.Errorf("P=1 moved %d bytes; self-sends must be free", res.Comm.BytesSent)
	}
}

// TestOverlapRankErrorAgreement breaks the boundary decimation and checks
// the deferred failure agreement: every rank still posts its collectives,
// the flag rides the observable reduction, and the run returns the real
// error instead of deadlocking — including with a single-worker pool, the
// tightest case for the post-before-wait discipline.
func TestOverlapRankErrorAgreement(t *testing.T) {
	for _, workers := range []int{1, 3} {
		dev := testDevice(t)
		dev.P.Eta = 0 // Sancho-Rubio cannot converge without broadening
		opts := DefaultOptions(4)
		opts.Schedule = ScheduleOverlap
		opts.Workers = workers
		opts.MaxIter = 2
		done := make(chan error, 1)
		go func() {
			_, err := Run(dev, opts)
			done <- err
		}()
		select {
		case err := <-done:
			if err == nil || !errors.Is(err, bc.ErrNoConvergence) {
				t.Fatalf("workers=%d: expected the boundary error, got %v", workers, err)
			}
		case <-time.After(60 * time.Second):
			t.Fatalf("workers=%d: overlapped run deadlocked on a rank error", workers)
		}
	}
}

// TestOverlapSingleWorker runs the full equivalence with Workers=1 — the
// pool size where a misordered wait could deadlock, and where the
// schedule degenerates to a sequential topological order.
func TestOverlapSingleWorker(t *testing.T) {
	const iters = 3
	dev := testDevice(t)
	ref := sequentialTrace(t, dev, iters)
	opts := DefaultOptions(2)
	opts.Schedule = ScheduleOverlap
	opts.Workers = 1
	opts.MaxIter = iters
	opts.Tol = 1e-300
	res, err := Run(dev, opts)
	if !errors.Is(err, negf.ErrNotConverged) {
		t.Fatalf("expected ErrNotConverged, got %v", err)
	}
	for i, st := range res.IterTrace {
		if e := relErr(st.Current, ref[i].Current); e > 1e-12 {
			t.Errorf("iter %d: current %.17g vs %.17g (rel %.3g)", i, st.Current, ref[i].Current, e)
		}
	}
}

// TestOverlapConverged lets the overlapped loop terminate on its own
// tolerance and checks the converged result and NoCache mode (no BC
// nodes in the graph).
func TestOverlapConverged(t *testing.T) {
	dev := testDevice(t)
	seq := negf.New(dev, negf.DefaultOptions())
	obs, err := seq.Run()
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}

	opts := DefaultOptions(2)
	opts.Schedule = ScheduleOverlap
	res, err := Run(dev, opts)
	if err != nil {
		t.Fatalf("distributed: %v", err)
	}
	if !res.Converged {
		t.Fatal("overlapped run did not converge")
	}
	if e := relErr(res.Obs.CurrentL, obs.CurrentL); e > 1e-12 {
		t.Errorf("final current %.17g vs %.17g (rel %.3g)", res.Obs.CurrentL, obs.CurrentL, e)
	}

	opts.CacheMode = bc.NoCache
	opts.MaxIter = 2
	opts.Tol = 1e-300
	if _, err := Run(dev, opts); err != nil && !errors.Is(err, negf.ErrNotConverged) {
		t.Fatalf("NoCache overlap: %v", err)
	}
}

// TestOptionValidation covers the normalize error paths and defaults.
func TestOptionValidation(t *testing.T) {
	if _, err := (Options{Ranks: 0}).normalize(); err == nil {
		t.Error("Ranks=0 must be rejected")
	}
	if _, err := (Options{Ranks: -2}).normalize(); err == nil {
		t.Error("negative Ranks must be rejected")
	}
	if _, err := (Options{Ranks: 4, Ta: 3, TE: 2}).normalize(); err == nil {
		t.Error("Ta·TE ≠ Ranks must be rejected")
	}
	if _, err := (Options{Ranks: 4, Ta: 8}).normalize(); err == nil {
		t.Error("Ta > Ranks with TE unset must be rejected")
	}
	if _, err := (Options{Ranks: 2, Schedule: Schedule(99)}).normalize(); err == nil {
		t.Error("unknown schedule must be rejected")
	}

	o, err := (Options{Ranks: 2, Mixing: 0}).normalize()
	if err != nil {
		t.Fatal(err)
	}
	if o.Mixing != 0.5 {
		t.Errorf("zero Mixing should default to 0.5, got %g", o.Mixing)
	}
	if o.MaxIter != 25 || o.Tol != 1e-5 {
		t.Errorf("defaults not applied: %+v", o)
	}
	o, err = (Options{Ranks: 6, TE: 3, Schedule: ScheduleOverlap}).normalize()
	if err != nil {
		t.Fatal(err)
	}
	if o.Ta != 2 {
		t.Errorf("Ta should be inferred as 2, got %d", o.Ta)
	}
	if o.Workers != 2 {
		t.Errorf("overlap Workers should default to 2, got %d", o.Workers)
	}
}
