package dist

import (
	"testing"

	"repro/internal/device"
	"repro/internal/sse"
)

// TestPackLenMatchesVecLen pins the pack/vecLen contract for a spread of
// device shapes: the packed observable vector must come out at exactly
// vecLen entries, and — the regression of the capacity-hint bug — must be
// built in one allocation, i.e. the hint must already cover the 4 control
// words (failure flag, 2 byte counters, fallback count) that vecLen counts.
func TestPackLenMatchesVecLen(t *testing.T) {
	params := []device.Params{
		{Bnum: 2, NE: 1},
		{Bnum: 3, NE: 8},
		{Bnum: 4, NE: 16},
		{Bnum: 7, NE: 33},
		{Bnum: 152, NE: 650}, // paper-scale shape
	}
	for _, p := range params {
		po := newPartialObs(p)
		po.flag, po.sseB, po.redB, po.fbk = 1, 2, 3, 4
		po.sse = sse.Stats{MatMuls: 4, Flops: 5, ScalarOps: 6, BytesMoved: 7}
		v := po.pack()
		if len(v) != vecLen(p) {
			t.Errorf("Bnum=%d NE=%d: len(pack()) = %d, want vecLen = %d",
				p.Bnum, p.NE, len(v), vecLen(p))
		}
		if cap(v) != vecLen(p) {
			t.Errorf("Bnum=%d NE=%d: cap(pack()) = %d, want exactly vecLen = %d (capacity hint must cover the control words)",
				p.Bnum, p.NE, cap(v), vecLen(p))
		}
	}
}

// TestPackUnpackRoundTrip checks that every field — including the control
// words the capacity bug clipped out of the hint — survives pack/unpack.
func TestPackUnpackRoundTrip(t *testing.T) {
	p := device.Params{Bnum: 3, NE: 5}
	po := newPartialObs(p)
	po.currentL, po.currentR = 1.5, -2.5
	po.energyL, po.phononEnergyL = 3.25, 4.75
	po.elLoss, po.phGain = -0.125, 0.375
	for i := range po.ifaceCur {
		po.ifaceCur[i] = float64(i) + 0.1
		po.ifaceEn[i] = float64(i) + 0.2
		po.phIfaceEn[i] = float64(i) + 0.3
	}
	for i := range po.diss {
		po.diss[i] = float64(i) - 0.4
	}
	for i := range po.spectral {
		po.spectral[i] = float64(i) * 0.5
	}
	po.sse = sse.Stats{MatMuls: 11, Flops: 22, ScalarOps: 33, BytesMoved: 44}
	po.flag, po.sseB, po.redB, po.fbk = 1, 1024, 2048, 17

	got := unpackObs(po.pack(), p)
	if *gotCmp(got) != *gotCmp(po) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, po)
	}
	for i := range po.ifaceCur {
		if got.ifaceCur[i] != po.ifaceCur[i] || got.ifaceEn[i] != po.ifaceEn[i] || got.phIfaceEn[i] != po.phIfaceEn[i] {
			t.Fatalf("profile %d mismatch", i)
		}
	}
	for i := range po.diss {
		if got.diss[i] != po.diss[i] {
			t.Fatalf("diss %d mismatch", i)
		}
	}
	for i := range po.spectral {
		if got.spectral[i] != po.spectral[i] {
			t.Fatalf("spectral %d mismatch", i)
		}
	}
}

// gotCmp projects the scalar fields into a comparable struct.
func gotCmp(po *partialObs) *struct {
	a, b, c, d, e, f float64
	s                sse.Stats
	g, h, i, j       float64
} {
	return &struct {
		a, b, c, d, e, f float64
		s                sse.Stats
		g, h, i, j       float64
	}{po.currentL, po.currentR, po.energyL, po.phononEnergyL, po.elLoss, po.phGain,
		po.sse, po.flag, po.sseB, po.redB, po.fbk}
}
