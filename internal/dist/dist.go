// Package dist runs the full self-consistent NEGF loop — the GF phase
// (boundary conditions + RGF over all electron (kz, E) and phonon (qz, ω)
// points) and the SSE phase (scattering self-energies) — distributed
// across P simulated MPI ranks on the internal/comm runtime. It is the
// end-to-end form of the paper's distributed solver: where
// internal/decomp distributes only the SSE exchange of a single
// iteration, dist keeps a persistent rank state across iterations and
// alternates the two phases until the contact current converges, exactly
// like the sequential negf.Solver.
//
// Data distribution follows the GF-phase ownership the paper assumes
// (§5.2): the flattened electron (kz, E) pairs and phonon (qz, ω) points
// are block-distributed over the ranks (decomp.OMENLayout). Each rank
// runs its own boundary-condition cache (§7.1.2) and RGF solves for its
// owned points, then participates in the four Alltoallv exchanges of the
// communication-avoiding DaCe SSE decomposition (decomp.ExchangeDaCe) and
// an Allreduce of the observables, so every iteration's left-contact
// current — and hence the convergence decision — is globally consistent.
//
// The per-iteration currents match the sequential solver to floating-point
// reduction ordering (≲1e-12 relative), which the package tests assert
// for P ∈ {1, 2, 4, 8}.
package dist

import (
	"fmt"

	"repro/internal/bc"
	"repro/internal/comm"
	"repro/internal/decomp"
	"repro/internal/device"
	"repro/internal/negf"
	"repro/internal/obs"
	"repro/internal/sse"
)

// Precision selects the numeric and wire format of the SSE phase; see
// decomp.Precision. Under PrecisionMixed every rank's tile runs the
// normalized binary16 SSE kernel (§5.4) and the four Alltoallv exchanges
// ship half-width split-complex wire payloads, cutting the measured SSE
// traffic ≳2.5× at the default Norb=2 (asymptotically 4×) while the GF
// phase stays fp64.
type Precision = decomp.Precision

const (
	// PrecisionFP64 is the full-width baseline (the default).
	PrecisionFP64 = decomp.FP64
	// PrecisionMixed is the §5.4 mixed-precision path.
	PrecisionMixed = decomp.Mixed
)

// MixedCurrentTol is the documented mixed-precision acceptance tolerance:
// the per-iteration left-contact current of a PrecisionMixed run must
// match the sequential fp64 solver within this relative deviation for
// any world size and either schedule. The binary16 mantissa carries 11
// bits (ε₁₆ ≈ 4.9e-4 relative per rounding); the quantized Σ≷ feed back
// through the damped (mixing 0.5) self-consistent loop, and the current
// — an integral observable — lands two to three orders looser than a
// single rounding. The package regression tests assert this bound for
// P ∈ {1, 2, 4, 8} on both schedules.
const MixedCurrentTol = 1e-2

// Schedule selects how each self-consistent iteration executes.
type Schedule int

const (
	// SchedulePhases is the bulk-synchronous baseline: the GF phase, a
	// failure-agreement barrier, the blocking SSE exchange, and the
	// observable reduction run strictly one after another.
	SchedulePhases Schedule = iota
	// ScheduleOverlap runs the iteration as a dataflow graph on a
	// work-stealing pool (internal/sdfg): per-point BC and RGF solves,
	// collision partials, the four SSE exchanges as nonblocking
	// collectives posted as soon as this rank's own points finish, the
	// tile kernel, and the observable reduction — the paper's data-centric
	// execution model, numerically identical to SchedulePhases.
	ScheduleOverlap
	// SchedulePipeline extends the task graph across a window of
	// PipelineDepth self-consistent iterations: iteration n+1's boundary
	// solves and point solves are enqueued as soon as the mixed Σ≷/Π≷ of
	// iteration n is available for their points, the convergence
	// IAllreduce rides along per iteration, and a conv fence node per
	// iteration discards speculated work when convergence (or a
	// cancellation riding the reduction) lands. The arithmetic per
	// iteration is identical to the other schedules, so the recorded
	// currents still match SchedulePhases bitwise — only the iteration
	// barrier is gone.
	SchedulePipeline
)

func (s Schedule) String() string {
	switch s {
	case ScheduleOverlap:
		return "overlap"
	case SchedulePipeline:
		return "pipeline"
	}
	return "phases"
}

// Options configures a distributed run.
type Options struct {
	// Ranks is the simulated world size P.
	Ranks int
	// Ta, TE are the atom×energy tile split of the SSE exchange
	// (Ta·TE must equal Ranks). Leaving both zero defaults to Ta=1,
	// TE=Ranks — pure energy tiling, the natural choice when Bnum is
	// small; leaving one zero infers it from the other (Ranks/Ta or
	// Ranks/TE).
	Ta, TE int
	// CacheMode selects boundary-condition caching (§7.1.2); each rank
	// holds its own cache covering only its owned points.
	CacheMode bc.Mode
	// Mixing is the linear self-consistency mixing factor in (0, 1].
	Mixing float64
	// MaxIter bounds the GF↔SSE iterations.
	MaxIter int
	// Tol is the relative change of the contact current at convergence.
	Tol float64
	// Schedule selects bulk-synchronous phases (default) or the
	// overlapped task-graph execution.
	Schedule Schedule
	// Workers is the per-rank worker-pool size of ScheduleOverlap and
	// SchedulePipeline (default 2: one worker can block in a collective
	// wait while the other computes). Ignored by SchedulePhases.
	Workers int
	// PipelineDepth is the iteration-window size of SchedulePipeline:
	// how many self-consistent iterations one task graph spans before the
	// ranks drain and the next window is built (default 2). Depth 1
	// degenerates to a fenced overlap schedule. Setting it under any
	// other schedule is a configuration error.
	PipelineDepth int
	// Precision selects fp64 (default) or the mixed binary16 SSE path:
	// quantized tile kernel plus half-width wire payloads on all four
	// Alltoallv exchanges.
	Precision Precision
	// ErrorProbe (PrecisionMixed only) additionally runs the fp64 tile
	// kernel each iteration and reduces the worst rank's normwise Σ≷/Π≷
	// deviation into IterStats.SigmaErr — per-iteration quantization
	// telemetry at the cost of doubling the tile compute.
	ErrorProbe bool
	// Progress, when non-nil, is invoked on rank 0 after every
	// self-consistent iteration with that iteration's stats — the
	// cancel/telemetry hook the qt facade threads a context and its
	// streaming through. A non-nil return requests cancellation: a rank
	// cannot abandon the collectives unilaterally, so the request is
	// agreed by all ranks at the start of the next iteration (one scalar
	// Allreduce, paid only when the hook is installed and accounted in
	// IterStats.ReduceBytes) and Run returns the hook's error alongside
	// the partial result. Both schedules honour it.
	Progress func(IterStats) error
	// Tracer, when non-nil, records per-phase spans for every rank —
	// per-point BC/RGF solves (with the rank and a per-worker track),
	// the SSE exchanges and tile kernel, the observable reduction, and
	// the iteration envelope. All ranks of the simulated world share one
	// tracer; nil (the default) keeps the hot path allocation-free.
	Tracer *obs.Tracer
}

// DefaultOptions returns the distributed counterpart of
// negf.DefaultOptions for a P-rank world.
func DefaultOptions(ranks int) Options {
	return Options{
		Ranks:     ranks,
		Ta:        1,
		TE:        ranks,
		CacheMode: bc.CacheBC,
		Mixing:    0.5,
		MaxIter:   25,
		Tol:       1e-5,
	}
}

// Validate reports whether the options describe a runnable
// configuration, without running it — the facade's pre-flight check.
func (o Options) Validate() error {
	_, err := o.normalize()
	return err
}

// normalize fills defaults and validates the tile split.
func (o Options) normalize() (Options, error) {
	if o.Ranks <= 0 {
		return o, fmt.Errorf("dist: world size must be positive, got %d", o.Ranks)
	}
	switch {
	case o.Ta == 0 && o.TE == 0:
		o.Ta, o.TE = 1, o.Ranks
	case o.Ta == 0 && o.TE > 0 && o.Ranks%o.TE == 0:
		o.Ta = o.Ranks / o.TE
	case o.TE == 0 && o.Ta > 0 && o.Ranks%o.Ta == 0:
		o.TE = o.Ranks / o.Ta
	}
	if o.Ta <= 0 || o.TE <= 0 || o.Ta*o.TE != o.Ranks {
		return o, fmt.Errorf("dist: tile split %d×%d does not cover %d ranks", o.Ta, o.TE, o.Ranks)
	}
	if o.Mixing <= 0 || o.Mixing > 1 {
		o.Mixing = 0.5
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 25
	}
	if o.Tol <= 0 {
		o.Tol = 1e-5
	}
	if o.Precision != PrecisionFP64 && o.Precision != PrecisionMixed {
		return o, fmt.Errorf("dist: unknown precision %d", o.Precision)
	}
	if o.Precision != PrecisionMixed {
		o.ErrorProbe = false
	}
	switch o.Schedule {
	case SchedulePhases, ScheduleOverlap:
		if o.PipelineDepth != 0 {
			return o, fmt.Errorf("dist: PipelineDepth requires SchedulePipeline")
		}
	case SchedulePipeline:
		if o.PipelineDepth == 0 {
			o.PipelineDepth = 2
		}
		if o.PipelineDepth < 1 {
			return o, fmt.Errorf("dist: pipeline depth must be >= 1, got %d", o.PipelineDepth)
		}
		if o.ErrorProbe {
			// The probe is a blocking max-reduction inside every
			// iteration: a worker parks in it until all ranks reach the
			// same iteration, which reinstates exactly the cross-iteration
			// barrier the pipeline exists to remove.
			return o, fmt.Errorf("dist: ErrorProbe is incompatible with SchedulePipeline: its blocking max-reduction would serialize the iteration window")
		}
	default:
		return o, fmt.Errorf("dist: unknown schedule %d", o.Schedule)
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	return o, nil
}

// IterStats captures one distributed self-consistent iteration: the
// globally reduced convergence data plus the measured communication of
// each phase.
type IterStats struct {
	Iter         int
	Current      float64 // left-contact electron current (a.u.), global
	RelChange    float64
	ElEnergyLoss float64   // R_e: electron energy lost to the lattice
	PhEnergyGain float64   // R_ph: energy absorbed by the phonon bath
	SSE          sse.Stats // tile kernel counters summed over ranks
	// SSEBytes is the traffic of the four Alltoallv exchanges this
	// iteration (the encoded wire volume under PrecisionMixed);
	// ReduceBytes is the observable/convergence Allreduce.
	SSEBytes    int64
	ReduceBytes int64
	// SigmaErr is the worst rank's normwise relative Σ≷/Π≷ deviation of
	// the mixed tile kernel against the fp64 kernel on identical inputs
	// this iteration — nonzero only with Options.ErrorProbe.
	SigmaErr float64
	// FallbackBlocks counts the exchange segments the mixed-precision
	// wire encoder shipped as verbatim fp64 passthrough this iteration,
	// summed over ranks — always 0 under PrecisionFP64.
	FallbackBlocks int64
	// WallNs is rank 0's measured wall time of this iteration — the
	// per-iteration makespan the overlap benchmark compares across
	// schedules.
	WallNs int64
	// ComputeNs and CommNs split rank 0's summed task durations by node
	// kind under ScheduleOverlap (zero under SchedulePhases) — the
	// measured compute/communication split cmd/distsim feeds into the
	// internal/stream overlap prediction.
	ComputeNs, CommNs int64
}

// RankLoad reports one rank's share of the work — the load-balance view
// of the block distribution, gathered with Allgather.
type RankLoad struct {
	Rank       int
	Pairs      int // owned electron (kz, E) points
	Points     int // owned phonon (qz, ω) points
	BCComputes int // boundary-condition cache misses (Sancho-Rubio runs)
}

// Result is the outcome of a distributed run.
type Result struct {
	// Obs holds the globally reduced observables of the final iteration.
	// LDOS is not aggregated (it is a single-node diagnostic); every other
	// field matches the sequential solver up to reduction ordering.
	Obs negf.Observables
	// IterTrace records per-iteration convergence data, identical in
	// Current/RelChange to the sequential solver's trace within 1e-12.
	IterTrace []IterStats
	Converged bool
	// Comm is the world's total communication counters for the whole run.
	Comm comm.Stats
	// Load is the per-rank work distribution.
	Load []RankLoad

	// stopErr records a Progress-hook cancellation (rank 0 writes it
	// before World.Run returns, which orders the access).
	stopErr error
}

// Run executes the distributed self-consistent loop on a fresh P-rank
// world. Non-convergence is reported via negf.ErrNotConverged alongside
// the (valid, unconverged) result, mirroring the sequential solver.
func Run(dev *device.Device, opts Options) (*Result, error) {
	opts, err := opts.normalize()
	if err != nil {
		return nil, err
	}
	w := comm.NewWorld(opts.Ranks)
	res := &Result{}
	if err := w.Run(func(c *comm.Comm) error {
		switch opts.Schedule {
		case ScheduleOverlap:
			return runRankOverlap(c, dev, opts, res)
		case SchedulePipeline:
			return runRankPipeline(c, dev, opts, res)
		}
		return runRank(c, dev, opts, res)
	}); err != nil {
		return nil, err
	}
	res.Comm = w.Stats()
	if res.stopErr != nil {
		return res, res.stopErr
	}
	if !res.Converged {
		return res, negf.ErrNotConverged
	}
	return res, nil
}
