package dist

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/bc"
	"repro/internal/device"
	"repro/internal/negf"
	"repro/internal/sse"
)

func testDevice(t testing.TB) *device.Device {
	t.Helper()
	p := device.TestParams(12, 3, 2)
	p.NE = 12
	p.Nomega = 3
	dev, err := device.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

// sequentialTrace runs the reference solver for exactly iters iterations.
func sequentialTrace(t *testing.T, dev *device.Device, iters int) []negf.IterStats {
	t.Helper()
	s := negf.New(dev, negf.Options{
		Kernel: sse.DaCe{}, CacheMode: bc.CacheBC,
		Mixing: 0.5, MaxIter: iters, Tol: 1e-300,
	})
	if _, err := s.Run(); !errors.Is(err, negf.ErrNotConverged) {
		t.Fatalf("reference run: expected ErrNotConverged, got %v", err)
	}
	return s.IterTrace
}

func relErr(a, b float64) float64 {
	return math.Abs(a-b) / math.Max(math.Abs(b), 1e-300)
}

// TestMatchesSequential is the acceptance criterion of the subsystem: the
// distributed loop's per-iteration left-contact currents (and collision
// integrals) must match the sequential solver within 1e-12 for every
// world size, since both execute the same arithmetic up to floating-point
// reduction ordering.
func TestMatchesSequential(t *testing.T) {
	const iters = 5
	dev := testDevice(t)
	ref := sequentialTrace(t, dev, iters)
	if len(ref) != iters {
		t.Fatalf("reference trace has %d iterations, want %d", len(ref), iters)
	}

	for _, ranks := range []int{1, 2, 4, 8} {
		opts := DefaultOptions(ranks)
		opts.MaxIter = iters
		opts.Tol = 1e-300
		res, err := Run(dev, opts)
		if !errors.Is(err, negf.ErrNotConverged) {
			t.Fatalf("P=%d: expected ErrNotConverged, got %v", ranks, err)
		}
		if len(res.IterTrace) != iters {
			t.Fatalf("P=%d: trace has %d iterations, want %d", ranks, len(res.IterTrace), iters)
		}
		for i, st := range res.IterTrace {
			if e := relErr(st.Current, ref[i].Current); e > 1e-12 {
				t.Errorf("P=%d iter %d: current %.17g vs sequential %.17g (rel %.3g)",
					ranks, i, st.Current, ref[i].Current, e)
			}
			if e := relErr(st.ElEnergyLoss, ref[i].ElEnergyLoss); e > 1e-10 {
				t.Errorf("P=%d iter %d: R_e %.17g vs %.17g (rel %.3g)",
					ranks, i, st.ElEnergyLoss, ref[i].ElEnergyLoss, e)
			}
			if e := relErr(st.PhEnergyGain, ref[i].PhEnergyGain); e > 1e-10 {
				t.Errorf("P=%d iter %d: R_ph %.17g vs %.17g (rel %.3g)",
					ranks, i, st.PhEnergyGain, ref[i].PhEnergyGain, e)
			}
		}
	}
}

// TestAtomTiling runs the same equivalence through the atom×energy tile
// split (Ta>1), exercising the neighbour-halo path of the SSE exchange.
func TestAtomTiling(t *testing.T) {
	const iters = 4
	dev := testDevice(t)
	ref := sequentialTrace(t, dev, iters)

	opts := DefaultOptions(4)
	opts.Ta, opts.TE = 2, 2
	opts.MaxIter = iters
	opts.Tol = 1e-300
	res, err := Run(dev, opts)
	if !errors.Is(err, negf.ErrNotConverged) {
		t.Fatalf("expected ErrNotConverged, got %v", err)
	}
	for i, st := range res.IterTrace {
		if e := relErr(st.Current, ref[i].Current); e > 1e-12 {
			t.Errorf("Ta=2 TE=2 iter %d: current %.17g vs %.17g (rel %.3g)",
				i, st.Current, ref[i].Current, e)
		}
	}
}

// TestCommAccounting checks the measured traffic structure: a single rank
// exchanges nothing (all transfers are self-sends), while P>1 moves SSE
// and reduction bytes every iteration.
func TestCommAccounting(t *testing.T) {
	dev := testDevice(t)
	opts := DefaultOptions(1)
	opts.MaxIter = 2
	opts.Tol = 1e-300
	res, err := Run(dev, opts)
	if err != nil && !errors.Is(err, negf.ErrNotConverged) {
		t.Fatal(err)
	}
	if res.Comm.BytesSent != 0 {
		t.Errorf("P=1 moved %d bytes; self-sends must be free", res.Comm.BytesSent)
	}

	opts = DefaultOptions(4)
	opts.MaxIter = 2
	opts.Tol = 1e-300
	res, err = Run(dev, opts)
	if err != nil && !errors.Is(err, negf.ErrNotConverged) {
		t.Fatal(err)
	}
	for i, st := range res.IterTrace {
		if st.SSEBytes <= 0 {
			t.Errorf("iter %d: no SSE traffic measured", i)
		}
		if st.ReduceBytes <= 0 {
			t.Errorf("iter %d: no reduction traffic measured", i)
		}
	}
	if got := res.Comm.Collectives["Alltoallv"]; got != 4*2 {
		t.Errorf("Alltoallv count = %d, want 8 (4 per iteration)", got)
	}
	var pairs, points int
	for _, l := range res.Load {
		pairs += l.Pairs
		points += l.Points
	}
	p := dev.P
	if pairs != p.Nkz*p.NE || points != p.Nqz()*p.Nomega {
		t.Errorf("load report covers %d pairs / %d points, want %d / %d",
			pairs, points, p.Nkz*p.NE, p.Nqz()*p.Nomega)
	}
}

// TestRankErrorAborts breaks the boundary-condition decimation on every
// rank and checks the failure is agreed collectively: the run must return
// the underlying error instead of deadlocking the healthy ranks in the
// next collective.
func TestRankErrorAborts(t *testing.T) {
	dev := testDevice(t)
	dev.P.Eta = 0 // Sancho-Rubio cannot converge without broadening
	opts := DefaultOptions(4)
	opts.MaxIter = 2
	done := make(chan error, 1)
	go func() {
		_, err := Run(dev, opts)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !errors.Is(err, bc.ErrNoConvergence) {
			t.Fatalf("expected the boundary error, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("distributed run deadlocked on a rank error")
	}
}

// TestSingleZeroTileField checks normalize infers the missing tile count.
func TestSingleZeroTileField(t *testing.T) {
	dev := testDevice(t)
	opts := DefaultOptions(2)
	opts.Ta, opts.TE = 2, 0 // infer TE = 1
	opts.MaxIter = 2
	opts.Tol = 1e-300
	if _, err := Run(dev, opts); err != nil && !errors.Is(err, negf.ErrNotConverged) {
		t.Fatalf("Ta=2, TE=0 should infer TE=1: %v", err)
	}
	opts = DefaultOptions(3)
	opts.Ta, opts.TE = 2, 0 // 3 ranks not divisible by Ta=2
	if _, err := Run(dev, opts); err == nil {
		t.Fatal("indivisible tile split must be rejected")
	}
}

// TestConvergedRun lets the loop terminate on its own tolerance and
// checks the distributed result agrees with the sequential solver.
func TestConvergedRun(t *testing.T) {
	dev := testDevice(t)
	seq := negf.New(dev, negf.DefaultOptions())
	obs, err := seq.Run()
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}

	opts := DefaultOptions(2)
	res, err := Run(dev, opts)
	if err != nil {
		t.Fatalf("distributed: %v", err)
	}
	if !res.Converged {
		t.Fatal("distributed run did not converge")
	}
	if len(res.IterTrace) != len(seq.IterTrace) {
		t.Fatalf("iteration counts differ: dist %d vs seq %d", len(res.IterTrace), len(seq.IterTrace))
	}
	if e := relErr(res.Obs.CurrentL, obs.CurrentL); e > 1e-12 {
		t.Errorf("final current %.17g vs %.17g (rel %.3g)", res.Obs.CurrentL, obs.CurrentL, e)
	}
	for i := range res.Obs.DissipatedPower {
		if e := math.Abs(res.Obs.DissipatedPower[i] - obs.DissipatedPower[i]); e > 1e-12 {
			t.Errorf("dissipated power[%d] differs by %g", i, e)
		}
	}
	for a := range res.Obs.AtomTemperature {
		if e := math.Abs(res.Obs.AtomTemperature[a] - obs.AtomTemperature[a]); e > 1e-6 {
			t.Errorf("temperature[%d] differs by %g K", a, e)
		}
	}
}
