package dist

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/bc"
	"repro/internal/negf"
)

// TestPipelineMatchesSequential is the acceptance criterion of the
// pipelined schedule: speculation across the iteration window must not
// change the arithmetic, so the per-iteration currents match the
// sequential solver within 1e-12 for every world size — the same bar as
// phases and overlap.
func TestPipelineMatchesSequential(t *testing.T) {
	const iters = 5
	dev := testDevice(t)
	ref := sequentialTrace(t, dev, iters)

	for _, ranks := range []int{1, 2, 4, 8} {
		opts := DefaultOptions(ranks)
		opts.MaxIter = iters
		opts.Tol = 1e-300
		opts.Schedule = SchedulePipeline
		opts.PipelineDepth = 2
		opts.Workers = 3
		res, err := Run(dev, opts)
		if !errors.Is(err, negf.ErrNotConverged) {
			t.Fatalf("P=%d: expected ErrNotConverged, got %v", ranks, err)
		}
		if len(res.IterTrace) != iters {
			t.Fatalf("P=%d: trace has %d iterations, want %d", ranks, len(res.IterTrace), iters)
		}
		for i, st := range res.IterTrace {
			if st.Iter != i {
				t.Errorf("P=%d: row %d carries iteration %d", ranks, i, st.Iter)
			}
			if e := relErr(st.Current, ref[i].Current); e > 1e-12 {
				t.Errorf("P=%d iter %d: current %.17g vs %.17g (rel %.3g)",
					ranks, i, st.Current, ref[i].Current, e)
			}
			if e := relErr(st.ElEnergyLoss, ref[i].ElEnergyLoss); e > 1e-12 {
				t.Errorf("P=%d iter %d: elLoss rel %.3g", ranks, i, e)
			}
		}
	}
}

// TestPipelineBitwiseMatchesPhases pins the strongest equivalence: the
// pipelined window executes the identical per-iteration arithmetic in
// the identical association, so its currents match the bulk-synchronous
// schedule bitwise, for several window depths (depth 1 is the fenced
// degenerate case, depth > MaxIter exercises window clamping).
func TestPipelineBitwiseMatchesPhases(t *testing.T) {
	const iters = 4
	dev := testDevice(t)
	phases := DefaultOptions(4)
	phases.MaxIter = iters
	phases.Tol = 1e-300
	pres, err := Run(dev, phases)
	if !errors.Is(err, negf.ErrNotConverged) {
		t.Fatalf("phases: %v", err)
	}

	for _, depth := range []int{1, 2, 3, 7} {
		pipe := phases
		pipe.Schedule = SchedulePipeline
		pipe.PipelineDepth = depth
		pipe.Workers = 4
		res, err := Run(dev, pipe)
		if !errors.Is(err, negf.ErrNotConverged) {
			t.Fatalf("depth %d: %v", depth, err)
		}
		if len(res.IterTrace) != len(pres.IterTrace) {
			t.Fatalf("depth %d: trace lengths differ: %d vs %d", depth, len(res.IterTrace), len(pres.IterTrace))
		}
		for i := range res.IterTrace {
			o, p := res.IterTrace[i], pres.IterTrace[i]
			if o.Current != p.Current {
				t.Errorf("depth %d iter %d: current %.17g vs %.17g", depth, i, o.Current, p.Current)
			}
			if o.SSE != p.SSE {
				t.Errorf("depth %d iter %d: SSE stats differ: %+v vs %+v", depth, i, o.SSE, p.SSE)
			}
			if o.SSEBytes != p.SSEBytes {
				t.Errorf("depth %d iter %d: SSE bytes %d vs %d", depth, i, o.SSEBytes, p.SSEBytes)
			}
			// The pipeline runs no cancellation-agreement collective, so
			// its reduce traffic is the bare observable reduction.
			if o.ReduceBytes != p.ReduceBytes {
				t.Errorf("depth %d iter %d: reduce bytes %d vs %d", depth, i, o.ReduceBytes, p.ReduceBytes)
			}
		}
		if res.Obs.CurrentL != pres.Obs.CurrentL {
			t.Errorf("depth %d: final current %.17g vs %.17g", depth, res.Obs.CurrentL, pres.Obs.CurrentL)
		}
		for a := range res.Obs.AtomTemperature {
			if d := math.Abs(res.Obs.AtomTemperature[a] - pres.Obs.AtomTemperature[a]); d > 1e-9 {
				t.Errorf("depth %d: temperature[%d] differs by %g K", depth, a, d)
			}
		}
	}
}

// TestPipelineSingleWorker runs the full equivalence with Workers=1 — the
// pool size where any misordered post/wait in the window graph would
// deadlock instead of merely slowing down.
func TestPipelineSingleWorker(t *testing.T) {
	const iters = 4
	dev := testDevice(t)
	ref := sequentialTrace(t, dev, iters)
	opts := DefaultOptions(2)
	opts.Schedule = SchedulePipeline
	opts.PipelineDepth = 3
	opts.Workers = 1
	opts.MaxIter = iters
	opts.Tol = 1e-300
	res, err := Run(dev, opts)
	if !errors.Is(err, negf.ErrNotConverged) {
		t.Fatalf("expected ErrNotConverged, got %v", err)
	}
	for i, st := range res.IterTrace {
		if e := relErr(st.Current, ref[i].Current); e > 1e-12 {
			t.Errorf("iter %d: current %.17g vs %.17g (rel %.3g)", i, st.Current, ref[i].Current, e)
		}
	}
}

// TestPipelineConverged lets the run terminate on its own tolerance: the
// fence must discard the speculated iterations past the converged one,
// keep the temperature accumulators at the converged iteration, and
// report the same converged state as the bulk-synchronous schedule. It
// also covers NoCache mode (no BC nodes in the window graph).
func TestPipelineConverged(t *testing.T) {
	dev := testDevice(t)
	phases := DefaultOptions(2)
	pres, err := Run(dev, phases)
	if err != nil {
		t.Fatalf("phases: %v", err)
	}
	if !pres.Converged {
		t.Fatal("phases run did not converge")
	}

	opts := DefaultOptions(2)
	opts.Schedule = SchedulePipeline
	opts.PipelineDepth = 3
	res, err := Run(dev, opts)
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	if !res.Converged {
		t.Fatal("pipelined run did not converge")
	}
	if len(res.IterTrace) != len(pres.IterTrace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(res.IterTrace), len(pres.IterTrace))
	}
	if res.Obs.CurrentL != pres.Obs.CurrentL {
		t.Errorf("final current %.17g vs %.17g", res.Obs.CurrentL, pres.Obs.CurrentL)
	}
	// The discarded speculation must not leak into the temperature map:
	// accum/ph of the iteration past convergence is fenced out.
	for a := range res.Obs.AtomTemperature {
		if d := math.Abs(res.Obs.AtomTemperature[a] - pres.Obs.AtomTemperature[a]); d > 1e-9 {
			t.Errorf("temperature[%d] differs by %g K", a, d)
		}
	}

	opts.CacheMode = bc.NoCache
	opts.MaxIter = 2
	opts.Tol = 1e-300
	if _, err := Run(dev, opts); err != nil && !errors.Is(err, negf.ErrNotConverged) {
		t.Fatalf("NoCache pipeline: %v", err)
	}
}

// TestPipelineCommAccounting checks the barrier-free claim and the
// pack-time byte accounting: a full-budget run executes exactly four
// Alltoallv and one Allreduce per iteration, no barriers and no
// agreement collectives, and the per-iteration byte counters sum to what
// the comm layer measures.
func TestPipelineCommAccounting(t *testing.T) {
	const iters = 4
	dev := testDevice(t)
	opts := DefaultOptions(4)
	opts.Schedule = SchedulePipeline
	opts.PipelineDepth = 2
	opts.MaxIter = iters
	opts.Tol = 1e-300
	// A Progress hook on the other schedules costs an agreement
	// Allreduce per iteration; the pipeline folds cancellation into the
	// observable reduction, so the counts below must not change.
	opts.Progress = func(IterStats) error { return nil }
	res, err := Run(dev, opts)
	if !errors.Is(err, negf.ErrNotConverged) {
		t.Fatal(err)
	}
	if got := res.Comm.Collectives["Alltoallv"]; got != 4*iters {
		t.Errorf("Alltoallv count = %d, want %d", got, 4*iters)
	}
	if got := res.Comm.Collectives["Allreduce"]; got != iters {
		t.Errorf("Allreduce count = %d, want %d", got, iters)
	}
	if got := res.Comm.Collectives["Barrier"]; got != 0 {
		t.Errorf("pipelined schedule must be barrier-free, saw %d barriers", got)
	}
	var sse, red int64
	for _, it := range res.IterTrace {
		if it.SSEBytes <= 0 || it.ReduceBytes <= 0 {
			t.Errorf("iter %d: empty traffic: %+v", it.Iter, it)
		}
		if it.ComputeNs <= 0 {
			t.Errorf("iter %d: no compute time recorded", it.Iter)
		}
		sse += it.SSEBytes
		red += it.ReduceBytes
	}
	if got := res.Comm.CollectiveBytes["Alltoallv"]; got != sse {
		t.Errorf("pack-time SSE bytes %d != comm-layer %d", sse, got)
	}
	if got := res.Comm.CollectiveBytes["Allreduce"]; got != red {
		t.Errorf("analytic reduce bytes %d != comm-layer %d", red, got)
	}
}

// TestPipelineRankErrorAgreement breaks the boundary decimation and
// checks that failure agreement still rides the reduction under
// speculation: every rank posts its collectives, the window drains, and
// the run returns the real error instead of deadlocking — including the
// Workers=1 pool, the tightest case for the post-before-wait discipline.
func TestPipelineRankErrorAgreement(t *testing.T) {
	for _, workers := range []int{1, 3} {
		dev := testDevice(t)
		dev.P.Eta = 0 // Sancho-Rubio cannot converge without broadening
		opts := DefaultOptions(4)
		opts.Schedule = SchedulePipeline
		opts.PipelineDepth = 2
		opts.Workers = workers
		opts.MaxIter = 4
		done := make(chan error, 1)
		go func() {
			_, err := Run(dev, opts)
			done <- err
		}()
		select {
		case err := <-done:
			if err == nil || !errors.Is(err, bc.ErrNoConvergence) {
				t.Fatalf("workers=%d: expected the boundary error, got %v", workers, err)
			}
		case <-time.After(60 * time.Second):
			t.Fatalf("workers=%d: pipelined run deadlocked on a rank error", workers)
		}
	}
}

// TestPipelineStopRequest covers the ride-along cancellation: a Progress
// hook error on rank 0 is folded into the next reduction's control word,
// all ranks discard the speculated iteration symmetrically, and Run
// returns the hook's error with the trace truncated at the iteration the
// hook saw — whether the stop lands mid-window (discard within the same
// graph) or at a window boundary (the next window's first iteration is
// the one discarded).
func TestPipelineStopRequest(t *testing.T) {
	for _, depth := range []int{2, 3} {
		dev := testDevice(t)
		stop := errors.New("enough")
		opts := DefaultOptions(4)
		opts.Schedule = SchedulePipeline
		opts.PipelineDepth = depth
		opts.MaxIter = 8
		opts.Tol = 1e-300
		opts.Progress = func(st IterStats) error {
			if st.Iter >= 1 {
				return stop
			}
			return nil
		}
		done := make(chan struct{})
		var res *Result
		var err error
		go func() {
			res, err = Run(dev, opts)
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(60 * time.Second):
			t.Fatalf("depth %d: stop request deadlocked", depth)
		}
		if !errors.Is(err, stop) {
			t.Fatalf("depth %d: expected the hook error, got %v", depth, err)
		}
		if len(res.IterTrace) != 2 {
			t.Errorf("depth %d: trace has %d rows, want 2 (stop after iteration 1)", depth, len(res.IterTrace))
		}
	}
}

// TestPipelineMixedPrecision runs the binary16 SSE path through the
// pipelined window: speculation and quantization compose, and the
// per-iteration current stays within the documented mixed tolerance.
func TestPipelineMixedPrecision(t *testing.T) {
	const iters = 3
	dev := testDevice(t)
	ref := sequentialTrace(t, dev, iters)
	opts := DefaultOptions(2)
	opts.Schedule = SchedulePipeline
	opts.PipelineDepth = 2
	opts.Precision = PrecisionMixed
	opts.MaxIter = iters
	opts.Tol = 1e-300
	res, err := Run(dev, opts)
	if !errors.Is(err, negf.ErrNotConverged) {
		t.Fatalf("expected ErrNotConverged, got %v", err)
	}
	for i, st := range res.IterTrace {
		if e := relErr(st.Current, ref[i].Current); e > MixedCurrentTol {
			t.Errorf("iter %d: mixed current %.17g vs %.17g (rel %.3g)", i, st.Current, ref[i].Current, e)
		}
	}
}

// TestPipelineOptionValidation covers the pipeline-specific normalize
// paths: the depth default, depth misuse under other schedules, and the
// error-probe rejection.
func TestPipelineOptionValidation(t *testing.T) {
	o, err := (Options{Ranks: 2, Schedule: SchedulePipeline}).normalize()
	if err != nil {
		t.Fatal(err)
	}
	if o.PipelineDepth != 2 {
		t.Errorf("pipeline depth should default to 2, got %d", o.PipelineDepth)
	}
	if _, err := (Options{Ranks: 2, Schedule: SchedulePipeline, PipelineDepth: -1}).normalize(); err == nil {
		t.Error("negative pipeline depth must be rejected")
	}
	if _, err := (Options{Ranks: 2, PipelineDepth: 2}).normalize(); err == nil {
		t.Error("PipelineDepth under SchedulePhases must be rejected")
	}
	if _, err := (Options{Ranks: 2, Schedule: ScheduleOverlap, PipelineDepth: 2}).normalize(); err == nil {
		t.Error("PipelineDepth under ScheduleOverlap must be rejected")
	}
	if _, err := (Options{Ranks: 2, Schedule: SchedulePipeline,
		Precision: PrecisionMixed, ErrorProbe: true}).normalize(); err == nil {
		t.Error("ErrorProbe under SchedulePipeline must be rejected")
	}
	// FP64 silently clears the probe (as on the other schedules), so the
	// combination is not an error there.
	if _, err := (Options{Ranks: 2, Schedule: SchedulePipeline, ErrorProbe: true}).normalize(); err != nil {
		t.Errorf("FP64 clears the probe before the schedule check: %v", err)
	}
	if got := SchedulePipeline.String(); got != "pipeline" {
		t.Errorf("SchedulePipeline.String() = %q", got)
	}
}

// TestPipelineWindowWallTimes checks the per-iteration telemetry of the
// window: wall times are positive and sum to no more than the run's
// envelope would allow (each iteration's WallNs is the conv-to-conv
// delta within its window).
func TestPipelineWindowWallTimes(t *testing.T) {
	dev := testDevice(t)
	opts := DefaultOptions(2)
	opts.Schedule = SchedulePipeline
	opts.PipelineDepth = 2
	opts.MaxIter = 4
	opts.Tol = 1e-300
	start := time.Now()
	res, err := Run(dev, opts)
	wall := time.Since(start)
	if !errors.Is(err, negf.ErrNotConverged) {
		t.Fatal(err)
	}
	var sum int64
	for _, it := range res.IterTrace {
		if it.WallNs <= 0 {
			t.Errorf("iter %d: WallNs = %d", it.Iter, it.WallNs)
		}
		sum += it.WallNs
	}
	if sum > wall.Nanoseconds() {
		t.Errorf("per-iteration wall times sum to %d ns > run wall %d ns", sum, wall.Nanoseconds())
	}
}

func ExampleSchedule_String() {
	fmt.Println(SchedulePhases, ScheduleOverlap, SchedulePipeline)
	// Output: phases overlap pipeline
}
