package dist

import (
	"errors"
	"testing"

	"repro/internal/model"
	"repro/internal/negf"
)

// TestMixedGoldenCrossSchedule is the golden regression of the
// mixed-precision distributed path: for P ∈ {1, 2, 4, 8} and both
// schedules, every per-iteration left-contact current of a
// PrecisionMixed run must match the sequential FP64 solver within the
// documented MixedCurrentTol. This pins the combined quantization error
// of the binary16 wire format and the mixed tile kernel through the
// self-consistent feedback loop.
func TestMixedGoldenCrossSchedule(t *testing.T) {
	const iters = 5
	dev := testDevice(t)
	ref := sequentialTrace(t, dev, iters)

	for _, sched := range []Schedule{SchedulePhases, ScheduleOverlap} {
		for _, ranks := range []int{1, 2, 4, 8} {
			opts := DefaultOptions(ranks)
			opts.MaxIter = iters
			opts.Tol = 1e-300
			opts.Schedule = sched
			opts.Precision = PrecisionMixed
			res, err := Run(dev, opts)
			if !errors.Is(err, negf.ErrNotConverged) {
				t.Fatalf("%v P=%d: expected ErrNotConverged, got %v", sched, ranks, err)
			}
			if len(res.IterTrace) != iters {
				t.Fatalf("%v P=%d: trace has %d iterations, want %d",
					sched, ranks, len(res.IterTrace), iters)
			}
			for i, st := range res.IterTrace {
				if e := relErr(st.Current, ref[i].Current); e > MixedCurrentTol {
					t.Errorf("%v P=%d iter %d: mixed current %.12g vs sequential fp64 %.12g (rel %.3g > %g)",
						sched, ranks, i, st.Current, ref[i].Current, e, MixedCurrentTol)
				}
			}
		}
	}
}

// TestMixedSchedulesAgree: the two schedules execute the identical mixed
// arithmetic in the identical association order, so their per-iteration
// currents must agree to reduction-ordering noise — quantization does
// not excuse schedule-dependent results.
func TestMixedSchedulesAgree(t *testing.T) {
	const iters = 4
	dev := testDevice(t)

	run := func(sched Schedule) *Result {
		opts := DefaultOptions(4)
		opts.MaxIter = iters
		opts.Tol = 1e-300
		opts.Schedule = sched
		opts.Precision = PrecisionMixed
		res, err := Run(dev, opts)
		if !errors.Is(err, negf.ErrNotConverged) {
			t.Fatalf("%v: expected ErrNotConverged, got %v", sched, err)
		}
		return res
	}
	ph, ov := run(SchedulePhases), run(ScheduleOverlap)
	for i := range ph.IterTrace {
		if e := relErr(ov.IterTrace[i].Current, ph.IterTrace[i].Current); e > 1e-12 {
			t.Errorf("iter %d: overlap %.17g vs phases %.17g (rel %.3g)",
				i, ov.IterTrace[i].Current, ph.IterTrace[i].Current, e)
		}
	}
}

// TestMixedHalvesMeasuredVolume: at an identical decomposition the mixed
// wire format must cut the measured Alltoallv traffic by at least the
// acceptance factor 1.8× (the model predicts 8/3× for Norb=2 electron
// blocks), and the measured wire volume must match the analytic
// prediction the same way the fp64 path matches its own model.
func TestMixedHalvesMeasuredVolume(t *testing.T) {
	dev := testDevice(t)
	run := func(prec Precision) *Result {
		opts := DefaultOptions(4)
		opts.MaxIter = 2
		opts.Tol = 1e-300
		opts.Precision = prec
		res, err := Run(dev, opts)
		if err != nil && !errors.Is(err, negf.ErrNotConverged) {
			t.Fatal(err)
		}
		return res
	}
	fp, mx := run(PrecisionFP64), run(PrecisionMixed)

	fpB := fp.Comm.CollectiveBytes["Alltoallv"]
	mxB := mx.Comm.CollectiveBytes["Alltoallv"]
	if fpB == 0 || mxB == 0 {
		t.Fatalf("missing Alltoallv traffic: fp64 %d, mixed %d", fpB, mxB)
	}
	ratio := float64(fpB) / float64(mxB)
	if ratio < 1.8 {
		t.Errorf("mixed wire reduction %.2fx, want >= 1.8x (fp64 %d B, mixed %d B)",
			ratio, fpB, mxB)
	}

	// The per-iteration SSEBytes telemetry must agree with the comm
	// layer's counters (both count encoded off-rank payloads).
	var sum int64
	for _, it := range mx.IterTrace {
		sum += it.SSEBytes
	}
	if sum != mxB {
		t.Errorf("plan-counted SSE bytes %d != comm-counted Alltoallv bytes %d", sum, mxB)
	}

	// Model consistency: measured/modelled must not exceed 1 (the model
	// charges the full halo including the locally owned share) and the
	// modelled mixed/fp64 ratio must show the same reduction.
	opts := DefaultOptions(4)
	opts, err := opts.normalize()
	if err != nil {
		t.Fatal(err)
	}
	fpModel := model.DaCeCommVolume(dev.P, opts.Ta, opts.TE)
	mxModel := model.DaCeCommVolumeMixed(dev.P, opts.Ta, opts.TE)
	if mxModel >= fpModel/1.8 {
		t.Errorf("model predicts only %.2fx reduction", fpModel/mxModel)
	}
	perIter := float64(sum) / float64(len(mx.IterTrace))
	if perIter > mxModel {
		t.Errorf("measured mixed volume %.0f exceeds modelled %.0f", perIter, mxModel)
	}
}

// TestMixedErrorProbe: with the probe on, every iteration reports a
// small nonzero Σ deviation, bounded well under the current tolerance.
// The overlapped schedule additionally runs with a single-worker pool:
// the probe's blocking max-reduction must stay deadlock-free when the
// rank's only worker can block in it (the probe node depends on both
// Σ/Π posts, like the exchange waits).
func TestMixedErrorProbe(t *testing.T) {
	for _, tc := range []struct {
		sched   Schedule
		workers int
	}{
		{SchedulePhases, 0},
		{ScheduleOverlap, 2},
		{ScheduleOverlap, 1},
	} {
		dev := testDevice(t)
		opts := DefaultOptions(2)
		opts.MaxIter = 2
		opts.Tol = 1e-300
		opts.Schedule = tc.sched
		opts.Workers = tc.workers
		opts.Precision = PrecisionMixed
		opts.ErrorProbe = true
		res, err := Run(dev, opts)
		if err != nil && !errors.Is(err, negf.ErrNotConverged) {
			t.Fatal(err)
		}
		for i, it := range res.IterTrace {
			if it.SigmaErr <= 0 || it.SigmaErr > 0.05 {
				t.Errorf("%v workers=%d iter %d: SigmaErr %g outside (0, 0.05]",
					tc.sched, tc.workers, i, it.SigmaErr)
			}
		}
	}
	dev := testDevice(t)

	// fp64 runs must not report a deviation (probe is mixed-only).
	opts := DefaultOptions(2)
	opts.MaxIter = 1
	opts.Tol = 1e-300
	opts.ErrorProbe = true
	res, err := Run(dev, opts)
	if err != nil && !errors.Is(err, negf.ErrNotConverged) {
		t.Fatal(err)
	}
	if res.IterTrace[0].SigmaErr != 0 {
		t.Errorf("fp64 run reported SigmaErr %g", res.IterTrace[0].SigmaErr)
	}
}
