package dist

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/bc"
	"repro/internal/comm"
	"repro/internal/decomp"
	"repro/internal/device"
	"repro/internal/negf"
	"repro/internal/obs"
	"repro/internal/sdfg"
)

// runRankOverlap is one rank's life under ScheduleOverlap: every
// iteration becomes a dataflow graph executed on a work-stealing pool,
// with the SSE exchanges posted as nonblocking collectives the moment
// this rank's own points finish — no global GF barrier. The arithmetic
// (accumulation order, mixing, reduction association) is identical to
// SchedulePhases, so the per-iteration currents match bitwise; only the
// schedule differs.
func runRankOverlap(c *comm.Comm, dev *device.Device, opts Options, res *Result) error {
	rs := newRankState(c, dev, opts)
	r := c.Rank()
	ex := sdfg.NewExecutor(opts.Workers)
	elRes := make([]*negf.ElectronPointResult, len(rs.pairs))
	phRes := make([]*negf.PhononPointResult, len(rs.points))

	// Mirror executor task spans into the run trace: each worker gets its
	// own 100+ track, and the node label's leading path element picks the
	// category the phase view groups by. traceBase rebases the executor's
	// per-Run clock onto the shared tracer's; it is written between graph
	// runs and read only by worker goroutines Run spawns afterwards, so
	// the accesses are ordered.
	trc := opts.Tracer
	var traceBase int64
	if trc != nil {
		ex.Observer = func(label string, kind sdfg.Kind, worker int, start, end time.Duration) {
			cat := "task"
			switch {
			case label == "sse/tile":
				cat = "sse"
			case label == "post/obs" || label == "wait/obs":
				cat = "reduce"
			case kind == sdfg.Comm:
				cat = "exchange"
			}
			trc.Add(obs.Span{
				Name: label, Cat: cat, Rank: r, Track: 100 + worker, I: -1, J: -1,
				Start: traceBase + start.Nanoseconds(), Dur: (end - start).Nanoseconds(),
			})
		}
	}

	var global *partialObs
	var stopErr error
	prev := math.NaN()
	converged := false
	for it := 0; it < opts.MaxIter; it++ {
		// Cancellation agreement rides its own blocking collective before
		// the graph is built: every rank reaches it between iterations, so
		// a cancelled run never leaves a peer parked in an exchange wait.
		if opts.Progress != nil && agreeStop(c, stopErr) {
			break
		}
		// Graph construction is part of the overlapped schedule's
		// per-iteration cost: keep it inside the timed window so the
		// phases-vs-overlap makespan comparison stays fair.
		iterStart := time.Now()
		tIter := trc.Begin()
		traceBase = tIter
		st := &iterRun{}
		g := rs.buildIterationGraph(opts, st, elRes, phRes)
		tr, err := ex.Run(g)
		if err != nil {
			return fmt.Errorf("dist: iteration %d: %w", it, err)
		}
		wall := time.Since(iterStart)
		trc.End(r, 0, "iter", "iter", it, -1, tIter)

		// Failure agreement rode along in the observable reduction: every
		// rank participated in every collective regardless, so nobody is
		// left blocking; now the failing rank(s) report and the healthy
		// ranks exit cleanly, exactly like the phase path's dedicated
		// flag Allreduce.
		global = st.global
		if global.flag != 0 {
			if st.err != nil {
				return fmt.Errorf("dist: iteration %d: %w", it, st.err)
			}
			return nil
		}

		cur := global.currentL
		rel := math.Abs(cur-prev) / math.Max(math.Abs(cur), 1e-300)
		if r == 0 {
			iterSt := IterStats{
				Iter: it, Current: cur, RelChange: rel,
				ElEnergyLoss: global.elLoss, PhEnergyGain: global.phGain,
				SSE:      global.sse,
				SSEBytes: int64(global.sseB), ReduceBytes: int64(global.redB),
				SigmaErr:       st.qerr,
				FallbackBlocks: int64(global.fbk),
				WallNs:         wall.Nanoseconds(),
				ComputeNs:      tr.Busy(g, sdfg.Compute).Nanoseconds(),
				CommNs:         tr.Busy(g, sdfg.Comm).Nanoseconds(),
			}
			res.IterTrace = append(res.IterTrace, iterSt)
			if opts.Progress != nil && stopErr == nil {
				stopErr = opts.Progress(iterSt)
			}
		}
		if it > 0 && rel < opts.Tol {
			converged = true
			break
		}
		prev = cur
	}

	if r == 0 {
		res.stopErr = stopErr
	}
	rs.epilogue(opts, res, converged, global)
	return nil
}

// iterRun is the mutable state one iteration's graph threads through its
// nodes. Fields are written by exactly one node each (or guarded by mu),
// and the executor's scheduling lock orders every write before the nodes
// that consume it.
type iterRun struct {
	mu  sync.Mutex
	err error // first failed point solve of this rank

	part *partialObs
	plan *decomp.DaCePlan

	reqG, reqD, reqSig, reqPi *comm.MatRequest
	reqObs                    *comm.VecRequest
	global                    *partialObs
	qerr                      float64 // globally reduced probe deviation
}

func (st *iterRun) fail(err error) {
	st.mu.Lock()
	if st.err == nil {
		st.err = err
	}
	st.mu.Unlock()
}

func (st *iterRun) failed() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.err != nil
}

// buildIterationGraph lays out one self-consistent iteration as the
// paper's dataflow graph. Node kinds follow §4's SDFG: per-point boundary
// solves and RGF solves, collision partials, the four SSE tile exchanges,
// the tile kernel, mixing, and the observable reduction.
//
// Collective discipline: a failing node records its error and the graph
// still drains, so every rank posts every collective every iteration —
// failure is agreed in the reduction, never by abandoning a peer. The
// wait nodes of each exchange stage additionally depend on both of the
// stage's posts: a wait may only block a worker once this rank has
// posted everything its peers need to reach the same stage, which makes
// the schedule deadlock-free for any pool size, including Workers=1.
func (rs *rankState) buildIterationGraph(opts Options, st *iterRun, elRes []*negf.ElectronPointResult, phRes []*negf.PhononPointResult) *sdfg.Graph {
	p := rs.dev.P
	c := rs.c
	st.part = newPartialObs(p)
	st.plan = decomp.NewDaCePlan(c.Rank(), rs.tiles, rs.src, rs.atomSets, rs.in).
		WithPrecision(opts.Precision)
	if opts.ErrorProbe {
		st.plan.WithErrorProbe()
	}

	g := sdfg.New()

	// ── Phase 0: GF solves for the owned shard, one (BC → RGF) chain per
	// point. The boundary depends only on (momentum, energy), so with a
	// warm cache the BC node is a hit and the split costs nothing; on the
	// first iteration it exposes the §7.1.2 boundary kernel as its own
	// schedulable unit.
	elDone := make([]sdfg.NodeID, len(rs.pairs))
	for i, pr := range rs.pairs {
		i, ik, ie := i, pr[0], pr[1]
		var deps []sdfg.NodeID
		if opts.CacheMode == bc.CacheBC {
			bcN := g.Add(sdfg.Spec{
				Label: fmt.Sprintf("bc/el/%d,%d", ik, ie), Phase: 0,
				Run: func() error {
					if st.failed() {
						return nil
					}
					if err := rs.ps.PrepareElectronBC(rs.hams[ik], ik, ie); err != nil {
						st.fail(fmt.Errorf("point (kz=%d, E=%d): %w", ik, ie, err))
					}
					return nil
				},
			})
			deps = append(deps, bcN)
		}
		elDone[i] = g.Add(sdfg.Spec{
			Label: fmt.Sprintf("rgf/el/%d,%d", ik, ie), Phase: 0,
			Run: func() error {
				if st.failed() {
					return nil
				}
				r, err := rs.ps.SolveElectronPoint(rs.hams[ik], ik, ie)
				if err != nil {
					st.fail(fmt.Errorf("point (kz=%d, E=%d): %w", ik, ie, err))
					return nil
				}
				elRes[i] = r
				return nil
			},
		}, deps...)
	}
	phDone := make([]sdfg.NodeID, len(rs.points))
	for j, pt := range rs.points {
		j, iq, m := j, pt[0], pt[1]
		var deps []sdfg.NodeID
		if opts.CacheMode == bc.CacheBC {
			bcN := g.Add(sdfg.Spec{
				Label: fmt.Sprintf("bc/ph/%d,%d", iq, m), Phase: 0,
				Run: func() error {
					if st.failed() {
						return nil
					}
					if err := rs.ps.PreparePhononBC(rs.dyns[iq], iq, m); err != nil {
						st.fail(fmt.Errorf("point (qz=%d, ω=%d): %w", iq, m, err))
					}
					return nil
				},
			})
			deps = append(deps, bcN)
		}
		phDone[j] = g.Add(sdfg.Spec{
			Label: fmt.Sprintf("rgf/ph/%d,%d", iq, m), Phase: 0,
			Run: func() error {
				if st.failed() {
					return nil
				}
				r, err := rs.ps.SolvePhononPoint(rs.dyns[iq], iq, m)
				if err != nil {
					st.fail(fmt.Errorf("point (qz=%d, ω=%d): %w", iq, m, err))
					return nil
				}
				phRes[j] = r
				return nil
			},
		}, deps...)
	}

	// Deterministic accumulation: the point solves land in slots, and one
	// node folds them in global point order — the identical association
	// the sequential reduction uses, independent of scheduling.
	elAccum := g.Add(sdfg.Spec{
		Label: "accum/el", Phase: 0,
		Run: func() error {
			if st.failed() {
				return nil // slots may hold stale results; the iteration is discarded
			}
			for i, pr := range rs.pairs {
				st.part.addElectron(p, pr[1], elRes[i])
			}
			return nil
		},
	}, elDone...)
	phAccum := g.Add(sdfg.Spec{
		Label: "accum/ph", Phase: 0,
		Run: func() error {
			if st.failed() {
				return nil
			}
			for a := range rs.dos {
				for m := range rs.dos[a] {
					rs.dos[a][m], rs.occ[a][m] = 0, 0
				}
			}
			for j, pt := range rs.points {
				st.part.addPhonon(p, pt[1], phRes[j], rs.dos, rs.occ)
			}
			return nil
		},
	}, phDone...)

	// Collision partials: need the fresh G≷/D≷ and the pre-mix Σ≷/Π≷, so
	// they must precede the mixing nodes — in the dataflow schedule they
	// overlap the exchange waits instead of padding the GF phase.
	elLoss := g.Add(sdfg.Spec{
		Label: "collision/el", Phase: 0,
		Run: func() error {
			st.part.elLoss = rs.ps.ElectronCollisionSum(rs.pairs)
			return nil
		},
	}, elDone...)
	phGain := g.Add(sdfg.Spec{
		Label: "collision/ph", Phase: 0,
		Run: func() error {
			st.part.phGain = rs.ps.PhononCollisionSum(rs.points)
			return nil
		},
	}, phDone...)

	// ── Phase 1: the four-exchange SSE. Posts fire as soon as this
	// rank's own inputs exist — G≷ can be in flight while phonon points
	// still compute, the §7.1.3 overlap.
	postG := g.Add(sdfg.Spec{
		Label: "post/G", Kind: sdfg.Comm, Phase: 1,
		Run: func() error { st.reqG = st.plan.PostG(c); return nil },
	}, elDone...)
	postD := g.Add(sdfg.Spec{
		Label: "post/D", Kind: sdfg.Comm, Phase: 1,
		Run: func() error { st.reqD = st.plan.PostD(c); return nil },
	}, phDone...)
	waitG := g.Add(sdfg.Spec{
		Label: "wait/G", Kind: sdfg.Comm, Phase: 1,
		Run: func() error { st.plan.UnpackG(st.reqG.Wait()); return nil },
	}, postG, postD)
	waitD := g.Add(sdfg.Spec{
		Label: "wait/D", Kind: sdfg.Comm, Phase: 1,
		Run: func() error { st.plan.UnpackD(st.reqD.Wait()); return nil },
	}, postD, postG)
	tile := g.Add(sdfg.Spec{
		Label: "sse/tile", Phase: 1,
		Run: func() error {
			st.plan.ComputeTile()
			st.part.sse = st.plan.Output().Stats
			return nil
		},
	}, waitG, waitD)
	postSig := g.Add(sdfg.Spec{
		Label: "post/Sigma", Kind: sdfg.Comm, Phase: 1,
		Run: func() error { st.reqSig = st.plan.PostSigma(c); return nil },
	}, tile)
	postPi := g.Add(sdfg.Spec{
		Label: "post/Pi", Kind: sdfg.Comm, Phase: 1,
		Run: func() error { st.reqPi = st.plan.PostPi(c); return nil },
	}, tile)
	waitSig := g.Add(sdfg.Spec{
		Label: "wait/Sigma", Kind: sdfg.Comm, Phase: 1,
		Run: func() error { st.plan.UnpackSigma(st.reqSig.Wait()); return nil },
	}, postSig, postPi)
	waitPi := g.Add(sdfg.Spec{
		Label: "wait/Pi", Kind: sdfg.Comm, Phase: 1,
		Run: func() error { st.plan.UnpackPi(st.reqPi.Wait()); return nil },
	}, postPi, postSig)
	// Precision telemetry: a blocking max-reduction of the probe's tile
	// deviation. Like the wait nodes, it depends on both Σ/Π posts, so a
	// worker may only block here once this rank has posted everything its
	// peers need to reach their own probe — the same structural argument
	// that makes the exchange waits deadlock-free for any pool size.
	if opts.ErrorProbe {
		g.Add(sdfg.Spec{
			Label: "probe/qerr", Kind: sdfg.Comm, Phase: 1,
			Run: func() error {
				st.qerr = reduceProbe(c, st.plan)
				return nil
			},
		}, tile, postSig, postPi)
	}
	g.Add(sdfg.Spec{
		Label: "mix/Sigma", Phase: 1,
		Run: func() error { rs.mixSigma(st.plan.Output(), opts.Mixing); return nil },
	}, waitSig, elLoss)
	g.Add(sdfg.Spec{
		Label: "mix/Pi", Phase: 1,
		Run: func() error { rs.mixPi(st.plan.Output(), opts.Mixing); return nil },
	}, waitPi, phGain)

	// ── Phase 2: observable reduction, overlapping the Σ/Π waits. The
	// post depends on the Σ/Π posts only, so the plan's off-rank byte
	// counter already covers all four exchanges of this iteration.
	obsPost := g.Add(sdfg.Spec{
		Label: "post/obs", Kind: sdfg.Comm, Phase: 2,
		Run: func() error {
			if st.failed() {
				st.part.flag = 1
			}
			st.part.sseB = float64(st.plan.OffRankBytes())
			st.part.redB = reduceShare(c, vecLen(p)) + agreeShare(c, opts)
			st.part.fbk = float64(st.plan.FallbackBlocks())
			st.reqObs = c.IAllreduce(decomp.SlotObs, st.part.pack())
			return nil
		},
	}, elAccum, phAccum, elLoss, phGain, tile, postSig, postPi)
	g.Add(sdfg.Spec{
		Label: "wait/obs", Kind: sdfg.Comm, Phase: 2,
		Run: func() error { st.global = unpackObs(st.reqObs.Wait(), p); return nil },
	}, obsPost)

	return g
}

// reduceShare is the off-rank traffic this rank contributes to one
// IAllreduce of n complex values: non-root ranks send their contribution
// to rank 0, rank 0 broadcasts the sum to everyone else. Summed over
// ranks this equals what the comm layer measures.
func reduceShare(c *comm.Comm, n int) float64 {
	if c.Size() == 1 {
		return 0
	}
	if c.Rank() == 0 {
		return float64((c.Size() - 1) * n * 16)
	}
	return float64(n * 16)
}
