package dist

import (
	"fmt"
	"math"

	"repro/internal/blocktri"
	"repro/internal/comm"
	"repro/internal/decomp"
	"repro/internal/device"
	"repro/internal/negf"
	"repro/internal/sse"
	"repro/internal/tensor"
)

// runRank is one rank's life: persistent shard state across the whole
// self-consistent loop. Only rank 0 writes into res (the caller reads it
// after World.Run returns, which orders the accesses).
func runRank(c *comm.Comm, w *comm.World, dev *device.Device, opts Options, res *Result) error {
	p := dev.P
	r := c.Rank()
	ps := negf.NewPointSolver(dev, opts.CacheMode)
	src := decomp.NewOMENLayout(p, opts.Ranks)
	tiles := decomp.NewDaCeLayout(dev, opts.Ta, opts.TE)
	atomSets := tiles.AtomSets()
	pairs := src.OwnedPairs(r)
	points := src.OwnedPhonon(r)

	// H(kz) and Φ(qz) are self-energy-independent: assemble each owned
	// momentum once for the whole run.
	hams := make(map[int]*blocktri.Matrix)
	for _, pr := range pairs {
		if _, ok := hams[pr[0]]; !ok {
			hams[pr[0]] = dev.Hamiltonian(pr[0])
		}
	}
	dyns := make(map[int]*blocktri.Matrix)
	for _, pt := range points {
		if _, ok := dyns[pt[0]]; !ok {
			dyns[pt[0]] = dev.Dynamical(pt[0])
		}
	}

	// Per-atom phonon spectral weight and occupation partials of the last
	// GF phase, reduced once after the loop for the temperature map.
	dos := make([][]float64, p.Na)
	occ := make([][]float64, p.Na)
	for a := range dos {
		dos[a] = make([]float64, p.Nomega)
		occ[a] = make([]float64, p.Nomega)
	}

	in := &sse.Input{Dev: dev, GL: ps.GL, GG: ps.GG, DL: ps.DL, DG: ps.DG}
	var global *partialObs
	prev := math.NaN()
	converged := false
	for it := 0; it < opts.MaxIter; it++ {
		// ── GF phase: RGF solves for the owned shard only. No traffic.
		part, err := solveShard(ps, hams, dyns, pairs, points, dos, occ)
		// A rank cannot abandon the collectives unilaterally — the others
		// would block in the next exchange forever. Agree on failure first:
		// one scalar Allreduce, nonzero iff any rank errored. The failing
		// rank(s) then report the real error; healthy ranks exit cleanly.
		var flag complex128
		if err != nil {
			flag = 1
		}
		if fail := c.Allreduce([]complex128{flag}); real(fail[0]) != 0 {
			if err != nil {
				return fmt.Errorf("dist: iteration %d: %w", it, err)
			}
			return nil
		}

		// ── SSE phase: four Alltoallv exchanges + local tile kernel, then
		// linear mixing of the owned Σ≷/Π≷ planes.
		before := snapshotBytes(c, w)
		out := decomp.ExchangeDaCe(c, tiles, src, atomSets, in)
		part.sse = out.Stats
		// Linear mixing of the owned Σ≷/Π≷ planes — tensor.MixSlice is the
		// same blend the sequential solver applies tensor-wide.
		for _, pr := range pairs {
			tensor.MixSlice(ps.SigL.Plane(pr[0], pr[1]), out.SigL.Plane(pr[0], pr[1]), opts.Mixing)
			tensor.MixSlice(ps.SigG.Plane(pr[0], pr[1]), out.SigG.Plane(pr[0], pr[1]), opts.Mixing)
		}
		for _, pt := range points {
			tensor.MixSlice(ps.PiL.Plane(pt[0], pt[1]-1), out.PiL.Plane(pt[0], pt[1]-1), opts.Mixing)
			tensor.MixSlice(ps.PiG.Plane(pt[0], pt[1]-1), out.PiG.Plane(pt[0], pt[1]-1), opts.Mixing)
		}
		afterSSE := snapshotBytes(c, w)

		// ── Convergence: Allreduce the packed observables so every rank
		// sees the identical global contact current.
		global = unpackObs(c.Allreduce(part.pack()), p)
		afterReduce := snapshotBytes(c, w)

		cur := global.currentL
		rel := math.Abs(cur-prev) / math.Max(math.Abs(cur), 1e-300)
		if r == 0 {
			res.IterTrace = append(res.IterTrace, IterStats{
				Iter: it, Current: cur, RelChange: rel,
				ElEnergyLoss: global.elLoss, PhEnergyGain: global.phGain,
				SSE:      global.sse,
				SSEBytes: afterSSE - before, ReduceBytes: afterReduce - afterSSE,
			})
		}
		if it > 0 && rel < opts.Tol {
			converged = true
			break
		}
		prev = cur
	}

	// ── Epilogue: reduce the spectral weight/occupation for the
	// temperature map (dos in the real parts, occ in the imaginary) and
	// gather the per-rank load report. Only rank 0 consumes either, so
	// both collectives are rooted there — the measured volume stays what
	// the algorithm strictly needs.
	buf := make([]complex128, p.Na*p.Nomega)
	for a := 0; a < p.Na; a++ {
		for m := 0; m < p.Nomega; m++ {
			buf[a*p.Nomega+m] = complex(dos[a][m], occ[a][m])
		}
	}
	buf = c.Reduce(0, buf)
	_, misses := ps.BC.Stats()
	loads := c.Gather(0, []complex128{
		complex(float64(len(pairs)), 0),
		complex(float64(len(points)), 0),
		complex(float64(misses), 0),
	})

	if r == 0 {
		for a := 0; a < p.Na; a++ {
			for m := 0; m < p.Nomega; m++ {
				dos[a][m] = real(buf[a*p.Nomega+m])
				occ[a][m] = imag(buf[a*p.Nomega+m])
			}
		}
		res.Converged = converged
		res.Obs = global.observables(p)
		res.Obs.AtomTemperature = negf.FitTemperatures(p, dos, occ)
		res.Load = make([]RankLoad, opts.Ranks)
		for rank, l := range loads {
			res.Load[rank] = RankLoad{
				Rank:       rank,
				Pairs:      int(real(l[0])),
				Points:     int(real(l[1])),
				BCComputes: int(real(l[2])),
			}
		}
	}
	return nil
}

// solveShard runs the GF phase for this rank's owned points: electron and
// phonon RGF solves plus the collision-integral partials, accumulated in
// global point order so the cross-rank reduction reproduces the sequential
// summation up to floating-point reassociation.
func solveShard(ps *negf.PointSolver, hams, dyns map[int]*blocktri.Matrix,
	pairs, points [][2]int, dos, occ [][]float64) (*partialObs, error) {
	p := ps.Dev.P
	part := newPartialObs(p)

	we := p.DE / (2 * math.Pi) / float64(p.Nkz)
	for _, pr := range pairs {
		ik, ie := pr[0], pr[1]
		r, err := ps.SolveElectronPoint(hams[ik], ik, ie)
		if err != nil {
			return nil, fmt.Errorf("point (kz=%d, E=%d): %w", ik, ie, err)
		}
		part.currentL += we * r.CurrentL
		part.currentR += we * r.CurrentR
		part.energyL += we * r.EnergyL
		for i := range r.InterfaceCurrent {
			part.ifaceCur[i] += we * r.InterfaceCurrent[i]
			part.ifaceEn[i] += we * r.InterfaceEnergy[i]
		}
		for i := range r.DissipatedPerSlab {
			part.diss[i] += we * r.DissipatedPerSlab[i]
		}
		part.spectral[ie] += r.CurrentL
	}

	wp := p.DE / (2 * math.Pi) / float64(p.Nqz())
	for a := range dos {
		for m := range dos[a] {
			dos[a][m], occ[a][m] = 0, 0
		}
	}
	for _, pt := range points {
		iq, m := pt[0], pt[1]
		r, err := ps.SolvePhononPoint(dyns[iq], iq, m)
		if err != nil {
			return nil, fmt.Errorf("point (qz=%d, ω=%d): %w", iq, m, err)
		}
		omega := p.Omega(m)
		part.phononEnergyL += wp * omega * r.EnergyContactL
		for i := range r.InterfaceEnergy {
			part.phIfaceEn[i] += wp * omega * r.InterfaceEnergy[i]
		}
		for a := 0; a < p.Na; a++ {
			dos[a][m-1] += r.DOS[a] / float64(p.Nqz())
			occ[a][m-1] += r.Occ[a] / float64(p.Nqz())
		}
	}

	part.elLoss = ps.ElectronCollisionSum(pairs)
	part.phGain = ps.PhononCollisionSum(points)
	return part, nil
}

// snapshotBytes reads the world's cumulative sent-byte counter at a
// globally quiescent point: the first barrier guarantees all prior
// traffic is counted, the second holds the other ranks back until rank 0
// has read. Meaningful on rank 0 only.
func snapshotBytes(c *comm.Comm, w *comm.World) int64 {
	c.Barrier()
	var b int64
	if c.Rank() == 0 {
		b = w.Stats().BytesSent
	}
	c.Barrier()
	return b
}
