package dist

import (
	"fmt"
	"math"
	"time"

	"repro/internal/blocktri"
	"repro/internal/comm"
	"repro/internal/decomp"
	"repro/internal/device"
	"repro/internal/negf"
	"repro/internal/sse"
	"repro/internal/tensor"
)

// rankState is one rank's persistent shard state across the whole
// self-consistent loop, shared by both schedules.
type rankState struct {
	c        *comm.Comm
	dev      *device.Device
	ps       *negf.PointSolver
	src      *decomp.OMENLayout
	tiles    *decomp.DaCeLayout
	atomSets [][]int
	pairs    [][2]int // owned electron (kz, E) points
	points   [][2]int // owned phonon (qz, ω) points
	hams     map[int]*blocktri.Matrix
	dyns     map[int]*blocktri.Matrix
	// Per-atom phonon spectral weight and occupation partials of the last
	// GF phase, reduced once after the loop for the temperature map.
	dos, occ [][]float64
	in       *sse.Input
}

func newRankState(c *comm.Comm, dev *device.Device, opts Options) *rankState {
	p := dev.P
	r := c.Rank()
	rs := &rankState{
		c:     c,
		dev:   dev,
		ps:    negf.NewPointSolver(dev, opts.CacheMode),
		src:   decomp.NewOMENLayout(p, opts.Ranks),
		tiles: decomp.NewDaCeLayout(dev, opts.Ta, opts.TE),
	}
	rs.atomSets = rs.tiles.AtomSets()
	rs.pairs = rs.src.OwnedPairs(r)
	rs.points = rs.src.OwnedPhonon(r)
	rs.ps.Trace = opts.Tracer
	rs.ps.TraceRank = r

	// H(kz) and Φ(qz) are self-energy-independent: assemble each owned
	// momentum once for the whole run.
	rs.hams = make(map[int]*blocktri.Matrix)
	for _, pr := range rs.pairs {
		if _, ok := rs.hams[pr[0]]; !ok {
			rs.hams[pr[0]] = dev.Hamiltonian(pr[0])
		}
	}
	rs.dyns = make(map[int]*blocktri.Matrix)
	for _, pt := range rs.points {
		if _, ok := rs.dyns[pt[0]]; !ok {
			rs.dyns[pt[0]] = dev.Dynamical(pt[0])
		}
	}

	rs.dos = make([][]float64, p.Na)
	rs.occ = make([][]float64, p.Na)
	for a := range rs.dos {
		rs.dos[a] = make([]float64, p.Nomega)
		rs.occ[a] = make([]float64, p.Nomega)
	}
	rs.in = &sse.Input{Dev: dev, GL: rs.ps.GL, GG: rs.ps.GG, DL: rs.ps.DL, DG: rs.ps.DG}
	return rs
}

// mix blends the freshly exchanged Σ≷/Π≷ planes of the owned points into
// the solver state — tensor.MixSlice is the same blend the sequential
// solver applies tensor-wide.
func (rs *rankState) mixSigma(out *sse.Output, mixing float64) {
	for _, pr := range rs.pairs {
		tensor.MixSlice(rs.ps.SigL.Plane(pr[0], pr[1]), out.SigL.Plane(pr[0], pr[1]), mixing)
		tensor.MixSlice(rs.ps.SigG.Plane(pr[0], pr[1]), out.SigG.Plane(pr[0], pr[1]), mixing)
	}
}

func (rs *rankState) mixPi(out *sse.Output, mixing float64) {
	for _, pt := range rs.points {
		tensor.MixSlice(rs.ps.PiL.Plane(pt[0], pt[1]-1), out.PiL.Plane(pt[0], pt[1]-1), mixing)
		tensor.MixSlice(rs.ps.PiG.Plane(pt[0], pt[1]-1), out.PiG.Plane(pt[0], pt[1]-1), mixing)
	}
}

// epilogue reduces the spectral weight/occupation for the temperature map
// (dos in the real parts, occ in the imaginary) and gathers the per-rank
// load report. Only rank 0 consumes either, so both collectives are
// rooted there — the measured volume stays what the algorithm strictly
// needs.
func (rs *rankState) epilogue(opts Options, res *Result, converged bool, global *partialObs) {
	p := rs.dev.P
	buf := make([]complex128, p.Na*p.Nomega)
	for a := 0; a < p.Na; a++ {
		for m := 0; m < p.Nomega; m++ {
			buf[a*p.Nomega+m] = complex(rs.dos[a][m], rs.occ[a][m])
		}
	}
	buf = rs.c.Reduce(0, buf)
	_, misses := rs.ps.BC.Stats()
	loads := rs.c.Gather(0, []complex128{
		complex(float64(len(rs.pairs)), 0),
		complex(float64(len(rs.points)), 0),
		complex(float64(misses), 0),
	})

	if rs.c.Rank() != 0 {
		return
	}
	for a := 0; a < p.Na; a++ {
		for m := 0; m < p.Nomega; m++ {
			rs.dos[a][m] = real(buf[a*p.Nomega+m])
			rs.occ[a][m] = imag(buf[a*p.Nomega+m])
		}
	}
	res.Converged = converged
	res.Obs = global.observables(p)
	res.Obs.AtomTemperature = negf.FitTemperatures(p, rs.dos, rs.occ)
	res.Load = make([]RankLoad, opts.Ranks)
	for rank, l := range loads {
		res.Load[rank] = RankLoad{
			Rank:       rank,
			Pairs:      int(real(l[0])),
			Points:     int(real(l[1])),
			BCComputes: int(real(l[2])),
		}
	}
}

// runRank is one rank's life under SchedulePhases: the bulk-synchronous
// GF → barrier → SSE → reduce loop. Only rank 0 writes into res (the
// caller reads it after World.Run returns, which orders the accesses).
func runRank(c *comm.Comm, dev *device.Device, opts Options, res *Result) error {
	rs := newRankState(c, dev, opts)
	r := c.Rank()
	trc := opts.Tracer
	var global *partialObs
	var stopErr error
	prev := math.NaN()
	converged := false
	for it := 0; it < opts.MaxIter; it++ {
		if opts.Progress != nil && agreeStop(c, stopErr) {
			break
		}
		iterStart := time.Now()
		tIter := trc.Begin()
		// ── GF phase: RGF solves for the owned shard only. No traffic.
		part, err := solveShard(rs.ps, rs.hams, rs.dyns, rs.pairs, rs.points, rs.dos, rs.occ)
		// A rank cannot abandon the collectives unilaterally — the others
		// would block in the next exchange forever. Agree on failure first:
		// one scalar Allreduce, nonzero iff any rank errored. The failing
		// rank(s) then report the real error; healthy ranks exit cleanly.
		var flag complex128
		if err != nil {
			flag = 1
		}
		if fail := c.Allreduce([]complex128{flag}); real(fail[0]) != 0 {
			if err != nil {
				return fmt.Errorf("dist: iteration %d: %w", it, err)
			}
			return nil
		}

		// ── SSE phase: four Alltoallv exchanges + local tile kernel, then
		// linear mixing of the owned Σ≷/Π≷ planes. The plan counts this
		// rank's off-rank traffic at pack time — the same barrier-free
		// accounting the overlapped schedule uses, so the two schedules'
		// iteration timings stay comparable.
		pl := decomp.NewDaCePlan(c.Rank(), rs.tiles, rs.src, rs.atomSets, rs.in).
			WithPrecision(opts.Precision)
		if opts.ErrorProbe {
			pl.WithErrorProbe()
		}
		tEx := trc.Begin()
		pl.UnpackG(c.Alltoallv(pl.PackG()))
		pl.UnpackD(c.Alltoallv(pl.PackD()))
		trc.End(r, 0, "exchange", "exchange/GD", it, -1, tEx)
		tTile := trc.Begin()
		pl.ComputeTile()
		trc.End(r, 0, "sse", "sse/tile", it, -1, tTile)
		tEx = trc.Begin()
		pl.UnpackSigma(c.Alltoallv(pl.PackSigma()))
		pl.UnpackPi(c.Alltoallv(pl.PackPi()))
		trc.End(r, 0, "exchange", "exchange/SigmaPi", it, -1, tEx)
		out := pl.Output()
		part.sse = out.Stats
		rs.mixSigma(out, opts.Mixing)
		rs.mixPi(out, opts.Mixing)
		part.sseB = float64(pl.OffRankBytes())
		part.redB = reduceShare(c, vecLen(dev.P)) + agreeShare(c, opts)
		part.fbk = float64(pl.FallbackBlocks())
		// Precision telemetry: the global deviation is the worst rank's,
		// so it rides a max-reduction, not the summed observable vector.
		var qerr float64
		if opts.ErrorProbe {
			qerr = reduceProbe(c, pl)
		}

		// ── Convergence: Allreduce the packed observables so every rank
		// sees the identical global contact current.
		tRed := trc.Begin()
		global = unpackObs(c.Allreduce(part.pack()), dev.P)
		trc.End(r, 0, "reduce", "reduce/obs", it, -1, tRed)
		trc.End(r, 0, "iter", "iter", it, -1, tIter)

		cur := global.currentL
		rel := math.Abs(cur-prev) / math.Max(math.Abs(cur), 1e-300)
		if r == 0 {
			st := IterStats{
				Iter: it, Current: cur, RelChange: rel,
				ElEnergyLoss: global.elLoss, PhEnergyGain: global.phGain,
				SSE:      global.sse,
				SSEBytes: int64(global.sseB), ReduceBytes: int64(global.redB),
				SigmaErr:       qerr,
				FallbackBlocks: int64(global.fbk),
				WallNs:         time.Since(iterStart).Nanoseconds(),
			}
			res.IterTrace = append(res.IterTrace, st)
			if opts.Progress != nil && stopErr == nil {
				stopErr = opts.Progress(st)
			}
		}
		if it > 0 && rel < opts.Tol {
			converged = true
			break
		}
		prev = cur
	}

	if r == 0 {
		res.stopErr = stopErr
	}
	rs.epilogue(opts, res, converged, global)
	return nil
}

// agreeStop is the cancellation agreement of the Progress hook: every
// rank contributes whether it carries a pending stop request (only
// rank 0 ever does — the hook runs there) and the reduced flag gives
// all ranks the identical break decision, so nobody abandons a peer in
// a collective. It costs one scalar Allreduce per iteration and runs
// only when a hook is installed.
func agreeStop(c *comm.Comm, stopErr error) bool {
	var flag complex128
	if stopErr != nil {
		flag = 1
	}
	return real(c.Allreduce([]complex128{flag})[0]) != 0
}

// agreeShare is this rank's contribution to the iteration's
// cancellation-agreement Allreduce — zero when no Progress hook is
// installed (the collective does not run), so IterStats.ReduceBytes
// keeps summing to what the comm layer measures either way.
func agreeShare(c *comm.Comm, opts Options) float64 {
	if opts.Progress == nil {
		return 0
	}
	return reduceShare(c, 1)
}

// reduceProbe turns per-rank tile probe numbers into the global relative
// Σ≷/Π≷ deviation: absolute ∞-norm deviations and reference norms are
// max-reduced independently (real and imaginary halves of one payload
// word per tensor class), and only then divided — a tile's Π≷ partial
// can cancel to near zero locally, so local ratios would overstate the
// error.
func reduceProbe(c *comm.Comm, pl *decomp.DaCePlan) float64 {
	dev, ref := pl.ProbeDeviation()
	red := c.AllreduceMax([]complex128{
		complex(dev[0], ref[0]),
		complex(dev[1], ref[1]),
	})
	var worst float64
	for _, v := range red {
		if imag(v) > 0 && real(v)/imag(v) > worst {
			worst = real(v) / imag(v)
		}
	}
	return worst
}

// solveShard runs the GF phase for this rank's owned points: electron and
// phonon RGF solves plus the collision-integral partials, accumulated in
// global point order so the cross-rank reduction reproduces the sequential
// summation up to floating-point reassociation.
func solveShard(ps *negf.PointSolver, hams, dyns map[int]*blocktri.Matrix,
	pairs, points [][2]int, dos, occ [][]float64) (*partialObs, error) {
	p := ps.Dev.P
	part := newPartialObs(p)

	for _, pr := range pairs {
		ik, ie := pr[0], pr[1]
		r, err := ps.SolveElectronPoint(hams[ik], ik, ie)
		if err != nil {
			return nil, fmt.Errorf("point (kz=%d, E=%d): %w", ik, ie, err)
		}
		part.addElectron(p, ie, r)
	}

	for a := range dos {
		for m := range dos[a] {
			dos[a][m], occ[a][m] = 0, 0
		}
	}
	for _, pt := range points {
		iq, m := pt[0], pt[1]
		r, err := ps.SolvePhononPoint(dyns[iq], iq, m)
		if err != nil {
			return nil, fmt.Errorf("point (qz=%d, ω=%d): %w", iq, m, err)
		}
		part.addPhonon(p, m, r, dos, occ)
	}

	part.elLoss = ps.ElectronCollisionSum(pairs)
	part.phGain = ps.PhononCollisionSum(points)
	return part, nil
}

// addElectron folds one electron point's observables into the partial,
// with the same weights and order as the sequential reduction.
func (po *partialObs) addElectron(p device.Params, ie int, r *negf.ElectronPointResult) {
	we := p.DE / (2 * math.Pi) / float64(p.Nkz)
	po.currentL += we * r.CurrentL
	po.currentR += we * r.CurrentR
	po.energyL += we * r.EnergyL
	for i := range r.InterfaceCurrent {
		po.ifaceCur[i] += we * r.InterfaceCurrent[i]
		po.ifaceEn[i] += we * r.InterfaceEnergy[i]
	}
	for i := range r.DissipatedPerSlab {
		po.diss[i] += we * r.DissipatedPerSlab[i]
	}
	po.spectral[ie] += r.CurrentL
}

// addPhonon folds one phonon point's observables into the partial and the
// dos/occ accumulators.
func (po *partialObs) addPhonon(p device.Params, m int, r *negf.PhononPointResult, dos, occ [][]float64) {
	wp := p.DE / (2 * math.Pi) / float64(p.Nqz())
	omega := p.Omega(m)
	po.phononEnergyL += wp * omega * r.EnergyContactL
	for i := range r.InterfaceEnergy {
		po.phIfaceEn[i] += wp * omega * r.InterfaceEnergy[i]
	}
	for a := 0; a < p.Na; a++ {
		dos[a][m-1] += r.DOS[a] / float64(p.Nqz())
		occ[a][m-1] += r.Occ[a] / float64(p.Nqz())
	}
}
