package linalg

import (
	"errors"
	"math/cmplx"
)

// ErrSingular is returned when a factorization or solve encounters an
// (numerically) singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular")

// LU holds an LU factorization with partial pivoting: P·A = L·U where L is
// unit lower triangular and U is upper triangular, both packed into lu.
type LU struct {
	lu    *Matrix
	pivot []int
	signs int // parity of the permutation, for determinants
}

// NewLU allocates an LU record with storage for n×n factorizations. The
// record is reusable: successive FactorizeInto calls overwrite the packed
// factors and pivots in place, so the hot RGF loop refactorizes without
// heap traffic.
func NewLU(n int) *LU {
	return &LU{lu: New(n, n), pivot: make([]int, n)}
}

// Factorize computes the LU factorization of a (which is not modified).
// The retarded Green's function solve (E·S − H − Σᴿ)·Gᴿ = I in the RGF
// kernel reduces to factorizations of the per-block effective Hamiltonian.
func Factorize(a *Matrix) (*LU, error) {
	if !a.IsSquare() {
		return nil, errors.New("linalg: Factorize requires a square matrix")
	}
	f := &LU{lu: a.Clone(), pivot: make([]int, a.Rows)}
	if err := f.factorize(); err != nil {
		return nil, err
	}
	return f, nil
}

// FactorizeInto recomputes the factorization of a into f's existing
// storage without allocating — the workspace path of the RGF kernel
// (obtain f once with Workspace.LUFor, refactorize every block). The
// arithmetic is identical to Factorize, so the factors are bit-identical.
func (f *LU) FactorizeInto(a *Matrix) error {
	if !a.IsSquare() || a.Rows != f.lu.Rows {
		return errors.New("linalg: FactorizeInto dimension mismatch")
	}
	f.lu.CopyFrom(a)
	return f.factorize()
}

// factorize runs the pivoted elimination on the matrix already stored in
// f.lu, overwriting it with the packed factors.
func (f *LU) factorize() error {
	n := f.lu.Rows
	piv := f.pivot
	signs := 1
	d := f.lu.Data
	countFlops(8 * int64(n) * int64(n) * int64(n) * 2 / 3)
	for col := 0; col < n; col++ {
		// Partial pivot: largest magnitude in this column at or below the diagonal.
		p := col
		max := cmplx.Abs(d[col*n+col])
		for r := col + 1; r < n; r++ {
			if a := cmplx.Abs(d[r*n+col]); a > max {
				max, p = a, r
			}
		}
		if max == 0 {
			return ErrSingular
		}
		piv[col] = p
		if p != col {
			signs = -signs
			rp, rc := d[p*n:(p+1)*n], d[col*n:(col+1)*n]
			for j := range rp {
				rp[j], rc[j] = rc[j], rp[j]
			}
		}
		inv := 1 / d[col*n+col]
		for r := col + 1; r < n; r++ {
			fac := d[r*n+col] * inv
			d[r*n+col] = fac
			if fac == 0 {
				continue
			}
			rr := d[r*n+col+1 : (r+1)*n]
			rc := d[col*n+col+1 : (col+1)*n]
			vecSubMul(rr, rc, fac)
		}
	}
	f.signs = signs
	return nil
}

// Solve computes X such that A·X = B for the factorized A. B is not modified.
func (f *LU) Solve(b *Matrix) *Matrix {
	n := f.lu.Rows
	if b.Rows != n {
		panic("linalg: LU.Solve dimension mismatch")
	}
	x := b.Clone()
	f.SolveInPlace(x)
	return x
}

// SolveInPlace overwrites x with A⁻¹·x.
func (f *LU) SolveInPlace(x *Matrix) {
	n := f.lu.Rows
	m := x.Cols
	d := f.lu.Data
	xd := x.Data
	countFlops(8 * int64(n) * int64(n) * int64(m))
	// Apply the row permutation.
	for i := 0; i < n; i++ {
		if p := f.pivot[i]; p != i {
			ri, rp := xd[i*m:(i+1)*m], xd[p*m:(p+1)*m]
			for j := range ri {
				ri[j], rp[j] = rp[j], ri[j]
			}
		}
	}
	// Forward substitution with unit-lower L. The zero-skip guards are
	// semantic, not just a shortcut: skipping preserves -0 payloads that
	// x -= 0*xk would rewrite, and structured factors from block
	// assembly carry many exact zeros.
	for i := 1; i < n; i++ {
		xi := xd[i*m : (i+1)*m]
		for k := 0; k < i; k++ {
			l := d[i*n+k]
			if l == 0 {
				continue
			}
			vecSubMul(xi, xd[k*m:(k+1)*m], l)
		}
	}
	// Backward substitution with U.
	for i := n - 1; i >= 0; i-- {
		xi := xd[i*m : (i+1)*m]
		for k := i + 1; k < n; k++ {
			u := d[i*n+k]
			if u == 0 {
				continue
			}
			vecSubMul(xi, xd[k*m:(k+1)*m], u)
		}
		vecScale(xi, 1/d[i*n+i])
	}
}

// Det returns the determinant of the factorized matrix.
func (f *LU) Det() complex128 {
	n := f.lu.Rows
	det := complex(float64(f.signs), 0)
	for i := 0; i < n; i++ {
		det *= f.lu.Data[i*n+i]
	}
	return det
}

// InverseInto overwrites dst with the inverse of the factorized matrix:
// dst is set to the identity and solved in place, exactly the sequence
// Inverse performs on a fresh matrix.
func (f *LU) InverseInto(dst *Matrix) {
	dst.SetIdentity()
	f.SolveInPlace(dst)
}

// Inverse returns A⁻¹ for square A, or ErrSingular.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	inv := Eye(a.Rows)
	f.SolveInPlace(inv)
	return inv, nil
}

// MustInverse returns A⁻¹ and panics on singular input. The RGF recursion
// applies it to effective-Hamiltonian blocks that are nonsingular for any
// energy with a nonzero imaginary part (E + iη), so failure indicates a
// programming error rather than a data condition.
func MustInverse(a *Matrix) *Matrix {
	inv, err := Inverse(a)
	if err != nil {
		panic(err)
	}
	return inv
}

// Solve computes X with A·X = B without exposing the factorization.
func Solve(a, b *Matrix) (*Matrix, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}
