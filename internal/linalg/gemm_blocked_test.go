package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// referenceGEMM computes C = alpha·op(A)·op(B) + beta·C through the
// retained gemmStripe reference, materializing transposed operands so the
// stripe always sees natural orientation. This is the bit-identity oracle:
// the blocked kernel must reproduce it exactly.
func referenceGEMM(alpha complex128, a *Matrix, opA Op, b *Matrix, opB Op, beta complex128, c *Matrix) {
	am, bm := a, b
	switch opA {
	case Trans:
		am = a.T()
	case ConjTrans:
		am = a.H()
	}
	switch opB {
	case Trans:
		bm = b.T()
	case ConjTrans:
		bm = b.H()
	}
	gemmStripe(alpha, am, bm, beta, c, 0, c.Rows)
}

// runBlocked drives gemmBlocked through the same degenerate-shape entry
// logic as GEMM, bypassing the stripe shortcut so small problems exercise
// the packed kernel too.
func runBlocked(alpha complex128, a *Matrix, opA Op, b *Matrix, opB Op, beta complex128, c *Matrix) {
	m, n := c.Rows, c.Cols
	var k int
	if opA == NoTrans {
		k = a.Cols
	} else {
		k = a.Rows
	}
	if m == 0 || n == 0 {
		return
	}
	if k == 0 {
		scaleInPlace(c, beta)
		return
	}
	pb := packPool.Get().(*packBuf)
	gemmBlocked(alpha, a, opA, b, opB, beta, c, pb, 0, m)
	packPool.Put(pb)
}

func bitwiseEqual(x, y complex128) bool {
	return math.Float64bits(real(x)) == math.Float64bits(real(y)) &&
		math.Float64bits(imag(x)) == math.Float64bits(imag(y))
}

func checkBitwise(t *testing.T, ctx string, got, want *Matrix) {
	t.Helper()
	for i := range want.Data {
		if !bitwiseEqual(got.Data[i], want.Data[i]) {
			t.Fatalf("%s: element %d differs bitwise: got %v want %v",
				ctx, i, got.Data[i], want.Data[i])
		}
	}
}

var (
	allOps     = []Op{NoTrans, Trans, ConjTrans}
	alphaCases = []complex128{0, 1, complex(1.3, -0.7)}
	betaCases  = []complex128{0, 1, complex(0.5, 2)}
)

// makeOperands builds a, b, c for one (m, n, k, opA, opB) case, with the
// stored orientation of a and b matching the op.
func makeOperands(rng *rand.Rand, m, n, k int, opA, opB Op) (a, b, c *Matrix) {
	if opA == NoTrans {
		a = randMat(rng, m, k)
	} else {
		a = randMat(rng, k, m)
	}
	if opB == NoTrans {
		b = randMat(rng, k, n)
	} else {
		b = randMat(rng, n, k)
	}
	c = randMat(rng, m, n)
	return
}

// TestGEMMBlockedBitwiseEdgeShapes sweeps m, n, k through the register- and
// cache-tile boundaries (0, 1, tile−1, tile, tile+1 for MR=2, NR=8, KC=128,
// MC=128) and pins the blocked kernel bitwise against the stripe reference.
// Op and alpha/beta combinations rotate deterministically with the shape so
// every pairing appears across the sweep without a full cross product.
func TestGEMMBlockedBitwiseEdgeShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ms := []int{0, 1, gemmMR - 1, gemmMR, gemmMR + 1, gemmMC - 1, gemmMC, gemmMC + 1}
	ns := []int{0, 1, gemmNR - 1, gemmNR, gemmNR + 1, 31}
	ks := []int{0, 1, gemmKC - 1, gemmKC, gemmKC + 1}
	idx := 0
	for _, m := range ms {
		for _, n := range ns {
			for _, k := range ks {
				opA := allOps[idx%3]
				opB := allOps[(idx/3)%3]
				alpha := alphaCases[(idx/9)%3]
				beta := betaCases[(idx/27)%3]
				idx++
				a, b, c := makeOperands(rng, m, n, k, opA, opB)
				want := c.Clone()
				referenceGEMM(alpha, a, opA, b, opB, beta, want)
				runBlocked(alpha, a, opA, b, opB, beta, c)
				ctx := "m=" + itoa(m) + " n=" + itoa(n) + " k=" + itoa(k) +
					" op=" + opA.String() + opB.String()
				checkBitwise(t, ctx, c, want)
			}
		}
	}
	// NC-boundary cases (column blocking at 256) at a k that spans two
	// KC panels, so the not-first accumulate path runs at the NC edge too.
	for i, n := range []int{gemmNC - 1, gemmNC, gemmNC + 1} {
		a, b, c := makeOperands(rng, 64, n, gemmKC+2, allOps[i], allOps[2-i])
		want := c.Clone()
		referenceGEMM(1, a, allOps[i], b, allOps[2-i], complex(0.5, 2), want)
		runBlocked(1, a, allOps[i], b, allOps[2-i], complex(0.5, 2), c)
		checkBitwise(t, "nc-edge n="+itoa(n), c, want)
	}
}

// TestGEMMBlockedBitwiseFullCross runs every (opA, opB, alpha, beta)
// combination at one fixed shape crossing the MR and NR remainders.
func TestGEMMBlockedBitwiseFullCross(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const m, n, k = 37, 29, 33
	for _, opA := range allOps {
		for _, opB := range allOps {
			for _, alpha := range alphaCases {
				for _, beta := range betaCases {
					a, b, c := makeOperands(rng, m, n, k, opA, opB)
					want := c.Clone()
					referenceGEMM(alpha, a, opA, b, opB, beta, want)
					runBlocked(alpha, a, opA, b, opB, beta, c)
					ctx := "op=" + opA.String() + opB.String()
					checkBitwise(t, ctx, c, want)
				}
			}
		}
	}
}

// TestGEMMBlockedBitwiseFuzz throws random shapes and coefficients at the
// blocked kernel, through the public GEMM entry (so dispatch routing is
// covered) and through Workspace.GEMM (pack buffers from the workspace).
func TestGEMMBlockedBitwiseFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ws := NewWorkspace()
	for iter := 0; iter < 200; iter++ {
		m := rng.Intn(150)
		n := rng.Intn(150)
		k := rng.Intn(150)
		opA := allOps[rng.Intn(3)]
		opB := allOps[rng.Intn(3)]
		alpha := alphaCases[rng.Intn(3)]
		beta := betaCases[rng.Intn(3)]
		a, b, c := makeOperands(rng, m, n, k, opA, opB)
		want := c.Clone()
		referenceGEMM(alpha, a, opA, b, opB, beta, want)
		if iter%2 == 0 {
			GEMM(alpha, a, opA, b, opB, beta, c)
		} else {
			ws.GEMM(alpha, a, opA, b, opB, beta, c)
		}
		ctx := "iter=" + itoa(iter)
		checkBitwise(t, ctx, c, want)
	}
}

// TestGEMMParallelBitwise forces the row-partitioned parallel path by
// inflating the worker budget beyond GOMAXPROCS and checks the partitioned
// result stays bitwise identical to the serial reference — every C element
// still sees its full k sweep on one worker.
func TestGEMMParallelBitwise(t *testing.T) {
	old := SetWorkerBudget(8)
	defer SetWorkerBudget(old)
	rng := rand.New(rand.NewSource(11))
	for _, dim := range []int{64, 65, 130} {
		a := randMat(rng, dim, dim)
		b := randMat(rng, dim, dim)
		c := randMat(rng, dim, dim)
		want := c.Clone()
		referenceGEMM(complex(1.1, 0.2), a, NoTrans, b, ConjTrans, complex(0.3, -1), want)
		GEMM(complex(1.1, 0.2), a, NoTrans, b, ConjTrans, complex(0.3, -1), c)
		checkBitwise(t, "parallel dim="+itoa(dim), c, want)
	}
}

// TestMicroKernelMatchesGo pins the dispatched micro-kernel (AVX2 assembly
// on capable amd64 hosts) bitwise against the portable Go tile, including
// pre-seeded accumulators and single-step panels.
func TestMicroKernelMatchesGo(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, kc := range []int{1, 2, 3, 7, gemmKC} {
		ap := make([]complex128, gemmMR*kc)
		bp := make([]complex128, gemmNR*kc)
		for i := range ap {
			ap[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		for i := range bp {
			bp[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		var seed [gemmMR * gemmNR]complex128
		for i := range seed {
			seed[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		got, want := seed, seed
		microKernel(kc, ap, bp, &got)
		microKernelGo(kc, ap, bp, &want)
		for i := range want {
			if !bitwiseEqual(got[i], want[i]) {
				t.Fatalf("kc=%d acc[%d]: asm %v != go %v", kc, i, got[i], want[i])
			}
		}
	}
}

// TestVecHelpersMatchGo pins the dispatched vecSubMul/vecScale (AVX2 with a
// scalar tail on odd lengths) bitwise against the portable loops.
func TestVecHelpersMatchGo(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{0, 1, 2, 3, 8, 17, 64, 129} {
		src := make([]complex128, n)
		d1 := make([]complex128, n)
		d2 := make([]complex128, n)
		for i := range src {
			src[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			d1[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			d2[i] = d1[i]
		}
		l := complex(rng.NormFloat64(), rng.NormFloat64())
		vecSubMul(d1, src, l)
		vecSubMulGo(d2, src, l)
		for i := range d1 {
			if !bitwiseEqual(d1[i], d2[i]) {
				t.Fatalf("vecSubMul n=%d elem %d: %v != %v", n, i, d1[i], d2[i])
			}
		}
		s := complex(rng.NormFloat64(), rng.NormFloat64())
		vecScale(d1, s)
		vecScaleGo(d2, s)
		for i := range d1 {
			if !bitwiseEqual(d1[i], d2[i]) {
				t.Fatalf("vecScale n=%d elem %d: %v != %v", n, i, d1[i], d2[i])
			}
		}
	}
}

func expectPanic(t *testing.T, ctx string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic, got none", ctx)
		}
	}()
	f()
}

// TestGEMMAliasingPanics is the regression test for the aliasing guard: the
// blocked kernel stores partial sums into C mid-sweep, so an output that
// overlaps an operand would silently corrupt the result. Both entries must
// reject it loudly instead.
func TestGEMMAliasingPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := randMat(rng, 16, 16)
	b := randMat(rng, 16, 16)
	ws := NewWorkspace()

	expectPanic(t, "c==a", func() { GEMM(1, a, NoTrans, b, NoTrans, 0, a) })
	expectPanic(t, "c==b", func() { GEMM(1, a, NoTrans, b, NoTrans, 0, b) })
	expectPanic(t, "ws c==a", func() { ws.GEMM(1, a, NoTrans, b, NoTrans, 0, a) })
	expectPanic(t, "ws c==b", func() { ws.GEMM(1, a, NoTrans, b, NoTrans, 0, b) })

	// Partial overlap through a shared backing array.
	backing := make([]complex128, 3*16*16)
	for i := range backing {
		backing[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	a2 := &Matrix{Rows: 16, Cols: 16, Data: backing[:16*16]}
	c2 := &Matrix{Rows: 16, Cols: 16, Data: backing[8*16 : 8*16+16*16]} // overlaps a2's tail
	expectPanic(t, "partial overlap", func() { GEMM(1, a2, NoTrans, b, NoTrans, 0, c2) })

	// Disjoint views of the same backing array must pass.
	a3 := &Matrix{Rows: 16, Cols: 16, Data: backing[:16*16]}
	c3 := &Matrix{Rows: 16, Cols: 16, Data: backing[2*16*16 : 3*16*16]}
	GEMM(1, a3, NoTrans, b, NoTrans, 0, c3)
}

// TestWorkerBudgetAccounting exercises the token pool directly: reservation
// never blocks, release is idempotent, acquisition always leaves the
// caller's token behind, and SetWorkerBudget carries reservations across.
func TestWorkerBudgetAccounting(t *testing.T) {
	old := SetWorkerBudget(4)
	defer SetWorkerBudget(old)

	if got := WorkerBudget(); got != 4 {
		t.Fatalf("WorkerBudget = %d, want 4", got)
	}
	// 4 free: an unreserved caller may add up to 3 helpers.
	if got := tryAcquireWorkers(10); got != 3 {
		t.Fatalf("acquire with 4 free = %d, want 3", got)
	}
	releaseWorkers(3)
	if got := tryAcquireWorkers(2); got != 2 {
		t.Fatalf("acquire capped at max = %d, want 2", got)
	}
	releaseWorkers(2)

	// Saturate with outer-pool reservations: 3 reserved leaves 1 free,
	// which belongs to the calling goroutine — no helpers available.
	r1 := ReserveWorker()
	r2 := ReserveWorker()
	r3 := ReserveWorker()
	if got := tryAcquireWorkers(10); got != 0 {
		t.Fatalf("acquire under saturation = %d, want 0", got)
	}
	r3()
	r3() // idempotent: must not double-release
	if got := tryAcquireWorkers(10); got != 1 {
		t.Fatalf("acquire with 2 free = %d, want 1", got)
	}
	releaseWorkers(1)

	// Budget change with reservations outstanding: delta carries over.
	SetWorkerBudget(8)
	if got := tryAcquireWorkers(10); got != 5 { // 8 total − 2 reserved − 1 for caller
		t.Fatalf("acquire after budget raise = %d, want 5", got)
	}
	releaseWorkers(5)
	r1()
	r2()
	if free := budgetFree.Load(); free != 8 {
		t.Fatalf("free after all releases = %d, want 8", free)
	}
}

// TestGEMMSerialUnderSaturatedPool pins the composition contract: a GEMM
// large enough to want helpers, invoked while outer-pool reservations hold
// every token, must not take any (it runs serially on its caller) — and
// must still be bitwise correct.
func TestGEMMSerialUnderSaturatedPool(t *testing.T) {
	old := SetWorkerBudget(4)
	defer SetWorkerBudget(old)
	releases := []func(){ReserveWorker(), ReserveWorker(), ReserveWorker(), ReserveWorker()}
	defer func() {
		for _, r := range releases {
			r()
		}
	}()

	rng := rand.New(rand.NewSource(15))
	dim := 80 // 80³ > parallelThreshold: would fan out if tokens were free
	a := randMat(rng, dim, dim)
	b := randMat(rng, dim, dim)
	c := randMat(rng, dim, dim)
	want := c.Clone()
	referenceGEMM(1, a, NoTrans, b, NoTrans, 1, want)

	before := budgetFree.Load()
	GEMM(1, a, NoTrans, b, NoTrans, 1, c)
	after := budgetFree.Load()
	if before != 0 || after != 0 {
		t.Fatalf("budget leaked across saturated GEMM: free %d -> %d, want 0 -> 0", before, after)
	}
	checkBitwise(t, "saturated", c, want)
}
