package linalg

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return m
}

func TestNewZeroInitialized(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("got %dx%d", m.Rows, m.Cols)
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("element %d not zero: %v", i, v)
		}
	}
}

func TestEye(t *testing.T) {
	m := Eye(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := complex128(0)
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Fatalf("Eye(4)[%d,%d] = %v", i, j, m.At(i, j))
			}
		}
	}
}

func TestAtSetRow(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 5+2i)
	if m.At(1, 2) != 5+2i {
		t.Fatalf("At/Set mismatch")
	}
	if m.Row(1)[2] != 5+2i {
		t.Fatalf("Row view mismatch")
	}
	m.Row(0)[0] = 7
	if m.At(0, 0) != 7 {
		t.Fatalf("Row is not a live view")
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(rng, 3, 3)
	b := a.Clone()
	b.Set(0, 0, 99)
	if a.At(0, 0) == 99 {
		t.Fatal("Clone aliases original")
	}
}

func TestTransposeAndHermitian(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomMatrix(rng, 3, 5)
	at := a.T()
	ah := a.H()
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if at.At(j, i) != a.At(i, j) {
				t.Fatal("transpose mismatch")
			}
			if ah.At(j, i) != cmplx.Conj(a.At(i, j)) {
				t.Fatal("Hermitian conjugate mismatch")
			}
		}
	}
}

func TestDoubleHermitianIsIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(6)
		c := 1 + rng.Intn(6)
		a := randomMatrix(rng, r, c)
		return EqualApprox(a.H().H(), a, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTraceLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		a := randomMatrix(rng, n, n)
		b := randomMatrix(rng, n, n)
		s := Add(New(n, n), a, b)
		return cmplx.Abs(s.Trace()-(a.Trace()+b.Trace())) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddSubScaleAXPY(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomMatrix(rng, 4, 4)
	b := randomMatrix(rng, 4, 4)
	sum := Add(New(4, 4), a, b)
	diff := Sub(New(4, 4), sum, b)
	if !EqualApprox(diff, a, 1e-14) {
		t.Fatal("Add then Sub does not round-trip")
	}
	sc := Scale(New(4, 4), 2, a)
	back := Scale(New(4, 4), 0.5, sc)
	if !EqualApprox(back, a, 1e-14) {
		t.Fatal("Scale does not round-trip")
	}
	ax := a.Clone()
	AXPY(ax, -1, a)
	if ax.FrobNorm() > 1e-14 {
		t.Fatal("AXPY(-1, a) should zero out a")
	}
}

func TestMatMulAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {5, 5, 5}, {7, 3, 9}, {16, 16, 16}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := randomMatrix(rng, m, k)
		b := randomMatrix(rng, k, n)
		got := Mul(a, b)
		want := New(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var s complex128
				for p := 0; p < k; p++ {
					s += a.At(i, p) * b.At(p, j)
				}
				want.Set(i, j, s)
			}
		}
		if MaxDiff(got, want) > 1e-12 {
			t.Fatalf("MatMul %v mismatch: %g", dims, MaxDiff(got, want))
		}
	}
}

func TestMatMulOps(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomMatrix(rng, 4, 6)
	b := randomMatrix(rng, 4, 6)
	// op(A)=Aᵀ (6x4), op(B)=B (4x6): valid.
	tn := MatMul(a, Trans, b, NoTrans)
	want := Mul(a.T(), b)
	if MaxDiff(tn, want) > 1e-12 {
		t.Fatal("TN mismatch")
	}
	nt := MatMul(a, NoTrans, b, Trans)
	want = Mul(a, b.T())
	if MaxDiff(nt, want) > 1e-12 {
		t.Fatal("NT mismatch")
	}
	cc := MatMul(a, ConjTrans, b, NoTrans)
	want = Mul(a.H(), b)
	if MaxDiff(cc, want) > 1e-12 {
		t.Fatal("CN mismatch")
	}
}

func TestGEMMAlphaBeta(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randomMatrix(rng, 3, 3)
	b := randomMatrix(rng, 3, 3)
	c := randomMatrix(rng, 3, 3)
	c0 := c.Clone()
	GEMM(2, a, NoTrans, b, NoTrans, 3, c)
	want := Add(New(3, 3), Scale(New(3, 3), 2, Mul(a, b)), Scale(New(3, 3), 3, c0))
	if MaxDiff(c, want) > 1e-12 {
		t.Fatal("GEMM alpha/beta mismatch")
	}
}

func TestGEMMParallelLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 70 // above the parallel threshold for n^3 work
	a := randomMatrix(rng, n, n)
	b := randomMatrix(rng, n, n)
	got := Mul(a, b)
	// Spot-check a handful of entries against the naive sum.
	for _, idx := range [][2]int{{0, 0}, {n - 1, n - 1}, {3, 61}, {40, 7}} {
		var s complex128
		for p := 0; p < n; p++ {
			s += a.At(idx[0], p) * b.At(p, idx[1])
		}
		if cmplx.Abs(got.At(idx[0], idx[1])-s) > 1e-9 {
			t.Fatalf("parallel GEMM wrong at %v", idx)
		}
	}
}

func TestMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		a := randomMatrix(rng, n, n)
		b := randomMatrix(rng, n, n)
		c := randomMatrix(rng, n, n)
		left := Mul(Mul(a, b), c)
		right := Mul(a, Mul(b, c))
		return MaxDiff(left, right) < 1e-10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProductHermitianConjugateProperty(t *testing.T) {
	// (AB)ᴴ = Bᴴ Aᴴ
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		a := randomMatrix(rng, n, n)
		b := randomMatrix(rng, n, n)
		return MaxDiff(Mul(a, b).H(), Mul(b.H(), a.H())) < 1e-11
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMul3Associativity(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randomMatrix(rng, 2, 8)
	b := randomMatrix(rng, 8, 3)
	c := randomMatrix(rng, 3, 5)
	got := Mul3(a, b, c)
	want := Mul(Mul(a, b), c)
	if MaxDiff(got, want) > 1e-11 {
		t.Fatal("Mul3 mismatch")
	}
}

func TestHermitize(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomMatrix(rng, 5, 5)
	h := Hermitize(New(5, 5), a)
	if !EqualApprox(h, h.H(), 1e-14) {
		t.Fatal("Hermitize result not Hermitian")
	}
	// Hermitize of a Hermitian matrix is the identity operation.
	h2 := Hermitize(New(5, 5), h)
	if !EqualApprox(h2, h, 1e-14) {
		t.Fatal("Hermitize not idempotent")
	}
}

func TestAntiHermitianPart(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randomMatrix(rng, 4, 4)
	anti := AntiHermitianPart(a)
	sum := Add(New(4, 4), anti, anti.H())
	if sum.FrobNorm() > 1e-13 {
		t.Fatal("anti-Hermitian part is not anti-Hermitian")
	}
	herm := Hermitize(New(4, 4), a)
	recon := Add(New(4, 4), herm, anti)
	if !EqualApprox(recon, a, 1e-13) {
		t.Fatal("Hermitian + anti-Hermitian parts do not reconstruct the matrix")
	}
}

func TestFrobNormAndMaxAbs(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 0, 3)
	m.Set(1, 1, 4i)
	if math.Abs(m.FrobNorm()-5) > 1e-14 {
		t.Fatalf("FrobNorm = %g, want 5", m.FrobNorm())
	}
	if math.Abs(m.MaxAbs()-4) > 1e-14 {
		t.Fatalf("MaxAbs = %g, want 4", m.MaxAbs())
	}
}

func TestFlopCounting(t *testing.T) {
	EnableFlopCounting(true)
	defer EnableFlopCounting(false)
	ResetFlops()
	a := Eye(10)
	b := Eye(10)
	Mul(a, b)
	if got := Flops(); got != 8*10*10*10 {
		t.Fatalf("Flops = %d, want %d", got, 8*1000)
	}
	ResetFlops()
	if Flops() != 0 {
		t.Fatal("ResetFlops did not clear")
	}
}

func TestShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	Mul(New(2, 3), New(2, 3))
}

func TestLUSolveIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 5, 10, 33} {
		a := randomMatrix(rng, n, n)
		// Diagonal dominance guarantees nonsingularity.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+complex(float64(n), 0))
		}
		inv := MustInverse(a)
		prod := Mul(a, inv)
		if MaxDiff(prod, Eye(n)) > 1e-9 {
			t.Fatalf("n=%d: A·A⁻¹ differs from I by %g", n, MaxDiff(prod, Eye(n)))
		}
	}
}

func TestLUSolveMultipleRHS(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := 8
	a := randomMatrix(rng, n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+10)
	}
	x := randomMatrix(rng, n, 3)
	b := Mul(a, x)
	got, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if MaxDiff(got, x) > 1e-10 {
		t.Fatalf("Solve mismatch: %g", MaxDiff(got, x))
	}
}

func TestLUSingular(t *testing.T) {
	a := New(3, 3) // all zeros
	if _, err := Factorize(a); err != ErrSingular {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
	// Rank-deficient.
	b := New(2, 2)
	b.Set(0, 0, 1)
	b.Set(0, 1, 2)
	b.Set(1, 0, 2)
	b.Set(1, 1, 4)
	if _, err := Factorize(b); err != ErrSingular {
		t.Fatalf("expected ErrSingular for rank-1 matrix, got %v", err)
	}
}

func TestLUDeterminant(t *testing.T) {
	a := New(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 3)
	a.Set(1, 1, 4)
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(f.Det()-(-2)) > 1e-12 {
		t.Fatalf("Det = %v, want -2", f.Det())
	}
}

func TestInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := randomMatrix(rng, n, n)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+complex(5+float64(n), 0))
		}
		inv, err := Inverse(a)
		if err != nil {
			return false
		}
		return MaxDiff(Mul(inv, a), Eye(n)) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveConsistentWithInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 6
	a := randomMatrix(rng, n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+8)
	}
	b := randomMatrix(rng, n, n)
	x1, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	x2 := Mul(MustInverse(a), b)
	if MaxDiff(x1, x2) > 1e-9 {
		t.Fatal("Solve and Inverse-multiply disagree")
	}
}
