package linalg

import (
	"math/cmplx"
	"sync"
)

// Panel packing for the blocked GEMM kernel. op(A) and op(B) are copied
// into contiguous micro-panel layouts once per cache block, so the micro-
// kernel streams both operands with unit stride regardless of the operand
// orientation — Trans/ConjTrans cost a strided read during packing instead
// of a materialized transpose (the pre-blocked GEMM allocated b.T()/b.H()
// per call). alpha is folded into the packed A panel, which reproduces the
// reference kernel's av = alpha·a[i][k] products bit for bit.
//
// Layouts (complex128 elements):
//
//	A panel: micro-panels of gemmMR rows, k-major within a panel:
//	         ap[it·kc + k·MR + r] = alpha·op(A)[i0+it+r][p0+k]
//	B panel: micro-panels of gemmNR columns, k-major within a panel:
//	         bp[jt·kc + k·NR + s] = op(B)[p0+k][j0+jt+s]
//
// Rows/columns past the block edge are zero-padded: the padded lanes feed
// accumulators that are never stored, so padding wastes a few flops on
// edge tiles but cannot change any stored bit.

// packBuf holds the packed panels of one GEMM invocation. Buffers grow to
// the high-water block size and are reused via packPool (allocating
// callers) or a Workspace (hot solver paths).
type packBuf struct {
	a, b []complex128
}

var packPool = sync.Pool{New: func() any { return new(packBuf) }}

func (pb *packBuf) ensure(aLen, bLen int) {
	if cap(pb.a) < aLen {
		pb.a = make([]complex128, aLen)
	}
	pb.a = pb.a[:cap(pb.a)]
	if cap(pb.b) < bLen {
		pb.b = make([]complex128, bLen)
	}
	pb.b = pb.b[:cap(pb.b)]
}

// packA packs alpha·op(A)[i0:i0+mc, p0:p0+kc] into ap micro-panels.
func packA(ap []complex128, alpha complex128, a *Matrix, opA Op, i0, mc, p0, kc int) {
	for it := 0; it < mc; it += gemmMR {
		dst := ap[it*kc:]
		rows := mc - it
		if rows > gemmMR {
			rows = gemmMR
		}
		switch opA {
		case NoTrans:
			for r := 0; r < rows; r++ {
				row := a.Data[(i0+it+r)*a.Cols+p0:]
				for k := 0; k < kc; k++ {
					dst[k*gemmMR+r] = alpha * row[k]
				}
			}
		case Trans:
			for k := 0; k < kc; k++ {
				row := a.Data[(p0+k)*a.Cols+i0+it:]
				for r := 0; r < rows; r++ {
					dst[k*gemmMR+r] = alpha * row[r]
				}
			}
		case ConjTrans:
			for k := 0; k < kc; k++ {
				row := a.Data[(p0+k)*a.Cols+i0+it:]
				for r := 0; r < rows; r++ {
					dst[k*gemmMR+r] = alpha * cmplx.Conj(row[r])
				}
			}
		}
		// Zero-pad the missing rows of an edge micro-panel.
		for r := rows; r < gemmMR; r++ {
			for k := 0; k < kc; k++ {
				dst[k*gemmMR+r] = 0
			}
		}
	}
}

// packB packs op(B)[p0:p0+kc, j0:j0+nc] into bp micro-panels.
func packB(bp []complex128, b *Matrix, opB Op, p0, kc, j0, nc int) {
	for jt := 0; jt < nc; jt += gemmNR {
		dst := bp[jt*kc:]
		cols := nc - jt
		if cols > gemmNR {
			cols = gemmNR
		}
		switch opB {
		case NoTrans:
			for k := 0; k < kc; k++ {
				row := b.Data[(p0+k)*b.Cols+j0+jt:]
				for s := 0; s < cols; s++ {
					dst[k*gemmNR+s] = row[s]
				}
			}
		case Trans:
			for s := 0; s < cols; s++ {
				row := b.Data[(j0+jt+s)*b.Cols+p0:]
				for k := 0; k < kc; k++ {
					dst[k*gemmNR+s] = row[k]
				}
			}
		case ConjTrans:
			for s := 0; s < cols; s++ {
				row := b.Data[(j0+jt+s)*b.Cols+p0:]
				for k := 0; k < kc; k++ {
					dst[k*gemmNR+s] = cmplx.Conj(row[k])
				}
			}
		}
		for s := cols; s < gemmNR; s++ {
			for k := 0; k < kc; k++ {
				dst[k*gemmNR+s] = 0
			}
		}
	}
}
