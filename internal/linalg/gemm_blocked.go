package linalg

// Cache-blocked, packed GEMM. The driver follows the classic three-level
// blocking (Goto/BLIS): NC-wide column blocks of C, KC-deep k-panels
// (packed op(B)), MC-tall row blocks (packed alpha·op(A)), and a
// gemmMR×gemmNR register tile on the packed panels, computed by the AVX2
// assembly micro-kernel on amd64 and by microKernelGo elsewhere.
//
// Bit-identity contract: for every C element the contributions
// (alpha·op(A)[i][k])·op(B)[k][j] are accumulated in ascending k with a
// single accumulator, beta applied exactly once up front, and each
// complex multiply-add rounded exactly as Go's scalar lowering (no FMA
// anywhere) — the same order and association as the retained gemmStripe
// reference, so the blocked kernel (serial or row-partitioned across
// workers) produces bitwise-identical results. The property suite in
// gemm_blocked_test.go pins this across all Op combinations and edge
// shapes.
//
// The MC/KC/NC constants below are compile-time defaults; the effective
// sizes come from Blocking() (see blocking.go) so the plan autotuner can
// retune the cache footprint at runtime without touching results.
const (
	// gemmMR×gemmNR is the register tile: 2×8 complex128 = 8 ymm
	// accumulators, which together with 4 broadcast registers and 4
	// temporaries exactly fills the 16 ymm registers of AVX2.
	gemmMR = 2
	gemmNR = 8
	// gemmKC sizes a packed op(B) micro-panel (gemmNR·gemmKC complex128 =
	// 16 KiB) to half the L1 while it is swept by a whole MC row block.
	gemmKC = 128
	// gemmMC bounds the packed alpha·op(A) block (gemmMC·gemmKC = 256 KiB)
	// to the L2 working set.
	gemmMC = 128
	// gemmNC bounds the packed op(B) panel (gemmKC·gemmNC = 512 KiB).
	gemmNC = 256
	// packThreshold is the m·n·k operation count below which a NoTrans
	// problem runs on the unpacked gemmStripe reference instead. Measured
	// crossover on AVX2 is between 4³ and 8³ — packing amortizes almost
	// immediately; transposed operands always pack, which replaces the
	// old per-call .T()/.H() materialization.
	packThreshold = 512
)

// gemmBlocked computes rows [lo, hi) of C = alpha·op(A)·op(B) + beta·C
// through packed panels from pb.
func gemmBlocked(alpha complex128, a *Matrix, opA Op, b *Matrix, opB Op, beta complex128, c *Matrix, pb *packBuf, lo, hi int) {
	n := c.Cols
	var kk int
	if opA == NoTrans {
		kk = a.Cols
	} else {
		kk = a.Rows
	}
	ldc := c.Cols
	bs := Blocking()
	pb.ensure((bs.MC+gemmMR)*bs.KC, (bs.NC+gemmNR)*bs.KC)
	for jc := 0; jc < n; jc += bs.NC {
		nc := min2(bs.NC, n-jc)
		for pc := 0; pc < kk; pc += bs.KC {
			kc := min2(bs.KC, kk-pc)
			first := pc == 0
			packB(pb.b, b, opB, pc, kc, jc, nc)
			for ic := lo; ic < hi; ic += bs.MC {
				mc := min2(bs.MC, hi-ic)
				packA(pb.a, alpha, a, opA, ic, mc, pc, kc)
				for jt := 0; jt < nc; jt += gemmNR {
					bp := pb.b[jt*kc:]
					nr := min2(gemmNR, nc-jt)
					for it := 0; it < mc; it += gemmMR {
						mr := min2(gemmMR, mc-it)
						cc := c.Data[(ic+it)*ldc+jc+jt:]
						var acc [gemmMR * gemmNR]complex128
						loadAcc(&acc, cc, ldc, mr, nr, beta, first)
						microKernel(kc, pb.a[it*kc:], bp, &acc)
						storeAcc(cc, ldc, mr, nr, &acc)
					}
				}
			}
		}
	}
}

// loadAcc seeds the register-tile accumulators: beta·C on the first
// k-panel (never reading C when beta == 0 — workspace buffers hand out
// uninitialized memory), C itself on subsequent panels. Lanes past the
// mr×nr edge stay zero; their products are discarded by storeAcc.
func loadAcc(acc *[gemmMR * gemmNR]complex128, cc []complex128, ldc, mr, nr int, beta complex128, first bool) {
	if first {
		if beta == 0 {
			return // acc is already zero
		}
		for r := 0; r < mr; r++ {
			crow := cc[r*ldc:]
			if beta == 1 {
				for s := 0; s < nr; s++ {
					acc[r*gemmNR+s] = crow[s]
				}
			} else {
				for s := 0; s < nr; s++ {
					acc[r*gemmNR+s] = beta * crow[s]
				}
			}
		}
		return
	}
	for r := 0; r < mr; r++ {
		crow := cc[r*ldc:]
		for s := 0; s < nr; s++ {
			acc[r*gemmNR+s] = crow[s]
		}
	}
}

// storeAcc writes the valid mr×nr lanes of the tile back to C.
func storeAcc(cc []complex128, ldc, mr, nr int, acc *[gemmMR * gemmNR]complex128) {
	for r := 0; r < mr; r++ {
		crow := cc[r*ldc:]
		for s := 0; s < nr; s++ {
			crow[s] = acc[r*gemmNR+s]
		}
	}
}

// microKernelGo is the portable register tile: acc[r][s] accumulates
// sum_k ap[k·MR+r]·bp[k·NR+s] in ascending k, one accumulator per
// element — the same ordering as the assembly kernel and gemmStripe.
func microKernelGo(kc int, ap, bp []complex128, acc *[gemmMR * gemmNR]complex128) {
	ap = ap[: gemmMR*kc : gemmMR*kc]
	bp = bp[: gemmNR*kc : gemmNR*kc]
	for k := 0; k < kc; k++ {
		a0 := ap[gemmMR*k]
		a1 := ap[gemmMR*k+1]
		bk := bp[gemmNR*k : gemmNR*k+gemmNR]
		for s, bv := range bk {
			acc[s] += a0 * bv
			acc[gemmNR+s] += a1 * bv
		}
	}
}

// vecSubMulGo is the portable dst[j] -= l*src[j].
func vecSubMulGo(dst, src []complex128, l complex128) {
	for j, sv := range src[:len(dst)] {
		dst[j] -= l * sv
	}
}

// vecScaleGo is the portable dst[j] *= s.
func vecScaleGo(dst []complex128, s complex128) {
	for j := range dst {
		dst[j] *= s
	}
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}
