//go:build !amd64

package linalg

// haveAVX2 gates the assembly micro-kernel; always false off amd64.
const haveAVX2 = false

// microKernel runs one packed 2×8 register tile (see gemm_blocked.go).
func microKernel(kc int, ap, bp []complex128, acc *[gemmMR * gemmNR]complex128) {
	microKernelGo(kc, ap, bp, acc)
}

// vecSubMul computes dst[j] -= l*src[j].
func vecSubMul(dst, src []complex128, l complex128) { vecSubMulGo(dst, src, l) }

// vecScale computes dst[j] *= s.
func vecScale(dst []complex128, s complex128) { vecScaleGo(dst, s) }
