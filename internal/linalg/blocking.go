package linalg

import (
	"fmt"
	"sync/atomic"
)

// BlockSizes are the cache-blocking parameters of the packed GEMM
// driver: MC-tall row blocks of packed alpha·op(A), KC-deep k-panels,
// and NC-wide column blocks of packed op(B). The register tile
// (gemmMR×gemmNR) is fixed by the micro-kernel's register budget and is
// not tunable.
//
// The blocked driver's bit-identity contract is independent of the
// blocking: every C element is accumulated in ascending k with a single
// accumulator regardless of how the loops are tiled, so changing these
// sizes changes cache behavior only, never results. That is what makes
// them safe to expose as a runtime knob for the plan autotuner.
type BlockSizes struct {
	MC int // rows of the packed A block (L2 working set)
	KC int // depth of a k-panel (L1 working set with the B micro-panel)
	NC int // columns of the packed B panel (L3 / mid-level working set)
}

// DefaultBlocking is the hand-tuned AVX2 blocking the constants in
// gemm_blocked.go document: 16 KiB B micro-panels, 256 KiB A blocks,
// 512 KiB B panels.
func DefaultBlocking() BlockSizes {
	return BlockSizes{MC: gemmMC, KC: gemmKC, NC: gemmNC}
}

var blocking atomic.Pointer[BlockSizes]

// Blocking returns the blocking currently in effect.
func Blocking() BlockSizes {
	if p := blocking.Load(); p != nil {
		return *p
	}
	return DefaultBlocking()
}

// SetBlocking installs bs process-wide for subsequent GEMM calls. Each
// gemmBlocked invocation reads the blocking once at entry, so a call
// racing with SetBlocking uses one coherent set of sizes; concurrent
// row-partitioned workers of the same GEMM may in principle observe
// different sizes, which is harmless under the bit-identity contract.
// The sizes must cover at least one register tile (MC ≥ 2, NC ≥ 8,
// KC ≥ 1); anything smaller is rejected.
func SetBlocking(bs BlockSizes) error {
	if bs.MC < gemmMR || bs.NC < gemmNR || bs.KC < 1 {
		return fmt.Errorf("linalg: blocking %+v below the %d×%d register tile", bs, gemmMR, gemmNR)
	}
	blocking.Store(&bs)
	return nil
}

// ResetBlocking restores the compiled-in default.
func ResetBlocking() { blocking.Store(nil) }
