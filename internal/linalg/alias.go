package linalg

import "unsafe"

// Aliasing guard for the GEMM entry points. The blocked kernel stores
// partial sums into C between k-panels while op(A)/op(B) are still being
// re-read for packing, so an output that overlaps an input silently
// corrupts the result (the pre-blocked kernel had the same hazard through
// its row-stripe writes — it just went undetected). The contract is
// therefore "no overlap, ever", enforced here with a cheap address-range
// check rather than a defensive copy: every legitimate caller in this
// code base already uses distinct buffers, so a hit is a bug worth a loud
// panic, not a slow path.

// overlaps reports whether the backing arrays of x and y share any
// elements. Empty slices never overlap anything.
func overlaps(x, y []complex128) bool {
	if len(x) == 0 || len(y) == 0 {
		return false
	}
	xlo := uintptr(unsafe.Pointer(&x[0]))
	xhi := xlo + uintptr(len(x))*unsafe.Sizeof(x[0])
	ylo := uintptr(unsafe.Pointer(&y[0]))
	yhi := ylo + uintptr(len(y))*unsafe.Sizeof(y[0])
	return xlo < yhi && ylo < xhi
}

// checkNoAlias panics if c's storage overlaps a's or b's.
func checkNoAlias(fn string, c, a, b *Matrix) {
	if overlaps(c.Data, a.Data) {
		panic("linalg: " + fn + " output aliases operand a")
	}
	if overlaps(c.Data, b.Data) {
		panic("linalg: " + fn + " output aliases operand b")
	}
}
