package linalg

import (
	"math/rand"
	"testing"
)

func randMat(rng *rand.Rand, r, c int) *Matrix {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return m
}

func TestWorkspaceGetPutReset(t *testing.T) {
	ws := NewWorkspace()
	a := ws.Get(3, 4)
	b := ws.Get(3, 4)
	if &a.Data[0] == &b.Data[0] {
		t.Fatal("two live checkouts share backing storage")
	}
	ws.Put(a)
	c := ws.Get(4, 3) // same area, different shape: must reuse a's buffer
	if &c.Data[0] != &a.Data[0] {
		t.Error("Put buffer not reused by the next same-area Get")
	}
	if c.Rows != 4 || c.Cols != 3 {
		t.Errorf("reused header not reshaped: %dx%d", c.Rows, c.Cols)
	}
	ws.Reset()
	seen := map[*complex128]bool{&a.Data[0]: true, &b.Data[0]: true}
	d, e := ws.Get(3, 4), ws.Get(3, 4)
	if !seen[&d.Data[0]] || !seen[&e.Data[0]] {
		t.Error("Reset did not recycle all previously checked-out buffers")
	}
	if &d.Data[0] == &e.Data[0] {
		t.Error("Reset handed the same buffer out twice")
	}
}

func TestWorkspaceGetZero(t *testing.T) {
	ws := NewWorkspace()
	m := ws.Get(2, 2)
	for i := range m.Data {
		m.Data[i] = 7
	}
	ws.Reset()
	z := ws.GetZero(2, 2)
	for i, v := range z.Data {
		if v != 0 {
			t.Fatalf("GetZero element %d = %v", i, v)
		}
	}
}

func TestHIntoTIntoMatchAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randMat(rng, 3, 5)
	if d := MaxDiff(HInto(New(5, 3), a), a.H()); d != 0 {
		t.Errorf("HInto differs from H() by %g", d)
	}
	if d := MaxDiff(TInto(New(5, 3), a), a.T()); d != 0 {
		t.Errorf("TInto differs from T() by %g", d)
	}
}

func TestWorkspaceGEMMMatchesGEMM(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ws := NewWorkspace()
	for _, ops := range [][2]Op{
		{NoTrans, Trans}, {NoTrans, ConjTrans},
		{Trans, NoTrans}, {ConjTrans, NoTrans},
		{ConjTrans, ConjTrans}, {Trans, ConjTrans},
	} {
		opA, opB := ops[0], ops[1]
		// Shape the stored operands so op(A) is 6×4 and op(B) is 4×5.
		a := randMat(rng, 6, 4)
		if opA != NoTrans {
			a = randMat(rng, 4, 6)
		}
		b := randMat(rng, 4, 5)
		if opB != NoTrans {
			b = randMat(rng, 5, 4)
		}
		want := New(6, 5)
		GEMM(2-1i, a, opA, b, opB, 0, want)
		got := ws.Get(6, 5)
		ws.GEMM(2-1i, a, opA, b, opB, 0, got)
		if d := MaxDiff(got, want); d != 0 {
			t.Errorf("ws.GEMM %v%v differs from GEMM by %g", opA, opB, d)
		}
		ws.Reset()
	}
}

func TestMul3IntoMatchesMul3(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ws := NewWorkspace()
	// Shapes forcing each association branch: (2×9)·(9×9)·(9×3) goes
	// right-first, (9×2)·(2×2)·(2×9) goes left-first.
	for _, dims := range [][4]int{{2, 9, 9, 3}, {9, 2, 2, 9}, {4, 4, 4, 4}} {
		a := randMat(rng, dims[0], dims[1])
		b := randMat(rng, dims[1], dims[2])
		c := randMat(rng, dims[2], dims[3])
		want := Mul3(a, b, c)
		got := ws.Get(dims[0], dims[3])
		ws.Mul3Into(got, a, b, c)
		if d := MaxDiff(got, want); d != 0 {
			t.Errorf("Mul3Into %v differs from Mul3 by %g", dims, d)
		}
		ws.Reset()
	}
}

func TestFactorizeIntoMatchesFactorize(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := NewLU(5)
	for trial := 0; trial < 3; trial++ {
		a := randMat(rng, 5, 5)
		want, err := Factorize(a)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.FactorizeInto(a); err != nil {
			t.Fatal(err)
		}
		if d := MaxDiff(f.lu, want.lu); d != 0 {
			t.Errorf("trial %d: packed factors differ by %g", trial, d)
		}
		for i := range f.pivot {
			if f.pivot[i] != want.pivot[i] {
				t.Errorf("trial %d: pivot %d differs", trial, i)
			}
		}
		if f.Det() != want.Det() {
			t.Errorf("trial %d: determinant %v != %v", trial, f.Det(), want.Det())
		}
		inv := New(5, 5)
		f.InverseInto(inv)
		ref, err := Inverse(a)
		if err != nil {
			t.Fatal(err)
		}
		if d := MaxDiff(inv, ref); d != 0 {
			t.Errorf("trial %d: InverseInto differs from Inverse by %g", trial, d)
		}
	}
}

func TestFactorizeIntoRejectsMismatch(t *testing.T) {
	f := NewLU(3)
	if err := f.FactorizeInto(New(4, 4)); err == nil {
		t.Error("expected dimension-mismatch error")
	}
	if err := f.FactorizeInto(New(3, 2)); err == nil {
		t.Error("expected non-square error")
	}
}

func TestFactorizeIntoSingular(t *testing.T) {
	f := NewLU(2)
	if err := f.FactorizeInto(New(2, 2)); err != ErrSingular {
		t.Errorf("got %v, want ErrSingular", err)
	}
	// The record must stay reusable after a failed factorization.
	a := New(2, 2)
	a.Set(0, 0, 2)
	a.Set(1, 1, 3)
	if err := f.FactorizeInto(a); err != nil {
		t.Fatal(err)
	}
	inv := New(2, 2)
	f.InverseInto(inv)
	if inv.At(0, 0) != 0.5 || inv.At(1, 1) != complex(1.0/3, 0) {
		t.Errorf("inverse after recovery wrong: %v", inv)
	}
}

func TestSetIdentity(t *testing.T) {
	m := New(3, 3)
	for i := range m.Data {
		m.Data[i] = 9
	}
	m.SetIdentity()
	if d := MaxDiff(m, Eye(3)); d != 0 {
		t.Errorf("SetIdentity differs from Eye by %g", d)
	}
}

// TestWorkspaceSteadyStateAllocFree pins the whole point of the pool: a
// warm workspace runs the checkout/compute/reset cycle without touching
// the heap.
func TestWorkspaceSteadyStateAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ws := NewWorkspace()
	a := randMat(rng, 6, 6)
	b := randMat(rng, 6, 6)
	c := randMat(rng, 6, 6)
	work := func() {
		ws.Reset()
		t1 := ws.Get(6, 6)
		ws.Mul3Into(t1, a, b, c)
		t2 := ws.Get(6, 6)
		ws.GEMM(1, t1, ConjTrans, a, NoTrans, 0, t2)
		f := ws.LUFor(6)
		if err := f.FactorizeInto(a); err != nil {
			t.Fatal(err)
		}
		f.InverseInto(t1)
	}
	work() // warm the pool
	if allocs := testing.AllocsPerRun(10, work); allocs > 0 {
		t.Errorf("steady-state workspace cycle allocates %.1f times per run", allocs)
	}
}
