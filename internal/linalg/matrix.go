// Package linalg provides dense complex linear algebra for the quantum
// transport solver: matrices of complex128 stored row-major, parallel
// blocked matrix multiplication, LU factorization with partial pivoting,
// linear solves and inversion, and the elementwise operations the NEGF
// pipeline needs (Hermitian conjugation, traces, norms, scaling).
//
// The package is self-contained (stdlib only) and plays the role that
// cuBLAS/MKL play in the original OMEN and DaCe OMEN codes. All entry
// points optionally account flops through a package counter so that the
// performance model in internal/model can be cross-checked against the
// kernels actually executed.
package linalg

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Matrix is a dense complex matrix stored in row-major order.
// The zero value is an empty matrix; use New to allocate.
type Matrix struct {
	Rows, Cols int
	Data       []complex128 // len == Rows*Cols, row-major
}

// New returns a zero-initialized r×c matrix.
func New(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: negative dimensions %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]complex128, r*c)}
}

// FromSlice wraps data (row-major, length r*c) in a Matrix without copying.
func FromSlice(r, c int, data []complex128) *Matrix {
	if len(data) != r*c {
		panic(fmt.Sprintf("linalg: FromSlice length %d != %d*%d", len(data), r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: data}
}

// Eye returns the n×n identity matrix.
func Eye(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (no copy).
func (m *Matrix) Row(i int) []complex128 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	n := New(m.Rows, m.Cols)
	copy(n.Data, m.Data)
	return n
}

// CopyFrom copies the contents of src into m. Panics on shape mismatch.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("linalg: CopyFrom shape mismatch %dx%d <- %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	copy(m.Data, src.Data)
}

// Zero sets every element of m to zero.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// IsSquare reports whether m has equal row and column counts.
func (m *Matrix) IsSquare() bool { return m.Rows == m.Cols }

// T returns a newly allocated transpose of m.
func (m *Matrix) T() *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// H returns a newly allocated Hermitian conjugate (conjugate transpose) of m.
func (m *Matrix) H() *Matrix {
	return HInto(New(m.Cols, m.Rows), m)
}

// TInto stores aᵀ into dst without allocating and returns dst.
// dst must not alias a.
func TInto(dst, a *Matrix) *Matrix {
	if dst.Rows != a.Cols || dst.Cols != a.Rows {
		panic(fmt.Sprintf("linalg: TInto shape mismatch %dx%d <- (%dx%d)ᵀ", dst.Rows, dst.Cols, a.Rows, a.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for j, v := range row {
			dst.Data[j*dst.Cols+i] = v
		}
	}
	return dst
}

// HInto stores aᴴ into dst without allocating and returns dst.
// dst must not alias a.
func HInto(dst, a *Matrix) *Matrix {
	if dst.Rows != a.Cols || dst.Cols != a.Rows {
		panic(fmt.Sprintf("linalg: HInto shape mismatch %dx%d <- (%dx%d)ᴴ", dst.Rows, dst.Cols, a.Rows, a.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for j, v := range row {
			dst.Data[j*dst.Cols+i] = cmplx.Conj(v)
		}
	}
	return dst
}

// SetIdentity overwrites square m with the identity matrix.
func (m *Matrix) SetIdentity() {
	if !m.IsSquare() {
		panic("linalg: SetIdentity of non-square matrix")
	}
	m.Zero()
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+i] = 1
	}
}

// Conj returns a newly allocated elementwise complex conjugate of m.
func (m *Matrix) Conj() *Matrix {
	c := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		c.Data[i] = cmplx.Conj(v)
	}
	return c
}

// Trace returns the sum of diagonal elements. Panics if m is not square.
func (m *Matrix) Trace() complex128 {
	if !m.IsSquare() {
		panic("linalg: Trace of non-square matrix")
	}
	var t complex128
	for i := 0; i < m.Rows; i++ {
		t += m.Data[i*m.Cols+i]
	}
	return t
}

// FrobNorm returns the Frobenius norm of m.
func (m *Matrix) FrobNorm() float64 {
	var s float64
	for _, v := range m.Data {
		re, im := real(v), imag(v)
		s += re*re + im*im
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest elementwise magnitude in m.
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := cmplx.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// EqualApprox reports whether a and b have the same shape and all elements
// agree within absolute tolerance tol.
func EqualApprox(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if cmplx.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// MaxDiff returns the largest elementwise |a-b|. Panics on shape mismatch.
func MaxDiff(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("linalg: MaxDiff shape mismatch")
	}
	var mx float64
	for i := range a.Data {
		if d := cmplx.Abs(a.Data[i] - b.Data[i]); d > mx {
			mx = d
		}
	}
	return mx
}

// Add stores a+b into dst (which may alias a or b) and returns dst.
func Add(dst, a, b *Matrix) *Matrix {
	checkSameShape("Add", a, b)
	checkSameShape("Add", dst, a)
	for i := range a.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
	return dst
}

// Sub stores a−b into dst (which may alias a or b) and returns dst.
func Sub(dst, a, b *Matrix) *Matrix {
	checkSameShape("Sub", a, b)
	checkSameShape("Sub", dst, a)
	for i := range a.Data {
		dst.Data[i] = a.Data[i] - b.Data[i]
	}
	return dst
}

// Scale stores s*a into dst (which may alias a) and returns dst.
func Scale(dst *Matrix, s complex128, a *Matrix) *Matrix {
	checkSameShape("Scale", dst, a)
	for i := range a.Data {
		dst.Data[i] = s * a.Data[i]
	}
	return dst
}

// AXPY performs dst += s*a and returns dst.
func AXPY(dst *Matrix, s complex128, a *Matrix) *Matrix {
	checkSameShape("AXPY", dst, a)
	for i := range a.Data {
		dst.Data[i] += s * a.Data[i]
	}
	return dst
}

// Hermitize stores (a + aᴴ)/2 into dst and returns dst. Used by tests and
// by the synthetic device builder to enforce Hermitian Hamiltonians.
func Hermitize(dst, a *Matrix) *Matrix {
	if !a.IsSquare() {
		panic("linalg: Hermitize of non-square matrix")
	}
	h := a.H()
	Add(dst, a, h)
	return Scale(dst, 0.5, dst)
}

// AntiHermitianPart returns (a − aᴴ)/2, the anti-Hermitian part of a.
// In NEGF the spectral content of Gᴿ and Σ≷ lives here.
func AntiHermitianPart(a *Matrix) *Matrix {
	h := a.H()
	d := New(a.Rows, a.Cols)
	Sub(d, a, h)
	return Scale(d, 0.5, d)
}

func checkSameShape(op string, a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// String renders small matrices for debugging.
func (m *Matrix) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
	}
	s := ""
	for i := 0; i < m.Rows; i++ {
		s += fmt.Sprintf("%v\n", m.Row(i))
	}
	return s
}
