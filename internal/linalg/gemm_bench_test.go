package linalg

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkGEMM sweeps the square sizes that occur in the solver: Norb-sized
// SSE blocks (12), RGF blocks (32–256). The Trans/ConjTrans cases pin the
// packed path's zero-allocation property (the old kernel materialized
// b.T()/b.H() per call).
func BenchmarkGEMM(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{12, 32, 64, 128, 192, 256} {
		am := randMat(rng, n, n)
		bm := randMat(rng, n, n)
		cm := New(n, n)
		for _, op := range []Op{NoTrans, Trans, ConjTrans} {
			b.Run(fmt.Sprintf("n=%d/opB=%s", n, op), func(b *testing.B) {
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					GEMM(1, am, NoTrans, bm, op, 0, cm)
				}
			})
		}
	}
}

// BenchmarkGEMMStripeRef measures the retained reference kernel for
// comparison with the blocked path.
func BenchmarkGEMMStripeRef(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{32, 64, 128, 256} {
		am := randMat(rng, n, n)
		bm := randMat(rng, n, n)
		cm := New(n, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gemmStripe(1, am, bm, 0, cm, 0, n)
			}
		})
	}
}
