//go:build amd64

#include "textflag.h"

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func microKernelAVX2(kc int, ap, bp, acc *complex128)
//
// acc[r*8+s] += sum_k ap[k*2+r] * bp[k*8+s]  (complex128, r<2, s<8)
//
// One complex multiply-accumulate is computed exactly as Go lowers
// z += a*b on amd64 — four independently rounded multiplies, one
// add/sub pair, one final add — so the result is bit-identical to the
// pure-Go kernels. Deliberately NO FMA: a fused multiply-add would
// round differently and break the gemmStripe bit-identity contract.
//
// Per b-vector (2 complex in a ymm): v1 = bcast(ar)*b, v2 = bcast(ai)*
// swap(b), then VADDSUBPD gives (ar*br - ai*bi, ar*bi + ai*br) and
// VADDPD folds it into the accumulator.
//
// Register plan (exactly 16 ymm):
//	Y0-Y3  row-0 accumulators (8 complex)
//	Y4-Y7  row-1 accumulators
//	Y8-Y11 broadcast ar0, ai0, ar1, ai1 for the current k
//	Y12    current b vector, Y13 its pair-swapped copy
//	Y14-Y15 products
TEXT ·microKernelAVX2(SB), NOSPLIT, $0-32
	MOVQ kc+0(FP), CX
	MOVQ ap+8(FP), SI
	MOVQ bp+16(FP), DI
	MOVQ acc+24(FP), DX

	VMOVUPD (DX), Y0
	VMOVUPD 32(DX), Y1
	VMOVUPD 64(DX), Y2
	VMOVUPD 96(DX), Y3
	VMOVUPD 128(DX), Y4
	VMOVUPD 160(DX), Y5
	VMOVUPD 192(DX), Y6
	VMOVUPD 224(DX), Y7

loop:
	VBROADCASTSD (SI), Y8       // ar0
	VBROADCASTSD 8(SI), Y9      // ai0
	VBROADCASTSD 16(SI), Y10    // ar1
	VBROADCASTSD 24(SI), Y11    // ai1

	// b columns 0-1
	VMOVUPD   (DI), Y12
	VPERMILPD $0x5, Y12, Y13
	VMULPD    Y12, Y8, Y14
	VMULPD    Y13, Y9, Y15
	VADDSUBPD Y15, Y14, Y14
	VADDPD    Y14, Y0, Y0
	VMULPD    Y12, Y10, Y14
	VMULPD    Y13, Y11, Y15
	VADDSUBPD Y15, Y14, Y14
	VADDPD    Y14, Y4, Y4

	// b columns 2-3
	VMOVUPD   32(DI), Y12
	VPERMILPD $0x5, Y12, Y13
	VMULPD    Y12, Y8, Y14
	VMULPD    Y13, Y9, Y15
	VADDSUBPD Y15, Y14, Y14
	VADDPD    Y14, Y1, Y1
	VMULPD    Y12, Y10, Y14
	VMULPD    Y13, Y11, Y15
	VADDSUBPD Y15, Y14, Y14
	VADDPD    Y14, Y5, Y5

	// b columns 4-5
	VMOVUPD   64(DI), Y12
	VPERMILPD $0x5, Y12, Y13
	VMULPD    Y12, Y8, Y14
	VMULPD    Y13, Y9, Y15
	VADDSUBPD Y15, Y14, Y14
	VADDPD    Y14, Y2, Y2
	VMULPD    Y12, Y10, Y14
	VMULPD    Y13, Y11, Y15
	VADDSUBPD Y15, Y14, Y14
	VADDPD    Y14, Y6, Y6

	// b columns 6-7
	VMOVUPD   96(DI), Y12
	VPERMILPD $0x5, Y12, Y13
	VMULPD    Y12, Y8, Y14
	VMULPD    Y13, Y9, Y15
	VADDSUBPD Y15, Y14, Y14
	VADDPD    Y14, Y3, Y3
	VMULPD    Y12, Y10, Y14
	VMULPD    Y13, Y11, Y15
	VADDSUBPD Y15, Y14, Y14
	VADDPD    Y14, Y7, Y7

	ADDQ $32, SI
	ADDQ $128, DI
	DECQ CX
	JNZ  loop

	VMOVUPD Y0, (DX)
	VMOVUPD Y1, 32(DX)
	VMOVUPD Y2, 64(DX)
	VMOVUPD Y3, 96(DX)
	VMOVUPD Y4, 128(DX)
	VMOVUPD Y5, 160(DX)
	VMOVUPD Y6, 192(DX)
	VMOVUPD Y7, 224(DX)
	VZEROUPPER
	RET

// func vecSubMulAVX2(dst, src *complex128, n int, l complex128)
//
// dst[j] -= l*src[j] for j in [0, n), n even (odd tail handled by the Go
// wrapper). Same no-FMA rounding as the scalar expression.
TEXT ·vecSubMulAVX2(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DX
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	VBROADCASTSD l_real+24(FP), Y8
	VBROADCASTSD l_imag+32(FP), Y9
	SHRQ $1, CX
	JZ   done2

loop2:
	VMOVUPD   (SI), Y12
	VPERMILPD $0x5, Y12, Y13
	VMULPD    Y12, Y8, Y14
	VMULPD    Y13, Y9, Y15
	VADDSUBPD Y15, Y14, Y14
	VMOVUPD   (DX), Y0
	VSUBPD    Y14, Y0, Y0
	VMOVUPD   Y0, (DX)
	ADDQ      $32, SI
	ADDQ      $32, DX
	DECQ      CX
	JNZ       loop2

done2:
	VZEROUPPER
	RET

// func vecScaleAVX2(dst *complex128, n int, s complex128)
//
// dst[j] *= s for j in [0, n), n even (odd tail handled by the Go
// wrapper).
TEXT ·vecScaleAVX2(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DX
	MOVQ n+8(FP), CX
	VBROADCASTSD s_real+16(FP), Y8
	VBROADCASTSD s_imag+24(FP), Y9
	SHRQ $1, CX
	JZ   done3

loop3:
	VMOVUPD   (DX), Y12
	VPERMILPD $0x5, Y12, Y13
	VMULPD    Y12, Y8, Y14
	VMULPD    Y13, Y9, Y15
	VADDSUBPD Y15, Y14, Y14
	VMOVUPD   Y14, (DX)
	ADDQ      $32, DX
	DECQ      CX
	JNZ       loop3

done3:
	VZEROUPPER
	RET
