package linalg

import (
	"sync"
	"sync/atomic"
)

// Op selects how an input operand enters a multiplication, mirroring the
// BLAS transpose flags that OMEN passes to cuBLAS (Table 7 uses NN/NT/TN/TT).
type Op int

const (
	// NoTrans uses the operand as stored.
	NoTrans Op = iota
	// Trans uses the operand transposed.
	Trans
	// ConjTrans uses the Hermitian conjugate of the operand.
	ConjTrans
)

func (o Op) String() string {
	switch o {
	case NoTrans:
		return "N"
	case Trans:
		return "T"
	case ConjTrans:
		return "C"
	}
	return "?"
}

// flopCount accumulates complex flops across linalg kernels when enabled.
var (
	flopCount   atomic.Int64
	flopEnabled atomic.Bool
)

// EnableFlopCounting toggles global flop accounting. It costs one atomic add
// per kernel call, so leave it off in production runs.
func EnableFlopCounting(on bool) { flopEnabled.Store(on) }

// Flops returns the accumulated real-flop count (1 complex multiply-add is
// counted as 8 real flops, matching the paper's §6.1.1 accounting).
func Flops() int64 { return flopCount.Load() }

// ResetFlops clears the accumulated flop count.
func ResetFlops() { flopCount.Store(0) }

func countFlops(n int64) {
	if flopEnabled.Load() {
		flopCount.Add(n)
	}
}

// parallelThreshold is the operation count above which MatMul fans out
// across goroutines. Tuned so that the Norb-sized multiplications in the
// SSE kernel never pay goroutine overhead.
const parallelThreshold = 64 * 64 * 64

// MatMul computes C = op(A)·op(B), allocating the result.
func MatMul(a *Matrix, opA Op, b *Matrix, opB Op) *Matrix {
	m, k := opDims(a, opA)
	k2, n := opDims(b, opB)
	if k != k2 {
		panicShape("MatMul", a, opA, b, opB)
	}
	c := New(m, n)
	GEMM(1, a, opA, b, opB, 0, c)
	return c
}

// Mul is shorthand for MatMul(a, NoTrans, b, NoTrans).
func Mul(a, b *Matrix) *Matrix { return MatMul(a, NoTrans, b, NoTrans) }

// GEMM computes C = alpha·op(A)·op(B) + beta·C in place.
//
// c must not overlap a or b (the blocked kernel stores partial sums into C
// while the operands are still being read; overlap would silently corrupt
// the result, so it panics instead). Transposed operands are consumed
// through pooled packing buffers — no per-call materialization.
//
// Large problems fan out across row stripes of C, but only over worker
// tokens the budget has free (see ReserveWorker): invoked from inside a
// saturated worker pool, GEMM runs serially on its caller's goroutine.
func GEMM(alpha complex128, a *Matrix, opA Op, b *Matrix, opB Op, beta complex128, c *Matrix) {
	m, k := opDims(a, opA)
	k2, n := opDims(b, opB)
	if k != k2 || c.Rows != m || c.Cols != n {
		panicShape("GEMM", a, opA, b, opB)
	}
	checkNoAlias("GEMM", c, a, b)
	countFlops(8 * int64(m) * int64(n) * int64(k))
	if m == 0 || n == 0 {
		return
	}
	if k == 0 {
		scaleInPlace(c, beta)
		return
	}
	gemmDispatch(alpha, a, opA, b, opB, beta, c, nil)
}

// gemmDispatch routes one shape-checked GEMM to a kernel: the unpacked
// gemmStripe reference for small NoTrans problems, the packed blocked
// kernel otherwise, row-partitioned across budget-free workers when the
// problem is large. ws, when non-nil, donates the packing buffers
// (workspace-pooled hot path); otherwise they come from packPool. Shared
// by the allocating GEMM and Workspace.GEMM.
func gemmDispatch(alpha complex128, a *Matrix, opA Op, b *Matrix, opB Op, beta complex128, c *Matrix, ws *Workspace) {
	m, n := c.Rows, c.Cols
	var k int
	if opA == NoTrans {
		k = a.Cols
	} else {
		k = a.Rows
	}
	work := int64(m) * int64(n) * int64(k)
	if work < packThreshold && opA == NoTrans && opB == NoTrans {
		gemmStripe(alpha, a, b, beta, c, 0, m)
		return
	}

	workers := 1
	if work >= parallelThreshold {
		maxUseful := (m + gemmMR - 1) / gemmMR // one worker per row micro-panel at most
		workers = 1 + tryAcquireWorkers(maxUseful-1)
	}
	if workers == 1 {
		var pb *packBuf
		if ws != nil {
			pb = &ws.pack
		} else {
			pb = packPool.Get().(*packBuf)
		}
		gemmBlocked(alpha, a, opA, b, opB, beta, c, pb, 0, m)
		if ws == nil {
			packPool.Put(pb)
		}
		return
	}
	defer releaseWorkers(workers - 1)
	// Row-partition C on micro-panel boundaries: every element still sees
	// its full k sweep on one worker, so parallel results are bitwise
	// identical to serial ones.
	chunk := (m + workers - 1) / workers
	chunk = (chunk + gemmMR - 1) / gemmMR * gemmMR
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			pb := packPool.Get().(*packBuf)
			gemmBlocked(alpha, a, opA, b, opB, beta, c, pb, lo, hi)
			packPool.Put(pb)
		}(lo, hi)
	}
	wg.Wait()
}

// scaleInPlace applies C = beta·C, the k == 0 degenerate GEMM.
func scaleInPlace(c *Matrix, beta complex128) {
	if beta == 1 {
		return
	}
	if beta == 0 {
		c.Zero()
		return
	}
	for i := range c.Data {
		c.Data[i] *= beta
	}
}

// gemmStripe computes rows [lo, hi) of C = alpha·A·B + beta·C with A and B
// both in natural orientation. The inner loops run in i-k-j order so that
// both B and C are swept contiguously (the classic cache-friendly ordering).
func gemmStripe(alpha complex128, a, b *Matrix, beta complex128, c *Matrix, lo, hi int) {
	n := c.Cols
	k := a.Cols
	for i := lo; i < hi; i++ {
		crow := c.Data[i*n : (i+1)*n]
		if beta == 0 {
			for j := range crow {
				crow[j] = 0
			}
		} else if beta != 1 {
			for j := range crow {
				crow[j] *= beta
			}
		}
		arow := a.Data[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			av := alpha * arow[p]
			brow := b.Data[p*n : (p+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// MulAdd computes dst += a·b without allocating.
func MulAdd(dst, a, b *Matrix) { GEMM(1, a, NoTrans, b, NoTrans, 1, dst) }

// Mul3 returns a·b·c, association chosen to minimize work.
func Mul3(a, b, c *Matrix) *Matrix {
	// Cost of (ab)c vs a(bc) in complex multiply-adds.
	left := int64(a.Rows)*int64(a.Cols)*int64(b.Cols) + int64(a.Rows)*int64(b.Cols)*int64(c.Cols)
	right := int64(b.Rows)*int64(b.Cols)*int64(c.Cols) + int64(a.Rows)*int64(a.Cols)*int64(c.Cols)
	if left <= right {
		return Mul(Mul(a, b), c)
	}
	return Mul(a, Mul(b, c))
}

func opDims(m *Matrix, op Op) (rows, cols int) {
	if op == NoTrans {
		return m.Rows, m.Cols
	}
	return m.Cols, m.Rows
}

func panicShape(fn string, a *Matrix, opA Op, b *Matrix, opB Op) {
	panic("linalg: " + fn + " incompatible shapes " +
		shapeString(a, opA) + " x " + shapeString(b, opB))
}

func shapeString(m *Matrix, op Op) string {
	r, c := opDims(m, op)
	return op.String() + "(" + itoa(r) + "x" + itoa(c) + ")"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
