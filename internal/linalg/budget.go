package linalg

import (
	"runtime"
	"sync/atomic"
)

// Worker budget: a package-global pool of schedulable CPU tokens that makes
// kernel-level parallelism compose with the outer worker pools instead of
// oversubscribing them. Every layer that runs compute goroutines — the
// sequential GF phase's point workers, the sdfg executor workers, the
// simulated MPI ranks, the SSE atom pool, the SBSMM batch splitter —
// reserves one token per worker for the worker's lifetime. A large GEMM
// then fans out only over tokens that are actually free: called from a
// saturated pool it runs serially on its caller's goroutine; called from
// the top level with idle CPUs it takes them.
//
// The budget defaults to GOMAXPROCS at process start. SetWorkerBudget
// overrides it (tests pin it; a daemon colocating several solvers can
// partition cores between them).
var (
	budgetTotal atomic.Int64 // configured token count
	budgetFree  atomic.Int64 // tokens not reserved by an outer pool
)

func init() {
	n := int64(runtime.GOMAXPROCS(0))
	budgetTotal.Store(n)
	budgetFree.Store(n)
}

// WorkerBudget returns the configured worker-token count.
func WorkerBudget() int { return int(budgetTotal.Load()) }

// SetWorkerBudget sets the worker-token count and returns the previous
// value. n <= 0 restores the GOMAXPROCS default. Outstanding reservations
// carry over: the free count is adjusted by the same delta, so a pool that
// reserved under the old budget still releases correctly.
func SetWorkerBudget(n int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	old := budgetTotal.Swap(int64(n))
	budgetFree.Add(int64(n) - old)
	return int(old)
}

// ReserveWorker marks one worker goroutine as busy for scheduling purposes
// and returns the matching release function. Outer pools call it once per
// worker they spawn (reservation never blocks — the pool is entitled to
// its workers; the budget only steers how much extra parallelism inner
// kernels may add). The returned release must be called exactly once.
func ReserveWorker() (release func()) {
	budgetFree.Add(-1)
	var done atomic.Bool
	return func() {
		if done.CompareAndSwap(false, true) {
			budgetFree.Add(1)
		}
	}
}

// tryAcquireWorkers takes up to max free tokens (never blocking, never
// going below zero) and returns how many it got. The caller must hand them
// back with releaseWorkers. One token is always left behind for the
// calling goroutine itself: a top-level caller holds no reservation but
// still occupies a CPU, so taking the last token would oversubscribe by
// one (on a single-CPU box it would turn every large GEMM into two
// goroutines fighting over one core).
func tryAcquireWorkers(max int) int {
	if max <= 0 {
		return 0
	}
	for {
		free := budgetFree.Load()
		if free <= 1 {
			return 0
		}
		take := int64(max)
		if take > free-1 {
			take = free - 1
		}
		if budgetFree.CompareAndSwap(free, free-take) {
			return int(take)
		}
	}
}

func releaseWorkers(n int) {
	if n > 0 {
		budgetFree.Add(int64(n))
	}
}
