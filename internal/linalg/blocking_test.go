package linalg

import (
	"math/rand"
	"testing"
)

// TestBlockingBitwiseInvariance is the contract that lets the plan
// autotuner retune cache blocking at runtime: every admissible blocking
// produces bitwise-identical GEMM results, because the per-element
// accumulation order (ascending k, single accumulator) does not depend
// on how the loops are tiled. Exercised across tile-straddling shapes,
// all Op pairs, and deliberately awkward sizes (minimum legal tile,
// non-power-of-two, larger-than-problem).
func TestBlockingBitwiseInvariance(t *testing.T) {
	defer ResetBlocking()
	rng := rand.New(rand.NewSource(1009))
	shapes := [][3]int{{7, 23, 130}, {130, 9, 7}, {65, 65, 65}}
	blockings := []BlockSizes{
		{MC: gemmMR, KC: 1, NC: gemmNR}, // minimum legal: every loop degenerates
		{MC: 24, KC: 17, NC: 40},        // non-power-of-two, straddles the shapes
		{MC: 512, KC: 512, NC: 512},     // larger than every problem dimension
		DefaultBlocking(),
	}
	for _, sh := range shapes {
		m, n, k := sh[0], sh[1], sh[2]
		for _, opA := range allOps {
			for _, opB := range allOps {
				a, b, c0 := makeOperands(rng, m, n, k, opA, opB)
				alpha, beta := complex(1.3, -0.7), complex(0.5, 2)
				want := c0.Clone()
				referenceGEMM(alpha, a, opA, b, opB, beta, want)
				for _, bs := range blockings {
					if err := SetBlocking(bs); err != nil {
						t.Fatal(err)
					}
					got := c0.Clone()
					runBlocked(alpha, a, opA, b, opB, beta, got)
					checkBitwise(t, "blocking", got, want)
				}
			}
		}
	}
}

func TestBlockingValidation(t *testing.T) {
	defer ResetBlocking()
	if err := SetBlocking(BlockSizes{MC: 1, KC: 128, NC: 256}); err == nil {
		t.Error("MC below the register tile must be rejected")
	}
	if err := SetBlocking(BlockSizes{MC: 128, KC: 0, NC: 256}); err == nil {
		t.Error("KC < 1 must be rejected")
	}
	if err := SetBlocking(BlockSizes{MC: 128, KC: 128, NC: 4}); err == nil {
		t.Error("NC below the register tile must be rejected")
	}
	if err := SetBlocking(BlockSizes{MC: 64, KC: 64, NC: 64}); err != nil {
		t.Fatal(err)
	}
	if got := Blocking(); got != (BlockSizes{MC: 64, KC: 64, NC: 64}) {
		t.Errorf("Blocking() = %+v after SetBlocking", got)
	}
	ResetBlocking()
	if got := Blocking(); got != DefaultBlocking() {
		t.Errorf("ResetBlocking left %+v", got)
	}
}
