package linalg

// Workspace is a per-worker pool of sized matrix temporaries and reusable
// LU records for the hot solver kernels. The RGF recursion and the NEGF
// point solves check temporaries out with Get, hand the per-step ones back
// with Put, and recycle everything at once with Reset at the start of the
// next solve — so after the first solve on a workspace, the steady state
// performs no heap allocation at all.
//
// Ownership rule: a Workspace is NOT safe for concurrent use. Every worker
// goroutine owns exactly one Workspace for the duration of a solve (the
// negf.PointSolver scratch pool and the dist rank workers enforce this);
// two goroutines sharing a workspace would hand out the same backing
// buffer twice.
//
// All workspace-backed operations are arithmetic-identical to their
// allocating counterparts: the fp64 results are bit-identical, which the
// qt facade equivalence suite relies on.
type Workspace struct {
	// free and all are keyed by element count (Rows*Cols): a buffer checked
	// out as r×c can be re-handed out as any shape with the same area, the
	// header's Rows/Cols being rebound on Get.
	free map[int][]*Matrix
	all  map[int][]*Matrix
	lus  map[int]*LU
	// pack holds the blocked GEMM's packing panels. Keeping them on the
	// workspace (rather than the global packPool) means the steady-state
	// solver path touches no shared pool at all.
	pack packBuf
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace {
	return &Workspace{
		free: make(map[int][]*Matrix),
		all:  make(map[int][]*Matrix),
		lus:  make(map[int]*LU),
	}
}

// Get checks out an r×c matrix with unspecified contents. The matrix
// remains owned by the caller until it is handed back with Put or the
// workspace is Reset.
func (ws *Workspace) Get(r, c int) *Matrix {
	k := r * c
	if fl := ws.free[k]; len(fl) > 0 {
		m := fl[len(fl)-1]
		ws.free[k] = fl[:len(fl)-1]
		m.Rows, m.Cols = r, c
		return m
	}
	m := New(r, c)
	ws.all[k] = append(ws.all[k], m)
	return m
}

// GetZero is Get with the contents cleared.
func (ws *Workspace) GetZero(r, c int) *Matrix {
	m := ws.Get(r, c)
	m.Zero()
	return m
}

// Put returns a checked-out matrix to the pool ahead of the next Reset —
// the discipline that keeps a solve's high-water footprint at its live set
// instead of its total temporary count. m must have come from this
// workspace's Get and must not be Put twice before a Reset.
func (ws *Workspace) Put(m *Matrix) {
	k := len(m.Data)
	ws.free[k] = append(ws.free[k], m)
}

// Reset checks every matrix ever handed out back into the pool. Matrices
// obtained before the Reset must not be used afterwards: the next Get may
// hand out their backing storage again.
func (ws *Workspace) Reset() {
	for k, a := range ws.all {
		ws.free[k] = append(ws.free[k][:0], a...)
	}
}

// LUFor returns the workspace's reusable n×n LU record for use with
// FactorizeInto. The record is shared across calls with the same n, so a
// factorization is only valid until the next LUFor(n)+FactorizeInto pair.
func (ws *Workspace) LUFor(n int) *LU {
	if f, ok := ws.lus[n]; ok {
		return f
	}
	f := NewLU(n)
	ws.lus[n] = f
	return f
}

// GEMM is linalg.GEMM backed by this workspace's packing panels instead of
// the global packPool, so the steady-state solver path touches no shared
// pool. Trans/ConjTrans operands are consumed directly by the packed
// kernel — nothing is materialized. The result is bit-identical to the
// allocating path (same kernel, same buffers modulo location). The
// workspace ownership rule applies: one goroutine at a time.
func (ws *Workspace) GEMM(alpha complex128, a *Matrix, opA Op, b *Matrix, opB Op, beta complex128, c *Matrix) {
	m, k := opDims(a, opA)
	k2, n := opDims(b, opB)
	if k != k2 || c.Rows != m || c.Cols != n {
		panicShape("GEMM", a, opA, b, opB)
	}
	checkNoAlias("Workspace.GEMM", c, a, b)
	countFlops(8 * int64(m) * int64(n) * int64(k))
	if m == 0 || n == 0 {
		return
	}
	if k == 0 {
		scaleInPlace(c, beta)
		return
	}
	gemmDispatch(alpha, a, opA, b, opB, beta, c, ws)
}

// MulInto stores a·b into dst (which must be preallocated with the product
// shape and must not alias a or b) and returns dst.
func MulInto(dst, a, b *Matrix) *Matrix {
	GEMM(1, a, NoTrans, b, NoTrans, 0, dst)
	return dst
}

// Mul3Into stores a·b·c into dst using pooled scratch for the
// intermediate product. The association is chosen with the same cost
// comparison as Mul3, so the fp64 result is bit-identical to
// Mul3(a, b, c). dst must not alias any operand.
func (ws *Workspace) Mul3Into(dst, a, b, c *Matrix) *Matrix {
	left := int64(a.Rows)*int64(a.Cols)*int64(b.Cols) + int64(a.Rows)*int64(b.Cols)*int64(c.Cols)
	right := int64(b.Rows)*int64(b.Cols)*int64(c.Cols) + int64(a.Rows)*int64(a.Cols)*int64(c.Cols)
	if left <= right {
		t := ws.Get(a.Rows, b.Cols)
		MulInto(t, a, b)
		MulInto(dst, t, c)
		ws.Put(t)
	} else {
		t := ws.Get(b.Rows, c.Cols)
		MulInto(t, b, c)
		MulInto(dst, a, t)
		ws.Put(t)
	}
	return dst
}
