//go:build amd64

package linalg

// AVX2 micro-kernel plumbing. Detection is done once at init: AVX2 in
// CPUID leaf 7, plus OSXSAVE/XGETBV confirming the OS preserves ymm
// state. No FMA requirement — the kernel deliberately avoids fused
// operations to keep bit-identity with the scalar reference.

func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

func xgetbv0() (eax, edx uint32)

//go:noescape
func microKernelAVX2(kc int, ap, bp, acc *complex128)

var haveAVX2 = detectAVX2()

func detectAVX2() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsave, avx = 1 << 27, 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	xcr0, _ := xgetbv0()
	if xcr0&6 != 6 { // XMM and YMM state enabled by the OS
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}

// microKernel runs one packed 2×8 register tile (see gemm_blocked.go).
func microKernel(kc int, ap, bp []complex128, acc *[gemmMR * gemmNR]complex128) {
	if haveAVX2 {
		microKernelAVX2(kc, &ap[0], &bp[0], &acc[0])
		return
	}
	microKernelGo(kc, ap, bp, acc)
}

//go:noescape
func vecSubMulAVX2(dst, src *complex128, n int, l complex128)

//go:noescape
func vecScaleAVX2(dst *complex128, n int, s complex128)

// vecSubMul computes dst[j] -= l*src[j]. Rounding matches the scalar
// expression exactly (no FMA), so LU substitution stays bit-identical
// across the assembly and portable paths.
func vecSubMul(dst, src []complex128, l complex128) {
	n := len(dst)
	if haveAVX2 && n >= 2 {
		even := n &^ 1
		vecSubMulAVX2(&dst[0], &src[0], even, l)
		if even < n {
			dst[even] -= l * src[even]
		}
		return
	}
	vecSubMulGo(dst, src, l)
}

// vecScale computes dst[j] *= s with scalar-identical rounding.
func vecScale(dst []complex128, s complex128) {
	n := len(dst)
	if haveAVX2 && n >= 2 {
		even := n &^ 1
		vecScaleAVX2(&dst[0], even, s)
		if even < n {
			dst[even] *= s
		}
		return
	}
	vecScaleGo(dst, s)
}
