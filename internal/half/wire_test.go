package half

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestWireRoundTripAccuracy: encode/decode of well-scaled data must be a
// near-identity — the per-segment power-of-two normalization leaves only
// the binary16 rounding of each value, ≤ 2^-11 relative to the segment
// magnitude.
func TestWireRoundTripAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const seg = 8
	for _, scale := range []float64{1, 1e-9, 1e9, 1e-300} {
		src := make([]complex128, 5*seg)
		for i := range src {
			src[i] = complex(scale*rng.NormFloat64(), scale*rng.NormFloat64())
		}
		got := WireDecode(WireEncode(src, seg), seg)
		if len(got) != len(src) {
			t.Fatalf("scale %g: decoded %d values, want %d", scale, len(got), len(src))
		}
		for s := 0; s < len(src); s += seg {
			segMax := MaxAbsComplex(src[s : s+seg])
			for i := s; i < s+seg; i++ {
				dRe := math.Abs(real(got[i]) - real(src[i]))
				dIm := math.Abs(imag(got[i]) - imag(src[i]))
				if bound := segMax * math.Ldexp(1, -11); dRe > bound || dIm > bound {
					t.Fatalf("scale %g elem %d: %v -> %v (bound %g)", scale, i, src[i], got[i], bound)
				}
			}
		}
	}
}

// TestWireVolumeReduction: the encoded length must match WireWords, a
// ≥2.6× reduction for the electron block unit (Norb=2).
func TestWireVolumeReduction(t *testing.T) {
	for _, tc := range []struct{ seg, count int }{{8, 12}, {54, 3}, {2, 6}, {5, 4}} {
		src := make([]complex128, tc.seg*tc.count)
		for i := range src {
			src[i] = complex(float64(i%7)-3, float64(i%5)-2)
		}
		wire := WireEncode(src, tc.seg)
		if want := tc.count * WireWords(tc.seg); len(wire) != want {
			t.Errorf("seg %d: wire length %d, want %d", tc.seg, len(wire), want)
		}
	}
	// The exchange units: 2·Norb² = 8 at Norb 2 → 8/3; the phonon unit
	// 2·9·(Nb+1) = 54 at Nb 2 → 54/15.
	if r := 8.0 / float64(WireWords(8)); r < 2.6 {
		t.Errorf("electron unit reduction %g < 2.6", r)
	}
	if r := 54.0 / float64(WireWords(54)); r < 3.5 {
		t.Errorf("phonon unit reduction %g < 3.5", r)
	}
}

// TestWireFallbackFP64: segments whose normalization factor cannot be
// represented ship verbatim — the dynamic fp64 fallback of the mixed
// exchange. A subnormal-magnitude segment (scale would overflow float64)
// and a segment carrying Inf must both round-trip exactly, while a
// well-scaled neighbour segment in the same message still packs to half.
func TestWireFallbackFP64(t *testing.T) {
	const seg = 4
	tiny := math.Ldexp(1, -1060) // ScaleFor would need 2^1070: overflows
	src := []complex128{
		// Segment 0: pathological (subnormal magnitudes).
		complex(tiny, -tiny), complex(2*tiny, 0), 0, complex(0, tiny),
		// Segment 1: ordinary values.
		1 + 2i, -3 + 0.5i, 0.25i, 7,
		// Segment 2: non-finite data.
		complex(math.Inf(1), 1), 1 + 1i, complex(0, math.NaN()), 2,
		// Segment 3: NaN with otherwise finite magnitudes — must still
		// take the verbatim path, not canonicalize through binary16.
		complex(math.NaN(), 0.5), 1 - 1i, 3 + 4i, -2,
	}
	wire := WireEncode(src, seg)
	got := WireDecode(wire, seg)
	if len(got) != len(src) {
		t.Fatalf("decoded %d values, want %d", len(got), len(src))
	}
	for i := 0; i < seg; i++ { // fallback segment: bit-exact
		if got[i] != src[i] {
			t.Errorf("fallback elem %d: %v != %v", i, got[i], src[i])
		}
	}
	for i := seg; i < 2*seg; i++ { // half segment: rounded
		if d := math.Abs(real(got[i])-real(src[i])) + math.Abs(imag(got[i])-imag(src[i])); d > 0.01 {
			t.Errorf("half elem %d: %v -> %v", i, src[i], got[i])
		}
	}
	for i := 2 * seg; i < len(src); i++ { // non-finite segments: verbatim
		if got[i] != src[i] && !isNaNC(got[i]) {
			t.Errorf("non-finite elem %d: %v != %v", i, got[i], src[i])
		}
	}
	// The NaN segment's finite values must be bit-exact, which only the
	// fp64 path provides (3+4i would survive binary16, -2 and 1-1i too,
	// but 0.5 paired with NaN in one complex forces the whole segment).
	if got[3*seg+2] != complex(3, 4) || got[3*seg+3] != complex(-2, 0) {
		t.Errorf("NaN segment quantized its finite values: %v %v", got[3*seg+2], got[3*seg+3])
	}
	// Message length: three fp64 segments (1+seg words) + one half segment.
	if want := 3*(1+seg) + WireWords(seg); len(wire) != want {
		t.Errorf("wire length %d, want %d", len(wire), want)
	}
}

func isNaNC(v complex128) bool {
	return math.IsNaN(real(v)) || math.IsNaN(imag(v))
}

// TestWireRoundTripProperty: quick-check over random segment shapes and
// magnitudes — decode(encode(x)) preserves every finite value within the
// segment-relative half-ulp bound, for any segment length.
func TestWireRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		seg := 1 + rng.Intn(16)
		count := 1 + rng.Intn(8)
		mag := math.Ldexp(1, rng.Intn(120)-60)
		src := make([]complex128, seg*count)
		for i := range src {
			src[i] = complex(mag*rng.NormFloat64(), mag*rng.NormFloat64())
		}
		got := WireDecode(WireEncode(src, seg), seg)
		if len(got) != len(src) {
			return false
		}
		for s := 0; s < len(src); s += seg {
			bound := MaxAbsComplex(src[s:s+seg]) * math.Ldexp(1, -11)
			for i := s; i < s+seg; i++ {
				if math.Abs(real(got[i])-real(src[i])) > bound ||
					math.Abs(imag(got[i])-imag(src[i])) > bound {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestWireEmptyAndValidation: empty payloads are free; misuse panics.
func TestWireEmptyAndValidation(t *testing.T) {
	if got := WireEncode(nil, 4); len(got) != 0 {
		t.Errorf("empty payload encoded to %d words", len(got))
	}
	if got := WireDecode(nil, 4); len(got) != 0 {
		t.Errorf("empty wire decoded to %d values", len(got))
	}
	expectPanic(t, "ragged payload", func() { WireEncode(make([]complex128, 5), 4) })
	expectPanic(t, "bad segment", func() { WireEncode(make([]complex128, 4), 0) })
	expectPanic(t, "truncated wire", func() { WireDecode([]complex128{complex(1, 0)}, 8) })
}

func expectPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

// FuzzWireRoundTrip drives the codec with arbitrary magnitudes including
// the fallback boundary; the invariant is the per-segment error bound or
// exact passthrough.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add(1.0, 2.0, 1e-300, 4.0)
	f.Add(0.0, 0.0, 0.0, 0.0)
	f.Add(math.Inf(1), 1.0, -5e-324, 65504.0)
	f.Fuzz(func(t *testing.T, a, b, c, d float64) {
		src := []complex128{complex(a, b), complex(c, d)}
		got := WireDecode(WireEncode(src, 2), 2)
		if len(got) != 2 {
			t.Fatalf("decoded %d values", len(got))
		}
		mx := MaxAbsComplex(src)
		if math.IsInf(mx, 0) || math.IsNaN(mx) {
			return // fallback segment: NaN payloads need not compare equal
		}
		bound := mx * math.Ldexp(1, -11)
		for i := range src {
			if math.Abs(real(got[i])-real(src[i])) > bound ||
				math.Abs(imag(got[i])-imag(src[i])) > bound {
				t.Fatalf("elem %d: %v -> %v (bound %g)", i, src[i], got[i], bound)
			}
		}
	})
}
