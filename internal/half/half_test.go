package half

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExactValues(t *testing.T) {
	cases := []struct {
		f    float64
		bits Float16
	}{
		{0, 0x0000},
		{1, 0x3c00},
		{-1, 0xbc00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7bff},                  // MaxValue
		{6.103515625e-05, 0x0400},        // MinNormal
		{5.9604644775390625e-08, 0x0001}, // smallest subnormal
	}
	for _, c := range cases {
		if got := FromFloat64(c.f); got != c.bits {
			t.Errorf("FromFloat64(%g) = %#04x, want %#04x", c.f, got, c.bits)
		}
		if got := c.bits.Float64(); got != c.f {
			t.Errorf("(%#04x).Float64() = %g, want %g", c.bits, got, c.f)
		}
	}
}

func TestOverflowToInf(t *testing.T) {
	h := FromFloat64(1e6)
	if !h.IsInf() {
		t.Fatalf("1e6 should overflow to Inf, got %#04x (%g)", h, h.Float64())
	}
	h = FromFloat64(-1e6)
	if !h.IsInf() || h.Float64() > 0 {
		t.Fatalf("-1e6 should overflow to -Inf")
	}
}

func TestNaNPropagation(t *testing.T) {
	h := FromFloat64(math.NaN())
	if !h.IsNaN() {
		t.Fatal("NaN should convert to half NaN")
	}
	if !math.IsNaN(h.Float64()) {
		t.Fatal("half NaN should convert back to NaN")
	}
}

func TestUnderflowToZero(t *testing.T) {
	h := FromFloat64(1e-12)
	if h != 0 {
		t.Fatalf("1e-12 should underflow to +0, got %#04x", h)
	}
	h = FromFloat64(-1e-12)
	if h != 0x8000 {
		t.Fatalf("-1e-12 should underflow to -0, got %#04x", h)
	}
}

func TestSubnormalRange(t *testing.T) {
	// 2^-20 is subnormal in binary16 but exactly representable.
	f := math.Ldexp(1, -20)
	h := FromFloat64(f)
	if h.Float64() != f {
		t.Fatalf("2^-20 roundtrip: got %g", h.Float64())
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Conversion float16→float32→float16 must be the identity for every
	// finite half value, and half(f).Float64() must be within half an ULP.
	f := func(bits uint16) bool {
		h := Float16(bits)
		if h.IsNaN() {
			return FromFloat32(h.Float32()).IsNaN()
		}
		return FromFloat32(h.Float32()) == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundingIsNearest(t *testing.T) {
	// The binary16 ULP at 1.0 is 2^-10; values less than half an ULP away
	// must round to 1.0.
	ulp := math.Ldexp(1, -10)
	if got := FromFloat64(1 + 0.49*ulp).Float64(); got != 1 {
		t.Fatalf("1+0.49ulp rounded to %g", got)
	}
	if got := FromFloat64(1 + 0.51*ulp).Float64(); got != 1+ulp {
		t.Fatalf("1+0.51ulp rounded to %g, want %g", got, 1+ulp)
	}
	// Ties round to even: 1 + 0.5ulp is exactly between 1 (mantissa even)
	// and 1+ulp (odd) → rounds down to 1.
	if got := FromFloat64(1 + 0.5*ulp).Float64(); got != 1 {
		t.Fatalf("tie 1+0.5ulp rounded to %g, want 1 (even)", got)
	}
}

func TestQuantizeErrorBoundProperty(t *testing.T) {
	// For in-range normal values the relative quantization error is at
	// most 2^-11 (half an ULP of a 10-bit mantissa).
	f := func(x float64) bool {
		x = math.Mod(math.Abs(x), 60000)
		if x < MinNormal {
			return true
		}
		q := Quantize(x)
		return math.Abs(q-x) <= x*math.Ldexp(1, -11)+1e-300
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(1e9) != MaxValue {
		t.Fatal("positive clamp failed")
	}
	if Clamp(-1e9) != -MaxValue {
		t.Fatal("negative clamp failed")
	}
	if Clamp(123.0) != 123.0 {
		t.Fatal("in-range value should pass through")
	}
	if q := Quantize(1e9); q != MaxValue {
		t.Fatalf("Quantize should saturate, got %g", q)
	}
}

func TestClampEdgeCases(t *testing.T) {
	// Exact boundaries saturate to themselves.
	if Clamp(MaxValue) != MaxValue || Clamp(-MaxValue) != -MaxValue {
		t.Fatal("boundary values must pass unchanged")
	}
	// The next float64 above the boundary clamps.
	up := math.Nextafter(MaxValue, math.Inf(1))
	if Clamp(up) != MaxValue {
		t.Fatalf("Clamp(%g) = %g, want MaxValue", up, Clamp(up))
	}
	// Infinities saturate; NaN propagates (neither comparison fires) and
	// Quantize keeps it a NaN rather than inventing a finite value.
	if Clamp(math.Inf(1)) != MaxValue || Clamp(math.Inf(-1)) != -MaxValue {
		t.Fatal("infinities must saturate")
	}
	if !math.IsNaN(Clamp(math.NaN())) {
		t.Fatal("Clamp(NaN) must stay NaN")
	}
	if !math.IsNaN(Quantize(math.NaN())) {
		t.Fatal("Quantize(NaN) must stay NaN")
	}
	// Signed zeros survive.
	if math.Signbit(Clamp(math.Copysign(0, -1))) != true {
		t.Fatal("Clamp must preserve -0")
	}
	// Subnormal halves quantize exactly (they are representable).
	if q := Quantize(SmallestNonzero); q != SmallestNonzero {
		t.Fatalf("smallest subnormal quantized to %g", q)
	}
}

// FuzzFloat16RoundTrip: for every 16-bit pattern, half→float32→half is
// the identity (NaNs stay NaNs), and float64 round-trips agree with the
// float32 path.
func FuzzFloat16RoundTrip(f *testing.F) {
	f.Add(uint16(0x0000))
	f.Add(uint16(0x8000)) // -0
	f.Add(uint16(0x0001)) // smallest subnormal
	f.Add(uint16(0x03ff)) // largest subnormal
	f.Add(uint16(0x0400)) // MinNormal
	f.Add(uint16(0x7bff)) // MaxValue
	f.Add(uint16(0x7c00)) // +Inf
	f.Add(uint16(0x7e00)) // NaN
	f.Fuzz(func(t *testing.T, bits uint16) {
		h := Float16(bits)
		if h.IsNaN() {
			if !FromFloat32(h.Float32()).IsNaN() {
				t.Fatalf("%#04x: NaN lost in round trip", bits)
			}
			return
		}
		if got := FromFloat32(h.Float32()); got != h {
			t.Fatalf("%#04x -> %g -> %#04x", bits, h.Float32(), got)
		}
		if got := FromFloat64(h.Float64()); got != h {
			t.Fatalf("%#04x float64 round trip -> %#04x", bits, got)
		}
	})
}

// FuzzQuantize: quantization of any float64 saturates, never produces
// Inf from finite input, and keeps the half-ulp relative bound for
// normal-range magnitudes.
func FuzzQuantize(f *testing.F) {
	f.Add(1.5)
	f.Add(-65504.0)
	f.Add(1e-8)
	f.Add(1e300)
	f.Add(math.Inf(1))
	f.Fuzz(func(t *testing.T, x float64) {
		q := Quantize(x)
		if math.IsNaN(x) {
			if !math.IsNaN(q) {
				t.Fatalf("Quantize(NaN) = %g", q)
			}
			return
		}
		if math.Abs(q) > MaxValue {
			t.Fatalf("Quantize(%g) = %g escapes the binary16 range", x, q)
		}
		if a := math.Abs(x); a >= MinNormal && a <= MaxValue {
			if math.Abs(q-x) > a*math.Ldexp(1, -11) {
				t.Fatalf("Quantize(%g) = %g outside half-ulp bound", x, q)
			}
		}
	})
}

func TestSplitComplexRoundTrip(t *testing.T) {
	src := []complex128{1 + 2i, -3.5 + 0.25i, 0, 1000 - 1000i}
	sc := NewSplitComplex(len(src))
	sc.EncodeScaled(src, 1)
	dst := make([]complex128, len(src))
	sc.DecodeScaled(dst, 1)
	for i := range src {
		if math.Abs(real(dst[i])-real(src[i])) > math.Abs(real(src[i]))*1e-3+1e-6 ||
			math.Abs(imag(dst[i])-imag(src[i])) > math.Abs(imag(src[i]))*1e-3+1e-6 {
			t.Fatalf("roundtrip[%d]: %v -> %v", i, src[i], dst[i])
		}
	}
}

func TestScaleForPowerOfTwo(t *testing.T) {
	for _, m := range []float64{1e-9, 1e-3, 1, 7, 1e4, 3e7} {
		s := ScaleFor(m)
		// Power of two: log2 must be integral.
		l := math.Log2(s)
		if l != math.Trunc(l) {
			t.Fatalf("ScaleFor(%g) = %g is not a power of two", m, s)
		}
		scaled := m * s
		if scaled > MaxValue || scaled < 256 {
			t.Fatalf("ScaleFor(%g): scaled max %g outside [256, 65504]", m, scaled)
		}
	}
	if ScaleFor(0) != 1 {
		t.Fatal("ScaleFor(0) should be the neutral factor")
	}
}

func TestNormalizationPreservesSmallValues(t *testing.T) {
	// Without normalization, values of order 1e-9 vanish in fp16; with a
	// ScaleFor-derived factor they survive with ~2^-11 relative error.
	// This is the §5.4 mechanism reproduced in miniature.
	vals := []complex128{complex(3e-9, -1e-9), complex(1e-9, 2e-9)}
	direct := NewSplitComplex(len(vals))
	direct.EncodeScaled(vals, 1)
	out := make([]complex128, len(vals))
	direct.DecodeScaled(out, 1)
	if out[0] != 0 || out[1] != 0 {
		t.Fatal("expected unnormalized 1e-9 values to flush to zero in fp16")
	}
	scale := ScaleFor(MaxAbsComplex(vals))
	norm := NewSplitComplex(len(vals))
	norm.EncodeScaled(vals, scale)
	norm.DecodeScaled(out, 1/scale)
	for i := range vals {
		if math.Abs(real(out[i])-real(vals[i])) > 1e-11 {
			t.Fatalf("normalized roundtrip lost value %d: %v -> %v", i, vals[i], out[i])
		}
	}
}

func TestMaxAbsComplex(t *testing.T) {
	if got := MaxAbsComplex([]complex128{1 + 2i, -7 + 0.5i, 3 - 4i}); got != 7 {
		t.Fatalf("MaxAbsComplex = %g, want 7", got)
	}
	if got := MaxAbsComplex(nil); got != 0 {
		t.Fatalf("MaxAbsComplex(nil) = %g", got)
	}
}
