package half

import "math"

// Wire format: the half-width payload encoding the distributed SSE
// exchanges ship through the simulated MPI runtime. The comm layer's
// currency is []complex128 (16 bytes per word), so the encoder packs four
// binary16 split-complex values — eight Float16 bit patterns — into the
// 128 bits of one wire word, plus one header word per segment carrying
// the dynamic normalization factor of §5.4.
//
// Payloads are segmented: a segment is the per-(point, atom) block unit
// the exchange pack loops append (2·Norb² electron elements, 2·9·(Nb+1)
// phonon elements), and each segment gets its own power-of-two
// normalization factor from its magnitude. Segments whose factor cannot
// be represented — the scale itself over- or underflows float64, or the
// data carries Inf/NaN — fall back to verbatim fp64 passthrough, so a
// single pathological point degrades only its own block, never the whole
// message. For a segment of n elements the half format costs
// 1 + ⌈n/4⌉ wire words against n words in fp64: a 8/3 ≈ 2.7× reduction
// already at Norb = 2 and asymptotically 4×.
const (
	// wireHalf marks a segment holding packed binary16 quads; the header
	// word is complex(scale, 0) with scale > 0.
	// wireFP64 marks a verbatim fp64 passthrough segment; the header word
	// is complex(0, 1).
	wireQuad = 4 // complex values per packed wire word
)

// WireWords returns the wire words one half-format segment of n complex
// values occupies (header + packed quads) — the prediction the analytic
// communication model scales its fp64 volumes by.
func WireWords(n int) int { return 1 + (n+wireQuad-1)/wireQuad }

// wireScale derives the segment normalization factor. ok = false demands
// the fp64 fallback: the magnitudes are non-finite, or the power-of-two
// factor mapping them into binary16 range (or its algebraic inverse)
// leaves the float64 exponent range.
func wireScale(maxAbs float64) (scale float64, ok bool) {
	if maxAbs == 0 {
		return 1, true
	}
	if math.IsInf(maxAbs, 0) || math.IsNaN(maxAbs) {
		return 1, false
	}
	s := ScaleFor(maxAbs)
	if s == 0 || math.IsInf(s, 0) || 1/s == 0 || math.IsInf(1/s, 0) {
		return 1, false
	}
	return s, true
}

// WireEncode packs src — whose length must be a multiple of seg — into a
// fresh wire buffer. Appends one segment at a time so mixed half/fp64
// segments coexist in one message.
func WireEncode(src []complex128, seg int) []complex128 {
	if seg <= 0 {
		panic("half: WireEncode segment length must be positive")
	}
	if len(src)%seg != 0 {
		panic("half: WireEncode payload not a multiple of the segment length")
	}
	out := make([]complex128, 0, (len(src)/seg)*WireWords(seg))
	for off := 0; off < len(src); off += seg {
		out = appendSegment(out, src[off:off+seg])
	}
	return out
}

// WireDecode expands a WireEncode buffer back into full complex128
// values, walking the per-segment headers. seg must match the encoder's.
func WireDecode(wire []complex128, seg int) []complex128 {
	if seg <= 0 {
		panic("half: WireDecode segment length must be positive")
	}
	var out []complex128
	pos := 0
	for pos < len(wire) {
		h := wire[pos]
		pos++
		if imag(h) != 0 { // fp64 passthrough
			if pos+seg > len(wire) {
				panic("half: WireDecode truncated fp64 segment")
			}
			out = append(out, wire[pos:pos+seg]...)
			pos += seg
			continue
		}
		words := (seg + wireQuad - 1) / wireQuad
		if pos+words > len(wire) {
			panic("half: WireDecode truncated half segment")
		}
		invScale := 1 / real(h)
		out = decodeQuads(out, wire[pos:pos+words], seg, invScale)
		pos += words
	}
	return out
}

// WireFallbacks walks an encoded wire buffer's segment headers and counts
// the fp64 passthrough segments — the per-message fallback-block tally the
// mixed-precision telemetry reports. seg must match the encoder's.
func WireFallbacks(wire []complex128, seg int) int {
	if seg <= 0 {
		panic("half: WireFallbacks segment length must be positive")
	}
	n := 0
	pos := 0
	for pos < len(wire) {
		h := wire[pos]
		pos++
		if imag(h) != 0 {
			n++
			pos += seg
			continue
		}
		pos += (seg + wireQuad - 1) / wireQuad
	}
	return n
}

// segmentScale scans one segment and derives its normalization factor.
// ok = false demands the fp64 fallback. Unlike MaxAbsComplex (which
// skips NaN components), the scan detects NaN directly so a NaN-only
// segment ships verbatim as documented.
func segmentScale(src []complex128) (scale float64, ok bool) {
	var mx float64
	for _, v := range src {
		re, im := math.Abs(real(v)), math.Abs(imag(v))
		if math.IsNaN(re) || math.IsNaN(im) {
			return 1, false
		}
		if re > mx {
			mx = re
		}
		if im > mx {
			mx = im
		}
	}
	return wireScale(mx) // Inf lands here as mx = +Inf and is rejected
}

// appendSegment encodes one segment: magnitude scan, format decision,
// header, payload.
func appendSegment(out []complex128, src []complex128) []complex128 {
	scale, ok := segmentScale(src)
	if !ok {
		out = append(out, complex(0, 1))
		return append(out, src...)
	}
	out = append(out, complex(scale, 0))
	for off := 0; off < len(src); off += wireQuad {
		end := off + wireQuad
		if end > len(src) {
			end = len(src)
		}
		out = append(out, packQuad(src[off:end], scale))
	}
	return out
}

// packQuad quantizes up to four complex values (scaled, clamped,
// round-to-nearest-even binary16) into one wire word: values 0–1 in the
// real half's bits, values 2–3 in the imaginary half's.
func packQuad(vs []complex128, scale float64) complex128 {
	var lo, hi uint64
	for j, v := range vs {
		re := uint64(FromFloat64(Clamp(real(v) * scale)))
		im := uint64(FromFloat64(Clamp(imag(v) * scale)))
		bits := re | im<<16
		if j < 2 {
			lo |= bits << (32 * uint(j))
		} else {
			hi |= bits << (32 * uint(j-2))
		}
	}
	return complex(math.Float64frombits(lo), math.Float64frombits(hi))
}

// decodeQuads appends n decoded values from packed wire words,
// multiplying by the inverse normalization factor.
func decodeQuads(out []complex128, words []complex128, n int, invScale float64) []complex128 {
	for w := 0; w < len(words); w++ {
		lo := math.Float64bits(real(words[w]))
		hi := math.Float64bits(imag(words[w]))
		for j := 0; j < wireQuad && w*wireQuad+j < n; j++ {
			var bits uint64
			if j < 2 {
				bits = lo >> (32 * uint(j))
			} else {
				bits = hi >> (32 * uint(j-2))
			}
			re := Float16(bits & 0xffff).Float64()
			im := Float16(bits >> 16 & 0xffff).Float64()
			out = append(out, complex(re*invScale, im*invScale))
		}
	}
	return out
}
