// Package half implements IEEE 754 binary16 ("half precision") arithmetic
// in software, together with the split-complex half-precision tensor format
// used by the mixed-precision SSE kernel (§5.4 of the paper).
//
// On Summit the paper runs the Σ≷ accumulation on V100 Tensor Cores, which
// consume fp16 inputs and accumulate in higher precision. This package is
// the CPU-side stand-in: values are stored as 16-bit patterns with exactly
// the binary16 range and rounding, arithmetic happens by converting through
// float32, and out-of-range values saturate to ±MaxValue exactly like the
// clamping step the paper applies before feeding Tensor Cores.
package half

import "math"

// Float16 is an IEEE 754 binary16 value stored as its bit pattern.
type Float16 uint16

// Limits of the binary16 format.
const (
	// MaxValue is the largest finite binary16 value (65504).
	MaxValue = 65504.0
	// MinNormal is the smallest positive normal binary16 value (2^-14).
	MinNormal = 6.103515625e-05
	// SmallestNonzero is the smallest positive subnormal value (2^-24).
	SmallestNonzero = 5.9604644775390625e-08
)

// FromFloat32 converts f to binary16 with round-to-nearest-even.
// Overflows become ±Inf (use Clamp before conversion to saturate instead).
func FromFloat32(f float32) Float16 {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23&0xff) - 127 + 15
	mant := b & 0x7fffff

	switch {
	case exp >= 0x1f:
		// Overflow or already Inf/NaN.
		if int32(b>>23&0xff) == 0xff && mant != 0 {
			return Float16(sign | 0x7e00) // NaN
		}
		return Float16(sign | 0x7c00) // Inf
	case exp <= 0:
		// Subnormal or zero in half precision.
		if exp < -10 {
			return Float16(sign) // underflow to signed zero
		}
		mant |= 0x800000 // implicit leading 1
		shift := uint32(14 - exp)
		half := uint32(1) << (shift - 1)
		rounded := mant + half
		// Round to nearest even.
		if rounded&(half<<1-1) == half && mant&(1<<shift) == 0 {
			rounded = mant
		}
		return Float16(sign | uint16(rounded>>shift))
	default:
		// Normal number: round mantissa from 23 to 10 bits, nearest even.
		rounded := mant + 0xfff + (mant>>13)&1
		if rounded&0x800000 != 0 {
			rounded = 0
			exp++
			if exp >= 0x1f {
				return Float16(sign | 0x7c00)
			}
		}
		return Float16(sign | uint16(exp)<<10 | uint16(rounded>>13))
	}
}

// Float32 converts h back to float32 exactly.
func (h Float16) Float32() float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1f)
	mant := uint32(h & 0x3ff)
	switch exp {
	case 0:
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal: normalize.
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3ff
		return math.Float32frombits(sign | e<<23 | mant<<13)
	case 0x1f:
		return math.Float32frombits(sign | 0xff<<23 | mant<<13)
	default:
		return math.Float32frombits(sign | (exp+127-15)<<23 | mant<<13)
	}
}

// FromFloat64 converts through float32.
func FromFloat64(f float64) Float16 { return FromFloat32(float32(f)) }

// Float64 converts h to float64 exactly.
func (h Float16) Float64() float64 { return float64(h.Float32()) }

// IsInf reports whether h is ±Inf.
func (h Float16) IsInf() bool { return h&0x7fff == 0x7c00 }

// IsNaN reports whether h is a NaN.
func (h Float16) IsNaN() bool { return h&0x7c00 == 0x7c00 && h&0x3ff != 0 }

// Clamp saturates f into the finite binary16 range [−MaxValue, MaxValue].
// This is the paper's out-of-range handling: "Out-of-range values are
// clamped to avoid under/overflow".
func Clamp(f float64) float64 {
	if f > MaxValue {
		return MaxValue
	}
	if f < -MaxValue {
		return -MaxValue
	}
	return f
}

// Quantize rounds f through binary16 with saturation, returning the value
// a Tensor-Core input register would hold.
func Quantize(f float64) float64 { return FromFloat64(Clamp(f)).Float64() }
