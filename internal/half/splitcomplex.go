package half

import "math"

// SplitComplex stores a batch of complex values in split format: all real
// parts contiguous, then all imaginary parts, each as binary16. This is the
// layout the paper converts tensors into before using Tensor Cores
// ("transforming the tensors to split-complex format — contiguous real
// followed by imaginary values").
type SplitComplex struct {
	N  int
	Re []Float16
	Im []Float16
}

// NewSplitComplex allocates storage for n complex values.
func NewSplitComplex(n int) *SplitComplex {
	return &SplitComplex{N: n, Re: make([]Float16, n), Im: make([]Float16, n)}
}

// EncodeScaled stores src[i]*scale into the split-complex buffer with
// binary16 rounding and saturation. scale is the normalization factor from
// §5.4, chosen from the magnitude of the source tensor so the values land
// inside the fp16 dynamic range.
func (s *SplitComplex) EncodeScaled(src []complex128, scale float64) {
	if len(src) != s.N {
		panic("half: EncodeScaled length mismatch")
	}
	for i, v := range src {
		s.Re[i] = FromFloat64(Clamp(real(v) * scale))
		s.Im[i] = FromFloat64(Clamp(imag(v) * scale))
	}
}

// DecodeScaled reads the buffer back into dst, multiplying by invScale
// (algebraic denormalization: "denormalization entails scaling by inverse
// factors").
func (s *SplitComplex) DecodeScaled(dst []complex128, invScale float64) {
	if len(dst) != s.N {
		panic("half: DecodeScaled length mismatch")
	}
	for i := range dst {
		dst[i] = complex(s.Re[i].Float64()*invScale, s.Im[i].Float64()*invScale)
	}
}

// ScaleFor returns a power-of-two normalization factor that maps the
// largest magnitude in vals near the top of the fp16 range while leaving
// headroom for accumulation. Power-of-two scaling is exact in binary
// floating point, so normalize/denormalize introduces no extra rounding.
func ScaleFor(maxAbs float64) float64 {
	if maxAbs == 0 || math.IsInf(maxAbs, 0) || math.IsNaN(maxAbs) {
		return 1
	}
	// Target magnitude ~2^10 = 1024: far from overflow (65504) and far
	// from the subnormal floor, preserving ~21 bits of headroom below.
	exp := 10 - int(math.Ceil(math.Log2(maxAbs)))
	return math.Ldexp(1, exp)
}

// MaxAbsComplex returns the largest |Re| or |Im| over vals, the magnitude
// statistic the normalization factors are computed from.
func MaxAbsComplex(vals []complex128) float64 {
	var mx float64
	for _, v := range vals {
		if a := math.Abs(real(v)); a > mx {
			mx = a
		}
		if a := math.Abs(imag(v)); a > mx {
			mx = a
		}
	}
	return mx
}
