// Package blocktri provides the block-tridiagonal matrix container that the
// quantum transport equations are formulated on. The DFT Hamiltonian H(kz),
// overlap S(kz) and dynamical matrix Φ(qz) of a homogeneous nanostructure
// are all block-tridiagonal when atoms are grouped into bnum contiguous
// slabs along the transport axis (§4 of the paper); the RGF solver performs
// its forward/backward passes over these blocks.
package blocktri

import (
	"fmt"

	"repro/internal/linalg"
)

// Matrix is a square block-tridiagonal matrix with NB diagonal blocks.
// Block i has size Sizes[i]; Upper[i] couples block i to block i+1 and
// Lower[i] couples block i+1 to block i.
type Matrix struct {
	NB    int
	Sizes []int
	Diag  []*linalg.Matrix // NB blocks, Sizes[i]×Sizes[i]
	Upper []*linalg.Matrix // NB-1 blocks, Sizes[i]×Sizes[i+1]
	Lower []*linalg.Matrix // NB-1 blocks, Sizes[i+1]×Sizes[i]
}

// New allocates a zero block-tridiagonal matrix with the given block sizes.
func New(sizes []int) *Matrix {
	nb := len(sizes)
	m := &Matrix{
		NB:    nb,
		Sizes: append([]int(nil), sizes...),
		Diag:  make([]*linalg.Matrix, nb),
		Upper: make([]*linalg.Matrix, nb-1),
		Lower: make([]*linalg.Matrix, nb-1),
	}
	for i, s := range sizes {
		m.Diag[i] = linalg.New(s, s)
		if i+1 < nb {
			m.Upper[i] = linalg.New(s, sizes[i+1])
			m.Lower[i] = linalg.New(sizes[i+1], s)
		}
	}
	return m
}

// Uniform allocates a block-tridiagonal matrix with nb blocks of size bs.
func Uniform(nb, bs int) *Matrix {
	sizes := make([]int, nb)
	for i := range sizes {
		sizes[i] = bs
	}
	return New(sizes)
}

// Dim returns the total matrix dimension (sum of block sizes).
func (m *Matrix) Dim() int {
	d := 0
	for _, s := range m.Sizes {
		d += s
	}
	return d
}

// Offset returns the global row/column offset of block i.
func (m *Matrix) Offset(i int) int {
	o := 0
	for b := 0; b < i; b++ {
		o += m.Sizes[b]
	}
	return o
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Sizes)
	for i := range m.Diag {
		c.Diag[i].CopyFrom(m.Diag[i])
	}
	for i := range m.Upper {
		c.Upper[i].CopyFrom(m.Upper[i])
		c.Lower[i].CopyFrom(m.Lower[i])
	}
	return c
}

// Dense scatters the blocks into a full dense matrix — used by the
// reference solvers that validate RGF.
func (m *Matrix) Dense() *linalg.Matrix {
	n := m.Dim()
	d := linalg.New(n, n)
	off := 0
	for i := 0; i < m.NB; i++ {
		placeBlock(d, m.Diag[i], off, off)
		if i+1 < m.NB {
			placeBlock(d, m.Upper[i], off, off+m.Sizes[i])
			placeBlock(d, m.Lower[i], off+m.Sizes[i], off)
		}
		off += m.Sizes[i]
	}
	return d
}

// Hermitian reports whether the matrix equals its conjugate transpose
// within tol (diagonal blocks Hermitian, Lower[i] == Upper[i]ᴴ).
func (m *Matrix) Hermitian(tol float64) bool {
	for i := 0; i < m.NB; i++ {
		if !linalg.EqualApprox(m.Diag[i], m.Diag[i].H(), tol) {
			return false
		}
		if i+1 < m.NB && !linalg.EqualApprox(m.Lower[i], m.Upper[i].H(), tol) {
			return false
		}
	}
	return true
}

// Scale multiplies every block by s in place.
func (m *Matrix) Scale(s complex128) {
	for i := range m.Diag {
		linalg.Scale(m.Diag[i], s, m.Diag[i])
	}
	for i := range m.Upper {
		linalg.Scale(m.Upper[i], s, m.Upper[i])
		linalg.Scale(m.Lower[i], s, m.Lower[i])
	}
}

// AXPY performs m += s·other blockwise. Panics on shape mismatch.
func (m *Matrix) AXPY(s complex128, other *Matrix) {
	if m.NB != other.NB {
		panic(fmt.Sprintf("blocktri: AXPY block-count mismatch %d vs %d", m.NB, other.NB))
	}
	for i := range m.Diag {
		linalg.AXPY(m.Diag[i], s, other.Diag[i])
	}
	for i := range m.Upper {
		linalg.AXPY(m.Upper[i], s, other.Upper[i])
		linalg.AXPY(m.Lower[i], s, other.Lower[i])
	}
}

// NNZDense returns the number of entries a dense representation would hold.
func (m *Matrix) NNZDense() int64 {
	n := int64(m.Dim())
	return n * n
}

// NNZBlocks returns the number of entries actually stored.
func (m *Matrix) NNZBlocks() int64 {
	var n int64
	for i := 0; i < m.NB; i++ {
		s := int64(m.Sizes[i])
		n += s * s
		if i+1 < m.NB {
			n += 2 * s * int64(m.Sizes[i+1])
		}
	}
	return n
}

func placeBlock(dst *linalg.Matrix, b *linalg.Matrix, r0, c0 int) {
	for i := 0; i < b.Rows; i++ {
		copy(dst.Data[(r0+i)*dst.Cols+c0:(r0+i)*dst.Cols+c0+b.Cols], b.Row(i))
	}
}

// ExtractBlock copies the (r0..r0+rows, c0..c0+cols) window of a dense
// matrix into a new Matrix — the inverse of Dense for validation.
func ExtractBlock(src *linalg.Matrix, r0, c0, rows, cols int) *linalg.Matrix {
	out := linalg.New(rows, cols)
	for i := 0; i < rows; i++ {
		copy(out.Row(i), src.Data[(r0+i)*src.Cols+c0:(r0+i)*src.Cols+c0+cols])
	}
	return out
}
