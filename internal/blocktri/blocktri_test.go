package blocktri

import (
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

func randomBT(rng *rand.Rand, sizes []int) *Matrix {
	m := New(sizes)
	fill := func(b *linalg.Matrix) {
		for i := range b.Data {
			b.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
	}
	for i := range m.Diag {
		fill(m.Diag[i])
	}
	for i := range m.Upper {
		fill(m.Upper[i])
		fill(m.Lower[i])
	}
	return m
}

func TestNewShapes(t *testing.T) {
	m := New([]int{2, 3, 4})
	if m.NB != 3 || m.Dim() != 9 {
		t.Fatalf("NB=%d Dim=%d", m.NB, m.Dim())
	}
	if m.Upper[0].Rows != 2 || m.Upper[0].Cols != 3 {
		t.Fatal("Upper[0] wrong shape")
	}
	if m.Lower[1].Rows != 4 || m.Lower[1].Cols != 3 {
		t.Fatal("Lower[1] wrong shape")
	}
	if m.Offset(2) != 5 {
		t.Fatalf("Offset(2) = %d", m.Offset(2))
	}
}

func TestUniform(t *testing.T) {
	m := Uniform(4, 3)
	if m.Dim() != 12 || len(m.Upper) != 3 {
		t.Fatal("Uniform shape wrong")
	}
}

func TestDenseScatter(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randomBT(rng, []int{2, 3, 2})
	d := m.Dense()
	// Diagonal block 1 occupies rows/cols 2..4.
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if d.At(2+i, 2+j) != m.Diag[1].At(i, j) {
				t.Fatal("diag block misplaced")
			}
		}
	}
	// Upper[0] couples block 0 (rows 0..1) to block 1 (cols 2..4).
	if d.At(0, 2) != m.Upper[0].At(0, 0) {
		t.Fatal("upper block misplaced")
	}
	if d.At(2, 0) != m.Lower[0].At(0, 0) {
		t.Fatal("lower block misplaced")
	}
	// Far blocks (block 0 vs block 2, two slabs apart) are zero.
	if d.At(0, 5) != 0 || d.At(5, 0) != 0 || d.At(1, 6) != 0 {
		t.Fatal("out-of-band entries should be zero")
	}
}

func TestCloneIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randomBT(rng, []int{2, 2})
	c := m.Clone()
	c.Diag[0].Set(0, 0, 999)
	if m.Diag[0].At(0, 0) == 999 {
		t.Fatal("Clone aliases blocks")
	}
}

func TestHermitianCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomBT(rng, []int{3, 3, 3})
	// Make it Hermitian explicitly.
	for i := range m.Diag {
		linalg.Hermitize(m.Diag[i], m.Diag[i])
	}
	for i := range m.Upper {
		m.Lower[i] = m.Upper[i].H()
	}
	if !m.Hermitian(1e-14) {
		t.Fatal("explicitly hermitized matrix should pass")
	}
	m.Lower[0].Set(0, 0, m.Lower[0].At(0, 0)+1)
	if m.Hermitian(1e-14) {
		t.Fatal("perturbed matrix should fail Hermitian check")
	}
	// The dense scatter of a Hermitian block-tridiagonal must be Hermitian.
	m.Lower[0].Set(0, 0, m.Lower[0].At(0, 0)-1)
	d := m.Dense()
	if linalg.MaxDiff(d, d.H()) > 1e-14 {
		t.Fatal("dense form not Hermitian")
	}
}

func TestScaleAXPY(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := randomBT(rng, []int{2, 3})
	orig := m.Clone()
	m.Scale(2)
	m.AXPY(-2, orig)
	if m.Dense().FrobNorm() > 1e-13 {
		t.Fatal("2·M − 2·M should vanish")
	}
}

func TestNNZ(t *testing.T) {
	m := Uniform(3, 2)
	if m.NNZDense() != 36 {
		t.Fatalf("NNZDense = %d", m.NNZDense())
	}
	// 3 diag 2x2 + 2×2 off-diag 2x2 = 12 + 16 = 28.
	if m.NNZBlocks() != 28 {
		t.Fatalf("NNZBlocks = %d", m.NNZBlocks())
	}
}

func TestExtractBlockInverseOfDense(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randomBT(rng, []int{2, 3, 2})
	d := m.Dense()
	got := ExtractBlock(d, m.Offset(1), m.Offset(1), 3, 3)
	if linalg.MaxDiff(got, m.Diag[1]) != 0 {
		t.Fatal("ExtractBlock does not invert Dense placement")
	}
	got = ExtractBlock(d, m.Offset(0), m.Offset(1), 2, 3)
	if linalg.MaxDiff(got, m.Upper[0]) != 0 {
		t.Fatal("ExtractBlock upper mismatch")
	}
}
