// Package core is the top-level API of the quantum transport library — a
// facade over the device builder, the NEGF solver, the SSE kernels and the
// distributed decompositions, mirroring how the paper's DaCe OMEN exposes
// one entry point for a full electro-thermal simulation.
//
// A minimal simulation is three lines:
//
//	sim, _ := core.NewSimulation(core.Config{Atoms: 24, Slabs: 6, Orbitals: 2})
//	result, _ := sim.Run()
//	fmt.Println(result.Current, result.MaxTemperature)
//
// The zero Config is filled with validated defaults; every knob of the
// underlying packages remains reachable through the Device and Solver
// fields for advanced use.
package core

import (
	"errors"
	"fmt"

	"repro/internal/bc"
	"repro/internal/device"
	"repro/internal/negf"
	"repro/internal/sse"
)

// Precision selects the SSE arithmetic (§5.4).
type Precision int

const (
	// Double runs the SSE phase entirely in complex128.
	Double Precision = iota
	// Mixed quantizes the SSE inputs to emulated binary16 with dynamic
	// normalization and accumulates in double precision.
	Mixed
)

// KernelChoice selects the SSE schedule.
type KernelChoice int

const (
	// DataCentric is the transformed kernel (map fission + SBSMM), the
	// paper's contribution. Default.
	DataCentric KernelChoice = iota
	// Baseline is the original OMEN-style 8-deep loop nest.
	Baseline
)

// Config describes a simulation. Zero fields take defaults.
type Config struct {
	Atoms    int // total atoms (default 24)
	Slabs    int // block-tridiagonal slabs (default 6)
	Orbitals int // orbitals per atom (default 2)

	MomentumPoints int     // Nkz = Nqz (default 3)
	EnergyPoints   int     // NE (default 24)
	PhononModes    int     // Nω (default 4)
	Bias           float64 // Vds in eV (default 0.3)
	Temperature    float64 // contact temperature in K (default 300)
	Coupling       float64 // electron-phonon strength (default 0.08)
	Seed           uint64  // structure seed (default 0x5eed)

	Kernel        KernelChoice
	Precision     Precision
	MaxIterations int     // self-consistency cap (default 25)
	Tolerance     float64 // relative current change (default 1e-5)
	CacheBoundary bool    // cache boundary conditions across iterations (default true via NewSimulation)

	noBoundaryCacheSet bool
}

// applyDefaults fills zero fields.
func (c *Config) applyDefaults() {
	if c.Atoms == 0 {
		c.Atoms = 24
	}
	if c.Slabs == 0 {
		c.Slabs = 6
	}
	if c.Orbitals == 0 {
		c.Orbitals = 2
	}
	if c.MomentumPoints == 0 {
		c.MomentumPoints = 3
	}
	if c.EnergyPoints == 0 {
		c.EnergyPoints = 24
	}
	if c.PhononModes == 0 {
		c.PhononModes = 4
	}
	if c.Bias == 0 {
		c.Bias = 0.3
	}
	if c.Temperature == 0 {
		c.Temperature = 300
	}
	if c.Coupling == 0 {
		c.Coupling = 0.08
	}
	if c.Seed == 0 {
		c.Seed = 0x5eed
	}
	if c.MaxIterations == 0 {
		c.MaxIterations = 25
	}
	if c.Tolerance == 0 {
		c.Tolerance = 1e-5
	}
	if !c.noBoundaryCacheSet {
		c.CacheBoundary = true
	}
}

// Simulation owns a built device and a configured solver.
type Simulation struct {
	Config Config
	Device *device.Device
	Solver *negf.Solver
}

// NewSimulation validates the configuration, builds the synthetic device
// and prepares the solver.
func NewSimulation(cfg Config) (*Simulation, error) {
	cfg.applyDefaults()
	p := device.TestParams(cfg.Atoms, cfg.Slabs, cfg.Orbitals)
	p.Nkz = cfg.MomentumPoints
	p.NE = cfg.EnergyPoints
	p.Nomega = cfg.PhononModes
	p.Vds = cfg.Bias
	p.TC = cfg.Temperature
	p.Coupling = cfg.Coupling
	p.Seed = cfg.Seed
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	dev, err := device.Build(p)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	opts := negf.DefaultOptions()
	opts.MaxIter = cfg.MaxIterations
	opts.Tol = cfg.Tolerance
	if !cfg.CacheBoundary {
		opts.CacheMode = bc.NoCache
	}
	switch {
	case cfg.Precision == Mixed:
		opts.Kernel = sse.Mixed{Normalize: true}
	case cfg.Kernel == Baseline:
		opts.Kernel = sse.OMEN{}
	default:
		opts.Kernel = sse.DaCe{}
	}
	return &Simulation{Config: cfg, Device: dev, Solver: negf.New(dev, opts)}, nil
}

// Result summarizes a converged (or capped) simulation.
type Result struct {
	// Converged reports whether the self-consistent loop reached the
	// configured tolerance within MaxIterations.
	Converged  bool
	Iterations int
	// Current is the source-contact electron current (a.u.).
	Current float64
	// MaxTemperature is the hottest lattice temperature (K) and HotSpot
	// its slab index — the Joule-heating signature of Fig. 1(d).
	MaxTemperature float64
	HotSpot        int
	// EnergyBalance is phonon gain / electron loss; 1 means perfect
	// conservation between the two baths.
	EnergyBalance float64
	// Observables exposes the full per-slab/per-atom detail.
	Observables *negf.Observables
}

// Run executes the self-consistent GF↔SSE loop and summarizes it.
func (s *Simulation) Run() (*Result, error) {
	obs, err := s.Solver.Run()
	converged := err == nil
	if err != nil && !errors.Is(err, negf.ErrNotConverged) {
		return nil, err
	}
	r := &Result{
		Converged:   converged,
		Iterations:  len(s.Solver.IterTrace),
		Current:     obs.CurrentL,
		Observables: obs,
	}
	temps := obs.SlabTemperature(s.Device)
	for i, t := range temps {
		if t > r.MaxTemperature {
			r.MaxTemperature, r.HotSpot = t, i
		}
	}
	if obs.ElectronEnergyLoss != 0 {
		r.EnergyBalance = obs.PhononEnergyGain / obs.ElectronEnergyLoss
	}
	return r, nil
}

// Ballistic solves the Green's functions once with zero scattering
// self-energies (the coherent-transport limit) and returns the
// observables without running the self-consistent loop.
func (s *Simulation) Ballistic() (*negf.Observables, error) {
	if err := s.Solver.GFPhase(); err != nil {
		return nil, err
	}
	return &s.Solver.Obs, nil
}
