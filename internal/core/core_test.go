package core

import (
	"math"
	"testing"
)

func TestDefaultsProduceRunnableSimulation(t *testing.T) {
	sim, err := NewSimulation(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if sim.Config.Atoms != 24 || sim.Config.Slabs != 6 {
		t.Fatalf("defaults not applied: %+v", sim.Config)
	}
	obs, err := sim.Ballistic()
	if err != nil {
		t.Fatal(err)
	}
	if obs.CurrentL <= 0 {
		t.Fatal("default bias should drive current")
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	if _, err := NewSimulation(Config{Atoms: 25, Slabs: 6}); err == nil {
		t.Fatal("indivisible atom count must be rejected")
	}
	if _, err := NewSimulation(Config{Slabs: 2}); err == nil {
		t.Fatal("too few slabs must be rejected")
	}
}

func TestRunSummarizesPhysics(t *testing.T) {
	sim, err := NewSimulation(Config{
		Atoms: 16, Slabs: 4, EnergyPoints: 20, PhononModes: 3,
		Coupling: 0.12, MaxIterations: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("expected convergence, got %d iterations", res.Iterations)
	}
	if res.Current <= 0 {
		t.Fatal("current should be positive under forward bias")
	}
	if res.MaxTemperature <= sim.Config.Temperature {
		t.Fatalf("Joule heating should raise the lattice above %g K, got %g",
			sim.Config.Temperature, res.MaxTemperature)
	}
	if res.HotSpot == 0 || res.HotSpot == sim.Config.Slabs-1 {
		t.Fatalf("hot spot should be interior, got slab %d", res.HotSpot)
	}
	if res.EnergyBalance < 0.5 || res.EnergyBalance > 1.5 {
		t.Fatalf("energy balance %g far from unity", res.EnergyBalance)
	}
}

func TestKernelChoicesAgree(t *testing.T) {
	run := func(k KernelChoice) float64 {
		sim, err := NewSimulation(Config{
			Atoms: 12, Slabs: 3, EnergyPoints: 12, PhononModes: 3,
			Kernel: k, MaxIterations: 4, Tolerance: 1e-12,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Current
	}
	a, b := run(DataCentric), run(Baseline)
	if rel := math.Abs(a-b) / math.Abs(a); rel > 1e-9 {
		t.Fatalf("kernel choice changed the physics: %g vs %g", a, b)
	}
}

func TestMixedPrecisionClose(t *testing.T) {
	base := Config{Atoms: 12, Slabs: 3, EnergyPoints: 12, PhononModes: 3, MaxIterations: 6}
	simD, err := NewSimulation(base)
	if err != nil {
		t.Fatal(err)
	}
	resD, err := simD.Run()
	if err != nil {
		t.Fatal(err)
	}
	cfgM := base
	cfgM.Precision = Mixed
	simM, err := NewSimulation(cfgM)
	if err != nil {
		t.Fatal(err)
	}
	resM, err := simM.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(resM.Current-resD.Current) / math.Abs(resD.Current); rel > 1e-3 {
		t.Fatalf("mixed precision drifted by %g", rel)
	}
}

func TestBoundaryCacheToggle(t *testing.T) {
	cfg := Config{Atoms: 12, Slabs: 3, EnergyPoints: 12, PhononModes: 3, MaxIterations: 3}
	simA, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.CacheBoundary = false
	cfg2.noBoundaryCacheSet = true
	simB, err := NewSimulation(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	ra, _ := simA.Run()
	rb, _ := simB.Run()
	if ra.Current != rb.Current {
		t.Fatalf("boundary caching changed the physics: %g vs %g", ra.Current, rb.Current)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	mk := func() float64 {
		sim, err := NewSimulation(Config{Atoms: 12, Slabs: 3, EnergyPoints: 12, PhononModes: 3, MaxIterations: 3})
		if err != nil {
			t.Fatal(err)
		}
		res, _ := sim.Run()
		return res.Current
	}
	if mk() != mk() {
		t.Fatal("same config must reproduce bit-identical results")
	}
}
