package report

import (
	"encoding/csv"
	"fmt"
	"io"

	"repro/internal/dist"
	"repro/internal/model"
)

// Meta describes the base workload of a scaling study.
type Meta struct {
	Atoms          int    `json:"atoms"`
	Slabs          int    `json:"slabs"`
	Orbitals       int    `json:"orbitals"`
	MomentumPoints int    `json:"momentum_points"`
	EnergyPoints   int    `json:"energy_points"`
	PhononModes    int    `json:"phonon_modes"`
	Iterations     int    `json:"iterations"`
	Workers        int    `json:"workers,omitempty"`
	Precision      string `json:"precision"`
}

// ScaleRow is one world size of a strong/weak sweep, aggregated from
// the unified per-iteration telemetry (see PerIter).
type ScaleRow struct {
	Sweep         string  `json:"sweep"`
	P             int     `json:"p"`
	Ta            int     `json:"ta"`
	TE            int     `json:"te"`
	Precision     string  `json:"precision"`
	Current       float64 `json:"current"`
	SSEMeasBytes  int64   `json:"sse_meas_bytes_per_iter"`
	SSEModelBytes int64   `json:"sse_model_bytes_per_iter"`
	Ratio         float64 `json:"meas_over_model"`
	ReduceBytes   int64   `json:"reduce_bytes_per_iter"`
	WallNs        int64   `json:"wall_ns_per_iter"`
	RelVsSeq      float64 `json:"rel_vs_sequential"` // -1 when not verified
	// Mixed-precision comparison columns (zero under fp64): the fp64
	// baseline's measured exchange volume at the identical
	// decomposition, the measured fp64/mixed volume reduction, and the
	// worst per-iteration Σ≷/Π≷ quantization deviation from the probe.
	FP64SSEBytes int64   `json:"fp64_sse_bytes_per_iter,omitempty"`
	VolumeRatio  float64 `json:"fp64_over_mixed_volume,omitempty"`
	SigmaErr     float64 `json:"max_sigma_qerr,omitempty"`
}

// OverlapRow is one world size of the schedule comparison.
type OverlapRow struct {
	P              int     `json:"p"`
	Workers        int     `json:"workers"`
	PhasesWallNs   int64   `json:"phases_wall_ns_per_iter"`
	OverlapWallNs  int64   `json:"overlap_wall_ns_per_iter"`
	Speedup        float64 `json:"speedup"`
	ComputeNs      int64   `json:"rank0_compute_ns_per_iter"`
	CommNs         int64   `json:"rank0_comm_ns_per_iter"`
	StreamPredGain float64 `json:"stream_pred_gain"` // predicted serial/overlapped
	MaxRelDiff     float64 `json:"max_rel_current_diff"`
}

// Scaling is the full report of a distsim-style study.
type Scaling struct {
	Meta    Meta         `json:"meta"`
	Strong  []ScaleRow   `json:"strong,omitempty"`
	Weak    []ScaleRow   `json:"weak,omitempty"`
	Overlap []OverlapRow `json:"overlap,omitempty"`
	// AlltoallvPerIter is the measured collective count per iteration
	// (4 for the DaCe exchange, §6.1.2).
	AlltoallvPerIter int64 `json:"alltoallv_per_iter,omitempty"`
}

// Text renders the human tables (the former distsim text mode).
func (s *Scaling) Text(w io.Writer) error {
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	scale := func(name string, rows []ScaleRow) {
		if len(rows) == 0 {
			return
		}
		pf("── %s scaling (%s) ──\n", name, s.Meta.Precision)
		pf("   base: Na=%d bnum=%d Norb=%d Nkz=%d NE=%d Nω=%d, %d iterations\n",
			s.Meta.Atoms, s.Meta.Slabs, s.Meta.Orbitals,
			s.Meta.MomentumPoints, s.Meta.EnergyPoints, s.Meta.PhononModes, s.Meta.Iterations)
		pf("   %2s  %5s  %14s  %13s  %13s  %6s  %11s  %8s\n",
			"P", "ta×te", "current", "SSE meas/it", "SSE model/it", "ratio", "reduce/it", "time/it")
		for _, r := range rows {
			pf("   %2d  %2d×%-2d  %14.6e  %13s  %13s  %6.3f  %11s  %8s\n",
				r.P, r.Ta, r.TE, r.Current,
				FmtBytes(r.SSEMeasBytes), FmtBytes(r.SSEModelBytes), r.Ratio,
				FmtBytes(r.ReduceBytes), durms(r.WallNs))
			if mixed := r.Precision == "mixed"; mixed {
				if r.FP64SSEBytes > 0 {
					pf("       vs fp64 exchange: %s → %s per iteration (%.2fx less); max Σ qerr %.2e\n",
						FmtBytes(r.FP64SSEBytes), FmtBytes(r.SSEMeasBytes), r.VolumeRatio, r.SigmaErr)
				} else {
					pf("       vs fp64 exchange: no off-rank traffic at P=1; max Σ qerr %.2e\n", r.SigmaErr)
				}
			}
			if r.RelVsSeq >= 0 {
				tol, status := 1e-12, "ok"
				if r.Precision == "mixed" {
					tol = dist.MixedCurrentTol
				}
				if r.RelVsSeq > tol {
					status = "MISMATCH"
				}
				pf("       vs sequential fp64: rel %.2e (%s, tol %.0e)\n", r.RelVsSeq, status, tol)
			}
		}
		pf("   MPI collectives per iteration: %d Alltoallv measured, %d modelled (§6.1.2)\n",
			s.AlltoallvPerIter, model.DaCeMPIInvocations())
		pf("   note: the model charges each rank its full tile halo, including the\n")
		pf("   locally owned share; the runtime counts only off-rank bytes, so the\n")
		pf("   measured/modelled ratio rises toward 1 as P grows.\n\n")
	}
	scale("strong", s.Strong)
	scale("weak", s.Weak)
	if len(s.Overlap) > 0 {
		pf("── overlap vs phases (workers=%d, %s) ──\n", s.Meta.Workers, s.Meta.Precision)
		pf("   %2s  %10s  %10s  %7s  %12s  %9s  %9s\n",
			"P", "phases/it", "overlap/it", "speedup", "stream pred", "comm/comp", "max rel")
		for _, r := range s.Overlap {
			frac := 0.0
			if r.ComputeNs > 0 {
				frac = float64(r.CommNs) / float64(r.ComputeNs)
			}
			pf("   %2d  %10s  %10s  %6.3fx  %11.3fx  %9.3f  %9.2e\n",
				r.P, durms(r.PhasesWallNs), durms(r.OverlapWallNs),
				r.Speedup, r.StreamPredGain, frac, r.MaxRelDiff)
		}
		pf("   speedup = phases/overlap makespan; stream pred = §7.1.3 pipelining bound\n")
		pf("   from the measured comm/compute split; max rel = worst per-iteration\n")
		pf("   current difference between the two schedules (must be ~1e-16).\n\n")
	}
	return err
}

// CSV renders the machine-readable rows: one header+rows block for the
// strong/weak sweeps, one for the overlap comparison.
func (s *Scaling) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if len(s.Strong)+len(s.Weak) > 0 {
		if err := cw.Write([]string{"sweep", "p", "ta", "te", "precision", "current",
			"sse_meas_bytes_per_iter", "sse_model_bytes_per_iter", "meas_over_model",
			"reduce_bytes_per_iter", "wall_ns_per_iter", "rel_vs_sequential",
			"fp64_sse_bytes_per_iter", "fp64_over_mixed_volume", "max_sigma_qerr"}); err != nil {
			return err
		}
		for _, r := range append(append([]ScaleRow(nil), s.Strong...), s.Weak...) {
			if err := cw.Write([]string{r.Sweep, itoa(r.P), itoa(r.Ta), itoa(r.TE), r.Precision,
				ftoa(r.Current), itoa64(r.SSEMeasBytes), itoa64(r.SSEModelBytes),
				ftoa(r.Ratio), itoa64(r.ReduceBytes), itoa64(r.WallNs), ftoa(r.RelVsSeq),
				itoa64(r.FP64SSEBytes), ftoa(r.VolumeRatio), ftoa(r.SigmaErr)}); err != nil {
				return err
			}
		}
	}
	if len(s.Overlap) > 0 {
		if err := cw.Write([]string{"p", "workers", "phases_wall_ns_per_iter",
			"overlap_wall_ns_per_iter", "speedup", "rank0_compute_ns_per_iter",
			"rank0_comm_ns_per_iter", "stream_pred_gain", "max_rel_current_diff"}); err != nil {
			return err
		}
		for _, r := range s.Overlap {
			if err := cw.Write([]string{itoa(r.P), itoa(r.Workers), itoa64(r.PhasesWallNs),
				itoa64(r.OverlapWallNs), ftoa(r.Speedup), itoa64(r.ComputeNs),
				itoa64(r.CommNs), ftoa(r.StreamPredGain), ftoa(r.MaxRelDiff)}); err != nil {
				return err
			}
		}
	}
	return nil
}
