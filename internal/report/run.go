package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"

	"repro/internal/device"
	"repro/internal/qt"
)

// DeviceInfo is the structural header of a solver run.
type DeviceInfo struct {
	Atoms          int     `json:"atoms"`
	Slabs          int     `json:"slabs"`
	Orbitals       int     `json:"orbitals"`
	MaxNeighbours  int     `json:"max_neighbours"`
	MomentumPoints int     `json:"momentum_points"`
	EnergyPoints   int     `json:"energy_points"`
	PhononModes    int     `json:"phonon_modes"`
	Bias           float64 `json:"bias"`
	Temperature    float64 `json:"temperature"`
}

// NewDeviceInfo extracts the structural header of a built device — the
// shared opening block of the Run and Ensemble reports.
func NewDeviceInfo(dev *device.Device) DeviceInfo {
	p := dev.P
	return DeviceInfo{
		Atoms: p.Na, Slabs: p.Bnum, Orbitals: p.Norb, MaxNeighbours: dev.MaxNb(),
		MomentumPoints: p.Nkz, EnergyPoints: p.NE, PhononModes: p.Nomega,
		Bias: p.Vds, Temperature: p.TC,
	}
}

// SlabRow is the transport-direction profile of one slab.
type SlabRow struct {
	Slab          int     `json:"slab"`
	Current       float64 `json:"current"`        // I(el) through the left interface
	EnergyCurrent float64 `json:"energy_current"` // JE(el)
	PhononEnergy  float64 `json:"phonon_energy"`  // JQ(ph)
	Temperature   float64 `json:"temperature_k"`
}

// Run is the report of one facade solve — the structured core of the
// former qtsim output, keyed on the unified telemetry schema.
type Run struct {
	Device   DeviceInfo `json:"device"`
	Kernel   string     `json:"kernel"`
	Ranks    int        `json:"ranks"` // 0 = sequential
	Schedule string     `json:"schedule,omitempty"`
	// Plan is the resolved execution plan (Simulation.PlanString), e.g.
	// "pipeline w=2 d=2 [auto]" — schedule, workers, pipeline depth and
	// the [auto] marker when the plan came from the cost-model autotuner.
	// Empty for sequential runs.
	Plan      string         `json:"plan,omitempty"`
	Converged bool           `json:"converged"`
	WallNs    int64          `json:"wall_ns"`
	Trace     []qt.IterStats `json:"trace"`

	CurrentL             float64 `json:"current_l"`
	CurrentR             float64 `json:"current_r"`
	EnergyCurrentL       float64 `json:"energy_current_l"`
	PhononEnergyCurrentL float64 `json:"phonon_energy_current_l"`
	ElectronEnergyLoss   float64 `json:"electron_energy_loss"`
	PhononEnergyGain     float64 `json:"phonon_energy_gain"`
	MaxTemperature       float64 `json:"max_temperature"`
	HotSpot              int     `json:"hot_spot"`

	Profile []SlabRow `json:"profile"`
}

// Text renders the human report: convergence trace, contact currents,
// energy balance, and the transport-direction profile.
func (r *Run) Text(w io.Writer) error {
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	solver := "sequential"
	if r.Ranks > 0 {
		// The resolved plan subsumes the bare schedule name when known.
		label := r.Schedule
		if r.Plan != "" {
			label = r.Plan
		}
		solver = fmt.Sprintf("distributed P=%d (%s)", r.Ranks, label)
	}
	pf("device: Na=%d bnum=%d Norb=%d Nb<=%d | grid: Nkz=%d NE=%d Nω=%d | Vds=%.2f V, T=%g K\n",
		r.Device.Atoms, r.Device.Slabs, r.Device.Orbitals, r.Device.MaxNeighbours,
		r.Device.MomentumPoints, r.Device.EnergyPoints, r.Device.PhononModes,
		r.Device.Bias, r.Device.Temperature)
	pf("solver: %s, kernel: %s\n\n", solver, r.Kernel)
	if r.Converged {
		pf("converged in %d iterations (%.2fs)\n", len(r.Trace), float64(r.WallNs)/1e9)
	} else {
		pf("NOT converged after %d iterations (%.2fs)\n", len(r.Trace), float64(r.WallNs)/1e9)
	}

	pf("\nconvergence trace (current, relative change):\n")
	for _, it := range r.Trace {
		pf("  iter %2d: I = %.8g   Δ = %.2e   (SSE matmuls %d", it.Iter+1, it.Current, it.Residual, it.SSE.MatMuls)
		if it.SSEBytes > 0 {
			pf(", exchange %s", FmtBytes(it.SSEBytes))
		}
		if it.SigmaErr > 0 {
			pf(", Σ qerr %.1e", it.SigmaErr)
		}
		pf(")\n")
	}

	balance := 0.0
	if r.CurrentL != 0 {
		balance = math.Abs(r.CurrentL+r.CurrentR) / math.Abs(r.CurrentL)
	}
	pf("\ncontact currents:   IL = %.6g, IR = %.6g  (balance %.1e)\n", r.CurrentL, r.CurrentR, balance)
	pf("energy currents:    source %.6g (electron), %.6g (phonon)\n", r.EnergyCurrentL, r.PhononEnergyCurrentL)
	pf("energy balance:     electron loss %.6g vs phonon gain %.6g\n", r.ElectronEnergyLoss, r.PhononEnergyGain)
	pf("hot spot:           %.1f K at slab %d\n", r.MaxTemperature, r.HotSpot)

	pf("\nprofile along transport direction:\n")
	pf("  %-6s %-12s %-12s %-12s %-12s\n", "slab", "I(el)", "JE(el)", "JQ(ph)", "T [K]")
	for _, row := range r.Profile {
		ic, je, jq := "-", "-", "-"
		if row.Slab < len(r.Profile)-1 {
			ic = fmt.Sprintf("%.5g", row.Current)
			je = fmt.Sprintf("%.5g", row.EnergyCurrent)
			jq = fmt.Sprintf("%.5g", row.PhononEnergy)
		}
		pf("  %-6d %-12s %-12s %-12s %-12.1f\n", row.Slab, ic, je, jq, row.Temperature)
	}
	return err
}

// CSV renders two blocks: the per-iteration trace and the slab profile.
func (r *Run) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"iter", "current", "residual", "el_energy_loss",
		"ph_energy_gain", "sse_matmuls", "sse_bytes", "reduce_bytes", "sigma_err",
		"wall_ns", "compute_ns", "comm_ns"}); err != nil {
		return err
	}
	for _, it := range r.Trace {
		if err := cw.Write([]string{itoa(it.Iter), ftoa(it.Current), ftoa(it.Residual),
			ftoa(it.ElEnergyLoss), ftoa(it.PhEnergyGain), itoa64(it.SSE.MatMuls),
			itoa64(it.SSEBytes), itoa64(it.ReduceBytes), ftoa(it.SigmaErr),
			itoa64(it.WallNs), itoa64(it.ComputeNs), itoa64(it.CommNs)}); err != nil {
			return err
		}
	}
	if err := cw.Write([]string{"slab", "current", "energy_current", "phonon_energy", "temperature_k"}); err != nil {
		return err
	}
	for _, row := range r.Profile {
		if err := cw.Write([]string{itoa(row.Slab), ftoa(row.Current), ftoa(row.EnergyCurrent),
			ftoa(row.PhononEnergy), ftoa(row.Temperature)}); err != nil {
			return err
		}
	}
	return nil
}

// NewRun assembles the report of a finished facade run.
func NewRun(sim *qt.Simulation, res *qt.Result, kernel string, wallNs int64) *Run {
	p := sim.Device.P
	r := &Run{
		Device:    NewDeviceInfo(sim.Device),
		Kernel:    kernel,
		Ranks:     sim.Ranks(),
		Plan:      sim.PlanString(),
		Converged: res.Converged,
		WallNs:    wallNs,
		Trace:     res.Trace,

		MaxTemperature: res.MaxTemperature,
		HotSpot:        res.HotSpot,
	}
	obs := res.Observables
	if obs == nil {
		return r
	}
	r.CurrentL, r.CurrentR = obs.CurrentL, obs.CurrentR
	r.EnergyCurrentL = obs.EnergyCurrentL
	r.PhononEnergyCurrentL = obs.PhononEnergyCurrentL
	r.ElectronEnergyLoss = obs.ElectronEnergyLoss
	r.PhononEnergyGain = obs.PhononEnergyGain
	temps := obs.SlabTemperature(sim.Device)
	for i := 0; i < p.Bnum; i++ {
		row := SlabRow{Slab: i, Temperature: temps[i]}
		if i < len(obs.InterfaceCurrent) {
			row.Current = obs.InterfaceCurrent[i]
			row.EnergyCurrent = obs.InterfaceEnergyCurrent[i]
			row.PhononEnergy = obs.PhononInterfaceEnergy[i]
		}
		r.Profile = append(r.Profile, row)
	}
	return r
}
