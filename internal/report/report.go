// Package report renders experiment results — the qt facade's unified
// per-iteration telemetry schema and the aggregate rows of the scaling
// studies — as human tables (text), machine-readable JSON, or CSV. The
// encoders were extracted from cmd/distsim so every driver shares one
// set of formats keyed on one schema.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/qt"
)

// Format selects an output encoding.
type Format int

const (
	Text Format = iota
	JSON
	CSV
)

func (f Format) String() string {
	switch f {
	case JSON:
		return "json"
	case CSV:
		return "csv"
	default:
		return "text"
	}
}

// Formats lists the supported encodings in flag spelling.
var Formats = []string{"text", "json", "csv"}

// ContentType returns the HTTP media type of the encoding — the
// Content-Type header qtd pairs with Write when a report is a response
// body.
func (f Format) ContentType() string {
	switch f {
	case JSON:
		return "application/json"
	case CSV:
		return "text/csv"
	default:
		return "text/plain; charset=utf-8"
	}
}

// SSE writes one server-sent event frame, "event: <name>" with a
// JSON-encoded data line — the wire form of qtd's live telemetry stream
// (one frame per IterStats, then a terminal frame with the summary).
func SSE(w io.Writer, event string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	return err
}

// ParseFormat maps the command-line spelling to a Format.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "text", "":
		return Text, nil
	case "json":
		return JSON, nil
	case "csv":
		return CSV, nil
	}
	return Text, fmt.Errorf("report: unknown format %q (want text, json, or csv)", s)
}

// Encoder is a report that renders itself as text and CSV; JSON comes
// from the value's own marshalling.
type Encoder interface {
	Text(w io.Writer) error
	CSV(w io.Writer) error
}

// Write renders the report in the requested format.
func Write(w io.Writer, f Format, r Encoder) error {
	switch f {
	case JSON:
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(r)
	case CSV:
		return r.CSV(w)
	default:
		return r.Text(w)
	}
}

// PerIterAgg aggregates a run's trace into per-iteration means (and the
// worst quantization deviation) — the normalized view the scaling rows
// report.
type PerIterAgg struct {
	SSEBytes    int64
	ReduceBytes int64
	WallNs      int64
	ComputeNs   int64
	CommNs      int64
	MaxSigmaErr float64
}

// PerIter reduces a unified-schema trace into per-iteration averages.
func PerIter(trace []qt.IterStats) PerIterAgg {
	var a PerIterAgg
	if len(trace) == 0 {
		return a
	}
	for _, it := range trace {
		a.SSEBytes += it.SSEBytes
		a.ReduceBytes += it.ReduceBytes
		a.WallNs += it.WallNs
		a.ComputeNs += it.ComputeNs
		a.CommNs += it.CommNs
		if it.SigmaErr > a.MaxSigmaErr {
			a.MaxSigmaErr = it.SigmaErr
		}
	}
	n := int64(len(trace))
	a.SSEBytes /= n
	a.ReduceBytes /= n
	a.WallNs /= n
	a.ComputeNs /= n
	a.CommNs /= n
	return a
}

// FmtBytes renders a byte count with binary-prefix units.
func FmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

func itoa(v int) string     { return strconv.Itoa(v) }
func itoa64(v int64) string { return strconv.FormatInt(v, 10) }
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
func durms(ns int64) string { return time.Duration(ns).Round(time.Millisecond).String() }
