package report

import (
	"encoding/csv"
	"fmt"
	"io"
)

// Stat is the streaming summary of one scalar observable over an
// ensemble: Welford-reduced mean and unbiased sample variance
// (M2/(N−1); zero when N < 2), with the derived standard deviation and
// the 95% confidence half-width CI95 = 1.96·sqrt(Variance/N) on the
// mean under the normal approximation.
type Stat struct {
	N        int     `json:"n"`
	Mean     float64 `json:"mean"`
	Variance float64 `json:"variance"`
	Std      float64 `json:"std"`
	CI95     float64 `json:"ci95"`
	Min      float64 `json:"min"`
	Max      float64 `json:"max"`
}

// MemberRow is one disorder realization of an ensemble study: its index
// and derived seed, the headline observable, and (for service-side
// studies) the registry lineage — which run answered it and how.
type MemberRow struct {
	Index      int     `json:"index"`
	Seed       uint64  `json:"seed"`
	RunID      string  `json:"run_id,omitempty"`
	Current    float64 `json:"current"`
	Iterations int     `json:"iterations"`
	Converged  bool    `json:"converged"`
	CacheHit   bool    `json:"cache_hit,omitempty"`
	WarmStart  bool    `json:"warm_start,omitempty"`
	WallNs     int64   `json:"wall_ns,omitempty"`
}

// DOSRow is the ensemble statistics of the density of states at one
// energy grid point (the per-slab LDOS summed over the device).
type DOSRow struct {
	Energy float64 `json:"energy"`
	DOS    Stat    `json:"dos"`
}

// Ensemble is the report of an N-realization disorder study: per-member
// rows plus the Welford-reduced statistics of the terminal current and
// the DOS spectrum. It is the third report schema next to Run and
// Scaling, shared by the in-process ensemble.Study driver and the qtd
// /v1/ensembles endpoint.
type Ensemble struct {
	Device    DeviceInfo `json:"device"`
	Members   int        `json:"members"`
	Converged int        `json:"converged"`
	BaseSeed  uint64     `json:"base_seed"`
	WallNs    int64      `json:"wall_ns,omitempty"`

	Current Stat `json:"current"`
	// DOS is the per-energy statistics over the members that reported an
	// LDOS (DOSMembers of them; distributed members do not).
	DOS        []DOSRow `json:"dos,omitempty"`
	DOSMembers int      `json:"dos_members,omitempty"`

	MemberRows []MemberRow `json:"member_rows"`
}

// Text renders the human summary: device header, current statistics,
// member table, and the DOS spectrum.
func (e *Ensemble) Text(w io.Writer) error {
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	pf("device: Na=%d bnum=%d Norb=%d Nb<=%d | grid: Nkz=%d NE=%d Nω=%d | Vds=%.2f V, T=%g K\n",
		e.Device.Atoms, e.Device.Slabs, e.Device.Orbitals, e.Device.MaxNeighbours,
		e.Device.MomentumPoints, e.Device.EnergyPoints, e.Device.PhononModes,
		e.Device.Bias, e.Device.Temperature)
	pf("ensemble: %d realizations (base seed %d), %d converged (%.2fs)\n\n",
		e.Members, e.BaseSeed, e.Converged, float64(e.WallNs)/1e9)

	c := e.Current
	pf("current:  I = %.6g ± %.2g  (95%% CI, N=%d)\n", c.Mean, c.CI95, c.N)
	pf("          std %.3g, var %.3g, range [%.6g, %.6g]\n\n", c.Std, c.Variance, c.Min, c.Max)

	pf("members:\n")
	pf("  %-6s %-8s %-14s %-6s %-10s %s\n", "idx", "seed", "current", "iters", "converged", "source")
	for _, m := range e.MemberRows {
		src := "solved"
		switch {
		case m.CacheHit:
			src = "cache"
		case m.WarmStart:
			src = "warm"
		}
		if m.RunID != "" {
			src += " (" + m.RunID + ")"
		}
		pf("  %-6d %-8d %-14.6g %-6d %-10t %s\n", m.Index, m.Seed, m.Current, m.Iterations, m.Converged, src)
	}

	if len(e.DOS) > 0 {
		pf("\nDOS spectrum (over %d members):\n", e.DOSMembers)
		pf("  %-10s %-14s %-14s %-12s\n", "E [eV]", "mean", "ci95", "std")
		for _, row := range e.DOS {
			pf("  %-10.4f %-14.6g %-14.3g %-12.3g\n", row.Energy, row.DOS.Mean, row.DOS.CI95, row.DOS.Std)
		}
	}
	return err
}

// CSV renders two blocks: the member table and the DOS spectrum.
func (e *Ensemble) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"index", "seed", "run_id", "current", "iterations",
		"converged", "cache_hit", "warm_start", "wall_ns"}); err != nil {
		return err
	}
	for _, m := range e.MemberRows {
		if err := cw.Write([]string{itoa(m.Index), fmt.Sprintf("%d", m.Seed), m.RunID,
			ftoa(m.Current), itoa(m.Iterations), btoa(m.Converged), btoa(m.CacheHit),
			btoa(m.WarmStart), itoa64(m.WallNs)}); err != nil {
			return err
		}
	}
	if err := cw.Write([]string{"energy", "dos_mean", "dos_variance", "dos_std",
		"dos_ci95", "dos_min", "dos_max", "n"}); err != nil {
		return err
	}
	for _, row := range e.DOS {
		s := row.DOS
		if err := cw.Write([]string{ftoa(row.Energy), ftoa(s.Mean), ftoa(s.Variance),
			ftoa(s.Std), ftoa(s.CI95), ftoa(s.Min), ftoa(s.Max), itoa(s.N)}); err != nil {
			return err
		}
	}
	return nil
}

func btoa(b bool) string {
	if b {
		return "true"
	}
	return "false"
}
