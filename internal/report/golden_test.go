package report

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/qt"
	"repro/internal/sse"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// fixedTrace is a deterministic two-iteration trace in the unified
// schema, with every field populated.
func fixedTrace() []qt.IterStats {
	return []qt.IterStats{
		{
			Iter: 0, Current: 0.0686293798, Residual: 0,
			ElEnergyLoss: 1.06e-06, PhEnergyGain: 2.67e-06,
			SSE:      sse.Stats{MatMuls: 53136, Flops: 1.2e7, ScalarOps: 3.4e6, BytesMoved: 8.1e6},
			SSEBytes: 789504, ReduceBytes: 960, SigmaErr: 5.25e-04,
			WallNs: 62_000_000, ComputeNs: 41_000_000, CommNs: 9_000_000,
		},
		{
			Iter: 1, Current: 0.0686372562, Residual: 1.1475e-04,
			ElEnergyLoss: 1.59e-06, PhEnergyGain: 3.99e-06,
			SSE:      sse.Stats{MatMuls: 53136, Flops: 1.2e7, ScalarOps: 3.4e6, BytesMoved: 8.1e6},
			SSEBytes: 789504, ReduceBytes: 960, SigmaErr: 4.75e-04,
			WallNs: 58_000_000, ComputeNs: 40_000_000, CommNs: 8_000_000,
		},
	}
}

func fixedRun() *Run {
	return &Run{
		Device: DeviceInfo{
			Atoms: 12, Slabs: 3, Orbitals: 2, MaxNeighbours: 11,
			MomentumPoints: 3, EnergyPoints: 12, PhononModes: 3,
			Bias: 0.3, Temperature: 300,
		},
		Kernel: "dace", Ranks: 2, Schedule: "overlap", Plan: "overlap w=2",
		Converged: false, WallNs: 149_000_000,
		Trace: fixedTrace(),

		CurrentL: 0.0686372562, CurrentR: -0.0686372560,
		EnergyCurrentL: -0.00781947, PhononEnergyCurrentL: 3.33e-06,
		ElectronEnergyLoss: 1.59e-06, PhononEnergyGain: 3.99e-06,
		MaxTemperature: 301.5, HotSpot: 1,
		Profile: []SlabRow{
			{Slab: 0, Current: 0.08512, EnergyCurrent: -0.025488, PhononEnergy: -2.4735e-07, Temperature: 301.4},
			{Slab: 1, Current: 0.06745, EnergyCurrent: -0.0066699, PhononEnergy: 7.1507e-07, Temperature: 301.5},
			{Slab: 2, Temperature: 301.0},
		},
	}
}

func fixedScaling() *Scaling {
	return &Scaling{
		Meta: Meta{
			Atoms: 12, Slabs: 3, Orbitals: 2,
			MomentumPoints: 3, EnergyPoints: 8, PhononModes: 3,
			Iterations: 2, Workers: 2, Precision: "mixed",
		},
		Strong: []ScaleRow{
			{
				Sweep: "strong", P: 1, Ta: 1, TE: 1, Precision: "mixed",
				Current: 1.154413e-07, SSEMeasBytes: 0, SSEModelBytes: 846_721,
				Ratio: 0, ReduceBytes: 0, WallNs: 30_000_000, RelVsSeq: 0,
				SigmaErr: 5.2e-04,
			},
			{
				Sweep: "strong", P: 2, Ta: 1, TE: 2, Precision: "mixed",
				Current: 1.154414e-07, SSEMeasBytes: 206_208, SSEModelBytes: 445_824,
				Ratio: 0.4625, ReduceBytes: 960, WallNs: 62_839_685, RelVsSeq: 1.397e-06,
				FP64SSEBytes: 789_504, VolumeRatio: 3.8287, SigmaErr: 5.25e-04,
			},
		},
		Weak: []ScaleRow{
			{
				Sweep: "weak", P: 2, Ta: 1, TE: 2, Precision: "fp64",
				Current: 1.924537e-01, SSEMeasBytes: 814_080, SSEModelBytes: 1_693_442,
				Ratio: 0.4807, ReduceBytes: 1_216, WallNs: 68_000_000, RelVsSeq: -1,
			},
		},
		Overlap: []OverlapRow{
			{
				P: 2, Workers: 2, PhasesWallNs: 39_392_373, OverlapWallNs: 37_605_055,
				Speedup: 1.0475, ComputeNs: 19_191_249, CommNs: 14_790_000,
				StreamPredGain: 1.694, MaxRelDiff: 0,
			},
		},
		AlltoallvPerIter: 4,
	}
}

func fixedEnsemble() *Ensemble {
	return &Ensemble{
		Device: DeviceInfo{
			Atoms: 12, Slabs: 3, Orbitals: 2, MaxNeighbours: 11,
			MomentumPoints: 3, EnergyPoints: 12, PhononModes: 3,
			Bias: 0.3, Temperature: 300,
		},
		Members: 4, Converged: 4, BaseSeed: 7, WallNs: 412_000_000,
		Current: Stat{
			N: 4, Mean: 0.0684210, Variance: 1.21e-08, Std: 1.1e-04,
			CI95: 1.078e-04, Min: 0.0683, Max: 0.06855,
		},
		DOS: []DOSRow{
			{Energy: -1.2, DOS: Stat{N: 3, Mean: 0.412, Variance: 4e-04, Std: 0.02, CI95: 0.0226, Min: 0.39, Max: 0.43}},
			{Energy: -1.1, DOS: Stat{N: 3, Mean: 0.455, Variance: 9e-04, Std: 0.03, CI95: 0.0339, Min: 0.42, Max: 0.48}},
		},
		DOSMembers: 3,
		MemberRows: []MemberRow{
			{Index: 0, Seed: 7, RunID: "run-000001", Current: 0.06830, Iterations: 9, Converged: true, WallNs: 120_000_000},
			{Index: 1, Seed: 8, RunID: "run-000002", Current: 0.06855, Iterations: 5, Converged: true, WarmStart: true, WallNs: 80_000_000},
			{Index: 2, Seed: 9, RunID: "run-000003", Current: 0.06840, Iterations: 6, Converged: true, WarmStart: true, WallNs: 92_000_000},
			{Index: 3, Seed: 7, RunID: "run-000001", Current: 0.06830, Iterations: 9, Converged: true, CacheHit: true},
		},
	}
}

// TestGolden locks every encoder's byte-exact output across all report
// types and all three formats.
func TestGolden(t *testing.T) {
	cases := []struct {
		name string
		rep  Encoder
	}{
		{"run", fixedRun()},
		{"scaling", fixedScaling()},
		{"ensemble", fixedEnsemble()},
	}
	for _, c := range cases {
		for _, f := range []Format{Text, JSON, CSV} {
			name := c.name + "_" + f.String()
			t.Run(name, func(t *testing.T) {
				var buf bytes.Buffer
				if err := Write(&buf, f, c.rep); err != nil {
					t.Fatal(err)
				}
				path := filepath.Join("testdata", name+".golden")
				if *update {
					if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("%v (run `go test ./internal/report -update` to regenerate)", err)
				}
				if !bytes.Equal(buf.Bytes(), want) {
					t.Errorf("%s output drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s",
						name, buf.String(), want)
				}
			})
		}
	}
}

func TestParseFormat(t *testing.T) {
	for _, s := range Formats {
		if _, err := ParseFormat(s); err != nil {
			t.Errorf("ParseFormat(%q): %v", s, err)
		}
	}
	if _, err := ParseFormat("yaml"); err == nil {
		t.Error("ParseFormat must reject unknown formats")
	}
}

func TestPerIter(t *testing.T) {
	agg := PerIter(fixedTrace())
	if agg.SSEBytes != 789504 || agg.ReduceBytes != 960 {
		t.Errorf("byte means wrong: %+v", agg)
	}
	if agg.WallNs != 60_000_000 {
		t.Errorf("wall mean = %d, want 60ms", agg.WallNs)
	}
	if agg.MaxSigmaErr != 5.25e-04 {
		t.Errorf("max sigma err = %g", agg.MaxSigmaErr)
	}
	if zero := PerIter(nil); zero != (PerIterAgg{}) {
		t.Errorf("empty trace must aggregate to zero, got %+v", zero)
	}
}
