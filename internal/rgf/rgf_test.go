package rgf

import (
	"math/rand"
	"testing"

	"repro/internal/blocktri"
	"repro/internal/linalg"
)

// randomProblem builds a well-conditioned random block-tridiagonal RGF
// problem: A = (E+iη)·I − H with Hermitian H and anti-Hermitian Σ≷
// injections on every block, the structure the NEGF solver produces.
func randomProblem(rng *rand.Rand, sizes []int) *Problem {
	nb := len(sizes)
	h := blocktri.New(sizes)
	fill := func(b *linalg.Matrix, scale float64) {
		for i := range b.Data {
			b.Data[i] = complex(scale*rng.NormFloat64(), scale*rng.NormFloat64())
		}
	}
	for i := range h.Diag {
		fill(h.Diag[i], 0.5)
		linalg.Hermitize(h.Diag[i], h.Diag[i])
	}
	for i := range h.Upper {
		fill(h.Upper[i], 0.3)
		h.Lower[i] = h.Upper[i].H()
	}
	// A = (E + iη)·I − H with enough η to be safely nonsingular.
	a := blocktri.New(sizes)
	for i := range a.Diag {
		a.Diag[i] = linalg.Scale(linalg.New(sizes[i], sizes[i]), -1, h.Diag[i])
		for r := 0; r < sizes[i]; r++ {
			a.Diag[i].Set(r, r, a.Diag[i].At(r, r)+complex(0.7, 0.05))
		}
	}
	for i := range a.Upper {
		a.Upper[i] = linalg.Scale(linalg.New(h.Upper[i].Rows, h.Upper[i].Cols), -1, h.Upper[i])
		a.Lower[i] = linalg.Scale(linalg.New(h.Lower[i].Rows, h.Lower[i].Cols), -1, h.Lower[i])
	}
	sigL := make([]*linalg.Matrix, nb)
	sigG := make([]*linalg.Matrix, nb)
	for i := 0; i < nb; i++ {
		// Anti-Hermitian injections: i·(M + Mᴴ) with random Hermitian M.
		m := linalg.New(sizes[i], sizes[i])
		fill(m, 0.2)
		linalg.Hermitize(m, m)
		sigL[i] = linalg.Scale(linalg.New(sizes[i], sizes[i]), 1i, m)
		m2 := linalg.New(sizes[i], sizes[i])
		fill(m2, 0.2)
		linalg.Hermitize(m2, m2)
		sigG[i] = linalg.Scale(linalg.New(sizes[i], sizes[i]), -1i, m2)
	}
	return &Problem{A: a, SigL: sigL, SigG: sigG}
}

func blockAt(d *linalg.Matrix, a *blocktri.Matrix, i, j int) *linalg.Matrix {
	return blocktri.ExtractBlock(d, a.Offset(i), a.Offset(j), a.Sizes[i], a.Sizes[j])
}

func TestRGFMatchesDenseReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, sizes := range [][]int{{3}, {2, 2}, {3, 4, 3}, {2, 5, 3, 4}, {4, 4, 4, 4, 4, 4}} {
		p := randomProblem(rng, sizes)
		sol, err := Solve(p)
		if err != nil {
			t.Fatalf("sizes %v: %v", sizes, err)
		}
		grD, glD, ggD, err := DenseReference(p)
		if err != nil {
			t.Fatal(err)
		}
		const tol = 1e-8
		for i := range sizes {
			if d := linalg.MaxDiff(sol.GR[i], blockAt(grD, p.A, i, i)); d > tol {
				t.Fatalf("sizes %v: GR[%d] differs from dense by %g", sizes, i, d)
			}
			if d := linalg.MaxDiff(sol.GL[i], blockAt(glD, p.A, i, i)); d > tol {
				t.Fatalf("sizes %v: GL[%d] differs from dense by %g", sizes, i, d)
			}
			if d := linalg.MaxDiff(sol.GG[i], blockAt(ggD, p.A, i, i)); d > tol {
				t.Fatalf("sizes %v: GG[%d] differs from dense by %g", sizes, i, d)
			}
		}
		for i := 0; i+1 < len(sizes); i++ {
			if d := linalg.MaxDiff(sol.GRUpper[i], blockAt(grD, p.A, i, i+1)); d > tol {
				t.Fatalf("sizes %v: GRUpper[%d] differs by %g", sizes, i, d)
			}
			if d := linalg.MaxDiff(sol.GRLower[i], blockAt(grD, p.A, i+1, i)); d > tol {
				t.Fatalf("sizes %v: GRLower[%d] differs by %g", sizes, i, d)
			}
			if d := linalg.MaxDiff(sol.GLUpper[i], blockAt(glD, p.A, i, i+1)); d > tol {
				t.Fatalf("sizes %v: GLUpper[%d] differs by %g", sizes, i, d)
			}
			if d := linalg.MaxDiff(sol.GLLower[i], blockAt(glD, p.A, i+1, i)); d > tol {
				t.Fatalf("sizes %v: GLLower[%d] differs by %g", sizes, i, d)
			}
			if d := linalg.MaxDiff(sol.GGUpper[i], blockAt(ggD, p.A, i, i+1)); d > tol {
				t.Fatalf("sizes %v: GGUpper[%d] differs by %g", sizes, i, d)
			}
			if d := linalg.MaxDiff(sol.GGLower[i], blockAt(ggD, p.A, i+1, i)); d > tol {
				t.Fatalf("sizes %v: GGLower[%d] differs by %g", sizes, i, d)
			}
		}
	}
}

func TestLesserAntiHermitian(t *testing.T) {
	// With anti-Hermitian Σ<, G< = GR·Σ<·GA must be anti-Hermitian:
	// its diagonal blocks satisfy Xᴴ = −X.
	rng := rand.New(rand.NewSource(7))
	p := randomProblem(rng, []int{3, 3, 3})
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	for i, gl := range sol.GL {
		sum := linalg.Add(linalg.New(gl.Rows, gl.Cols), gl, gl.H())
		if sum.FrobNorm() > 1e-9 {
			t.Fatalf("GL[%d] not anti-Hermitian: %g", i, sum.FrobNorm())
		}
	}
}

func TestNilSigmaBlocksTreatedAsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p := randomProblem(rng, []int{2, 3, 2})
	// Zero out the middle injection two ways: nil and explicit zero.
	pNil := &Problem{A: p.A, SigL: append([]*linalg.Matrix(nil), p.SigL...), SigG: append([]*linalg.Matrix(nil), p.SigG...)}
	pNil.SigL[1] = nil
	pZero := &Problem{A: p.A, SigL: append([]*linalg.Matrix(nil), p.SigL...), SigG: append([]*linalg.Matrix(nil), p.SigG...)}
	pZero.SigL[1] = linalg.New(3, 3)
	s1, err := Solve(pNil)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Solve(pZero)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s1.GL {
		if linalg.MaxDiff(s1.GL[i], s2.GL[i]) != 0 {
			t.Fatal("nil and zero sigma blocks differ")
		}
	}
}

// TestSolveIntoMatchesSolveBitwise checks the workspace path is a pure
// memory-management change: interleaved SolveInto calls on one reused
// workspace+solution reproduce fresh Solve results bit for bit, with no
// state leaking between problems of different shapes.
func TestSolveIntoMatchesSolveBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	problems := []*Problem{
		randomProblem(rng, []int{3, 4, 3}),
		randomProblem(rng, []int{2, 5, 3, 4}),
		randomProblem(rng, []int{4, 4, 4, 4}),
		randomProblem(rng, []int{3, 4, 3}), // same shape as the first: exercises warm-pool reuse
	}
	ws := linalg.NewWorkspace()
	var sol *Solution
	for round := 0; round < 2; round++ {
		for pi, p := range problems {
			want, err := Solve(p)
			if err != nil {
				t.Fatal(err)
			}
			sol, err = SolveInto(p, ws, sol)
			if err != nil {
				t.Fatal(err)
			}
			check := func(name string, got, ref []*linalg.Matrix) {
				for i := range ref {
					if d := linalg.MaxDiff(got[i], ref[i]); d != 0 {
						t.Fatalf("round %d problem %d: %s[%d] differs by %g", round, pi, name, i, d)
					}
				}
			}
			check("GR", sol.GR, want.GR)
			check("GL", sol.GL, want.GL)
			check("GG", sol.GG, want.GG)
			check("GRUpper", sol.GRUpper, want.GRUpper)
			check("GRLower", sol.GRLower, want.GRLower)
			check("GLUpper", sol.GLUpper, want.GLUpper)
			check("GLLower", sol.GLLower, want.GLLower)
			check("GGUpper", sol.GGUpper, want.GGUpper)
			check("GGLower", sol.GGLower, want.GGLower)
		}
	}
}

// TestNilSigmaAllBlocks is the regression for the backward-pass nil-Σ≷
// handling: every injection nil — the shape the bare-Hamiltonian RGF
// benchmark and the ballistic limit produce — must equal explicit zero
// blocks everywhere, including the contact slabs.
func TestNilSigmaAllBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	base := randomProblem(rng, []int{3, 4, 3})
	nb := base.A.NB
	pNil := &Problem{A: base.A, SigL: make([]*linalg.Matrix, nb), SigG: make([]*linalg.Matrix, nb)}
	pZero := &Problem{A: base.A, SigL: make([]*linalg.Matrix, nb), SigG: make([]*linalg.Matrix, nb)}
	for i := 0; i < nb; i++ {
		pZero.SigL[i] = linalg.New(base.A.Sizes[i], base.A.Sizes[i])
		pZero.SigG[i] = linalg.New(base.A.Sizes[i], base.A.Sizes[i])
	}
	sNil, err := Solve(pNil)
	if err != nil {
		t.Fatal(err)
	}
	sZero, err := Solve(pZero)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nb; i++ {
		if linalg.MaxDiff(sNil.GL[i], sZero.GL[i]) != 0 || linalg.MaxDiff(sNil.GG[i], sZero.GG[i]) != 0 {
			t.Fatalf("all-nil and all-zero Σ≷ differ at block %d", i)
		}
		if linalg.MaxDiff(sNil.GR[i], sZero.GR[i]) != 0 {
			t.Fatalf("GR differs at block %d", i)
		}
	}
	// G≷ must be exactly zero with no injections anywhere.
	for i := 0; i < nb; i++ {
		if sNil.GL[i].MaxAbs() != 0 || sNil.GG[i].MaxAbs() != 0 {
			t.Fatalf("ballistic-limit G≷[%d] nonzero with all-nil Σ≷", i)
		}
	}
}

// TestSolveIntoSteadyStateAllocs pins the tentpole: after the first solve
// warms the pool, SolveInto performs (essentially) no heap allocation.
func TestSolveIntoSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	p := randomProblem(rng, []int{8, 8, 8, 8})
	ws := linalg.NewWorkspace()
	var sol *Solution
	var err error
	if sol, err = SolveInto(p, ws, sol); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if sol, err = SolveInto(p, ws, sol); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Errorf("warm SolveInto allocates %.1f times per solve, want ≤ 2", allocs)
	}
}

func TestSigmaCountValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := randomProblem(rng, []int{2, 2})
	p.SigL = p.SigL[:1]
	if _, err := Solve(p); err == nil {
		t.Fatal("expected error for mismatched sigma count")
	}
}

func TestSingleBlockReducesToDirectInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	p := randomProblem(rng, []int{5})
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	inv := linalg.MustInverse(p.A.Diag[0])
	if linalg.MaxDiff(sol.GR[0], inv) > 1e-9 {
		t.Fatal("single-block GR should equal the direct inverse")
	}
}

func TestFlopEstimateMatchesPaperFormula(t *testing.T) {
	// Table 3 derives from this formula; check a literal evaluation.
	got := FlopEstimate(4864, 12, 152)
	bs := 4864.0 * 12 / 152 // 384
	want := 8 * (26*152 - 25) * bs * bs * bs
	if got != want {
		t.Fatalf("FlopEstimate = %g, want %g", got, want)
	}
	// Sanity: more blocks with fixed Na·Norb lowers the cost.
	if FlopEstimate(4864, 12, 304) > FlopEstimate(4864, 12, 152) {
		t.Fatal("doubling bnum should reduce RGF flops")
	}
}

// BenchmarkRGFSolve measures the production hot path: the workspace-pooled
// SolveInto on a warm per-worker workspace, the way negf.PointSolver and
// the dist rank workers call it. allocs/op ≈ 0 is the tentpole invariant
// tracked in BENCH_5.json.
func BenchmarkRGFSolve(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(1))
	p := randomProblem(rng, []int{32, 32, 32, 32, 32, 32, 32, 32})
	ws := linalg.NewWorkspace()
	var sol *Solution
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sol, err = SolveInto(p, ws, sol); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRGFSolveColdWorkspace is the allocating baseline (fresh
// workspace and solution every solve) — the before side of the
// BENCH_5.json comparison, kept so the pool's win stays measurable.
func BenchmarkRGFSolveColdWorkspace(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(1))
	p := randomProblem(rng, []int{32, 32, 32, 32, 32, 32, 32, 32})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}
