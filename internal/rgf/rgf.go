// Package rgf implements the Recursive Green's Function algorithm
// (Svizhenko et al. 2002) — the core computational kernel of the GF phase.
//
// Given the block-tridiagonal matrix A = E·S − H − Σᴿ (electrons) or
// A = ω²·I − Φ − Πᴿ (phonons) and block-diagonal lesser/greater
// self-energy injections Σ≷, RGF computes the diagonal and first
// off-diagonal blocks of
//
//	Gᴿ = A⁻¹,   G≷ = Gᴿ·Σ≷·Gᴬ
//
// in O(bnum·(N/bnum)³) instead of the O(N³) of a dense inverse. The
// diagonal per-atom sub-blocks feed the SSE kernel; the off-diagonal
// blocks provide the neighbour couplings D_ab needed by Eq. (2) and the
// interface currents of Fig. 11.
package rgf

import (
	"fmt"

	"repro/internal/blocktri"
	"repro/internal/linalg"
)

// Problem describes one (momentum, energy) RGF solve.
type Problem struct {
	// A holds the blocks of E·S − H − Σᴿ (including boundary and
	// scattering retarded self-energies and the +iη broadening).
	A *blocktri.Matrix
	// SigL and SigG are the block-diagonal lesser/greater self-energy
	// injections per slab (boundary terms on the contact slabs plus
	// scattering terms everywhere). Entries may be nil for zero blocks.
	SigL []*linalg.Matrix
	SigG []*linalg.Matrix
}

// Solution holds the computed Green's function blocks.
type Solution struct {
	// Diagonal blocks, one per slab.
	GR, GL, GG []*linalg.Matrix
	// First off-diagonal blocks: XUpper[i] = X_{i,i+1}, XLower[i] = X_{i+1,i}.
	GRUpper, GRLower []*linalg.Matrix
	GLUpper, GLLower []*linalg.Matrix
	GGUpper, GGLower []*linalg.Matrix
}

// Solve runs the forward/backward RGF recursion.
func Solve(p *Problem) (*Solution, error) {
	a := p.A
	nb := a.NB
	if len(p.SigL) != nb || len(p.SigG) != nb {
		return nil, fmt.Errorf("rgf: self-energy block count %d/%d != %d", len(p.SigL), len(p.SigG), nb)
	}

	// Backward pass: right-connected g-functions.
	gR := make([]*linalg.Matrix, nb)
	gL := make([]*linalg.Matrix, nb)
	gG := make([]*linalg.Matrix, nb)
	var err error
	for i := nb - 1; i >= 0; i-- {
		eff := a.Diag[i].Clone()
		if i+1 < nb {
			// Embed the right part: A_ii − A_{i,i+1}·gR_{i+1}·A_{i+1,i}.
			w := linalg.Mul3(a.Upper[i], gR[i+1], a.Lower[i])
			linalg.Sub(eff, eff, w)
		}
		gR[i], err = linalg.Inverse(eff)
		if err != nil {
			return nil, fmt.Errorf("rgf: singular effective block %d: %w", i, err)
		}
		gA := gR[i].H()
		sigL := sigOrZero(p.SigL[i], a.Sizes[i])
		sigG := sigOrZero(p.SigG[i], a.Sizes[i])
		if i+1 < nb {
			// Injection from the already-eliminated right part:
			// σ≷ += A_{i,i+1}·g≷_{i+1}·A_{i,i+1}ᴴ.
			up := a.Upper[i]
			sigL = linalg.Add(linalg.New(sigL.Rows, sigL.Cols), sigL, linalg.Mul3(up, gL[i+1], up.H()))
			sigG = linalg.Add(linalg.New(sigG.Rows, sigG.Cols), sigG, linalg.Mul3(up, gG[i+1], up.H()))
		}
		gL[i] = linalg.Mul3(gR[i], sigL, gA)
		gG[i] = linalg.Mul3(gR[i], sigG, gA)
	}

	s := &Solution{
		GR: make([]*linalg.Matrix, nb), GL: make([]*linalg.Matrix, nb), GG: make([]*linalg.Matrix, nb),
		GRUpper: make([]*linalg.Matrix, nb-1), GRLower: make([]*linalg.Matrix, nb-1),
		GLUpper: make([]*linalg.Matrix, nb-1), GLLower: make([]*linalg.Matrix, nb-1),
		GGUpper: make([]*linalg.Matrix, nb-1), GGLower: make([]*linalg.Matrix, nb-1),
	}
	// Forward pass: accumulate the left-connected full G blocks.
	s.GR[0] = gR[0]
	s.GL[0] = gL[0]
	s.GG[0] = gG[0]
	for i := 0; i+1 < nb; i++ {
		up, lo := a.Upper[i], a.Lower[i]
		gRn, gLn, gGn := gR[i+1], gL[i+1], gG[i+1]
		gAn := gRn.H()
		GAi := s.GR[i].H()

		// Retarded off-diagonals and diagonal update.
		s.GRLower[i] = linalg.Scale(nil2(gRn.Rows, s.GR[i].Cols), -1, linalg.Mul3(gRn, lo, s.GR[i]))
		s.GRUpper[i] = linalg.Scale(nil2(s.GR[i].Rows, gRn.Cols), -1, linalg.Mul3(s.GR[i], up, gRn))
		// GR_{i+1,i+1} = gR + gR·A_{i+1,i}·GR_ii·A_{i,i+1}·gR.
		corr := linalg.Mul(linalg.Mul3(gRn, lo, s.GR[i]), linalg.Mul(up, gRn))
		s.GR[i+1] = linalg.Add(linalg.New(gRn.Rows, gRn.Cols), gRn, corr)

		// Lesser/greater off-diagonals:
		// G≷_{i,i+1} = −GR_ii·A_{i,i+1}·g≷_{i+1} − G≷_ii·A_{i+1,i}ᴴ·gA_{i+1}
		// G≷_{i+1,i} = −(G≷_{i,i+1})ᴴ (anti-Hermiticity of G≷).
		loH := lo.H()
		s.GLUpper[i] = offDiagLesser(s.GR[i], up, gLn, s.GL[i], loH, gAn)
		s.GGUpper[i] = offDiagLesser(s.GR[i], up, gGn, s.GG[i], loH, gAn)
		s.GLLower[i] = linalg.Scale(nil2(gRn.Rows, s.GR[i].Cols), -1, s.GLUpper[i].H())
		s.GGLower[i] = linalg.Scale(nil2(gRn.Rows, s.GR[i].Cols), -1, s.GGUpper[i].H())

		// Diagonal lesser/greater update:
		// G≷_{i+1,i+1} = g≷ + gR·A_lo·G≷_ii·A_loᴴ·gA
		//              + gR·A_lo·GR_ii·A_up·g≷ + g≷·A_upᴴ·GA_ii·A_loᴴ·gA.
		upH := up.H()
		s.GL[i+1] = diagLesser(gRn, lo, s.GL[i], s.GR[i], up, gLn, gAn, GAi, upH, loH)
		s.GG[i+1] = diagLesser(gRn, lo, s.GG[i], s.GR[i], up, gGn, gAn, GAi, upH, loH)
	}
	return s, nil
}

func offDiagLesser(GRi, up, gLn, GLi, loH, gAn *linalg.Matrix) *linalg.Matrix {
	t1 := linalg.Mul3(GRi, up, gLn)
	t2 := linalg.Mul3(GLi, loH, gAn)
	out := linalg.Add(linalg.New(t1.Rows, t1.Cols), t1, t2)
	return linalg.Scale(out, -1, out)
}

func diagLesser(gRn, lo, GLi, GRi, up, gLn, gAn, GAi, upH, loH *linalg.Matrix) *linalg.Matrix {
	out := gLn.Clone()
	// gR·A_lo·G≷_ii·A_loᴴ·gA
	t := linalg.Mul(linalg.Mul3(gRn, lo, GLi), linalg.Mul(loH, gAn))
	linalg.AXPY(out, 1, t)
	// gR·A_lo·GR_ii·A_up·g≷
	t = linalg.Mul(linalg.Mul3(gRn, lo, GRi), linalg.Mul(up, gLn))
	linalg.AXPY(out, 1, t)
	// g≷·A_upᴴ·GA_ii·A_loᴴ·gA
	t = linalg.Mul(linalg.Mul3(gLn, upH, GAi), linalg.Mul(loH, gAn))
	linalg.AXPY(out, 1, t)
	return out
}

func sigOrZero(s *linalg.Matrix, n int) *linalg.Matrix {
	if s == nil {
		return linalg.New(n, n)
	}
	return s
}

func nil2(r, c int) *linalg.Matrix { return linalg.New(r, c) }

// DenseReference solves the same problem by dense inversion:
// Gᴿ = A⁻¹, G≷ = Gᴿ·Σ≷·Gᴬ — the validation oracle for RGF.
func DenseReference(p *Problem) (gr, gl, gg *linalg.Matrix, err error) {
	aD := p.A.Dense()
	gr, err = linalg.Inverse(aD)
	if err != nil {
		return nil, nil, nil, err
	}
	n := aD.Rows
	sigL := linalg.New(n, n)
	sigG := linalg.New(n, n)
	off := 0
	for i := 0; i < p.A.NB; i++ {
		sz := p.A.Sizes[i]
		if p.SigL[i] != nil {
			place(sigL, p.SigL[i], off)
		}
		if p.SigG[i] != nil {
			place(sigG, p.SigG[i], off)
		}
		off += sz
	}
	ga := gr.H()
	gl = linalg.Mul3(gr, sigL, ga)
	gg = linalg.Mul3(gr, sigG, ga)
	return gr, gl, gg, nil
}

func place(dst, blk *linalg.Matrix, off int) {
	for i := 0; i < blk.Rows; i++ {
		copy(dst.Data[(off+i)*dst.Cols+off:(off+i)*dst.Cols+off+blk.Cols], blk.Row(i))
	}
}

// FlopEstimate returns the paper's RGF flop model for one (kz, E) point:
// 8·(26·bnum − 25)·(Na·Norb/bnum)³ real flops dominate; the sparse-operation
// remainder is bounded by the same cubic term (§6.1.1).
func FlopEstimate(na, norb, bnum int) float64 {
	bs := float64(na) * float64(norb) / float64(bnum)
	return 8 * (26*float64(bnum) - 25) * bs * bs * bs
}
