// Package rgf implements the Recursive Green's Function algorithm
// (Svizhenko et al. 2002) — the core computational kernel of the GF phase.
//
// Given the block-tridiagonal matrix A = E·S − H − Σᴿ (electrons) or
// A = ω²·I − Φ − Πᴿ (phonons) and block-diagonal lesser/greater
// self-energy injections Σ≷, RGF computes the diagonal and first
// off-diagonal blocks of
//
//	Gᴿ = A⁻¹,   G≷ = Gᴿ·Σ≷·Gᴬ
//
// in O(bnum·(N/bnum)³) instead of the O(N³) of a dense inverse. The
// diagonal per-atom sub-blocks feed the SSE kernel; the off-diagonal
// blocks provide the neighbour couplings D_ab needed by Eq. (2) and the
// interface currents of Fig. 11.
package rgf

import (
	"fmt"

	"repro/internal/blocktri"
	"repro/internal/linalg"
	"repro/internal/sparse"
)

// Problem describes one (momentum, energy) RGF solve.
type Problem struct {
	// A holds the blocks of E·S − H − Σᴿ (including boundary and
	// scattering retarded self-energies and the +iη broadening).
	A *blocktri.Matrix
	// SigL and SigG are the block-diagonal lesser/greater self-energy
	// injections per slab (boundary terms on the contact slabs plus
	// scattering terms everywhere). Entries may be nil for zero blocks.
	SigL []*linalg.Matrix
	SigG []*linalg.Matrix
	// Sparsity, when non-nil, routes the off-diagonal coupling products
	// through CSRMM/GEMMI kernels for interfaces whose coupling blocks
	// qualify (density ≤ Threshold, dims ≥ MinDim). nil keeps every
	// product dense and bit-identical to Solve's reference behaviour.
	Sparsity *Sparsity
}

// Sparsity is the block-sparse routing policy. The sparse kernels skip
// stored zeros, so results on sparse-routed interfaces are tolerance-
// equivalent (like MixedCurrentTol), not bit-identical, to the dense
// path; TestSparseRGFMatchesDense pins the agreement.
type Sparsity struct {
	// Threshold is the coupling-block density at or below which the
	// interface is routed sparse. The break-even mirrors the paper's
	// Table 7: CSRMM beats GEMM roughly below one nonzero in four.
	Threshold float64
	// MinDim skips sparse routing for blocks smaller than this — at tiny
	// sizes the dense micro-kernel wins regardless of density.
	MinDim int
	// Tol is the magnitude below which entries are dropped at
	// extraction (0 keeps everything that is not exactly zero).
	Tol float64
}

// DefaultSparsity is the policy negf applies when the device's coupling
// blocks qualify.
func DefaultSparsity() *Sparsity { return &Sparsity{Threshold: 0.25, MinDim: 16} }

// Solution holds the computed Green's function blocks. A Solution returned
// by SolveInto is backed by the workspace that produced it: its blocks are
// valid until that workspace's next Reset (i.e. the next SolveInto on it),
// so callers harvest what they need before solving the next point.
type Solution struct {
	// Diagonal blocks, one per slab.
	GR, GL, GG []*linalg.Matrix
	// First off-diagonal blocks: XUpper[i] = X_{i,i+1}, XLower[i] = X_{i+1,i}.
	GRUpper, GRLower []*linalg.Matrix
	GLUpper, GLLower []*linalg.Matrix
	GGUpper, GGLower []*linalg.Matrix

	// scratch keeps the right-connected g-function slices alive across
	// calls so a reused Solution costs no per-solve slice allocations.
	gR, gL, gG []*linalg.Matrix
	// sp holds the per-interface sparse coupling forms (empty when the
	// problem has no Sparsity policy). Slices and value buffers are
	// reused across solves.
	sp     []spCoupling
	spNext []int
}

// spCoupling caches the sparse forms of one interface's coupling blocks
// for the duration of a solve: CSR of A_{i,i+1} (up) and A_{i+1,i} (lo)
// for sparse·dense products, CSC of both for dense·sparse, and CSC of
// their conjugate transposes (index structure shared with the CSRs).
type spCoupling struct {
	use          bool
	csrUp, csrLo sparse.CSR
	cscUp, cscLo sparse.CSC
	cscUpH       sparse.CSC // CSC of upᴴ
	cscLoH       sparse.CSC // CSC of loᴴ
}

// prepSparse re-extracts the coupling blocks of qualifying interfaces
// into s.sp. Extraction is O(nnz) per interface per solve — negligible
// against the O(n³) products it redirects — and reuses all storage.
func (s *Solution) prepSparse(p *Problem) {
	a := p.A
	pol := p.Sparsity
	if cap(s.sp) < a.NB {
		s.sp = make([]spCoupling, a.NB)
	}
	s.sp = s.sp[:a.NB]
	maxDim := 0
	for _, sz := range a.Sizes {
		if sz > maxDim {
			maxDim = sz
		}
	}
	if cap(s.spNext) < maxDim {
		s.spNext = make([]int, maxDim)
	}
	s.spNext = s.spNext[:maxDim]
	for i := 0; i+1 < a.NB; i++ {
		sp := &s.sp[i]
		n, m := a.Sizes[i], a.Sizes[i+1]
		sp.use = false
		if n < pol.MinDim || m < pol.MinDim {
			continue
		}
		sparse.FromDenseInto(&sp.csrUp, a.Upper[i], pol.Tol)
		if sp.csrUp.Density() > pol.Threshold {
			continue
		}
		sparse.FromDenseInto(&sp.csrLo, a.Lower[i], pol.Tol)
		if sp.csrLo.Density() > pol.Threshold {
			continue
		}
		sp.use = true
		sp.csrUp.ToCSCInto(&sp.cscUp, s.spNext)
		sp.csrLo.ToCSCInto(&sp.cscLo, s.spNext)
		sp.csrUp.ConjTransCSCInto(&sp.cscUpH)
		sp.csrLo.ConjTransCSCInto(&sp.cscLoH)
	}
}

// spAt returns the sparse coupling for interface i, or nil when the
// interface runs dense.
func (s *Solution) spAt(i int) *spCoupling {
	if i >= len(s.sp) || !s.sp[i].use {
		return nil
	}
	return &s.sp[i]
}

// resize (re)shapes the block slices for nb slabs, reusing prior storage.
func (s *Solution) resize(nb int) {
	grow := func(v []*linalg.Matrix, n int) []*linalg.Matrix {
		if cap(v) >= n {
			return v[:n]
		}
		return make([]*linalg.Matrix, n)
	}
	s.GR, s.GL, s.GG = grow(s.GR, nb), grow(s.GL, nb), grow(s.GG, nb)
	s.GRUpper, s.GRLower = grow(s.GRUpper, nb-1), grow(s.GRLower, nb-1)
	s.GLUpper, s.GLLower = grow(s.GLUpper, nb-1), grow(s.GLLower, nb-1)
	s.GGUpper, s.GGLower = grow(s.GGUpper, nb-1), grow(s.GGLower, nb-1)
	s.gR, s.gL, s.gG = grow(s.gR, nb), grow(s.gL, nb), grow(s.gG, nb)
}

// Solve runs the forward/backward RGF recursion, allocating a fresh
// workspace and solution — the convenience wrapper over SolveInto for
// one-off solves (tests, oracles). Hot callers reuse a per-worker
// workspace instead.
func Solve(p *Problem) (*Solution, error) {
	return SolveInto(p, linalg.NewWorkspace(), nil)
}

// SolveInto runs the forward/backward RGF recursion with every temporary —
// effective blocks, LU storage, Hermitian conjugates, Σ≷ accumulators, and
// the Solution blocks themselves — checked out of ws, so a warm workspace
// solves without heap allocation. It Resets ws on entry: matrices obtained
// from ws earlier, including the blocks of a Solution a previous SolveInto
// on the same workspace returned, are recycled. sol, when non-nil, has its
// slices reused; pass the previous call's Solution for an allocation-free
// steady state. Results are bit-identical to Solve.
func SolveInto(p *Problem, ws *linalg.Workspace, sol *Solution) (*Solution, error) {
	a := p.A
	nb := a.NB
	if len(p.SigL) != nb || len(p.SigG) != nb {
		return nil, fmt.Errorf("rgf: self-energy block count %d/%d != %d", len(p.SigL), len(p.SigG), nb)
	}
	ws.Reset()
	if sol == nil {
		sol = &Solution{}
	}
	sol.resize(nb)
	if p.Sparsity != nil {
		sol.prepSparse(p)
	} else {
		sol.sp = sol.sp[:0]
	}

	// Backward pass: right-connected g-functions.
	gR, gL, gG := sol.gR, sol.gL, sol.gG
	for i := nb - 1; i >= 0; i-- {
		n := a.Sizes[i]
		eff := ws.Get(n, n)
		eff.CopyFrom(a.Diag[i])
		if i+1 < nb {
			// Embed the right part: A_ii − A_{i,i+1}·gR_{i+1}·A_{i+1,i}.
			w := ws.Get(n, n)
			if sp := sol.spAt(i); sp != nil {
				m := a.Sizes[i+1]
				t := ws.Get(n, m)
				sparse.CSRMMInto(t, &sp.csrUp, gR[i+1])
				sparse.GEMMIInto(w, t, &sp.cscLo)
				ws.Put(t)
			} else {
				ws.Mul3Into(w, a.Upper[i], gR[i+1], a.Lower[i])
			}
			linalg.Sub(eff, eff, w)
			ws.Put(w)
		}
		f := ws.LUFor(n)
		if err := f.FactorizeInto(eff); err != nil {
			return nil, fmt.Errorf("rgf: singular effective block %d: %w", i, err)
		}
		gR[i] = ws.Get(n, n)
		f.InverseInto(gR[i])
		ws.Put(eff)
		gA := linalg.HInto(ws.Get(n, n), gR[i])

		// Σ≷ accumulated in place: start from the caller's block (or zero
		// for a nil block) and add the right-part injection — no zero
		// matrix materialized per nil block, no second fresh destination.
		sL := ws.Get(n, n)
		if p.SigL[i] == nil {
			sL.Zero()
		} else {
			sL.CopyFrom(p.SigL[i])
		}
		sG := ws.Get(n, n)
		if p.SigG[i] == nil {
			sG.Zero()
		} else {
			sG.CopyFrom(p.SigG[i])
		}
		if i+1 < nb {
			// Injection from the already-eliminated right part:
			// σ≷ += A_{i,i+1}·g≷_{i+1}·A_{i,i+1}ᴴ, associated (up·g≷)·upᴴ.
			up := a.Upper[i]
			m := a.Sizes[i+1]
			t := ws.Get(n, m)
			prod := ws.Get(n, n)
			if sp := sol.spAt(i); sp != nil {
				sparse.CSRMMInto(t, &sp.csrUp, gL[i+1])
				sparse.GEMMIInto(prod, t, &sp.cscUpH)
				linalg.Add(sL, sL, prod)
				sparse.CSRMMInto(t, &sp.csrUp, gG[i+1])
				sparse.GEMMIInto(prod, t, &sp.cscUpH)
				linalg.Add(sG, sG, prod)
			} else {
				upH := linalg.HInto(ws.Get(m, n), up)
				linalg.MulInto(t, up, gL[i+1])
				linalg.MulInto(prod, t, upH)
				linalg.Add(sL, sL, prod)
				linalg.MulInto(t, up, gG[i+1])
				linalg.MulInto(prod, t, upH)
				linalg.Add(sG, sG, prod)
				ws.Put(upH)
			}
			ws.Put(t)
			ws.Put(prod)
		}
		// g≷ = gR·σ≷·gA, associated (gR·σ≷)·gA.
		t := ws.Get(n, n)
		gL[i] = ws.Get(n, n)
		linalg.MulInto(t, gR[i], sL)
		linalg.MulInto(gL[i], t, gA)
		gG[i] = ws.Get(n, n)
		linalg.MulInto(t, gR[i], sG)
		linalg.MulInto(gG[i], t, gA)
		ws.Put(t)
		ws.Put(sL)
		ws.Put(sG)
		ws.Put(gA)
	}

	s := sol
	// Forward pass: accumulate the left-connected full G blocks.
	s.GR[0] = gR[0]
	s.GL[0] = gL[0]
	s.GG[0] = gG[0]
	for i := 0; i+1 < nb; i++ {
		n, m := a.Sizes[i], a.Sizes[i+1]
		up, lo := a.Upper[i], a.Lower[i]
		gRn, gLn, gGn := gR[i+1], gL[i+1], gG[i+1]
		GRi, GLi, GGi := s.GR[i], s.GL[i], s.GG[i]
		sp := s.spAt(i)
		gAn := linalg.HInto(ws.Get(m, m), gRn)
		GAi := linalg.HInto(ws.Get(n, n), GRi)
		loH := linalg.HInto(ws.Get(n, m), lo)
		upH := linalg.HInto(ws.Get(m, n), up)

		// Products the recursion uses repeatedly; the allocating path
		// recomputed them identically, so sharing changes no bits.
		gRnLo := ws.Get(m, n) // gR_{i+1}·A_{i+1,i}
		if sp != nil {
			sparse.GEMMIInto(gRnLo, gRn, &sp.cscLo)
		} else {
			linalg.MulInto(gRnLo, gRn, lo)
		}
		u1 := linalg.MulInto(ws.Get(m, n), gRnLo, GRi) // (gR·A_lo)·GR_ii
		// A_loᴴ·gA = (gR·A_lo)ᴴ: conj distributes exactly over IEEE
		// products and sums and complex multiply is bitwise commutative,
		// so reusing gRnLo here is bit-identical to the eliminated
		// loH·gAn GEMM (one fewer n³ product per block pair).
		loHgAn := linalg.HInto(ws.Get(n, m), gRnLo)
		GRiUp := ws.Get(n, m) // GR_ii·A_{i,i+1}
		if sp != nil {
			sparse.GEMMIInto(GRiUp, GRi, &sp.cscUp)
		} else {
			linalg.MulInto(GRiUp, GRi, up)
		}

		// Retarded off-diagonals and diagonal update.
		s.GRLower[i] = linalg.Scale(ws.Get(m, n), -1, u1)
		s.GRUpper[i] = ws.Get(n, m)
		linalg.MulInto(s.GRUpper[i], GRiUp, gRn)
		linalg.Scale(s.GRUpper[i], -1, s.GRUpper[i])
		// GR_{i+1,i+1} = gR + gR·A_{i+1,i}·GR_ii·A_{i,i+1}·gR.
		upgRn := ws.Get(n, m)
		if sp != nil {
			sparse.CSRMMInto(upgRn, &sp.csrUp, gRn)
		} else {
			linalg.MulInto(upgRn, up, gRn)
		}
		corr := linalg.MulInto(ws.Get(m, m), u1, upgRn)
		s.GR[i+1] = ws.Get(m, m)
		linalg.Add(s.GR[i+1], gRn, corr)
		ws.Put(upgRn)
		ws.Put(corr)

		// Lesser/greater off-diagonals:
		// G≷_{i,i+1} = −GR_ii·A_{i,i+1}·g≷_{i+1} − G≷_ii·A_{i+1,i}ᴴ·gA_{i+1}
		// G≷_{i+1,i} = −(G≷_{i,i+1})ᴴ (anti-Hermiticity of G≷).
		offDiag := func(dst, gn, Gi *linalg.Matrix) {
			t1 := linalg.MulInto(ws.Get(n, m), GRiUp, gn)
			tA := ws.Get(n, m)
			if sp != nil {
				sparse.GEMMIInto(tA, Gi, &sp.cscLoH)
			} else {
				linalg.MulInto(tA, Gi, loH)
			}
			t2 := linalg.MulInto(ws.Get(n, m), tA, gAn)
			linalg.Add(dst, t1, t2)
			linalg.Scale(dst, -1, dst)
			ws.Put(t1)
			ws.Put(tA)
			ws.Put(t2)
		}
		s.GLUpper[i] = ws.Get(n, m)
		offDiag(s.GLUpper[i], gLn, GLi)
		s.GGUpper[i] = ws.Get(n, m)
		offDiag(s.GGUpper[i], gGn, GGi)
		s.GLLower[i] = linalg.HInto(ws.Get(m, n), s.GLUpper[i])
		linalg.Scale(s.GLLower[i], -1, s.GLLower[i])
		s.GGLower[i] = linalg.HInto(ws.Get(m, n), s.GGUpper[i])
		linalg.Scale(s.GGLower[i], -1, s.GGLower[i])

		// Diagonal lesser/greater update:
		// G≷_{i+1,i+1} = g≷ + gR·A_lo·G≷_ii·A_loᴴ·gA
		//              + gR·A_lo·GR_ii·A_up·g≷ + g≷·A_upᴴ·GA_ii·A_loᴴ·gA.
		diag := func(dst, gn, Gi *linalg.Matrix) {
			dst.CopyFrom(gn)
			tb := linalg.MulInto(ws.Get(m, n), gRnLo, Gi)
			t := linalg.MulInto(ws.Get(m, m), tb, loHgAn)
			linalg.AXPY(dst, 1, t)
			tup := ws.Get(n, m)
			if sp != nil {
				sparse.CSRMMInto(tup, &sp.csrUp, gn)
			} else {
				linalg.MulInto(tup, up, gn)
			}
			linalg.MulInto(t, u1, tup)
			linalg.AXPY(dst, 1, t)
			tc := ws.Get(m, n)
			if sp != nil {
				sparse.GEMMIInto(tc, gn, &sp.cscUpH)
			} else {
				linalg.MulInto(tc, gn, upH)
			}
			td := linalg.MulInto(ws.Get(m, n), tc, GAi)
			linalg.MulInto(t, td, loHgAn)
			linalg.AXPY(dst, 1, t)
			ws.Put(tb)
			ws.Put(t)
			ws.Put(tup)
			ws.Put(tc)
			ws.Put(td)
		}
		s.GL[i+1] = ws.Get(m, m)
		diag(s.GL[i+1], gLn, GLi)
		s.GG[i+1] = ws.Get(m, m)
		diag(s.GG[i+1], gGn, GGi)

		ws.Put(gAn)
		ws.Put(GAi)
		ws.Put(loH)
		ws.Put(upH)
		ws.Put(gRnLo)
		ws.Put(u1)
		ws.Put(loHgAn)
		ws.Put(GRiUp)
	}
	return s, nil
}

// DenseReference solves the same problem by dense inversion:
// Gᴿ = A⁻¹, G≷ = Gᴿ·Σ≷·Gᴬ — the validation oracle for RGF.
func DenseReference(p *Problem) (gr, gl, gg *linalg.Matrix, err error) {
	aD := p.A.Dense()
	gr, err = linalg.Inverse(aD)
	if err != nil {
		return nil, nil, nil, err
	}
	n := aD.Rows
	sigL := linalg.New(n, n)
	sigG := linalg.New(n, n)
	off := 0
	for i := 0; i < p.A.NB; i++ {
		sz := p.A.Sizes[i]
		if p.SigL[i] != nil {
			place(sigL, p.SigL[i], off)
		}
		if p.SigG[i] != nil {
			place(sigG, p.SigG[i], off)
		}
		off += sz
	}
	ga := gr.H()
	gl = linalg.Mul3(gr, sigL, ga)
	gg = linalg.Mul3(gr, sigG, ga)
	return gr, gl, gg, nil
}

func place(dst, blk *linalg.Matrix, off int) {
	for i := 0; i < blk.Rows; i++ {
		copy(dst.Data[(off+i)*dst.Cols+off:(off+i)*dst.Cols+off+blk.Cols], blk.Row(i))
	}
}

// FlopEstimate returns the paper's RGF flop model for one (kz, E) point:
// 8·(26·bnum − 25)·(Na·Norb/bnum)³ real flops dominate; the sparse-operation
// remainder is bounded by the same cubic term (§6.1.1).
func FlopEstimate(na, norb, bnum int) float64 {
	bs := float64(na) * float64(norb) / float64(bnum)
	return 8 * (26*float64(bnum) - 25) * bs * bs * bs
}
