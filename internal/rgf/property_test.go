package rgf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
)

// TestRGFMatchesDenseProperty fuzzes random block structures (count and
// sizes) and checks every returned block against the dense oracle.
func TestRGFMatchesDenseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nb := 1 + rng.Intn(5)
		sizes := make([]int, nb)
		for i := range sizes {
			sizes[i] = 1 + rng.Intn(4)
		}
		p := randomProblem(rng, sizes)
		sol, err := Solve(p)
		if err != nil {
			return false
		}
		grD, glD, ggD, err := DenseReference(p)
		if err != nil {
			return false
		}
		const tol = 1e-7
		for i := range sizes {
			if linalg.MaxDiff(sol.GR[i], blockAt(grD, p.A, i, i)) > tol {
				return false
			}
			if linalg.MaxDiff(sol.GL[i], blockAt(glD, p.A, i, i)) > tol {
				return false
			}
			if linalg.MaxDiff(sol.GG[i], blockAt(ggD, p.A, i, i)) > tol {
				return false
			}
		}
		for i := 0; i+1 < nb; i++ {
			if linalg.MaxDiff(sol.GLUpper[i], blockAt(glD, p.A, i, i+1)) > tol {
				return false
			}
			if linalg.MaxDiff(sol.GGLower[i], blockAt(ggD, p.A, i+1, i)) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestRetardedAdvancedSymmetry: Gᴬ = (Gᴿ)ᴴ must hold blockwise, i.e. the
// dense inverse of Aᴴ equals the conjugate transpose of A⁻¹. RGF only
// returns Gᴿ; verify its Hermitian partner solves the adjoint problem.
func TestRetardedAdvancedSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := randomProblem(rng, []int{3, 4, 3})
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	aD := p.A.Dense()
	gaD := linalg.MustInverse(aD.H())
	for i := range sol.GR {
		got := sol.GR[i].H()
		want := blockAt(gaD, p.A, i, i)
		if linalg.MaxDiff(got, want) > 1e-8 {
			t.Fatalf("block %d: (GR)ᴴ does not solve the adjoint problem", i)
		}
	}
}

// TestGreaterLesserDifference: with our Σᴿ convention the identity
// G> − G< = Gᴿ·(Σ> − Σ<)·Gᴬ holds exactly; verify blockwise.
func TestGreaterLesserDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := randomProblem(rng, []int{2, 3, 2})
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	grD, glD, ggD, err := DenseReference(p)
	if err != nil {
		t.Fatal(err)
	}
	_ = grD
	n := glD.Rows
	diffDense := linalg.Sub(linalg.New(n, n), ggD, glD)
	for i := range sol.GL {
		diff := linalg.Sub(linalg.New(sol.GL[i].Rows, sol.GL[i].Cols), sol.GG[i], sol.GL[i])
		want := blockAt(diffDense, p.A, i, i)
		if linalg.MaxDiff(diff, want) > 1e-8 {
			t.Fatalf("block %d: G>−G< mismatch", i)
		}
	}
}

// TestFlopCountScaling: the measured flops of an RGF solve scale linearly
// with the block count at fixed block size (the O(bnum·bs³) claim).
func TestFlopCountScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	measure := func(nb int) int64 {
		sizes := make([]int, nb)
		for i := range sizes {
			sizes[i] = 6
		}
		p := randomProblem(rng, sizes)
		linalg.EnableFlopCounting(true)
		linalg.ResetFlops()
		if _, err := Solve(p); err != nil {
			t.Fatal(err)
		}
		fl := linalg.Flops()
		linalg.EnableFlopCounting(false)
		return fl
	}
	f4 := measure(4)
	f8 := measure(8)
	ratio := float64(f8) / float64(f4)
	if ratio < 1.7 || ratio > 2.4 {
		t.Fatalf("doubling bnum should ~double the flops, got %.2fx", ratio)
	}
}

// TestSolveDoesNotMutateInputs: A and Σ≷ must be untouched.
func TestSolveDoesNotMutateInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := randomProblem(rng, []int{3, 3})
	aBefore := p.A.Dense()
	sBefore := p.SigL[0].Clone()
	if _, err := Solve(p); err != nil {
		t.Fatal(err)
	}
	if linalg.MaxDiff(p.A.Dense(), aBefore) != 0 {
		t.Fatal("Solve mutated A")
	}
	if linalg.MaxDiff(p.SigL[0], sBefore) != 0 {
		t.Fatal("Solve mutated Σ<")
	}
}
