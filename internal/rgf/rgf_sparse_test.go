package rgf

import (
	"math/rand"
	"testing"

	"repro/internal/blocktri"
	"repro/internal/linalg"
)

// randomSparseCouplingProblem builds a well-conditioned RGF problem whose
// off-diagonal coupling blocks carry the given nonzero density — the
// structure of a DFT Hamiltonian, where each atom couples to a handful of
// neighbours. Diagonal blocks stay dense.
func randomSparseCouplingProblem(rng *rand.Rand, sizes []int, density float64) *Problem {
	nb := len(sizes)
	a := blocktri.New(sizes)
	for i := range a.Diag {
		d := a.Diag[i]
		for r := range d.Data {
			d.Data[r] = complex(-0.5*rng.NormFloat64(), -0.5*rng.NormFloat64())
		}
		linalg.Hermitize(d, d)
		linalg.Scale(d, -1, d)
		for r := 0; r < sizes[i]; r++ {
			d.Set(r, r, d.At(r, r)+complex(0.7, 0.05))
		}
	}
	for i := range a.Upper {
		up := linalg.New(sizes[i], sizes[i+1])
		for r := 0; r < up.Rows; r++ {
			for c := 0; c < up.Cols; c++ {
				if rng.Float64() < density {
					up.Set(r, c, complex(0.3*rng.NormFloat64(), 0.3*rng.NormFloat64()))
				}
			}
		}
		a.Upper[i] = linalg.Scale(linalg.New(up.Rows, up.Cols), -1, up)
		a.Lower[i] = a.Upper[i].H()
	}
	sigL := make([]*linalg.Matrix, nb)
	sigG := make([]*linalg.Matrix, nb)
	for i := 0; i < nb; i++ {
		m := linalg.New(sizes[i], sizes[i])
		for r := range m.Data {
			m.Data[r] = complex(0.2*rng.NormFloat64(), 0.2*rng.NormFloat64())
		}
		linalg.Hermitize(m, m)
		sigL[i] = linalg.Scale(linalg.New(sizes[i], sizes[i]), 1i, m)
		m2 := linalg.New(sizes[i], sizes[i])
		for r := range m2.Data {
			m2.Data[r] = complex(0.2*rng.NormFloat64(), 0.2*rng.NormFloat64())
		}
		linalg.Hermitize(m2, m2)
		sigG[i] = linalg.Scale(linalg.New(sizes[i], sizes[i]), -1i, m2)
	}
	return &Problem{A: a, SigL: sigL, SigG: sigG}
}

// solutionBlocks enumerates every block family of a Solution for
// comparison loops.
func solutionBlocks(s *Solution) map[string][]*linalg.Matrix {
	return map[string][]*linalg.Matrix{
		"GR": s.GR, "GL": s.GL, "GG": s.GG,
		"GRUpper": s.GRUpper, "GRLower": s.GRLower,
		"GLUpper": s.GLUpper, "GLLower": s.GLLower,
		"GGUpper": s.GGUpper, "GGLower": s.GGLower,
	}
}

func compareSolutions(t *testing.T, ctx string, got, want *Solution, tol float64) {
	t.Helper()
	wantBlocks := solutionBlocks(want)
	for name, gotFam := range solutionBlocks(got) {
		wantFam := wantBlocks[name]
		for i := range wantFam {
			if d := linalg.MaxDiff(gotFam[i], wantFam[i]); d > tol {
				t.Fatalf("%s: %s[%d] differs by %g (tol %g)", ctx, name, i, d, tol)
			}
		}
	}
}

// TestSparseRGFMatchesDense is the agreement test the Sparsity contract
// references: on a problem whose couplings qualify for sparse routing, the
// sparse path must match the dense path and the dense-inversion oracle at
// tolerance (the sparse kernels skip stored zeros, so bit-identity is not
// promised on routed interfaces).
func TestSparseRGFMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for _, sizes := range [][]int{{20, 24, 20}, {16, 16, 16, 16}, {24, 32, 24, 16}} {
		p := randomSparseCouplingProblem(rng, sizes, 0.1)
		dense, err := Solve(p)
		if err != nil {
			t.Fatalf("sizes %v dense: %v", sizes, err)
		}
		pS := &Problem{A: p.A, SigL: p.SigL, SigG: p.SigG, Sparsity: DefaultSparsity()}
		sp, err := Solve(pS)
		if err != nil {
			t.Fatalf("sizes %v sparse: %v", sizes, err)
		}
		// The routing must actually have engaged, or this test is vacuous.
		engaged := false
		for i := range sp.sp {
			if sp.sp[i].use {
				engaged = true
			}
		}
		if !engaged {
			t.Fatalf("sizes %v: no interface routed sparse", sizes)
		}
		compareSolutions(t, "sparse vs dense", sp, dense, 1e-8)

		grD, glD, ggD, err := DenseReference(p)
		if err != nil {
			t.Fatal(err)
		}
		for i := range sizes {
			if d := linalg.MaxDiff(sp.GR[i], blockAt(grD, p.A, i, i)); d > 1e-8 {
				t.Fatalf("sizes %v: sparse GR[%d] vs oracle differs by %g", sizes, i, d)
			}
			if d := linalg.MaxDiff(sp.GL[i], blockAt(glD, p.A, i, i)); d > 1e-8 {
				t.Fatalf("sizes %v: sparse GL[%d] vs oracle differs by %g", sizes, i, d)
			}
			if d := linalg.MaxDiff(sp.GG[i], blockAt(ggD, p.A, i, i)); d > 1e-8 {
				t.Fatalf("sizes %v: sparse GG[%d] vs oracle differs by %g", sizes, i, d)
			}
		}
	}
}

// TestSparsityGatesFallBackBitwise checks the two disqualification gates:
// dense couplings (density above Threshold) and small blocks (below
// MinDim) must leave every interface on the dense path, making a
// Sparsity-carrying solve bitwise identical to a Sparsity-nil one.
func TestSparsityGatesFallBackBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	cases := []struct {
		name string
		p    *Problem
	}{
		// Couplings at density ~0.9: far above the 0.25 threshold.
		{"dense-couplings", randomSparseCouplingProblem(rng, []int{20, 20, 20}, 0.9)},
		// Blocks below MinDim=16: sparse couplings but gated by size.
		{"small-blocks", randomSparseCouplingProblem(rng, []int{6, 8, 6}, 0.1)},
	}
	for _, tc := range cases {
		want, err := Solve(tc.p)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		pS := &Problem{A: tc.p.A, SigL: tc.p.SigL, SigG: tc.p.SigG, Sparsity: DefaultSparsity()}
		got, err := Solve(pS)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for i := range got.sp {
			if got.sp[i].use {
				t.Fatalf("%s: interface %d routed sparse; gate failed", tc.name, i)
			}
		}
		compareSolutions(t, tc.name, got, want, 0) // bitwise: same code path
	}
}

// TestSparseSolveIntoSteadyStateAllocs extends the zero-alloc steady-state
// contract to the sparse path: the per-solve extraction reuses all its
// storage once warm.
func TestSparseSolveIntoSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	p := randomSparseCouplingProblem(rng, []int{20, 20, 20, 20}, 0.1)
	p.Sparsity = DefaultSparsity()
	ws := linalg.NewWorkspace()
	var sol *Solution
	var err error
	if sol, err = SolveInto(p, ws, sol); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if sol, err = SolveInto(p, ws, sol); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Errorf("warm sparse SolveInto allocates %.1f times per solve, want ≤ 2", allocs)
	}
}
