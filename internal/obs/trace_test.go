package obs

import (
	"bytes"
	"sync"
	"testing"
)

// TestNilTracerIsFree pins the disabled-path contract: every method of a
// nil tracer is callable and records nothing — the guarantee that lets
// the solver hot paths carry unconditional instrumentation.
func TestNilTracerIsFree(t *testing.T) {
	var tr *Tracer
	start := tr.Begin()
	if start != 0 {
		t.Errorf("nil Begin = %d, want 0", start)
	}
	tr.End(0, 0, "rgf", "rgf/el", 1, 2, start)
	tr.Add(Span{Name: "x"})
	if tr.Len() != 0 {
		t.Errorf("nil Len = %d, want 0", tr.Len())
	}
	if tr.Trace() != nil {
		t.Error("nil Trace() should be nil")
	}
	if n := testing.AllocsPerRun(100, func() {
		s := tr.Begin()
		tr.End(0, 0, "bc", "bc/el", 0, 0, s)
	}); n != 0 {
		t.Errorf("nil tracer allocates %v per span, want 0", n)
	}
}

// TestChromeRoundTrip records spans on several ranks/tracks, exports
// Chrome trace-event JSON, parses it back, and checks the schema: one X
// event per span with µs timestamps, pid = rank+1, tid = track, args
// carrying the grid point, plus a process_name metadata event per rank.
func TestChromeRoundTrip(t *testing.T) {
	tr := NewTracer()
	s := tr.Begin()
	tr.End(0, 1, "rgf", "rgf/el", 0, 3, s)
	tr.End(1, 0, "exchange", "exchange/GD", -1, -1, s)
	tr.Add(Span{Name: "sse/tile", Cat: "sse", Rank: 1, Track: 0, I: -1, J: -1, Start: 10, Dur: 20})

	var buf bytes.Buffer
	if err := tr.Trace().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	ct, err := ParseChrome(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}

	var meta, complete int
	cats := map[string]bool{}
	for _, ev := range ct.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			cats[ev.Cat] = true
			if ev.Pid < 1 {
				t.Errorf("event %q: pid = %d, want rank+1 >= 1", ev.Name, ev.Pid)
			}
			if ev.Ts < 0 || ev.Dur < 0 {
				t.Errorf("event %q: negative ts/dur (%g/%g)", ev.Name, ev.Ts, ev.Dur)
			}
		default:
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
	}
	if complete != 3 {
		t.Errorf("complete events = %d, want 3", complete)
	}
	if meta != 2 { // two distinct ranks
		t.Errorf("metadata events = %d, want 2", meta)
	}
	for _, c := range []string{"rgf", "exchange", "sse"} {
		if !cats[c] {
			t.Errorf("category %q missing from the export", c)
		}
	}
	// The point-solve span must carry its grid coordinates.
	found := false
	for _, ev := range ct.TraceEvents {
		if ev.Name == "rgf/el" {
			found = true
			if ev.Args["i"] != float64(0) || ev.Args["j"] != float64(3) {
				t.Errorf("rgf/el args = %v, want i=0 j=3", ev.Args)
			}
		}
	}
	if !found {
		t.Error("rgf/el event missing")
	}
}

// TestTracerConcurrent records from many goroutines — the -race check
// for the shared-tracer model (all ranks of a world share one).
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s := tr.Begin()
				tr.End(rank, 0, "iter", "iter", i, -1, s)
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != workers*per {
		t.Errorf("Len = %d, want %d", tr.Len(), workers*per)
	}
	// Snapshot must be sorted by start time.
	spans := tr.Trace().Spans
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].Start {
			t.Fatalf("spans not sorted at %d", i)
		}
	}
}
