package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Span is one recorded phase of a run: what ran (Name within category
// Cat), where (Rank, and Track separating concurrent lanes within the
// rank — 0 is the rank-serial lane, point solves and executor workers
// get their own), over which (i, j) grid point (-1 when not a point
// solve), and when (nanosecond offsets from the tracer's start).
type Span struct {
	Name  string `json:"name"`
	Cat   string `json:"cat"`
	Rank  int    `json:"rank"`
	Track int    `json:"track"`
	I     int    `json:"i"`
	J     int    `json:"j"`
	Start int64  `json:"start_ns"`
	Dur   int64  `json:"dur_ns"`
}

// Tracer records spans for one run. A nil Tracer is the disabled state:
// every method is safe to call on it and does nothing, so instrumented
// code pays one nil check per seam — no allocation, no lock — when
// tracing is off. Recording is mutex-guarded and safe from any number
// of goroutines (solver workers, executor workers, all ranks of a
// simulated world share one tracer).
type Tracer struct {
	t0 time.Time

	mu    sync.Mutex
	spans []Span
}

// NewTracer starts a tracer; its clock zero is now.
func NewTracer() *Tracer { return &Tracer{t0: time.Now()} }

// Begin returns the current trace clock (ns since start) to later pass
// to End. On a nil tracer it returns 0 without reading the clock.
func (t *Tracer) Begin() int64 {
	if t == nil {
		return 0
	}
	return int64(time.Since(t.t0))
}

// End records a span from start (a Begin value) to now. No-op on nil.
// Pass i, j = -1 when the span is not a grid-point solve.
func (t *Tracer) End(rank, track int, cat, name string, i, j int, start int64) {
	if t == nil {
		return
	}
	end := int64(time.Since(t.t0))
	t.Add(Span{Name: name, Cat: cat, Rank: rank, Track: track, I: i, J: j, Start: start, Dur: end - start})
}

// Add appends a fully formed span — the raw hook for observers that
// already measured their own interval. No-op on nil.
func (t *Tracer) Add(sp Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
}

// Len reports the number of recorded spans (0 on nil).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Trace snapshots the recorded spans into an immutable Trace, sorted by
// start time. Nil tracer yields nil.
func (t *Tracer) Trace() *Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := append([]Span(nil), t.spans...)
	t.mu.Unlock()
	sort.SliceStable(spans, func(a, b int) bool { return spans[a].Start < spans[b].Start })
	return &Trace{Spans: spans}
}

// Trace is a finished span recording — what a Result carries and what
// the qtd registry stores per run.
type Trace struct {
	Spans []Span `json:"spans"`
}

// ChromeEvent is one trace-event of the Chrome/Perfetto JSON format.
type ChromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the JSON-object form of the trace-event format; load
// the serialized bytes in Perfetto (ui.perfetto.dev) or
// chrome://tracing.
type ChromeTrace struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit,omitempty"`
}

// Chrome converts the trace into trace-event form: one complete ("X")
// event per span, processes named per rank (pid = rank+1), threads per
// track, plus the metadata events naming them.
func (tr *Trace) Chrome() *ChromeTrace {
	ct := &ChromeTrace{DisplayTimeUnit: "ns"}
	ranks := map[int]bool{}
	for _, sp := range tr.Spans {
		if !ranks[sp.Rank] {
			ranks[sp.Rank] = true
			ct.TraceEvents = append(ct.TraceEvents, ChromeEvent{
				Name: "process_name", Ph: "M", Pid: sp.Rank + 1, Tid: 0,
				Args: map[string]any{"name": fmt.Sprintf("rank %d", sp.Rank)},
			})
		}
		ev := ChromeEvent{
			Name: sp.Name, Cat: sp.Cat, Ph: "X",
			Ts: float64(sp.Start) / 1e3, Dur: float64(sp.Dur) / 1e3,
			Pid: sp.Rank + 1, Tid: sp.Track,
		}
		if sp.I >= 0 || sp.J >= 0 {
			ev.Args = map[string]any{"i": sp.I, "j": sp.J}
		}
		ct.TraceEvents = append(ct.TraceEvents, ev)
	}
	return ct
}

// WriteChrome serializes the trace as Chrome trace-event JSON.
func (tr *Trace) WriteChrome(w io.Writer) error {
	return json.NewEncoder(w).Encode(tr.Chrome())
}

// ParseChrome parses Chrome trace-event JSON (the round-trip check the
// tests and the service E2E use).
func ParseChrome(b []byte) (*ChromeTrace, error) {
	var ct ChromeTrace
	if err := json.Unmarshal(b, &ct); err != nil {
		return nil, fmt.Errorf("obs: parse chrome trace: %w", err)
	}
	return &ct, nil
}
