// Package obs is the dependency-free observability layer: a small
// metrics registry (counters, gauges, histograms, optionally labeled)
// with Prometheus text exposition, and a per-run span tracer exported as
// Chrome trace-event JSON (Perfetto-loadable).
//
// Overhead contract: everything is opt-in and nil-safe. A nil *Tracer
// records nothing — every recording method is a single nil check, no
// allocation, no atomic — so instrumented hot paths (the negf point
// solves, the dist exchanges) cost nothing when tracing is off. Metric
// updates are lock-free atomics; label lookup takes one mutex, so hot
// loops should hold the resolved *Counter/*Histogram, not call With per
// event.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds metric families and renders them in Prometheus text
// exposition format. Families expose in registration order, series
// within a family in sorted label order, so the output is deterministic.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// family is one named metric with a fixed label schema and one series
// per label-value combination.
type family struct {
	name, help, typ string
	labels          []string
	buckets         []float64      // histograms only
	fn              func() float64 // *Func metrics: read at exposition time

	mu     sync.Mutex
	series map[string]metric
	keys   []string // sorted lazily at exposition
}

type metric interface {
	write(w io.Writer, fam *family, labelValues []string) error
}

func (r *Registry) register(name, help, typ string, labels []string, buckets []float64, fn func() float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic("obs: duplicate metric " + name)
	}
	f := &family{
		name: name, help: help, typ: typ,
		labels: labels, buckets: buckets, fn: fn,
		series: map[string]metric{},
	}
	r.fams = append(r.fams, f)
	r.byName[name] = f
	return f
}

// labelKey joins label values with an unprintable separator; it is the
// series map key.
func labelKey(values []string) string { return strings.Join(values, "\x1f") }

func (f *family) with(values []string, mk func() metric) metric {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	k := labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.series[k]
	if !ok {
		m = mk()
		f.series[k] = m
		f.keys = append(f.keys, k)
	}
	return m
}

// ── Counter ──────────────────────────────────────────────────────────

// Counter is a monotonically increasing value.
type Counter struct{ bits atomic.Uint64 }

// Add increments the counter by v (v must be >= 0; negative deltas are
// a programming error and are dropped).
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

func (c *Counter) write(w io.Writer, f *family, lv []string) error {
	return writeSample(w, f.name, f.labels, lv, "", "", c.Value())
}

// Counter registers an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, "counter", nil, nil, nil)
	return f.with(nil, func() metric { return &Counter{} }).(*Counter)
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, "counter", labels, nil, nil)}
}

// With returns (creating on first use) the series for the label values.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.with(values, func() metric { return &Counter{} }).(*Counter)
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time — for monotone values another subsystem already
// counts (e.g. cache hit totals).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, "counter", nil, nil, fn)
}

// ── Gauge ────────────────────────────────────────────────────────────

// Gauge is a value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments by v (may be negative).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) write(w io.Writer, f *family, lv []string) error {
	return writeSample(w, f.name, f.labels, lv, "", "", g.Value())
}

// Gauge registers an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, "gauge", nil, nil, nil)
	return f.with(nil, func() metric { return &Gauge{} }).(*Gauge)
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, "gauge", labels, nil, nil)}
}

// With returns (creating on first use) the series for the label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.with(values, func() metric { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers a gauge whose value is read from fn at exposition
// time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, "gauge", nil, nil, fn)
}

// ── Histogram ────────────────────────────────────────────────────────

// Histogram counts observations into cumulative buckets (Prometheus
// semantics: bucket le=x counts observations <= x; an observation equal
// to an edge lands in that edge's bucket).
type Histogram struct {
	buckets []float64
	counts  []atomic.Int64 // len(buckets)+1; last is +Inf overflow
	sumBits atomic.Uint64
	count   atomic.Int64
}

func newHistogram(buckets []float64) *Histogram {
	return &Histogram{buckets: buckets, counts: make([]atomic.Int64, len(buckets)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.buckets, v) // first bucket with edge >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// BucketCounts returns the per-bucket (non-cumulative) counts, the last
// entry being the +Inf overflow bucket.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

func (h *Histogram) write(w io.Writer, f *family, lv []string) error {
	var cum int64
	for i, edge := range h.buckets {
		cum += h.counts[i].Load()
		if err := writeSample(w, f.name+"_bucket", f.labels, lv, "le", formatFloat(edge), float64(cum)); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.buckets)].Load()
	if err := writeSample(w, f.name+"_bucket", f.labels, lv, "le", "+Inf", float64(cum)); err != nil {
		return err
	}
	if err := writeSample(w, f.name+"_sum", f.labels, lv, "", "", h.Sum()); err != nil {
		return err
	}
	return writeSample(w, f.name+"_count", f.labels, lv, "", "", float64(h.count.Load()))
}

// Histogram registers an unlabeled histogram with the given ascending
// bucket edges.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	checkBuckets(buckets)
	f := r.register(name, help, "histogram", nil, buckets, nil)
	return f.with(nil, func() metric { return newHistogram(buckets) }).(*Histogram)
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	checkBuckets(buckets)
	return &HistogramVec{r.register(name, help, "histogram", labels, buckets, nil)}
}

// With returns (creating on first use) the series for the label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.with(values, func() metric { return newHistogram(v.f.buckets) }).(*Histogram)
}

func checkBuckets(buckets []float64) {
	if len(buckets) == 0 {
		panic("obs: histogram needs at least one bucket edge")
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("obs: histogram bucket edges must ascend")
		}
	}
}

// ExpBuckets returns n edges starting at start, each factor times the
// previous — the standard latency/size bucket layout.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets wants start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// ── Exposition ───────────────────────────────────────────────────────

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		if f.fn != nil {
			if err := writeSample(w, f.name, nil, nil, "", "", f.fn()); err != nil {
				return err
			}
			continue
		}
		f.mu.Lock()
		keys := append([]string(nil), f.keys...)
		f.mu.Unlock()
		sort.Strings(keys)
		for _, k := range keys {
			f.mu.Lock()
			m := f.series[k]
			f.mu.Unlock()
			var lv []string
			if len(f.labels) > 0 {
				lv = strings.Split(k, "\x1f")
			}
			if err := m.write(w, f, lv); err != nil {
				return err
			}
		}
	}
	return nil
}

// Handler serves WritePrometheus — mount it on /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// writeSample renders one sample line; extraK/extraV append one more
// label (the histogram's le).
func writeSample(w io.Writer, name string, labels, values []string, extraK, extraV string, v float64) error {
	var sb strings.Builder
	sb.WriteString(name)
	if len(labels) > 0 || extraK != "" {
		sb.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(l)
			sb.WriteString(`="`)
			sb.WriteString(escapeLabel(values[i]))
			sb.WriteByte('"')
		}
		if extraK != "" {
			if len(labels) > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(extraK)
			sb.WriteString(`="`)
			sb.WriteString(escapeLabel(extraV))
			sb.WriteByte('"')
		}
		sb.WriteByte('}')
	}
	sb.WriteByte(' ')
	sb.WriteString(formatFloat(v))
	sb.WriteByte('\n')
	_, err := io.WriteString(w, sb.String())
	return err
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
