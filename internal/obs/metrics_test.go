package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketEdges pins the Prometheus edge semantics: an
// observation exactly on a bucket edge counts into that bucket (le is
// inclusive), one just above rolls to the next, and values beyond the
// last edge land in +Inf.
func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("edges", "edge test", []float64{1, 2.5, 10})

	h.Observe(1)    // == first edge → bucket le=1
	h.Observe(1.01) // → le=2.5
	h.Observe(2.5)  // == edge → le=2.5
	h.Observe(10)   // == last edge → le=10
	h.Observe(10.5) // → +Inf
	h.Observe(-3)   // below every edge → le=1

	want := []int64{2, 2, 1, 1}
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d: count = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 6 {
		t.Errorf("Count = %d, want 6", h.Count())
	}
	if math.Abs(h.Sum()-22.01) > 1e-12 {
		t.Errorf("Sum = %g, want 22.01", h.Sum())
	}
}

// TestConcurrentCounters hammers one counter, one gauge, and one
// histogram from many goroutines — the -race check that the lock-free
// update paths are clean and lose no increments.
func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("hits", "h", "tenant").With("acme")
	g := r.Gauge("depth", "g")
	h := r.Histogram("lat", "l", []float64{1, 10})

	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()

	if c.Value() != workers*per {
		t.Errorf("counter = %g, want %d", c.Value(), workers*per)
	}
	if g.Value() != 0 {
		t.Errorf("gauge = %g, want 0", g.Value())
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
}

// TestPrometheusExposition is the exposition golden: families in
// registration order, series sorted by label values, histogram with
// cumulative buckets, +Inf, sum and count, and escaped label values.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	q := r.GaugeVec("qtd_queue_depth", "Jobs waiting per tenant.", "tenant")
	q.With("beta").Set(2)
	q.With("acme").Set(3)
	runs := r.CounterVec("qtd_runs_total", "Finished runs.", "tenant", "status")
	runs.With("acme", "done").Add(5)
	h := r.Histogram("qtd_run_duration_seconds", "Run wall time.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(30)
	r.GaugeFunc("qtd_slots", "Solver slots.", func() float64 { return 4 })
	esc := r.CounterVec("weird", "Label escaping.", "name")
	esc.With("a\"b\\c\nd").Inc()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP qtd_queue_depth Jobs waiting per tenant.
# TYPE qtd_queue_depth gauge
qtd_queue_depth{tenant="acme"} 3
qtd_queue_depth{tenant="beta"} 2
# HELP qtd_runs_total Finished runs.
# TYPE qtd_runs_total counter
qtd_runs_total{tenant="acme",status="done"} 5
# HELP qtd_run_duration_seconds Run wall time.
# TYPE qtd_run_duration_seconds histogram
qtd_run_duration_seconds_bucket{le="0.1"} 1
qtd_run_duration_seconds_bucket{le="1"} 2
qtd_run_duration_seconds_bucket{le="+Inf"} 3
qtd_run_duration_seconds_sum 30.55
qtd_run_duration_seconds_count 3
# HELP qtd_slots Solver slots.
# TYPE qtd_slots gauge
qtd_slots 4
# HELP weird Label escaping.
# TYPE weird counter
weird{name="a\"b\\c\nd"} 1
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestExpBuckets checks the helper's geometric layout.
func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(0.25, 2, 4)
	want := []float64{0.25, 0.5, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}

// TestDuplicateRegistrationPanics pins that re-registering a name is a
// programming error, not a silent overwrite.
func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "first")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("x", "second")
}
