package decomp

import (
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/device"
	"repro/internal/sse"
	"repro/internal/tensor"
)

// testInput builds a small physical-shaped SSE input (same construction as
// the sse package tests).
func testInput(t testing.TB) *sse.Input {
	t.Helper()
	p := device.TestParams(12, 3, 2)
	p.NE = 10
	p.Nomega = 3
	dev, err := device.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	fill := func(data []complex128) {
		for i := range data {
			data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
	}
	gl := tensor.NewElectron(p.Nkz, p.NE, p.Na, p.Norb)
	gg := tensor.NewElectron(p.Nkz, p.NE, p.Na, p.Norb)
	nbp1 := dev.MaxNb() + 1
	dl := tensor.NewPhonon(p.Nqz(), p.Nomega, p.Na, nbp1, device.N3D)
	dg := tensor.NewPhonon(p.Nqz(), p.Nomega, p.Na, nbp1, device.N3D)
	fill(gl.Data)
	fill(gg.Data)
	fill(dl.Data)
	fill(dg.Data)
	return &sse.Input{Dev: dev, GL: gl, GG: gg, DL: dl, DG: dg}
}

func relDiff(a, b []complex128) float64 {
	var mx, den float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > mx {
			mx = d
		}
		if m := cmplx.Abs(b[i]); m > den {
			den = m
		}
	}
	if den == 0 {
		return mx
	}
	return mx / den
}

func checkAgainstSequential(t *testing.T, got *sse.Output, in *sse.Input, label string) {
	t.Helper()
	want := (sse.DaCe{}).Compute(in)
	for _, cmp := range []struct {
		name string
		a, b []complex128
	}{
		{"SigL", got.SigL.Data, want.SigL.Data},
		{"SigG", got.SigG.Data, want.SigG.Data},
		{"PiL", got.PiL.Data, want.PiL.Data},
		{"PiG", got.PiG.Data, want.PiG.Data},
	} {
		if rel := relDiff(cmp.a, cmp.b); rel > 1e-9 {
			t.Fatalf("%s: %s differs from sequential by rel %g", label, cmp.name, rel)
		}
	}
}

func TestOMENLayoutPartition(t *testing.T) {
	p := device.TestParams(12, 3, 2)
	p.NE = 10
	l := NewOMENLayout(p, 4)
	seen := make(map[[2]int]int)
	for r := 0; r < 4; r++ {
		for _, pr := range l.OwnedPairs(r) {
			seen[pr]++
			if l.PairOwner(pr[0], pr[1]) != r {
				t.Fatal("OwnedPairs inconsistent with PairOwner")
			}
		}
	}
	if len(seen) != p.Nkz*p.NE {
		t.Fatalf("pairs covered: %d of %d", len(seen), p.Nkz*p.NE)
	}
	for pr, n := range seen {
		if n != 1 {
			t.Fatalf("pair %v owned %d times", pr, n)
		}
	}
}

func TestDaCeLayoutTiles(t *testing.T) {
	in := testInput(t)
	l := NewDaCeLayout(in.Dev, 3, 2)
	if l.P() != 6 {
		t.Fatal("P wrong")
	}
	covered := make([]int, in.Dev.P.Na)
	for ta := 0; ta < 3; ta++ {
		for _, a := range l.OwnedAtoms(ta) {
			covered[a]++
		}
		// The atom set must contain every owned atom plus all neighbours.
		set := make(map[int]bool)
		for _, a := range l.AtomSet(ta) {
			set[a] = true
		}
		for _, a := range l.OwnedAtoms(ta) {
			if !set[a] {
				t.Fatal("owned atom missing from atom set")
			}
			for _, b := range in.Dev.Neigh[a] {
				if !set[b] {
					t.Fatalf("neighbour %d of %d missing from halo", b, a)
				}
			}
		}
	}
	for a, n := range covered {
		if n != 1 {
			t.Fatalf("atom %d owned %d times", a, n)
		}
	}
	// Energy ranges partition [0, NE).
	covE := make([]int, in.Dev.P.NE)
	for te := 0; te < 2; te++ {
		lo, hi := l.EnergyRange(te)
		for e := lo; e < hi; e++ {
			covE[e]++
		}
		hLo, hHi := l.EnergyHalo(te)
		if hLo > lo || hHi < hi {
			t.Fatal("halo must contain the owned range")
		}
	}
	for e, n := range covE {
		if n != 1 {
			t.Fatalf("energy %d owned %d times", e, n)
		}
	}
}

func TestDistributedOMENMatchesSequential(t *testing.T) {
	in := testInput(t)
	for _, ranks := range []int{1, 2, 4, 6} {
		w := comm.NewWorld(ranks)
		got, _, err := RunOMEN(w, in, ranks)
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		checkAgainstSequential(t, got, in, "OMEN")
	}
}

func TestDistributedDaCeMatchesSequential(t *testing.T) {
	in := testInput(t)
	for _, tile := range [][2]int{{1, 1}, {2, 1}, {1, 2}, {2, 2}, {3, 2}, {4, 1}} {
		w := comm.NewWorld(tile[0] * tile[1])
		got, _, err := RunDaCe(w, in, tile[0], tile[1])
		if err != nil {
			t.Fatalf("tile %v: %v", tile, err)
		}
		checkAgainstSequential(t, got, in, "DaCe")
	}
}

func TestDaCeVolumeMuchLowerThanOMEN(t *testing.T) {
	// The §5.2 headline: on the same rank count, the communication-avoiding
	// decomposition moves far less data than the momentum×energy scheme.
	in := testInput(t)
	const ranks = 6
	_, so, err := RunOMEN(comm.NewWorld(ranks), in, ranks)
	if err != nil {
		t.Fatal(err)
	}
	_, sd, err := RunDaCe(comm.NewWorld(ranks), in, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sd.BytesSent >= so.BytesSent {
		t.Fatalf("DaCe (%d B) should move less than OMEN (%d B)", sd.BytesSent, so.BytesSent)
	}
	ratio := float64(so.BytesSent) / float64(sd.BytesSent)
	t.Logf("measured volume: OMEN %d B, DaCe %d B, reduction %.1fx", so.BytesSent, sd.BytesSent, ratio)
	if ratio < 1.5 {
		t.Fatalf("expected a substantial reduction even at toy scale, got %.2fx", ratio)
	}
}

func TestVolumeReductionGrowsWithAccuracy(t *testing.T) {
	// Table 4's signature: the OMEN/DaCe volume ratio grows with the
	// number of phonon frequencies (and with Nkz·Nqz), because the OMEN
	// scheme replicates G≷ once per (qz, ω) while the alltoall volume only
	// gains a fixed 2Nω energy halo.
	ratioAt := func(nw int) float64 {
		p := device.TestParams(12, 3, 2)
		p.NE = 12
		p.Nomega = nw
		dev := device.MustBuild(p)
		rng := rand.New(rand.NewSource(5))
		gl := tensor.NewElectron(p.Nkz, p.NE, p.Na, p.Norb)
		gg := tensor.NewElectron(p.Nkz, p.NE, p.Na, p.Norb)
		nbp1 := dev.MaxNb() + 1
		dl := tensor.NewPhonon(p.Nqz(), p.Nomega, p.Na, nbp1, device.N3D)
		dg := tensor.NewPhonon(p.Nqz(), p.Nomega, p.Na, nbp1, device.N3D)
		for _, buf := range [][]complex128{gl.Data, gg.Data, dl.Data, dg.Data} {
			for i := range buf {
				buf[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			}
		}
		in := &sse.Input{Dev: dev, GL: gl, GG: gg, DL: dl, DG: dg}
		_, so, err := RunOMEN(comm.NewWorld(6), in, 6)
		if err != nil {
			t.Fatal(err)
		}
		_, sd, err := RunDaCe(comm.NewWorld(6), in, 3, 2)
		if err != nil {
			t.Fatal(err)
		}
		return float64(so.BytesSent) / float64(sd.BytesSent)
	}
	r2, r5 := ratioAt(2), ratioAt(5)
	t.Logf("volume reduction: %.2fx at Nω=2, %.2fx at Nω=5", r2, r5)
	if r5 <= r2 {
		t.Fatalf("reduction should grow with Nω: %.2f vs %.2f", r2, r5)
	}
}

func TestDaCeUsesConstantCollectiveCount(t *testing.T) {
	in := testInput(t)
	_, sd, err := RunDaCe(comm.NewWorld(6), in, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := sd.Collectives["Alltoallv"]; got != 4 {
		t.Fatalf("DaCe must use exactly 4 Alltoallv, got %d", got)
	}
	if sd.Sends != 0 {
		t.Fatalf("DaCe should need no point-to-point traffic, got %d sends", sd.Sends)
	}
}

func TestOMENInvocationCountsScaleWithPhononPoints(t *testing.T) {
	in := testInput(t)
	p := in.Dev.P
	_, so, err := RunOMEN(comm.NewWorld(4), in, 4)
	if err != nil {
		t.Fatal(err)
	}
	nRounds := int64(p.Nqz() * p.Nomega)
	if so.Collectives["Bcast"] != nRounds {
		t.Fatalf("OMEN broadcasts %d, want one per (qz,ω) round %d", so.Collectives["Bcast"], nRounds)
	}
	if so.Sends == 0 {
		t.Fatal("OMEN scheme must generate point-to-point replication traffic")
	}
}

func TestOMENVolumeGrowsWithRanks(t *testing.T) {
	// The D broadcast and Π reduction volumes grow linearly with the rank
	// count — the strong-scaling penalty of Table 5.
	in := testInput(t)
	_, s2, err := RunOMEN(comm.NewWorld(2), in, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, s6, err := RunOMEN(comm.NewWorld(6), in, 6)
	if err != nil {
		t.Fatal(err)
	}
	if s6.BytesSent <= s2.BytesSent {
		t.Fatalf("OMEN volume should grow with ranks: %d (P=2) vs %d (P=6)", s2.BytesSent, s6.BytesSent)
	}
}

func TestUnevenRankCounts(t *testing.T) {
	// Rank counts that do not divide the pair or atom counts still
	// partition correctly (block distribution with remainders).
	in := testInput(t)
	for _, ranks := range []int{3, 5, 7} {
		got, _, err := RunOMEN(comm.NewWorld(ranks), in, ranks)
		if err != nil {
			t.Fatalf("OMEN ranks=%d: %v", ranks, err)
		}
		checkAgainstSequential(t, got, in, "OMEN-uneven")
	}
	for _, tile := range [][2]int{{5, 1}, {1, 5}, {3, 1}} {
		got, _, err := RunDaCe(comm.NewWorld(tile[0]*tile[1]), in, tile[0], tile[1])
		if err != nil {
			t.Fatalf("DaCe tile %v: %v", tile, err)
		}
		checkAgainstSequential(t, got, in, "DaCe-uneven")
	}
}

func TestMoreRanksThanPhononPoints(t *testing.T) {
	// With more ranks than phonon points, some ranks own none — the
	// broadcast/reduce rounds must still complete and verify.
	in := testInput(t) // Nqz*Nω = 3*3 = 9 points
	got, _, err := RunOMEN(comm.NewWorld(12), in, 12)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstSequential(t, got, in, "OMEN-sparse-ownership")
}

// TestMixedExchangeMatchesSequential: the plan-driven exchange under
// Mixed precision — binary16 wire payloads on all four Alltoallv stages
// plus the mixed tile kernel — must reproduce the sequential fp64 kernel
// within the quantization tolerance, while moving measurably fewer bytes
// than the fp64 exchange at the identical decomposition.
func TestMixedExchangeMatchesSequential(t *testing.T) {
	in := testInput(t)
	want := (sse.DaCe{}).Compute(in)

	runPrec := func(prec Precision) (*sse.Output, comm.Stats) {
		p := in.Dev.P
		l := NewDaCeLayout(in.Dev, 3, 2)
		w := comm.NewWorld(l.P())
		src := NewOMENLayout(p, l.P())
		atomSets := l.AtomSets()
		final := newGathered(in)
		err := w.Run(func(c *comm.Comm) error {
			r := c.Rank()
			local := localInput(in, func(ik, ie int) bool { return src.PairOwner(ik, ie) == r },
				func(iq, m int) bool { return src.PhononOwner(iq, m) == r })
			pl := NewDaCePlan(r, l, src, atomSets, local).WithPrecision(prec)
			pl.UnpackG(c.Alltoallv(pl.PackG()))
			pl.UnpackD(c.Alltoallv(pl.PackD()))
			pl.ComputeTile()
			pl.UnpackSigma(c.Alltoallv(pl.PackSigma()))
			pl.UnpackPi(c.Alltoallv(pl.PackPi()))
			// The verification gather below adds traffic, but the assertions
			// filter on the "Alltoallv" counter, so no snapshot is needed.
			gatherOMEN(c, src, pl.Output(), final)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return final, w.Stats()
	}

	got, mixedStats := runPrec(Mixed)
	for _, cmp := range []struct {
		name string
		a, b []complex128
	}{
		{"SigL", got.SigL.Data, want.SigL.Data},
		{"SigG", got.SigG.Data, want.SigG.Data},
		{"PiL", got.PiL.Data, want.PiL.Data},
		{"PiG", got.PiG.Data, want.PiG.Data},
	} {
		if rel := relDiff(cmp.a, cmp.b); rel > 5e-3 {
			t.Errorf("mixed exchange: %s deviates from sequential fp64 by rel %g (tol 5e-3)", cmp.name, rel)
		}
	}

	_, fpStats := runPrec(FP64)
	fpB := fpStats.CollectiveBytes["Alltoallv"]
	mxB := mixedStats.CollectiveBytes["Alltoallv"]
	if fpB == 0 || mxB == 0 {
		t.Fatalf("missing exchange traffic: fp64 %d, mixed %d", fpB, mxB)
	}
	if ratio := float64(fpB) / float64(mxB); ratio < 1.8 {
		t.Errorf("mixed exchange reduction %.2fx < 1.8x", ratio)
	}
}

// TestPrecisionParse covers the CLI mapping.
func TestPrecisionParse(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Precision
		ok   bool
	}{{"fp64", FP64, true}, {"mixed", Mixed, true}, {"fp16", FP64, false}, {"", FP64, false}} {
		got, err := ParsePrecision(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParsePrecision(%q) = %v, %v", tc.in, got, err)
		}
	}
	if FP64.String() != "fp64" || Mixed.String() != "mixed" {
		t.Error("Precision.String spellings changed")
	}
}
