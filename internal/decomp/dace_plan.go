package decomp

import (
	"fmt"
	"sync/atomic"

	"repro/internal/comm"
	"repro/internal/half"
	"repro/internal/sse"
)

// Precision selects the numeric and wire format of an SSE exchange.
type Precision int

const (
	// FP64 is the full-width baseline: fp64 tile kernel, complex128
	// payloads on every Alltoallv.
	FP64 Precision = iota
	// Mixed is the §5.4 path threaded through the distributed exchange:
	// the tile runs the normalized mixed-precision SSE kernel, and all
	// four Alltoallv exchanges ship split-complex binary16 wire payloads
	// (internal/half's wire format) with per-block normalization factors
	// and automatic fp64 fallback for unquantizable blocks.
	Mixed
)

func (p Precision) String() string {
	if p == Mixed {
		return "mixed"
	}
	return "fp64"
}

// ParsePrecision maps the CLI spelling to a Precision.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "fp64":
		return FP64, nil
	case "mixed":
		return Mixed, nil
	}
	return FP64, fmt.Errorf("decomp: unknown precision %q (want fp64 or mixed)", s)
}

// DaCePlan stages the communication-avoiding SSE phase of one rank into
// its pack / unpack / compute pieces, so both execution styles share one
// implementation:
//
//   - the blocking ExchangeDaCe drives the stages back-to-back through
//     Alltoallv, reproducing the bulk-synchronous phase exactly;
//   - the task-graph runtime (internal/dist with ScheduleOverlap) posts
//     each pack through comm.IAlltoallv as soon as its inputs exist and
//     overlaps the waits with unrelated compute.
//
// The stage pairs are (#1 G≷, #2 D≷, #3 Σ≷, #4 Π≷) of the Fig. 5 (right)
// scheme. Pack and unpack orders are identical between the two drivers,
// so the overlapped execution is bitwise equal to the bulk-synchronous
// one.
type DaCePlan struct {
	l        *DaCeLayout
	src      *OMENLayout
	atomSets [][]int
	in       *sse.Input
	out      *sse.Output

	rank       int
	ranks      int
	myTa, myTe int
	bl, pbl    int

	prec  Precision
	probe bool
	// Probe accumulators, written by ComputeTile and read after
	// (graph-ordered): absolute ∞-norm deviation and reference ∞-norm of
	// this tile's output, per tensor class ([0] Σ≷ pair, [1] Π≷ pair).
	probeDev, probeRef [2]float64

	offRankBytes   atomic.Int64 // post nodes may pack concurrently
	fallbackBlocks atomic.Int64 // fp64-passthrough segments under Mixed
}

// NewDaCePlan builds the plan for one rank of the world. local holds
// full-shape tensors with the rank's owned electron pairs and phonon
// points filled (per src); its non-owned halo planes are overwritten by
// the unpack stages.
func NewDaCePlan(rank int, l *DaCeLayout, src *OMENLayout, atomSets [][]int, local *sse.Input) *DaCePlan {
	myTa, myTe := l.TileOf(rank)
	return &DaCePlan{
		l: l, src: src, atomSets: atomSets, in: local,
		rank: rank, ranks: l.P(), myTa: myTa, myTe: myTe,
		bl:  local.GL.BlockLen(),
		pbl: local.DL.BlockLen() * local.DL.NbP1,
	}
}

// WithPrecision selects the plan's numeric/wire format (default FP64)
// and returns the plan for chaining. Must be set before any pack stage.
func (pl *DaCePlan) WithPrecision(p Precision) *DaCePlan {
	pl.prec = p
	return pl
}

// WithErrorProbe makes ComputeTile additionally run the fp64 reference
// kernel on the same (wire-decoded) inputs and record the normwise
// relative deviation of the mixed tile's Σ≷/Π≷ — the per-iteration
// precision-error telemetry. Doubles the tile compute; diagnostics only.
func (pl *DaCePlan) WithErrorProbe() *DaCePlan {
	pl.probe = true
	return pl
}

// ProbeDeviation returns the probe's absolute ∞-norm deviation and
// reference ∞-norm per tensor class ([0] Σ≷, [1] Π≷), valid after
// ComputeTile (all zero without WithErrorProbe or under FP64). The
// caller forms the relative deviation only after max-reducing both
// numbers across ranks: a tile's Π≷ partial can cancel to near zero
// locally while the global field is large, so a locally formed ratio
// would wildly overstate the error.
func (pl *DaCePlan) ProbeDeviation() (dev, ref [2]float64) {
	return pl.probeDev, pl.probeRef
}

// OffRankBytes reports the payload packed for other ranks so far — the
// measured SSE traffic this rank generates, matching what the comm layer
// counts when the buffers are posted. Under Mixed precision this is the
// encoded wire volume, i.e. what actually crosses the network.
func (pl *DaCePlan) OffRankBytes() int64 { return pl.offRankBytes.Load() }

// FallbackBlocks reports how many segments the mixed-precision encoder
// shipped as verbatim fp64 passthrough so far (always 0 under FP64) —
// the precision-degradation telemetry counterpart of OffRankBytes.
func (pl *DaCePlan) FallbackBlocks() int64 { return pl.fallbackBlocks.Load() }

// encode wraps a packed buffer in the half-width wire format when the
// plan runs mixed precision; seg is the pack loop's append unit.
func (pl *DaCePlan) encode(buf []complex128, seg int) []complex128 {
	if pl.prec != Mixed || len(buf) == 0 {
		return buf
	}
	out := half.WireEncode(buf, seg)
	if n := half.WireFallbacks(out, seg); n > 0 {
		pl.fallbackBlocks.Add(int64(n))
	}
	return out
}

// decode undoes encode on an arrived buffer.
func (pl *DaCePlan) decode(buf []complex128, seg int) []complex128 {
	if pl.prec != Mixed || len(buf) == 0 {
		return buf
	}
	return half.WireDecode(buf, seg)
}

// Output returns the tile results (valid after UnpackSigma/UnpackPi).
func (pl *DaCePlan) Output() *sse.Output { return pl.out }

func (pl *DaCePlan) countOffRank(dst int, buf []complex128) {
	if dst != pl.rank {
		pl.offRankBytes.Add(int64(len(buf)) * 16)
	}
}

// PackG builds exchange #1: this rank's owned G≷ pairs for every tile's
// (atom set + halo, energy range + 2Nω halo).
func (pl *DaCePlan) PackG() [][]complex128 {
	p := pl.in.Dev.P
	send := make([][]complex128, pl.ranks)
	for dst := 0; dst < pl.ranks; dst++ {
		if dst == pl.rank {
			continue // own data stays in place
		}
		dTa, dTe := pl.l.TileOf(dst)
		elo, ehi := pl.l.EnergyHalo(dTe)
		var buf []complex128
		for ik := 0; ik < p.Nkz; ik++ {
			for ie := elo; ie < ehi; ie++ {
				if pl.src.PairOwner(ik, ie) != pl.rank {
					continue
				}
				for _, a := range pl.atomSets[dTa] {
					buf = append(buf, pl.in.GL.Block(ik, ie, a)...)
					buf = append(buf, pl.in.GG.Block(ik, ie, a)...)
				}
			}
		}
		buf = pl.encode(buf, 2*pl.bl)
		pl.countOffRank(dst, buf)
		send[dst] = buf
	}
	return send
}

// UnpackG scatters exchange #1's arrivals into this tile's G≷ halo.
func (pl *DaCePlan) UnpackG(recv [][]complex128) {
	p := pl.in.Dev.P
	elo, ehi := pl.l.EnergyHalo(pl.myTe)
	for from := 0; from < pl.ranks; from++ {
		if from == pl.rank {
			continue // own data never left
		}
		buf := pl.decode(recv[from], 2*pl.bl)
		pos := 0
		for ik := 0; ik < p.Nkz; ik++ {
			for ie := elo; ie < ehi; ie++ {
				if pl.src.PairOwner(ik, ie) != from {
					continue
				}
				for _, a := range pl.atomSets[pl.myTa] {
					copy(pl.in.GL.Block(ik, ie, a), buf[pos:pos+pl.bl])
					copy(pl.in.GG.Block(ik, ie, a), buf[pos+pl.bl:pos+2*pl.bl])
					pos += 2 * pl.bl
				}
			}
		}
	}
}

// PackD builds exchange #2: owned D≷ points for every tile's atom set,
// all (qz, ω).
func (pl *DaCePlan) PackD() [][]complex128 {
	p := pl.in.Dev.P
	send := make([][]complex128, pl.ranks)
	for dst := 0; dst < pl.ranks; dst++ {
		if dst == pl.rank {
			continue // own data stays in place
		}
		dTa, _ := pl.l.TileOf(dst)
		var buf []complex128
		for iq := 0; iq < p.Nqz(); iq++ {
			for m := 1; m <= p.Nomega; m++ {
				if pl.src.PhononOwner(iq, m) != pl.rank {
					continue
				}
				for _, a := range pl.atomSets[dTa] {
					o := pl.in.DL.Index(iq, m-1, a, 0)
					buf = append(buf, pl.in.DL.Data[o:o+pl.pbl]...)
					buf = append(buf, pl.in.DG.Data[o:o+pl.pbl]...)
				}
			}
		}
		buf = pl.encode(buf, 2*pl.pbl)
		pl.countOffRank(dst, buf)
		send[dst] = buf
	}
	return send
}

// UnpackD scatters exchange #2's arrivals into this tile's D≷ halo.
func (pl *DaCePlan) UnpackD(recv [][]complex128) {
	p := pl.in.Dev.P
	for from := 0; from < pl.ranks; from++ {
		if from == pl.rank {
			continue // own data never left
		}
		buf := pl.decode(recv[from], 2*pl.pbl)
		pos := 0
		for iq := 0; iq < p.Nqz(); iq++ {
			for m := 1; m <= p.Nomega; m++ {
				if pl.src.PhononOwner(iq, m) != from {
					continue
				}
				for _, a := range pl.atomSets[pl.myTa] {
					o := pl.in.DL.Index(iq, m-1, a, 0)
					copy(pl.in.DL.Data[o:o+pl.pbl], buf[pos:pos+pl.pbl])
					copy(pl.in.DG.Data[o:o+pl.pbl], buf[pos+pl.pbl:pos+2*pl.pbl])
					pos += 2 * pl.pbl
				}
			}
		}
	}
}

// ComputeTile runs the restricted SSE kernel on this tile (requires
// UnpackG and UnpackD): the fp64 DaCe schedule, or under Mixed precision
// the SBSMM-backed normalized binary16 kernel of §5.4. With the error
// probe enabled, the fp64 kernel additionally runs on the identical
// (wire-decoded) inputs and the normwise relative deviation of the mixed
// Σ≷/Π≷ is recorded for the telemetry reduction.
func (pl *DaCePlan) ComputeTile() {
	elo, ehi := pl.l.EnergyRange(pl.myTe)
	atoms := pl.l.OwnedAtoms(pl.myTa)
	if pl.prec != Mixed {
		pl.out = (sse.DaCe{Atoms: atoms, ELo: elo, EHi: ehi}).Compute(pl.in)
		return
	}
	pl.out = (sse.Mixed{Normalize: true, Atoms: atoms, ELo: elo, EHi: ehi}).Compute(pl.in)
	if pl.probe {
		ref := (sse.DaCe{Atoms: atoms, ELo: elo, EHi: ehi}).Compute(pl.in)
		pl.probeDev[0], pl.probeRef[0] = normDev(pl.out.SigL.Data, ref.SigL.Data)
		d, r := normDev(pl.out.SigG.Data, ref.SigG.Data)
		pl.probeDev[0], pl.probeRef[0] = max(pl.probeDev[0], d), max(pl.probeRef[0], r)
		pl.probeDev[1], pl.probeRef[1] = normDev(pl.out.PiL.Data, ref.PiL.Data)
		d, r = normDev(pl.out.PiG.Data, ref.PiG.Data)
		pl.probeDev[1], pl.probeRef[1] = max(pl.probeDev[1], d), max(pl.probeRef[1], r)
	}
}

// normDev returns ‖got − ref‖∞ and ‖ref‖∞.
func normDev(got, ref []complex128) (dev, scale float64) {
	for i, r := range ref {
		if a := cabs(r); a > scale {
			scale = a
		}
		if d := cabs(got[i] - r); d > dev {
			dev = d
		}
	}
	return dev, scale
}

// cabs is max(|Re|, |Im|) — the magnitude metric the normalization
// factors use, cheaper than the complex modulus and within √2 of it.
func cabs(v complex128) float64 {
	re, im := real(v), imag(v)
	if re < 0 {
		re = -re
	}
	if im < 0 {
		im = -im
	}
	if im > re {
		return im
	}
	return re
}

// PackSigma builds exchange #3: the tile's Σ≷ pieces back to the pair
// owners (requires ComputeTile).
func (pl *DaCePlan) PackSigma() [][]complex128 {
	p := pl.in.Dev.P
	elo, ehi := pl.l.EnergyRange(pl.myTe)
	owned := pl.l.OwnedAtoms(pl.myTa)
	send := make([][]complex128, pl.ranks)
	for dst := 0; dst < pl.ranks; dst++ {
		if dst == pl.rank {
			continue // own pieces stay in place
		}
		var buf []complex128
		for ik := 0; ik < p.Nkz; ik++ {
			for ie := elo; ie < ehi; ie++ {
				if pl.src.PairOwner(ik, ie) != dst {
					continue
				}
				for _, a := range owned {
					buf = append(buf, pl.out.SigL.Block(ik, ie, a)...)
					buf = append(buf, pl.out.SigG.Block(ik, ie, a)...)
				}
			}
		}
		buf = pl.encode(buf, 2*pl.bl)
		pl.countOffRank(dst, buf)
		send[dst] = buf
	}
	return send
}

// UnpackSigma assembles the owned pairs' Σ≷ from every tile's piece.
func (pl *DaCePlan) UnpackSigma(recv [][]complex128) {
	p := pl.in.Dev.P
	for from := 0; from < pl.ranks; from++ {
		if from == pl.rank {
			continue // own pieces never left
		}
		fTa, fTe := pl.l.TileOf(from)
		fLo, fHi := pl.l.EnergyRange(fTe)
		fOwned := pl.l.OwnedAtoms(fTa)
		buf := pl.decode(recv[from], 2*pl.bl)
		pos := 0
		for ik := 0; ik < p.Nkz; ik++ {
			for ie := fLo; ie < fHi; ie++ {
				if pl.src.PairOwner(ik, ie) != pl.rank {
					continue
				}
				for _, a := range fOwned {
					copy(pl.out.SigL.Block(ik, ie, a), buf[pos:pos+pl.bl])
					copy(pl.out.SigG.Block(ik, ie, a), buf[pos+pl.bl:pos+2*pl.bl])
					pos += 2 * pl.bl
				}
			}
		}
	}
}

// PackPi builds exchange #4: the tile's Π≷ partials to the phonon point
// owners (requires ComputeTile).
func (pl *DaCePlan) PackPi() [][]complex128 {
	p := pl.in.Dev.P
	owned := pl.l.OwnedAtoms(pl.myTa)
	send := make([][]complex128, pl.ranks)
	for dst := 0; dst < pl.ranks; dst++ {
		if dst == pl.rank {
			continue // own partials stay in place
		}
		var buf []complex128
		for iq := 0; iq < p.Nqz(); iq++ {
			for m := 1; m <= p.Nomega; m++ {
				if pl.src.PhononOwner(iq, m) != dst {
					continue
				}
				for _, a := range owned {
					o := pl.out.PiL.Index(iq, m-1, a, 0)
					buf = append(buf, pl.out.PiL.Data[o:o+pl.pbl]...)
					buf = append(buf, pl.out.PiG.Data[o:o+pl.pbl]...)
				}
			}
		}
		buf = pl.encode(buf, 2*pl.pbl)
		pl.countOffRank(dst, buf)
		send[dst] = buf
	}
	return send
}

// UnpackPi sums the other tiles' Π≷ partials into the owned points, in
// ascending tile order — the association order the sequential kernel and
// the bulk-synchronous exchange both use.
func (pl *DaCePlan) UnpackPi(recv [][]complex128) {
	p := pl.in.Dev.P
	for from := 0; from < pl.ranks; from++ {
		if from == pl.rank {
			continue // own partials already in place
		}
		fTa, _ := pl.l.TileOf(from)
		fOwned := pl.l.OwnedAtoms(fTa)
		buf := pl.decode(recv[from], 2*pl.pbl)
		pos := 0
		for iq := 0; iq < p.Nqz(); iq++ {
			for m := 1; m <= p.Nomega; m++ {
				if pl.src.PhononOwner(iq, m) != pl.rank {
					continue
				}
				for _, a := range fOwned {
					o := pl.out.PiL.Index(iq, m-1, a, 0)
					addInto(pl.out.PiL.Data[o:o+pl.pbl], buf[pos:pos+pl.pbl])
					addInto(pl.out.PiG.Data[o:o+pl.pbl], buf[pos+pl.pbl:pos+2*pl.pbl])
					pos += 2 * pl.pbl
				}
			}
		}
	}
}

// Nonblocking slots for the four exchanges plus the observable reduction
// of the distributed loop — one slot per concurrently outstanding
// collective (see comm: slots match across ranks regardless of the order
// a dynamic schedule posts them in).
const (
	SlotG = iota
	SlotD
	SlotSigma
	SlotPi
	SlotObs
)

// PostG posts exchange #1 as soon as the owned G≷ pairs exist.
func (pl *DaCePlan) PostG(c *comm.Comm) *comm.MatRequest { return c.IAlltoallv(SlotG, pl.PackG()) }

// PostD posts exchange #2 as soon as the owned D≷ points exist.
func (pl *DaCePlan) PostD(c *comm.Comm) *comm.MatRequest { return c.IAlltoallv(SlotD, pl.PackD()) }

// PostSigma posts exchange #3 after ComputeTile.
func (pl *DaCePlan) PostSigma(c *comm.Comm) *comm.MatRequest {
	return c.IAlltoallv(SlotSigma, pl.PackSigma())
}

// PostPi posts exchange #4 after ComputeTile.
func (pl *DaCePlan) PostPi(c *comm.Comm) *comm.MatRequest {
	return c.IAlltoallv(SlotPi, pl.PackPi())
}
