package decomp

import (
	"repro/internal/comm"
	"repro/internal/sse"
	"repro/internal/tensor"
)

// RunOMEN executes the SSE phase under the original OMEN momentum×energy
// decomposition on `ranks` simulated MPI ranks. Each rank starts with only
// the Green's functions of its owned (kz, E) pairs and (qz, ω) points —
// the distribution the GF phase leaves behind — performs the Nqz·Nω
// broadcast/replicate/reduce rounds of §6.1.2, computes its masked portion
// of Eqs. (2)–(3) with the unmodified OMEN kernel, and reduces the partial
// Π≷ to the phonon owners.
//
// The returned Output is the full result gathered on rank 0 (for
// verification), and Stats are the communication counters measured before
// the verification gather.
func RunOMEN(w *comm.World, in *sse.Input, ranks int) (*sse.Output, comm.Stats, error) {
	p := in.Dev.P
	l := NewOMENLayout(p, ranks)
	var stats comm.Stats
	final := newGathered(in)

	err := w.Run(func(c *comm.Comm) error {
		r := c.Rank()
		local := localInput(in, func(ik, ie int) bool { return l.PairOwner(ik, ie) == r },
			func(iq, m int) bool { return l.PhononOwner(iq, m) == r })

		// ── Round structure 1: broadcast each phonon point to everyone.
		for iq := 0; iq < l.Nqz; iq++ {
			for m := 1; m <= l.Nomega; m++ {
				owner := l.PhononOwner(iq, m)
				var payload []complex128
				if owner == r {
					payload = concat(phononPlane(local.DL, iq, m), phononPlane(local.DG, iq, m))
				}
				got := c.Bcast(owner, payload)
				if owner != r {
					half := len(got) / 2
					copy(phononPlane(local.DL, iq, m), got[:half])
					copy(phononPlane(local.DG, iq, m), got[half:])
				}
			}
		}

		// ── Round structure 2: replicate G≷ point-to-point to the stencil
		// neighbours (2·Nqz·Nω destinations per owned pair). Sends never
		// block on the simulated fabric, so all sends precede all receives.
		forEachGTransfer(l, func(srcIK, srcIE, dstIK, dstIE, tag int) {
			src := l.PairOwner(srcIK, srcIE)
			dst := l.PairOwner(dstIK, dstIE)
			if src != r || dst == r {
				return
			}
			c.Send(dst, tag, concat(electronPlane(local.GL, srcIK, srcIE), electronPlane(local.GG, srcIK, srcIE)))
		})
		forEachGTransfer(l, func(srcIK, srcIE, dstIK, dstIE, tag int) {
			src := l.PairOwner(srcIK, srcIE)
			dst := l.PairOwner(dstIK, dstIE)
			if dst != r || src == r {
				return
			}
			got := c.Recv(src, tag)
			half := len(got) / 2
			copy(electronPlane(local.GL, srcIK, srcIE), got[:half])
			copy(electronPlane(local.GG, srcIK, srcIE), got[half:])
		})

		// ── Local computation with the pair mask.
		out := (sse.OMEN{Mask: func(ik, ie int) bool { return l.PairOwner(ik, ie) == r }}).Compute(local)

		// ── Round structure 3: reduce partial Π≷ to the phonon owners.
		for iq := 0; iq < l.Nqz; iq++ {
			for m := 1; m <= l.Nomega; m++ {
				owner := l.PhononOwner(iq, m)
				tag := 1 << 28 // distinct tag space from the G transfers
				tag += iq*l.Nomega + (m - 1)
				if owner != r {
					c.Send(owner, tag, concat(phononPlane(out.PiL, iq, m), phononPlane(out.PiG, iq, m)))
					continue
				}
				for src := 0; src < c.Size(); src++ {
					if src == r {
						continue
					}
					got := c.Recv(src, tag)
					half := len(got) / 2
					addInto(phononPlane(out.PiL, iq, m), got[:half])
					addInto(phononPlane(out.PiG, iq, m), got[half:])
				}
			}
		}

		// Snapshot the measured traffic before the verification gather.
		if r == 0 {
			c.Barrier()
			stats = w.Stats()
			c.Barrier()
		} else {
			c.Barrier()
			c.Barrier()
		}

		gatherOMEN(c, l, out, final)
		return nil
	})
	if err != nil {
		return nil, comm.Stats{}, err
	}
	return final, stats, nil
}

// forEachGTransfer enumerates every point-to-point G replication of the
// OMEN scheme in a deterministic global order. For each owned pair and
// each (qz, ω) the Green's function travels to the owners of the two
// stencil partners (kz+qz, E±ω). The tag is unique per logical transfer.
func forEachGTransfer(l *OMENLayout, f func(srcIK, srcIE, dstIK, dstIE, tag int)) {
	tag := 0
	for ik := 0; ik < l.Nkz; ik++ {
		for ie := 0; ie < l.NE; ie++ {
			for iq := 0; iq < l.Nqz; iq++ {
				for m := 1; m <= l.Nomega; m++ {
					ikd := (ik + iq) % l.Nkz
					for _, sign := range [2]int{+1, -1} {
						ied := ie + sign*m
						tag++
						if ied < 0 || ied >= l.NE {
							continue
						}
						f(ik, ie, ikd, ied, tag)
					}
				}
			}
		}
	}
}

// gatherOMEN assembles the full output on rank 0 from the owners.
func gatherOMEN(c *comm.Comm, l *OMENLayout, out *sse.Output, final *sse.Output) {
	const base = 1 << 29
	r := c.Rank()
	// Electron self-energies live with their pair owners.
	for ik := 0; ik < l.Nkz; ik++ {
		for ie := 0; ie < l.NE; ie++ {
			owner := l.PairOwner(ik, ie)
			tag := base + ik*l.NE + ie
			switch {
			case owner == 0 && r == 0:
				copy(electronPlane(final.SigL, ik, ie), electronPlane(out.SigL, ik, ie))
				copy(electronPlane(final.SigG, ik, ie), electronPlane(out.SigG, ik, ie))
			case owner == r:
				c.Send(0, tag, concat(electronPlane(out.SigL, ik, ie), electronPlane(out.SigG, ik, ie)))
			case r == 0:
				got := c.Recv(owner, tag)
				half := len(got) / 2
				copy(electronPlane(final.SigL, ik, ie), got[:half])
				copy(electronPlane(final.SigG, ik, ie), got[half:])
			}
		}
	}
	// Phonon self-energies live with their point owners.
	for iq := 0; iq < l.Nqz; iq++ {
		for m := 1; m <= l.Nomega; m++ {
			owner := l.PhononOwner(iq, m)
			tag := base + 1<<20 + iq*l.Nomega + m
			switch {
			case owner == 0 && r == 0:
				copy(phononPlane(final.PiL, iq, m), phononPlane(out.PiL, iq, m))
				copy(phononPlane(final.PiG, iq, m), phononPlane(out.PiG, iq, m))
			case owner == r:
				c.Send(0, tag, concat(phononPlane(out.PiL, iq, m), phononPlane(out.PiG, iq, m)))
			case r == 0:
				got := c.Recv(owner, tag)
				half := len(got) / 2
				copy(phononPlane(final.PiL, iq, m), got[:half])
				copy(phononPlane(final.PiG, iq, m), got[half:])
			}
		}
	}
}

// ── shared helpers ──

// localInput builds a rank's starting state: zeroed global-shape tensors
// holding only the owned electron pairs and phonon points.
func localInput(in *sse.Input, ownPair func(ik, ie int) bool, ownPh func(iq, m int) bool) *sse.Input {
	local := &sse.Input{
		Dev: in.Dev,
		GL:  tensor.NewElectron(in.GL.Nkz, in.GL.NE, in.GL.Na, in.GL.Norb),
		GG:  tensor.NewElectron(in.GL.Nkz, in.GL.NE, in.GL.Na, in.GL.Norb),
		DL:  tensor.NewPhonon(in.DL.Nqz, in.DL.Nw, in.DL.Na, in.DL.NbP1, in.DL.N3D),
		DG:  tensor.NewPhonon(in.DL.Nqz, in.DL.Nw, in.DL.Na, in.DL.NbP1, in.DL.N3D),
	}
	for ik := 0; ik < in.GL.Nkz; ik++ {
		for ie := 0; ie < in.GL.NE; ie++ {
			if !ownPair(ik, ie) {
				continue
			}
			copy(electronPlane(local.GL, ik, ie), electronPlane(in.GL, ik, ie))
			copy(electronPlane(local.GG, ik, ie), electronPlane(in.GG, ik, ie))
		}
	}
	for iq := 0; iq < in.DL.Nqz; iq++ {
		for m := 1; m <= in.DL.Nw; m++ {
			if !ownPh(iq, m) {
				continue
			}
			copy(phononPlane(local.DL, iq, m), phononPlane(in.DL, iq, m))
			copy(phononPlane(local.DG, iq, m), phononPlane(in.DG, iq, m))
		}
	}
	return local
}

// electronPlane returns the contiguous all-atom slice of one (kz, E) point.
func electronPlane(t *tensor.Electron, ik, ie int) []complex128 {
	return t.Plane(ik, ie)
}

// phononPlane returns the contiguous all-atom slice of one (qz, ω) point
// (m ∈ [1, Nω]).
func phononPlane(t *tensor.Phonon, iq, m int) []complex128 {
	return t.Plane(iq, m-1)
}

func concat(a, b []complex128) []complex128 {
	out := make([]complex128, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

func addInto(dst, src []complex128) {
	for i, v := range src {
		dst[i] += v
	}
}

// newGathered allocates a full-shape output container for verification.
func newGathered(in *sse.Input) *sse.Output {
	return &sse.Output{
		SigL: tensor.NewElectron(in.GL.Nkz, in.GL.NE, in.GL.Na, in.GL.Norb),
		SigG: tensor.NewElectron(in.GL.Nkz, in.GL.NE, in.GL.Na, in.GL.Norb),
		PiL:  tensor.NewPhonon(in.DL.Nqz, in.DL.Nw, in.DL.Na, in.DL.NbP1, in.DL.N3D),
		PiG:  tensor.NewPhonon(in.DL.Nqz, in.DL.Nw, in.DL.Na, in.DL.NbP1, in.DL.N3D),
	}
}
