package decomp

import (
	"repro/internal/comm"
	"repro/internal/sse"
)

// AtomSets precomputes the atom set (owned range + Nb halo) of every atom
// tile; all ranks share the result.
func (l *DaCeLayout) AtomSets() [][]int {
	sets := make([][]int, l.Ta)
	for t := 0; t < l.Ta; t++ {
		sets[t] = l.AtomSet(t)
	}
	return sets
}

// ExchangeDaCe runs the communication-avoiding SSE phase from within one
// already-running rank of a world: the four Alltoallv collectives of the
// Fig. 5 (right) scheme plus the local tile computation.
//
//	#1  G≷  pair owners   → tiles (atom set + Nb halo, energy range + 2Nω halo)
//	#2  D≷  point owners  → tiles (atom set + halo, all (qz, ω))
//	#3  Σ≷  tiles         → pair owners
//	#4  Π≷  tile partials → phonon point owners (summed on arrival)
//
// local holds full-shape tensors with this rank's owned electron pairs and
// phonon points (per the src layout) filled; its non-owned halo planes are
// overwritten with received data. The returned output holds Σ≷ for the
// owned pairs and fully-summed Π≷ for the owned points — the distribution
// the next GF phase consumes. The union over ranks reproduces the
// sequential kernel exactly.
//
// This is the bulk-synchronous driver of a DaCePlan: each stage packs,
// exchanges, and unpacks back-to-back. The overlapped driver
// (internal/dist's task-graph schedule) runs the same stages through the
// nonblocking collectives instead.
func ExchangeDaCe(c *comm.Comm, l *DaCeLayout, src *OMENLayout, atomSets [][]int, local *sse.Input) *sse.Output {
	pl := NewDaCePlan(c.Rank(), l, src, atomSets, local)
	pl.UnpackG(c.Alltoallv(pl.PackG()))
	pl.UnpackD(c.Alltoallv(pl.PackD()))
	pl.ComputeTile()
	pl.UnpackSigma(c.Alltoallv(pl.PackSigma()))
	pl.UnpackPi(c.Alltoallv(pl.PackPi()))
	return pl.Output()
}

// RunDaCe executes the SSE phase under the communication-avoiding Ta×TE
// atom×energy decomposition on the simulated MPI runtime — the Fig. 5
// (right) scheme. The Green's functions start in the same distribution the
// GF phase produces (pairs and phonon points block-distributed over the
// ranks); ExchangeDaCe then performs the four Alltoallv collectives and the
// local tile computation. The returned Output is the full result gathered
// on rank 0 (for verification), and Stats are the communication counters
// measured before the verification gather.
func RunDaCe(w *comm.World, in *sse.Input, ta, te int) (*sse.Output, comm.Stats, error) {
	p := in.Dev.P
	l := NewDaCeLayout(in.Dev, ta, te)
	ranks := l.P()
	src := NewOMENLayout(p, ranks) // GF-phase ownership of pairs and points
	var stats comm.Stats
	final := newGathered(in)

	// Precompute per-tile atom sets and halos once; all ranks share them.
	atomSets := l.AtomSets()

	err := w.Run(func(c *comm.Comm) error {
		r := c.Rank()
		local := localInput(in, func(ik, ie int) bool { return src.PairOwner(ik, ie) == r },
			func(iq, m int) bool { return src.PhononOwner(iq, m) == r })

		out := ExchangeDaCe(c, l, src, atomSets, local)

		// Snapshot traffic before the verification gather.
		if r == 0 {
			c.Barrier()
			stats = w.Stats()
			c.Barrier()
		} else {
			c.Barrier()
			c.Barrier()
		}

		gatherOMEN(c, src, out, final)
		return nil
	})
	if err != nil {
		return nil, comm.Stats{}, err
	}
	return final, stats, nil
}
