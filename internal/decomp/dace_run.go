package decomp

import (
	"repro/internal/comm"
	"repro/internal/sse"
)

// AtomSets precomputes the atom set (owned range + Nb halo) of every atom
// tile; all ranks share the result.
func (l *DaCeLayout) AtomSets() [][]int {
	sets := make([][]int, l.Ta)
	for t := 0; t < l.Ta; t++ {
		sets[t] = l.AtomSet(t)
	}
	return sets
}

// ExchangeDaCe runs the communication-avoiding SSE phase from within one
// already-running rank of a world: the four Alltoallv collectives of the
// Fig. 5 (right) scheme plus the local tile computation.
//
//	#1  G≷  pair owners   → tiles (atom set + Nb halo, energy range + 2Nω halo)
//	#2  D≷  point owners  → tiles (atom set + halo, all (qz, ω))
//	#3  Σ≷  tiles         → pair owners
//	#4  Π≷  tile partials → phonon point owners (summed on arrival)
//
// local holds full-shape tensors with this rank's owned electron pairs and
// phonon points (per the src layout) filled; its non-owned halo planes are
// overwritten with received data. The returned output holds Σ≷ for the
// owned pairs and fully-summed Π≷ for the owned points — the distribution
// the next GF phase consumes. The union over ranks reproduces the
// sequential kernel exactly.
func ExchangeDaCe(c *comm.Comm, l *DaCeLayout, src *OMENLayout, atomSets [][]int, local *sse.Input) *sse.Output {
	p := local.Dev.P
	ranks := l.P()
	r := c.Rank()
	myTa, myTe := l.TileOf(r)
	bl := local.GL.BlockLen()
	pbl := local.DL.BlockLen() * local.DL.NbP1

	// ── Alltoallv #1: G≷ to the tiles.
	send := make([][]complex128, ranks)
	for dst := 0; dst < ranks; dst++ {
		dTa, dTe := l.TileOf(dst)
		elo, ehi := l.EnergyHalo(dTe)
		var buf []complex128
		for ik := 0; ik < p.Nkz; ik++ {
			for ie := elo; ie < ehi; ie++ {
				if src.PairOwner(ik, ie) != r {
					continue
				}
				for _, a := range atomSets[dTa] {
					buf = append(buf, local.GL.Block(ik, ie, a)...)
					buf = append(buf, local.GG.Block(ik, ie, a)...)
				}
			}
		}
		send[dst] = buf
	}
	recv := c.Alltoallv(send)
	{
		elo, ehi := l.EnergyHalo(myTe)
		for from := 0; from < ranks; from++ {
			buf := recv[from]
			pos := 0
			for ik := 0; ik < p.Nkz; ik++ {
				for ie := elo; ie < ehi; ie++ {
					if src.PairOwner(ik, ie) != from {
						continue
					}
					for _, a := range atomSets[myTa] {
						copy(local.GL.Block(ik, ie, a), buf[pos:pos+bl])
						copy(local.GG.Block(ik, ie, a), buf[pos+bl:pos+2*bl])
						pos += 2 * bl
					}
				}
			}
		}
	}

	// ── Alltoallv #2: D≷ to the tiles (all phonon points, atom set).
	send = make([][]complex128, ranks)
	for dst := 0; dst < ranks; dst++ {
		dTa, _ := l.TileOf(dst)
		var buf []complex128
		for iq := 0; iq < p.Nqz(); iq++ {
			for m := 1; m <= p.Nomega; m++ {
				if src.PhononOwner(iq, m) != r {
					continue
				}
				for _, a := range atomSets[dTa] {
					o := local.DL.Index(iq, m-1, a, 0)
					buf = append(buf, local.DL.Data[o:o+pbl]...)
					buf = append(buf, local.DG.Data[o:o+pbl]...)
				}
			}
		}
		send[dst] = buf
	}
	recv = c.Alltoallv(send)
	for from := 0; from < ranks; from++ {
		buf := recv[from]
		pos := 0
		for iq := 0; iq < p.Nqz(); iq++ {
			for m := 1; m <= p.Nomega; m++ {
				if src.PhononOwner(iq, m) != from {
					continue
				}
				for _, a := range atomSets[myTa] {
					o := local.DL.Index(iq, m-1, a, 0)
					copy(local.DL.Data[o:o+pbl], buf[pos:pos+pbl])
					copy(local.DG.Data[o:o+pbl], buf[pos+pbl:pos+2*pbl])
					pos += 2 * pbl
				}
			}
		}
	}

	// ── Local tile computation with the restricted DaCe kernel.
	elo, ehi := l.EnergyRange(myTe)
	out := (sse.DaCe{Atoms: l.OwnedAtoms(myTa), ELo: elo, EHi: ehi}).Compute(local)

	// ── Alltoallv #3: Σ≷ back to the pair owners.
	send = make([][]complex128, ranks)
	owned := l.OwnedAtoms(myTa)
	for dst := 0; dst < ranks; dst++ {
		var buf []complex128
		for ik := 0; ik < p.Nkz; ik++ {
			for ie := elo; ie < ehi; ie++ {
				if src.PairOwner(ik, ie) != dst {
					continue
				}
				for _, a := range owned {
					buf = append(buf, out.SigL.Block(ik, ie, a)...)
					buf = append(buf, out.SigG.Block(ik, ie, a)...)
				}
			}
		}
		send[dst] = buf
	}
	recv = c.Alltoallv(send)
	for from := 0; from < ranks; from++ {
		fTa, fTe := l.TileOf(from)
		fLo, fHi := l.EnergyRange(fTe)
		fOwned := l.OwnedAtoms(fTa)
		buf := recv[from]
		pos := 0
		for ik := 0; ik < p.Nkz; ik++ {
			for ie := fLo; ie < fHi; ie++ {
				if src.PairOwner(ik, ie) != r {
					continue
				}
				for _, a := range fOwned {
					copy(out.SigL.Block(ik, ie, a), buf[pos:pos+bl])
					copy(out.SigG.Block(ik, ie, a), buf[pos+bl:pos+2*bl])
					pos += 2 * bl
				}
			}
		}
	}

	// ── Alltoallv #4: Π≷ partials to the phonon owners, summed there
	// over the TE energy tiles.
	send = make([][]complex128, ranks)
	for dst := 0; dst < ranks; dst++ {
		var buf []complex128
		for iq := 0; iq < p.Nqz(); iq++ {
			for m := 1; m <= p.Nomega; m++ {
				if src.PhononOwner(iq, m) != dst {
					continue
				}
				for _, a := range owned {
					o := out.PiL.Index(iq, m-1, a, 0)
					buf = append(buf, out.PiL.Data[o:o+pbl]...)
					buf = append(buf, out.PiG.Data[o:o+pbl]...)
				}
			}
		}
		send[dst] = buf
	}
	recv = c.Alltoallv(send)
	for from := 0; from < ranks; from++ {
		if from == r {
			continue // own partials already in place
		}
		fTa, _ := l.TileOf(from)
		fOwned := l.OwnedAtoms(fTa)
		buf := recv[from]
		pos := 0
		for iq := 0; iq < p.Nqz(); iq++ {
			for m := 1; m <= p.Nomega; m++ {
				if src.PhononOwner(iq, m) != r {
					continue
				}
				for _, a := range fOwned {
					o := out.PiL.Index(iq, m-1, a, 0)
					addInto(out.PiL.Data[o:o+pbl], buf[pos:pos+pbl])
					addInto(out.PiG.Data[o:o+pbl], buf[pos+pbl:pos+2*pbl])
					pos += 2 * pbl
				}
			}
		}
	}

	return out
}

// RunDaCe executes the SSE phase under the communication-avoiding Ta×TE
// atom×energy decomposition on the simulated MPI runtime — the Fig. 5
// (right) scheme. The Green's functions start in the same distribution the
// GF phase produces (pairs and phonon points block-distributed over the
// ranks); ExchangeDaCe then performs the four Alltoallv collectives and the
// local tile computation. The returned Output is the full result gathered
// on rank 0 (for verification), and Stats are the communication counters
// measured before the verification gather.
func RunDaCe(w *comm.World, in *sse.Input, ta, te int) (*sse.Output, comm.Stats, error) {
	p := in.Dev.P
	l := NewDaCeLayout(in.Dev, ta, te)
	ranks := l.P()
	src := NewOMENLayout(p, ranks) // GF-phase ownership of pairs and points
	var stats comm.Stats
	final := newGathered(in)

	// Precompute per-tile atom sets and halos once; all ranks share them.
	atomSets := l.AtomSets()

	err := w.Run(func(c *comm.Comm) error {
		r := c.Rank()
		local := localInput(in, func(ik, ie int) bool { return src.PairOwner(ik, ie) == r },
			func(iq, m int) bool { return src.PhononOwner(iq, m) == r })

		out := ExchangeDaCe(c, l, src, atomSets, local)

		// Snapshot traffic before the verification gather.
		if r == 0 {
			c.Barrier()
			stats = w.Stats()
			c.Barrier()
		} else {
			c.Barrier()
			c.Barrier()
		}

		gatherOMEN(c, src, out, final)
		return nil
	})
	if err != nil {
		return nil, comm.Stats{}, err
	}
	return final, stats, nil
}
