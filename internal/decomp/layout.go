// Package decomp implements the two domain decompositions of the SSE phase
// compared in Fig. 5 of the paper, executing them for real on the simulated
// MPI runtime of internal/comm:
//
//   - OMEN:  the original momentum×energy decomposition. Every electron
//     rank owns a block of (kz, E) pairs; each of the Nqz·Nω rounds
//     broadcasts one phonon point D≷(qz, ω) to everyone, replicates the
//     electron Green's functions point-to-point to the (kz±qz, E±ω)
//     stencil neighbours, and reduces partial Π≷ back to the phonon
//     owners. Volume grows with Nqz·Nω — the scaling bottleneck.
//
//   - DaCe:  the communication-avoiding atom×energy (Ta×TE) decomposition.
//     Four Alltoallv collectives redistribute G≷ and D≷ to tile owners
//     (with an Nb atom halo and a 2Nω energy halo), the tiles compute
//     their Σ≷/Π≷ pieces locally, and two more exchanges return the
//     results — a constant number of MPI calls and two orders of
//     magnitude less volume.
//
// Both paths produce bit-identical self-energies to the sequential kernel,
// which the package tests verify, while the comm counters measure the
// volumes that Tables 4–5 model analytically.
package decomp

import "repro/internal/device"

// OMENLayout block-distributes the flattened electron (kz, E) pairs and
// the flattened phonon (qz, ω) points over P ranks.
type OMENLayout struct {
	P           int
	Nkz, NE     int
	Nqz, Nomega int
}

// NewOMENLayout builds the layout for the given device parameters.
func NewOMENLayout(p device.Params, ranks int) *OMENLayout {
	return &OMENLayout{P: ranks, Nkz: p.Nkz, NE: p.NE, Nqz: p.Nqz(), Nomega: p.Nomega}
}

// PairOwner returns the rank owning electron pair (ik, ie).
func (l *OMENLayout) PairOwner(ik, ie int) int {
	idx := ik*l.NE + ie
	return idx * l.P / (l.Nkz * l.NE)
}

// PhononOwner returns the rank owning phonon point (iq, m) with m ∈ [1, Nω].
func (l *OMENLayout) PhononOwner(iq, m int) int {
	idx := iq*l.Nomega + (m - 1)
	return idx * l.P / (l.Nqz * l.Nomega)
}

// OwnedPairs lists the (ik, ie) pairs owned by rank r in global order.
func (l *OMENLayout) OwnedPairs(r int) [][2]int {
	var out [][2]int
	for ik := 0; ik < l.Nkz; ik++ {
		for ie := 0; ie < l.NE; ie++ {
			if l.PairOwner(ik, ie) == r {
				out = append(out, [2]int{ik, ie})
			}
		}
	}
	return out
}

// OwnedPhonon lists the (iq, m) points owned by rank r.
func (l *OMENLayout) OwnedPhonon(r int) [][2]int {
	var out [][2]int
	for iq := 0; iq < l.Nqz; iq++ {
		for m := 1; m <= l.Nomega; m++ {
			if l.PhononOwner(iq, m) == r {
				out = append(out, [2]int{iq, m})
			}
		}
	}
	return out
}

// DaCeLayout is the Ta×TE tile decomposition: rank r = ta·TE + te owns the
// atom range ta and the energy range te.
type DaCeLayout struct {
	Ta, TE int
	Na, NE int
	Nomega int
	dev    *device.Device
}

// NewDaCeLayout builds a tile layout with Ta·TE ranks.
func NewDaCeLayout(dev *device.Device, ta, te int) *DaCeLayout {
	return &DaCeLayout{Ta: ta, TE: te, Na: dev.P.Na, NE: dev.P.NE, Nomega: dev.P.Nomega, dev: dev}
}

// P returns the number of ranks (Ta·TE).
func (l *DaCeLayout) P() int { return l.Ta * l.TE }

// TileOf splits a rank into its (atom-tile, energy-tile) coordinates.
func (l *DaCeLayout) TileOf(r int) (ta, te int) { return r / l.TE, r % l.TE }

// AtomRange returns the [lo, hi) atom range of atom-tile ta.
func (l *DaCeLayout) AtomRange(ta int) (lo, hi int) {
	lo = ta * l.Na / l.Ta
	hi = (ta + 1) * l.Na / l.Ta
	return lo, hi
}

// EnergyRange returns the [lo, hi) energy range of energy-tile te.
func (l *DaCeLayout) EnergyRange(te int) (lo, hi int) {
	lo = te * l.NE / l.TE
	hi = (te + 1) * l.NE / l.TE
	return lo, hi
}

// EnergyHalo returns the energy range a tile must receive: the owned range
// widened by Nω on each side ("each process is assigned NE/TE + 2Nω
// energies", §6.1.2), clamped to the grid.
func (l *DaCeLayout) EnergyHalo(te int) (lo, hi int) {
	lo, hi = l.EnergyRange(te)
	lo -= l.Nomega
	hi += l.Nomega
	if lo < 0 {
		lo = 0
	}
	if hi > l.NE {
		hi = l.NE
	}
	return lo, hi
}

// AtomSet returns the atoms a tile needs: the owned range plus the
// neighbour halo (the "+c ≤ Nb" atoms of §6.1.2), in ascending order.
func (l *DaCeLayout) AtomSet(ta int) []int {
	lo, hi := l.AtomRange(ta)
	need := make([]bool, l.Na)
	for a := lo; a < hi; a++ {
		need[a] = true
		for _, b := range l.dev.Neigh[a] {
			need[b] = true
		}
	}
	var out []int
	for a, ok := range need {
		if ok {
			out = append(out, a)
		}
	}
	return out
}

// OwnedAtoms returns the atoms owned (not halo) by atom-tile ta.
func (l *DaCeLayout) OwnedAtoms(ta int) []int {
	lo, hi := l.AtomRange(ta)
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}
