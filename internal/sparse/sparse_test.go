package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
)

// randomSparse builds an r×c matrix with the given nonzero density.
func randomSparse(rng *rand.Rand, r, c int, density float64) *linalg.Matrix {
	m := linalg.New(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if rng.Float64() < density {
				m.Set(i, j, complex(rng.NormFloat64(), rng.NormFloat64()))
			}
		}
	}
	return m
}

func randomDense(rng *rand.Rand, r, c int) *linalg.Matrix {
	m := linalg.New(r, c)
	for i := range m.Data {
		m.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return m
}

func TestFromDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := randomSparse(rng, 12, 9, 0.3)
	a := FromDense(d, 0)
	back := a.Dense()
	if linalg.MaxDiff(d, back) != 0 {
		t.Fatal("CSR dense roundtrip not exact")
	}
}

func TestFromDenseTolDropsSmall(t *testing.T) {
	d := linalg.New(2, 2)
	d.Set(0, 0, 1)
	d.Set(1, 1, complex(1e-15, 0))
	a := FromDense(d, 1e-12)
	if a.NNZ() != 1 {
		t.Fatalf("NNZ = %d, want 1 (tiny entry dropped)", a.NNZ())
	}
}

func TestCSCRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := randomSparse(rng, 8, 11, 0.25)
	csr := FromDense(d, 0)
	csc := csr.ToCSC()
	if linalg.MaxDiff(csc.Dense(), d) != 0 {
		t.Fatal("CSC roundtrip mismatch")
	}
	if csc.NNZ() != csr.NNZ() {
		t.Fatal("NNZ changed in CSR->CSC")
	}
}

func TestTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := randomSparse(rng, 6, 9, 0.3)
	at := FromDense(d, 0).Transpose()
	if linalg.MaxDiff(at.Dense(), d.T()) != 0 {
		t.Fatal("sparse transpose mismatch")
	}
	ah := FromDense(d, 0).ConjTranspose()
	if linalg.MaxDiff(ah.Dense(), d.H()) != 0 {
		t.Fatal("sparse conjugate transpose mismatch")
	}
}

func TestCSRMMModes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	aD := randomSparse(rng, 7, 5, 0.4)
	a := FromDense(aD, 0)

	// NN: A(7x5) · B(5x6)
	b := randomDense(rng, 5, 6)
	got := CSRMM(a, linalg.NoTrans, b, linalg.NoTrans)
	want := linalg.Mul(aD, b)
	if linalg.MaxDiff(got, want) > 1e-12 {
		t.Fatal("CSRMM NN mismatch")
	}

	// NT: A(7x5) · Bᵀ with B(6x5)
	b = randomDense(rng, 6, 5)
	got = CSRMM(a, linalg.NoTrans, b, linalg.Trans)
	want = linalg.MatMul(aD, linalg.NoTrans, b, linalg.Trans)
	if linalg.MaxDiff(got, want) > 1e-12 {
		t.Fatal("CSRMM NT mismatch")
	}

	// TN: Aᵀ(5x7) · B(7x4)
	b = randomDense(rng, 7, 4)
	got = CSRMM(a, linalg.Trans, b, linalg.NoTrans)
	want = linalg.MatMul(aD, linalg.Trans, b, linalg.NoTrans)
	if linalg.MaxDiff(got, want) > 1e-12 {
		t.Fatal("CSRMM TN mismatch")
	}
}

func TestCSRMMUnsupportedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for TT mode")
		}
	}()
	a := FromDense(linalg.Eye(2), 0)
	CSRMM(a, linalg.Trans, linalg.Eye(2), linalg.Trans)
}

func TestGEMMI(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := randomDense(rng, 6, 8)
	aD := randomSparse(rng, 8, 5, 0.35)
	a := FromDense(aD, 0).ToCSC()
	got := GEMMI(b, a)
	want := linalg.Mul(b, aD)
	if linalg.MaxDiff(got, want) > 1e-12 {
		t.Fatal("GEMMI mismatch")
	}
}

func TestSparseDenseEquivalenceProperty(t *testing.T) {
	// For any sparsity pattern, CSRMM NN must agree with dense GEMM.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(10)
		k := 1 + rng.Intn(10)
		n := 1 + rng.Intn(10)
		aD := randomSparse(rng, m, k, 0.3)
		b := randomDense(rng, k, n)
		got := CSRMM(FromDense(aD, 0), linalg.NoTrans, b, linalg.NoTrans)
		return linalg.MaxDiff(got, linalg.Mul(aD, b)) < 1e-11
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestThreeMatrixProductApproachesAgree(t *testing.T) {
	// The Table 8 kernel: F · gR · E where F and E are sparse
	// Hamiltonian blocks and gR is a dense Green's function block. All
	// three evaluation strategies must produce the same result.
	rng := rand.New(rand.NewSource(6))
	n := 24
	fD := randomSparse(rng, n, n, 0.08)
	eD := randomSparse(rng, n, n, 0.08)
	g := randomDense(rng, n, n)

	dense := linalg.Mul(linalg.Mul(fD, g), eD)

	// CSRMM2(TN)/GEMMI: (Eᵀ stored CSR) — compute via E in CSC on the right.
	f := FromDense(fD, 0)
	fg := CSRMM(f, linalg.NoTrans, g, linalg.NoTrans)
	viaGEMMI := GEMMI(fg, FromDense(eD, 0).ToCSC())
	if linalg.MaxDiff(dense, viaGEMMI) > 1e-11 {
		t.Fatal("CSRMM/GEMMI path mismatch")
	}

	// CSRMM2/CSRMM2 with transposes: F·gR = (NN); then (E in CSC as
	// CSR-of-transpose): F·gR·E = ((Eᵀ)·(F·gR)ᵀ)ᵀ using NT ops.
	et := FromDense(eD, 0).Transpose()
	tmp := CSRMM(et, linalg.NoTrans, fg, linalg.Trans) // Eᵀ·(FG)ᵀ = (FG·E)ᵀ
	viaCSRCSR := tmp.T()
	if linalg.MaxDiff(dense, viaCSRCSR) > 1e-11 {
		t.Fatal("CSRMM/CSRMM path mismatch")
	}
}

func TestDensityAndFlops(t *testing.T) {
	d := linalg.Eye(10)
	a := FromDense(d, 0)
	if a.Density() != 0.1 {
		t.Fatalf("Density = %g, want 0.1", a.Density())
	}
	if a.MulFlops(4) != 8*10*4 {
		t.Fatalf("MulFlops = %d", a.MulFlops(4))
	}
}

func TestEmptyMatrix(t *testing.T) {
	a := FromDense(linalg.New(3, 3), 0)
	if a.NNZ() != 0 {
		t.Fatal("zero matrix should have no nonzeros")
	}
	b := randomDense(rand.New(rand.NewSource(7)), 3, 2)
	got := CSRMM(a, linalg.NoTrans, b, linalg.NoTrans)
	if got.FrobNorm() != 0 {
		t.Fatal("product with zero matrix should be zero")
	}
}
