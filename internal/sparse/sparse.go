// Package sparse provides complex sparse matrices in CSR and CSC formats
// with the multiplication kernels the RGF solver mixes with dense algebra:
// CSRMM (sparse·dense, in NN/NT/TN operand modes, the cuSPARSE csrmm2
// analogue) and GEMMI (dense·CSC, the cuSPARSE gemmi analogue).
//
// The off-diagonal blocks of the DFT Hamiltonian are very sparse (each atom
// couples only to Nb neighbours out of thousands), which is why the paper's
// Table 7/8 experiments replace dense GEMM with these kernels and obtain
// 5–10× speedups. The same trade-off reproduces on CPU.
package sparse

import (
	"fmt"
	"math/cmplx"

	"repro/internal/linalg"
)

// CSR is a compressed-sparse-row complex matrix.
type CSR struct {
	Rows, Cols int
	RowPtr     []int // len Rows+1
	ColIdx     []int // len NNZ
	Val        []complex128
}

// CSC is a compressed-sparse-column complex matrix.
type CSC struct {
	Rows, Cols int
	ColPtr     []int // len Cols+1
	RowIdx     []int // len NNZ
	Val        []complex128
}

// NNZ returns the number of stored nonzeros.
func (a *CSR) NNZ() int { return len(a.Val) }

// NNZ returns the number of stored nonzeros.
func (a *CSC) NNZ() int { return len(a.Val) }

// Density returns NNZ / (Rows·Cols).
func (a *CSR) Density() float64 {
	if a.Rows == 0 || a.Cols == 0 {
		return 0
	}
	return float64(a.NNZ()) / (float64(a.Rows) * float64(a.Cols))
}

// FromDense converts m to CSR, dropping entries with |v| <= tol.
func FromDense(m *linalg.Matrix, tol float64) *CSR {
	a := &CSR{Rows: m.Rows, Cols: m.Cols, RowPtr: make([]int, m.Rows+1)}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			if cmplx.Abs(v) > tol {
				a.ColIdx = append(a.ColIdx, j)
				a.Val = append(a.Val, v)
			}
		}
		a.RowPtr[i+1] = len(a.Val)
	}
	return a
}

// FromDenseInto is FromDense reusing a's slices — the workspace-pooled
// form the RGF sparse path uses to re-extract coupling blocks every solve
// without heap traffic (extraction is O(Rows·Cols), negligible next to
// the O(n³) products it feeds).
func FromDenseInto(a *CSR, m *linalg.Matrix, tol float64) *CSR {
	a.Rows, a.Cols = m.Rows, m.Cols
	if cap(a.RowPtr) < m.Rows+1 {
		a.RowPtr = make([]int, m.Rows+1)
	}
	a.RowPtr = a.RowPtr[:m.Rows+1]
	a.ColIdx = a.ColIdx[:0]
	a.Val = a.Val[:0]
	a.RowPtr[0] = 0
	for i := 0; i < m.Rows; i++ {
		for j, v := range m.Row(i) {
			if cmplx.Abs(v) > tol {
				a.ColIdx = append(a.ColIdx, j)
				a.Val = append(a.Val, v)
			}
		}
		a.RowPtr[i+1] = len(a.Val)
	}
	return a
}

// Dense expands a back to a dense matrix.
func (a *CSR) Dense() *linalg.Matrix {
	m := linalg.New(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			m.Set(i, a.ColIdx[p], a.Val[p])
		}
	}
	return m
}

// ToCSC converts a CSR matrix into CSC format.
func (a *CSR) ToCSC() *CSC {
	c := &CSC{Rows: a.Rows, Cols: a.Cols, ColPtr: make([]int, a.Cols+1)}
	counts := make([]int, a.Cols)
	for _, j := range a.ColIdx {
		counts[j]++
	}
	for j := 0; j < a.Cols; j++ {
		c.ColPtr[j+1] = c.ColPtr[j] + counts[j]
	}
	c.RowIdx = make([]int, a.NNZ())
	c.Val = make([]complex128, a.NNZ())
	next := make([]int, a.Cols)
	copy(next, c.ColPtr[:a.Cols])
	for i := 0; i < a.Rows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			j := a.ColIdx[p]
			q := next[j]
			c.RowIdx[q] = i
			c.Val[q] = a.Val[p]
			next[j]++
		}
	}
	return c
}

// ToCSCInto is ToCSC reusing c's slices. next is caller-provided scratch
// of length ≥ a.Cols (pooled by hot callers alongside c).
func (a *CSR) ToCSCInto(c *CSC, next []int) *CSC {
	c.Rows, c.Cols = a.Rows, a.Cols
	if cap(c.ColPtr) < a.Cols+1 {
		c.ColPtr = make([]int, a.Cols+1)
	}
	c.ColPtr = c.ColPtr[:a.Cols+1]
	for j := range c.ColPtr {
		c.ColPtr[j] = 0
	}
	for _, j := range a.ColIdx {
		c.ColPtr[j+1]++
	}
	for j := 0; j < a.Cols; j++ {
		c.ColPtr[j+1] += c.ColPtr[j]
	}
	nnz := a.NNZ()
	if cap(c.RowIdx) < nnz {
		c.RowIdx = make([]int, nnz)
	}
	c.RowIdx = c.RowIdx[:nnz]
	if cap(c.Val) < nnz {
		c.Val = make([]complex128, nnz)
	}
	c.Val = c.Val[:nnz]
	next = next[:a.Cols]
	copy(next, c.ColPtr[:a.Cols])
	for i := 0; i < a.Rows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			j := a.ColIdx[p]
			q := next[j]
			c.RowIdx[q] = i
			c.Val[q] = a.Val[p]
			next[j]++
		}
	}
	return c
}

// TransCSCView returns aᵀ in CSC form without copying: the CSR arrays of
// a, reinterpreted column-wise, are exactly the CSC arrays of aᵀ. The
// view shares storage with a.
func (a *CSR) TransCSCView() *CSC {
	return &CSC{Rows: a.Cols, Cols: a.Rows, ColPtr: a.RowPtr, RowIdx: a.ColIdx, Val: a.Val}
}

// ConjTransCSCInto stores aᴴ in CSC form into dst: the index structure is
// shared with a (same reinterpretation as TransCSCView), only the values
// are conjugated into dst's reused Val slice.
func (a *CSR) ConjTransCSCInto(dst *CSC) *CSC {
	dst.Rows, dst.Cols = a.Cols, a.Rows
	dst.ColPtr, dst.RowIdx = a.RowPtr, a.ColIdx
	nnz := a.NNZ()
	if cap(dst.Val) < nnz {
		dst.Val = make([]complex128, nnz)
	}
	dst.Val = dst.Val[:nnz]
	for i, v := range a.Val {
		dst.Val[i] = cmplx.Conj(v)
	}
	return dst
}

// Dense expands a CSC matrix to dense.
func (c *CSC) Dense() *linalg.Matrix {
	m := linalg.New(c.Rows, c.Cols)
	for j := 0; j < c.Cols; j++ {
		for p := c.ColPtr[j]; p < c.ColPtr[j+1]; p++ {
			m.Set(c.RowIdx[p], j, c.Val[p])
		}
	}
	return m
}

// Transpose returns aᵀ as CSR. Structurally this is the CSC form of a
// reinterpreted, so it is cheap.
func (a *CSR) Transpose() *CSR {
	c := a.ToCSC()
	return &CSR{Rows: a.Cols, Cols: a.Rows, RowPtr: c.ColPtr, ColIdx: c.RowIdx, Val: c.Val}
}

// ConjTranspose returns aᴴ as CSR.
func (a *CSR) ConjTranspose() *CSR {
	t := a.Transpose()
	vals := make([]complex128, len(t.Val))
	for i, v := range t.Val {
		vals[i] = cmplx.Conj(v)
	}
	t.Val = vals
	return t
}

// CSRMM computes C = op(A)·B where A is sparse CSR and B is dense.
// Supported op modes mirror cusparseZcsrmm2: NN, NT (B transposed) and
// TN (A transposed). The result is dense.
func CSRMM(a *CSR, opA linalg.Op, b *linalg.Matrix, opB linalg.Op) *linalg.Matrix {
	switch {
	case opA == linalg.NoTrans && opB == linalg.NoTrans:
		return csrmmNN(a, b)
	case opA == linalg.NoTrans && opB == linalg.Trans:
		return csrmmNT(a, b)
	case opA == linalg.Trans && opB == linalg.NoTrans:
		return csrmmTN(a, b)
	default:
		panic(fmt.Sprintf("sparse: CSRMM unsupported op combination %v/%v", opA, opB))
	}
}

func csrmmNN(a *CSR, b *linalg.Matrix) *linalg.Matrix {
	if a.Cols != b.Rows {
		panic("sparse: CSRMM NN shape mismatch")
	}
	c := linalg.New(a.Rows, b.Cols)
	n := b.Cols
	for i := 0; i < a.Rows; i++ {
		crow := c.Data[i*n : (i+1)*n]
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			av := a.Val[p]
			brow := b.Data[a.ColIdx[p]*n : (a.ColIdx[p]+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c
}

// csrmmNT computes C = A·Bᵀ. Note the dense operand is accessed row-wise,
// which is why NT is the fastest mode in Table 7: both operands stream
// contiguously.
func csrmmNT(a *CSR, b *linalg.Matrix) *linalg.Matrix {
	if a.Cols != b.Cols {
		panic("sparse: CSRMM NT shape mismatch")
	}
	c := linalg.New(a.Rows, b.Rows)
	n := b.Rows
	for i := 0; i < a.Rows; i++ {
		crow := c.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.Row(j)
			var sum complex128
			for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
				sum += a.Val[p] * brow[a.ColIdx[p]]
			}
			crow[j] = sum
		}
	}
	return c
}

// csrmmTN computes C = Aᵀ·B by scattering, the strided access pattern that
// makes TN the slowest mode in Table 7.
func csrmmTN(a *CSR, b *linalg.Matrix) *linalg.Matrix {
	if a.Rows != b.Rows {
		panic("sparse: CSRMM TN shape mismatch")
	}
	c := linalg.New(a.Cols, b.Cols)
	n := b.Cols
	for i := 0; i < a.Rows; i++ {
		brow := b.Data[i*n : (i+1)*n]
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			av := a.Val[p]
			crow := c.Data[a.ColIdx[p]*n : (a.ColIdx[p]+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c
}

// GEMMI computes C = B·A where B is dense and A is sparse CSC — the
// cusparseZgemmi analogue (dense·sparse, NN only).
func GEMMI(b *linalg.Matrix, a *CSC) *linalg.Matrix {
	if b.Cols != a.Rows {
		panic("sparse: GEMMI shape mismatch")
	}
	c := linalg.New(b.Rows, a.Cols)
	for j := 0; j < a.Cols; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			k := a.RowIdx[p]
			av := a.Val[p]
			for i := 0; i < b.Rows; i++ {
				c.Data[i*c.Cols+j] += b.Data[i*b.Cols+k] * av
			}
		}
	}
	return c
}

// CSRMMInto computes dst = A·B (the NN mode of CSRMM) into a
// preallocated dst, overwriting it. dst must not alias b. This is the
// kernel the sparse RGF path routes coupling products through: per
// element the products accumulate in ascending stored-column order,
// which skips exact zeros — results are tolerance-equivalent, not
// bit-identical, to the dense kernel (see the rgf package docs).
func CSRMMInto(dst *linalg.Matrix, a *CSR, b *linalg.Matrix) *linalg.Matrix {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("sparse: CSRMMInto shape mismatch")
	}
	n := b.Cols
	for i := 0; i < a.Rows; i++ {
		crow := dst.Data[i*n : (i+1)*n]
		for j := range crow {
			crow[j] = 0
		}
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			av := a.Val[p]
			brow := b.Data[a.ColIdx[p]*n : (a.ColIdx[p]+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return dst
}

// GEMMIInto computes dst = B·A (dense·sparse-CSC) into a preallocated
// dst, overwriting it. dst must not alias b. Same tolerance-equivalence
// caveat as CSRMMInto.
func GEMMIInto(dst, b *linalg.Matrix, a *CSC) *linalg.Matrix {
	if b.Cols != a.Rows || dst.Rows != b.Rows || dst.Cols != a.Cols {
		panic("sparse: GEMMIInto shape mismatch")
	}
	for i := 0; i < b.Rows; i++ {
		brow := b.Data[i*b.Cols : (i+1)*b.Cols]
		crow := dst.Data[i*a.Cols : (i+1)*a.Cols]
		for j := 0; j < a.Cols; j++ {
			var sum complex128
			for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
				sum += brow[a.RowIdx[p]] * a.Val[p]
			}
			crow[j] = sum
		}
	}
	return dst
}

// MulFlops returns the real-flop cost of multiplying op(A)(sparse)·B(dense):
// 8 flops per stored nonzero per dense column.
func (a *CSR) MulFlops(denseCols int) int64 {
	return 8 * int64(a.NNZ()) * int64(denseCols)
}
