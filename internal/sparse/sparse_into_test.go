package sparse

import (
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

// TestFromDenseIntoMatchesFromDense checks the slice-reusing extraction
// against the allocating one, including re-extraction into a previously
// larger buffer (the per-solve pattern of the RGF sparse path).
func TestFromDenseIntoMatchesFromDense(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	var a CSR
	for _, dims := range [][2]int{{12, 9}, {20, 20}, {5, 7}, {12, 9}} {
		d := randomSparse(rng, dims[0], dims[1], 0.3)
		FromDenseInto(&a, d, 0)
		want := FromDense(d, 0)
		if a.Rows != want.Rows || a.Cols != want.Cols || a.NNZ() != want.NNZ() {
			t.Fatalf("dims %v: structure mismatch", dims)
		}
		for i := range want.RowPtr {
			if a.RowPtr[i] != want.RowPtr[i] {
				t.Fatalf("dims %v: RowPtr[%d] differs", dims, i)
			}
		}
		for i := range want.Val {
			if a.ColIdx[i] != want.ColIdx[i] || a.Val[i] != want.Val[i] {
				t.Fatalf("dims %v: entry %d differs", dims, i)
			}
		}
	}
	// Tolerance dropping must match too.
	d := linalg.New(2, 2)
	d.Set(0, 0, 1)
	d.Set(1, 1, complex(1e-15, 0))
	FromDenseInto(&a, d, 1e-12)
	if a.NNZ() != 1 {
		t.Fatalf("NNZ = %d, want 1 (tiny entry dropped)", a.NNZ())
	}
}

// TestToCSCIntoMatchesToCSC checks the scratch-reusing conversion against
// the allocating one across shape changes.
func TestToCSCIntoMatchesToCSC(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var c CSC
	next := make([]int, 32)
	for _, dims := range [][2]int{{8, 11}, {15, 6}, {8, 11}} {
		d := randomSparse(rng, dims[0], dims[1], 0.25)
		csr := FromDense(d, 0)
		csr.ToCSCInto(&c, next)
		if linalg.MaxDiff(c.Dense(), d) != 0 {
			t.Fatalf("dims %v: ToCSCInto roundtrip mismatch", dims)
		}
		want := csr.ToCSC()
		for j := range want.ColPtr {
			if c.ColPtr[j] != want.ColPtr[j] {
				t.Fatalf("dims %v: ColPtr[%d] differs", dims, j)
			}
		}
		for p := range want.Val {
			if c.RowIdx[p] != want.RowIdx[p] || c.Val[p] != want.Val[p] {
				t.Fatalf("dims %v: entry %d differs", dims, p)
			}
		}
	}
}

// TestTransCSCView checks the zero-copy transpose view: the CSR arrays
// reinterpreted column-wise are exactly aᵀ in CSC form.
func TestTransCSCView(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	d := randomSparse(rng, 7, 10, 0.3)
	a := FromDense(d, 0)
	v := a.TransCSCView()
	if linalg.MaxDiff(v.Dense(), d.T()) != 0 {
		t.Fatal("TransCSCView dense expansion != dᵀ")
	}
	if &v.Val[0] != &a.Val[0] {
		t.Fatal("TransCSCView copied values; must share storage")
	}
}

// TestConjTransCSCInto checks the conjugate-transpose CSC form shares the
// index structure and conjugates only the values.
func TestConjTransCSCInto(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	d := randomSparse(rng, 9, 6, 0.35)
	a := FromDense(d, 0)
	var h CSC
	a.ConjTransCSCInto(&h)
	if linalg.MaxDiff(h.Dense(), d.H()) != 0 {
		t.Fatal("ConjTransCSCInto dense expansion != dᴴ")
	}
	if &h.ColPtr[0] != &a.RowPtr[0] || &h.RowIdx[0] != &a.ColIdx[0] {
		t.Fatal("ConjTransCSCInto must share the CSR index structure")
	}
}

// TestCSRMMIntoBitwise pins the preallocated NN kernel bitwise against the
// allocating CSRMM: same per-element accumulation order, so the results
// are identical, not merely close.
func TestCSRMMIntoBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	aD := randomSparse(rng, 13, 9, 0.3)
	a := FromDense(aD, 0)
	b := randomDense(rng, 9, 11)
	want := CSRMM(a, linalg.NoTrans, b, linalg.NoTrans)
	got := randomDense(rng, 13, 11) // overwritten in full
	CSRMMInto(got, a, b)
	if linalg.MaxDiff(got, want) != 0 {
		t.Fatal("CSRMMInto differs from CSRMM")
	}
}

// TestGEMMIIntoBitwise pins the preallocated dense·CSC kernel bitwise
// against GEMMI: both accumulate each element in ascending stored-row
// order, so the loop-order difference (j-outer scatter vs i-outer gather)
// changes no bits.
func TestGEMMIIntoBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	b := randomDense(rng, 10, 8)
	aD := randomSparse(rng, 8, 7, 0.35)
	a := FromDense(aD, 0).ToCSC()
	want := GEMMI(b, a)
	got := randomDense(rng, 10, 7)
	GEMMIInto(got, b, a)
	if linalg.MaxDiff(got, want) != 0 {
		t.Fatal("GEMMIInto differs from GEMMI")
	}
}

// TestIntoVariantsSteadyStateAllocs pins the per-solve extraction path
// allocation-free once warm — the contract the RGF sparse routing relies
// on to keep SolveInto's zero-alloc steady state.
func TestIntoVariantsSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	d := randomSparse(rng, 24, 24, 0.15)
	var csr CSR
	var csc, csch CSC
	next := make([]int, 24)
	dst := linalg.New(24, 24)
	g := randomDense(rng, 24, 24)
	warm := func() {
		FromDenseInto(&csr, d, 0)
		csr.ToCSCInto(&csc, next)
		csr.ConjTransCSCInto(&csch)
		CSRMMInto(dst, &csr, g)
		GEMMIInto(dst, g, &csc)
	}
	warm()
	if allocs := testing.AllocsPerRun(10, warm); allocs > 0 {
		t.Errorf("warm Into path allocates %.1f times per run, want 0", allocs)
	}
}
