package device

import (
	"math"
	"testing"

	"repro/internal/linalg"
)

func testDevice(t *testing.T) *Device {
	t.Helper()
	d, err := Build(TestParams(24, 6, 2))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// Params.Validate coverage lives in the table-driven TestValidate in
// params_test.go.

func TestGeometryAndSlabs(t *testing.T) {
	d := testDevice(t)
	p := d.P
	if len(d.Pos) != p.Na || len(d.Slabs) != p.Bnum {
		t.Fatal("geometry sizes wrong")
	}
	for s, atoms := range d.Slabs {
		if len(atoms) != p.AtomsPerSlab() {
			t.Fatalf("slab %d has %d atoms", s, len(atoms))
		}
		for _, a := range atoms {
			if d.SlabOf[a] != s {
				t.Fatal("SlabOf inconsistent with Slabs")
			}
		}
	}
}

func TestNeighboursSymmetricAndLocal(t *testing.T) {
	d := testDevice(t)
	for a, list := range d.Neigh {
		if len(list) == 0 {
			t.Fatalf("atom %d has no neighbours", a)
		}
		for _, b := range list {
			if ds := d.SlabOf[b] - d.SlabOf[a]; ds < -1 || ds > 1 {
				t.Fatalf("neighbour pair (%d,%d) spans %d slabs", a, b, ds)
			}
			if d.NeighbourSlot(b, a) < 0 {
				t.Fatalf("neighbour relation not symmetric for (%d,%d)", a, b)
			}
		}
	}
	if d.NeighbourSlot(0, -1) != -1 {
		t.Fatal("NeighbourSlot should return -1 for non-neighbours")
	}
}

func TestDeterminism(t *testing.T) {
	p := TestParams(24, 6, 2)
	d1 := MustBuild(p)
	d2 := MustBuild(p)
	h1 := d1.Hamiltonian(1).Dense()
	h2 := d2.Hamiltonian(1).Dense()
	if linalg.MaxDiff(h1, h2) != 0 {
		t.Fatal("same seed should give identical Hamiltonians")
	}
	p2 := p
	p2.Seed++
	d3 := MustBuild(p2)
	if linalg.MaxDiff(h1, d3.Hamiltonian(1).Dense()) == 0 {
		t.Fatal("different seed should change the structure")
	}
}

func TestHamiltonianHermitianAllKz(t *testing.T) {
	d := testDevice(t)
	for ikz := 0; ikz < d.P.Nkz; ikz++ {
		h := d.Hamiltonian(ikz)
		if !h.Hermitian(1e-13) {
			t.Fatalf("H(kz=%d) not Hermitian", ikz)
		}
	}
}

func TestOverlapIsIdentity(t *testing.T) {
	d := testDevice(t)
	s := d.Overlap(0)
	if linalg.MaxDiff(s.Dense(), linalg.Eye(d.P.Na*d.P.Norb)) != 0 {
		t.Fatal("overlap should be the identity in the orthonormal basis")
	}
}

func TestDynamicalHermitianAndPSD(t *testing.T) {
	d := testDevice(t)
	for iqz := 0; iqz < d.P.Nqz(); iqz++ {
		phi := d.Dynamical(iqz)
		if !phi.Hermitian(1e-12) {
			t.Fatalf("Φ(qz=%d) not Hermitian", iqz)
		}
		// Positive semidefinite: Rayleigh quotients of random probes ≥ 0.
		dD := phi.Dense()
		n := dD.Rows
		rng := newRNG(99)
		for trial := 0; trial < 10; trial++ {
			v := linalg.New(n, 1)
			for i := 0; i < n; i++ {
				v.Set(i, 0, complex(rng.float()-0.5, 0))
			}
			q := linalg.MatMul(v, linalg.ConjTrans, linalg.Mul(dD, v), linalg.NoTrans)
			if real(q.At(0, 0)) < -1e-10 {
				t.Fatalf("Φ(qz=%d) has negative Rayleigh quotient %g", iqz, real(q.At(0, 0)))
			}
		}
	}
}

func TestAcousticSumRule(t *testing.T) {
	// At qz = Γ-equivalent the uniform translation must be a zero mode:
	// Φ(qz with sin(qz/2)=0)·(1,1,...)ᵀ per direction = 0. Our grid is
	// kz = -π + 2πi/N, so qz=0 requires even grid offset; test the
	// construction directly by summing rows of the qz-independent part.
	p := TestParams(24, 6, 2)
	p.Nkz = 4 // grid {-π, -π/2, 0, π/2} contains qz = 0 at index 2
	d := MustBuild(p)
	phi := d.Dynamical(2).Dense()
	n := phi.Rows
	for dir := 0; dir < N3D; dir++ {
		v := linalg.New(n, 1)
		for a := 0; a < p.Na; a++ {
			v.Set(a*N3D+dir, 0, 1)
		}
		// Translation vector ordering: our layout groups by slab, but the
		// uniform translation touches every (atom, dir) entry once
		// regardless of ordering, so build it via slab layout.
		v = linalg.New(n, 1)
		rows := p.AtomsPerSlab()
		for a := 0; a < p.Na; a++ {
			s := d.SlabOf[a]
			r := (a - s*rows) * N3D
			v.Set(s*rows*N3D+r+dir, 0, 1)
		}
		res := linalg.Mul(phi, v)
		if res.FrobNorm() > 1e-10 {
			t.Fatalf("acoustic sum rule violated in direction %d: |Φ·t| = %g", dir, res.FrobNorm())
		}
	}
}

func TestGradHHermitianPairing(t *testing.T) {
	d := testDevice(t)
	checked := 0
	for a := 0; a < d.P.Na; a++ {
		for _, b := range d.Neigh[a] {
			for i := 0; i < N3D; i++ {
				gab := d.GradH(a, b, i)
				gba := d.GradH(b, a, i)
				if gab == nil || gba == nil {
					t.Fatalf("missing GradH for pair (%d,%d) dir %d", a, b, i)
				}
				if linalg.MaxDiff(gba, gab.H()) > 1e-14 {
					t.Fatalf("GradH(%d,%d) not the Hermitian pair of GradH(%d,%d)", b, a, a, b)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no neighbour pairs checked")
	}
	if d.GradH(0, 0, 0) != nil {
		t.Fatal("self-pair should have no GradH")
	}
}

func TestGradHScalesWithCoupling(t *testing.T) {
	p := TestParams(24, 6, 2)
	d1 := MustBuild(p)
	p.Coupling *= 2
	d2 := MustBuild(p)
	a := 0
	b := d1.Neigh[0][0]
	g1 := d1.GradH(a, b, 0)
	g2 := d2.GradH(a, b, 0)
	diff := linalg.Sub(linalg.New(g1.Rows, g1.Cols), g2, linalg.Scale(linalg.New(g1.Rows, g1.Cols), 2, g1))
	if diff.FrobNorm() > 1e-14 {
		t.Fatal("GradH should scale linearly with Coupling")
	}
}

func TestEnergyGridHelpers(t *testing.T) {
	p := TestParams(24, 6, 2)
	if p.Energy(0) != p.Emin {
		t.Fatal("Energy(0) != Emin")
	}
	if math.Abs(p.Omega(3)-3*p.DE) > 1e-15 {
		t.Fatal("Omega grid misaligned")
	}
	if math.Abs(p.Kz(0)+math.Pi) > 1e-15 {
		t.Fatal("Kz(0) should be -π")
	}
	if p.MuL()-p.MuR() != p.Vds {
		t.Fatal("contact potentials should differ by Vds")
	}
}

func TestOccupations(t *testing.T) {
	// Fermi-Dirac limits and midpoint.
	if f := FermiDirac(0, 0, 300); math.Abs(f-0.5) > 1e-12 {
		t.Fatalf("f(mu) = %g, want 0.5", f)
	}
	if f := FermiDirac(10, 0, 300); f > 1e-30 {
		t.Fatalf("far-above-mu occupation should vanish, got %g", f)
	}
	if f := FermiDirac(-10, 0, 300); f != 1 {
		t.Fatalf("far-below-mu occupation should saturate, got %g", f)
	}
	// Bose-Einstein: n(ω) ≈ kT/ω for small ω, decays exponentially for large.
	w := 1e-6
	if n := BoseEinstein(w, 300); math.Abs(n*w/(KB*300)-1) > 1e-3 {
		t.Fatalf("classical limit violated: n = %g", n)
	}
	if n := BoseEinstein(5, 300); n > 1e-30 {
		t.Fatalf("high-frequency occupation should vanish, got %g", n)
	}
}

func TestHamiltonianKzModulation(t *testing.T) {
	// H(kz) must differ between kz points (the z-periodic images) while
	// staying Hermitian; the kz dependence is through cos(kz).
	d := testDevice(t)
	h0 := d.Hamiltonian(0).Dense()
	h1 := d.Hamiltonian(1).Dense()
	if linalg.MaxDiff(h0, h1) == 0 {
		t.Fatal("H should depend on kz")
	}
	// cos(-π+2π/3) == cos(-π+4π/3) on the 3-point grid → H(1) == H(2).
	h2 := d.Hamiltonian(2).Dense()
	if linalg.MaxDiff(h1, h2) > 1e-13 {
		t.Fatal("cos symmetry of the 3-point grid violated")
	}
}

func TestPresetsValidate(t *testing.T) {
	for _, p := range []Params{Small(7), Large(21), TestParams(48, 8, 3)} {
		if err := p.Validate(); err != nil {
			t.Fatalf("preset invalid: %v", err)
		}
	}
	s := Small(7)
	if s.Na != 4864 || s.NbT != 34 || s.NE != 706 || s.Nomega != 70 {
		t.Fatal("Small preset does not match the paper")
	}
	l := Large(21)
	if l.Na != 10240 || l.NE != 1220 {
		t.Fatal("Large preset does not match the paper")
	}
}
