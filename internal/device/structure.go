package device

import (
	"math"
	"sort"

	"repro/internal/blocktri"
	"repro/internal/linalg"
)

// Device is a fully built synthetic nanostructure: geometry, neighbour
// lists and all coupling matrices, from which the kz/qz-dependent operator
// matrices are assembled on demand.
type Device struct {
	P Params

	// Geometry: atoms on a rows × Bnum grid in the x-y simulation slice,
	// slab s holding atoms [s*rows, (s+1)*rows).
	Pos    [][2]float64
	SlabOf []int
	Slabs  [][]int

	// Neigh[a] lists the neighbours of atom a (each in the same or an
	// adjacent slab, preserving block-tridiagonality), sorted ascending.
	Neigh [][]int
	// NbSlot[a][b] gives the index of b in Neigh[a] (or -1).
	nbSlot []map[int]int

	onsite []*linalg.Matrix        // per-atom Norb×Norb Hermitian onsite block
	zshift []*linalg.Matrix        // per-atom Hermitian kz-modulation of onsite
	hop    map[pair]*linalg.Matrix // directed (a<b) Norb×Norb hopping
	spring map[pair]*linalg.Matrix // directed (a<b) 3×3 real force-constant block
	zeta   float64                 // in-plane kz modulation amplitude
	kappaZ float64                 // out-of-plane spring stiffness

	gradH map[pairDir]*linalg.Matrix // ∇H for ordered pairs (a,b) and direction i
}

type pair struct{ a, b int }
type pairDir struct {
	a, b, dir int
}

func orderedPair(a, b int) pair {
	if a > b {
		a, b = b, a
	}
	return pair{a, b}
}

// Build constructs the synthetic device for p. The same Params and Seed
// always produce the identical structure.
func Build(p Params) (*Device, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	d := &Device{
		P:      p,
		hop:    make(map[pair]*linalg.Matrix),
		spring: make(map[pair]*linalg.Matrix),
		gradH:  make(map[pairDir]*linalg.Matrix),
		zeta:   0.15,
		kappaZ: 0.02,
	}
	d.buildGeometry()
	d.buildNeighbours()
	d.buildElectronic()
	d.buildPhononic()
	d.buildGradH()
	return d, nil
}

// MustBuild is Build for known-good parameters (tests, examples).
func MustBuild(p Params) *Device {
	d, err := Build(p)
	if err != nil {
		panic(err)
	}
	return d
}

func (d *Device) buildGeometry() {
	p := d.P
	rows := p.AtomsPerSlab()
	d.Pos = make([][2]float64, p.Na)
	d.SlabOf = make([]int, p.Na)
	d.Slabs = make([][]int, p.Bnum)
	rng := newRNG(p.Seed)
	const a0 = 1.0 // lattice constant (arbitrary units)
	for s := 0; s < p.Bnum; s++ {
		for r := 0; r < rows; r++ {
			a := s*rows + r
			// Slight deterministic jitter makes distances (and hence
			// couplings) non-degenerate, like a relaxed DFT geometry.
			jx := 0.05 * (rng.float() - 0.5)
			jy := 0.05 * (rng.float() - 0.5)
			d.Pos[a] = [2]float64{float64(s)*a0 + jx, float64(r)*a0 + jy}
			d.SlabOf[a] = s
			d.Slabs[s] = append(d.Slabs[s], a)
		}
	}
}

// buildNeighbours selects up to NbT nearest atoms per atom, restricted to
// the same or adjacent slab so that all operators stay block-tridiagonal,
// and symmetrizes the relation.
func (d *Device) buildNeighbours() {
	p := d.P
	d.Neigh = make([][]int, p.Na)
	d.nbSlot = make([]map[int]int, p.Na)
	type cand struct {
		b    int
		dist float64
	}
	adjacency := make([]map[int]bool, p.Na)
	for a := 0; a < p.Na; a++ {
		adjacency[a] = make(map[int]bool)
	}
	for a := 0; a < p.Na; a++ {
		var cands []cand
		for b := 0; b < p.Na; b++ {
			if b == a {
				continue
			}
			ds := d.SlabOf[b] - d.SlabOf[a]
			if ds < -1 || ds > 1 {
				continue
			}
			cands = append(cands, cand{b, d.dist(a, b)})
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].dist != cands[j].dist {
				return cands[i].dist < cands[j].dist
			}
			return cands[i].b < cands[j].b
		})
		n := p.NbT
		if n > len(cands) {
			n = len(cands)
		}
		for _, c := range cands[:n] {
			adjacency[a][c.b] = true
			adjacency[c.b][a] = true // symmetrize
		}
	}
	for a := 0; a < p.Na; a++ {
		list := make([]int, 0, len(adjacency[a]))
		for b := range adjacency[a] {
			list = append(list, b)
		}
		sort.Ints(list)
		d.Neigh[a] = list
		d.nbSlot[a] = make(map[int]int, len(list))
		for i, b := range list {
			d.nbSlot[a][b] = i
		}
	}
}

func (d *Device) dist(a, b int) float64 {
	dx := d.Pos[a][0] - d.Pos[b][0]
	dy := d.Pos[a][1] - d.Pos[b][1]
	return math.Hypot(dx, dy)
}

// NeighbourSlot returns the index of b in a's neighbour list, or -1.
func (d *Device) NeighbourSlot(a, b int) int {
	if s, ok := d.nbSlot[a][b]; ok {
		return s
	}
	return -1
}

// MaxNb returns the largest realized neighbour count.
func (d *Device) MaxNb() int {
	m := 0
	for _, l := range d.Neigh {
		if len(l) > m {
			m = len(l)
		}
	}
	return m
}

// buildElectronic generates onsite energies and hopping matrices. Onsite
// blocks are Hermitian with orbital energies spread over ~2 eV; hoppings
// decay exponentially with distance, as localized DFT basis couplings do.
func (d *Device) buildElectronic() {
	p := d.P
	rng := newRNG(p.Seed ^ 0xe1ec)
	d.onsite = make([]*linalg.Matrix, p.Na)
	d.zshift = make([]*linalg.Matrix, p.Na)
	for a := 0; a < p.Na; a++ {
		on := linalg.New(p.Norb, p.Norb)
		for o := 0; o < p.Norb; o++ {
			// Orbital ladder with deterministic disorder.
			e := -0.4 + 0.25*float64(o) + 0.05*(rng.float()-0.5)
			on.Set(o, o, complex(e, 0))
			for o2 := o + 1; o2 < p.Norb; o2++ {
				v := complex(0.04*(rng.float()-0.5), 0.04*(rng.float()-0.5))
				on.Set(o, o2, v)
				on.Set(o2, o, complex(real(v), -imag(v)))
			}
		}
		d.onsite[a] = on
		zs := linalg.New(p.Norb, p.Norb)
		for o := 0; o < p.Norb; o++ {
			zs.Set(o, o, complex(0.08+0.02*(rng.float()-0.5), 0))
		}
		d.zshift[a] = zs
	}
	for a := 0; a < p.Na; a++ {
		for _, b := range d.Neigh[a] {
			if b < a {
				continue
			}
			key := pair{a, b}
			if _, ok := d.hop[key]; ok {
				continue
			}
			t0 := 0.35 * math.Exp(-(d.dist(a, b) - 1))
			h := linalg.New(p.Norb, p.Norb)
			for o1 := 0; o1 < p.Norb; o1++ {
				for o2 := 0; o2 < p.Norb; o2++ {
					mag := t0 / (1 + math.Abs(float64(o1-o2)))
					h.Set(o1, o2, complex(mag*(0.8+0.4*rng.float()), 0.1*mag*(rng.float()-0.5)))
				}
			}
			d.hop[key] = h
		}
	}
}

// buildPhononic generates 3×3 force-constant blocks with the standard
// longitudinal/transverse decomposition along the bond direction. The
// onsite block is fixed by the acoustic sum rule in Dynamical().
func (d *Device) buildPhononic() {
	p := d.P
	rng := newRNG(p.Seed ^ 0x9407)
	for a := 0; a < p.Na; a++ {
		for _, b := range d.Neigh[a] {
			if b < a {
				continue
			}
			key := pair{a, b}
			if _, ok := d.spring[key]; ok {
				continue
			}
			k := (0.010 + 0.002*rng.float()) * math.Exp(-(d.dist(a, b) - 1))
			ux := d.Pos[b][0] - d.Pos[a][0]
			uy := d.Pos[b][1] - d.Pos[a][1]
			n := math.Hypot(ux, uy)
			ux, uy = ux/n, uy/n
			dir := [3]float64{ux, uy, 0}
			m := linalg.New(N3D, N3D)
			for i := 0; i < N3D; i++ {
				for j := 0; j < N3D; j++ {
					v := 1.5 * k * dir[i] * dir[j]
					if i == j {
						v += 0.5 * k
					}
					m.Set(i, j, complex(v, 0))
				}
			}
			d.spring[key] = m
		}
	}
}

// buildGradH generates the derivative couplings ∇iH_ab (i ∈ x,y,z) for
// every ordered neighbour pair, with ∇iH_ba = (∇iH_ab)ᴴ so the scattering
// self-energies stay (anti-)Hermitian. Magnitudes scale with the hopping
// and the bond direction, times the global Coupling knob.
func (d *Device) buildGradH() {
	p := d.P
	for key, h := range d.hop {
		a, b := key.a, key.b
		ux := d.Pos[b][0] - d.Pos[a][0]
		uy := d.Pos[b][1] - d.Pos[a][1]
		n := math.Hypot(ux, uy)
		// z-component: the z-periodic images contribute a fixed fraction.
		dir := [3]float64{ux / n, uy / n, 0.4}
		for i := 0; i < N3D; i++ {
			g := linalg.New(p.Norb, p.Norb)
			linalg.Scale(g, complex(p.Coupling*dir[i], 0), h)
			d.gradH[pairDir{a, b, i}] = g
			d.gradH[pairDir{b, a, i}] = g.H()
		}
	}
}

// GradH returns ∇iH_ab for neighbour pair (a, b) and direction i, or nil
// if b is not a neighbour of a.
func (d *Device) GradH(a, b, i int) *linalg.Matrix {
	return d.gradH[pairDir{a, b, i}]
}

// Hamiltonian assembles the block-tridiagonal H(kz) for momentum index
// ikz. In-plane hoppings are modulated by (1 + 2ζ·cos kz) — the
// contribution of the ±z periodic images — and onsite blocks acquire the
// 2·cos(kz)·W z-image coupling. H(kz) is Hermitian for every kz.
func (d *Device) Hamiltonian(ikz int) *blocktri.Matrix {
	p := d.P
	ck := math.Cos(p.Kz(ikz))
	mod := complex(1+2*d.zeta*ck, 0)
	m := blocktri.Uniform(p.Bnum, p.ElBlockSize())
	rows := p.AtomsPerSlab()
	for a := 0; a < p.Na; a++ {
		sa := d.SlabOf[a]
		ra := (a - sa*rows) * p.Norb
		// Onsite.
		blk := m.Diag[sa]
		for o1 := 0; o1 < p.Norb; o1++ {
			for o2 := 0; o2 < p.Norb; o2++ {
				v := d.onsite[a].At(o1, o2) + complex(2*ck, 0)*d.zshift[a].At(o1, o2)
				blk.Set(ra+o1, ra+o2, v)
			}
		}
		for _, b := range d.Neigh[a] {
			if b < a {
				continue
			}
			h := d.hop[pair{a, b}]
			sb := d.SlabOf[b]
			rb := (b - sb*rows) * p.Norb
			var dst *linalg.Matrix
			var r0, c0 int
			switch {
			case sb == sa:
				dst, r0, c0 = m.Diag[sa], ra, rb
			case sb == sa+1:
				dst, r0, c0 = m.Upper[sa], ra, rb
			case sb == sa-1:
				dst, r0, c0 = m.Lower[sb], ra, rb
			default:
				panic("device: neighbour crosses more than one slab")
			}
			for o1 := 0; o1 < p.Norb; o1++ {
				for o2 := 0; o2 < p.Norb; o2++ {
					dst.Set(r0+o1, c0+o2, mod*h.At(o1, o2))
				}
			}
			// Hermitian mirror.
			var mir *linalg.Matrix
			var mr, mc int
			switch {
			case sb == sa:
				mir, mr, mc = m.Diag[sa], rb, ra
			case sb == sa+1:
				mir, mr, mc = m.Lower[sa], rb, ra
			case sb == sa-1:
				mir, mr, mc = m.Upper[sb], rb, ra
			}
			for o1 := 0; o1 < p.Norb; o1++ {
				for o2 := 0; o2 < p.Norb; o2++ {
					v := mod * h.At(o1, o2)
					mir.Set(mr+o2, mc+o1, complex(real(v), -imag(v)))
				}
			}
		}
	}
	return m
}

// Overlap returns S(kz). The synthetic basis is orthonormal (S = I), the
// standard choice after Löwdin orthogonalization; the solver nevertheless
// carries S through the E·S − H algebra exactly as the paper's Eq. (1).
func (d *Device) Overlap(ikz int) *blocktri.Matrix {
	p := d.P
	m := blocktri.Uniform(p.Bnum, p.ElBlockSize())
	for i := 0; i < p.Bnum; i++ {
		for r := 0; r < p.ElBlockSize(); r++ {
			m.Diag[i].Set(r, r, 1)
		}
	}
	return m
}

// Dynamical assembles the block-tridiagonal dynamical matrix Φ(qz) for
// momentum index iqz. Off-diagonal blocks are −K_ab; onsite blocks follow
// the acoustic sum rule Φ_aa = Σ_b K_ab plus the z-image spring
// 4κz·sin²(qz/2)·I, giving a positive-semidefinite matrix with ω(q→0)→0
// acoustic behaviour.
func (d *Device) Dynamical(iqz int) *blocktri.Matrix {
	p := d.P
	sq := math.Sin(p.Kz(iqz) / 2)
	zspring := 4 * d.kappaZ * sq * sq
	m := blocktri.Uniform(p.Bnum, p.PhBlockSize())
	rows := p.AtomsPerSlab()
	for a := 0; a < p.Na; a++ {
		sa := d.SlabOf[a]
		ra := (a - sa*rows) * N3D
		diag := m.Diag[sa]
		for i := 0; i < N3D; i++ {
			diag.Set(ra+i, ra+i, complex(zspring, 0))
		}
		for _, b := range d.Neigh[a] {
			k := d.spring[orderedPair(a, b)]
			sb := d.SlabOf[b]
			rb := (b - sb*rows) * N3D
			// Acoustic sum rule accumulation on the diagonal.
			for i := 0; i < N3D; i++ {
				for j := 0; j < N3D; j++ {
					diag.Set(ra+i, ra+j, diag.At(ra+i, ra+j)+k.At(i, j))
				}
			}
			if b < a {
				continue // off-diagonal blocks written once per pair below
			}
			var dst *linalg.Matrix
			var r0, c0 int
			var mir *linalg.Matrix
			var mr, mc int
			switch {
			case sb == sa:
				dst, r0, c0 = m.Diag[sa], ra, rb
				mir, mr, mc = m.Diag[sa], rb, ra
			case sb == sa+1:
				dst, r0, c0 = m.Upper[sa], ra, rb
				mir, mr, mc = m.Lower[sa], rb, ra
			case sb == sa-1:
				dst, r0, c0 = m.Lower[sb], ra, rb
				mir, mr, mc = m.Upper[sb], rb, ra
			default:
				panic("device: neighbour crosses more than one slab")
			}
			for i := 0; i < N3D; i++ {
				for j := 0; j < N3D; j++ {
					v := -k.At(i, j)
					dst.Set(r0+i, c0+j, v)
					mir.Set(mr+j, mc+i, v) // K is real symmetric
				}
			}
		}
	}
	return m
}

// splitmix64-based deterministic RNG, stable across Go releases.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng { return &rng{s: seed} }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform value in [0, 1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }
