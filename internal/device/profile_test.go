package device

import (
	"math"
	"strings"
	"testing"

	"repro/internal/linalg"
)

// testProfile exercises every lowering channel: two heterojunction
// regions, one gate well, doping, vacancies and strain.
func testProfile() *Profile {
	return &Profile{
		Regions:   []Region{{From: 0, To: 1, Offset: 0.12}, {From: 4, To: 5, Offset: -0.05}},
		Gates:     []Gate{{Center: 2.5, Width: 1.2, Depth: 0.15}},
		Doping:    &Doping{Fraction: 0.25, Shift: -0.1},
		Vacancies: &Vacancies{Fraction: 0.08},
		Strain:    &Strain{Amplitude: 0.05},
	}
}

// buildWith builds the standard test device and lowers pr onto it with
// the given disorder seed.
func buildWith(t *testing.T, pr *Profile, seed uint64) *Device {
	t.Helper()
	d, err := Build(TestParams(24, 6, 2))
	if err != nil {
		t.Fatal(err)
	}
	if pr != nil {
		if err := pr.Apply(d, seed); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func matricesEqual(a, b *linalg.Matrix) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] { // bitwise, no tolerance
			return false
		}
	}
	return true
}

// TestProfileDeterministic is the lowering contract: same (profile,
// seed) → bitwise-identical Hamiltonian, dynamical matrix and ∇H.
func TestProfileDeterministic(t *testing.T) {
	pr := testProfile()
	d1 := buildWith(t, pr, 42)
	d2 := buildWith(t, pr, 42)
	p := d1.P
	for ikz := 0; ikz < p.Nkz; ikz++ {
		h1, h2 := d1.Hamiltonian(ikz), d2.Hamiltonian(ikz)
		for s := 0; s < p.Bnum; s++ {
			if !matricesEqual(h1.Diag[s], h2.Diag[s]) {
				t.Fatalf("H(kz=%d) diag block %d differs between identical realizations", ikz, s)
			}
			if s < p.Bnum-1 && !matricesEqual(h1.Upper[s], h2.Upper[s]) {
				t.Fatalf("H(kz=%d) upper block %d differs between identical realizations", ikz, s)
			}
		}
		f1, f2 := d1.Dynamical(ikz), d2.Dynamical(ikz)
		for s := 0; s < p.Bnum; s++ {
			if !matricesEqual(f1.Diag[s], f2.Diag[s]) {
				t.Fatalf("Phi(qz=%d) diag block %d differs between identical realizations", ikz, s)
			}
		}
	}
	for a := 0; a < p.Na; a++ {
		for _, b := range d1.Neigh[a] {
			for i := 0; i < N3D; i++ {
				if !matricesEqual(d1.GradH(a, b, i), d2.GradH(a, b, i)) {
					t.Fatalf("gradH(%d,%d,%d) differs between identical realizations", a, b, i)
				}
			}
		}
	}
}

// TestProfileSeedChangesDisorder: a different seed must redraw the
// disorder, and only the disorder — geometry and neighbour lists stay
// identical (the property warm-start compatibility rests on).
func TestProfileSeedChangesDisorder(t *testing.T) {
	pr := testProfile()
	d1 := buildWith(t, pr, 1)
	d2 := buildWith(t, pr, 2)
	if len(d1.Neigh) != len(d2.Neigh) {
		t.Fatal("neighbour list length changed with disorder seed")
	}
	for a := range d1.Neigh {
		if len(d1.Neigh[a]) != len(d2.Neigh[a]) {
			t.Fatalf("neighbour list of atom %d changed with disorder seed", a)
		}
	}
	same := true
	h1, h2 := d1.Hamiltonian(0), d2.Hamiltonian(0)
	for s := 0; s < d1.P.Bnum && same; s++ {
		same = matricesEqual(h1.Diag[s], h2.Diag[s])
	}
	if same {
		t.Fatal("different disorder seeds produced identical Hamiltonians")
	}
}

// TestProfileDeterministicLayersIgnoreSeed: with only RNG-free channels
// (regions + gates) the seed must not matter at all.
func TestProfileDeterministicLayersIgnoreSeed(t *testing.T) {
	pr := &Profile{
		Regions: []Region{{From: 1, To: 3, Offset: 0.2}},
		Gates:   []Gate{{Center: 3, Width: 1, Depth: 0.1}},
	}
	d1 := buildWith(t, pr, 7)
	d2 := buildWith(t, pr, 8)
	h1, h2 := d1.Hamiltonian(1), d2.Hamiltonian(1)
	for s := 0; s < d1.P.Bnum; s++ {
		if !matricesEqual(h1.Diag[s], h2.Diag[s]) {
			t.Fatalf("seed leaked into an RNG-free profile (diag block %d)", s)
		}
	}
}

// TestProfilePreservesHermiticity: every lowering channel must keep
// H(kz) Hermitian and ∇H_ba = (∇H_ab)ᴴ.
func TestProfilePreservesHermiticity(t *testing.T) {
	d := buildWith(t, testProfile(), 3)
	p := d.P
	for ikz := 0; ikz < p.Nkz; ikz++ {
		h := d.Hamiltonian(ikz)
		for s := 0; s < p.Bnum; s++ {
			blk := h.Diag[s]
			for i := 0; i < blk.Rows; i++ {
				for j := 0; j < blk.Cols; j++ {
					diff := blk.At(i, j) - conj(blk.At(j, i))
					if math.Hypot(real(diff), imag(diff)) > 1e-14 {
						t.Fatalf("H(kz=%d) diag block %d not Hermitian at (%d,%d)", ikz, s, i, j)
					}
				}
			}
		}
	}
	for a := 0; a < p.Na; a++ {
		for _, b := range d.Neigh[a] {
			for i := 0; i < N3D; i++ {
				g, gt := d.GradH(a, b, i), d.GradH(b, a, i)
				if g == nil || gt == nil {
					t.Fatalf("missing gradH for bond (%d,%d) after profile", a, b)
				}
				gh := g.H()
				if !matricesEqual(gh, gt) {
					t.Fatalf("gradH(%d,%d,%d) lost Hermitian pairing after strain", a, b, i)
				}
			}
		}
	}
}

// TestProfileRegionShiftsOnsite: a region offset must appear exactly as
// a diagonal shift of the onsite blocks of its slabs and nowhere else.
func TestProfileRegionShiftsOnsite(t *testing.T) {
	const off = 0.3
	pr := &Profile{Regions: []Region{{From: 2, To: 2, Offset: off}}}
	base := buildWith(t, nil, 0)
	mod := buildWith(t, pr, 0)
	h0, h1 := base.Hamiltonian(0), mod.Hamiltonian(0)
	for s := 0; s < base.P.Bnum; s++ {
		b0, b1 := h0.Diag[s], h1.Diag[s]
		for i := 0; i < b0.Rows; i++ {
			for j := 0; j < b0.Cols; j++ {
				want := b0.At(i, j)
				if s == 2 && i == j {
					want += complex(off, 0)
				}
				// Tolerance, not bitwise: the kz-assembly adds zshift
				// after the onsite shift, which reassociates the sum.
				diff := b1.At(i, j) - want
				if math.Hypot(real(diff), imag(diff)) > 1e-12 {
					t.Fatalf("slab %d element (%d,%d): got %v want %v", s, i, j, b1.At(i, j), want)
				}
			}
		}
	}
}

// TestProfileValidate is the table-driven rejection test for malformed
// profiles.
func TestProfileValidate(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name    string
		pr      Profile
		wantErr string
	}{
		{"empty ok", Profile{}, ""},
		{"full ok", *testProfile(), ""},
		{"region past end", Profile{Regions: []Region{{From: 0, To: 6, Offset: 1}}}, "slab range"},
		{"region negative start", Profile{Regions: []Region{{From: -1, To: 2}}}, "slab range"},
		{"region inverted", Profile{Regions: []Region{{From: 3, To: 1}}}, "slab range"},
		{"region NaN offset", Profile{Regions: []Region{{From: 0, To: 1, Offset: nan}}}, "offset must be finite"},
		{"gate zero width", Profile{Gates: []Gate{{Center: 1, Width: 0, Depth: 1}}}, "width must be positive"},
		{"gate NaN depth", Profile{Gates: []Gate{{Center: 1, Width: 1, Depth: nan}}}, "must be finite"},
		{"doping fraction above one", Profile{Doping: &Doping{Fraction: 1.5}}, "fraction must be in"},
		{"doping NaN shift", Profile{Doping: &Doping{Fraction: 0.1, Shift: nan}}, "shift must be finite"},
		{"vacancy negative fraction", Profile{Vacancies: &Vacancies{Fraction: -0.1}}, "fraction must be in"},
		{"vacancy bond scale above one", Profile{Vacancies: &Vacancies{Fraction: 0.1, BondScale: 2}}, "bond_scale"},
		{"strain amplitude one", Profile{Strain: &Strain{Amplitude: 1}}, "amplitude must be in"},
		{"strain NaN", Profile{Strain: &Strain{Amplitude: nan}}, "amplitude must be in"},
	}
	p := TestParams(24, 6, 2)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.pr.Validate(p)
			switch {
			case tc.wantErr == "" && err != nil:
				t.Fatalf("Validate() = %v, want nil", err)
			case tc.wantErr != "" && err == nil:
				t.Fatalf("Validate() = nil, want error containing %q", tc.wantErr)
			case tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr):
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

func conj(c complex128) complex128 { return complex(real(c), -imag(c)) }
