package device

import (
	"math"
	"strings"
	"testing"
)

// TestValidate is the table-driven contract test for Params.Validate:
// each row mutates one field of a known-good baseline and states what
// the validator must say about it.
func TestValidate(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	cases := []struct {
		name    string
		mutate  func(*Params)
		wantErr string // "" = must pass; otherwise substring of the error
	}{
		{"baseline ok", func(p *Params) {}, ""},
		{"zero atoms", func(p *Params) { p.Na = 0 }, "must be positive"},
		{"negative orbitals", func(p *Params) { p.Norb = -1 }, "must be positive"},
		{"atoms not divisible by slabs", func(p *Params) { p.Na = 25 }, "divisible"},
		{"too few slabs", func(p *Params) { p.Na = 16; p.Bnum = 2 }, "at least 3 slabs"},
		{"zero neighbours", func(p *Params) { p.NbT = 0 }, "NbT must be positive"},
		{"negative neighbours", func(p *Params) { p.NbT = -4 }, "NbT must be positive"},
		{"zero momentum points", func(p *Params) { p.Nkz = 0 }, "must be positive"},
		{"phonon grid too wide", func(p *Params) { p.Nomega = p.NE }, "must be < NE"},
		{"zero energy step", func(p *Params) { p.DE = 0 }, "DE must be positive"},
		{"NaN energy step", func(p *Params) { p.DE = nan }, "DE must be finite"},
		{"Inf energy step", func(p *Params) { p.DE = inf }, "DE must be finite"},
		{"NaN grid origin", func(p *Params) { p.Emin = nan }, "Emin must be finite"},
		{"-Inf grid origin", func(p *Params) { p.Emin = -inf }, "Emin must be finite"},
		{"NaN coupling", func(p *Params) { p.Coupling = nan }, "Coupling must be finite"},
		{"Inf coupling", func(p *Params) { p.Coupling = inf }, "Coupling must be finite"},
		{"zero broadening", func(p *Params) { p.Eta = 0 }, "Eta must be positive"},
		{"zero temperature", func(p *Params) { p.TC = 0 }, "temperature must be positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := TestParams(24, 4, 2)
			tc.mutate(&p)
			err := p.Validate()
			switch {
			case tc.wantErr == "" && err != nil:
				t.Fatalf("Validate() = %v, want nil", err)
			case tc.wantErr != "" && err == nil:
				t.Fatalf("Validate() = nil, want error containing %q", tc.wantErr)
			case tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr):
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}
