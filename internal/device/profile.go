package device

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// Profile is the declarative device-zoo layer: a recipe of physical
// perturbations — heterojunction band offsets, gate-induced potential
// wells, doping and vacancy disorder, strain-perturbed couplings —
// lowered onto a Device built by the existing Params/Build pipeline.
// A Profile is plain data with a stable JSON form: it travels inside
// qt.Spec through the qtd wire format and participates in the RunConfig
// content hash, so every (profile, seed) realization is its own cache
// artifact.
//
// Lowering contract (see also internal/README.md):
//
//   - Apply mutates matrix VALUES only. Geometry, slab assignment and
//     neighbour lists are untouched, so every realization of one base
//     Params shares identical tensor shapes (the property that lets
//     ensemble members exchange warm-start Σ≷ states) and stays
//     block-tridiagonal.
//   - Apply is deterministic: the same (profile, seed) produces a
//     bitwise-identical Device. Disorder draws come from a splittable
//     splitmix64 stream keyed by (seed, channel, site), never by visit
//     order, so the result is independent of map iteration or future
//     loop restructuring.
//   - Apply composes in a fixed order — regions, gates, doping,
//     vacancies, strain — and must be applied exactly once, to a
//     freshly Built device.
type Profile struct {
	// Regions assign heterojunction band offsets to slab ranges.
	Regions []Region `json:"regions,omitempty"`
	// Gates superimpose smooth electrostatic wells on the onsite levels.
	Gates []Gate `json:"gates,omitempty"`
	// Doping randomly shifts the onsite energies of a fraction of atoms.
	Doping *Doping `json:"doping,omitempty"`
	// Vacancies knock a fraction of atoms out of the conduction window.
	Vacancies *Vacancies `json:"vacancies,omitempty"`
	// Strain perturbs the bond couplings (hoppings, force constants and,
	// through the hoppings, the ∇H electron–phonon couplings).
	Strain *Strain `json:"strain,omitempty"`
}

// Region is a heterojunction segment: every atom whose slab lies in
// [From, To] has its onsite levels shifted by Offset (eV) — the
// conduction-band offset between the two materials of the junction.
type Region struct {
	From   int     `json:"from"`   // first slab, inclusive
	To     int     `json:"to"`     // last slab, inclusive
	Offset float64 `json:"offset"` // band offset (eV)
}

// Gate is a smooth electrostatic well: the onsite levels of slab s are
// shifted by −Depth·exp(−((s−Center)/Width)²), the Gaussian image of a
// gate electrode centred at slab coordinate Center.
type Gate struct {
	Center float64 `json:"center"` // slab coordinate of the gate centre
	Width  float64 `json:"width"`  // Gaussian width in slabs (> 0)
	Depth  float64 `json:"depth"`  // well depth (eV); positive attracts electrons
}

// Doping marks each atom a dopant with probability Fraction and shifts
// its onsite levels by Shift (eV) — negative for donors that pull the
// local band down, positive for acceptors.
type Doping struct {
	Fraction float64 `json:"fraction"` // dopant probability per atom, in [0, 1]
	Shift    float64 `json:"shift"`    // onsite shift (eV) of a dopant site
}

// Vacancies marks each atom a vacancy with probability Fraction: its
// onsite levels are shifted by Shift (eV; the default 8 pushes the site
// far out of the transport window) and every bond touching it is scaled
// by BondScale (default 0.1) — a strongly scattering, nearly decoupled
// defect site.
type Vacancies struct {
	Fraction  float64 `json:"fraction"`             // vacancy probability per atom, in [0, 1]
	Shift     float64 `json:"shift,omitempty"`      // onsite expulsion (eV); 0 = default 8
	BondScale float64 `json:"bond_scale,omitempty"` // bond attenuation factor; 0 = default 0.1
}

const (
	defaultVacancyShift     = 8.0
	defaultVacancyBondScale = 0.1
)

func (v *Vacancies) shift() float64 {
	if v.Shift == 0 {
		return defaultVacancyShift
	}
	return v.Shift
}

func (v *Vacancies) bondScale() float64 {
	if v.BondScale == 0 {
		return defaultVacancyBondScale
	}
	return v.BondScale
}

// Strain scales every bond coupling by 1 + Amplitude·u, u uniform in
// (−1, 1) per bond — the coupling fluctuation of a strained (bond
// lengths perturbed) lattice. Electron hoppings and phonon force
// constants draw independently; ∇H follows the hoppings.
type Strain struct {
	Amplitude float64 `json:"amplitude"` // relative coupling fluctuation, in [0, 1)
}

// Validate checks the profile against the device parameters it will be
// lowered onto.
func (pr *Profile) Validate(p Params) error {
	for i, r := range pr.Regions {
		switch {
		case r.From < 0 || r.To >= p.Bnum || r.From > r.To:
			return fmt.Errorf("device: profile region %d: slab range [%d, %d] outside [0, %d]", i, r.From, r.To, p.Bnum-1)
		case !isFinite(r.Offset):
			return fmt.Errorf("device: profile region %d: offset must be finite (got %g)", i, r.Offset)
		}
	}
	for i, g := range pr.Gates {
		switch {
		case g.Width <= 0 || !isFinite(g.Width):
			return fmt.Errorf("device: profile gate %d: width must be positive and finite (got %g)", i, g.Width)
		case !isFinite(g.Center) || !isFinite(g.Depth):
			return fmt.Errorf("device: profile gate %d: center and depth must be finite", i)
		}
	}
	if d := pr.Doping; d != nil {
		switch {
		case d.Fraction < 0 || d.Fraction > 1 || !isFinite(d.Fraction):
			return fmt.Errorf("device: profile doping: fraction must be in [0, 1] (got %g)", d.Fraction)
		case !isFinite(d.Shift):
			return fmt.Errorf("device: profile doping: shift must be finite (got %g)", d.Shift)
		}
	}
	if v := pr.Vacancies; v != nil {
		switch {
		case v.Fraction < 0 || v.Fraction > 1 || !isFinite(v.Fraction):
			return fmt.Errorf("device: profile vacancies: fraction must be in [0, 1] (got %g)", v.Fraction)
		case !isFinite(v.Shift):
			return fmt.Errorf("device: profile vacancies: shift must be finite (got %g)", v.Shift)
		case v.BondScale < 0 || v.BondScale > 1 || !isFinite(v.BondScale):
			return fmt.Errorf("device: profile vacancies: bond_scale must be in [0, 1] (got %g)", v.BondScale)
		}
	}
	if s := pr.Strain; s != nil {
		if s.Amplitude < 0 || s.Amplitude >= 1 || !isFinite(s.Amplitude) {
			return fmt.Errorf("device: profile strain: amplitude must be in [0, 1) (got %g)", s.Amplitude)
		}
	}
	return nil
}

// Disorder channels of the splittable RNG. Each physical mechanism
// draws from its own stream family so adding or removing one never
// shifts the draws of another.
const (
	chanDoping uint64 = 1 + iota
	chanVacancy
	chanStrainHop
	chanStrainSpring
)

// mix64 is the splitmix64 output finalizer — a strong 64-bit mixer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// splitSeed derives an independent stream seed for a (seed, path...)
// key — the splittable-RNG primitive behind per-site disorder draws.
func splitSeed(seed uint64, path ...uint64) uint64 {
	for _, p := range path {
		seed = mix64(seed + 0x9e3779b97f4a7c15*(p+1))
	}
	return seed
}

// siteFloat draws the uniform [0, 1) value of one (channel, site) under
// the realization seed — stable regardless of the order sites are
// visited in.
func siteFloat(seed, channel, site uint64) float64 {
	return newRNG(splitSeed(seed, channel, site)).float()
}

// Apply lowers the profile onto a freshly built device for one disorder
// realization. The same (profile, seed) always produces a
// bitwise-identical device; different seeds redraw only the random
// channels (doping, vacancies, strain) while the deterministic layers
// (regions, gates) stay fixed.
func (pr *Profile) Apply(d *Device, seed uint64) error {
	if err := pr.Validate(d.P); err != nil {
		return err
	}
	pr.applyPotential(d)
	pr.applyDoping(d, seed) // onsite only; ∇H unaffected
	dirty := pr.applyVacancies(d, seed)
	dirty = pr.applyStrain(d, seed) || dirty
	if dirty {
		// Bond couplings changed: re-derive the electron–phonon ∇H
		// blocks from the perturbed hoppings (same keys, new values).
		d.buildGradH()
	}
	return nil
}

// applyPotential lowers the deterministic layers: heterojunction band
// offsets per slab region and gate-induced wells.
func (pr *Profile) applyPotential(d *Device) {
	if len(pr.Regions) == 0 && len(pr.Gates) == 0 {
		return
	}
	p := d.P
	// Per-slab potential, composed once.
	v := make([]float64, p.Bnum)
	for _, r := range pr.Regions {
		for s := r.From; s <= r.To; s++ {
			v[s] += r.Offset
		}
	}
	for _, g := range pr.Gates {
		for s := 0; s < p.Bnum; s++ {
			x := (float64(s) - g.Center) / g.Width
			v[s] -= g.Depth * math.Exp(-x*x)
		}
	}
	for a := 0; a < p.Na; a++ {
		if dv := v[d.SlabOf[a]]; dv != 0 {
			shiftOnsite(d.onsite[a], dv)
		}
	}
}

// applyDoping draws the dopant sites and shifts their onsite levels.
func (pr *Profile) applyDoping(d *Device, seed uint64) {
	dp := pr.Doping
	if dp == nil || dp.Fraction == 0 || dp.Shift == 0 {
		return
	}
	for a := 0; a < d.P.Na; a++ {
		if siteFloat(seed, chanDoping, uint64(a)) < dp.Fraction {
			shiftOnsite(d.onsite[a], dp.Shift)
		}
	}
}

// applyVacancies draws the vacancy sites, expels them energetically and
// attenuates every bond touching them.
func (pr *Profile) applyVacancies(d *Device, seed uint64) bool {
	vc := pr.Vacancies
	if vc == nil || vc.Fraction == 0 {
		return false
	}
	p := d.P
	touched := false
	for a := 0; a < p.Na; a++ {
		if siteFloat(seed, chanVacancy, uint64(a)) >= vc.Fraction {
			continue
		}
		touched = true
		shiftOnsite(d.onsite[a], vc.shift())
		scale := complex(vc.bondScale(), 0)
		for _, b := range d.Neigh[a] {
			if h, ok := d.hop[orderedPair(a, b)]; ok {
				scaleMatrix(h, scale)
			}
		}
	}
	return touched
}

// applyStrain scales each bond's hopping and force-constant block by an
// independent per-bond factor 1 + Amplitude·u, u ∈ (−1, 1).
func (pr *Profile) applyStrain(d *Device, seed uint64) bool {
	st := pr.Strain
	if st == nil || st.Amplitude == 0 {
		return false
	}
	na := uint64(d.P.Na)
	for a := 0; a < d.P.Na; a++ {
		for _, b := range d.Neigh[a] {
			if b < a {
				continue // one draw per undirected bond
			}
			bond := uint64(a)*na + uint64(b)
			if h, ok := d.hop[pair{a, b}]; ok {
				u := 2*siteFloat(seed, chanStrainHop, bond) - 1
				scaleMatrix(h, complex(1+st.Amplitude*u, 0))
			}
			if k, ok := d.spring[pair{a, b}]; ok {
				u := 2*siteFloat(seed, chanStrainSpring, bond) - 1
				scaleMatrix(k, complex(1+st.Amplitude*u, 0))
			}
		}
	}
	return true
}

// shiftOnsite adds v·I to a Hermitian onsite block, preserving its
// Hermiticity exactly.
func shiftOnsite(m *linalg.Matrix, v float64) {
	n := m.Rows
	for o := 0; o < n; o++ {
		m.Data[o*n+o] += complex(v, 0)
	}
}

// scaleMatrix multiplies every element of m by s, in place.
func scaleMatrix(m *linalg.Matrix, s complex128) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}
