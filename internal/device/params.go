// Package device builds synthetic nano-device structures — the stand-in
// for the CP2K DFT inputs of the original OMEN pipeline.
//
// The paper's solver consumes, per material: the kz-dependent Hamiltonian
// H(kz) and overlap S(kz) (size Na·Norb, block-tridiagonal over bnum
// slabs), the qz-dependent dynamical matrix Φ(qz) (size Na·N3D), and the
// derivative couplings ∇H between neighbouring atoms that enter the
// electron–phonon scattering self-energies (Eqs. 2–3). CP2K produces these
// from ab initio runs; here they are generated deterministically with the
// same structure: Hermiticity, block-tridiagonal sparsity over slabs,
// bounded neighbour lists (Nb), exponentially decaying couplings, periodic
// kz/qz phases for the homogeneous z-direction, and an acoustic-sum-rule
// dynamical matrix. All algorithmic behaviour studied in the paper depends
// on these structural properties and the tensor shapes, not on chemistry,
// which is what makes the substitution faithful (see DESIGN.md §2).
package device

import (
	"fmt"
	"math"
)

// Params defines a device structure and its discretization. The fields
// mirror Table 2 of the paper.
type Params struct {
	Na   int // total number of atoms in the simulation slice
	Bnum int // number of block-tridiagonal slabs along transport (x)
	Norb int // orbitals per atom
	NbT  int // target neighbours per atom (Nb)

	Nkz    int // electron momentum points (== Nqz here, as in the paper)
	NE     int // electron energy points
	Nomega int // phonon frequency points (Nω)

	// Energy grid: E_n = Emin + n·DE, n ∈ [0, NE). Phonon frequencies are
	// ω_m = m·DE, m ∈ [1, Nω], so every E ± ω lands exactly on the grid —
	// the alignment that makes the SSE stencil an index shift (Fig. 5).
	Emin float64
	DE   float64

	Mu  float64 // equilibrium chemical potential (eV)
	Vds float64 // drain-source bias (eV); contacts sit at Mu ± Vds/2
	TC  float64 // contact temperature (K)

	Coupling float64 // electron–phonon coupling strength scaling ∇H
	Eta      float64 // GF broadening η (eV)

	Seed uint64 // deterministic structure seed
}

// N3D is the number of crystal vibration degrees of freedom per atom.
const N3D = 3

// Nqz returns the phonon momentum count (equal to Nkz, as in the paper's
// structures where Nkz/Nqz vary together).
func (p Params) Nqz() int { return p.Nkz }

// AtomsPerSlab returns Na/Bnum.
func (p Params) AtomsPerSlab() int { return p.Na / p.Bnum }

// ElBlockSize returns the electron block size (atoms per slab × Norb).
func (p Params) ElBlockSize() int { return p.AtomsPerSlab() * p.Norb }

// PhBlockSize returns the phonon block size (atoms per slab × 3).
func (p Params) PhBlockSize() int { return p.AtomsPerSlab() * N3D }

// Energy returns E_n.
func (p Params) Energy(n int) float64 { return p.Emin + float64(n)*p.DE }

// Omega returns ω_m for m ∈ [1, Nomega].
func (p Params) Omega(m int) float64 { return float64(m) * p.DE }

// Kz returns the kz value of index i on the periodic grid [−π, π).
func (p Params) Kz(i int) float64 { return -math.Pi + 2*math.Pi*float64(i)/float64(p.Nkz) }

// MuL and MuR are the contact chemical potentials under bias.
func (p Params) MuL() float64 { return p.Mu + p.Vds/2 }

// MuR is the drain-side chemical potential.
func (p Params) MuR() float64 { return p.Mu - p.Vds/2 }

// Validate checks internal consistency of the parameters.
func (p Params) Validate() error {
	switch {
	case p.Na <= 0 || p.Bnum <= 0 || p.Norb <= 0:
		return fmt.Errorf("device: Na, Bnum, Norb must be positive (got %d, %d, %d)", p.Na, p.Bnum, p.Norb)
	case p.Na%p.Bnum != 0:
		return fmt.Errorf("device: Na (%d) must be divisible by Bnum (%d)", p.Na, p.Bnum)
	case p.Bnum < 3:
		return fmt.Errorf("device: need at least 3 slabs for contacts + channel, got %d", p.Bnum)
	case p.NbT <= 0:
		return fmt.Errorf("device: NbT must be positive (got %d): a device without neighbours has no transport", p.NbT)
	case p.Nkz <= 0 || p.NE <= 0 || p.Nomega <= 0:
		return fmt.Errorf("device: Nkz, NE, Nomega must be positive")
	case p.Nomega >= p.NE:
		return fmt.Errorf("device: Nomega (%d) must be < NE (%d) so E±ω shifts stay mostly on-grid", p.Nomega, p.NE)
	case p.DE <= 0:
		return fmt.Errorf("device: DE must be positive")
	case !isFinite(p.DE):
		return fmt.Errorf("device: DE must be finite (got %g)", p.DE)
	case !isFinite(p.Emin):
		return fmt.Errorf("device: Emin must be finite (got %g): a NaN/Inf grid origin poisons every energy point", p.Emin)
	case !isFinite(p.Coupling):
		return fmt.Errorf("device: Coupling must be finite (got %g): NaN would propagate silently through ∇H into Σ≷", p.Coupling)
	case p.Eta <= 0:
		return fmt.Errorf("device: Eta must be positive")
	case p.TC <= 0:
		return fmt.Errorf("device: contact temperature must be positive")
	}
	return nil
}

// isFinite reports whether v is neither NaN nor ±Inf.
func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// TestParams returns a small, fast structure for unit and integration
// tests: na atoms in bnum slabs with norb orbitals.
func TestParams(na, bnum, norb int) Params {
	return Params{
		Na: na, Bnum: bnum, Norb: norb, NbT: 6,
		Nkz: 3, NE: 24, Nomega: 4,
		Emin: -1.2, DE: 0.1,
		Mu: 0.0, Vds: 0.3, TC: 300,
		Coupling: 0.08, Eta: 1e-4,
		Seed: 0x5eed,
	}
}

// Small returns the paper's "Small" Si FinFET structure parameters
// (W=2.1 nm, L=35 nm): Na=4,864, Nb=34, NE=706, Nω=70, Norb=12. The
// block count bnum=38 (128 atoms per slab) reproduces the RGF flop counts
// of Table 3. Used by the analytic performance model; far too large to
// solve in-process.
func Small(nkz int) Params {
	return Params{
		Na: 4864, Bnum: 38, Norb: 12, NbT: 34,
		Nkz: nkz, NE: 706, Nomega: 70,
		Emin: -1.5, DE: 0.005,
		Mu: 0, Vds: 0.6, TC: 300,
		Coupling: 0.08, Eta: 1e-4,
		Seed: 1,
	}
}

// Large returns the paper's "Large" structure (W=4.8 nm, L=35 nm):
// Na=10,240, Nb=34, NE=1,220, Nω=70.
// bnum=40 (256 atoms per slab) reproduces the 6.00-Eflop GF phase of
// Table 11.
func Large(nkz int) Params {
	return Params{
		Na: 10240, Bnum: 40, Norb: 12, NbT: 34,
		Nkz: nkz, NE: 1220, Nomega: 70,
		Emin: -1.5, DE: 0.005,
		Mu: 0, Vds: 0.6, TC: 300,
		Coupling: 0.08, Eta: 1e-4,
		Seed: 1,
	}
}

// Boltzmann constant in eV/K.
const KB = 8.617333262e-5

// FermiDirac returns the Fermi-Dirac occupation at energy e (eV) for
// chemical potential mu (eV) and temperature t (K).
func FermiDirac(e, mu, t float64) float64 {
	x := (e - mu) / (KB * t)
	if x > 40 {
		return math.Exp(-x)
	}
	if x < -40 {
		return 1
	}
	return 1 / (1 + math.Exp(x))
}

// BoseEinstein returns the Bose-Einstein occupation at frequency w (eV)
// and temperature t (K).
func BoseEinstein(w, t float64) float64 {
	x := w / (KB * t)
	if x > 40 {
		return math.Exp(-x)
	}
	return 1 / math.Expm1(x)
}
