package comm

import (
	"fmt"
	"sync/atomic"
	"testing"
)

func TestSendRecvOrdering(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 7, []complex128{1})
			c.Send(1, 7, []complex128{2})
			c.Send(1, 9, []complex128{3})
			return nil
		}
		// Tag 9 can be received before tag 7 (independent queues)...
		if got := c.Recv(0, 9); got[0] != 3 {
			return fmt.Errorf("tag 9 payload %v", got)
		}
		// ...while same-tag messages preserve send order.
		if got := c.Recv(0, 7); got[0] != 1 {
			return fmt.Errorf("first tag-7 payload %v", got)
		}
		if got := c.Recv(0, 7); got[0] != 2 {
			return fmt.Errorf("second tag-7 payload %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []complex128{42}
			c.Send(1, 1, buf)
			buf[0] = 0 // mutation after send must not be visible
			return nil
		}
		if got := c.Recv(0, 1); got[0] != 42 {
			return fmt.Errorf("payload was not copied: %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	const n = 5
	w := NewWorld(n)
	var sum atomic.Int64
	err := w.Run(func(c *Comm) error {
		var data []complex128
		if c.Rank() == 2 {
			data = []complex128{10, 20}
		}
		got := c.Bcast(2, data)
		sum.Add(int64(real(got[0]) + real(got[1])))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 30*n {
		t.Fatalf("broadcast sum = %d", sum.Load())
	}
	st := w.Stats()
	if st.Collectives["Bcast"] != 1 {
		t.Fatalf("Bcast count = %d", st.Collectives["Bcast"])
	}
	// Volume: (n−1) ranks × 2 elements × 16 bytes.
	if st.BytesSent != int64(n-1)*2*16 {
		t.Fatalf("Bcast bytes = %d", st.BytesSent)
	}
}

func TestReduceAndAllreduce(t *testing.T) {
	const n = 4
	w := NewWorld(n)
	err := w.Run(func(c *Comm) error {
		data := []complex128{complex(float64(c.Rank()), 1)}
		sum := c.Reduce(0, data)
		if c.Rank() == 0 {
			if real(sum[0]) != 0+1+2+3 || imag(sum[0]) != n {
				return fmt.Errorf("reduce got %v", sum)
			}
		} else if sum != nil {
			return fmt.Errorf("non-root should get nil")
		}
		all := c.Allreduce(data)
		if real(all[0]) != 6 {
			return fmt.Errorf("allreduce got %v", all)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallv(t *testing.T) {
	const n = 4
	w := NewWorld(n)
	err := w.Run(func(c *Comm) error {
		send := make([][]complex128, n)
		for dst := 0; dst < n; dst++ {
			// Variable-size buffers: dst+1 elements encoding (src, dst).
			buf := make([]complex128, dst+1)
			for i := range buf {
				buf[i] = complex(float64(c.Rank()), float64(dst))
			}
			send[dst] = buf
		}
		recv := c.Alltoallv(send)
		for from := 0; from < n; from++ {
			if len(recv[from]) != c.Rank()+1 {
				return fmt.Errorf("rank %d: recv[%d] has %d elements", c.Rank(), from, len(recv[from]))
			}
			for _, v := range recv[from] {
				if real(v) != float64(from) || imag(v) != float64(c.Rank()) {
					return fmt.Errorf("rank %d: wrong payload from %d: %v", c.Rank(), from, v)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Collectives["Alltoallv"] != 1 {
		t.Fatalf("Alltoallv count = %d", st.Collectives["Alltoallv"])
	}
}

func TestGather(t *testing.T) {
	const n = 3
	w := NewWorld(n)
	err := w.Run(func(c *Comm) error {
		out := c.Gather(1, []complex128{complex(float64(c.Rank()), 0)})
		if c.Rank() != 1 {
			if out != nil {
				return fmt.Errorf("non-root gather should be nil")
			}
			return nil
		}
		for r := 0; r < n; r++ {
			if real(out[r][0]) != float64(r) {
				return fmt.Errorf("gather[%d] = %v", r, out[r])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrier(t *testing.T) {
	const n = 6
	w := NewWorld(n)
	var phase atomic.Int64
	err := w.Run(func(c *Comm) error {
		phase.Add(1)
		c.Barrier()
		// After the barrier every rank must observe all n increments.
		if phase.Load() != n {
			return fmt.Errorf("barrier leaked: phase %d", phase.Load())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSelfSendIsFree(t *testing.T) {
	w := NewWorld(1)
	err := w.Run(func(c *Comm) error {
		c.Send(0, 3, []complex128{1, 2, 3})
		got := c.Recv(0, 3)
		if len(got) != 3 {
			return fmt.Errorf("self message lost")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := w.Stats(); st.BytesSent != 0 || st.Sends != 0 {
		t.Fatalf("self traffic should be free, got %+v", st)
	}
}

func TestStatsCounting(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, make([]complex128, 10))
		} else {
			c.Recv(0, 1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.BytesSent != 160 || st.Sends != 1 {
		t.Fatalf("stats = %+v", st)
	}
	w.ResetStats()
	if st := w.Stats(); st.BytesSent != 0 || st.Sends != 0 {
		t.Fatal("ResetStats did not clear")
	}
}

func TestRunPropagatesError(t *testing.T) {
	w := NewWorld(3)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 2 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestAllgather(t *testing.T) {
	const n = 4
	w := NewWorld(n)
	err := w.Run(func(c *Comm) error {
		// Variable-length contributions: rank r sends r+1 copies of r.
		data := make([]complex128, c.Rank()+1)
		for i := range data {
			data[i] = complex(float64(c.Rank()), 0)
		}
		got := c.Allgather(data)
		for r := 0; r < n; r++ {
			if len(got[r]) != r+1 {
				return fmt.Errorf("rank %d: got[%d] has %d elements", c.Rank(), r, len(got[r]))
			}
			for _, v := range got[r] {
				if real(v) != float64(r) {
					return fmt.Errorf("rank %d: got[%d] = %v", c.Rank(), r, v)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Collectives["Allgather"] != 1 {
		t.Fatalf("Allgather count = %d", st.Collectives["Allgather"])
	}
	// Volume: each rank's len(data) elements travel to the other n−1 ranks.
	want := int64(0)
	for r := 0; r < n; r++ {
		want += int64(r+1) * (n - 1) * 16
	}
	if st.BytesSent != want {
		t.Fatalf("Allgather bytes = %d, want %d", st.BytesSent, want)
	}
}

func TestAlltoallvZeroLengthRows(t *testing.T) {
	const n = 3
	w := NewWorld(n)
	err := w.Run(func(c *Comm) error {
		// Only rank 0 → rank 2 carries payload; every other row is empty
		// (nil or zero-length), the common case for sparse exchanges.
		send := make([][]complex128, n)
		if c.Rank() == 0 {
			send[2] = []complex128{7}
		}
		recv := c.Alltoallv(send)
		for from := 0; from < n; from++ {
			want := 0
			if c.Rank() == 2 && from == 0 {
				want = 1
			}
			if len(recv[from]) != want {
				return fmt.Errorf("rank %d: recv[%d] has %d elements, want %d",
					c.Rank(), from, len(recv[from]), want)
			}
		}
		if c.Rank() == 2 && recv[0][0] != 7 {
			return fmt.Errorf("payload corrupted: %v", recv[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := w.Stats(); st.BytesSent != 16 {
		t.Fatalf("only the one non-empty row should count: %d bytes", st.BytesSent)
	}
}

func TestAlltoallvSelfRow(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		send := make([][]complex128, 2)
		send[c.Rank()] = []complex128{complex(float64(c.Rank()), 0)} // self-send row
		recv := c.Alltoallv(send)
		if len(recv[c.Rank()]) != 1 || real(recv[c.Rank()][0]) != float64(c.Rank()) {
			return fmt.Errorf("self row lost: %v", recv[c.Rank()])
		}
		if len(recv[1-c.Rank()]) != 0 {
			return fmt.Errorf("unexpected cross traffic: %v", recv[1-c.Rank()])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := w.Stats(); st.BytesSent != 0 {
		t.Fatalf("self rows must be free, got %d bytes", st.BytesSent)
	}
}

func TestCollectivesOnSizeOneWorld(t *testing.T) {
	w := NewWorld(1)
	err := w.Run(func(c *Comm) error {
		if sum := c.Reduce(0, []complex128{5}); sum[0] != 5 {
			return fmt.Errorf("size-1 Reduce = %v", sum)
		}
		if all := c.Allreduce([]complex128{3}); all[0] != 3 {
			return fmt.Errorf("size-1 Allreduce = %v", all)
		}
		if got := c.Bcast(0, []complex128{2}); got[0] != 2 {
			return fmt.Errorf("size-1 Bcast = %v", got)
		}
		if got := c.Allgather([]complex128{9}); len(got) != 1 || got[0][0] != 9 {
			return fmt.Errorf("size-1 Allgather = %v", got)
		}
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := w.Stats(); st.BytesSent != 0 {
		t.Fatalf("size-1 collectives must move no bytes, got %d", st.BytesSent)
	}
}

func TestAllreduceMax(t *testing.T) {
	w := NewWorld(4)
	err := w.Run(func(c *Comm) error {
		r := float64(c.Rank())
		// Rank r contributes (r, 3-r): the reduced result must take the
		// real max and imaginary max from different ranks.
		got := c.AllreduceMax([]complex128{complex(r, 3-r), complex(-r, r)})
		if got[0] != complex(3, 3) {
			return fmt.Errorf("rank %d: got[0] = %v, want (3+3i)", c.Rank(), got[0])
		}
		if got[1] != complex(0, 3) {
			return fmt.Errorf("rank %d: got[1] = %v, want (0+3i)", c.Rank(), got[1])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Collectives["AllreduceMax"] != 1 {
		t.Errorf("AllreduceMax counted %d times", st.Collectives["AllreduceMax"])
	}
	if st.CollectiveBytes["AllreduceMax"] != 6*2*16 {
		t.Errorf("AllreduceMax bytes = %d, want %d", st.CollectiveBytes["AllreduceMax"], 6*2*16)
	}
}

func TestAllreduceMaxSizeOne(t *testing.T) {
	w := NewWorld(1)
	if err := w.Run(func(c *Comm) error {
		got := c.AllreduceMax([]complex128{complex(-5, 2)})
		if got[0] != complex(-5, 2) {
			return fmt.Errorf("size-1 world changed the value: %v", got[0])
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if w.Stats().BytesSent != 0 {
		t.Error("size-1 AllreduceMax must be traffic-free")
	}
}
