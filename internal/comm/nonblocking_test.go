package comm

import (
	"fmt"
	"testing"
)

func TestIsendIrecvCopiesPayload(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []complex128{11}
			req := c.Isend(1, 4, buf)
			buf[0] = 0 // post-time copy: mutation must not be visible
			req.Wait()
			return nil
		}
		req := c.Irecv(0, 4)
		if got := req.Wait(); got[0] != 11 {
			return fmt.Errorf("Irecv payload %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := w.Stats(); st.Sends != 1 || st.CollectiveBytes["Isend"] != 16 {
		t.Fatalf("Isend accounting = %+v", st)
	}
}

// TestIAlltoallvSlotsOutOfOrder is the property the task-graph scheduler
// relies on: two outstanding IAlltoallv collectives posted in opposite
// order on different ranks still match by slot, not by call order.
func TestIAlltoallvSlotsOutOfOrder(t *testing.T) {
	const n = 4
	w := NewWorld(n)
	err := w.Run(func(c *Comm) error {
		mk := func(scale float64) [][]complex128 {
			send := make([][]complex128, n)
			for dst := 0; dst < n; dst++ {
				send[dst] = []complex128{complex(scale*float64(c.Rank()), float64(dst))}
			}
			return send
		}
		var reqA, reqB *MatRequest
		if c.Rank()%2 == 0 {
			reqA = c.IAlltoallv(0, mk(1))
			reqB = c.IAlltoallv(1, mk(100))
		} else {
			reqB = c.IAlltoallv(1, mk(100))
			reqA = c.IAlltoallv(0, mk(1))
		}
		recvB, recvA := reqB.Wait(), reqA.Wait()
		for from := 0; from < n; from++ {
			if real(recvA[from][0]) != float64(from) {
				return fmt.Errorf("slot 0 from %d: %v", from, recvA[from])
			}
			if real(recvB[from][0]) != 100*float64(from) {
				return fmt.Errorf("slot 1 from %d: %v", from, recvB[from])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Stats().Collectives["Alltoallv"]; got != 2 {
		t.Fatalf("Alltoallv count = %d, want 2", got)
	}
}

func TestIAllreduceMatchesBlocking(t *testing.T) {
	const n = 4
	w := NewWorld(n)
	err := w.Run(func(c *Comm) error {
		data := []complex128{complex(float64(c.Rank()+1), 0), 1i}
		want := c.Allreduce(data)
		req := c.IAllreduce(0, data)
		data[0] = -999 // post-time copy
		got := req.Wait()
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("IAllreduce[%d] = %v, want %v", i, got[i], want[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Collectives["Allreduce"] != 1 {
		t.Fatalf("Allreduce count = %d", st.Collectives["Allreduce"])
	}
	// Volume: (n−1) contributions to rank 0 plus (n−1) broadcast copies.
	if want := int64(2*(n-1)) * 2 * 16; st.CollectiveBytes["Allreduce"] != want {
		t.Fatalf("Allreduce bytes = %d, want %d", st.CollectiveBytes["Allreduce"], want)
	}
}

// TestConcurrentIAllreduceSlots posts two reductions per rank in opposite
// orders; slot matching must keep them independent.
func TestConcurrentIAllreduceSlots(t *testing.T) {
	const n = 3
	w := NewWorld(n)
	err := w.Run(func(c *Comm) error {
		a := []complex128{1}
		b := []complex128{10}
		var ra, rb *VecRequest
		if c.Rank() == 1 {
			rb = c.IAllreduce(5, b)
			ra = c.IAllreduce(2, a)
		} else {
			ra = c.IAllreduce(2, a)
			rb = c.IAllreduce(5, b)
		}
		if got := ra.Wait(); real(got[0]) != n {
			return fmt.Errorf("slot 2 sum = %v", got)
		}
		if got := rb.Wait(); real(got[0]) != 10*n {
			return fmt.Errorf("slot 5 sum = %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonblockingSizeOneWorld(t *testing.T) {
	w := NewWorld(1)
	err := w.Run(func(c *Comm) error {
		if got := c.IAllreduce(0, []complex128{7}).Wait(); got[0] != 7 {
			return fmt.Errorf("size-1 IAllreduce = %v", got)
		}
		recv := c.IAlltoallv(1, [][]complex128{{3, 4}}).Wait()
		if len(recv) != 1 || len(recv[0]) != 2 || recv[0][0] != 3 {
			return fmt.Errorf("size-1 IAlltoallv = %v", recv)
		}
		req := c.Isend(0, 2, []complex128{5})
		req.Wait()
		if got := c.Irecv(0, 2).Wait(); got[0] != 5 {
			return fmt.Errorf("self Isend/Irecv = %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := w.Stats(); st.BytesSent != 0 {
		t.Fatalf("size-1 nonblocking ops must move no bytes, got %d", st.BytesSent)
	}
}

func TestIAlltoallvZeroAndSelfRows(t *testing.T) {
	const n = 3
	w := NewWorld(n)
	err := w.Run(func(c *Comm) error {
		// Every rank fills only its self row; all cross rows are empty.
		send := make([][]complex128, n)
		send[c.Rank()] = []complex128{complex(float64(c.Rank()), 0)}
		recv := c.IAlltoallv(0, send).Wait()
		for from := 0; from < n; from++ {
			want := 0
			if from == c.Rank() {
				want = 1
			}
			if len(recv[from]) != want {
				return fmt.Errorf("rank %d: recv[%d] has %d elements, want %d",
					c.Rank(), from, len(recv[from]), want)
			}
		}
		if real(recv[c.Rank()][0]) != float64(c.Rank()) {
			return fmt.Errorf("self row corrupted: %v", recv[c.Rank()])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := w.Stats(); st.BytesSent != 0 {
		t.Fatalf("self and zero-length rows must be free, got %d bytes", st.BytesSent)
	}
}

// TestCollectiveByteAttribution checks the per-collective accounting sums
// to the global byte counter with every operation labelled.
func TestCollectiveByteAttribution(t *testing.T) {
	const n = 3
	w := NewWorld(n)
	err := w.Run(func(c *Comm) error {
		c.Bcast(0, []complex128{1, 2})
		c.IAllreduce(0, []complex128{complex(float64(c.Rank()), 0)}).Wait()
		send := make([][]complex128, n)
		for dst := 0; dst < n; dst++ {
			send[dst] = []complex128{5}
		}
		c.IAlltoallv(1, send).Wait()
		if c.Rank() == 0 {
			c.Send(1, 1, []complex128{9})
		} else if c.Rank() == 1 {
			c.Recv(0, 1)
		}
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	var sum int64
	for _, b := range st.CollectiveBytes {
		sum += b
	}
	if sum != st.BytesSent {
		t.Fatalf("attributed bytes %d != total %d (%+v)", sum, st.BytesSent, st.CollectiveBytes)
	}
	checks := map[string]int64{
		"Bcast":     (n - 1) * 2 * 16,
		"Allreduce": 2 * (n - 1) * 16,
		"Alltoallv": n * (n - 1) * 16,
		"Send":      16,
		"Barrier":   0,
	}
	for op, want := range checks {
		if got := st.CollectiveBytes[op]; got != want {
			t.Errorf("%s bytes = %d, want %d", op, got, want)
		}
	}
}
