// Nonblocking primitives: the MPI_I* subset the task-graph runtime
// (internal/sdfg) schedules around. Posting returns a waitable request
// immediately; the payload is copied at post time, so the caller may
// reuse its buffers right away. Each nonblocking collective takes an
// explicit slot: concurrently outstanding collectives on the same
// communicator must use distinct slots, and a slot's posts match across
// ranks by slot — not by call order, which a dynamic scheduler does not
// preserve. Slots may be reused once the previous operation on them has
// completed on all ranks (the per-(source, tag) FIFO mailboxes keep even
// back-to-back reuse ordered).
package comm

import "fmt"

// maxSlot bounds the nonblocking slot space (tags are mapped into a
// reserved negative range below the blocking collective tags).
const maxSlot = 1 << 16

// nbTag maps a (slot, leg) pair into the reserved nonblocking tag space.
func nbTag(slot, leg int) int {
	if slot < 0 || slot >= maxSlot {
		panic(fmt.Sprintf("comm: nonblocking slot %d out of range", slot))
	}
	const nbBase = -64 // below the blocking collective tags
	return nbBase - slot*4 - leg
}

const (
	legAlltoall = iota
	legReduce
	legBcast
)

// SendRequest is the handle of an Isend. The simulated runtime buffers
// unboundedly, so the send completes at post time; Wait exists for
// MPI-shaped call sites.
type SendRequest struct{}

// Wait completes the send (a no-op on this runtime).
func (*SendRequest) Wait() {}

// RecvRequest is the handle of an Irecv.
type RecvRequest struct{ ch chan []complex128 }

// Wait blocks until the message arrives and returns its payload. Call
// exactly once.
func (r *RecvRequest) Wait() []complex128 { return <-r.ch }

// VecRequest is the handle of a vector-valued collective (IAllreduce).
type VecRequest struct{ ch chan []complex128 }

// Wait blocks until the collective completes and returns the reduced
// vector. Call exactly once.
func (r *VecRequest) Wait() []complex128 { return <-r.ch }

// MatRequest is the handle of a per-rank-buffer collective (IAlltoallv).
type MatRequest struct{ ch chan [][]complex128 }

// Wait blocks until every row has arrived; row r is what rank r sent
// here. Call exactly once.
func (r *MatRequest) Wait() [][]complex128 { return <-r.ch }

// Isend posts a send and returns immediately; the payload is copied, so
// the buffer may be reused. Tags share the user (non-negative) space with
// blocking Send/Recv, and either Recv or Irecv can complete it.
func (c *Comm) Isend(to, tag int, data []complex128) *SendRequest {
	c.send(to, tag, data, "Isend")
	return &SendRequest{}
}

// Irecv posts a receive for (from, tag) and returns a waitable request.
func (c *Comm) Irecv(from, tag int) *RecvRequest {
	req := &RecvRequest{ch: make(chan []complex128, 1)}
	go func() { req.ch <- c.Recv(from, tag) }()
	return req
}

// IAlltoallv posts the nonblocking form of Alltoallv on the given slot.
// All sends happen (and are counted) at post time; Wait blocks until
// every rank's buffer for this rank has arrived. Counted under the same
// "Alltoallv" collective name as the blocking form — it is the same
// exchange, only its completion is deferred.
func (c *Comm) IAlltoallv(slot int, send [][]complex128) *MatRequest {
	if len(send) != c.world.size {
		panic("comm: IAlltoallv needs one buffer per rank")
	}
	if c.rank == 0 {
		c.world.countCollective("Alltoallv")
	}
	tag := nbTag(slot, legAlltoall)
	for r := 0; r < c.world.size; r++ {
		c.send(r, tag, send[r], "Alltoallv")
	}
	req := &MatRequest{ch: make(chan [][]complex128, 1)}
	go func() {
		recv := make([][]complex128, c.world.size)
		for r := 0; r < c.world.size; r++ {
			recv[r] = c.Recv(r, tag)
		}
		req.ch <- recv
	}()
	return req
}

// IAllreduce posts a nonblocking elementwise sum over all ranks on the
// given slot. The reduction sums rank contributions in ascending rank
// order at rank 0 — the same association order as the blocking
// Allreduce, so both forms are bitwise interchangeable. Counted as one
// "Allreduce" collective (the blocking form, composed of Reduce+Bcast,
// counts as those two instead).
func (c *Comm) IAllreduce(slot int, data []complex128) *VecRequest {
	if c.rank == 0 {
		c.world.countCollective("Allreduce")
	}
	cp := append([]complex128(nil), data...)
	tagR, tagB := nbTag(slot, legReduce), nbTag(slot, legBcast)
	req := &VecRequest{ch: make(chan []complex128, 1)}
	if c.rank != 0 {
		c.send(0, tagR, cp, "Allreduce")
		go func() { req.ch <- c.Recv(0, tagB) }()
		return req
	}
	go func() {
		sum := cp
		for r := 1; r < c.world.size; r++ {
			part := c.Recv(r, tagR)
			if len(part) != len(sum) {
				panic("comm: IAllreduce length mismatch")
			}
			for i, v := range part {
				sum[i] += v
			}
		}
		for r := 1; r < c.world.size; r++ {
			c.send(r, tagB, sum, "Allreduce")
		}
		req.ch <- sum
	}()
	return req
}
