// Package comm is an in-process message-passing runtime standing in for
// MPI: ranks are goroutines, links are mailboxes, and every primitive
// counts the bytes and invocations it generates. The decomposition
// experiments of the paper (§5.2, Tables 4–5) run unchanged on this
// runtime, with the communication volume measured instead of modelled.
//
// The primitives mirror the MPI subset the paper uses: point-to-point
// Send/Recv, Bcast, Reduce (sum of complex vectors), and Alltoallv — the
// single collective the communication-avoiding DaCe variant relies on.
// The nonblocking forms (Isend/Irecv/IAlltoallv/IAllreduce, see
// nonblocking.go) return waitable requests so the task-graph runtime can
// overlap collectives with compute.
package comm

import (
	"fmt"
	"sync"

	"repro/internal/linalg"
)

// message is one in-flight transfer. Payloads are complex128 vectors, the
// currency of the quantum transport solver (16 bytes per element).
type message struct {
	tag     int
	payload []complex128
}

// World is a set of ranks and their mailboxes plus global counters.
type World struct {
	size  int
	boxes []*mailbox // indexed by destination rank

	mu          sync.Mutex
	bytesSent   int64
	sends       int64
	collectives map[string]int64
	collBytes   map[string]int64
}

// mailbox is an unbounded ordered queue of messages per destination,
// keyed by (source, tag) on receive.
type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	q    map[key][]message
}

type key struct {
	src, tag int
}

func newMailbox() *mailbox {
	m := &mailbox{q: make(map[key][]message)}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// NewWorld creates a world with the given number of ranks.
func NewWorld(size int) *World {
	if size <= 0 {
		panic("comm: world size must be positive")
	}
	w := &World{size: size, collectives: make(map[string]int64), collBytes: make(map[string]int64)}
	w.boxes = make([]*mailbox, size)
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Run executes fn concurrently on every rank and waits for completion.
// The first non-nil error is returned.
func (w *World) Run(fn func(c *Comm) error) error {
	errs := make([]error, w.size)
	var wg sync.WaitGroup
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			// Each simulated rank counts against the kernel worker
			// budget: a large GEMM inside one rank must not fan out
			// across CPUs the other ranks are using.
			release := linalg.ReserveWorker()
			defer release()
			errs[rank] = fn(&Comm{world: w, rank: rank})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return fmt.Errorf("comm: rank %d: %w", r, err)
		}
	}
	return nil
}

// Stats reports the accumulated communication counters.
type Stats struct {
	BytesSent   int64
	Sends       int64            // point-to-point messages
	Collectives map[string]int64 // invocation counts per collective
	// CollectiveBytes attributes the off-rank traffic to the operation
	// that generated it: one entry per collective ("Bcast", "Alltoallv",
	// "Allreduce", ...) plus "Send" for user point-to-point messages. The
	// values sum to BytesSent.
	CollectiveBytes map[string]int64
}

// Stats returns a snapshot of the world's counters.
func (w *World) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	cp := make(map[string]int64, len(w.collectives))
	for k, v := range w.collectives {
		cp[k] = v
	}
	cb := make(map[string]int64, len(w.collBytes))
	for k, v := range w.collBytes {
		cb[k] = v
	}
	return Stats{BytesSent: w.bytesSent, Sends: w.sends, Collectives: cp, CollectiveBytes: cb}
}

// ResetStats clears the counters.
func (w *World) ResetStats() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.bytesSent, w.sends = 0, 0
	w.collectives = make(map[string]int64)
	w.collBytes = make(map[string]int64)
}

func (w *World) countBytes(n int64, op string, p2p bool) {
	w.mu.Lock()
	w.bytesSent += n
	w.collBytes[op] += n
	if p2p {
		w.sends++
	}
	w.mu.Unlock()
}

func (w *World) countCollective(name string) {
	w.mu.Lock()
	w.collectives[name]++
	w.mu.Unlock()
}

// Comm is one rank's handle into the world.
type Comm struct {
	world *World
	rank  int
}

// Rank returns this rank's index.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// Send delivers data to rank `to` under `tag`. The payload is copied, so
// the caller may reuse its buffer. Self-sends are legal (and free).
func (c *Comm) Send(to, tag int, data []complex128) {
	c.send(to, tag, data, "Send")
}

// send is the transfer primitive behind Send and every collective: op
// names the operation for the per-collective byte accounting.
// Collective-internal transfers (negative tags) count bytes but not the
// point-to-point message counter.
func (c *Comm) send(to, tag int, data []complex128, op string) {
	if to < 0 || to >= c.world.size {
		panic(fmt.Sprintf("comm: %s to invalid rank %d", op, to))
	}
	cp := append([]complex128(nil), data...)
	if to != c.rank {
		c.world.countBytes(int64(len(data))*16, op, tag >= 0)
	}
	box := c.world.boxes[to]
	box.mu.Lock()
	k := key{c.rank, tag}
	box.q[k] = append(box.q[k], message{tag: tag, payload: cp})
	box.cond.Broadcast()
	box.mu.Unlock()
}

// Recv blocks until a message from `from` with `tag` arrives and returns
// its payload. Messages from the same (source, tag) arrive in send order.
func (c *Comm) Recv(from, tag int) []complex128 {
	box := c.world.boxes[c.rank]
	box.mu.Lock()
	defer box.mu.Unlock()
	k := key{from, tag}
	for len(box.q[k]) == 0 {
		box.cond.Wait()
	}
	msg := box.q[k][0]
	box.q[k] = box.q[k][1:]
	if len(box.q[k]) == 0 {
		delete(box.q, k)
	}
	return msg.payload
}

// collective tags live in a reserved negative space to avoid clashing
// with user point-to-point tags.
const (
	tagBcast = -1 - iota
	tagReduce
	tagAlltoall
	tagBarrier
	tagGather
	tagAllgather
	tagMaxUp
	tagMaxDown
)

// Bcast sends root's data to every rank and returns the received copy
// (root returns its own data). Counted as one collective; volume is
// (P−1)·len(data)·16 bytes, the flat-tree cost the paper's model uses.
func (c *Comm) Bcast(root int, data []complex128) []complex128 {
	if c.rank == root {
		c.world.countCollective("Bcast")
		for r := 0; r < c.world.size; r++ {
			if r != root {
				c.send(r, tagBcast, data, "Bcast")
			}
		}
		return data
	}
	return c.Recv(root, tagBcast)
}

// Reduce sums every rank's contribution elementwise at root. Non-root
// ranks return nil.
func (c *Comm) Reduce(root int, data []complex128) []complex128 {
	if c.rank != root {
		c.send(root, tagReduce, data, "Reduce")
		return nil
	}
	c.world.countCollective("Reduce")
	sum := append([]complex128(nil), data...)
	for r := 0; r < c.world.size; r++ {
		if r == root {
			continue
		}
		part := c.Recv(r, tagReduce)
		if len(part) != len(sum) {
			panic("comm: Reduce length mismatch")
		}
		for i, v := range part {
			sum[i] += v
		}
	}
	return sum
}

// Allreduce is Reduce-to-0 followed by Bcast.
func (c *Comm) Allreduce(data []complex128) []complex128 {
	sum := c.Reduce(0, data)
	if c.rank == 0 {
		return c.Bcast(0, sum)
	}
	return c.Bcast(0, nil)
}

// AllreduceMax combines every rank's contribution with the elementwise
// maximum of the real and imaginary parts independently (MPI_MAX on a
// vector of value pairs) and returns the identical result on all ranks.
// The distributed solver uses it for the mixed-precision error telemetry:
// the global deviation is the worst rank's, not the sum.
func (c *Comm) AllreduceMax(data []complex128) []complex128 {
	if c.rank != 0 {
		c.send(0, tagMaxUp, data, "AllreduceMax")
		return c.Recv(0, tagMaxDown)
	}
	c.world.countCollective("AllreduceMax")
	mx := append([]complex128(nil), data...)
	for r := 1; r < c.world.size; r++ {
		part := c.Recv(r, tagMaxUp)
		if len(part) != len(mx) {
			panic("comm: AllreduceMax length mismatch")
		}
		for i, v := range part {
			re, im := real(mx[i]), imag(mx[i])
			if real(v) > re {
				re = real(v)
			}
			if imag(v) > im {
				im = imag(v)
			}
			mx[i] = complex(re, im)
		}
	}
	for r := 1; r < c.world.size; r++ {
		c.send(r, tagMaxDown, mx, "AllreduceMax")
	}
	return mx
}

// Alltoallv exchanges per-destination buffers: send[r] goes to rank r, and
// the returned recv[r] is what rank r sent here. This is the collective
// the DaCe variant's four exchanges use (§6.1.2); the measured volume is
// the sum of all off-diagonal buffer sizes.
func (c *Comm) Alltoallv(send [][]complex128) [][]complex128 {
	if len(send) != c.world.size {
		panic("comm: Alltoallv needs one buffer per rank")
	}
	if c.rank == 0 {
		c.world.countCollective("Alltoallv")
	}
	for r := 0; r < c.world.size; r++ {
		c.send(r, tagAlltoall, send[r], "Alltoallv")
	}
	recv := make([][]complex128, c.world.size)
	for r := 0; r < c.world.size; r++ {
		recv[r] = c.Recv(r, tagAlltoall)
	}
	return recv
}

// Gather collects every rank's buffer at root (index = source rank).
// Non-root ranks return nil.
func (c *Comm) Gather(root int, data []complex128) [][]complex128 {
	if c.rank != root {
		c.send(root, tagGather, data, "Gather")
		return nil
	}
	c.world.countCollective("Gather")
	out := make([][]complex128, c.world.size)
	for r := 0; r < c.world.size; r++ {
		if r == root {
			out[r] = append([]complex128(nil), data...)
			continue
		}
		out[r] = c.Recv(r, tagGather)
	}
	return out
}

// Allgather collects every rank's buffer on every rank: the returned
// slice holds rank r's contribution at index r, identical on all ranks.
// Buffers may have different lengths (allgatherv semantics). Counted as
// one collective; the flat-exchange volume is P·(P−1)·len·16 bytes for
// equal-length buffers — the cost the distributed solver's per-rank
// diagnostics pay.
func (c *Comm) Allgather(data []complex128) [][]complex128 {
	if c.rank == 0 {
		c.world.countCollective("Allgather")
	}
	for r := 0; r < c.world.size; r++ {
		c.send(r, tagAllgather, data, "Allgather")
	}
	out := make([][]complex128, c.world.size)
	for r := 0; r < c.world.size; r++ {
		out[r] = c.Recv(r, tagAllgather)
	}
	return out
}

// Barrier synchronizes all ranks (central-coordinator implementation).
func (c *Comm) Barrier() {
	if c.rank == 0 {
		c.world.countCollective("Barrier")
		for r := 1; r < c.world.size; r++ {
			c.Recv(r, tagBarrier)
		}
		for r := 1; r < c.world.size; r++ {
			c.send(r, tagBarrier, nil, "Barrier")
		}
		return
	}
	c.send(0, tagBarrier, nil, "Barrier")
	c.Recv(0, tagBarrier)
}
