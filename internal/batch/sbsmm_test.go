package batch

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
)

func randomBatch(rng *rand.Rand, n, count int, scale float64) []complex128 {
	b := make([]complex128, n*n*count)
	for i := range b {
		b[i] = complex(scale*rng.NormFloat64(), scale*rng.NormFloat64())
	}
	return b
}

// referenceBatch computes the batched product with linalg as the oracle.
func referenceBatch(a, b []complex128, n, count int) []complex128 {
	c := make([]complex128, n*n*count)
	stride := n * n
	for t := 0; t < count; t++ {
		am := linalg.FromSlice(n, n, a[t*stride:(t+1)*stride])
		bm := linalg.FromSlice(n, n, b[t*stride:(t+1)*stride])
		cm := linalg.Mul(am, bm)
		copy(c[t*stride:(t+1)*stride], cm.Data)
	}
	return c
}

func maxDiff(a, b []complex128) float64 {
	var mx float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > mx {
			mx = d
		}
	}
	return mx
}

func TestSBSMMMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ n, count int }{{1, 1}, {3, 7}, {12, 50}, {16, 16}, {5, 200}} {
		a := randomBatch(rng, tc.n, tc.count, 1)
		b := randomBatch(rng, tc.n, tc.count, 1)
		c := make([]complex128, len(a))
		SBSMM(c, a, b, tc.n, tc.count)
		want := referenceBatch(a, b, tc.n, tc.count)
		if d := maxDiff(c, want); d > 1e-12 {
			t.Fatalf("n=%d count=%d: diff %g", tc.n, tc.count, d)
		}
	}
}

func TestSBSMMAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n, count := 4, 6
	a := randomBatch(rng, n, count, 1)
	b := randomBatch(rng, n, count, 1)
	c := make([]complex128, n*n*count)
	SBSMM(c, a, b, n, count)
	SBSMM(c, a, b, n, count) // accumulate a second time
	want := referenceBatch(a, b, n, count)
	for i := range want {
		want[i] *= 2
	}
	if d := maxDiff(c, want); d > 1e-12 {
		t.Fatalf("accumulation broken: %g", d)
	}
}

func TestSBSMMSeqEqualsParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, count := 12, 128
	a := randomBatch(rng, n, count, 1)
	b := randomBatch(rng, n, count, 1)
	c1 := make([]complex128, len(a))
	c2 := make([]complex128, len(a))
	SBSMM(c1, a, b, n, count)
	SBSMMSeq(c2, a, b, n, count)
	if d := maxDiff(c1, c2); d != 0 {
		t.Fatalf("parallel and sequential differ by %g", d)
	}
}

func TestSBSMMPaddedMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 5, 12, 16} {
		count := 40
		a := randomBatch(rng, n, count, 1)
		b := randomBatch(rng, n, count, 1)
		c1 := make([]complex128, len(a))
		c2 := make([]complex128, len(a))
		SBSMM(c1, a, b, n, count)
		SBSMMPadded(c2, a, b, n, count)
		if d := maxDiff(c1, c2); d > 1e-12 {
			t.Fatalf("n=%d: padded result differs by %g", n, d)
		}
	}
}

func TestSBSMMPaddedRejectsOversize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n > PadSize")
		}
	}()
	n := PadSize + 1
	buf := make([]complex128, n*n)
	SBSMMPadded(buf, buf, buf, n, 1)
}

func TestFlopAccounting(t *testing.T) {
	if UsefulFlops(12, 10) != 8*12*12*12*10 {
		t.Fatal("UsefulFlops wrong")
	}
	if PaddedFlops(10) != 8*16*16*16*10 {
		t.Fatal("PaddedFlops wrong")
	}
	// The paper's Table 9 useful-ops ratio for Norb=12: (12/16)³ ≈ 42%
	// of the padded kernel's arithmetic... but cuBLAS pads more
	// aggressively; our model captures the direct 16-padding only.
	ratio := float64(UsefulFlops(12, 1)) / float64(PaddedFlops(1))
	if math.Abs(ratio-0.421875) > 1e-12 {
		t.Fatalf("useful ratio = %g", ratio)
	}
}

func TestSBSMMHalfNormalizedAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n, count := 12, 32
	// Small-magnitude inputs, as the SSE Green's functions are: without
	// normalization they would be crushed by fp16.
	a := randomBatch(rng, n, count, 2e-6)
	b := randomBatch(rng, n, count, 2e-6)
	want := referenceBatch(a, b, n, count)

	c := make([]complex128, len(a))
	SBSMMHalf(c, EncodeHalf(a, n, count), EncodeHalf(b, n, count))

	// Relative error of the normalized fp16 path should be ~2^-10.
	var num, den float64
	for i := range want {
		num += cmplx.Abs(c[i] - want[i])
		den += cmplx.Abs(want[i])
	}
	rel := num / den
	if rel > 5e-3 {
		t.Fatalf("normalized fp16 relative error too high: %g", rel)
	}

	// Without normalization the same inputs lose everything.
	c2 := make([]complex128, len(a))
	SBSMMHalf(c2, EncodeHalfUnnormalized(a, n, count), EncodeHalfUnnormalized(b, n, count))
	var num2 float64
	for i := range want {
		num2 += cmplx.Abs(c2[i] - want[i])
	}
	if num2/den < 10*rel {
		t.Fatalf("expected unnormalized path to be much worse (norm %g vs %g)", num2/den, rel)
	}
}

// TestSBSMMHalfErrorBoundVsSeq: the analytic forward-error bound of the
// normalized fp16 path against the exact fp64 batch. Each decoded
// operand entry carries at most ε₁₆ = 2^-11 relative error against the
// batch magnitude (power-of-two normalization is exact, accumulation is
// fp64), so every output entry of an n×n product obeys
//
//	|ĉ − c| ≤ 4·n·ε₁₆·maxA·maxB   (4: two operands × complex re/im pair)
//
// across random batches of every size the SSE uses, and magnitudes from
// deep-subnormal to large.
func TestSBSMMHalfErrorBoundVsSeq(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	eps := math.Ldexp(1, -11)
	for _, tc := range []struct {
		n, count int
		scale    float64
	}{
		{2, 64, 1}, {5, 40, 1e-9}, {12, 32, 1e3}, {16, 16, 1e-6}, {25, 8, 4e-14},
	} {
		a := randomBatch(rng, tc.n, tc.count, tc.scale)
		b := randomBatch(rng, tc.n, tc.count, tc.scale)
		want := make([]complex128, len(a))
		SBSMMSeq(want, a, b, tc.n, tc.count)

		got := make([]complex128, len(a))
		SBSMMHalf(got, EncodeHalf(a, tc.n, tc.count), EncodeHalf(b, tc.n, tc.count))

		maxA, maxB := maxAbsEntry(a), maxAbsEntry(b)
		bound := 4 * float64(tc.n) * eps * maxA * maxB
		var worst float64
		for i := range want {
			if d := cmplx.Abs(got[i] - want[i]); d > worst {
				worst = d
			}
		}
		if worst > bound {
			t.Errorf("n=%d count=%d scale=%g: error %g exceeds bound %g",
				tc.n, tc.count, tc.scale, worst, bound)
		}
		// The bound must also be doing work: the observed error should be
		// within a few orders of it, or the test asserts nothing.
		if worst < bound*1e-6 {
			t.Errorf("n=%d scale=%g: error %g suspiciously far below bound %g",
				tc.n, tc.scale, worst, bound)
		}
	}
}

func maxAbsEntry(vs []complex128) float64 {
	var mx float64
	for _, v := range vs {
		if a := math.Max(math.Abs(real(v)), math.Abs(imag(v))); a > mx {
			mx = a
		}
	}
	return mx
}

func TestSBSMMHalfMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := EncodeHalf(randomBatch(rng, 2, 3, 1), 2, 3)
	b := EncodeHalf(randomBatch(rng, 3, 3, 1), 3, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on operand mismatch")
		}
	}()
	SBSMMHalf(make([]complex128, 2*2*3), a, b)
}

func TestSBSMMIdentityProperty(t *testing.T) {
	// Multiplying a batch by batched identity matrices returns the batch.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		count := 1 + rng.Intn(20)
		a := randomBatch(rng, n, count, 1)
		id := make([]complex128, n*n*count)
		for t := 0; t < count; t++ {
			for i := 0; i < n; i++ {
				id[t*n*n+i*n+i] = 1
			}
		}
		c := make([]complex128, len(a))
		SBSMM(c, a, id, n, count)
		return maxDiff(c, a) < 1e-13
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLengthValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on short buffer")
		}
	}()
	SBSMM(make([]complex128, 3), make([]complex128, 4), make([]complex128, 4), 2, 1)
}

func TestSBSMMFixedBMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n, count := 5, 17
	a := randomBatch(rng, n, count, 1)
	b := randomBatch(rng, n, 1, 1)
	c := make([]complex128, n*n*count)
	SBSMMFixedB(c, a, b, n, count)
	// Reference: replicate B across the batch and use SBSMM.
	bRep := make([]complex128, n*n*count)
	for i := 0; i < count; i++ {
		copy(bRep[i*n*n:(i+1)*n*n], b)
	}
	want := make([]complex128, n*n*count)
	SBSMM(want, a, bRep, n, count)
	if d := maxDiff(c, want); d != 0 {
		t.Fatalf("SBSMMFixedB differs by %g", d)
	}
}

func TestSBSMMFixedBValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad B size")
		}
	}()
	SBSMMFixedB(make([]complex128, 4), make([]complex128, 4), make([]complex128, 1), 2, 1)
}
