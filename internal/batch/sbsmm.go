// Package batch implements SBSMM — the strided-batched small-scale matrix
// multiplication kernel the paper derives from the SSE dataflow (§5.3,
// Fig. 6 step ❸ and Table 9).
//
// The SSE self-energies accumulate products of Norb×Norb matrices (Norb is
// 10–25). Vendor batched-GEMM libraries pad such tiny operands to tile
// sizes tuned for large problems, so only ~6% of the executed flops are
// useful. SBSMM multiplies the exact sizes with a register-blocked inner
// kernel; a "vendor-style" padded variant is provided as the baseline, and
// a half-precision variant models the Tensor-Core path (fp16 inputs with
// normalization, fp64 accumulation).
package batch

import (
	"runtime"
	"sync"

	"repro/internal/half"
	"repro/internal/linalg"
)

// PadSize is the tile edge the padded baseline rounds matrix dimensions up
// to, mirroring the 16×16 padding the paper observes in cuBLAS and requires
// for Tensor Cores.
const PadSize = 16

// SBSMM computes C[t] += A[t]·B[t] for t in [0, count): a strided batch of
// n×n complex multiplications. The three buffers hold count matrices of
// n*n elements each, contiguously ("constant stride" layout from Fig. 6).
// The batch is split across GOMAXPROCS goroutines.
func SBSMM(c, a, b []complex128, n, count int) {
	checkLen("SBSMM", c, a, b, n, count)
	parallelOver(count, func(lo, hi int) {
		stride := n * n
		for t := lo; t < hi; t++ {
			mulAddSmall(c[t*stride:(t+1)*stride], a[t*stride:(t+1)*stride], b[t*stride:(t+1)*stride], n)
		}
	})
}

// SBSMMSeq is the single-goroutine version of SBSMM, used when the caller
// already parallelizes at an outer level (the SSE kernel parallelizes over
// energy-momentum pairs).
func SBSMMSeq(c, a, b []complex128, n, count int) {
	checkLen("SBSMMSeq", c, a, b, n, count)
	stride := n * n
	for t := 0; t < count; t++ {
		mulAddSmall(c[t*stride:(t+1)*stride], a[t*stride:(t+1)*stride], b[t*stride:(t+1)*stride], n)
	}
}

// mulAddSmall computes C += A·B for n×n row-major matrices, ikj order.
func mulAddSmall(c, a, b []complex128, n int) {
	for i := 0; i < n; i++ {
		crow := c[i*n : (i+1)*n : (i+1)*n]
		arow := a[i*n : (i+1)*n : (i+1)*n]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b[k*n : (k+1)*n : (k+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// SBSMMPadded is the vendor-library baseline: each n×n operand is copied
// into a PadSize×PadSize zero-padded tile and the padded product is
// computed in full, exactly as a batched GEMM tuned for large tiles would.
// The useful result is then extracted. Useful flops are 8n³ per batch
// element while executed flops are 8·PadSize³ — the 6% useful-ops ratio
// reported in Table 9 for n=12.
func SBSMMPadded(c, a, b []complex128, n, count int) {
	checkLen("SBSMMPadded", c, a, b, n, count)
	if n > PadSize {
		panic("batch: SBSMMPadded requires n <= PadSize")
	}
	parallelOver(count, func(lo, hi int) {
		const p = PadSize
		var pa, pb, pc [p * p]complex128
		stride := n * n
		for t := lo; t < hi; t++ {
			at := a[t*stride : (t+1)*stride]
			bt := b[t*stride : (t+1)*stride]
			for i := range pc {
				pa[i], pb[i], pc[i] = 0, 0, 0
			}
			for i := 0; i < n; i++ {
				copy(pa[i*p:i*p+n], at[i*n:(i+1)*n])
				copy(pb[i*p:i*p+n], bt[i*n:(i+1)*n])
			}
			// Full padded product — the wasted work is the point.
			for i := 0; i < p; i++ {
				crow := pc[i*p : (i+1)*p]
				arow := pa[i*p : (i+1)*p]
				for k, av := range arow {
					brow := pb[k*p : (k+1)*p]
					for j, bv := range brow {
						crow[j] += av * bv
					}
				}
			}
			ct := c[t*stride : (t+1)*stride]
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					ct[i*n+j] += pc[i*p+j]
				}
			}
		}
	})
}

// UsefulFlops returns the algorithmically necessary flops of a batch.
func UsefulFlops(n, count int) int64 { return 8 * int64(n) * int64(n) * int64(n) * int64(count) }

// PaddedFlops returns the flops the padded baseline actually executes.
func PaddedFlops(count int) int64 {
	return 8 * int64(PadSize) * int64(PadSize) * int64(PadSize) * int64(count)
}

// HalfBatch is a batch of matrices held in normalized split-complex fp16,
// the Tensor-Core input format from §5.4.
type HalfBatch struct {
	N, Count int
	buf      *half.SplitComplex
	scale    float64 // values were multiplied by scale before quantization
}

// EncodeHalf quantizes a strided batch into fp16 with a dynamic
// normalization factor derived from the batch magnitude ("we observe that
// the dynamic range of the inputs ... and compute factors based on their
// magnitudes").
func EncodeHalf(a []complex128, n, count int) *HalfBatch {
	if len(a) != n*n*count {
		panic("batch: EncodeHalf length mismatch")
	}
	scale := half.ScaleFor(half.MaxAbsComplex(a))
	buf := half.NewSplitComplex(len(a))
	buf.EncodeScaled(a, scale)
	return &HalfBatch{N: n, Count: count, buf: buf, scale: scale}
}

// EncodeHalfUnnormalized quantizes without scaling — the ablation the paper
// uses in Fig. 7 to show that normalization is what preserves convergence.
func EncodeHalfUnnormalized(a []complex128, n, count int) *HalfBatch {
	if len(a) != n*n*count {
		panic("batch: EncodeHalfUnnormalized length mismatch")
	}
	buf := half.NewSplitComplex(len(a))
	buf.EncodeScaled(a, 1)
	return &HalfBatch{N: n, Count: count, buf: buf, scale: 1}
}

// SBSMMHalf computes C[t] += A[t]·B[t] where the inputs are fp16-quantized
// batches. Products of the decoded fp16 values are accumulated in float64
// ("minimize the difference over accumulation, done in double-precision")
// and the combined normalization is inverted algebraically on the way out.
func SBSMMHalf(c []complex128, a, b *HalfBatch) {
	if a.N != b.N || a.Count != b.Count {
		panic("batch: SBSMMHalf operand mismatch")
	}
	n, count := a.N, a.Count
	if len(c) != n*n*count {
		panic("batch: SBSMMHalf output length mismatch")
	}
	inv := 1 / (a.scale * b.scale)
	parallelOver(count, func(lo, hi int) {
		stride := n * n
		are, aim := a.buf.Re, a.buf.Im
		bre, bim := b.buf.Re, b.buf.Im
		for t := lo; t < hi; t++ {
			base := t * stride
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					var sre, sim float64
					for k := 0; k < n; k++ {
						ar := are[base+i*n+k].Float64()
						ai := aim[base+i*n+k].Float64()
						br := bre[base+k*n+j].Float64()
						bi := bim[base+k*n+j].Float64()
						sre += ar*br - ai*bi
						sim += ar*bi + ai*br
					}
					c[base+i*n+j] += complex(sre*inv, sim*inv)
				}
			}
		}
	})
}

func checkLen(fn string, c, a, b []complex128, n, count int) {
	want := n * n * count
	if len(a) != want || len(b) != want || len(c) != want {
		panic("batch: " + fn + " buffer length mismatch")
	}
}

func parallelOver(count int, f func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if count < 4*workers {
		f(0, count)
		return
	}
	var wg sync.WaitGroup
	chunk := (count + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > count {
			hi = count
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			// Reserve this worker in the kernel budget so nested GEMMs
			// don't fan out on top of the batch split.
			release := linalg.ReserveWorker()
			defer release()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// SBSMMFixedB computes C[t] += A[t]·B for t in [0, count) where B is a
// single fixed n×n matrix shared by the whole batch. This is the SSE
// stage-❸ shape: the energy-batched transients multiply the same ∇jH
// coupling block. Sequential; callers parallelize at the atom level.
func SBSMMFixedB(c, a []complex128, b []complex128, n, count int) {
	want := n * n * count
	if len(a) != want || len(c) != want || len(b) != n*n {
		panic("batch: SBSMMFixedB buffer length mismatch")
	}
	stride := n * n
	for t := 0; t < count; t++ {
		mulAddSmall(c[t*stride:(t+1)*stride], a[t*stride:(t+1)*stride], b, n)
	}
}
