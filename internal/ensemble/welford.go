package ensemble

import (
	"math"

	"repro/internal/device"
	"repro/internal/report"
)

// welford is Welford's online mean/variance accumulator: numerically
// stable single-pass moments, the streaming form the service-side
// driver folds members into as they finish. stat() reports the unbiased
// sample variance M2/(N−1).
type welford struct {
	n        int
	mean, m2 float64
	min, max float64
}

func (w *welford) add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

func (w *welford) stat() report.Stat {
	s := report.Stat{N: w.n, Mean: w.mean, Min: w.min, Max: w.max}
	if w.n > 1 {
		s.Variance = w.m2 / float64(w.n-1)
		s.Std = math.Sqrt(s.Variance)
		// 95% normal-approximation confidence half-width on the mean.
		s.CI95 = 1.96 * math.Sqrt(s.Variance/float64(w.n))
	}
	return s
}

// Reduce folds finished members into the report.Ensemble schema, in
// member-index order (deterministic regardless of completion order).
// dev supplies the structural header and the energy axis of the DOS
// spectrum — any realization's device works, since profiles never
// change shapes; the clean base device is fine too. Members with an
// error (or no result) appear as bare rows and contribute to no
// statistic; members without an LDOS (distributed solves) contribute to
// the current but not the DOS.
func Reduce(dev *device.Device, members []Member) *report.Ensemble {
	p := dev.P
	e := &report.Ensemble{
		Device:  report.NewDeviceInfo(dev),
		Members: len(members),
	}
	var cur welford
	dos := make([]welford, p.NE)
	for _, m := range members {
		row := report.MemberRow{Index: m.Index, Seed: m.Seed, WallNs: m.WallNs}
		res := m.Result
		if m.Err != nil || res == nil {
			e.MemberRows = append(e.MemberRows, row)
			continue
		}
		row.Current = res.Current
		row.Iterations = res.Iterations
		row.Converged = res.Converged
		e.MemberRows = append(e.MemberRows, row)
		if res.Converged {
			e.Converged++
		}
		cur.add(res.Current)
		if obs := res.Observables; obs != nil && len(obs.LDOS) > 0 {
			e.DOSMembers++
			for n := 0; n < p.NE; n++ {
				// Device DOS at E_n: the per-slab LDOS summed over slabs.
				sum := 0.0
				for _, slab := range obs.LDOS {
					sum += slab[n]
				}
				dos[n].add(sum)
			}
		}
	}
	e.Current = cur.stat()
	if e.DOSMembers > 0 {
		e.DOS = make([]report.DOSRow, p.NE)
		for n := 0; n < p.NE; n++ {
			e.DOS[n] = report.DOSRow{Energy: p.Energy(n), DOS: dos[n].stat()}
		}
	}
	return e
}
