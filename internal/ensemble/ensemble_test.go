package ensemble

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/device"
	"repro/internal/qt"
)

// studySpec is the fast profiled structure every test runs on.
func studySpec() qt.Spec {
	return qt.Spec{
		Atoms: 12, Slabs: 3, Orbitals: 2, EnergyPoints: 12, PhononModes: 3,
		Profile: &device.Profile{
			Doping: &device.Doping{Fraction: 0.25, Shift: -0.08},
			Strain: &device.Strain{Amplitude: 0.04},
		},
	}
}

func fastOpts() []qt.Option {
	return []qt.Option{qt.WithMaxIterations(5), qt.WithTolerance(1e-3)}
}

// TestWelfordMatchesTwoPass pins the reduction arithmetic: the
// streaming moments must match a naive serial two-pass mean/variance to
// 1e-12 relative.
func TestWelfordMatchesTwoPass(t *testing.T) {
	// A deterministic sample in the conditioning regime of real ensemble
	// currents (O(1) offset, small spread) — where the streaming and the
	// two-pass algorithm must agree to full double precision.
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = 2 + math.Sin(float64(i))*1e-3
	}
	var w welford
	for _, x := range xs {
		w.add(x)
	}
	got := w.stat()

	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	varSum := 0.0
	for _, x := range xs {
		varSum += (x - mean) * (x - mean)
	}
	variance := varSum / float64(len(xs)-1)

	if relErr(got.Mean, mean) > 1e-12 {
		t.Errorf("mean: welford %.17g vs two-pass %.17g", got.Mean, mean)
	}
	if relErr(got.Variance, variance) > 1e-12 {
		t.Errorf("variance: welford %.17g vs two-pass %.17g", got.Variance, variance)
	}
	if got.N != len(xs) {
		t.Errorf("N = %d, want %d", got.N, len(xs))
	}
	wantCI := 1.96 * math.Sqrt(variance/float64(len(xs)))
	if relErr(got.CI95, wantCI) > 1e-12 {
		t.Errorf("CI95 = %g, want %g", got.CI95, wantCI)
	}
	if got.Min >= got.Mean || got.Max <= got.Mean {
		t.Errorf("extrema do not bracket the mean: %+v", got)
	}

	var one welford
	one.add(3.5)
	s := one.stat()
	if s.N != 1 || s.Mean != 3.5 || s.Variance != 0 || s.CI95 != 0 {
		t.Errorf("single-sample stat wrong: %+v", s)
	}
}

func relErr(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

// TestStudyEndToEnd runs a small study and checks the reduced report
// against a serial recomputation of the member currents.
func TestStudyEndToEnd(t *testing.T) {
	var iterMembers sync.Map
	st := &Study{
		Spec: studySpec(), Members: 4, BaseSeed: 100, Options: fastOpts(),
		OnIter: func(member int, _ qt.IterStats) { iterMembers.Store(member, true) },
	}
	res, err := st.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if rep.Members != 4 || len(rep.MemberRows) != 4 || rep.Current.N != 4 {
		t.Fatalf("member accounting wrong: members=%d rows=%d N=%d", rep.Members, len(rep.MemberRows), rep.Current.N)
	}
	for i, m := range res.Members {
		if m.Err != nil {
			t.Fatalf("member %d failed: %v", i, m.Err)
		}
		if m.Seed != 100+uint64(i) {
			t.Fatalf("member %d seed = %d, want %d", i, m.Seed, 100+uint64(i))
		}
		if _, ok := iterMembers.Load(i); !ok {
			t.Errorf("member %d streamed no IterStats", i)
		}
	}

	// Serial recomputation (naive two-pass) of the reported statistics.
	mean := 0.0
	for _, m := range res.Members {
		mean += m.Result.Current
	}
	mean /= float64(len(res.Members))
	varSum := 0.0
	for _, m := range res.Members {
		d := m.Result.Current - mean
		varSum += d * d
	}
	variance := varSum / float64(len(res.Members)-1)
	if relErr(rep.Current.Mean, mean) > 1e-12 {
		t.Errorf("ensemble mean %.17g vs serial %.17g", rep.Current.Mean, mean)
	}
	if relErr(rep.Current.Variance, variance) > 1e-12 {
		t.Errorf("ensemble variance %.17g vs serial %.17g", rep.Current.Variance, variance)
	}

	// Disorder must actually vary the observable across seeds.
	if rep.Current.Min == rep.Current.Max {
		t.Error("all realizations produced identical currents — disorder had no effect")
	}
	// Sequential members report an LDOS, so the DOS spectrum is present.
	if rep.DOSMembers != 4 || len(rep.DOS) != 12 {
		t.Errorf("DOS reduction missing: members=%d rows=%d", rep.DOSMembers, len(rep.DOS))
	}
}

// TestStudyDeterministic: two runs of the same study reduce to the
// bitwise-same statistics (solver and reduction are both deterministic
// in index order).
func TestStudyDeterministic(t *testing.T) {
	run := func() *Result {
		st := &Study{Spec: studySpec(), Members: 3, BaseSeed: 7, Workers: 3, Options: fastOpts()}
		res, err := st.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Report.Current.Mean != b.Report.Current.Mean || a.Report.Current.Variance != b.Report.Current.Variance {
		t.Errorf("study not deterministic: %+v vs %+v", a.Report.Current, b.Report.Current)
	}
	for i := range a.Members {
		if a.Members[i].Result.Current != b.Members[i].Result.Current {
			t.Errorf("member %d current differs across identical studies", i)
		}
	}
}

// TestStudyWarmStart: the warm-started study converges every member and
// reports the same physics family as the cold one.
func TestStudyWarmStart(t *testing.T) {
	st := &Study{Spec: studySpec(), Members: 3, BaseSeed: 55, WarmStart: true,
		Options: []qt.Option{qt.WithMaxIterations(12), qt.WithTolerance(1e-4)}}
	res, err := st.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range res.Members {
		if m.Err != nil {
			t.Fatalf("warm member %d failed: %v", i, m.Err)
		}
		if !m.Result.Converged {
			t.Errorf("warm member %d did not converge", i)
		}
	}
}

// TestStudyValidation rejects empty and profile-less studies.
func TestStudyValidation(t *testing.T) {
	if _, err := (&Study{Spec: studySpec()}).Run(context.Background()); err == nil ||
		!strings.Contains(err.Error(), "at least one member") {
		t.Errorf("zero-member study accepted (err = %v)", err)
	}
	clean := studySpec()
	clean.Profile = nil
	if _, err := (&Study{Spec: clean, Members: 2}).Run(context.Background()); err == nil ||
		!strings.Contains(err.Error(), "no profile") {
		t.Errorf("profile-less study accepted (err = %v)", err)
	}
}

// TestStudyCancellation: a cancelled context stops the study between
// iterations and surfaces the context error.
func TestStudyCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st := &Study{Spec: studySpec(), Members: 2, Options: fastOpts()}
	res, err := st.Run(ctx)
	if err == nil {
		t.Fatal("cancelled study reported no error")
	}
	if res == nil {
		t.Fatal("cancelled study must still return the partial result")
	}
}

// TestReduceSkipsFailedMembers: errored members appear as bare rows and
// poison no statistic.
func TestReduceSkipsFailedMembers(t *testing.T) {
	dev, err := studySpec().Build()
	if err != nil {
		t.Fatal(err)
	}
	members := []Member{
		{Index: 0, Seed: 1, Result: &qt.Result{Converged: true, Current: 1.0, Iterations: 3}},
		{Index: 1, Seed: 2, Err: context.DeadlineExceeded},
		{Index: 2, Seed: 3, Result: &qt.Result{Converged: true, Current: 3.0, Iterations: 4}},
	}
	rep := Reduce(dev, members)
	if rep.Members != 3 || rep.Current.N != 2 || rep.Converged != 2 {
		t.Fatalf("failed member mishandled: %+v", rep.Current)
	}
	if rep.Current.Mean != 2.0 {
		t.Errorf("mean = %g, want 2", rep.Current.Mean)
	}
	if len(rep.MemberRows) != 3 {
		t.Errorf("rows = %d, want 3 (failed member still listed)", len(rep.MemberRows))
	}
}
