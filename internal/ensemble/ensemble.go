// Package ensemble drives N-realization disorder studies through the qt
// facade — the workload layer the paper's target regime actually runs:
// a realistic device's observables (current, DOS) only mean anything as
// averages over many disorder realizations of one device profile.
//
// A Study names a profiled qt.Spec, a realization count and a base
// seed; member i solves the spec with DisorderSeed = BaseSeed + i.
// Members run concurrently, bounded by the linalg worker budget (each
// member reserves one worker token, so inner kernel parallelism
// composes instead of oversubscribing), stream their per-iteration
// IterStats through OnIter, and reduce Welford-style into the
// report.Ensemble schema: running mean/variance and the 95% confidence
// interval of the terminal current and of the DOS spectrum.
//
// The reduction is deterministic: members are folded in index order
// after all have finished, so the same member results always produce
// the bitwise-same statistics regardless of completion order. The qtd
// service mirrors this driver over HTTP (POST /v1/ensembles), where the
// (profile, seed) content keys additionally let duplicate realizations
// hit the result cache and sibling realizations warm-start.
package ensemble

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/linalg"
	"repro/internal/qt"
	"repro/internal/report"
)

// Study is an N-realization disorder study over one profiled spec.
type Study struct {
	// Spec is the base experiment; it must carry a Profile (an ensemble
	// over a clean device is N copies of one run).
	Spec qt.Spec
	// Members is the realization count N.
	Members int
	// BaseSeed seeds the first realization; member i draws its disorder
	// from BaseSeed + i.
	BaseSeed uint64
	// Workers bounds how many members solve concurrently. Zero means
	// min(Members, linalg.WorkerBudget()).
	Workers int
	// Options apply to every member's simulation.
	Options []qt.Option
	// WarmStart seeds members 1..N−1 from member 0's converged Σ≷/Π≷
	// state (realizations of one profile share tensor shapes, so a
	// sibling's fixed point is a valid and close initial guess). Member 0
	// solves cold first; it is a no-op for distributed members, which
	// capture no final state.
	WarmStart bool

	// OnMember, when set, is called once per member as it finishes, in
	// completion order (serialized by the study).
	OnMember func(Member)
	// OnIter, when set, streams every member's per-iteration telemetry,
	// tagged with the member index. Members run concurrently; calls for
	// different members interleave (serialized by the study).
	OnIter func(member int, st qt.IterStats)
}

// Member is one realization's outcome.
type Member struct {
	Index  int
	Seed   uint64
	Result *qt.Result // nil when Err is set
	Err    error
	WallNs int64
}

// Result is a finished study: every member in index order plus the
// reduced report.
type Result struct {
	Members []Member
	Report  *report.Ensemble
}

// MemberSpec returns the spec member i solves: the base spec with the
// member's derived disorder seed. Exposed so the service-side driver
// submits byte-identical configurations.
func (st *Study) MemberSpec(i int) qt.Spec {
	s := st.Spec
	s.DisorderSeed = st.BaseSeed + uint64(i)
	return s
}

// validate checks the study shape before any member runs.
func (st *Study) validate() error {
	if st.Members <= 0 {
		return fmt.Errorf("ensemble: need at least one member (got %d)", st.Members)
	}
	if st.Spec.Profile == nil {
		return fmt.Errorf("ensemble: spec has no profile: an ensemble over a clean device is %d copies of one run", st.Members)
	}
	return nil
}

// workers resolves the concurrency bound.
func (st *Study) workers() int {
	w := st.Workers
	if w <= 0 {
		w = linalg.WorkerBudget()
	}
	if w > st.Members {
		w = st.Members
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes the study. The context cancels between self-consistent
// iterations of the running members and skips unstarted ones; the
// completed members are reduced and returned alongside the context's
// error. A member's solver error is recorded on its Member row (and the
// member excluded from the reduction), not escalated — one diverged
// realization must not void its N−1 siblings.
func (st *Study) Run(ctx context.Context) (*Result, error) {
	if err := st.validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	members := make([]Member, st.Members)
	for i := range members {
		members[i] = Member{Index: i, Seed: st.BaseSeed + uint64(i)}
	}

	var mu sync.Mutex // serializes OnMember/OnIter across members
	next := 0
	var warm *qt.SigmaState
	if st.WarmStart && st.Members > 1 {
		// Member 0 solves cold, alone, and donates its final state.
		st.solve(ctx, &members[0], &mu, nil)
		if r := members[0].Result; r != nil {
			warm = r.FinalState
		}
		next = 1
	}

	sem := make(chan struct{}, st.workers())
	var wg sync.WaitGroup
	for i := next; i < st.Members; i++ {
		if ctx.Err() != nil {
			break
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(m *Member) {
			defer wg.Done()
			defer func() { <-sem }()
			// One budget token per in-flight member: inner kernels of
			// concurrent members share the machine instead of each
			// assuming they own it.
			release := linalg.ReserveWorker()
			defer release()
			st.solve(ctx, m, &mu, warm)
		}(&members[i])
	}
	wg.Wait()

	dev, err := st.Spec.Build()
	if err != nil {
		return nil, err
	}
	rep := Reduce(dev, members)
	rep.BaseSeed = st.BaseSeed
	rep.WallNs = time.Since(start).Nanoseconds()
	return &Result{Members: members, Report: rep}, ctx.Err()
}

// solve runs one member to completion, filling its row.
func (st *Study) solve(ctx context.Context, m *Member, mu *sync.Mutex, warm *qt.SigmaState) {
	begin := time.Now()
	opts := append([]qt.Option{}, st.Options...)
	if warm != nil {
		// Clone per member: the donated state seeds many concurrent
		// solvers, each of which mixes into its own copy.
		opts = append(opts, qt.WithWarmStart(warm.Clone()))
	}
	sim, err := qt.New(st.MemberSpec(m.Index), opts...)
	if err != nil {
		m.Err = err
		st.notify(m, mu)
		return
	}
	run, err := sim.Start(ctx)
	if err != nil {
		m.Err = err
		st.notify(m, mu)
		return
	}
	for it := range run.Stats() {
		if st.OnIter != nil {
			mu.Lock()
			st.OnIter(m.Index, it)
			mu.Unlock()
		}
	}
	res, err := run.Wait()
	m.Result = res
	// Cancellation still carries the partial result; a hard solver error
	// voids only this member.
	if err != nil && res == nil {
		m.Err = err
	}
	m.WallNs = time.Since(begin).Nanoseconds()
	st.notify(m, mu)
}

func (st *Study) notify(m *Member, mu *sync.Mutex) {
	if st.OnMember == nil {
		return
	}
	mu.Lock()
	st.OnMember(*m)
	mu.Unlock()
}
