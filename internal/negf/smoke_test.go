package negf

import (
	"testing"

	"repro/internal/device"
)

// TestSmokeInspect prints the main observables on a tiny device — kept as
// a cheap end-to-end exercise of both phases plus one SSE application.
func TestSmokeInspect(t *testing.T) {
	p := device.TestParams(16, 4, 2)
	p.NE = 20
	p.Nomega = 3
	dev := device.MustBuild(p)
	s := New(dev, DefaultOptions())
	if err := s.GFPhase(); err != nil {
		t.Fatal(err)
	}
	t.Logf("ballistic: IL=%g IR=%g Esrc=%g", s.Obs.CurrentL, s.Obs.CurrentR, s.Obs.EnergyCurrentL)
	t.Logf("interface currents: %v", s.Obs.InterfaceCurrent)
	t.Logf("phonon heat: L=%g profile=%v", s.Obs.PhononEnergyCurrentL, s.Obs.PhononInterfaceEnergy)
	t.Logf("T: %v", s.Obs.SlabTemperature(dev))
	s.SSEPhase()
	if err := s.GFPhase(); err != nil {
		t.Fatal(err)
	}
	t.Logf("after 1 SCBA iter: IL=%g IR=%g", s.Obs.CurrentL, s.Obs.CurrentR)
	t.Logf("Re=%g Rph=%g", s.Obs.ElectronEnergyLoss, s.Obs.PhononEnergyGain)
	t.Logf("interface currents: %v", s.Obs.InterfaceCurrent)
	t.Logf("T: %v", s.Obs.SlabTemperature(dev))
}
