package negf

import (
	"errors"
	"math"
	"testing"

	"repro/internal/device"
)

// TestScatteringReducesBallisticCurrent: electron-phonon scattering opens
// a backscattering channel; the self-consistent current must not exceed
// the coherent (ballistic) value.
func TestScatteringReducesBallisticCurrent(t *testing.T) {
	p := testParams()
	p.Coupling = 0.15
	dev := device.MustBuild(p)

	sb := New(dev, DefaultOptions())
	if err := sb.GFPhase(); err != nil {
		t.Fatal(err)
	}
	ballisticI := sb.Obs.CurrentL

	ss := New(dev, DefaultOptions())
	if _, err := ss.Run(); err != nil && !errors.Is(err, ErrNotConverged) {
		t.Fatal(err)
	}
	scatteredI := ss.Obs.CurrentL
	if scatteredI > ballisticI*1.02 {
		t.Fatalf("scattering should not amplify the current: %g vs ballistic %g",
			scatteredI, ballisticI)
	}
}

// TestHeatingGrowsWithBias: higher Vds dissipates more power and heats
// the lattice further.
func TestHeatingGrowsWithBias(t *testing.T) {
	maxTemp := func(vds float64) float64 {
		p := testParams()
		p.Coupling = 0.12
		p.Vds = vds
		dev := device.MustBuild(p)
		s := New(dev, DefaultOptions())
		if _, err := s.Run(); err != nil && !errors.Is(err, ErrNotConverged) {
			t.Fatal(err)
		}
		var mx float64
		for _, temp := range s.Obs.SlabTemperature(dev) {
			mx = math.Max(mx, temp)
		}
		return mx
	}
	low := maxTemp(0.15)
	high := maxTemp(0.40)
	if high <= low {
		t.Fatalf("hot spot should grow with bias: %g K at 0.15 V vs %g K at 0.4 V", low, high)
	}
}

// TestHeatingGrowsWithCoupling: stronger electron-phonon coupling means
// more Joule heating.
func TestHeatingGrowsWithCoupling(t *testing.T) {
	maxTemp := func(c float64) float64 {
		p := testParams()
		p.Coupling = c
		dev := device.MustBuild(p)
		s := New(dev, DefaultOptions())
		if _, err := s.Run(); err != nil && !errors.Is(err, ErrNotConverged) {
			t.Fatal(err)
		}
		var mx float64
		for _, temp := range s.Obs.SlabTemperature(dev) {
			mx = math.Max(mx, temp)
		}
		return mx
	}
	if w, s := maxTemp(0.05), maxTemp(0.15); s <= w {
		t.Fatalf("heating should grow with coupling: %g K vs %g K", w, s)
	}
}

// TestZeroBiasNoHeating: at equilibrium there is no Joule heating even
// with strong coupling — the lattice stays at the contact temperature.
func TestZeroBiasNoHeating(t *testing.T) {
	p := testParams()
	p.Coupling = 0.15
	p.Vds = 0
	dev := device.MustBuild(p)
	s := New(dev, DefaultOptions())
	if _, err := s.Run(); err != nil && !errors.Is(err, ErrNotConverged) {
		t.Fatal(err)
	}
	for i, temp := range s.Obs.SlabTemperature(dev) {
		if math.Abs(temp-p.TC) > 5 {
			t.Fatalf("slab %d at %g K without bias (contacts %g K)", i, temp, p.TC)
		}
	}
	// And the total dissipated power is ~0.
	var tot float64
	for _, pw := range s.Obs.DissipatedPower {
		tot += pw
	}
	scale := math.Abs(s.Obs.ElectronEnergyLoss) + 1e-12
	if math.Abs(tot) > 100*scale {
		t.Fatalf("equilibrium dissipated power %g should vanish", tot)
	}
}

// TestContactTemperatureSetsLattice: with hotter contacts the equilibrium
// lattice temperature follows.
func TestContactTemperatureSetsLattice(t *testing.T) {
	p := testParams()
	p.Vds = 0
	p.TC = 400
	dev := device.MustBuild(p)
	s := New(dev, DefaultOptions())
	if err := s.GFPhase(); err != nil {
		t.Fatal(err)
	}
	for i, temp := range s.Obs.SlabTemperature(dev) {
		if math.Abs(temp-400) > 5 {
			t.Fatalf("slab %d equilibrated to %g K, contacts at 400 K", i, temp)
		}
	}
}

// TestReverseBiasReversesCurrent: flipping Vds flips the current direction
// with (approximately) the same magnitude for our symmetric-enough device.
func TestReverseBiasReversesCurrent(t *testing.T) {
	p := testParams()
	fw := ballistic(t, p)
	p2 := p
	p2.Vds = -p.Vds
	bw := ballistic(t, p2)
	if fw.Obs.CurrentL <= 0 || bw.Obs.CurrentL >= 0 {
		t.Fatalf("bias reversal should flip the current: %g vs %g",
			fw.Obs.CurrentL, bw.Obs.CurrentL)
	}
}

// TestPhononHeatFlowsFromHotSpot: after self-heating, the phonon energy
// current flows outward from the hot spot — negative (leftward) on the
// source side and positive (rightward) on the drain side.
func TestPhononHeatFlowsFromHotSpot(t *testing.T) {
	p := testParams()
	p.Coupling = 0.15
	dev := device.MustBuild(p)
	s := New(dev, DefaultOptions())
	if _, err := s.Run(); err != nil && !errors.Is(err, ErrNotConverged) {
		t.Fatal(err)
	}
	jq := s.Obs.PhononInterfaceEnergy
	first, last := jq[0], jq[len(jq)-1]
	if !(first < 0 && last > 0) {
		t.Fatalf("heat should flow outward from the channel: JQ = %v", jq)
	}
}

// TestSpectralCurrentVanishesOutsideWindow: far above MuL and far below
// MuR (beyond thermal tails) no current flows.
func TestSpectralCurrentVanishesOutsideWindow(t *testing.T) {
	s := ballistic(t, testParams())
	p := s.Dev.P
	peak := 0.0
	for _, j := range s.Obs.SpectralCurrent {
		peak = math.Max(peak, math.Abs(j))
	}
	for ie, j := range s.Obs.SpectralCurrent {
		e := p.Energy(ie)
		if e > p.MuL()+0.5 || e < p.MuR()-0.5 {
			if math.Abs(j) > 0.01*peak {
				t.Fatalf("current %g at E=%g eV outside the transport window", j, e)
			}
		}
	}
}

// TestEnergyBalanceImprovesWithWeakCoupling: the SCBA conservation residue
// shrinks as the scattering becomes a small perturbation.
func TestEnergyBalanceImprovesWithWeakCoupling(t *testing.T) {
	residue := func(c float64) float64 {
		p := testParams()
		p.Coupling = c
		dev := device.MustBuild(p)
		s := New(dev, DefaultOptions())
		if _, err := s.Run(); err != nil && !errors.Is(err, ErrNotConverged) {
			t.Fatal(err)
		}
		re, rp := s.Obs.ElectronEnergyLoss, s.Obs.PhononEnergyGain
		return math.Abs(re-rp) / math.Max(math.Abs(re), math.Abs(rp))
	}
	weak := residue(0.04)
	if weak > 0.25 {
		t.Fatalf("weak-coupling energy balance residue %g too large", weak)
	}
}

// TestLDOSPositiveAndPopulated: the local density of states is the
// spectral weight −(1/π)·Im tr Gᴿ, non-negative everywhere and carrying
// weight inside the band.
func TestLDOSPositiveAndPopulated(t *testing.T) {
	s := ballistic(t, testParams())
	p := s.Dev.P
	var total float64
	for i, dos := range s.Obs.LDOS {
		if len(dos) != p.NE {
			t.Fatal("LDOS shape wrong")
		}
		for n, v := range dos {
			if v < -1e-9 {
				t.Fatalf("negative LDOS %g at slab %d energy %d", v, i, n)
			}
			total += v
		}
	}
	if total <= 0 {
		t.Fatal("LDOS carries no spectral weight")
	}
}

// TestBandEdgeInsideGrid: the extracted band-edge profile is a sensible
// energy for every slab and sits below the spectral-current peak.
func TestBandEdgeInsideGrid(t *testing.T) {
	s := ballistic(t, testParams())
	p := s.Dev.P
	edges := s.Obs.BandEdge(p, 0.1)
	if len(edges) != p.Bnum {
		t.Fatal("band edge length")
	}
	peak := 0
	for n, j := range s.Obs.SpectralCurrent {
		if j > s.Obs.SpectralCurrent[peak] {
			peak = n
		}
	}
	for i, e := range edges {
		if e < p.Emin || e > p.Energy(p.NE-1) {
			t.Fatalf("band edge %g off-grid", e)
		}
		if e > p.Energy(peak)+0.2 {
			t.Fatalf("slab %d band edge %g above the current-carrying window %g", i, e, p.Energy(peak))
		}
	}
}
