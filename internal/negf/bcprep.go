package negf

import (
	"fmt"

	"repro/internal/bc"
	"repro/internal/blocktri"
	"repro/internal/linalg"
)

// PrepareElectronBC computes the two contact boundary conditions of
// electron point (ik, ie) into the cache, without solving the point. The
// boundary depends only on the bare Hamiltonian and the energy — not on
// the scattering self-energies — so the task-graph runtime (internal/sdfg)
// schedules it as its own node ahead of the RGF solve, which then hits
// the cache. The arithmetic is identical to the in-solve path, so the
// cached result is bitwise the same. Only meaningful in bc.CacheBC mode;
// with bc.NoCache the result would be recomputed anyway.
func (s *PointSolver) PrepareElectronBC(h *blocktri.Matrix, ik, ie int) error {
	p := s.Dev.P
	z := complex(p.Energy(ie), p.Eta)
	nb := p.Bnum
	bs := p.ElBlockSize()
	if _, err := s.BC.Get(0, ik, ie, func() (*bc.Result, error) {
		return bc.SurfaceGF(edgeBlock(h.Diag[0], z, bs), negated(h.Lower[0], bs), 0, 0)
	}); err != nil {
		return fmt.Errorf("left boundary: %w", err)
	}
	if _, err := s.BC.Get(1, ik, ie, func() (*bc.Result, error) {
		return bc.SurfaceGF(edgeBlock(h.Diag[nb-1], z, bs), negated(h.Upper[nb-2], bs), 0, 0)
	}); err != nil {
		return fmt.Errorf("right boundary: %w", err)
	}
	return nil
}

// PreparePhononBC is PrepareElectronBC for phonon point (iq, m): the
// boundary blocks are (ω+iη)²·I − Φ with the bare dynamical matrix, again
// independent of the scattering self-energies.
func (s *PointSolver) PreparePhononBC(phi *blocktri.Matrix, iq, m int) error {
	p := s.Dev.P
	z := complex(p.Omega(m), p.Eta)
	z2 := z * z
	nb := p.Bnum
	bs := p.PhBlockSize()
	if _, err := s.BC.Get(2, iq, m, func() (*bc.Result, error) {
		return bc.SurfaceGF(edgeBlock(phi.Diag[0], z2, bs), negated(phi.Lower[0], bs), 0, 0)
	}); err != nil {
		return fmt.Errorf("left phonon boundary: %w", err)
	}
	if _, err := s.BC.Get(3, iq, m, func() (*bc.Result, error) {
		return bc.SurfaceGF(edgeBlock(phi.Diag[nb-1], z2, bs), negated(phi.Upper[nb-2], bs), 0, 0)
	}); err != nil {
		return fmt.Errorf("right phonon boundary: %w", err)
	}
	return nil
}

// edgeBlock assembles z·I − B, the contact onsite block of the A matrix
// before any self-energy enters — the same expression the point solves
// build in place.
func edgeBlock(b *linalg.Matrix, z complex128, bs int) *linalg.Matrix {
	d := linalg.Scale(linalg.New(bs, bs), -1, b)
	for r := 0; r < bs; r++ {
		d.Set(r, r, d.At(r, r)+z)
	}
	return d
}

// negated returns −B, the contact coupling block as the A assembly
// produces it.
func negated(b *linalg.Matrix, bs int) *linalg.Matrix {
	return linalg.Scale(linalg.New(bs, bs), -1, b)
}
