package negf

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/bc"
	"repro/internal/blocktri"
	"repro/internal/device"
	"repro/internal/linalg"
)

// ElectronPointResult carries the observables extracted from one (kz, E)
// solve — the per-point contributions a caller (the sequential phase loop
// or a distributed rank) weighs and accumulates.
type ElectronPointResult struct {
	CurrentL, CurrentR float64   // Meir-Wingreen contact currents
	EnergyL            float64   // contact energy current (left)
	InterfaceCurrent   []float64 // per slab interface
	InterfaceEnergy    []float64
	DissipatedPerSlab  []float64
	IE                 int       // energy index of this point
	LDOS               []float64 // −(1/π)·Im tr Gᴿ per slab
}

// electronPhase solves the electron Green's functions for every (kz, E)
// point in parallel and fills the G≷ tensors.
func (s *Solver) electronPhase() error {
	p := s.Dev.P
	// H(kz) is E-independent: assemble once per momentum point.
	hams := make([]*blocktri.Matrix, p.Nkz)
	for ik := 0; ik < p.Nkz; ik++ {
		hams[ik] = s.Dev.Hamiltonian(ik)
	}

	npts := p.Nkz * p.NE
	results := make([]*ElectronPointResult, npts)
	spectral := make([]float64, p.NE)
	var specMu sync.Mutex
	var firstErr atomic.Value

	parallelPoints(npts, func(idx int) {
		if firstErr.Load() != nil {
			return
		}
		ik, ie := idx/p.NE, idx%p.NE
		res, err := s.SolveElectronPoint(hams[ik], ik, ie)
		if err != nil {
			firstErr.CompareAndSwap(nil, fmt.Errorf("point (kz=%d, E=%d): %w", ik, ie, err))
			return
		}
		results[idx] = res
		specMu.Lock()
		spectral[ie] += res.CurrentL
		specMu.Unlock()
	})
	if e := firstErr.Load(); e != nil {
		return e.(error)
	}

	// Reduce the per-point observables.
	obs := &s.Obs
	obs.resetElectron(p)
	copy(obs.SpectralCurrent, spectral)
	w := p.DE / (2 * 3.141592653589793) / float64(p.Nkz)
	for _, r := range results {
		obs.CurrentL += w * r.CurrentL
		obs.CurrentR += w * r.CurrentR
		obs.EnergyCurrentL += w * r.EnergyL
		for i := range r.InterfaceCurrent {
			obs.InterfaceCurrent[i] += w * r.InterfaceCurrent[i]
			obs.InterfaceEnergyCurrent[i] += w * r.InterfaceEnergy[i]
		}
		for i := range r.DissipatedPerSlab {
			obs.DissipatedPower[i] += w * r.DissipatedPerSlab[i]
		}
		for i := range r.LDOS {
			obs.LDOS[i][r.IE] += r.LDOS[i] / float64(p.Nkz)
		}
	}
	return nil
}

// SolveElectronPoint builds and solves one (kz, E) RGF problem against the
// current scattering self-energies, filling the G≷ blocks of that point and
// returning its observable contributions.
func (s *PointSolver) SolveElectronPoint(h *blocktri.Matrix, ik, ie int) (*ElectronPointResult, error) {
	p := s.Dev.P
	e := p.Energy(ie)
	z := complex(e, p.Eta)
	nb := p.Bnum
	bs := p.ElBlockSize()

	sc := s.getScratch()
	defer s.putScratch(sc)

	// A = (E+iη)·S − H − Σᴿ_B − Σᴿ_S. S = I in the orthonormal basis but
	// the same assembly holds for general S. The scratch assembly is
	// overwritten in full, so reuse changes no values.
	a, sigL, sigG := sc.electron(h.Sizes)
	for i := 0; i < nb; i++ {
		linalg.Scale(a.Diag[i], -1, h.Diag[i])
		for r := 0; r < bs; r++ {
			a.Diag[i].Set(r, r, a.Diag[i].At(r, r)+z)
		}
	}
	for i := 0; i+1 < nb; i++ {
		linalg.Scale(a.Upper[i], -1, h.Upper[i])
		linalg.Scale(a.Lower[i], -1, h.Lower[i])
	}

	// Open boundaries: semi-infinite periodic extensions of the edge slabs.
	tBC := s.Trace.Begin()
	left, err := s.BC.Get(0, ik, ie, func() (*bc.Result, error) {
		d00 := a.Diag[0].Clone()
		return bc.SurfaceGF(d00, a.Lower[0], 0, 0)
	})
	if err != nil {
		return nil, fmt.Errorf("left boundary: %w", err)
	}
	right, err := s.BC.Get(1, ik, ie, func() (*bc.Result, error) {
		d00 := a.Diag[nb-1].Clone()
		return bc.SurfaceGF(d00, a.Upper[nb-2], 0, 0)
	})
	if err != nil {
		return nil, fmt.Errorf("right boundary: %w", err)
	}
	s.Trace.End(s.TraceRank, sc.track, "bc", "bc/el", ik, ie, tBC)
	linalg.AXPY(a.Diag[0], -1, left.SigmaR)
	linalg.AXPY(a.Diag[nb-1], -1, right.SigmaR)

	// Lesser/greater injections: boundary (Fermi-filled broadening) plus
	// the scattering self-energies from the previous SSE phase. The
	// scratch injection blocks arrive zeroed.
	fL := device.FermiDirac(e, p.MuL(), p.TC)
	fR := device.FermiDirac(e, p.MuR(), p.TC)
	linalg.AXPY(sigL[0], complex(0, fL), left.Gamma)
	linalg.AXPY(sigG[0], complex(0, -(1-fL)), left.Gamma)
	linalg.AXPY(sigL[nb-1], complex(0, fR), right.Gamma)
	linalg.AXPY(sigG[nb-1], complex(0, -(1-fR)), right.Gamma)

	// Scatter the per-atom scattering self-energies into slab blocks:
	// Σᴿ_S = (Σ> − Σ<)/2 into A, Σ≷_S into the injections.
	rows := p.AtomsPerSlab()
	norb := p.Norb
	for a2 := 0; a2 < p.Na; a2++ {
		sl := s.Dev.SlabOf[a2]
		off := (a2 - sl*rows) * norb
		sL := s.SigL.Block(ik, ie, a2)
		sG := s.SigG.Block(ik, ie, a2)
		for r := 0; r < norb; r++ {
			for c := 0; c < norb; c++ {
				v := sL[r*norb+c]
				g := sG[r*norb+c]
				sigL[sl].Set(off+r, off+c, sigL[sl].At(off+r, off+c)+v)
				sigG[sl].Set(off+r, off+c, sigG[sl].At(off+r, off+c)+g)
				// Σᴿ = (Σ> − Σ<)/2 (anti-Hermitian part; the principal-
				// value real part is neglected, standard in SCBA solvers).
				a.Diag[sl].Set(off+r, off+c, a.Diag[sl].At(off+r, off+c)-(g-v)/2)
			}
		}
	}

	tRGF := s.Trace.Begin()
	sol, err := sc.solveRGF(a, sigL, sigG)
	if err != nil {
		return nil, err
	}
	s.Trace.End(s.TraceRank, sc.track, "rgf", "rgf/el", ik, ie, tRGF)

	// Harvest the per-atom diagonal blocks into the G≷ tensors.
	for a2 := 0; a2 < p.Na; a2++ {
		sl := s.Dev.SlabOf[a2]
		off := (a2 - sl*rows) * norb
		dstL := s.GL.Block(ik, ie, a2)
		dstG := s.GG.Block(ik, ie, a2)
		src := sol.GL[sl]
		srcG := sol.GG[sl]
		for r := 0; r < norb; r++ {
			copy(dstL[r*norb:(r+1)*norb], src.Data[(off+r)*src.Cols+off:(off+r)*src.Cols+off+norb])
			copy(dstG[r*norb:(r+1)*norb], srcG.Data[(off+r)*srcG.Cols+off:(off+r)*srcG.Cols+off+norb])
		}
	}

	// Observables. Meir-Wingreen contact currents:
	// I_c(E) = Tr[Σ<_c·G> − Σ>_c·G<] evaluated at the contact slab.
	res := &ElectronPointResult{
		InterfaceCurrent:  make([]float64, nb-1),
		InterfaceEnergy:   make([]float64, nb-1),
		DissipatedPerSlab: make([]float64, nb),
		IE:                ie,
		LDOS:              make([]float64, nb),
	}
	for i := 0; i < nb; i++ {
		var tr complex128
		for r := 0; r < bs; r++ {
			tr += sol.GR[i].At(r, r)
		}
		res.LDOS[i] = -imag(tr) / 3.141592653589793
	}
	gammaTermL := contactCurrent(left.Gamma, fL, sol.GL[0], sol.GG[0])
	gammaTermR := contactCurrent(right.Gamma, fR, sol.GL[nb-1], sol.GG[nb-1])
	res.CurrentL = gammaTermL
	res.CurrentR = gammaTermR
	res.EnergyL = e * gammaTermL

	// Interface currents, rightward-positive: in the steady ballistic
	// state these equal the left-contact injection current.
	// J_{i→i+1} = 2·Re Tr[H_{i,i+1}·G<_{i+1,i}].
	for i := 0; i+1 < nb; i++ {
		j := 2 * realTraceMul(h.Upper[i], sol.GLLower[i])
		res.InterfaceCurrent[i] = j
		res.InterfaceEnergy[i] = e * j
	}

	// Local collision integral: energy transferred to the lattice in each
	// slab, E·Tr[Σ<_S·G> − Σ>_S·G<] with scattering self-energies only.
	for a2 := 0; a2 < p.Na; a2++ {
		sl := s.Dev.SlabOf[a2]
		off := (a2 - sl*rows) * norb
		sL := s.SigL.Block(ik, ie, a2)
		sG := s.SigG.Block(ik, ie, a2)
		var tr complex128
		for r := 0; r < norb; r++ {
			for c := 0; c < norb; c++ {
				gG := sol.GG[sl].At(off+c, off+r)
				gL := sol.GL[sl].At(off+c, off+r)
				tr += sL[r*norb+c]*gG - sG[r*norb+c]*gL
			}
		}
		res.DissipatedPerSlab[sl] += e * real(tr)
	}

	return res, nil
}

// contactCurrent computes Tr[Σ<_c·G> − Σ>_c·G<] with Σ<_c = i·f·Γ and
// Σ>_c = −i·(1−f)·Γ, reduced to real arithmetic:
// = Re{ i·Tr[Γ·(f·G> + (1−f)·G<)] }.
func contactCurrent(gamma *linalg.Matrix, f float64, gl, gg *linalg.Matrix) float64 {
	n := gamma.Rows
	var tr complex128
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			tr += gamma.At(r, c) * (complex(f, 0)*gg.At(c, r) + complex(1-f, 0)*gl.At(c, r))
		}
	}
	return real(complex(0, 1) * tr)
}

// realTraceMul returns Re Tr[A·B].
func realTraceMul(a, b *linalg.Matrix) float64 {
	var tr complex128
	for r := 0; r < a.Rows; r++ {
		arow := a.Row(r)
		for c, av := range arow {
			tr += av * b.Data[c*b.Cols+r]
		}
	}
	return real(tr)
}

// parallelPoints distributes independent (momentum, energy) solves over a
// worker pool — the natural parallelism of the GF phase.
func parallelPoints(n int, work func(idx int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			work(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := int64(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Reserve this worker in the kernel budget so nested GEMMs
			// don't fan out on top of the point-level parallelism.
			release := linalg.ReserveWorker()
			defer release()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				work(i)
			}
		}()
	}
	wg.Wait()
}
