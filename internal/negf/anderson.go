package negf

import "math"

// Anderson acceleration (depth-1) for the self-consistent Born loop — an
// extension over the paper's plain iteration. The GF↔SSE cycle is a fixed
// point Σ = F(Σ); with scattering strong enough, linear mixing converges
// geometrically and slowly (the paper reports 20–100 iterations). Depth-1
// Anderson mixing extrapolates along the residual difference and typically
// cuts the iteration count substantially at no extra solver cost.
//
// State vector: the concatenation of the four self-energy tensors
// (Σ<, Σ>, Π<, Π>). With β the underlying linear-mixing factor and
// residual f_n = F(x_n) − x_n:
//
//	θ_n    = ⟨Δf, f_n⟩ / ⟨Δf, Δf⟩,  Δf = f_n − f_{n−1}
//	x_{n+1} = x_n + β·f_n − θ_n·(Δx + β·Δf)
//
// For θ = 0 this reduces to plain linear mixing; θ is clamped to [−2, 2]
// to keep early iterations stable.

// andersonState carries the history the accelerator needs.
type andersonState struct {
	prevX []complex128 // x_{n-1}
	prevF []complex128 // f_{n-1}
	haveH bool
}

// mixAnderson updates the solver's self-energy tensors in place from the
// freshly computed SSE output using Anderson extrapolation.
func (s *Solver) mixAnderson(computedL, computedG, computedPL, computedPG []complex128) {
	x := concatViews(s.SigL.Data, s.SigG.Data, s.PiL.Data, s.PiG.Data)
	fx := make([]complex128, len(x.flat))
	computed := concatViews(computedL, computedG, computedPL, computedPG)
	for i := range fx {
		fx[i] = computed.flat[i] - x.flat[i]
	}

	beta := complex(s.Opts.Mixing, 0)
	st := s.anderson
	if st == nil {
		st = &andersonState{}
		s.anderson = st
	}

	next := make([]complex128, len(fx))
	if !st.haveH {
		for i := range next {
			next[i] = x.flat[i] + beta*fx[i]
		}
	} else {
		var num, den complex128
		for i := range fx {
			df := fx[i] - st.prevF[i]
			num += conj(df) * fx[i]
			den += conj(df) * df
		}
		theta := complex(0, 0)
		if real(den) > 0 {
			theta = num / den
			if mag := real(theta)*real(theta) + imag(theta)*imag(theta); mag > 4 {
				theta *= complex(2/math.Sqrt(mag), 0)
			}
		}
		for i := range next {
			dx := x.flat[i] - st.prevX[i]
			df := fx[i] - st.prevF[i]
			next[i] = x.flat[i] + beta*fx[i] - theta*(dx+beta*df)
		}
	}
	st.prevX = append(st.prevX[:0], x.flat...)
	st.prevF = append(st.prevF[:0], fx...)
	st.haveH = true
	x.scatter(next)
}

// concatView lets the accelerator treat the four tensors as one vector
// without copying them around permanently.
type concatView struct {
	parts [][]complex128
	flat  []complex128
}

func concatViews(parts ...[]complex128) *concatView {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	flat := make([]complex128, 0, total)
	for _, p := range parts {
		flat = append(flat, p...)
	}
	return &concatView{parts: parts, flat: flat}
}

// scatter writes a flat vector back into the underlying tensors.
func (v *concatView) scatter(flat []complex128) {
	off := 0
	for _, p := range v.parts {
		copy(p, flat[off:off+len(p)])
		off += len(p)
	}
}

func conj(z complex128) complex128 { return complex(real(z), -imag(z)) }
