package negf

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/bc"
	"repro/internal/blocktri"
	"repro/internal/device"
	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/rgf"
	"repro/internal/sparse"
	"repro/internal/tensor"
)

// PointSolver bundles exactly the state a single Green's-function point
// solve needs — the device, the scattering self-energy inputs, the G≷/D≷
// output tensors, and a boundary-condition cache — decoupled from the
// sequential Solver. The Solver embeds one covering the full (kz, E) and
// (qz, ω) grids; a distributed rank (internal/dist) owns its own instance
// and calls the same per-point solves on its shard of the grids.
type PointSolver struct {
	Dev *device.Device
	BC  *bc.Cache

	// Sparsity is the block-sparse routing policy handed to every RGF
	// solve. NewPointSolver sets it automatically when the device's
	// coupling blocks qualify (see couplingPolicy); nil keeps all
	// products dense and bit-identical to the reference path.
	Sparsity *rgf.Sparsity

	// Trace, when non-nil, records per-point BC and RGF spans; TraceRank
	// labels them with the owning rank (0 for the sequential solver). The
	// nil default keeps the point solves allocation-free.
	Trace     *obs.Tracer
	TraceRank int
	trackSeq  atomic.Int64

	// Green's function tensors (outputs of the GF phase).
	GL, GG *tensor.Electron
	DL, DG *tensor.Phonon
	// Scattering self-energy tensors (outputs of the SSE phase, inputs to
	// the next GF phase).
	SigL, SigG *tensor.Electron
	PiL, PiG   *tensor.Phonon

	// scratch pools one solveScratch per concurrently running point solve:
	// the linalg workspace, the reusable RGF solution, and the assembly
	// storage. Each checkout is owned by exactly one worker goroutine for
	// the duration of one point solve (the per-worker ownership rule of
	// linalg.Workspace), so the parallel GF phase and the dist rank
	// workers never share scratch.
	scratch sync.Pool
}

// solveScratch is the reusable per-worker state of one point solve. After
// the first solve every field is warm: the workspace pool covers all RGF
// temporaries, the assemblies are overwritten in place, and the Solution
// slices are recycled — the steady-state point solve allocates nothing.
type solveScratch struct {
	ws   *linalg.Workspace
	sol  *rgf.Solution
	prob rgf.Problem
	// track is the trace lane of the worker owning this scratch: one
	// scratch is checked out per concurrently running point solve, so the
	// id (assigned once, ≥ 1) separates concurrent solves in the trace.
	track int

	// sparsity mirrors the owning PointSolver's policy (copied at
	// checkout so solveRGF needs no back-pointer).
	sparsity *rgf.Sparsity

	// Electron assembly: A = (E+iη)·S − H − Σᴿ and the Σ≷ injections.
	elA            *blocktri.Matrix
	elSigL, elSigG []*linalg.Matrix
	// Phonon assembly: A = (ω+iη)²·I − Φ − Πᴿ and the Π≷ injections.
	phA            *blocktri.Matrix
	phSigL, phSigG []*linalg.Matrix
}

// getScratch checks a solveScratch out of the pool (allocating the first
// time a worker needs one); putScratch returns it.
func (ps *PointSolver) getScratch() *solveScratch {
	if sc, _ := ps.scratch.Get().(*solveScratch); sc != nil {
		sc.sparsity = ps.Sparsity
		return sc
	}
	return &solveScratch{ws: linalg.NewWorkspace(), track: int(ps.trackSeq.Add(1)), sparsity: ps.Sparsity}
}

func (ps *PointSolver) putScratch(sc *solveScratch) { ps.scratch.Put(sc) }

// electron returns the reusable electron assembly for the given block
// sizes: the A matrix blocks are fully overwritten by the caller, the Σ≷
// injection blocks are returned zeroed — exactly the state fresh
// allocations would have.
func (sc *solveScratch) electron(sizes []int) (*blocktri.Matrix, []*linalg.Matrix, []*linalg.Matrix) {
	sc.elA, sc.elSigL, sc.elSigG = ensureAssembly(sc.elA, sc.elSigL, sc.elSigG, sizes)
	return sc.elA, sc.elSigL, sc.elSigG
}

// phonon is electron for the phonon assembly.
func (sc *solveScratch) phonon(sizes []int) (*blocktri.Matrix, []*linalg.Matrix, []*linalg.Matrix) {
	sc.phA, sc.phSigL, sc.phSigG = ensureAssembly(sc.phA, sc.phSigL, sc.phSigG, sizes)
	return sc.phA, sc.phSigL, sc.phSigG
}

func ensureAssembly(a *blocktri.Matrix, sigL, sigG []*linalg.Matrix, sizes []int) (*blocktri.Matrix, []*linalg.Matrix, []*linalg.Matrix) {
	if a != nil && sameSizes(a.Sizes, sizes) {
		for i := range sigL {
			sigL[i].Zero()
			sigG[i].Zero()
		}
		return a, sigL, sigG
	}
	a = blocktri.New(sizes)
	sigL = make([]*linalg.Matrix, len(sizes))
	sigG = make([]*linalg.Matrix, len(sizes))
	for i, s := range sizes {
		sigL[i] = linalg.New(s, s)
		sigG[i] = linalg.New(s, s)
	}
	return a, sigL, sigG
}

func sameSizes(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// solveRGF runs the workspace-pooled RGF recursion on the scratch.
func (sc *solveScratch) solveRGF(a *blocktri.Matrix, sigL, sigG []*linalg.Matrix) (*rgf.Solution, error) {
	sc.prob.A, sc.prob.SigL, sc.prob.SigG = a, sigL, sigG
	sc.prob.Sparsity = sc.sparsity
	sol, err := rgf.SolveInto(&sc.prob, sc.ws, sc.sol)
	if err != nil {
		return nil, err
	}
	sc.sol = sol
	return sol, nil
}

// NewPointSolver allocates full-shape zeroed tensors for dev and a fresh
// boundary-condition cache in the given mode.
func NewPointSolver(dev *device.Device, mode bc.Mode) *PointSolver {
	p := dev.P
	nbp1 := dev.MaxNb() + 1
	return &PointSolver{
		Dev:      dev,
		Sparsity: couplingPolicy(dev),
		BC:       bc.NewCache(mode),
		GL:       tensor.NewElectron(p.Nkz, p.NE, p.Na, p.Norb),
		GG:       tensor.NewElectron(p.Nkz, p.NE, p.Na, p.Norb),
		DL:       tensor.NewPhonon(p.Nqz(), p.Nomega, p.Na, nbp1, device.N3D),
		DG:       tensor.NewPhonon(p.Nqz(), p.Nomega, p.Na, nbp1, device.N3D),
		SigL:     tensor.NewElectron(p.Nkz, p.NE, p.Na, p.Norb),
		SigG:     tensor.NewElectron(p.Nkz, p.NE, p.Na, p.Norb),
		PiL:      tensor.NewPhonon(p.Nqz(), p.Nomega, p.Na, nbp1, device.N3D),
		PiG:      tensor.NewPhonon(p.Nqz(), p.Nomega, p.Na, nbp1, device.N3D),
	}
}

// couplingPolicy decides once per device whether RGF solves should route
// coupling products through the sparse kernels: every interface of the
// kz=0 Hamiltonian must qualify under the default policy (the coupling
// pattern is energy- and kz-phase-independent, so one check covers the
// whole grid; rgf re-verifies per interface per solve against the actual
// assembled blocks anyway). Devices with small or dense couplings get
// nil — the fully dense, bit-identical path.
func couplingPolicy(dev *device.Device) *rgf.Sparsity {
	pol := rgf.DefaultSparsity()
	h := dev.Hamiltonian(0)
	if h.NB < 2 {
		return nil
	}
	for i := 0; i+1 < h.NB; i++ {
		if h.Sizes[i] < pol.MinDim || h.Sizes[i+1] < pol.MinDim {
			return nil
		}
		if sparse.FromDense(h.Upper[i], 0).Density() > pol.Threshold {
			return nil
		}
	}
	return pol
}

// AllPairs lists every electron (ik, ie) point in global order.
func AllPairs(p device.Params) [][2]int {
	out := make([][2]int, 0, p.Nkz*p.NE)
	for ik := 0; ik < p.Nkz; ik++ {
		for ie := 0; ie < p.NE; ie++ {
			out = append(out, [2]int{ik, ie})
		}
	}
	return out
}

// AllPhononPoints lists every phonon (iq, m) point, m ∈ [1, Nω], in
// global order.
func AllPhononPoints(p device.Params) [][2]int {
	out := make([][2]int, 0, p.Nqz()*p.Nomega)
	for iq := 0; iq < p.Nqz(); iq++ {
		for m := 1; m <= p.Nomega; m++ {
			out = append(out, [2]int{iq, m})
		}
	}
	return out
}

// ElectronCollisionSum accumulates the electron collision integral
// R_e = Σ w·E·Tr[Σ<·G> − Σ>·G<] over the listed (ik, ie) pairs. With all
// pairs it is the ElectronEnergyLoss observable; a distributed rank passes
// only its owned pairs and reduces the partials.
func (ps *PointSolver) ElectronCollisionSum(pairs [][2]int) float64 {
	p := ps.Dev.P
	we := p.DE / (2 * math.Pi) / float64(p.Nkz)
	var re float64
	bl := p.Norb * p.Norb
	for _, pr := range pairs {
		ik, ie := pr[0], pr[1]
		e := p.Energy(ie)
		for a := 0; a < p.Na; a++ {
			sl := ps.SigL.Block(ik, ie, a)
			sg := ps.SigG.Block(ik, ie, a)
			gl := ps.GL.Block(ik, ie, a)
			gg := ps.GG.Block(ik, ie, a)
			var tr complex128
			for x := 0; x < bl; x++ {
				r, c := x/p.Norb, x%p.Norb
				tr += sl[r*p.Norb+c]*gg[c*p.Norb+r] - sg[r*p.Norb+c]*gl[c*p.Norb+r]
			}
			re += we * e * real(tr)
		}
	}
	return re
}

// PhononCollisionSum accumulates the phonon collision integral
// R_ph = Σ w·ω·Tr[Π>·D< − Π<·D>] over the listed (iq, m) points. With all
// points it is the PhononEnergyGain observable.
func (ps *PointSolver) PhononCollisionSum(points [][2]int) float64 {
	p := ps.Dev.P
	wp := p.DE / (2 * math.Pi) / float64(p.Nqz())
	var rp float64
	const n3 = device.N3D
	for _, pt := range points {
		iq, m := pt[0], pt[1]
		om := p.Omega(m)
		for a := 0; a < p.Na; a++ {
			for slot := 0; slot <= len(ps.Dev.Neigh[a]); slot++ {
				// Pair Π_ab with D_ba: the transpose-partner block.
				var dG, dL []complex128
				if slot == 0 {
					dG = ps.DG.Block(iq, m-1, a, 0)
					dL = ps.DL.Block(iq, m-1, a, 0)
				} else {
					b := ps.Dev.Neigh[a][slot-1]
					back := ps.Dev.NeighbourSlot(b, a)
					dG = ps.DG.Block(iq, m-1, b, 1+back)
					dL = ps.DL.Block(iq, m-1, b, 1+back)
				}
				pl := ps.PiL.Block(iq, m-1, a, slot)
				pg := ps.PiG.Block(iq, m-1, a, slot)
				var tr complex128
				for r := 0; r < n3; r++ {
					for c := 0; c < n3; c++ {
						tr += pg[r*n3+c]*dL[c*n3+r] - pl[r*n3+c]*dG[c*n3+r]
					}
				}
				// The ½ compensates the pair double-count of this trace
				// metric relative to the four-block D̃ displacement
				// combination entering Σ (each physical emission appears in
				// both Π_ab and the Π_aa l-sum).
				rp += 0.5 * wp * om * real(tr)
			}
		}
	}
	return rp
}
