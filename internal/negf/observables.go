package negf

import (
	"repro/internal/device"
)

// Observables are the physical outputs of a GF phase — the quantities
// plotted in Figs. 1(d) and 11 of the paper: currents, energy currents,
// dissipated power, and the atomically resolved temperature.
type Observables struct {
	// CurrentL/R are the Meir-Wingreen electron currents at the source and
	// drain contacts (arbitrary units; equal magnitude, opposite sign in
	// steady state).
	CurrentL, CurrentR float64
	// SpectralCurrent is the left-contact current per energy point —
	// the spectral distribution in the middle panel of Fig. 11.
	SpectralCurrent []float64
	// EnergyCurrentL is the electron energy current at the source.
	EnergyCurrentL float64
	// InterfaceCurrent[i] is the electron current across the slab i→i+1
	// interface; constant along x for a converged solution.
	InterfaceCurrent []float64
	// InterfaceEnergyCurrent[i] is the electron energy current profile —
	// the dashed blue line of Fig. 11 (left).
	InterfaceEnergyCurrent []float64
	// PhononInterfaceEnergy[i] is the phonon heat-current profile — the
	// dash-dotted green line of Fig. 11 (left).
	PhononInterfaceEnergy []float64
	// PhononEnergyCurrentL is the phonon heat current into the source.
	PhononEnergyCurrentL float64
	// DissipatedPower[i] is the energy/time transferred from electrons to
	// the lattice in slab i (P_diss of Fig. 11).
	DissipatedPower []float64
	// AtomTemperature[a] is the effective lattice temperature per atom (K),
	// extracted from the local phonon occupation — Fig. 1(d).
	AtomTemperature []float64
	// ElectronEnergyLoss and PhononEnergyGain are the totals of the two
	// collision integrals; their agreement is the energy-conservation
	// check the paper uses to validate the GF+SSE implementation (§8.1).
	ElectronEnergyLoss float64
	PhononEnergyGain   float64
	// LDOS[i][n] is the electron local density of states of slab i at
	// energy E_n, −(1/π)·Im tr Gᴿ_ii averaged over kz — the "conduction
	// band edge" backdrop of Fig. 11 (middle).
	LDOS [][]float64
}

func (o *Observables) resetElectron(p device.Params) {
	o.CurrentL, o.CurrentR, o.EnergyCurrentL = 0, 0, 0
	o.SpectralCurrent = make([]float64, p.NE)
	o.InterfaceCurrent = make([]float64, p.Bnum-1)
	o.InterfaceEnergyCurrent = make([]float64, p.Bnum-1)
	o.DissipatedPower = make([]float64, p.Bnum)
	o.LDOS = make([][]float64, p.Bnum)
	for i := range o.LDOS {
		o.LDOS[i] = make([]float64, p.NE)
	}
}

// BandEdge returns, per slab, the lowest energy at which the LDOS exceeds
// the given fraction of its slab maximum — a discrete estimate of the
// conduction-band-edge profile drawn in Fig. 11 (middle).
func (o *Observables) BandEdge(p device.Params, frac float64) []float64 {
	out := make([]float64, len(o.LDOS))
	for i, dos := range o.LDOS {
		var mx float64
		for _, v := range dos {
			if v > mx {
				mx = v
			}
		}
		out[i] = p.Energy(p.NE - 1)
		for n, v := range dos {
			if v >= frac*mx {
				out[i] = p.Energy(n)
				break
			}
		}
	}
	return out
}

func (o *Observables) resetPhonon(p device.Params) {
	o.PhononEnergyCurrentL = 0
	o.PhononInterfaceEnergy = make([]float64, p.Bnum-1)
	if o.AtomTemperature == nil {
		o.AtomTemperature = make([]float64, p.Na)
	}
}

// finalizeObservables computes the cross-phase quantities after both GF
// solves: the collision-integral totals whose balance expresses energy
// conservation between the electron and phonon baths.
func (s *Solver) finalizeObservables() {
	p := s.Dev.P
	s.Obs.ElectronEnergyLoss = s.ElectronCollisionSum(AllPairs(p))
	s.Obs.PhononEnergyGain = s.PhononCollisionSum(AllPhononPoints(p))
}

// fitTemperatures extracts the per-atom effective lattice temperature from
// the non-equilibrium phonon occupations.
func (s *Solver) fitTemperatures(occ [][]float64) {
	s.Obs.AtomTemperature = FitTemperatures(s.Dev.P, s.phDOS, occ)
}

// FitTemperatures extracts per-atom effective lattice temperatures from
// the phonon spectral weight dos_a(ω_m) and observed occupation
// occ_a(ω_m): find T_a such that the Bose-weighted spectral energy matches
// the observed local energy,
// Σ_m ω_m·n_B(ω_m, T_a)·dos_a(ω_m) = Σ_m ω_m·occ_a(ω_m).
func FitTemperatures(p device.Params, dos, occ [][]float64) []float64 {
	out := make([]float64, p.Na)
	for a := 0; a < p.Na; a++ {
		var target, weight float64
		for m := 1; m <= p.Nomega; m++ {
			target += p.Omega(m) * occ[a][m-1]
			weight += p.Omega(m) * dos[a][m-1]
		}
		if weight <= 0 {
			out[a] = p.TC
			continue
		}
		energyAt := func(t float64) float64 {
			var u float64
			for m := 1; m <= p.Nomega; m++ {
				u += p.Omega(m) * device.BoseEinstein(p.Omega(m), t) * dos[a][m-1]
			}
			return u
		}
		// Bisection on T ∈ [1, 5000] K; energyAt is monotone in T.
		lo, hi := 1.0, 5000.0
		if target <= energyAt(lo) {
			out[a] = lo
			continue
		}
		if target >= energyAt(hi) {
			out[a] = hi
			continue
		}
		for it := 0; it < 60; it++ {
			mid := (lo + hi) / 2
			if energyAt(mid) < target {
				lo = mid
			} else {
				hi = mid
			}
		}
		out[a] = (lo + hi) / 2
	}
	return out
}

// SlabTemperature averages the atomic temperatures per slab — the
// "average crystal temperature along x" curve of Fig. 11 (middle).
func (o *Observables) SlabTemperature(dev *device.Device) []float64 {
	out := make([]float64, dev.P.Bnum)
	for sInd, atoms := range dev.Slabs {
		var sum float64
		for _, a := range atoms {
			sum += o.AtomTemperature[a]
		}
		out[sInd] = sum / float64(len(atoms))
	}
	return out
}

// TotalEnergyCurrent returns the combined electron+phonon energy-current
// profile; its flatness is the Fig. 11 conservation statement.
func (o *Observables) TotalEnergyCurrent() []float64 {
	out := make([]float64, len(o.InterfaceEnergyCurrent))
	for i := range out {
		out[i] = o.InterfaceEnergyCurrent[i] + o.PhononInterfaceEnergy[i]
	}
	return out
}
