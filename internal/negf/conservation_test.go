package negf

import (
	"errors"
	"math"
	"testing"

	"repro/internal/device"
	"repro/internal/sse"
)

// Physics-invariant suite: current conservation across the slab
// interfaces and the anti-Hermitian identity of the correlation
// functions, asserted for both the FP64 SSE path and the §5.4
// mixed-precision path.
//
// Documented tolerances (relative, against the relevant scale), with the
// physical mechanism that sets each bound. Measured values on the test
// structure sit 2–3× below every tolerance:
//
//	ballistic current conservation     2e-2   the finite broadening η acts
//	                                          as a weak uniform absorber, so
//	                                          the continuity identity holds
//	                                          only to O(η/ΔE) (≈7e-3 here);
//	                                          not an arithmetic limit
//	SCBA current conservation          3e-2   the η leak plus the
//	 (fp64 and mixed)                         self-consistency residual at
//	                                          the loop tolerance (≈9e-3);
//	                                          quantization (≈1e-3 on Σ≷) is
//	                                          far below, so the mixed bound
//	                                          does not degrade
//	G≷ anti-Hermiticity, ballistic     1e-12  Σ≷ are exactly anti-Hermitian
//	                                          boundary injections: machine
//	                                          rounding only
//	G≷ anti-Hermiticity, SCBA fp64     5e-3   the discretized ω-stencil D̃
//	                                          weights carry a small
//	                                          non-Hermitian component, so
//	                                          the scattering Σ≷ break the
//	                                          identity at ≈1.6e-3 — a
//	                                          discretization property, not
//	                                          rounding
//	G≷ anti-Hermiticity, SCBA mixed    1e-2   the same stencil limit plus
//	                                          ε₁₆ quantization headroom
//	                                          (measured: indistinguishable
//	                                          from fp64 at 1.6e-3)
const (
	ballisticConservTol = 2e-2
	scbaConservTol      = 3e-2
	antiHermBallistic   = 1e-12
	antiHermFP64        = 5e-3
	antiHermMixed       = 1e-2
)

// conservationResidual returns the worst relative deviation of any
// interface current from the left-contact current — zero for an exactly
// conserved steady-state current.
func conservationResidual(obs *Observables) float64 {
	scale := math.Abs(obs.CurrentL)
	var worst float64
	for _, j := range obs.InterfaceCurrent {
		if r := math.Abs(j-obs.CurrentL) / scale; r > worst {
			worst = r
		}
	}
	return worst
}

// TestCurrentConservationBallistic: without scattering every slab
// interface must carry the injected contact current up to the η leak —
// the continuity statement of the steady state.
func TestCurrentConservationBallistic(t *testing.T) {
	s := ballistic(t, testParams())
	if r := conservationResidual(&s.Obs); r > ballisticConservTol {
		t.Fatalf("ballistic interface currents deviate by %.3g (tol %g): I_L=%g profile=%v",
			r, ballisticConservTol, s.Obs.CurrentL, s.Obs.InterfaceCurrent)
	}
}

// scbaSolver runs the self-consistent loop with the given SSE kernel.
func scbaSolver(t *testing.T, kernel sse.Kernel) *Solver {
	t.Helper()
	p := testParams()
	p.Coupling = 0.1
	dev := device.MustBuild(p)
	opts := DefaultOptions()
	opts.Kernel = kernel
	s := New(dev, opts)
	if _, err := s.Run(); err != nil && !errors.Is(err, ErrNotConverged) {
		t.Fatal(err)
	}
	return s
}

// TestCurrentConservationSCBA: with electron-phonon scattering the
// current must still be conserved through every slab once the Σ≷ have
// self-consistently converged — for the FP64 kernel and, within the same
// documented bound, for the mixed-precision kernel whose quantization
// error is far below the SCBA residual.
func TestCurrentConservationSCBA(t *testing.T) {
	for _, tc := range []struct {
		name   string
		kernel sse.Kernel
		tol    float64
	}{
		{"fp64", sse.DaCe{}, scbaConservTol},
		{"mixed", sse.Mixed{Normalize: true}, scbaConservTol},
	} {
		s := scbaSolver(t, tc.kernel)
		if r := conservationResidual(&s.Obs); r > tc.tol {
			t.Errorf("%s: SCBA interface currents deviate by %.3g (tol %g): I_L=%g profile=%v",
				tc.name, r, tc.tol, s.Obs.CurrentL, s.Obs.InterfaceCurrent)
		}
	}
}

// TestConservationDegradesGracefullyMixed: the mixed path must not make
// conservation materially worse than fp64 — the two SCBA residuals stay
// within a small factor of each other.
func TestConservationDegradesGracefullyMixed(t *testing.T) {
	fp := conservationResidual(&scbaSolver(t, sse.DaCe{}).Obs)
	mx := conservationResidual(&scbaSolver(t, sse.Mixed{Normalize: true}).Obs)
	if mx > 3*fp+1e-3 {
		t.Errorf("mixed SCBA residual %.3g vs fp64 %.3g: quantization dominates conservation", mx, fp)
	}
}

// antiHermResidual measures the worst violation of B† = −B over the
// diagonal G≷ blocks, relative to each plane's magnitude: the
// correlation functions i·G<(E), i·G>(E) are Hermitian with definite
// sign, so G≷_aa(kz, E) must be anti-Hermitian.
func antiHermResidual(s *Solver) float64 {
	p := s.Dev.P
	norb := p.Norb
	var worst float64
	check := func(blk []complex128, scale float64) {
		for r := 0; r < norb; r++ {
			for c := 0; c < norb; c++ {
				v := blk[r*norb+c] + cconj(blk[c*norb+r])
				if d := math.Hypot(real(v), imag(v)) / scale; d > worst {
					worst = d
				}
			}
		}
	}
	for ik := 0; ik < p.Nkz; ik++ {
		for ie := 0; ie < p.NE; ie++ {
			var scale float64
			for a := 0; a < p.Na; a++ {
				for _, v := range s.GL.Block(ik, ie, a) {
					if m := math.Hypot(real(v), imag(v)); m > scale {
						scale = m
					}
				}
				for _, v := range s.GG.Block(ik, ie, a) {
					if m := math.Hypot(real(v), imag(v)); m > scale {
						scale = m
					}
				}
			}
			if scale == 0 {
				continue
			}
			for a := 0; a < p.Na; a++ {
				check(s.GL.Block(ik, ie, a), scale)
				check(s.GG.Block(ik, ie, a), scale)
			}
		}
	}
	return worst
}

func cconj(v complex128) complex128 { return complex(real(v), -imag(v)) }

// TestGAntiHermitianBallistic: with only the boundary injections
// (Σ< = i·f·Γ, Σ> = −i·(1−f)·Γ, Γ Hermitian) the identity is exact to
// machine rounding.
func TestGAntiHermitianBallistic(t *testing.T) {
	s := ballistic(t, testParams())
	if r := antiHermResidual(s); r > antiHermBallistic {
		t.Fatalf("ballistic G≷ anti-Hermiticity violated: %.3g (tol %g)", r, antiHermBallistic)
	}
}

// TestGAntiHermitianSCBA: through the self-consistent loop the scattering
// Σ≷ feed back into G≷; both precisions preserve the identity to the
// D̃-stencil discretization level, and the mixed path's quantization must
// stay hidden below it.
func TestGAntiHermitianSCBA(t *testing.T) {
	for _, tc := range []struct {
		name   string
		kernel sse.Kernel
		tol    float64
	}{
		{"fp64", sse.DaCe{}, antiHermFP64},
		{"mixed", sse.Mixed{Normalize: true}, antiHermMixed},
	} {
		s := scbaSolver(t, tc.kernel)
		if r := antiHermResidual(s); r > tc.tol {
			t.Errorf("%s: SCBA G≷ anti-Hermiticity violated: %.3g (tol %g)", tc.name, r, tc.tol)
		}
	}
}
