// Package negf orchestrates the self-consistent DFT+NEGF electro-thermal
// simulation: the GF phase (open-boundary conditions + RGF solves for all
// electron (kz, E) and phonon (qz, ω) points) alternating with the SSE
// phase (scattering self-energies) until the electronic current converges —
// the outer loop of Fig. 4 in the paper.
package negf

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/bc"
	"repro/internal/device"
	"repro/internal/obs"
	"repro/internal/sse"
)

// Options configures a solver run.
type Options struct {
	// Kernel selects the SSE implementation (default sse.DaCe{}).
	Kernel sse.Kernel
	// CacheMode selects boundary-condition caching (§7.1.2).
	CacheMode bc.Mode
	// Mixing is the linear self-consistency mixing factor in (0, 1].
	Mixing float64
	// MaxIter bounds the GF↔SSE iterations.
	MaxIter int
	// Tol is the relative change of the contact current at convergence.
	Tol float64
	// Anderson enables depth-1 Anderson acceleration of the
	// self-consistency iteration instead of plain linear mixing — an
	// extension beyond the paper's solver (see anderson.go).
	Anderson bool
	// Progress, when non-nil, is called after every self-consistent
	// iteration with that iteration's stats — the cancel/telemetry hook
	// the qt facade threads a context and its streaming through.
	// Returning a non-nil error stops the loop between iterations; Run
	// returns that error (wrapped) alongside the partial observables.
	Progress func(IterStats) error
	// Tracer, when non-nil, records per-phase spans (iteration, GF/SSE
	// phases, per-point BC and RGF solves) into the run's trace. Nil —
	// the default — disables recording at the cost of one nil check per
	// seam, keeping the hot path allocation-free.
	Tracer *obs.Tracer
}

// DefaultOptions returns the settings used by the examples and tests.
func DefaultOptions() Options {
	return Options{
		Kernel:    sse.DaCe{},
		CacheMode: bc.CacheBC,
		Mixing:    0.5,
		MaxIter:   25,
		Tol:       1e-5,
	}
}

// Solver holds the simulation state across iterations. The embedded
// PointSolver carries the tensors and boundary-condition cache shared with
// the per-point GF solves.
type Solver struct {
	*PointSolver
	Opts Options

	// Per-atom phonon spectral weight A_a(ω) = −2·Im tr Dᴿ_aa, averaged
	// over qz, used by the temperature extraction.
	phDOS [][]float64

	anderson *andersonState
	Obs      Observables

	// IterTrace records per-iteration convergence data (Fig. 7b style).
	IterTrace []IterStats
}

// IterStats captures one self-consistent iteration.
type IterStats struct {
	Iter         int
	Current      float64 // left-contact electron current (a.u.)
	RelChange    float64
	SSEStats     sse.Stats
	ElEnergyLoss float64 // R_e: electron energy lost to the lattice
	PhEnergyGain float64 // R_ph: energy absorbed by the phonon bath
	// WallNs is the measured wall time of this iteration (GF + SSE),
	// the sequential counterpart of the distributed per-iteration
	// makespan.
	WallNs int64
}

// New allocates a solver for dev.
func New(dev *device.Device, opts Options) *Solver {
	if opts.Kernel == nil {
		opts.Kernel = sse.DaCe{}
	}
	if opts.Mixing <= 0 || opts.Mixing > 1 {
		opts.Mixing = 0.5
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 25
	}
	s := &Solver{
		PointSolver: NewPointSolver(dev, opts.CacheMode),
		Opts:        opts,
	}
	s.PointSolver.Trace = opts.Tracer
	return s
}

// ErrNotConverged reports that MaxIter was reached before Tol.
var ErrNotConverged = errors.New("negf: self-consistent loop did not converge")

// Run executes the self-consistent GF↔SSE loop. It returns the final
// observables; ErrNotConverged still leaves valid (unconverged) results.
func (s *Solver) Run() (*Observables, error) {
	prev := math.NaN()
	tr := s.Opts.Tracer
	for it := 0; it < s.Opts.MaxIter; it++ {
		iterStart := time.Now()
		tIter := tr.Begin()
		tGF := tr.Begin()
		if err := s.GFPhase(); err != nil {
			return nil, fmt.Errorf("negf: GF phase (iteration %d): %w", it, err)
		}
		tr.End(s.TraceRank, 0, "gf", "gf/phase", it, -1, tGF)
		tSSE := tr.Begin()
		stats := s.SSEPhase()
		tr.End(s.TraceRank, 0, "sse", "sse/phase", it, -1, tSSE)
		tr.End(s.TraceRank, 0, "iter", "iter", it, -1, tIter)

		cur := s.Obs.CurrentL
		rel := math.Abs(cur-prev) / math.Max(math.Abs(cur), 1e-300)
		st := IterStats{
			Iter: it, Current: cur, RelChange: rel, SSEStats: stats,
			ElEnergyLoss: s.Obs.ElectronEnergyLoss, PhEnergyGain: s.Obs.PhononEnergyGain,
			WallNs: time.Since(iterStart).Nanoseconds(),
		}
		s.IterTrace = append(s.IterTrace, st)
		if s.Opts.Progress != nil {
			if err := s.Opts.Progress(st); err != nil {
				return &s.Obs, fmt.Errorf("negf: stopped after iteration %d: %w", it, err)
			}
		}
		if it > 0 && rel < s.Opts.Tol {
			return &s.Obs, nil
		}
		prev = cur
	}
	return &s.Obs, ErrNotConverged
}

// GFPhase computes all Green's functions for the current self-energies and
// refreshes the observables.
func (s *Solver) GFPhase() error {
	if err := s.electronPhase(); err != nil {
		return err
	}
	if err := s.phononPhase(); err != nil {
		return err
	}
	s.finalizeObservables()
	return nil
}

// SSEPhase evaluates the scattering self-energies from the current Green's
// functions and mixes them into the solver state.
func (s *Solver) SSEPhase() sse.Stats {
	out := s.Opts.Kernel.Compute(&sse.Input{
		Dev: s.Dev, GL: s.GL, GG: s.GG, DL: s.DL, DG: s.DG,
	})
	if s.Opts.Anderson {
		s.mixAnderson(out.SigL.Data, out.SigG.Data, out.PiL.Data, out.PiG.Data)
		return out.Stats
	}
	mix := s.Opts.Mixing
	s.SigL.Mix(out.SigL, mix)
	s.SigG.Mix(out.SigG, mix)
	s.PiL.Mix(out.PiL, mix)
	s.PiG.Mix(out.PiG, mix)
	return out.Stats
}
