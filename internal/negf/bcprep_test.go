package negf

import (
	"testing"

	"repro/internal/bc"
	"repro/internal/device"
)

// TestPrepareBCMatchesInSolvePath warms the boundary cache through the
// standalone prepare methods and checks the point solves (a) hit the
// cache instead of recomputing and (b) produce bitwise the results of the
// unwarmed path.
func TestPrepareBCMatchesInSolvePath(t *testing.T) {
	p := device.TestParams(9, 3, 2)
	p.NE = 4
	p.Nomega = 2
	dev, err := device.Build(p)
	if err != nil {
		t.Fatal(err)
	}

	cold := NewPointSolver(dev, bc.CacheBC)
	warm := NewPointSolver(dev, bc.CacheBC)
	h := dev.Hamiltonian(0)
	phi := dev.Dynamical(0)

	if err := warm.PrepareElectronBC(h, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := warm.PreparePhononBC(phi, 0, 1); err != nil {
		t.Fatal(err)
	}
	if hits, misses := warm.BC.Stats(); hits != 0 || misses != 4 {
		t.Fatalf("after prepare: hits=%d misses=%d, want 0/4", hits, misses)
	}

	rw, err := warm.SolveElectronPoint(h, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := cold.SolveElectronPoint(h, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if hits, _ := warm.BC.Stats(); hits != 2 {
		t.Fatalf("electron solve should hit both warmed contacts, hits=%d", hits)
	}
	if rw.CurrentL != rc.CurrentL || rw.CurrentR != rc.CurrentR {
		t.Fatalf("warmed electron solve differs: %v vs %v", rw.CurrentL, rc.CurrentL)
	}

	pw, err := warm.SolvePhononPoint(phi, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := cold.SolvePhononPoint(phi, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if hits, _ := warm.BC.Stats(); hits != 4 {
		t.Fatalf("phonon solve should hit both warmed contacts, hits=%d", hits)
	}
	if pw.EnergyContactL != pc.EnergyContactL {
		t.Fatalf("warmed phonon solve differs: %v vs %v", pw.EnergyContactL, pc.EnergyContactL)
	}
}
