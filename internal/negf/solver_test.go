package negf

import (
	"errors"
	"math"
	"testing"

	"repro/internal/bc"
	"repro/internal/device"
	"repro/internal/sse"
)

func testParams() device.Params {
	p := device.TestParams(16, 4, 2)
	p.NE = 20
	p.Nomega = 3
	return p
}

func ballistic(t *testing.T, p device.Params) *Solver {
	t.Helper()
	dev := device.MustBuild(p)
	s := New(dev, DefaultOptions())
	if err := s.GFPhase(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBallisticContactCurrentConservation(t *testing.T) {
	s := ballistic(t, testParams())
	il, ir := s.Obs.CurrentL, s.Obs.CurrentR
	if il <= 0 {
		t.Fatalf("forward bias should drive positive source current, got %g", il)
	}
	if rel := math.Abs(il+ir) / math.Abs(il); rel > 1e-3 {
		t.Fatalf("contact currents not balanced: IL=%g IR=%g (rel %g)", il, ir, rel)
	}
}

func TestBallisticInterfaceCurrentUniform(t *testing.T) {
	// Without scattering, the current through every slab interface must
	// equal the injected contact current (continuity).
	s := ballistic(t, testParams())
	il := s.Obs.CurrentL
	for i, j := range s.Obs.InterfaceCurrent {
		if rel := math.Abs(j-il) / math.Abs(il); rel > 0.02 {
			t.Fatalf("interface %d current %g deviates from contact %g by %.1f%%", i, j, il, 100*rel)
		}
	}
}

func TestZeroBiasZeroCurrent(t *testing.T) {
	p := testParams()
	p.Vds = 0
	s := ballistic(t, p)
	scale := math.Abs(ballistic(t, testParams()).Obs.CurrentL)
	if math.Abs(s.Obs.CurrentL) > 1e-6*scale+1e-12 {
		t.Fatalf("zero bias should carry no current, got %g (scale %g)", s.Obs.CurrentL, scale)
	}
}

func TestEquilibriumTemperatureIsContactTemperature(t *testing.T) {
	// Before any electron-phonon coupling the lattice sits at TC.
	s := ballistic(t, testParams())
	for i, temp := range s.Obs.SlabTemperature(s.Dev) {
		if math.Abs(temp-s.Dev.P.TC) > 2 {
			t.Fatalf("slab %d equilibrium temperature %g K, want ≈%g K", i, temp, s.Dev.P.TC)
		}
	}
}

func TestCurrentIncreasesWithBias(t *testing.T) {
	p := testParams()
	low := ballistic(t, p)
	p2 := p
	p2.Vds = 0.5
	high := ballistic(t, p2)
	if high.Obs.CurrentL <= low.Obs.CurrentL {
		t.Fatalf("current should grow with bias: %g (0.3V) vs %g (0.5V)",
			low.Obs.CurrentL, high.Obs.CurrentL)
	}
}

func TestSelfConsistentLoopConverges(t *testing.T) {
	dev := device.MustBuild(testParams())
	s := New(dev, DefaultOptions())
	obs, err := s.Run()
	if err != nil {
		t.Fatalf("loop did not converge: %v (trace %v)", err, s.IterTrace)
	}
	if len(s.IterTrace) < 2 {
		t.Fatal("expected at least two iterations")
	}
	last := s.IterTrace[len(s.IterTrace)-1]
	if last.RelChange > s.Opts.Tol {
		t.Fatalf("final relative change %g above tolerance", last.RelChange)
	}
	if obs.CurrentL <= 0 {
		t.Fatal("converged current should remain positive")
	}
}

func TestSelfHeatingRaisesChannelTemperature(t *testing.T) {
	p := testParams()
	p.Coupling = 0.12
	dev := device.MustBuild(p)
	s := New(dev, DefaultOptions())
	if _, err := s.Run(); err != nil && !errors.Is(err, ErrNotConverged) {
		t.Fatal(err)
	}
	temps := s.Obs.SlabTemperature(dev)
	var maxT float64
	for _, temp := range temps {
		maxT = math.Max(maxT, temp)
	}
	if maxT < p.TC+5 {
		t.Fatalf("expected Joule heating to raise the lattice temperature above %g K, got max %g K (profile %v)",
			p.TC, maxT, temps)
	}
	// The hottest point must lie inside the channel, not at the contacts —
	// the Fig. 1(d)/Fig. 11 signature.
	hottest := 0
	for i, temp := range temps {
		if temp > temps[hottest] {
			hottest = i
		}
	}
	if hottest == 0 || hottest == len(temps)-1 {
		t.Fatalf("hottest slab %d should be interior (profile %v)", hottest, temps)
	}
}

func TestEnergyConservationBetweenBaths(t *testing.T) {
	// The §8.1 validation: energy lost by electrons equals energy absorbed
	// by the phonon system (within the discretization error of the folded
	// ω-grid and the η bath).
	p := testParams()
	p.Coupling = 0.12
	dev := device.MustBuild(p)
	s := New(dev, DefaultOptions())
	if _, err := s.Run(); err != nil && !errors.Is(err, ErrNotConverged) {
		t.Fatal(err)
	}
	re, rp := s.Obs.ElectronEnergyLoss, s.Obs.PhononEnergyGain
	if re <= 0 {
		t.Fatalf("electrons under bias must lose energy to the lattice, got %g", re)
	}
	if rp <= 0 {
		t.Fatalf("phonon bath must gain energy, got %g", rp)
	}
	if rel := math.Abs(re-rp) / math.Max(re, rp); rel > 0.4 {
		t.Fatalf("energy balance violated: electron loss %g vs phonon gain %g (rel %g)", re, rp, rel)
	}
}

func TestDissipatedPowerPositiveInChannel(t *testing.T) {
	p := testParams()
	p.Coupling = 0.12
	dev := device.MustBuild(p)
	s := New(dev, DefaultOptions())
	if _, err := s.Run(); err != nil && !errors.Is(err, ErrNotConverged) {
		t.Fatal(err)
	}
	var total float64
	for _, pw := range s.Obs.DissipatedPower {
		total += pw
	}
	if total <= 0 {
		t.Fatalf("total dissipated power should be positive, got %g (profile %v)",
			total, s.Obs.DissipatedPower)
	}
}

func TestOMENAndDaCeKernelsGiveSameSolution(t *testing.T) {
	p := testParams()
	p.NE = 14
	run := func(k sse.Kernel) *Solver {
		dev := device.MustBuild(p)
		opts := DefaultOptions()
		opts.Kernel = k
		opts.MaxIter = 4
		s := New(dev, opts)
		if _, err := s.Run(); err != nil && !errors.Is(err, ErrNotConverged) {
			t.Fatal(err)
		}
		return s
	}
	so := run(sse.OMEN{})
	sd := run(sse.DaCe{})
	if rel := math.Abs(so.Obs.CurrentL-sd.Obs.CurrentL) / math.Abs(sd.Obs.CurrentL); rel > 1e-9 {
		t.Fatalf("kernels disagree on the converged current: %g vs %g", so.Obs.CurrentL, sd.Obs.CurrentL)
	}
	if d := so.GL.MaxAbsDiff(sd.GL); d > 1e-9 {
		t.Fatalf("kernels disagree on G<: %g", d)
	}
}

func TestCacheModesAgree(t *testing.T) {
	p := testParams()
	p.NE = 12
	run := func(mode bc.Mode) float64 {
		dev := device.MustBuild(p)
		opts := DefaultOptions()
		opts.CacheMode = mode
		opts.MaxIter = 3
		s := New(dev, opts)
		if _, err := s.Run(); err != nil && !errors.Is(err, ErrNotConverged) {
			t.Fatal(err)
		}
		return s.Obs.CurrentL
	}
	if a, b := run(bc.NoCache), run(bc.CacheBC); a != b {
		t.Fatalf("cache mode changed the physics: %g vs %g", a, b)
	}
}

func TestSpectralCurrentIntegratesToTotal(t *testing.T) {
	s := ballistic(t, testParams())
	p := s.Dev.P
	var integral float64
	w := p.DE / (2 * math.Pi) / float64(p.Nkz)
	for _, j := range s.Obs.SpectralCurrent {
		integral += w * j
	}
	if rel := math.Abs(integral-s.Obs.CurrentL) / math.Abs(s.Obs.CurrentL); rel > 1e-10 {
		t.Fatalf("spectral current does not integrate to the total: %g vs %g", integral, s.Obs.CurrentL)
	}
	// The spectral weight should be concentrated inside the bias window
	// (with thermal tails): the peak energy must lie between MuR and MuL.
	peak := 0
	for i, j := range s.Obs.SpectralCurrent {
		if j > s.Obs.SpectralCurrent[peak] {
			peak = i
		}
	}
	e := p.Energy(peak)
	if e < p.MuR()-0.3 || e > p.MuL()+0.3 {
		t.Fatalf("spectral current peak at %g eV, far outside the bias window [%g, %g]",
			e, p.MuR(), p.MuL())
	}
}

func TestIterTraceMonotoneConvergence(t *testing.T) {
	dev := device.MustBuild(testParams())
	s := New(dev, DefaultOptions())
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Relative change should shrink substantially from the first measured
	// iteration to the last (geometric with linear mixing).
	first := s.IterTrace[1].RelChange
	last := s.IterTrace[len(s.IterTrace)-1].RelChange
	if last > first {
		t.Fatalf("convergence trace not decreasing: first %g, last %g", first, last)
	}
}

func TestTotalEnergyCurrentProfile(t *testing.T) {
	p := testParams()
	p.Coupling = 0.12
	dev := device.MustBuild(p)
	s := New(dev, DefaultOptions())
	if _, err := s.Run(); err != nil && !errors.Is(err, ErrNotConverged) {
		t.Fatal(err)
	}
	tot := s.Obs.TotalEnergyCurrent()
	if len(tot) != p.Bnum-1 {
		t.Fatal("profile length wrong")
	}
	// Fig. 11: the electron energy current drops along the channel as
	// energy converts to heat; the combined profile varies less than the
	// electron part alone.
	el := s.Obs.InterfaceEnergyCurrent
	varOf := func(v []float64) float64 {
		mn, mx := v[0], v[0]
		for _, x := range v {
			mn = math.Min(mn, x)
			mx = math.Max(mx, x)
		}
		return mx - mn
	}
	if varOf(tot) > varOf(el)+1e-12 {
		t.Logf("note: total profile variation %g vs electron %g", varOf(tot), varOf(el))
	}
}

func TestRunErrNotConvergedStillReturnsObservables(t *testing.T) {
	dev := device.MustBuild(testParams())
	opts := DefaultOptions()
	opts.MaxIter = 1
	s := New(dev, opts)
	obs, err := s.Run()
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("expected ErrNotConverged, got %v", err)
	}
	if obs == nil || obs.CurrentL == 0 {
		t.Fatal("unconverged run should still produce observables")
	}
}

func TestMixedPrecisionConvergesToSameCurrent(t *testing.T) {
	// Fig. 7(b): with normalization the SSE-16 loop converges to a current
	// within ~1e-3 relative of the fp64 result; without normalization the
	// discrepancy is significantly larger.
	p := testParams()
	p.NE = 14
	p.Coupling = 0.12
	run := func(k sse.Kernel) float64 {
		dev := device.MustBuild(p)
		opts := DefaultOptions()
		opts.Kernel = k
		opts.MaxIter = 8
		s := New(dev, opts)
		if _, err := s.Run(); err != nil && !errors.Is(err, ErrNotConverged) {
			t.Fatal(err)
		}
		return s.Obs.CurrentL
	}
	ref := run(sse.DaCe{})
	norm := run(sse.Mixed{Normalize: true})
	raw := run(sse.Mixed{Normalize: false})
	relNorm := math.Abs(norm-ref) / math.Abs(ref)
	relRaw := math.Abs(raw-ref) / math.Abs(ref)
	if relNorm > 1e-3 {
		t.Fatalf("normalized mixed precision off by %g", relNorm)
	}
	if relRaw < relNorm {
		t.Fatalf("unnormalized (%g) should not beat normalized (%g)", relRaw, relNorm)
	}
	t.Logf("mixed-precision current error: normalized %.2e, unnormalized %.2e", relNorm, relRaw)
}

func TestAndersonAccelerationConverges(t *testing.T) {
	// The Anderson-accelerated loop must reach the same fixed point as
	// linear mixing, in no more iterations.
	p := testParams()
	p.Coupling = 0.12
	run := func(anderson bool) (float64, int) {
		dev := device.MustBuild(p)
		opts := DefaultOptions()
		opts.Anderson = anderson
		opts.MaxIter = 40
		s := New(dev, opts)
		if _, err := s.Run(); err != nil {
			t.Fatalf("anderson=%v: %v", anderson, err)
		}
		return s.Obs.CurrentL, len(s.IterTrace)
	}
	iLin, nLin := run(false)
	iAnd, nAnd := run(true)
	if rel := math.Abs(iAnd-iLin) / math.Abs(iLin); rel > 1e-4 {
		t.Fatalf("Anderson converged to a different current: %g vs %g (rel %g)", iAnd, iLin, rel)
	}
	if nAnd > nLin+2 {
		t.Fatalf("Anderson (%d iters) should not be slower than linear mixing (%d)", nAnd, nLin)
	}
	t.Logf("iterations: linear %d, Anderson %d", nLin, nAnd)
}
