package negf

import (
	"fmt"
	"sync/atomic"

	"repro/internal/bc"
	"repro/internal/blocktri"
	"repro/internal/device"
	"repro/internal/linalg"
)

// PhononPointResult carries observables from one (qz, ω) solve.
type PhononPointResult struct {
	EnergyContactL  float64
	InterfaceEnergy []float64
	// Per-atom spectral weight and occupation at this frequency.
	DOS []float64
	Occ []float64
}

// phononPhase solves the phonon Green's functions for every (qz, ω) point
// and fills the D≷ tensors, the phonon DOS, and the heat observables.
func (s *Solver) phononPhase() error {
	p := s.Dev.P
	dyns := make([]*blocktri.Matrix, p.Nqz())
	for iq := 0; iq < p.Nqz(); iq++ {
		dyns[iq] = s.Dev.Dynamical(iq)
	}

	npts := p.Nqz() * p.Nomega
	results := make([]*PhononPointResult, npts)
	omegaOf := make([]int, npts)
	var firstErr atomic.Value

	parallelPoints(npts, func(idx int) {
		if firstErr.Load() != nil {
			return
		}
		iq, m := idx/p.Nomega, idx%p.Nomega+1
		res, err := s.SolvePhononPoint(dyns[iq], iq, m)
		if err != nil {
			firstErr.CompareAndSwap(nil, fmt.Errorf("point (qz=%d, ω=%d): %w", iq, m, err))
			return
		}
		results[idx] = res
		omegaOf[idx] = m
	})
	if e := firstErr.Load(); e != nil {
		return e.(error)
	}

	obs := &s.Obs
	obs.resetPhonon(p)
	if s.phDOS == nil {
		s.phDOS = make([][]float64, p.Na)
		for a := range s.phDOS {
			s.phDOS[a] = make([]float64, p.Nomega)
		}
	}
	occ := make([][]float64, p.Na)
	for a := range occ {
		occ[a] = make([]float64, p.Nomega)
	}
	// phDOS holds only the latest GF pass; clear before accumulating.
	for a := 0; a < p.Na; a++ {
		for m := 0; m < p.Nomega; m++ {
			s.phDOS[a][m] = 0
		}
	}
	w := p.DE / (2 * 3.141592653589793) / float64(p.Nqz())
	for idx, r := range results {
		m := omegaOf[idx]
		omega := p.Omega(m)
		obs.PhononEnergyCurrentL += w * omega * r.EnergyContactL
		for i := range r.InterfaceEnergy {
			obs.PhononInterfaceEnergy[i] += w * omega * r.InterfaceEnergy[i]
		}
		for a := 0; a < p.Na; a++ {
			s.phDOS[a][m-1] += r.DOS[a] / float64(p.Nqz())
			occ[a][m-1] += r.Occ[a] / float64(p.Nqz())
		}
	}
	s.fitTemperatures(occ)
	return nil
}

// SolvePhononPoint builds and solves one (qz, ω) RGF problem:
// ((ω+iη)²·I − Φ − Πᴿ)·Dᴿ = I, D≷ = Dᴿ·Π≷·Dᴬ. It fills the D≷ blocks of
// that point and returns its observable contributions.
func (s *PointSolver) SolvePhononPoint(phi *blocktri.Matrix, iq, m int) (*PhononPointResult, error) {
	p := s.Dev.P
	omega := p.Omega(m)
	z := complex(omega, p.Eta)
	z2 := z * z
	nb := p.Bnum
	bs := p.PhBlockSize()

	sc := s.getScratch()
	defer s.putScratch(sc)

	a, sigL, sigG := sc.phonon(phi.Sizes)
	for i := 0; i < nb; i++ {
		linalg.Scale(a.Diag[i], -1, phi.Diag[i])
		for r := 0; r < bs; r++ {
			a.Diag[i].Set(r, r, a.Diag[i].At(r, r)+z2)
		}
	}
	for i := 0; i+1 < nb; i++ {
		linalg.Scale(a.Upper[i], -1, phi.Upper[i])
		linalg.Scale(a.Lower[i], -1, phi.Lower[i])
	}

	// Open boundaries at the contact temperature, computed from the bare
	// lead blocks (the semi-infinite contacts stay in equilibrium, so the
	// boundary is independent of the scattering self-energies and can be
	// cached across iterations, §7.1.2).
	tBC := s.Trace.Begin()
	left, err := s.BC.Get(2, iq, m, func() (*bc.Result, error) {
		return bc.SurfaceGF(a.Diag[0].Clone(), a.Lower[0], 0, 0)
	})
	if err != nil {
		return nil, fmt.Errorf("left phonon boundary: %w", err)
	}
	right, err := s.BC.Get(3, iq, m, func() (*bc.Result, error) {
		return bc.SurfaceGF(a.Diag[nb-1].Clone(), a.Upper[nb-2], 0, 0)
	})
	if err != nil {
		return nil, fmt.Errorf("right phonon boundary: %w", err)
	}
	s.Trace.End(s.TraceRank, sc.track, "bc", "bc/ph", iq, m, tBC)
	linalg.AXPY(a.Diag[0], -1, left.SigmaR)
	linalg.AXPY(a.Diag[nb-1], -1, right.SigmaR)

	// Scatter the retarded scattering self-energy Πᴿ = (Π> − Π<)/2 into A:
	// per-atom diagonal blocks plus neighbour blocks (same-slab neighbours
	// land inside the slab diagonal; cross-slab neighbours in Upper/Lower).
	s.scatterPiRetarded(a, iq, m)

	// Equilibrium contacts: Π<_B = −i·n_B·Γ, Π>_B = −i·(n_B+1)·Γ. The
	// scratch injection blocks arrive zeroed.
	n := device.BoseEinstein(omega, p.TC)
	linalg.AXPY(sigL[0], complex(0, -n), left.Gamma)
	linalg.AXPY(sigG[0], complex(0, -(n+1)), left.Gamma)
	linalg.AXPY(sigL[nb-1], complex(0, -n), right.Gamma)
	linalg.AXPY(sigG[nb-1], complex(0, -(n+1)), right.Gamma)
	s.scatterPiInjections(sigL, sigG, iq, m)

	tRGF := s.Trace.Begin()
	sol, err := sc.solveRGF(a, sigL, sigG)
	if err != nil {
		return nil, err
	}
	s.Trace.End(s.TraceRank, sc.track, "rgf", "rgf/ph", iq, m, tRGF)

	// Harvest D≷ into the 6-D tensors: diagonal slot plus Nb neighbours.
	rows := p.AtomsPerSlab()
	const n3 = device.N3D
	for at := 0; at < p.Na; at++ {
		sa := s.Dev.SlabOf[at]
		ra := (at - sa*rows) * n3
		copyWindow(s.DL.Block(iq, m-1, at, 0), sol.GL[sa], ra, ra, n3)
		copyWindow(s.DG.Block(iq, m-1, at, 0), sol.GG[sa], ra, ra, n3)
		for slot, b := range s.Dev.Neigh[at] {
			sb := s.Dev.SlabOf[b]
			rb := (b - sb*rows) * n3
			var srcL, srcG *linalg.Matrix
			var r0, c0 int
			switch {
			case sb == sa:
				srcL, srcG, r0, c0 = sol.GL[sa], sol.GG[sa], ra, rb
			case sb == sa+1:
				srcL, srcG, r0, c0 = sol.GLUpper[sa], sol.GGUpper[sa], ra, rb
			default: // sb == sa-1
				srcL, srcG, r0, c0 = sol.GLLower[sb], sol.GGLower[sb], ra, rb
			}
			copyWindow(s.DL.Block(iq, m-1, at, 1+slot), srcL, r0, c0, n3)
			copyWindow(s.DG.Block(iq, m-1, at, 1+slot), srcG, r0, c0, n3)
		}
	}

	res := &PhononPointResult{
		InterfaceEnergy: make([]float64, nb-1),
		DOS:             make([]float64, p.Na),
		Occ:             make([]float64, p.Na),
	}
	// Contact heat current (Meir-Wingreen form for phonons).
	res.EnergyContactL = phononContactCurrent(left.Gamma, n, sol.GL[0], sol.GG[0])
	// Interface heat flux, rightward-positive. The phonon energy-current
	// operator on the ω²-axis Green's function carries the opposite sign
	// to the electron particle-current form (the flux involves the
	// velocity u̇ ~ iω·u rather than the density):
	// JQ_{i→i+1} = −2·Re Tr[Φ_{i,i+1}·D<_{i+1,i}]. Validated by the
	// outward-from-hot-spot flow in the self-heating tests.
	for i := 0; i+1 < nb; i++ {
		res.InterfaceEnergy[i] = -2 * realTraceMul(phi.Upper[i], sol.GLLower[i])
	}
	// Local spectral weight and occupation for the temperature map:
	// dos_a = −2·Im tr Dᴿ_aa, occ_a = −Im tr D<_aa = n_eff·dos_a.
	for at := 0; at < p.Na; at++ {
		sa := s.Dev.SlabOf[at]
		ra := (at - sa*rows) * n3
		var trR, trL complex128
		for d := 0; d < n3; d++ {
			trR += sol.GR[sa].At(ra+d, ra+d)
			trL += sol.GL[sa].At(ra+d, ra+d)
		}
		res.DOS[at] = -2 * imag(trR)
		res.Occ[at] = -imag(trL)
	}
	return res, nil
}

// scatterPiRetarded adds Πᴿ_S = (Π> − Π<)/2 blocks into the assembled A.
func (s *PointSolver) scatterPiRetarded(a *blocktri.Matrix, iq, m int) {
	p := s.Dev.P
	rows := p.AtomsPerSlab()
	const n3 = device.N3D
	addBlock := func(dst *linalg.Matrix, r0, c0 int, pl, pg []complex128) {
		for r := 0; r < n3; r++ {
			for c := 0; c < n3; c++ {
				dst.Set(r0+r, c0+c, dst.At(r0+r, c0+c)-(pg[r*n3+c]-pl[r*n3+c])/2)
			}
		}
	}
	for at := 0; at < p.Na; at++ {
		sa := s.Dev.SlabOf[at]
		ra := (at - sa*rows) * n3
		addBlock(a.Diag[sa], ra, ra, s.PiL.Block(iq, m-1, at, 0), s.PiG.Block(iq, m-1, at, 0))
		for slot, b := range s.Dev.Neigh[at] {
			sb := s.Dev.SlabOf[b]
			rb := (b - sb*rows) * n3
			pl := s.PiL.Block(iq, m-1, at, 1+slot)
			pg := s.PiG.Block(iq, m-1, at, 1+slot)
			switch {
			case sb == sa:
				addBlock(a.Diag[sa], ra, rb, pl, pg)
			case sb == sa+1:
				addBlock(a.Upper[sa], ra, rb, pl, pg)
			default: // sb == sa-1
				addBlock(a.Lower[sb], ra, rb, pl, pg)
			}
		}
	}
}

// scatterPiInjections adds the Π≷_S blocks into the block-diagonal RGF
// injections. Same-slab neighbour blocks are included; the few cross-slab
// injection blocks are outside the block-diagonal form the lesser
// recursion consumes and are dropped (see DESIGN.md §5).
func (s *PointSolver) scatterPiInjections(sigL, sigG []*linalg.Matrix, iq, m int) {
	p := s.Dev.P
	rows := p.AtomsPerSlab()
	const n3 = device.N3D
	add := func(dst *linalg.Matrix, r0, c0 int, src []complex128) {
		for r := 0; r < n3; r++ {
			for c := 0; c < n3; c++ {
				dst.Set(r0+r, c0+c, dst.At(r0+r, c0+c)+src[r*n3+c])
			}
		}
	}
	for at := 0; at < p.Na; at++ {
		sa := s.Dev.SlabOf[at]
		ra := (at - sa*rows) * n3
		add(sigL[sa], ra, ra, s.PiL.Block(iq, m-1, at, 0))
		add(sigG[sa], ra, ra, s.PiG.Block(iq, m-1, at, 0))
		for slot, b := range s.Dev.Neigh[at] {
			if s.Dev.SlabOf[b] != sa {
				continue
			}
			rb := (b - sa*rows) * n3
			add(sigL[sa], ra, rb, s.PiL.Block(iq, m-1, at, 1+slot))
			add(sigG[sa], ra, rb, s.PiG.Block(iq, m-1, at, 1+slot))
		}
	}
}

// phononContactCurrent computes Tr[Π<_c·D> − Π>_c·D<] with
// Π<_c = −i·n·Γ, Π>_c = −i·(n+1)·Γ:
// = Re{ −i·Tr[Γ·(n·D> − (n+1)·D<)] }.
func phononContactCurrent(gamma *linalg.Matrix, n float64, dl, dg *linalg.Matrix) float64 {
	sz := gamma.Rows
	var tr complex128
	for r := 0; r < sz; r++ {
		for c := 0; c < sz; c++ {
			tr += gamma.At(r, c) * (complex(n, 0)*dg.At(c, r) - complex(n+1, 0)*dl.At(c, r))
		}
	}
	return real(complex(0, -1) * tr)
}

// copyWindow copies an n×n window at (r0, c0) of src into dst (row-major).
func copyWindow(dst []complex128, src *linalg.Matrix, r0, c0, n int) {
	for r := 0; r < n; r++ {
		copy(dst[r*n:(r+1)*n], src.Data[(r0+r)*src.Cols+c0:(r0+r)*src.Cols+c0+n])
	}
}
