package negf

import (
	"errors"
	"testing"

	"repro/internal/device"
	"repro/internal/sse"
)

// Disorder-ensemble extension of the physics-invariant suite: current
// conservation and the G≷ anti-Hermitian identity are properties of the
// NEGF equations, not of the clean homogeneous device — they must hold
// for every disorder realization. Disorder lives entirely in H (elastic,
// contained in the Hamiltonian), so the documented clean-device bounds
// apply unchanged: the η leak and the SCBA residual set the conservation
// tolerance, and the boundary injections stay exactly anti-Hermitian.

// testProfile is a moderately disordered profile: a band-offset step, a
// gate well, substitutional doping, and bond strain — every mechanism
// the zoo composes, at amplitudes that keep the test structure in the
// same transport regime as the clean device.
func testProfile() *device.Profile {
	return &device.Profile{
		Regions: []device.Region{{From: 2, To: 3, Offset: 0.05}},
		Gates:   []device.Gate{{Center: 1.5, Width: 1.0, Depth: 0.04}},
		Doping:  &device.Doping{Fraction: 0.2, Shift: -0.06},
		Strain:  &device.Strain{Amplitude: 0.03},
	}
}

// disordered builds the test device and lowers one disorder realization
// onto it.
func disordered(t *testing.T, p device.Params, seed uint64) *device.Device {
	t.Helper()
	dev := device.MustBuild(p)
	if err := testProfile().Apply(dev, seed); err != nil {
		t.Fatal(err)
	}
	return dev
}

// TestCurrentConservationDisorderedBallistic: the continuity identity
// must survive every realization — disorder scatters elastically inside
// H, it does not create or absorb carriers.
func TestCurrentConservationDisorderedBallistic(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 4} {
		dev := disordered(t, testParams(), seed)
		s := New(dev, DefaultOptions())
		if err := s.GFPhase(); err != nil {
			t.Fatal(err)
		}
		if r := conservationResidual(&s.Obs); r > ballisticConservTol {
			t.Errorf("seed %d: interface currents deviate by %.3g (tol %g): I_L=%g",
				seed, r, ballisticConservTol, s.Obs.CurrentL)
		}
	}
}

// TestGAntiHermitianDisorderedBallistic: the boundary injections are
// anti-Hermitian regardless of the Hamiltonian they dress, so the
// identity stays at machine rounding for every realization.
func TestGAntiHermitianDisorderedBallistic(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 4} {
		dev := disordered(t, testParams(), seed)
		s := New(dev, DefaultOptions())
		if err := s.GFPhase(); err != nil {
			t.Fatal(err)
		}
		if r := antiHermResidual(s); r > antiHermBallistic {
			t.Errorf("seed %d: ballistic G≷ anti-Hermiticity violated: %.3g (tol %g)",
				seed, r, antiHermBallistic)
		}
	}
}

// TestConservationDisorderedSCBA: with electron-phonon scattering on top
// of the disorder, both invariants must hold at the documented SCBA
// bounds through the self-consistent loop.
func TestConservationDisorderedSCBA(t *testing.T) {
	for _, seed := range []uint64{11, 12} {
		p := testParams()
		p.Coupling = 0.1
		dev := disordered(t, p, seed)
		opts := DefaultOptions()
		opts.Kernel = sse.DaCe{}
		s := New(dev, opts)
		if _, err := s.Run(); err != nil && !errors.Is(err, ErrNotConverged) {
			t.Fatal(err)
		}
		if r := conservationResidual(&s.Obs); r > scbaConservTol {
			t.Errorf("seed %d: SCBA interface currents deviate by %.3g (tol %g)",
				seed, r, scbaConservTol)
		}
		if r := antiHermResidual(s); r > antiHermFP64 {
			t.Errorf("seed %d: SCBA G≷ anti-Hermiticity violated: %.3g (tol %g)",
				seed, r, antiHermFP64)
		}
	}
}
