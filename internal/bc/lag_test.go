// Iteration-lag and concurrency contract of the boundary cache, tested
// from outside the package: these tests drive the real solvers (negf,
// sdfg), which import bc, so they live in bc_test.
package bc_test

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/bc"
	"repro/internal/device"
	"repro/internal/linalg"
	"repro/internal/negf"
	"repro/internal/sdfg"
	"repro/internal/sse"
)

// TestIterationLagTolerance is the physical license of the pipelined
// schedule: the Sancho-Rubio boundary self-energy depends only on the
// device and the (kz, E) point, never on the scattering state Σ, so a
// boundary result computed at iteration n and reused at n+1 (the
// "stale-by-one" speculation of SchedulePipeline) is not approximately
// right — it is the same result. The cached run must therefore track
// the recompute-every-iteration run within 1e-12 on every iteration's
// current, and converge in the same number of iterations.
func TestIterationLagTolerance(t *testing.T) {
	p := device.TestParams(12, 3, 2)
	p.NE = 12
	p.Nomega = 3
	dev, err := device.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	run := func(mode bc.Mode) *negf.Solver {
		o := negf.DefaultOptions()
		o.Kernel = sse.DaCe{}
		o.CacheMode = mode
		o.MaxIter = 6
		o.Tol = 1e-300
		s := negf.New(dev, o)
		if _, err := s.Run(); !errors.Is(err, negf.ErrNotConverged) {
			t.Fatalf("mode %v: %v", mode, err)
		}
		return s
	}
	cached := run(bc.CacheBC)
	fresh := run(bc.NoCache)
	if len(cached.IterTrace) != len(fresh.IterTrace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(cached.IterTrace), len(fresh.IterTrace))
	}
	for i := range cached.IterTrace {
		c, f := cached.IterTrace[i].Current, fresh.IterTrace[i].Current
		if rel := math.Abs(c-f) / math.Abs(f); rel > 1e-12 {
			t.Errorf("iter %d: cached current %.17g vs fresh %.17g (rel %.3g)", i, c, f, rel)
		}
	}
	if hits, misses := cached.BC.Stats(); hits == 0 || misses == 0 {
		t.Errorf("cache never exercised the lag: hits=%d misses=%d", hits, misses)
	}
}

// TestCacheRaceUnderPipelinedExecutor runs the cache under the same
// access pattern the pipelined window graph produces — per-point BC
// nodes of two overlapping iterations on a multi-worker executor, where
// iteration k+1's lookups race iteration k's inserts on neighbouring
// points — and checks (under -race) that every lookup of one key
// returns one coherent result. Concurrent misses of the same key may
// both compute; last write wins and both callers get a valid result.
func TestCacheRaceUnderPipelinedExecutor(t *testing.T) {
	const points = 16
	cache := bc.NewCache(bc.CacheBC)
	mk := func(ie int) func() (*bc.Result, error) {
		return func() (*bc.Result, error) {
			m := linalg.Eye(2)
			m.Data[0] = complex(float64(ie), 0)
			return &bc.Result{Surface: m, SigmaR: m, Gamma: m}, nil
		}
	}
	var mu sync.Mutex
	got := map[int][]*bc.Result{}
	g := sdfg.New()
	prev := make([]sdfg.NodeID, points)
	for k := 0; k < 3; k++ { // three overlapping "iterations"
		for i := 0; i < points; i++ {
			ie := i
			spec := sdfg.Spec{Label: fmt.Sprintf("bc/%d/%d", k, ie), Run: func() error {
				r, err := cache.Get(0, 0, ie, mk(ie))
				if err != nil {
					return err
				}
				mu.Lock()
				got[ie] = append(got[ie], r)
				mu.Unlock()
				return nil
			}}
			if k == 0 {
				prev[i] = g.Add(spec)
			} else {
				// The pipeline chains a point's BC nodes across
				// iterations but lets different points race freely.
				prev[i] = g.Add(spec, prev[i])
			}
		}
	}
	ex := sdfg.NewExecutor(4)
	if _, err := ex.Run(g); err != nil {
		t.Fatal(err)
	}
	for ie, rs := range got {
		if len(rs) != 3 {
			t.Fatalf("point %d resolved %d times, want 3", ie, len(rs))
		}
		for _, r := range rs {
			if real(r.Surface.Data[0]) != float64(ie) {
				t.Errorf("point %d returned another point's boundary", ie)
			}
		}
		// After the first resolution the entry is warm: later iterations
		// must share the cached pointer (that is the iteration lag).
		if rs[1] != rs[2] {
			t.Errorf("point %d: warm lookups disagree", ie)
		}
	}
	hits, misses := cache.Stats()
	if misses != points {
		t.Errorf("misses = %d, want %d (one per point)", misses, points)
	}
	if hits != 2*points {
		t.Errorf("hits = %d, want %d (two warm iterations)", hits, 2*points)
	}
}
