package bc

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

// leadBlocks builds a well-behaved periodic lead: Hermitian onsite block
// h00 and inter-cell coupling t, returning d00 = (E+iη)I − h00 and τ = −t.
func leadBlocks(rng *rand.Rand, n int, e, eta float64) (d00, tau *linalg.Matrix) {
	h00 := linalg.New(n, n)
	for i := range h00.Data {
		h00.Data[i] = complex(0.3*rng.NormFloat64(), 0.3*rng.NormFloat64())
	}
	linalg.Hermitize(h00, h00)
	t := linalg.New(n, n)
	for i := range t.Data {
		t.Data[i] = complex(0.2*rng.NormFloat64(), 0.2*rng.NormFloat64())
	}
	d00 = linalg.Scale(linalg.New(n, n), -1, h00)
	for i := 0; i < n; i++ {
		d00.Set(i, i, d00.At(i, i)+complex(e, eta))
	}
	tau = linalg.Scale(linalg.New(n, n), -1, t)
	return d00, tau
}

func TestSurfaceGFSelfConsistency(t *testing.T) {
	// The surface GF satisfies gs = (d00 − τ·gs·τᴴ)⁻¹, i.e.
	// (d00 − τ·gs·τᴴ)·gs = I. This is the defining fixed point.
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8} {
		d00, tau := leadBlocks(rng, n, 0.5, 1e-3)
		res, err := SurfaceGF(d00, tau, 0, 0)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		eff := linalg.Sub(linalg.New(n, n), d00, linalg.Mul3(tau, res.Surface, tau.H()))
		prod := linalg.Mul(eff, res.Surface)
		if d := linalg.MaxDiff(prod, linalg.Eye(n)); d > 1e-7 {
			t.Fatalf("n=%d: fixed point violated by %g after %d iters", n, d, res.Iters)
		}
	}
}

func TestSigmaFromSurface(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 4
	d00, tau := leadBlocks(rng, n, 0.2, 1e-3)
	res, err := SurfaceGF(d00, tau, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := linalg.Mul3(tau, res.Surface, tau.H())
	if linalg.MaxDiff(res.SigmaR, want) > 1e-12 {
		t.Fatal("SigmaR != τ·gs·τᴴ")
	}
}

func TestGammaPositiveSemidefinite(t *testing.T) {
	// Γ = i(Σᴿ − Σᴬ) is the contact broadening; physically it must be
	// positive semidefinite (it is a rate). Check Rayleigh quotients.
	rng := rand.New(rand.NewSource(3))
	n := 6
	d00, tau := leadBlocks(rng, n, 0.0, 1e-3)
	res, err := SurfaceGF(d00, tau, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if linalg.MaxDiff(res.Gamma, res.Gamma.H()) > 1e-9 {
		t.Fatal("Γ not Hermitian")
	}
	for trial := 0; trial < 20; trial++ {
		v := linalg.New(n, 1)
		for i := 0; i < n; i++ {
			v.Set(i, 0, complex(rng.NormFloat64(), rng.NormFloat64()))
		}
		q := linalg.MatMul(v, linalg.ConjTrans, linalg.Mul(res.Gamma, v), linalg.NoTrans)
		if real(q.At(0, 0)) < -1e-9 {
			t.Fatalf("Γ has negative Rayleigh quotient %g", real(q.At(0, 0)))
		}
	}
}

func TestSurfaceGFCausality(t *testing.T) {
	// Retarded GF: the imaginary part of the diagonal must be negative
	// (spectral function = −2·Im gs_ii ≥ 0).
	rng := rand.New(rand.NewSource(4))
	n := 5
	d00, tau := leadBlocks(rng, n, 0.3, 1e-3)
	res, err := SurfaceGF(d00, tau, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if im := imag(res.Surface.At(i, i)); im > 1e-12 {
			t.Fatalf("Im gs[%d,%d] = %g > 0 violates causality", i, i, im)
		}
	}
}

func TestDecoupledLeadLimit(t *testing.T) {
	// With τ = 0 the lead decouples: gs = d00⁻¹ exactly, Σᴿ = 0.
	rng := rand.New(rand.NewSource(5))
	n := 3
	d00, _ := leadBlocks(rng, n, 0.4, 1e-3)
	tau := linalg.New(n, n)
	res, err := SurfaceGF(d00, tau, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if linalg.MaxDiff(res.Surface, linalg.MustInverse(d00)) > 1e-10 {
		t.Fatal("decoupled surface GF should equal the block inverse")
	}
	if res.SigmaR.FrobNorm() != 0 {
		t.Fatal("decoupled Σᴿ should vanish")
	}
	if res.Iters != 1 {
		t.Fatalf("decoupled lead should converge immediately, took %d", res.Iters)
	}
}

func TestNoConvergenceWithoutBroadening(t *testing.T) {
	// η = 0 inside a band: the decimation coupling decays only
	// algebraically and should hit the iteration cap. Use a 1x1 chain at
	// the band center where the surface GF is purely imaginary.
	d00 := linalg.New(1, 1)
	d00.Set(0, 0, 0) // E = 0, no broadening, onsite 0
	tau := linalg.New(1, 1)
	tau.Set(0, 0, -0.5)
	_, err := SurfaceGF(d00, tau, 1e-14, 8)
	if err == nil {
		t.Fatal("expected convergence failure at zero broadening")
	}
}

func TestAnalytic1DChain(t *testing.T) {
	// Semi-infinite 1-D chain, onsite 0, hopping t: the surface GF is
	// gs(E) = (E − sqrt(E² − 4t²)) / (2t²) with the branch Im gs < 0.
	// Outside the band (|E| > 2|t|) gs is real.
	tt := 0.5
	e := 1.5 // outside band edge 1.0? band is |E|<2t=1.0, so 1.5 is outside
	d00 := linalg.New(1, 1)
	d00.Set(0, 0, complex(e, 1e-9))
	tau := linalg.New(1, 1)
	tau.Set(0, 0, complex(-tt, 0))
	res, err := SurfaceGF(d00, tau, 1e-14, 100)
	if err != nil {
		t.Fatal(err)
	}
	disc := math.Sqrt(e*e - 4*tt*tt)
	want := (e - disc) / (2 * tt * tt)
	got := real(res.Surface.At(0, 0))
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("1-D chain surface GF = %g, want %g", got, want)
	}
	// Inside the band: |Im gs| = sqrt(4t²−E²)/(2t²).
	e = 0.3
	d00.Set(0, 0, complex(e, 1e-9))
	res, err = SurfaceGF(d00, tau, 1e-14, 200)
	if err != nil {
		t.Fatal(err)
	}
	wantIm := -math.Sqrt(4*tt*tt-e*e) / (2 * tt * tt)
	if math.Abs(imag(res.Surface.At(0, 0))-wantIm) > 1e-3 {
		t.Fatalf("in-band Im gs = %g, want %g", imag(res.Surface.At(0, 0)), wantIm)
	}
}

func TestShapeValidation(t *testing.T) {
	if _, err := SurfaceGF(linalg.New(2, 2), linalg.New(3, 3), 0, 0); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestCacheModes(t *testing.T) {
	calls := 0
	compute := func() (*Result, error) {
		calls++
		return &Result{}, nil
	}
	c := NewCache(CacheBC)
	for i := 0; i < 5; i++ {
		if _, err := c.Get(0, 1, 2, compute); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 1 {
		t.Fatalf("CacheBC recomputed %d times", calls)
	}
	hits, misses := c.Stats()
	if hits != 4 || misses != 1 {
		t.Fatalf("stats = %d/%d", hits, misses)
	}

	calls = 0
	nc := NewCache(NoCache)
	for i := 0; i < 5; i++ {
		if _, err := nc.Get(0, 1, 2, compute); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 5 {
		t.Fatalf("NoCache should recompute every time, got %d", calls)
	}
}

func TestCachePropagatesError(t *testing.T) {
	boom := errors.New("boom")
	c := NewCache(CacheBC)
	if _, err := c.Get(0, 0, 0, func() (*Result, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatal("compute error not propagated")
	}
}
