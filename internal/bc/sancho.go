// Package bc computes the open-boundary self-energies that connect the
// finite simulation domain to semi-infinite contacts — the "Boundary
// Conditions" kernel of the paper (first row of Table 3, cached in the
// "Cache BC" modes of Fig. 9).
//
// The paper evaluates a contour integral on the GPUs; this package uses the
// Sancho–Rubio decimation iteration, the standard CPU algorithm computing
// the same object: the retarded surface Green's function gs of a periodic
// semi-infinite lead, from which the boundary self-energy Σᴿ_B = τ·gs·τᴴ
// follows. Both electrons (E·S − H blocks) and phonons (ω²·I − Φ blocks)
// use the same routine.
package bc

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/linalg"
)

// DefaultMaxIter bounds the decimation iterations. Each iteration doubles
// the effective lead depth, so 60 iterations cover ~2^60 periods.
const DefaultMaxIter = 60

// DefaultTol is the convergence threshold on the decimation coupling norm.
const DefaultTol = 1e-10

// ErrNoConvergence is returned when decimation fails to converge, which in
// practice signals a vanishing imaginary part (η too small).
var ErrNoConvergence = errors.New("bc: Sancho-Rubio decimation did not converge")

// Result bundles the contact objects the GF phase needs.
type Result struct {
	Surface *linalg.Matrix // gs: retarded surface Green's function of the lead
	SigmaR  *linalg.Matrix // Σᴿ_B = τ·gs·τᴴ: retarded boundary self-energy
	Gamma   *linalg.Matrix // Γ = i(Σᴿ − Σᴿᴴ): broadening (positive semidefinite)
	Iters   int            // decimation iterations used
}

// SurfaceGF runs Sancho–Rubio decimation for a semi-infinite lead whose
// onsite block is d00 (already including the energy: E·S − H₀₀ or ω²·I − Φ₀₀,
// with +iη broadening) and whose inter-cell coupling is tau (the
// lead-period coupling; for the left contact this is the Lower block, for
// the right the Upper block of the device edge).
//
// Iteration (Sancho, Sancho & Rubio 1985): with ε := d00, εs := d00,
// α := tau, β := tauᴴ, repeat
//
//	g    = ε⁻¹
//	εs  −= α·g·β
//	ε   −= α·g·β + β·g·α
//	α    = α·g·α
//	β    = β·g·β
//
// until ‖α‖ is negligible; then gs = εs⁻¹.
func SurfaceGF(d00, tau *linalg.Matrix, tol float64, maxIter int) (*Result, error) {
	if !d00.IsSquare() || !tau.IsSquare() || d00.Rows != tau.Rows {
		return nil, fmt.Errorf("bc: incompatible blocks %dx%d and %dx%d", d00.Rows, d00.Cols, tau.Rows, tau.Cols)
	}
	if tol <= 0 {
		tol = DefaultTol
	}
	if maxIter <= 0 {
		maxIter = DefaultMaxIter
	}
	n := d00.Rows
	eps := d00.Clone()
	epsS := d00.Clone()
	alpha := tau.Clone()
	beta := tau.H()

	for it := 1; it <= maxIter; it++ {
		g, err := linalg.Inverse(eps)
		if err != nil {
			return nil, fmt.Errorf("bc: singular bulk block at iteration %d: %w", it, err)
		}
		agb := linalg.Mul3(alpha, g, beta)
		bga := linalg.Mul3(beta, g, alpha)
		linalg.AXPY(epsS, -1, agb)
		linalg.AXPY(eps, -1, agb)
		linalg.AXPY(eps, -1, bga)
		alpha = linalg.Mul3(alpha, g, alpha)
		beta = linalg.Mul3(beta, g, beta)
		if alpha.FrobNorm() < tol && beta.FrobNorm() < tol {
			gs, err := linalg.Inverse(epsS)
			if err != nil {
				return nil, fmt.Errorf("bc: singular surface block: %w", err)
			}
			sig := linalg.Mul3(tau, gs, tau.H())
			gamma := gammaOf(sig)
			return &Result{Surface: gs, SigmaR: sig, Gamma: gamma, Iters: it}, nil
		}
		_ = n
	}
	return nil, ErrNoConvergence
}

// gammaOf computes Γ = i(Σ − Σᴴ).
func gammaOf(sigma *linalg.Matrix) *linalg.Matrix {
	g := linalg.Sub(linalg.New(sigma.Rows, sigma.Cols), sigma, sigma.H())
	return linalg.Scale(g, 1i, g)
}

// Cache memoizes boundary results per (contact, momentum, energy/frequency)
// grid point — the compute/memory trade-off of §7.1.2. Mode selects how
// much is retained between self-consistent iterations. The cache is safe
// for concurrent use: the parallel GF phase and the task-graph scheduler
// (internal/sdfg) hit it from many point solves at once. The compute
// callback runs outside the lock, so distinct points never serialize;
// concurrent misses of the same key both compute and the last write wins
// (the result is deterministic, so both are identical).
type Cache struct {
	mode    Mode
	mu      sync.Mutex
	entries map[key]*Result
	hits    int
	misses  int
}

// Mode enumerates the §7.1.2 execution modes of the GF phase.
type Mode int

const (
	// NoCache recomputes boundary conditions on every access.
	NoCache Mode = iota
	// CacheBC retains boundary-condition results across iterations.
	CacheBC
)

func (m Mode) String() string {
	if m == NoCache {
		return "No Cache"
	}
	return "Cache BC"
}

type key struct {
	contact int // 0 = left/source, 1 = right/drain
	ik, ie  int
}

// NewCache returns a cache operating in the given mode.
func NewCache(mode Mode) *Cache {
	return &Cache{mode: mode, entries: make(map[key]*Result)}
}

// Get returns the cached boundary result or computes it with compute().
func (c *Cache) Get(contact, ik, ie int, compute func() (*Result, error)) (*Result, error) {
	k := key{contact, ik, ie}
	c.mu.Lock()
	if c.mode == CacheBC {
		if r, ok := c.entries[k]; ok {
			c.hits++
			c.mu.Unlock()
			return r, nil
		}
	}
	c.misses++
	c.mu.Unlock()
	r, err := compute()
	if err != nil {
		return nil, err
	}
	if c.mode == CacheBC {
		c.mu.Lock()
		c.entries[k] = r
		c.mu.Unlock()
	}
	return r, nil
}

// Stats reports cache hits and misses (for the Fig. 9 cache-mode study).
func (c *Cache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
