package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestElectronIndexing(t *testing.T) {
	e := NewElectron(2, 3, 4, 2)
	if len(e.Data) != 2*3*4*4 {
		t.Fatalf("data length %d", len(e.Data))
	}
	// Every (ik, ie, a) block is distinct and contiguous.
	seen := make(map[int]bool)
	for ik := 0; ik < 2; ik++ {
		for ie := 0; ie < 3; ie++ {
			for a := 0; a < 4; a++ {
				o := e.Index(ik, ie, a)
				if o%e.BlockLen() != 0 {
					t.Fatal("block not aligned")
				}
				if seen[o] {
					t.Fatal("blocks overlap")
				}
				seen[o] = true
			}
		}
	}
	if len(seen) != 24 {
		t.Fatalf("expected 24 blocks, got %d", len(seen))
	}
}

func TestElectronBlockIsLiveView(t *testing.T) {
	e := NewElectron(1, 2, 2, 2)
	b := e.Block(0, 1, 1)
	b[3] = 7 + 2i
	if e.Mat(0, 1, 1).At(1, 1) != 7+2i {
		t.Fatal("Block should alias the tensor storage")
	}
}

func TestElectronMixAndClone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewElectron(2, 2, 2, 2)
	b := NewElectron(2, 2, 2, 2)
	for i := range a.Data {
		a.Data[i] = complex(rng.NormFloat64(), 0)
		b.Data[i] = complex(rng.NormFloat64(), 0)
	}
	orig := a.Clone()
	a.Mix(b, 0.25)
	for i := range a.Data {
		want := 0.25*b.Data[i] + 0.75*orig.Data[i]
		if a.Data[i] != want {
			t.Fatal("Mix arithmetic wrong")
		}
	}
	// Clone must not alias.
	orig.Data[0] = 99
	if a.Data[0] == 99 {
		t.Fatal("Clone aliases")
	}
}

func TestElectronMixFullReplacement(t *testing.T) {
	a := NewElectron(1, 1, 1, 1)
	b := NewElectron(1, 1, 1, 1)
	b.Data[0] = 5
	a.Mix(b, 1.0)
	if a.Data[0] != 5 {
		t.Fatal("mix=1 should replace")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := NewElectron(1, 1, 2, 1)
	b := NewElectron(1, 1, 2, 1)
	b.Data[1] = 3 + 4i
	if d := a.MaxAbsDiff(b); d != 5 {
		t.Fatalf("MaxAbsDiff = %g, want 5", d)
	}
}

func TestPhononIndexing(t *testing.T) {
	p := NewPhonon(2, 3, 4, 5, 3)
	if len(p.Data) != 2*3*4*5*9 {
		t.Fatalf("data length %d", len(p.Data))
	}
	// Slot blocks within one atom are consecutive.
	if p.Index(0, 0, 0, 1)-p.Index(0, 0, 0, 0) != 9 {
		t.Fatal("slots not consecutive")
	}
	// Block view aliases storage.
	p.Block(1, 2, 3, 4)[8] = 2i
	if p.Mat(1, 2, 3, 4).At(2, 2) != 2i {
		t.Fatal("phonon Block should alias")
	}
}

func TestPhononZeroCloneMix(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := NewPhonon(1, 2, 2, 2, 3)
	for i := range p.Data {
		p.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	c := p.Clone()
	p.Zero()
	for _, v := range p.Data {
		if v != 0 {
			t.Fatal("Zero left residue")
		}
	}
	p.Mix(c, 0.5)
	for i := range p.Data {
		if p.Data[i] != 0.5*c.Data[i] {
			t.Fatal("Mix into zero tensor wrong")
		}
	}
}

func TestBytesAccounting(t *testing.T) {
	e := NewElectron(2, 3, 4, 5)
	if e.Bytes() != int64(2*3*4*25)*16 {
		t.Fatalf("electron Bytes = %d", e.Bytes())
	}
	p := NewPhonon(2, 3, 4, 5, 3)
	if p.Bytes() != int64(2*3*4*5*9)*16 {
		t.Fatalf("phonon Bytes = %d", p.Bytes())
	}
}

func TestShapeString(t *testing.T) {
	p := NewPhonon(1, 2, 3, 4, 3)
	if p.ShapeString() != "[1 2 3 4 3 3]" {
		t.Fatalf("ShapeString = %q", p.ShapeString())
	}
}

func TestIndexRoundTripProperty(t *testing.T) {
	e := NewElectron(3, 5, 7, 2)
	f := func(ik, ie, a uint8) bool {
		i, j, k := int(ik)%3, int(ie)%5, int(a)%7
		o := e.Index(i, j, k)
		// Decode the flat offset back.
		blk := o / e.BlockLen()
		return blk == (i*e.NE+j)*e.Na+k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMixShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewElectron(1, 1, 1, 1).Mix(NewElectron(1, 1, 1, 2), 0.5)
}
