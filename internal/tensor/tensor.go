// Package tensor defines the multi-dimensional Green's-function and
// self-energy containers exchanged between the GF and SSE phases:
// the 5-D electron tensors of shape [Nkz, NE, Na, Norb, Norb] and the 6-D
// phonon tensors of shape [Nqz, Nω, Na, Nb+1, N3D, N3D] described in §4 of
// the paper. Storage is flat with the orbital block contiguous, so a block
// is a zero-copy slice view — the layout the DaCe data-layout
// transformations operate on.
package tensor

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// Electron is a 5-D tensor [Nkz, NE, Na, Norb, Norb] of complex values
// (G≷ or Σ≷ for electrons).
type Electron struct {
	Nkz, NE, Na, Norb int
	Data              []complex128
}

// NewElectron allocates a zeroed electron tensor.
func NewElectron(nkz, ne, na, norb int) *Electron {
	return &Electron{
		Nkz: nkz, NE: ne, Na: na, Norb: norb,
		Data: make([]complex128, nkz*ne*na*norb*norb),
	}
}

// BlockLen returns the length of one atom block (Norb²).
func (t *Electron) BlockLen() int { return t.Norb * t.Norb }

// Index returns the flat offset of block (ik, ie, a).
func (t *Electron) Index(ik, ie, a int) int {
	return ((ik*t.NE+ie)*t.Na + a) * t.BlockLen()
}

// Block returns the Norb² slice view of block (ik, ie, a).
func (t *Electron) Block(ik, ie, a int) []complex128 {
	o := t.Index(ik, ie, a)
	return t.Data[o : o+t.BlockLen()]
}

// Mat wraps block (ik, ie, a) as a matrix view (no copy).
func (t *Electron) Mat(ik, ie, a int) *linalg.Matrix {
	return linalg.FromSlice(t.Norb, t.Norb, t.Block(ik, ie, a))
}

// Plane returns the contiguous all-atom slice of one (kz, E) point — the
// unit of ownership the distributed decompositions move around.
func (t *Electron) Plane(ik, ie int) []complex128 {
	o := t.Index(ik, ie, 0)
	return t.Data[o : o+t.Na*t.BlockLen()]
}

// Zero clears the tensor.
func (t *Electron) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Clone deep-copies the tensor.
func (t *Electron) Clone() *Electron {
	c := NewElectron(t.Nkz, t.NE, t.Na, t.Norb)
	copy(c.Data, t.Data)
	return c
}

// Mix blends t := mix·src + (1−mix)·t, the linear self-consistency mixing.
func (t *Electron) Mix(src *Electron, mix float64) {
	if len(t.Data) != len(src.Data) {
		panic("tensor: Mix shape mismatch")
	}
	MixSlice(t.Data, src.Data, mix)
}

// MixSlice blends dst := mix·src + (1−mix)·dst elementwise — the one
// definition of the linear self-consistency mixing, shared by the tensor
// Mix methods and the distributed solver's per-plane mixing so the two
// paths stay arithmetically identical.
func MixSlice(dst, src []complex128, mix float64) {
	m := complex(mix, 0)
	om := complex(1-mix, 0)
	for i, v := range src {
		dst[i] = m*v + om*dst[i]
	}
}

// MaxAbsDiff returns the largest elementwise |t−o|.
func (t *Electron) MaxAbsDiff(o *Electron) float64 {
	if len(t.Data) != len(o.Data) {
		panic("tensor: MaxAbsDiff shape mismatch")
	}
	var mx float64
	for i := range t.Data {
		d := t.Data[i] - o.Data[i]
		if a := real(d)*real(d) + imag(d)*imag(d); a > mx {
			mx = a
		}
	}
	return math.Sqrt(mx)
}

// Bytes returns the tensor's payload size in bytes (complex128 = 16 B).
func (t *Electron) Bytes() int64 { return int64(len(t.Data)) * 16 }

// Phonon is a 6-D tensor [Nqz, Nω, Na, Nb+1, N3D, N3D] (D≷ or Π≷).
// Slot 0 of the neighbour axis holds the diagonal atom block (a, a);
// slot 1+s holds the coupling block (a, Neigh[a][s]).
type Phonon struct {
	Nqz, Nw, Na, NbP1, N3D int
	Data                   []complex128
}

// NewPhonon allocates a zeroed phonon tensor.
func NewPhonon(nqz, nw, na, nbp1, n3d int) *Phonon {
	return &Phonon{
		Nqz: nqz, Nw: nw, Na: na, NbP1: nbp1, N3D: n3d,
		Data: make([]complex128, nqz*nw*na*nbp1*n3d*n3d),
	}
}

// BlockLen returns N3D².
func (t *Phonon) BlockLen() int { return t.N3D * t.N3D }

// Index returns the flat offset of block (iq, iw, a, slot).
func (t *Phonon) Index(iq, iw, a, slot int) int {
	return (((iq*t.Nw+iw)*t.Na+a)*t.NbP1 + slot) * t.BlockLen()
}

// Block returns the N3D² slice view of block (iq, iw, a, slot).
func (t *Phonon) Block(iq, iw, a, slot int) []complex128 {
	o := t.Index(iq, iw, a, slot)
	return t.Data[o : o+t.BlockLen()]
}

// Mat wraps block (iq, iw, a, slot) as a matrix view.
func (t *Phonon) Mat(iq, iw, a, slot int) *linalg.Matrix {
	return linalg.FromSlice(t.N3D, t.N3D, t.Block(iq, iw, a, slot))
}

// Plane returns the contiguous all-atom slice of one (qz, ω) point
// (iw is the zero-based frequency index, m−1).
func (t *Phonon) Plane(iq, iw int) []complex128 {
	o := t.Index(iq, iw, 0, 0)
	return t.Data[o : o+t.Na*t.NbP1*t.BlockLen()]
}

// Zero clears the tensor.
func (t *Phonon) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Clone deep-copies the tensor.
func (t *Phonon) Clone() *Phonon {
	c := NewPhonon(t.Nqz, t.Nw, t.Na, t.NbP1, t.N3D)
	copy(c.Data, t.Data)
	return c
}

// Mix blends t := mix·src + (1−mix)·t.
func (t *Phonon) Mix(src *Phonon, mix float64) {
	if len(t.Data) != len(src.Data) {
		panic("tensor: Mix shape mismatch")
	}
	MixSlice(t.Data, src.Data, mix)
}

// Bytes returns the payload size in bytes.
func (t *Phonon) Bytes() int64 { return int64(len(t.Data)) * 16 }

// ShapeString formats tensor dimensions for diagnostics.
func (t *Phonon) ShapeString() string {
	return fmt.Sprintf("[%d %d %d %d %d %d]", t.Nqz, t.Nw, t.Na, t.NbP1, t.N3D, t.N3D)
}
