package qt

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/negf"
	"repro/internal/obs"
	"repro/internal/sse"
)

// IterStats is the unified per-iteration telemetry schema shared by the
// sequential and distributed solvers — the row type every report
// encoder and streaming consumer keys on. Fields that a solver does not
// measure stay zero: sequential runs move no bytes, and Compute/CommNs
// split only under the Overlap schedule.
type IterStats struct {
	Iter     int     `json:"iter"`
	Current  float64 `json:"current"`  // left-contact electron current (a.u.), global
	Residual float64 `json:"residual"` // relative change vs the previous iteration; 0 on the first (nothing to compare, kept JSON-safe)

	ElEnergyLoss float64 `json:"el_energy_loss"` // R_e: electron energy lost to the lattice
	PhEnergyGain float64 `json:"ph_energy_gain"` // R_ph: energy absorbed by the phonon bath

	SSE sse.Stats `json:"sse"` // tile/kernel arithmetic counters

	SSEBytes    int64   `json:"sse_bytes"`    // four-Alltoallv exchange traffic (wire volume under Mixed)
	ReduceBytes int64   `json:"reduce_bytes"` // observable/convergence reduction traffic
	SigmaErr    float64 `json:"sigma_err"`    // worst-rank Σ≷/Π≷ quantization deviation (error probe)
	// FallbackBlocks counts exchange segments shipped as verbatim fp64
	// under Mixed precision, summed over ranks (0 under FP64 and for
	// sequential runs; omitted from JSON then, keeping existing report
	// encodings byte-identical).
	FallbackBlocks int64 `json:"fallback_blocks,omitempty"`

	WallNs    int64 `json:"wall_ns"`    // measured iteration wall time (rank 0 for distributed)
	ComputeNs int64 `json:"compute_ns"` // rank-0 summed compute-task time (Overlap/Pipeline)
	CommNs    int64 `json:"comm_ns"`    // rank-0 summed communication-task time (Overlap/Pipeline)

	// Plan announces the resolved execution plan (Simulation.PlanString)
	// on the first streamed row of a distributed run; later rows leave it
	// empty — the plan cannot change mid-run.
	Plan string `json:"plan,omitempty"`
}

// residual sanitizes the solvers' relative change: the first iteration
// compares against NaN, which the unified (JSON-encodable) schema
// reports as 0.
func residual(rel float64) float64 {
	if math.IsNaN(rel) || math.IsInf(rel, 0) {
		return 0
	}
	return rel
}

// fromSequential maps the sequential solver's trace row into the
// unified schema.
func fromSequential(st negf.IterStats) IterStats {
	return IterStats{
		Iter: st.Iter, Current: st.Current, Residual: residual(st.RelChange),
		ElEnergyLoss: st.ElEnergyLoss, PhEnergyGain: st.PhEnergyGain,
		SSE: st.SSEStats, WallNs: st.WallNs,
	}
}

// fromDistributed maps the distributed solver's trace row into the
// unified schema.
func fromDistributed(st dist.IterStats) IterStats {
	return IterStats{
		Iter: st.Iter, Current: st.Current, Residual: residual(st.RelChange),
		ElEnergyLoss: st.ElEnergyLoss, PhEnergyGain: st.PhEnergyGain,
		SSE:      st.SSE,
		SSEBytes: st.SSEBytes, ReduceBytes: st.ReduceBytes, SigmaErr: st.SigmaErr,
		FallbackBlocks: st.FallbackBlocks,
		WallNs:         st.WallNs, ComputeNs: st.ComputeNs, CommNs: st.CommNs,
	}
}

// Result summarizes a finished (converged, capped, or cancelled) run.
type Result struct {
	// Converged reports whether the self-consistent loop reached the
	// configured tolerance within the iteration budget.
	Converged  bool `json:"converged"`
	Iterations int  `json:"iterations"`
	// Current is the source-contact electron current (a.u.).
	Current float64 `json:"current"`
	// MaxTemperature is the hottest lattice temperature (K) and HotSpot
	// its slab index — the Joule-heating signature of Fig. 1(d).
	MaxTemperature float64 `json:"max_temperature"`
	HotSpot        int     `json:"hot_spot"`
	// EnergyBalance is phonon gain / electron loss; 1 means perfect
	// conservation between the two baths.
	EnergyBalance float64 `json:"energy_balance"`
	// Trace is the full per-iteration telemetry in the unified schema —
	// identical to what the run streamed.
	Trace []IterStats `json:"trace"`
	// Observables exposes the full per-slab/per-atom detail.
	Observables *negf.Observables `json:"-"`
	// Comm holds the world's communication counters and Load the
	// per-rank work distribution; both are nil for sequential runs.
	Comm *comm.Stats     `json:"comm,omitempty"`
	Load []dist.RankLoad `json:"load,omitempty"`
	// FinalState is the Σ≷/Π≷ state the sequential loop ended on — the
	// artifact WithWarmStart seeds a near-identical run from. Nil for
	// distributed runs; never serialized (it is solver state, not a
	// result row).
	FinalState *SigmaState `json:"-"`
	// Spans is the per-phase span recording of a WithTrace run (nil
	// otherwise) — export it with Spans.WriteChrome for Perfetto. Not
	// serialized here: the qtd registry stores the Chrome form as its
	// own artifact.
	Spans *obs.Trace `json:"-"`
}

// Run is the handle of one in-flight solve.
type Run struct {
	stats chan IterStats
	done  chan struct{}

	res *Result
	err error
}

// Stats streams one IterStats per self-consistent iteration while the
// run executes, in iteration order, and is closed when the run ends.
// The channel is buffered for the full iteration budget, so a consumer
// that reads late (or not at all) never blocks the solver.
func (r *Run) Stats() <-chan IterStats { return r.stats }

// Done is closed when the run has fully finished (all solver goroutines
// exited and the result is available).
func (r *Run) Done() <-chan struct{} { return r.done }

// Wait blocks until the run finishes and returns its result. On
// cancellation it returns the partial result of the completed
// iterations together with the context's error; ErrNotConverged is not
// an error here — it is reported through Result.Converged.
func (r *Run) Wait() (*Result, error) {
	<-r.done
	return r.res, r.err
}

// Start launches the solve and returns its handle. The context is
// observed between self-consistent iterations — on cancellation every
// simulated rank agrees to stop, the solver drains cleanly (no leaked
// goroutines) and Wait returns the partial result with ctx's error.
func (s *Simulation) Start(ctx context.Context) (*Run, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("qt: %w", err)
	}
	r := &Run{
		stats: make(chan IterStats, s.cfg.maxIter),
		done:  make(chan struct{}),
	}
	var tracer *obs.Tracer
	if s.cfg.trace {
		tracer = obs.NewTracer()
	}
	go func() {
		defer close(r.done)
		defer close(r.stats)
		if s.cfg.ranks > 0 {
			r.res, r.err = s.runDistributed(ctx, r, tracer)
		} else {
			r.res, r.err = s.runSequential(ctx, r, tracer)
		}
		if tracer != nil && r.res != nil {
			r.res.Spans = tracer.Trace()
		}
	}()
	return r, nil
}

// emit forwards one iteration's telemetry; the buffer covers the full
// iteration budget, so the send never blocks.
func (r *Run) emit(st IterStats) {
	select {
	case r.stats <- st:
	default: // impossible while maxIter bounds the iterations; never block the solver
	}
}

// runSequential drives the negf solver under the facade contract.
func (s *Simulation) runSequential(ctx context.Context, r *Run, tracer *obs.Tracer) (*Result, error) {
	trace := []IterStats{}
	no := s.cfg.negfOptions(func(st negf.IterStats) error {
		u := fromSequential(st)
		trace = append(trace, u)
		r.emit(u)
		return ctx.Err()
	})
	no.Tracer = tracer
	solver := negf.New(s.Device, no)
	if w := s.cfg.warm; w != nil {
		// Seed the loop with the warm Σ≷/Π≷ state (copied: the shared
		// cache artifact may seed many concurrent runs).
		copy(solver.SigL.Data, w.SigL.Data)
		copy(solver.SigG.Data, w.SigG.Data)
		copy(solver.PiL.Data, w.PiL.Data)
		copy(solver.PiG.Data, w.PiG.Data)
	}
	finalState := func() *SigmaState {
		return (&SigmaState{
			SigL: solver.SigL, SigG: solver.SigG,
			PiL: solver.PiL, PiG: solver.PiG,
		}).Clone()
	}
	obs, err := solver.Run()
	switch {
	case err == nil, errors.Is(err, negf.ErrNotConverged):
		// Converged or capped: both carry valid observables.
	case ctx.Err() != nil && errors.Is(err, ctx.Err()):
		res := s.summarize(obs, trace, err == nil, nil, nil)
		res.FinalState = finalState()
		return res, ctx.Err()
	default:
		return nil, err
	}
	res := s.summarize(obs, trace, err == nil, nil, nil)
	res.FinalState = finalState()
	return res, nil
}

// runDistributed drives the dist solver under the facade contract.
func (s *Simulation) runDistributed(ctx context.Context, r *Run, tracer *obs.Tracer) (*Result, error) {
	trace := []IterStats{}
	planStr := s.PlanString()
	do := s.cfg.distOptions(func(st dist.IterStats) error {
		u := fromDistributed(st)
		if len(trace) == 0 {
			u.Plan = planStr
		}
		trace = append(trace, u)
		r.emit(u)
		return ctx.Err()
	})
	do.Tracer = tracer
	res, err := dist.Run(s.Device, do)
	switch {
	case err == nil, errors.Is(err, negf.ErrNotConverged):
	case ctx.Err() != nil && errors.Is(err, ctx.Err()):
		return s.summarize(&res.Obs, trace, false, &res.Comm, res.Load), ctx.Err()
	default:
		return nil, err
	}
	return s.summarize(&res.Obs, trace, res.Converged, &res.Comm, res.Load), nil
}

// summarize folds the observables and trace into the Result.
func (s *Simulation) summarize(obs *negf.Observables, trace []IterStats, converged bool,
	cs *comm.Stats, load []dist.RankLoad) *Result {

	res := &Result{
		Converged:   converged,
		Iterations:  len(trace),
		Trace:       trace,
		Observables: obs,
		Comm:        cs,
		Load:        load,
	}
	if obs == nil {
		return res
	}
	res.Current = obs.CurrentL
	for i, t := range obs.SlabTemperature(s.Device) {
		if t > res.MaxTemperature {
			res.MaxTemperature, res.HotSpot = t, i
		}
	}
	if obs.ElectronEnergyLoss != 0 {
		res.EnergyBalance = obs.PhononEnergyGain / obs.ElectronEnergyLoss
	}
	return res
}
