package qt

import (
	"strings"
	"testing"
)

// TestWarmStartFewerIterations pins the warm-start contract the qtd
// result cache depends on: seeding a run with the converged Σ≷/Π≷ state
// of the same configuration converges almost immediately, and seeding a
// neighbouring-bias run (the near-identical request) converges in fewer
// iterations than the cold start.
func TestWarmStartFewerIterations(t *testing.T) {
	spec := smallSpec()
	opts := []Option{WithTolerance(1e-6), WithMaxIterations(40)}

	_, cold := solve(t, spec, opts...)
	if !cold.Converged {
		t.Fatal("cold run did not converge")
	}
	if cold.FinalState == nil {
		t.Fatal("sequential run did not capture its final Σ≷ state")
	}
	if cold.Iterations < 3 {
		t.Fatalf("cold run too easy (%d iterations) to measure warm-start gains", cold.Iterations)
	}

	// Same configuration, warm seed: the loop starts at its fixed point.
	_, self := solve(t, spec, append(opts[:len(opts):len(opts)], WithWarmStart(cold.FinalState))...)
	if !self.Converged {
		t.Fatal("self-seeded run did not converge")
	}
	if self.Iterations > 2 {
		t.Errorf("self-seeded run took %d iterations, want <= 2", self.Iterations)
	}

	// Neighbouring bias: cold vs warm-started from the first run's state.
	shifted := append(opts[:len(opts):len(opts)], WithBias(spec.withDefaults().Bias+0.02))
	_, coldN := solve(t, spec, shifted...)
	_, warmN := solve(t, spec, append(shifted[:len(shifted):len(shifted)], WithWarmStart(cold.FinalState))...)
	if !coldN.Converged || !warmN.Converged {
		t.Fatalf("neighbour runs did not converge (cold %v, warm %v)", coldN.Converged, warmN.Converged)
	}
	if warmN.Iterations >= coldN.Iterations {
		t.Errorf("warm start did not help: cold %d iterations, warm %d", coldN.Iterations, warmN.Iterations)
	}
}

// TestWarmStartValidation: the option is sequential-only and
// shape-checked against the device.
func TestWarmStartValidation(t *testing.T) {
	_, res := solve(t, smallSpec(), WithMaxIterations(2), WithTolerance(1e-300))
	st := res.FinalState

	if _, err := New(smallSpec(), WithRanks(2), WithWarmStart(st)); err == nil ||
		!strings.Contains(err.Error(), "sequential") {
		t.Errorf("distributed warm start not rejected: %v", err)
	}
	if _, err := New(Spec{Atoms: 24, Slabs: 6}, WithWarmStart(st)); err == nil ||
		!strings.Contains(err.Error(), "shape") {
		t.Errorf("shape mismatch not rejected: %v", err)
	}
	if _, err := New(smallSpec(), WithWarmStart(nil)); err == nil {
		t.Error("nil state not rejected")
	}
	if _, err := New(smallSpec(), WithWarmStart(st)); err != nil {
		t.Errorf("matching warm start rejected: %v", err)
	}
}
