package qt

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/negf"
	"repro/internal/sse"
)

// TestFacadeMatchesSequentialSolver checks the facade is a zero-cost
// veneer: its per-iteration currents equal a hand-wired negf solver's
// bitwise, in fp64 and mixed precision.
func TestFacadeMatchesSequentialSolver(t *testing.T) {
	const iters = 4
	for _, prec := range []Precision{FP64, Mixed} {
		_, res := solve(t, smallSpec(), WithPrecision(prec),
			WithMaxIterations(iters), WithTolerance(1e-300))

		dev, err := smallSpec().Build()
		if err != nil {
			t.Fatal(err)
		}
		opts := negf.DefaultOptions()
		opts.MaxIter = iters
		opts.Tol = 1e-300
		if prec == Mixed {
			opts.Kernel = sse.Mixed{Normalize: true}
		}
		s := negf.New(dev, opts)
		if _, err := s.Run(); !errors.Is(err, negf.ErrNotConverged) {
			t.Fatalf("direct solver: %v", err)
		}

		if len(res.Trace) != len(s.IterTrace) {
			t.Fatalf("%s: facade ran %d iterations, direct %d", prec, len(res.Trace), len(s.IterTrace))
		}
		for i := range res.Trace {
			if res.Trace[i].Current != s.IterTrace[i].Current {
				t.Errorf("%s iter %d: facade current %.17g != direct %.17g",
					prec, i, res.Trace[i].Current, s.IterTrace[i].Current)
			}
		}
	}
}

// TestFacadeMatchesDistributedSolver checks the same for the
// distributed path: the facade's telemetry hook (and its cancellation
// agreement collective) must not perturb the arithmetic.
func TestFacadeMatchesDistributedSolver(t *testing.T) {
	const iters, ranks = 3, 4
	for _, prec := range []Precision{FP64, Mixed} {
		_, res := solve(t, smallSpec(), WithRanks(ranks), WithPrecision(prec),
			WithMaxIterations(iters), WithTolerance(1e-300))

		dev, err := smallSpec().Build()
		if err != nil {
			t.Fatal(err)
		}
		opts := dist.DefaultOptions(ranks)
		opts.MaxIter = iters
		opts.Tol = 1e-300
		if prec == Mixed {
			opts.Precision = dist.PrecisionMixed
		}
		dres, err := dist.Run(dev, opts)
		if !errors.Is(err, negf.ErrNotConverged) {
			t.Fatalf("direct solver: %v", err)
		}

		if len(res.Trace) != len(dres.IterTrace) {
			t.Fatalf("%s: facade ran %d iterations, direct %d", prec, len(res.Trace), len(dres.IterTrace))
		}
		for i := range res.Trace {
			if res.Trace[i].Current != dres.IterTrace[i].Current {
				t.Errorf("%s iter %d: facade current %.17g != direct %.17g",
					prec, i, res.Trace[i].Current, dres.IterTrace[i].Current)
			}
		}
	}
}

// TestDistributedMatchesSequentialThroughFacade is the end-to-end
// equivalence entirely in facade terms: the same spec solved
// sequentially and on 2 ranks gives the same per-iteration currents
// within reduction-ordering tolerance (fp64) and MixedCurrentTol
// (mixed).
func TestDistributedMatchesSequentialThroughFacade(t *testing.T) {
	const iters = 3
	_, seq := solve(t, smallSpec(), WithMaxIterations(iters), WithTolerance(1e-300))
	for _, prec := range []Precision{FP64, Mixed} {
		tol := 1e-12
		if prec == Mixed {
			tol = dist.MixedCurrentTol
		}
		_, dres := solve(t, smallSpec(), WithRanks(2), WithPrecision(prec),
			WithMaxIterations(iters), WithTolerance(1e-300))
		for i := range dres.Trace {
			rel := math.Abs(dres.Trace[i].Current-seq.Trace[i].Current) /
				math.Abs(seq.Trace[i].Current)
			if rel > tol {
				t.Errorf("%s iter %d: distributed %.17g vs sequential %.17g (rel %.3g > %g)",
					prec, i, dres.Trace[i].Current, seq.Trace[i].Current, rel, tol)
			}
		}
	}
}

// TestTelemetryStreamMatchesTrace drains the streaming channel and
// checks it delivers exactly the solver's own trace, for all three
// solver paths.
func TestTelemetryStreamMatchesTrace(t *testing.T) {
	const iters = 3
	configs := map[string][]Option{
		"sequential":  {WithMaxIterations(iters), WithTolerance(1e-300)},
		"dist-phases": {WithRanks(2), WithMaxIterations(iters), WithTolerance(1e-300)},
		"dist-overlap": {WithRanks(2), WithSchedule(Overlap),
			WithMaxIterations(iters), WithTolerance(1e-300)},
	}
	for name, opts := range configs {
		t.Run(name, func(t *testing.T) {
			sim, err := New(smallSpec(), opts...)
			if err != nil {
				t.Fatal(err)
			}
			run, err := sim.Start(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			var streamed []IterStats
			for st := range run.Stats() {
				streamed = append(streamed, st)
			}
			res, err := run.Wait()
			if err != nil {
				t.Fatal(err)
			}
			if len(streamed) != len(res.Trace) || len(streamed) != iters {
				t.Fatalf("streamed %d rows, trace %d, want %d", len(streamed), len(res.Trace), iters)
			}
			for i := range streamed {
				if streamed[i] != res.Trace[i] {
					t.Errorf("iter %d: streamed %+v != trace %+v", i, streamed[i], res.Trace[i])
				}
			}
		})
	}
}

// TestSweepGrid runs a tiny bias×ranks grid and cross-checks the
// solver-equivalence of the grid points.
func TestSweepGrid(t *testing.T) {
	points, err := Sweep{
		Spec:    smallSpec(),
		Options: []Option{WithMaxIterations(2), WithTolerance(1e-300)},
		Bias:    []float64{0.2, 0.3},
		Ranks:   []int{0, 2},
	}.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("expected 4 grid points, got %d", len(points))
	}
	// Points arrive bias-major; sequential and 2-rank solves of the same
	// bias must agree.
	for i := 0; i < len(points); i += 2 {
		seq, dst := points[i], points[i+1]
		if seq.Ranks != 0 || dst.Ranks != 2 {
			t.Fatalf("unexpected grid order: %+v / %+v", seq, dst)
		}
		if seq.Bias != dst.Bias {
			t.Fatalf("bias mismatch in pair: %g vs %g", seq.Bias, dst.Bias)
		}
		rel := math.Abs(seq.Result.Current-dst.Result.Current) / math.Abs(seq.Result.Current)
		if rel > 1e-12 {
			t.Errorf("bias %g: sequential %.17g vs distributed %.17g (rel %.3g)",
				seq.Bias, seq.Result.Current, dst.Result.Current, rel)
		}
	}
	// Different biases must give different currents.
	if points[0].Result.Current == points[2].Result.Current {
		t.Error("bias axis had no effect")
	}
}
