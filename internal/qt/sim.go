package qt

import (
	"fmt"

	"repro/internal/bc"
	"repro/internal/device"
	"repro/internal/dist"
	"repro/internal/linalg"
	"repro/internal/negf"
	"repro/internal/plan"
	"repro/internal/sse"
)

// Simulation is a validated, buildable experiment: the synthetic device
// plus the resolved execution configuration. It is immutable after New;
// every Start launches an independent solve against the shared
// (read-only) device, so one Simulation can back a whole sweep.
type Simulation struct {
	Spec   Spec
	Device *device.Device

	cfg config
}

// New validates the configuration, builds the synthetic device and
// returns the runnable simulation.
func New(spec Spec, opts ...Option) (*Simulation, error) {
	spec = spec.withDefaults()
	cfg := defaultConfig(spec)
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, fmt.Errorf("qt: %w", err)
		}
	}
	if err := cfg.validate(); err != nil {
		return nil, fmt.Errorf("qt: %w", err)
	}
	if err := spec.validateProfile(); err != nil {
		return nil, err
	}
	dev, err := device.Build(cfg.params)
	if err != nil {
		return nil, fmt.Errorf("qt: %w", err)
	}
	if err := spec.applyProfile(dev); err != nil {
		return nil, err
	}
	if cfg.warm != nil {
		if err := cfg.warm.compatible(dev); err != nil {
			return nil, fmt.Errorf("qt: WithWarmStart: %w", err)
		}
	}
	if cfg.autoPlan && !cfg.planResolved {
		// Resolve the execution plan against the actual device: a short
		// calibration probe, then the argmin over the enumerated
		// candidates in the virtual-time cost model. The resolved knobs
		// become part of the configuration (and its content hash), so
		// rebuilding from Config keeps this plan instead of re-probing.
		pl, err := plan.Choose(dev, plan.Options{Ranks: cfg.ranks})
		if err != nil {
			return nil, fmt.Errorf("qt: auto plan: %w", err)
		}
		switch pl.Schedule {
		case dist.ScheduleOverlap:
			cfg.schedule = Overlap
		case dist.SchedulePipeline:
			cfg.schedule = Pipeline
		default:
			cfg.schedule = Phases
		}
		cfg.workers = pl.Workers
		cfg.pipelineDepth = pl.PipelineDepth
		cfg.blocking = pl.Blocking
		cfg.planResolved = true
	}
	if cfg.blocking != (linalg.BlockSizes{}) {
		if err := linalg.SetBlocking(cfg.blocking); err != nil {
			return nil, fmt.Errorf("qt: %w", err)
		}
	}
	// Reflect option-level overrides back into the exported Spec so it
	// always reports what is actually solved.
	spec.Bias = cfg.params.Vds
	return &Simulation{Spec: spec, Device: dev, cfg: cfg}, nil
}

// PlanString renders the resolved execution plan of a distributed
// configuration ("pipeline w=2 d=2", with "[auto]" when the autotuner
// chose it) — what report and the qtd registry surface per run. Empty
// for sequential configurations.
func (s *Simulation) PlanString() string {
	if s.cfg.ranks == 0 {
		return ""
	}
	o := s.cfg.distOptions(nil)
	str := o.Schedule.String()
	if s.cfg.workers > 0 {
		str += fmt.Sprintf(" w=%d", s.cfg.workers)
	}
	if s.cfg.schedule == Pipeline {
		d := s.cfg.pipelineDepth
		if d == 0 {
			d = 2 // the dist default
		}
		str += fmt.Sprintf(" d=%d", d)
	}
	if s.cfg.blocking != (linalg.BlockSizes{}) && s.cfg.blocking != linalg.DefaultBlocking() {
		str += fmt.Sprintf(" gemm=%dx%dx%d", s.cfg.blocking.MC, s.cfg.blocking.KC, s.cfg.blocking.NC)
	}
	if s.cfg.autoPlan {
		str += " [auto]"
	}
	return str
}

// Ranks reports the configured world size (0 = sequential solver).
func (s *Simulation) Ranks() int { return s.cfg.ranks }

// Tiles reports the resolved Ta×TE tile split of the distributed SSE
// exchange (1×P when unset; zeros for sequential configurations).
func (s *Simulation) Tiles() (ta, te int) {
	if s.cfg.ranks == 0 {
		return 0, 0
	}
	o := s.cfg.distOptions(nil)
	if o.TE == 0 && o.Ta > 0 {
		o.TE = s.cfg.ranks / o.Ta
	}
	if o.Ta == 0 && o.TE > 0 {
		o.Ta = s.cfg.ranks / o.TE
	}
	return o.Ta, o.TE
}

// sequentialKernel derives the sequential SSE kernel of the config.
func (c *config) sequentialKernel() sse.Kernel {
	switch {
	case c.sseKernel != nil:
		return c.sseKernel
	case c.precision == Mixed:
		return sse.Mixed{Normalize: true}
	case c.kernel == Baseline:
		return sse.OMEN{}
	default:
		return sse.DaCe{}
	}
}

// negfOptions assembles the sequential solver options.
func (c *config) negfOptions(progress func(negf.IterStats) error) negf.Options {
	o := negf.DefaultOptions()
	o.Kernel = c.sequentialKernel()
	if !c.cacheBC {
		o.CacheMode = bc.NoCache
	}
	o.Mixing = c.mixing
	o.MaxIter = c.maxIter
	o.Tol = c.tol
	o.Anderson = c.anderson
	o.Progress = progress
	return o
}

// Ballistic solves the Green's functions once with zero scattering
// self-energies (the coherent-transport limit) and returns the
// observables without running the self-consistent loop. It always uses
// the sequential solver — a single GF phase has no exchange to
// distribute.
func (s *Simulation) Ballistic() (*negf.Observables, error) {
	solver := negf.New(s.Device, s.cfg.negfOptions(nil))
	if err := solver.GFPhase(); err != nil {
		return nil, fmt.Errorf("qt: %w", err)
	}
	return &solver.Obs, nil
}
