package qt

import (
	"fmt"

	"repro/internal/bc"
	"repro/internal/device"
	"repro/internal/dist"
	"repro/internal/linalg"
	"repro/internal/sse"
)

// config is the resolved experiment configuration an Option mutates.
// It starts from the defaulted Spec, so every knob has exactly one
// representation and an unset knob is simply an absent option.
type config struct {
	params device.Params

	ranks     int // 0 = sequential solver, >=1 = distributed world size
	schedule  Schedule
	precision Precision
	kernel    Kernel
	sseKernel sse.Kernel // sequential-only escape hatch; nil = derived

	maxIter    int
	tol        float64
	mixing     float64
	cacheBC    bool
	anderson   bool
	ta, te     int // distributed SSE tile split (0 = inferred)
	workers    int // 0 = dist default
	errorProbe bool
	trace      bool
	warm       *SigmaState // sequential-only Σ≷/Π≷ seed; nil = cold start

	pipelineDepth int // 0 = dist default; only valid with Pipeline
	// autoPlan defers schedule/workers/depth/blocking to the internal/plan
	// autotuner; planResolved marks a configuration whose resolved knobs
	// are already present (the RunConfig round-trip), so New must not
	// re-probe. blocking, when non-zero, is installed process-wide at New.
	autoPlan     bool
	planResolved bool
	blocking     linalg.BlockSizes
}

func defaultConfig(spec Spec) config {
	return config{
		params:  spec.params(),
		maxIter: 25,
		tol:     1e-5,
		mixing:  0.5,
		cacheBC: true,
	}
}

// Option configures a Simulation. Options are applied in order; each
// validates its own argument, and New cross-validates the combination.
type Option func(*config) error

// WithRanks selects the distributed solver on a simulated MPI world of
// p ranks. Without this option the sequential solver runs; p = 1 is a
// valid (single-rank) distributed world, useful for schedule and wire
// format testing.
func WithRanks(p int) Option {
	return func(c *config) error {
		if p < 1 {
			return fmt.Errorf("WithRanks: world size must be >= 1, got %d", p)
		}
		c.ranks = p
		return nil
	}
}

// WithSchedule selects the distributed execution schedule. Overlap and
// Pipeline require WithRanks.
func WithSchedule(s Schedule) Option {
	return func(c *config) error {
		if s != Phases && s != Overlap && s != Pipeline {
			return fmt.Errorf("WithSchedule: unknown schedule %d", s)
		}
		c.schedule = s
		return nil
	}
}

// WithPipelineDepth sets the iteration-window size of the Pipeline
// schedule: how many self-consistent iterations the task graph spans at
// once (the dist default is 2 when unset). Depth 1 degenerates to a
// fenced overlap schedule. Requires WithSchedule(Pipeline).
func WithPipelineDepth(d int) Option {
	return func(c *config) error {
		if d < 1 {
			return fmt.Errorf("WithPipelineDepth: depth must be >= 1, got %d", d)
		}
		c.pipelineDepth = d
		return nil
	}
}

// WithAutoPlan hands schedule, worker pool, pipeline depth and GEMM
// cache blocking to the internal/plan autotuner: New runs a short
// calibration probe on the built device, scores every candidate plan in
// the virtual-time cost model, and applies the argmin. The resolved
// plan is written into the configuration (visible in Config and part of
// the content hash), so a cached or re-built run keeps the exact plan it
// was solved with instead of re-probing. Requires WithRanks; conflicts
// with explicitly setting any knob the planner owns (WithSchedule,
// WithWorkers, WithPipelineDepth) and with WithErrorProbe (the probe
// cannot ride a pipelined window, which the planner may select).
func WithAutoPlan() Option {
	return func(c *config) error {
		c.autoPlan = true
		return nil
	}
}

// withResolvedPlan marks the configuration's plan knobs as the recorded
// output of a previous auto-plan resolution — the RunConfig.Options
// round-trip path. New skips the probe and uses the knobs as given.
func withResolvedPlan() Option {
	return func(c *config) error {
		c.planResolved = true
		return nil
	}
}

// withGemmBlocking records a resolved GEMM cache blocking to install at
// New (the serialized-plan path; WithAutoPlan sets it directly).
func withGemmBlocking(bs linalg.BlockSizes) Option {
	return func(c *config) error {
		c.blocking = bs
		return nil
	}
}

// WithPrecision selects the SSE arithmetic: FP64 (default) or the §5.4
// Mixed path — normalized binary16 tile kernel, plus half-width wire
// payloads when distributed.
func WithPrecision(p Precision) Option {
	return func(c *config) error {
		if p != FP64 && p != Mixed {
			return fmt.Errorf("WithPrecision: unknown precision %d", p)
		}
		c.precision = p
		return nil
	}
}

// WithKernel selects the sequential SSE schedule (DataCentric or the
// OMEN Baseline). The distributed solver always runs the data-centric
// exchange, so Baseline conflicts with WithRanks.
func WithKernel(k Kernel) Option {
	return func(c *config) error {
		if k != DataCentric && k != Baseline {
			return fmt.Errorf("WithKernel: unknown kernel %d", k)
		}
		c.kernel = k
		return nil
	}
}

// WithSSEKernel injects a custom sequential SSE kernel — the advanced
// escape hatch the precision experiments use to wrap kernels (e.g. unit
// rescaling). Sequential only; overrides WithKernel/WithPrecision
// kernel derivation.
func WithSSEKernel(k sse.Kernel) Option {
	return func(c *config) error {
		if k == nil {
			return fmt.Errorf("WithSSEKernel: kernel must be non-nil")
		}
		c.sseKernel = k
		return nil
	}
}

// WithMaxIterations bounds the self-consistent GF↔SSE iterations.
func WithMaxIterations(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("WithMaxIterations: need at least one iteration, got %d", n)
		}
		c.maxIter = n
		return nil
	}
}

// WithTolerance sets the relative contact-current change declaring
// convergence. Pass a tiny value (e.g. 1e-300) to run all iterations —
// the measuring-not-converging mode of the scaling sweeps.
func WithTolerance(tol float64) Option {
	return func(c *config) error {
		if tol <= 0 {
			return fmt.Errorf("WithTolerance: tolerance must be positive, got %g", tol)
		}
		c.tol = tol
		return nil
	}
}

// WithMixing sets the linear self-consistency mixing factor in (0, 1].
func WithMixing(m float64) Option {
	return func(c *config) error {
		if m <= 0 || m > 1 {
			return fmt.Errorf("WithMixing: factor must be in (0, 1], got %g", m)
		}
		c.mixing = m
		return nil
	}
}

// WithBoundaryCache toggles cross-iteration boundary-condition caching
// (§7.1.2, default on).
func WithBoundaryCache(on bool) Option {
	return func(c *config) error {
		c.cacheBC = on
		return nil
	}
}

// WithAnderson enables depth-1 Anderson acceleration instead of plain
// linear mixing. Sequential only.
func WithAnderson() Option {
	return func(c *config) error {
		c.anderson = true
		return nil
	}
}

// WithBias overrides the drain-source bias (eV) after Spec defaulting,
// so an explicit zero bias is expressible — the knob the Sweep driver
// turns for I-V curves.
func WithBias(v float64) Option {
	return func(c *config) error {
		c.params.Vds = v
		return nil
	}
}

// WithTiles sets the atom×energy tile split of the distributed SSE
// exchange (Ta·TE must equal the world size; a zero is inferred from
// the other factor). Requires WithRanks.
func WithTiles(ta, te int) Option {
	return func(c *config) error {
		if ta < 0 || te < 0 || ta+te == 0 {
			return fmt.Errorf("WithTiles: tile counts must be positive (one may be 0 to infer), got %d×%d", ta, te)
		}
		c.ta, c.te = ta, te
		return nil
	}
}

// WithWorkers sets the per-rank worker pool of the Overlap schedule.
// Requires WithRanks.
func WithWorkers(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("WithWorkers: need at least one worker, got %d", n)
		}
		c.workers = n
		return nil
	}
}

// WithErrorProbe enables the per-iteration fp64-reference quantization
// probe (IterStats.SigmaErr). Requires WithRanks and WithPrecision(Mixed).
func WithErrorProbe() Option {
	return func(c *config) error {
		c.errorProbe = true
		return nil
	}
}

// WithTrace enables per-phase span recording for the run: iteration
// boundaries, per-point BC and RGF solves, and — when distributed — the
// SSE exchanges, tile kernel, and observable reductions of every rank.
// The finished run's Result.Spans carries the recording (exportable as
// Chrome/Perfetto trace-event JSON via its WriteChrome). Off by
// default: untraced runs pay only a nil check per seam.
func WithTrace() Option {
	return func(c *config) error {
		c.trace = true
		return nil
	}
}

// WithWarmStart seeds the self-consistent loop with a previous run's
// scattering self-energy state instead of the cold Σ≷ = Π≷ = 0 ballistic
// guess — the near-identical-request accelerator of the qtd result
// cache: a converged neighbouring-bias state starts the loop close to
// its fixed point, cutting the iteration count. Sequential solver only;
// the state's tensor shapes must match the Spec's device (checked by
// New). The seed is copied at Start, so one cached state can seed many
// concurrent runs.
func WithWarmStart(st *SigmaState) Option {
	return func(c *config) error {
		if st == nil {
			return fmt.Errorf("WithWarmStart: state must be non-nil")
		}
		c.warm = st
		return nil
	}
}

// validate cross-checks the assembled configuration.
func (c *config) validate() error {
	if err := c.params.Validate(); err != nil {
		return err
	}
	if c.ranks == 0 {
		// Sequential solver.
		if c.schedule != Phases {
			return fmt.Errorf("WithSchedule(%v) requires WithRanks", c.schedule)
		}
		if c.ta != 0 || c.te != 0 {
			return fmt.Errorf("WithTiles requires WithRanks")
		}
		if c.workers != 0 {
			return fmt.Errorf("WithWorkers requires WithRanks")
		}
		if c.pipelineDepth != 0 {
			return fmt.Errorf("WithPipelineDepth requires WithRanks")
		}
		if c.autoPlan {
			return fmt.Errorf("WithAutoPlan requires WithRanks: the planner chooses among distributed schedules")
		}
		if c.kernel == Baseline && c.precision == Mixed {
			return fmt.Errorf("WithKernel(Baseline) conflicts with WithPrecision(Mixed): the baseline loop nest has no binary16 form")
		}
		if c.sseKernel != nil && (c.kernel == Baseline || c.precision == Mixed) {
			return fmt.Errorf("WithSSEKernel overrides the kernel: do not combine it with WithKernel or WithPrecision")
		}
	} else {
		// Distributed solver.
		if c.warm != nil {
			return fmt.Errorf("WithWarmStart requires the sequential solver")
		}
		if c.kernel == Baseline {
			return fmt.Errorf("WithKernel(Baseline) requires the sequential solver: the distributed SSE exchange is data-centric by construction")
		}
		if c.sseKernel != nil {
			return fmt.Errorf("WithSSEKernel requires the sequential solver")
		}
		if c.anderson {
			return fmt.Errorf("WithAnderson requires the sequential solver")
		}
		if c.pipelineDepth != 0 && c.schedule != Pipeline {
			return fmt.Errorf("WithPipelineDepth requires WithSchedule(Pipeline)")
		}
		if c.schedule == Pipeline && c.errorProbe {
			return fmt.Errorf("WithErrorProbe conflicts with WithSchedule(Pipeline): the probe's blocking max-reduction would serialize the iteration window")
		}
		if c.autoPlan {
			if c.errorProbe {
				return fmt.Errorf("WithErrorProbe conflicts with WithAutoPlan: the planner may select the pipelined schedule, which cannot run the probe")
			}
			if !c.planResolved && (c.schedule != Phases || c.workers != 0 || c.pipelineDepth != 0) {
				return fmt.Errorf("WithAutoPlan owns the schedule, worker and pipeline-depth knobs: drop WithSchedule/WithWorkers/WithPipelineDepth")
			}
		}
		if err := c.distOptions(nil).Validate(); err != nil {
			return err
		}
	}
	if c.errorProbe && (c.ranks == 0 || c.precision != Mixed) {
		return fmt.Errorf("WithErrorProbe requires WithRanks and WithPrecision(Mixed)")
	}
	return nil
}

// distOptions assembles the dist.Options of this configuration.
func (c *config) distOptions(progress func(dist.IterStats) error) dist.Options {
	o := dist.DefaultOptions(c.ranks)
	o.Ta, o.TE = c.ta, c.te
	if o.Ta == 0 && o.TE == 0 {
		o.Ta, o.TE = 1, c.ranks
	}
	if !c.cacheBC {
		o.CacheMode = bc.NoCache
	}
	o.Mixing = c.mixing
	o.MaxIter = c.maxIter
	o.Tol = c.tol
	switch c.schedule {
	case Overlap:
		o.Schedule = dist.ScheduleOverlap
	case Pipeline:
		o.Schedule = dist.SchedulePipeline
		o.PipelineDepth = c.pipelineDepth
	}
	if c.workers > 0 {
		o.Workers = c.workers
	}
	if c.precision == Mixed {
		o.Precision = dist.PrecisionMixed
	}
	o.ErrorProbe = c.errorProbe
	o.Progress = progress
	return o
}
