package qt

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/tensor"
)

// SigmaState is the scattering self-energy state (Σ≷ and Π≷) of a
// finished sequential solve — the reusable artifact a near-identical
// simulation warm-starts from instead of the cold Σ = 0 (ballistic)
// first guess. Sequential runs capture it in Result.FinalState; the qtd
// result cache keeps the converged states and seeds same-structure
// neighbouring-bias requests from them.
type SigmaState struct {
	SigL, SigG *tensor.Electron
	PiL, PiG   *tensor.Phonon
}

// Clone deep-copies the state, decoupling it from the solver tensors it
// was captured from.
func (st *SigmaState) Clone() *SigmaState {
	if st == nil {
		return nil
	}
	return &SigmaState{
		SigL: st.SigL.Clone(), SigG: st.SigG.Clone(),
		PiL: st.PiL.Clone(), PiG: st.PiG.Clone(),
	}
}

// Bytes reports the in-memory size of the four tensors — what a cache
// entry holding this state costs.
func (st *SigmaState) Bytes() int64 {
	if st == nil {
		return 0
	}
	return st.SigL.Bytes() + st.SigG.Bytes() + st.PiL.Bytes() + st.PiG.Bytes()
}

// compatible reports whether the state's tensor shapes match the device —
// the condition for seeding a solve with it.
func (st *SigmaState) compatible(dev *device.Device) error {
	p := dev.P
	e := st.SigL
	if e == nil || st.SigG == nil || st.PiL == nil || st.PiG == nil {
		return fmt.Errorf("incomplete state (nil tensor)")
	}
	if e.Nkz != p.Nkz || e.NE != p.NE || e.Na != p.Na || e.Norb != p.Norb {
		return fmt.Errorf("electron shape [%d %d %d %d] does not match device [%d %d %d %d]",
			e.Nkz, e.NE, e.Na, e.Norb, p.Nkz, p.NE, p.Na, p.Norb)
	}
	ph := st.PiL
	if ph.Nqz != p.Nqz() || ph.Nw != p.Nomega || ph.Na != p.Na || ph.NbP1 != dev.MaxNb()+1 {
		return fmt.Errorf("phonon shape %s does not match device [%d %d %d %d]",
			ph.ShapeString(), p.Nqz(), p.Nomega, p.Na, dev.MaxNb()+1)
	}
	return nil
}
