package qt

import (
	"context"
	"fmt"
)

// Sweep fans one Spec across experiment grids — the driver behind I-V
// curves (Bias axis), strong-scaling studies (Ranks axis) and precision
// comparisons (Precisions axis). Empty axes keep the base value, so the
// zero Sweep with just a Spec runs a single point. Points execute
// sequentially in deterministic axis order (bias, then ranks, then
// precision); each distributed point already parallelizes internally.
type Sweep struct {
	Spec Spec
	// Options apply to every point, before the axis options.
	Options []Option

	// Bias values (eV) for WithBias; empty keeps the Spec's bias.
	Bias []float64
	// Ranks values for WithRanks; 0 selects the sequential solver,
	// overriding any WithRanks in Options; empty keeps the base
	// configuration.
	Ranks []int
	// Precisions values for WithPrecision; empty keeps the base.
	Precisions []Precision
}

// SweepPoint is one grid point's outcome.
type SweepPoint struct {
	Bias      float64   `json:"bias"`
	Ranks     int       `json:"ranks"` // 0 = sequential solver
	Precision Precision `json:"precision"`
	Result    *Result   `json:"result"`
}

// Run executes the grid. The context cancels between iterations of the
// running point and skips the remaining points; the completed points
// are returned alongside the context's error. A hard solver error stops
// the sweep; non-convergence does not (see Result.Converged).
func (sw Sweep) Run(ctx context.Context) ([]SweepPoint, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	base := sw.Spec.withDefaults()

	biases := sw.Bias
	if len(biases) == 0 {
		biases = []float64{base.Bias}
	}
	ranks := sw.Ranks
	if len(ranks) == 0 {
		ranks = []int{-1} // sentinel: keep the base options' solver choice
	}
	precs := sw.Precisions
	if len(precs) == 0 {
		precs = []Precision{-1}
	}

	var points []SweepPoint
	for _, v := range biases {
		for _, p := range ranks {
			for _, pr := range precs {
				if err := ctx.Err(); err != nil {
					return points, err
				}
				opts := append([]Option{}, sw.Options...)
				opts = append(opts, WithBias(v))
				switch {
				case p == 0:
					opts = append(opts, withSequential())
				case p > 0:
					opts = append(opts, WithRanks(p))
				}
				if pr >= 0 {
					opts = append(opts, WithPrecision(pr))
				}
				sim, err := New(base, opts...)
				if err != nil {
					return points, fmt.Errorf("sweep point (bias=%g, P=%d): %w", v, max(p, 0), err)
				}
				run, err := sim.Start(ctx)
				if err != nil {
					return points, err
				}
				res, err := run.Wait()
				// Record the effective axes the point actually ran with,
				// not the requested ones — they differ when a sentinel
				// kept the base configuration.
				points = append(points, SweepPoint{
					Bias: v, Ranks: sim.cfg.ranks, Precision: sim.cfg.precision, Result: res,
				})
				if err != nil {
					return points, err
				}
			}
		}
	}
	return points, nil
}

// withSequential is the Ranks-axis value 0: it overrides any base
// WithRanks back to the sequential solver, dropping the
// distributed-only knobs (schedule, tiles, workers, error probe) the
// base options may carry — a sequential grid point must validate even
// when the base configuration is distributed.
func withSequential() Option {
	return func(c *config) error {
		c.ranks = 0
		c.schedule = Phases
		c.ta, c.te = 0, 0
		c.workers = 0
		c.errorProbe = false
		return nil
	}
}
