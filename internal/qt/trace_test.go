package qt

import (
	"context"
	"testing"
)

// collectCats runs the given simulation and indexes the recorded spans
// by category and by rank.
func collectCats(t *testing.T, spec Spec, opts ...Option) (cats map[string]int, ranks map[int]bool) {
	t.Helper()
	sim, err := New(spec, opts...)
	if err != nil {
		t.Fatal(err)
	}
	run, err := sim.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	res, err := run.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Spans == nil {
		t.Fatal("WithTrace run returned nil Spans")
	}
	cats = map[string]int{}
	ranks = map[int]bool{}
	for _, sp := range res.Spans.Spans {
		cats[sp.Cat]++
		ranks[sp.Rank] = true
		if sp.Dur < 0 {
			t.Errorf("span %q: negative duration %d", sp.Name, sp.Dur)
		}
	}
	return cats, ranks
}

// TestTraceSequential pins that a traced sequential run records the
// iteration envelope, the GF/SSE phases, and per-point BC/RGF spans.
func TestTraceSequential(t *testing.T) {
	cats, _ := collectCats(t, smallSpec(), WithTrace(), WithMaxIterations(2), WithTolerance(1e-300))
	for _, c := range []string{"iter", "gf", "sse", "bc", "rgf"} {
		if cats[c] == 0 {
			t.Errorf("category %q missing from sequential trace (got %v)", c, cats)
		}
	}
	if cats["iter"] != 2 {
		t.Errorf("iter spans = %d, want 2", cats["iter"])
	}
}

// TestTraceDistributed pins the distributed coverage contract for both
// schedules: BC, RGF, SSE, and exchange spans for every rank.
func TestTraceDistributed(t *testing.T) {
	for _, sch := range []Schedule{Phases, Overlap} {
		sch := sch
		t.Run(sch.String(), func(t *testing.T) {
			const P = 2
			cats, ranks := collectCats(t, smallSpec(),
				WithTrace(), WithRanks(P), WithSchedule(sch),
				WithMaxIterations(2), WithTolerance(1e-300))
			for _, c := range []string{"iter", "bc", "rgf", "sse", "exchange", "reduce"} {
				if cats[c] == 0 {
					t.Errorf("category %q missing from %s trace (got %v)", c, sch, cats)
				}
			}
			for r := 0; r < P; r++ {
				if !ranks[r] {
					t.Errorf("rank %d recorded no spans", r)
				}
			}
		})
	}
}

// TestTraceDisabled pins the off-by-default contract: without WithTrace
// the result carries no spans.
func TestTraceDisabled(t *testing.T) {
	sim, err := New(smallSpec(), WithMaxIterations(1))
	if err != nil {
		t.Fatal(err)
	}
	run, err := sim.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	res, err := run.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Spans != nil {
		t.Errorf("untraced run has %d spans, want nil", len(res.Spans.Spans))
	}
}

// TestTraceChangesKey pins that WithTrace participates in the content
// hash: a traced and an untraced run address different cache entries.
func TestTraceChangesKey(t *testing.T) {
	plain, err := New(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	traced, err := New(smallSpec(), WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Config().Key() == traced.Config().Key() {
		t.Error("traced and untraced configurations share a key")
	}
	rt, err := NewFromConfig(traced.Config())
	if err != nil {
		t.Fatal(err)
	}
	if rt.Config().Key() != traced.Config().Key() {
		t.Error("Trace flag lost in the RunConfig round trip")
	}
}
