package qt

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestParseScheduleAndKernel(t *testing.T) {
	schedCases := []struct {
		in   string
		want Schedule
		err  bool
	}{
		{"phases", Phases, false},
		{"", Phases, false},
		{"overlap", Overlap, false},
		{"bulk", Phases, true},
	}
	for _, tc := range schedCases {
		got, err := ParseSchedule(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Errorf("ParseSchedule(%q) = %v, %v; want %v, err=%v", tc.in, got, err, tc.want, tc.err)
		}
	}
	kernCases := []struct {
		in   string
		want Kernel
		err  bool
	}{
		{"dace", DataCentric, false},
		{"", DataCentric, false},
		{"omen", Baseline, false},
		{"mixed", DataCentric, true}, // mixed is a precision, not a kernel
	}
	for _, tc := range kernCases {
		got, err := ParseKernel(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Errorf("ParseKernel(%q) = %v, %v; want %v, err=%v", tc.in, got, err, tc.want, tc.err)
		}
	}
}

// TestRunConfigRoundTrip pins the satellite contract: the resolved
// option set survives Config → JSON → Unmarshal → NewFromConfig → Config
// unchanged, for a representative cell of every solver path.
func TestRunConfigRoundTrip(t *testing.T) {
	cases := map[string][]Option{
		"defaults":   nil,
		"sequential": {WithTolerance(1e-4), WithMaxIterations(7), WithMixing(0.3), WithAnderson(), WithBoundaryCache(false)},
		"baseline":   {WithKernel(Baseline), WithBias(0.1)},
		"distributed": {WithRanks(4), WithSchedule(Overlap), WithWorkers(2),
			WithTiles(2, 2), WithPrecision(Mixed), WithErrorProbe()},
	}
	for name, opts := range cases {
		t.Run(name, func(t *testing.T) {
			sim, err := New(smallSpec(), opts...)
			if err != nil {
				t.Fatal(err)
			}
			rc := sim.Config()

			b, err := json.Marshal(rc)
			if err != nil {
				t.Fatal(err)
			}
			var back RunConfig
			if err := json.Unmarshal(b, &back); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(rc, back) {
				t.Fatalf("JSON round trip changed the config:\n was %+v\n got %+v", rc, back)
			}

			sim2, err := NewFromConfig(back)
			if err != nil {
				t.Fatal(err)
			}
			rc2 := sim2.Config()
			if !reflect.DeepEqual(rc, rc2) {
				t.Fatalf("NewFromConfig round trip changed the config:\n was %+v\n got %+v", rc, rc2)
			}
			if rc.Key() != rc2.Key() {
				t.Fatalf("round trip changed the key: %s vs %s", rc.Key(), rc2.Key())
			}
		})
	}
}

func TestRunConfigKey(t *testing.T) {
	base := func() *Simulation {
		sim, err := New(smallSpec(), WithRanks(4), WithPrecision(Mixed))
		if err != nil {
			t.Fatal(err)
		}
		return sim
	}

	// Identical resolved configurations share a key, independent of the
	// option order that produced them.
	a := base().Config()
	simB, err := New(smallSpec(), WithPrecision(Mixed), WithRanks(4), WithTiles(1, 4))
	if err != nil {
		t.Fatal(err)
	}
	if b := simB.Config(); a.Key() != b.Key() {
		t.Errorf("equivalent configurations hash differently:\n %s\n %s", a.Key(), b.Key())
	}

	// Any knob change must change the key.
	variants := map[string][]Option{
		"ranks":     {WithRanks(2), WithPrecision(Mixed)},
		"precision": {WithRanks(4)},
		"schedule":  {WithRanks(4), WithPrecision(Mixed), WithSchedule(Overlap)},
		"tolerance": {WithRanks(4), WithPrecision(Mixed), WithTolerance(1e-7)},
		"bias":      {WithRanks(4), WithPrecision(Mixed), WithBias(0.17)},
	}
	for name, opts := range variants {
		sim, err := New(smallSpec(), opts...)
		if err != nil {
			t.Fatal(err)
		}
		if sim.Config().Key() == a.Key() {
			t.Errorf("%s change did not change the key", name)
		}
	}

	// WarmKey ignores exactly the bias and the disorder seed:
	// neighbouring-bias configs share a family, any other change splits
	// it. (The disorder-seed half lives in TestProfileKeys.)
	biasSim, err := New(smallSpec(), WithRanks(4), WithPrecision(Mixed), WithBias(0.17))
	if err != nil {
		t.Fatal(err)
	}
	if a.WarmKey() != biasSim.Config().WarmKey() {
		t.Error("WarmKey differs across bias values")
	}
	tolSim, err := New(smallSpec(), WithRanks(4), WithPrecision(Mixed), WithTolerance(1e-7))
	if err != nil {
		t.Fatal(err)
	}
	if a.WarmKey() == tolSim.Config().WarmKey() {
		t.Error("WarmKey ignores more than the bias")
	}

	// The canonical hash is independent of JSON object key order: a
	// config decoded from reordered JSON hashes identically.
	rc := a
	b, _ := json.Marshal(rc)
	if !strings.HasPrefix(string(b), "{") {
		t.Fatalf("unexpected JSON form %s", b)
	}
	var back RunConfig
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Key() != rc.Key() {
		t.Error("key not stable across decode")
	}

	// Spec.Key: default-filled and explicit-default specs coincide.
	if (Spec{}).Key() != (Spec{Atoms: 24, Slabs: 6, Orbitals: 2}).Key() {
		t.Error("Spec.Key does not normalize defaults")
	}
	if (Spec{}).Key() == smallSpec().Key() {
		t.Error("different specs share a key")
	}
}
