// Package qt is the top-level experiment API of the quantum transport
// library — one facade over the entire solver matrix: the sequential
// negf solver, the distributed dist solver (bulk-synchronous phases or
// the overlapped task-graph schedule), and the fp64/mixed-precision SSE
// paths, mirroring how the paper's DaCe OMEN exposes a single
// data-centric entry point for a full electro-thermal simulation.
//
// A minimal simulation is three lines:
//
//	sim, _ := qt.New(qt.Spec{Atoms: 24, Slabs: 6, Orbitals: 2})
//	run, _ := sim.Start(context.Background())
//	res, _ := run.Wait()
//
// Every knob beyond the physical Spec is a functional option — an unset
// knob is simply an absent option:
//
//	sim, err := qt.New(spec,
//		qt.WithRanks(8),                // distributed, P = 8 simulated ranks
//		qt.WithSchedule(qt.Overlap),    // task-graph execution
//		qt.WithPrecision(qt.Mixed),     // §5.4 binary16 SSE + half wire
//		qt.WithTolerance(1e-5),
//	)
//
// Start returns a run handle: the run is cancellable between
// self-consistent iterations through the context, and streams one
// IterStats per iteration (the unified telemetry schema shared by the
// sequential and distributed solvers) while it executes. The Sweep
// driver fans one Spec across bias/world-size/precision grids for I-V
// curves and scaling studies.
package qt

import (
	"fmt"

	"repro/internal/decomp"
	"repro/internal/device"
)

// Spec describes the physical experiment: the synthetic structure and
// the (kz, E, ω) grid it is solved on. Zero fields take the documented
// defaults (the paper-scale-down FinFET slice used across the repo);
// execution knobs — solver selection, precision, tolerances — are
// options on New, not Spec fields.
// The JSON field names are part of the service wire format (the qtd
// request body and registry records serialize Spec through RunConfig)
// and must stay stable.
type Spec struct {
	Atoms    int `json:"atoms,omitempty"`    // total atoms (default 24)
	Slabs    int `json:"slabs,omitempty"`    // block-tridiagonal slabs (default 6)
	Orbitals int `json:"orbitals,omitempty"` // orbitals per atom (default 2)

	MomentumPoints int     `json:"momentum_points,omitempty"` // Nkz = Nqz (default 3)
	EnergyPoints   int     `json:"energy_points,omitempty"`   // NE (default 24)
	PhononModes    int     `json:"phonon_modes,omitempty"`    // Nω (default 4)
	Bias           float64 `json:"bias,omitempty"`            // Vds in eV (default 0.3; WithBias sets any value, including 0)
	Temperature    float64 `json:"temperature,omitempty"`     // contact temperature in K (default 300)
	Coupling       float64 `json:"coupling,omitempty"`        // electron-phonon strength (default 0.08)
	Seed           uint64  `json:"seed,omitempty"`            // structure seed (default 0x5eed)

	// Profile is the optional device-zoo layer: heterojunction regions,
	// gates, doping/vacancy disorder and strain lowered onto the built
	// device (see device.Profile for the lowering contract). It is part
	// of the wire format and therefore of the RunConfig content hash —
	// each (profile, disorder_seed) realization is its own cache
	// artifact.
	Profile *device.Profile `json:"profile,omitempty"`
	// DisorderSeed seeds the profile's random channels for one ensemble
	// realization. Zero is a valid seed (it is not defaulted); setting it
	// without a Profile is a validation error, since it would otherwise
	// mint distinct cache keys for physically identical runs.
	DisorderSeed uint64 `json:"disorder_seed,omitempty"`
}

// withDefaults fills zero fields.
func (s Spec) withDefaults() Spec {
	if s.Atoms == 0 {
		s.Atoms = 24
	}
	if s.Slabs == 0 {
		s.Slabs = 6
	}
	if s.Orbitals == 0 {
		s.Orbitals = 2
	}
	if s.MomentumPoints == 0 {
		s.MomentumPoints = 3
	}
	if s.EnergyPoints == 0 {
		s.EnergyPoints = 24
	}
	if s.PhononModes == 0 {
		s.PhononModes = 4
	}
	if s.Bias == 0 {
		s.Bias = 0.3
	}
	if s.Temperature == 0 {
		s.Temperature = 300
	}
	if s.Coupling == 0 {
		s.Coupling = 0.08
	}
	if s.Seed == 0 {
		s.Seed = 0x5eed
	}
	return s
}

// params resolves the spec into device parameters.
func (s Spec) params() device.Params {
	p := device.TestParams(s.Atoms, s.Slabs, s.Orbitals)
	p.Nkz = s.MomentumPoints
	p.NE = s.EnergyPoints
	p.Nomega = s.PhononModes
	p.Vds = s.Bias
	p.TC = s.Temperature
	p.Coupling = s.Coupling
	p.Seed = s.Seed
	return p
}

// Build validates the (defaulted) spec and constructs the synthetic
// device — the entry point for exchange-level tools that drive the
// lower layers directly (cmd/commsim, the scaling example) but share
// the facade's structure definition. When the spec carries a Profile,
// the realization it names (profile, disorder seed) is lowered onto the
// device before it is returned.
func (s Spec) Build() (*device.Device, error) {
	s = s.withDefaults()
	if err := s.validateProfile(); err != nil {
		return nil, err
	}
	p := s.params()
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("qt: %w", err)
	}
	dev, err := device.Build(p)
	if err != nil {
		return nil, fmt.Errorf("qt: %w", err)
	}
	if err := s.applyProfile(dev); err != nil {
		return nil, err
	}
	return dev, nil
}

// validateProfile checks the profile-related spec fields that the
// device layer cannot see.
func (s Spec) validateProfile() error {
	if s.Profile == nil && s.DisorderSeed != 0 {
		return fmt.Errorf("qt: disorder_seed set without a profile: the seed only draws profile disorder, and a seed-only spec would mint distinct cache keys for identical runs")
	}
	return nil
}

// applyProfile lowers the spec's profile (if any) onto a freshly built
// device.
func (s Spec) applyProfile(dev *device.Device) error {
	if s.Profile == nil {
		return nil
	}
	if err := s.Profile.Apply(dev, s.DisorderSeed); err != nil {
		return fmt.Errorf("qt: %w", err)
	}
	return nil
}

// Schedule selects how a distributed self-consistent iteration executes
// (dist.Schedule behind the facade).
type Schedule int

const (
	// Phases is the bulk-synchronous baseline: GF phase, SSE exchange,
	// observable reduction strictly one after another.
	Phases Schedule = iota
	// Overlap runs each iteration as a dataflow graph on a work-stealing
	// pool with nonblocking exchanges (§7.1.3).
	Overlap
	// Pipeline extends the Overlap graph across a window of
	// self-consistent iterations: the next iteration's boundary solves
	// and GF points start as soon as their mixed Σ is available, with a
	// correctness fence discarding speculated work once convergence or
	// cancellation lands. See WithPipelineDepth for the window size.
	Pipeline
)

func (s Schedule) String() string {
	switch s {
	case Overlap:
		return "overlap"
	case Pipeline:
		return "pipeline"
	}
	return "phases"
}

// ParseSchedule maps the command-line spelling to a Schedule — the
// symmetric partner of ParsePrecision/ParseKernel, so every cmd (and the
// qtd request decoder) shares one set of spellings. The empty string is
// the default schedule.
func ParseSchedule(s string) (Schedule, error) {
	switch s {
	case "phases", "":
		return Phases, nil
	case "overlap":
		return Overlap, nil
	case "pipeline":
		return Pipeline, nil
	}
	return Phases, fmt.Errorf("qt: unknown schedule %q (want phases, overlap or pipeline)", s)
}

// Precision selects the SSE arithmetic (§5.4).
type Precision int

const (
	// FP64 runs the SSE phase entirely in complex128 (the default).
	FP64 Precision = iota
	// Mixed quantizes the SSE inputs to emulated binary16 with dynamic
	// normalization (and, distributed, ships half-width wire payloads on
	// all four Alltoallv exchanges) while accumulating in fp64.
	Mixed
)

func (p Precision) String() string {
	if p == Mixed {
		return "mixed"
	}
	return "fp64"
}

// ParsePrecision maps the command-line spelling to a Precision. The
// accepted spellings are decomp.ParsePrecision's — one parser for the
// whole stack.
func ParsePrecision(s string) (Precision, error) {
	p, err := decomp.ParsePrecision(s)
	if err != nil {
		return FP64, fmt.Errorf("qt: %w", err)
	}
	if p == decomp.Mixed {
		return Mixed, nil
	}
	return FP64, nil
}

// Kernel selects the sequential SSE schedule.
type Kernel int

const (
	// DataCentric is the transformed kernel (map fission + SBSMM), the
	// paper's contribution. Default.
	DataCentric Kernel = iota
	// Baseline is the original OMEN-style 8-deep loop nest.
	Baseline
)

func (k Kernel) String() string {
	if k == Baseline {
		return "omen"
	}
	return "dace"
}

// ParseKernel maps the command-line spelling to a Kernel. The empty
// string is the default (data-centric) kernel.
func ParseKernel(s string) (Kernel, error) {
	switch s {
	case "dace", "":
		return DataCentric, nil
	case "omen":
		return Baseline, nil
	}
	return DataCentric, fmt.Errorf("qt: unknown kernel %q (want omen or dace)", s)
}
