package qt

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/sse"
)

// smallSpec is the fast structure every facade test runs on.
func smallSpec() Spec {
	return Spec{Atoms: 12, Slabs: 3, Orbitals: 2, EnergyPoints: 12, PhononModes: 3}
}

// solve runs one configuration to completion.
func solve(t *testing.T, spec Spec, opts ...Option) (*Simulation, *Result) {
	t.Helper()
	sim, err := New(spec, opts...)
	if err != nil {
		t.Fatal(err)
	}
	run, err := sim.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	res, err := run.Wait()
	if err != nil {
		t.Fatal(err)
	}
	return sim, res
}

func TestOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		opts []Option
		want string // substring of the error; "" = must succeed
	}{
		{"defaults", Spec{}, nil, ""},
		{"indivisible atoms", Spec{Atoms: 25, Slabs: 6}, nil, "device"},
		{"zero ranks", Spec{}, []Option{WithRanks(0)}, "WithRanks"},
		{"negative ranks", Spec{}, []Option{WithRanks(-2)}, "WithRanks"},
		{"zero tolerance", Spec{}, []Option{WithTolerance(0)}, "WithTolerance"},
		{"negative tolerance", Spec{}, []Option{WithTolerance(-1e-5)}, "WithTolerance"},
		{"zero iterations", Spec{}, []Option{WithMaxIterations(0)}, "WithMaxIterations"},
		{"mixing too large", Spec{}, []Option{WithMixing(1.5)}, "WithMixing"},
		{"mixing zero", Spec{}, []Option{WithMixing(0)}, "WithMixing"},
		{"overlap needs ranks", Spec{}, []Option{WithSchedule(Overlap)}, "WithRanks"},
		{"tiles need ranks", Spec{}, []Option{WithTiles(2, 2)}, "WithRanks"},
		{"workers need ranks", Spec{}, []Option{WithWorkers(2)}, "WithRanks"},
		{"workers positive", Spec{}, []Option{WithRanks(2), WithWorkers(0)}, "WithWorkers"},
		{"tile split mismatch", Spec{}, []Option{WithRanks(4), WithTiles(3, 2)}, "tile split"},
		{"tile inference", Spec{}, []Option{WithRanks(4), WithTiles(2, 0)}, ""},
		{"baseline distributed", Spec{}, []Option{WithRanks(2), WithKernel(Baseline)}, "sequential"},
		{"custom kernel distributed", Spec{}, []Option{WithRanks(2), WithSSEKernel(sse.DaCe{})}, "sequential"},
		{"anderson distributed", Spec{}, []Option{WithRanks(2), WithAnderson()}, "sequential"},
		{"probe needs mixed", Spec{}, []Option{WithRanks(2), WithErrorProbe()}, "WithErrorProbe"},
		{"probe sequential", Spec{}, []Option{WithPrecision(Mixed), WithErrorProbe()}, "WithErrorProbe"},
		{"probe ok", Spec{}, []Option{WithRanks(2), WithPrecision(Mixed), WithErrorProbe()}, ""},
		{"baseline plus mixed", Spec{}, []Option{WithKernel(Baseline), WithPrecision(Mixed)}, "conflicts"},
		{"custom kernel plus mixed", Spec{}, []Option{WithSSEKernel(sse.DaCe{}), WithPrecision(Mixed)}, "WithSSEKernel"},
		{"nil custom kernel", Spec{}, []Option{WithSSEKernel(nil)}, "WithSSEKernel"},
		{"unknown schedule", Spec{}, []Option{WithRanks(2), WithSchedule(Schedule(7))}, "WithSchedule"},
		{"pipeline needs ranks", Spec{}, []Option{WithSchedule(Pipeline)}, "WithRanks"},
		{"pipeline ok", Spec{}, []Option{WithRanks(2), WithSchedule(Pipeline)}, ""},
		{"pipeline with depth", Spec{}, []Option{WithRanks(2), WithSchedule(Pipeline), WithPipelineDepth(3)}, ""},
		{"depth zero", Spec{}, []Option{WithRanks(2), WithSchedule(Pipeline), WithPipelineDepth(0)}, "WithPipelineDepth"},
		{"depth negative", Spec{}, []Option{WithRanks(2), WithSchedule(Pipeline), WithPipelineDepth(-1)}, "WithPipelineDepth"},
		{"depth needs ranks", Spec{}, []Option{WithPipelineDepth(2)}, "WithRanks"},
		{"depth needs pipeline", Spec{}, []Option{WithRanks(2), WithPipelineDepth(2)}, "WithSchedule(Pipeline)"},
		{"depth under overlap", Spec{}, []Option{WithRanks(2), WithSchedule(Overlap), WithPipelineDepth(2)}, "WithSchedule(Pipeline)"},
		{"pipeline probe fp64", Spec{}, []Option{WithRanks(2), WithSchedule(Pipeline), WithErrorProbe()}, "WithErrorProbe"},
		{"pipeline probe mixed", Spec{}, []Option{WithRanks(2), WithSchedule(Pipeline), WithPrecision(Mixed), WithErrorProbe()}, "WithErrorProbe"},
		{"pipeline mixed ok", Spec{}, []Option{WithRanks(2), WithSchedule(Pipeline), WithPrecision(Mixed)}, ""},
		{"autoplan needs ranks", Spec{}, []Option{WithAutoPlan()}, "WithRanks"},
		{"autoplan owns schedule", Spec{}, []Option{WithRanks(2), WithAutoPlan(), WithSchedule(Overlap)}, "WithAutoPlan owns"},
		{"autoplan owns workers", Spec{}, []Option{WithRanks(2), WithAutoPlan(), WithWorkers(2)}, "WithAutoPlan owns"},
		{"autoplan owns depth", Spec{}, []Option{WithRanks(2), WithAutoPlan(), WithPipelineDepth(2)}, "WithSchedule(Pipeline)"},
		{"autoplan no probe", Spec{}, []Option{WithRanks(2), WithAutoPlan(), WithPrecision(Mixed), WithErrorProbe()}, "WithAutoPlan"},
		{"unknown precision", Spec{}, []Option{WithPrecision(Precision(7))}, "WithPrecision"},
		{"unknown kernel", Spec{}, []Option{WithKernel(Kernel(7))}, "WithKernel"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := New(c.spec, c.opts...)
			if c.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected an error mentioning %q, got nil", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestDefaultsProduceRunnableSimulation(t *testing.T) {
	sim, err := New(Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if sim.Spec.Atoms != 24 || sim.Spec.Slabs != 6 {
		t.Fatalf("defaults not applied: %+v", sim.Spec)
	}
	obs, err := sim.Ballistic()
	if err != nil {
		t.Fatal(err)
	}
	if obs.CurrentL <= 0 {
		t.Fatal("default bias should drive current")
	}
}

func TestRunSummarizesPhysics(t *testing.T) {
	spec := Spec{Atoms: 16, Slabs: 4, EnergyPoints: 20, PhononModes: 3, Coupling: 0.12}
	_, res := solve(t, spec, WithMaxIterations(20))
	if !res.Converged {
		t.Fatalf("expected convergence, got %d iterations", res.Iterations)
	}
	if res.Current <= 0 {
		t.Fatal("current should be positive under forward bias")
	}
	if res.MaxTemperature <= 300 {
		t.Fatalf("Joule heating should raise the lattice above 300 K, got %g", res.MaxTemperature)
	}
	if res.HotSpot == 0 || res.HotSpot == spec.Slabs-1 {
		t.Fatalf("hot spot should be interior, got slab %d", res.HotSpot)
	}
	if res.EnergyBalance < 0.5 || res.EnergyBalance > 1.5 {
		t.Fatalf("energy balance %g far from unity", res.EnergyBalance)
	}
	if len(res.Trace) != res.Iterations {
		t.Fatalf("trace has %d rows for %d iterations", len(res.Trace), res.Iterations)
	}
}

func TestKernelChoicesAgree(t *testing.T) {
	run := func(k Kernel) float64 {
		_, res := solve(t, smallSpec(), WithKernel(k),
			WithMaxIterations(4), WithTolerance(1e-12))
		return res.Current
	}
	a, b := run(DataCentric), run(Baseline)
	if rel := math.Abs(a-b) / math.Abs(a); rel > 1e-9 {
		t.Fatalf("kernel choice changed the physics: %g vs %g", a, b)
	}
}

func TestBoundaryCacheToggle(t *testing.T) {
	_, ra := solve(t, smallSpec(), WithMaxIterations(3))
	_, rb := solve(t, smallSpec(), WithMaxIterations(3), WithBoundaryCache(false))
	if ra.Current != rb.Current {
		t.Fatalf("boundary caching changed the physics: %g vs %g", ra.Current, rb.Current)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	mk := func() float64 {
		_, res := solve(t, smallSpec(), WithMaxIterations(3))
		return res.Current
	}
	if mk() != mk() {
		t.Fatal("same config must reproduce bit-identical results")
	}
}

func TestParsePrecision(t *testing.T) {
	if p, err := ParsePrecision("mixed"); err != nil || p != Mixed {
		t.Errorf("ParsePrecision(mixed) = %v, %v", p, err)
	}
	if p, err := ParsePrecision("fp64"); err != nil || p != FP64 {
		t.Errorf("ParsePrecision(fp64) = %v, %v", p, err)
	}
	if _, err := ParsePrecision("fp128"); err == nil {
		t.Error("ParsePrecision must reject unknown spellings")
	}
}

func TestSpecReportsEffectiveBias(t *testing.T) {
	sim, err := New(smallSpec(), WithBias(0.15))
	if err != nil {
		t.Fatal(err)
	}
	if sim.Spec.Bias != 0.15 {
		t.Fatalf("Spec.Bias = %g after WithBias(0.15)", sim.Spec.Bias)
	}
}

func TestSweepRankZeroOverridesBaseRanks(t *testing.T) {
	// A 0 on the Ranks axis must force the sequential solver even when
	// the base options request a distributed one, and the point must be
	// labelled with what actually ran.
	points, err := Sweep{
		Spec:    smallSpec(),
		Options: []Option{WithRanks(2), WithMaxIterations(2), WithTolerance(1e-300)},
		Ranks:   []int{0},
	}.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 || points[0].Ranks != 0 {
		t.Fatalf("expected one sequential point, got %+v", points)
	}
	if points[0].Result.Comm != nil {
		t.Error("a sequential point must not carry distributed comm stats")
	}

	// The override must also drop the distributed-only knobs the base
	// options carry, or the sequential point cannot validate.
	points, err = Sweep{
		Spec: smallSpec(),
		Options: []Option{WithRanks(2), WithSchedule(Overlap), WithWorkers(2),
			WithMaxIterations(2), WithTolerance(1e-300)},
		Ranks: []int{0, 2},
	}.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 || points[0].Ranks != 0 || points[1].Ranks != 2 {
		t.Fatalf("expected a sequential and a distributed point, got %+v", points)
	}
}

func TestWithBiasOverridesZero(t *testing.T) {
	// An explicit zero bias must survive defaulting — the knob the I-V
	// sweeps turn. Without WithBias, Spec.Bias == 0 takes the 0.3 default.
	sim, err := New(smallSpec(), WithBias(0))
	if err != nil {
		t.Fatal(err)
	}
	if sim.Device.P.Vds != 0 {
		t.Fatalf("WithBias(0) ended up at Vds=%g", sim.Device.P.Vds)
	}
	obs, err := sim.Ballistic()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(obs.CurrentL) > 1e-12 {
		t.Fatalf("zero bias should carry ~zero current, got %g", obs.CurrentL)
	}
}
