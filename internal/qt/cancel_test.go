package qt

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// cancelAfter launches the configuration, cancels the context as soon
// as the first iteration's telemetry arrives, and returns the outcome.
func cancelAfter(t *testing.T, opts ...Option) (*Result, error) {
	t.Helper()
	sim, err := New(smallSpec(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	run, err := sim.Start(ctx)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		<-run.Stats() // first iteration done
		cancel()
	}()
	done := make(chan struct{})
	var res *Result
	go func() {
		res, err = run.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("cancelled run did not finish: solver ignored the context")
	}
	return res, err
}

// TestCancelStopsRun cancels mid-run on every solver path and checks
// the run stops between iterations with a valid partial result and no
// leaked rank goroutines.
func TestCancelStopsRun(t *testing.T) {
	const budget = 50 // far more iterations than a cancelled run may use
	configs := map[string][]Option{
		"sequential":  {WithMaxIterations(budget), WithTolerance(1e-300)},
		"dist-phases": {WithRanks(4), WithMaxIterations(budget), WithTolerance(1e-300)},
		"dist-overlap": {WithRanks(4), WithSchedule(Overlap), WithWorkers(2),
			WithMaxIterations(budget), WithTolerance(1e-300)},
		"dist-overlap-mixed": {WithRanks(4), WithSchedule(Overlap), WithPrecision(Mixed),
			WithMaxIterations(budget), WithTolerance(1e-300)},
	}
	for name, opts := range configs {
		t.Run(name, func(t *testing.T) {
			before := runtime.NumGoroutine()
			res, err := cancelAfter(t, opts...)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("want context.Canceled, got %v", err)
			}
			if res == nil {
				t.Fatal("cancellation must still return the partial result")
			}
			if res.Converged {
				t.Error("a cancelled run cannot report convergence")
			}
			if len(res.Trace) == 0 || len(res.Trace) >= budget/2 {
				t.Errorf("expected an early stop, got %d of %d iterations", len(res.Trace), budget)
			}
			if res.Trace[len(res.Trace)-1].Current == 0 {
				t.Error("partial trace should carry the completed iterations' currents")
			}
			// All simulated ranks must have drained: no goroutine leak.
			deadline := time.Now().Add(5 * time.Second)
			for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
				time.Sleep(10 * time.Millisecond)
			}
			if n := runtime.NumGoroutine(); n > before+2 {
				t.Errorf("goroutines leaked: %d before, %d after cancellation", before, n)
			}
		})
	}
}

// TestStartOnCancelledContext must refuse to launch.
func TestStartOnCancelledContext(t *testing.T) {
	sim, err := New(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sim.Start(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled from Start, got %v", err)
	}
}
