package qt

import (
	"context"
	"errors"
	"math"
	"runtime"
	"strings"
	"testing"

	"repro/internal/linalg"
)

// TestPipelineThroughFacade runs the pipelined schedule end to end via
// the facade and pins the 1e-12 equivalence against the sequential
// solver, plus the plan announcement on the first streamed row.
func TestPipelineThroughFacade(t *testing.T) {
	const iters = 3
	_, seq := solve(t, smallSpec(), WithMaxIterations(iters), WithTolerance(1e-300))
	sim, res := solve(t, smallSpec(), WithRanks(4), WithSchedule(Pipeline),
		WithPipelineDepth(2), WithWorkers(2),
		WithMaxIterations(iters), WithTolerance(1e-300))
	if len(res.Trace) != iters {
		t.Fatalf("pipeline ran %d iterations, want %d", len(res.Trace), iters)
	}
	for i := range res.Trace {
		rel := math.Abs(res.Trace[i].Current-seq.Trace[i].Current) /
			math.Abs(seq.Trace[i].Current)
		if rel > 1e-12 {
			t.Errorf("iter %d: pipeline %.17g vs sequential %.17g (rel %.3g)",
				i, res.Trace[i].Current, seq.Trace[i].Current, rel)
		}
	}
	if want := "pipeline w=2 d=2"; sim.PlanString() != want {
		t.Errorf("PlanString() = %q, want %q", sim.PlanString(), want)
	}
	if res.Trace[0].Plan != sim.PlanString() {
		t.Errorf("first row announces %q, want %q", res.Trace[0].Plan, sim.PlanString())
	}
	for _, row := range res.Trace[1:] {
		if row.Plan != "" {
			t.Errorf("iter %d repeats the plan announcement", row.Iter)
		}
	}
}

// TestPipelineCancelThroughFacade cancels a pipelined run mid-window:
// the ride-along stop must drain every rank cleanly (no leaked
// goroutines) and return the context error with the partial trace.
func TestPipelineCancelThroughFacade(t *testing.T) {
	before := runtime.NumGoroutine()
	res, err := cancelAfter(t, WithRanks(4), WithSchedule(Pipeline), WithPipelineDepth(3),
		WithMaxIterations(50), WithTolerance(1e-300))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
	if res == nil || len(res.Trace) == 0 || len(res.Trace) >= 50 {
		t.Fatalf("expected a truncated partial trace, got %+v", res)
	}
	for i := 0; i < 50 && runtime.NumGoroutine() > before; i++ {
		runtime.Gosched()
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		t.Errorf("goroutines grew from %d to %d: ranks leaked past the fence", before, g)
	}
}

// TestPipelineConfigRoundTrip: the pipeline knobs survive the RunConfig
// round-trip with a stable content key.
func TestPipelineConfigRoundTrip(t *testing.T) {
	sim, err := New(smallSpec(), WithRanks(4), WithSchedule(Pipeline), WithPipelineDepth(3))
	if err != nil {
		t.Fatal(err)
	}
	rc := sim.Config()
	if rc.Schedule != "pipeline" || rc.PipelineDepth != 3 {
		t.Fatalf("config lost the pipeline knobs: %+v", rc)
	}
	sim2, err := NewFromConfig(rc)
	if err != nil {
		t.Fatal(err)
	}
	if sim2.Config() != rc {
		t.Errorf("round-trip drifted:\n  %+v\n  %+v", rc, sim2.Config())
	}
	if sim2.Config().Key() != rc.Key() {
		t.Error("round-trip changed the content key")
	}
}

// TestAutoPlanResolvesAndRoundTrips is the WithAutoPlan contract: New
// resolves a concrete plan, Config records it (AutoPlan set and
// Schedule non-empty — the resolved marker), rebuilding from that
// config keeps the plan without re-probing, and the content key is
// stable across the round trip.
func TestAutoPlanResolvesAndRoundTrips(t *testing.T) {
	defer linalg.ResetBlocking()
	sim, err := New(smallSpec(), WithRanks(2), WithAutoPlan(), WithMaxIterations(3))
	if err != nil {
		t.Fatal(err)
	}
	rc := sim.Config()
	if !rc.AutoPlan {
		t.Fatal("config dropped auto_plan")
	}
	if rc.Schedule == "" {
		t.Fatal("resolved config must record the chosen schedule")
	}
	if rc.Workers < 1 {
		t.Fatalf("resolved config must record the chosen workers, got %d", rc.Workers)
	}
	if !strings.Contains(sim.PlanString(), "[auto]") {
		t.Errorf("PlanString %q does not mark the auto plan", sim.PlanString())
	}

	sim2, err := NewFromConfig(rc)
	if err != nil {
		t.Fatal(err)
	}
	if sim2.Config() != rc {
		t.Errorf("resolved plan drifted across the round trip:\n  %+v\n  %+v", rc, sim2.Config())
	}
	if sim2.Config().Key() != rc.Key() {
		t.Error("round-trip changed the content key")
	}

	// The resolved plan is part of the artifact identity: the same
	// request without auto-planning hashes differently.
	plain, err := New(smallSpec(), WithRanks(2), WithMaxIterations(3))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Config().Key() == rc.Key() {
		t.Error("auto-planned and plain configurations share a key")
	}

	// And the planned run still solves correctly.
	run, err := sim2.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	res, err := run.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 || res.Current == 0 {
		t.Fatalf("auto-planned run produced no physics: %+v", res)
	}
}

// TestGemmBlockingConfigParse covers the serialized-blocking path: a
// valid MCxKCxNC string round-trips, a malformed one is rejected.
func TestGemmBlockingConfigParse(t *testing.T) {
	defer linalg.ResetBlocking()
	rc := RunConfig{Spec: smallSpec(), GemmBlocking: "64x64x128"}
	if _, err := NewFromConfig(rc); err != nil {
		t.Fatal(err)
	}
	if got := linalg.Blocking(); got != (linalg.BlockSizes{MC: 64, KC: 64, NC: 128}) {
		t.Errorf("blocking not installed: %+v", got)
	}
	rc.GemmBlocking = "64x64"
	if _, err := NewFromConfig(rc); err == nil || !strings.Contains(err.Error(), "gemm_blocking") {
		t.Errorf("malformed blocking string not rejected: %v", err)
	}
	rc.GemmBlocking = "1x0x0"
	if _, err := NewFromConfig(rc); err == nil {
		t.Error("inadmissible blocking not rejected")
	}
}
