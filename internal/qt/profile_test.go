package qt

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/device"
)

// disorderedSpec is smallSpec carrying a full device-zoo profile and a
// disorder seed — one ensemble realization.
func disorderedSpec(seed uint64) Spec {
	s := smallSpec()
	s.Profile = &device.Profile{
		Regions:   []Region{{From: 0, To: 0, Offset: 0.1}},
		Gates:     []Gate{{Center: 1, Width: 1, Depth: 0.1}},
		Doping:    &device.Doping{Fraction: 0.2, Shift: -0.08},
		Strain:    &device.Strain{Amplitude: 0.04},
		Vacancies: &device.Vacancies{Fraction: 0.05},
	}
	s.DisorderSeed = seed
	return s
}

// Region and Gate alias the device types for test brevity.
type (
	Region = device.Region
	Gate   = device.Gate
)

// TestProfileKeys pins the ensemble cache contract: same (profile,
// seed) → identical RunConfig keys; different seeds → distinct keys but
// one WarmKey family; a profile change splits the family.
func TestProfileKeys(t *testing.T) {
	mk := func(spec Spec) RunConfig {
		sim, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		return sim.Config()
	}
	a1, a2 := mk(disorderedSpec(11)), mk(disorderedSpec(11))
	b := mk(disorderedSpec(12))
	clean := mk(smallSpec())

	if a1.Key() != a2.Key() {
		t.Error("same (profile, seed) produced distinct keys")
	}
	if a1.Key() == b.Key() {
		t.Error("different disorder seeds share a key")
	}
	if a1.Key() == clean.Key() {
		t.Error("profiled and clean specs share a key")
	}
	if a1.WarmKey() != b.WarmKey() {
		t.Error("sibling realizations do not share a WarmKey family")
	}
	if a1.WarmKey() == clean.WarmKey() {
		t.Error("WarmKey ignores the profile itself, not just the seed")
	}
	deeper := disorderedSpec(11)
	deeper.Profile.Gates[0].Depth = 0.2
	if mk(deeper).WarmKey() == a1.WarmKey() {
		t.Error("a profile change did not split the WarmKey family")
	}
}

// TestProfileRoundTrip: a profiled spec survives Config → JSON →
// NewFromConfig unchanged — the qtd wire path for ensemble members.
func TestProfileRoundTrip(t *testing.T) {
	sim, err := New(disorderedSpec(5), WithTolerance(1e-4))
	if err != nil {
		t.Fatal(err)
	}
	rc := sim.Config()
	b, err := json.Marshal(rc)
	if err != nil {
		t.Fatal(err)
	}
	var back RunConfig
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rc, back) {
		t.Fatalf("JSON round trip changed the profiled config:\n was %+v\n got %+v", rc, back)
	}
	sim2, err := NewFromConfig(back)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Key() != sim2.Config().Key() {
		t.Error("profiled config key not stable across the wire round trip")
	}
}

// TestProfileDeviceDeterminism: two simulations of the same realization
// hold bitwise-identical devices (spot-checked through H(kz)).
func TestProfileDeviceDeterminism(t *testing.T) {
	build := func() *Simulation {
		sim, err := New(disorderedSpec(42))
		if err != nil {
			t.Fatal(err)
		}
		return sim
	}
	d1, d2 := build().Device, build().Device
	for ikz := 0; ikz < d1.P.Nkz; ikz++ {
		h1, h2 := d1.Hamiltonian(ikz), d2.Hamiltonian(ikz)
		for s := 0; s < d1.P.Bnum; s++ {
			a, b := h1.Diag[s], h2.Diag[s]
			for i := range a.Data {
				if a.Data[i] != b.Data[i] {
					t.Fatalf("H(kz=%d) diag block %d differs between identical realizations", ikz, s)
				}
			}
		}
	}
}

// TestDisorderSeedRequiresProfile: a seed with no profile is a spec
// error, not a silently distinct cache key.
func TestDisorderSeedRequiresProfile(t *testing.T) {
	s := smallSpec()
	s.DisorderSeed = 9
	if _, err := New(s); err == nil || !strings.Contains(err.Error(), "disorder_seed") {
		t.Fatalf("New accepted disorder_seed without profile (err = %v)", err)
	}
	if _, err := s.Build(); err == nil || !strings.Contains(err.Error(), "disorder_seed") {
		t.Fatalf("Build accepted disorder_seed without profile (err = %v)", err)
	}
}

// TestProfileValidationSurfacesThroughNew: a malformed profile is
// rejected at construction, with the device layer's message intact.
func TestProfileValidationSurfacesThroughNew(t *testing.T) {
	s := smallSpec()
	s.Profile = &device.Profile{Regions: []Region{{From: 0, To: 99, Offset: 1}}}
	if _, err := New(s); err == nil || !strings.Contains(err.Error(), "slab range") {
		t.Fatalf("New accepted an out-of-range profile region (err = %v)", err)
	}
}
