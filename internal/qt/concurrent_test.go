package qt

import (
	"context"
	"math"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestConcurrentStartsBitIdentical is the solver-slot-pool invariant the
// qtd server multiplexes on: N simulations running concurrently in one
// process must leak no goroutines and produce bit-identical fp64
// currents to the same specs solved serially. Run under -race in CI.
func TestConcurrentStartsBitIdentical(t *testing.T) {
	opts := func() []Option { return []Option{WithMaxIterations(4), WithTolerance(1e-300)} }
	// A mix of sequential points (different biases → different answers)
	// and one distributed configuration sharing the process.
	points := []struct {
		bias  float64
		extra []Option
	}{
		{0.10, nil},
		{0.20, nil},
		{0.30, nil},
		{0.30, []Option{WithRanks(2)}},
		{0.40, []Option{WithPrecision(Mixed)}},
	}

	serial := make([]float64, len(points))
	for i, pt := range points {
		_, res := solve(t, smallSpec(), append(append(opts(), WithBias(pt.bias)), pt.extra...)...)
		serial[i] = res.Current
	}

	before := runtime.NumGoroutine()
	const rounds = 3 // each spec solved concurrently with itself and the others
	results := make([][]float64, rounds)
	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		results[r] = make([]float64, len(points))
		for i, pt := range points {
			wg.Add(1)
			go func(r, i int, bias float64, extra []Option) {
				defer wg.Done()
				sim, err := New(smallSpec(), append(append(opts(), WithBias(bias)), extra...)...)
				if err != nil {
					t.Error(err)
					return
				}
				run, err := sim.Start(context.Background())
				if err != nil {
					t.Error(err)
					return
				}
				res, err := run.Wait()
				if err != nil {
					t.Error(err)
					return
				}
				results[r][i] = res.Current
			}(r, i, pt.bias, pt.extra)
		}
	}
	wg.Wait()

	for r := range results {
		for i := range results[r] {
			if math.Float64bits(results[r][i]) != math.Float64bits(serial[i]) {
				t.Errorf("round %d point %d: concurrent current %v != serial %v (not bit-identical)",
					r, i, results[r][i], serial[i])
			}
		}
	}

	waitForGoroutines(t, before)
}

// TestConcurrentSweeps runs whole Sweep grids concurrently with each
// other and checks the grid results match a serial execution bitwise.
func TestConcurrentSweeps(t *testing.T) {
	grid := func() Sweep {
		return Sweep{
			Spec:    smallSpec(),
			Options: []Option{WithMaxIterations(3), WithTolerance(1e-300)},
			Bias:    []float64{0.1, 0.3},
			Ranks:   []int{0, 2},
		}
	}
	want, err := grid().Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	const sweeps = 3
	got := make([][]SweepPoint, sweeps)
	var wg sync.WaitGroup
	for i := 0; i < sweeps; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pts, err := grid().Run(context.Background())
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = pts
		}(i)
	}
	wg.Wait()

	for i := range got {
		if len(got[i]) != len(want) {
			t.Fatalf("sweep %d returned %d points, want %d", i, len(got[i]), len(want))
		}
		for j := range got[i] {
			g, w := got[i][j].Result.Current, want[j].Result.Current
			if math.Float64bits(g) != math.Float64bits(w) {
				t.Errorf("sweep %d point %d: current %v != serial %v (not bit-identical)", i, j, g, w)
			}
		}
	}

	waitForGoroutines(t, before)
}

// waitForGoroutines asserts the process drains back to (about) the
// pre-test goroutine count — no leaked solver, rank, or stream goroutines.
func waitForGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Errorf("goroutines leaked: %d before, %d after", before, n)
	}
}
