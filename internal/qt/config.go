package qt

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/linalg"
)

// RunConfig is the exported, JSON-stable form of a resolved experiment
// configuration: the defaulted Spec plus every option knob, each in its
// flag spelling. It is what the qtd service accepts as a request body
// and records in the run registry, and what the content-addressed result
// cache hashes — so the field set and JSON names are a wire format.
//
// The zero value of every knob means "option absent" (the facade
// default), mirroring how an unset functional option leaves the default
// in place; booleans are therefore spelled in their non-default
// direction (NoBoundaryCache). Two facade knobs have no RunConfig form:
// WithSSEKernel (an injected Go value cannot be serialized; Config drops
// it) and an explicit zero bias (Spec.Bias = 0 means the Spec default,
// exactly as in Spec itself — WithBias(0) is option-only).
type RunConfig struct {
	Spec Spec `json:"spec"`

	Ranks     int    `json:"ranks,omitempty"`     // 0 = sequential solver
	Schedule  string `json:"schedule,omitempty"`  // ParseSchedule spellings
	Precision string `json:"precision,omitempty"` // ParsePrecision spellings
	Kernel    string `json:"kernel,omitempty"`    // ParseKernel spellings

	MaxIterations   int     `json:"max_iterations,omitempty"`
	Tolerance       float64 `json:"tolerance,omitempty"`
	Mixing          float64 `json:"mixing,omitempty"`
	NoBoundaryCache bool    `json:"no_boundary_cache,omitempty"`
	Anderson        bool    `json:"anderson,omitempty"`
	TileA           int     `json:"tile_a,omitempty"`
	TileE           int     `json:"tile_e,omitempty"`
	Workers         int     `json:"workers,omitempty"`
	ErrorProbe      bool    `json:"error_probe,omitempty"`
	// PipelineDepth is the iteration-window size of the pipeline
	// schedule (qt.WithPipelineDepth; 0 = the dist default).
	PipelineDepth int `json:"pipeline_depth,omitempty"`
	// AutoPlan records that the plan knobs were (or are to be) chosen by
	// the autotuner. In a resolved configuration (Simulation.Config
	// output) Schedule is always non-empty alongside it — that is how
	// NewFromConfig tells a resolved plan from a bare auto-plan request,
	// which it resolves by probing at New. The resolved knobs take part
	// in the content hash: two runs planned differently are different
	// artifacts.
	AutoPlan bool `json:"auto_plan,omitempty"`
	// GemmBlocking is a resolved GEMM cache blocking ("MCxKCxNC"),
	// recorded when a plan installed one.
	GemmBlocking string `json:"gemm_blocking,omitempty"`
	// Trace enables per-phase span recording (qt.WithTrace). It is part
	// of the hashed configuration: a traced and an untraced run are
	// different artifacts (the trace is part of the result), so they
	// address different cache entries.
	Trace bool `json:"trace,omitempty"`
}

// Config exports the simulation's resolved configuration: the defaulted
// Spec and every non-default knob. NewFromConfig(sim.Config()) rebuilds
// an equivalent simulation, and two simulations with the same resolved
// configuration report identical Configs regardless of the option order
// or spelling that produced them.
func (s *Simulation) Config() RunConfig {
	c := s.cfg
	// Report the resolved tile split (1×P when unset), so a defaulted and
	// an explicitly default-tiled configuration share one key.
	ta, te := s.Tiles()
	rc := RunConfig{
		Spec:            s.Spec,
		Ranks:           c.ranks,
		MaxIterations:   c.maxIter,
		Tolerance:       c.tol,
		Mixing:          c.mixing,
		NoBoundaryCache: !c.cacheBC,
		Anderson:        c.anderson,
		TileA:           ta,
		TileE:           te,
		Workers:         c.workers,
		ErrorProbe:      c.errorProbe,
		PipelineDepth:   c.pipelineDepth,
		AutoPlan:        c.autoPlan,
		Trace:           c.trace,
	}
	if c.schedule != Phases {
		rc.Schedule = c.schedule.String()
	}
	if c.autoPlan {
		// A resolved plan records its schedule even when it is the
		// phases default: a non-empty Schedule next to AutoPlan is the
		// resolved-plan marker NewFromConfig keys on.
		rc.Schedule = c.schedule.String()
	}
	if c.blocking != (linalg.BlockSizes{}) {
		rc.GemmBlocking = fmt.Sprintf("%dx%dx%d", c.blocking.MC, c.blocking.KC, c.blocking.NC)
	}
	if c.precision != FP64 {
		rc.Precision = c.precision.String()
	}
	if c.kernel != DataCentric {
		rc.Kernel = c.kernel.String()
	}
	return rc
}

// Options lowers the RunConfig back into the functional options it
// stands for. Zero-valued knobs produce no option, so a hand-written
// partial RunConfig gets the same defaults as a hand-written option
// list.
func (rc RunConfig) Options() ([]Option, error) {
	var opts []Option
	if rc.Ranks > 0 {
		opts = append(opts, WithRanks(rc.Ranks))
	}
	if rc.Schedule != "" {
		sch, err := ParseSchedule(rc.Schedule)
		if err != nil {
			return nil, err
		}
		if sch != Phases {
			opts = append(opts, WithSchedule(sch))
		}
	}
	if rc.Precision != "" {
		p, err := ParsePrecision(rc.Precision)
		if err != nil {
			return nil, err
		}
		if p != FP64 {
			opts = append(opts, WithPrecision(p))
		}
	}
	if rc.Kernel != "" {
		k, err := ParseKernel(rc.Kernel)
		if err != nil {
			return nil, err
		}
		if k != DataCentric {
			opts = append(opts, WithKernel(k))
		}
	}
	if rc.MaxIterations > 0 {
		opts = append(opts, WithMaxIterations(rc.MaxIterations))
	}
	if rc.Tolerance > 0 {
		opts = append(opts, WithTolerance(rc.Tolerance))
	}
	if rc.Mixing > 0 {
		opts = append(opts, WithMixing(rc.Mixing))
	}
	if rc.NoBoundaryCache {
		opts = append(opts, WithBoundaryCache(false))
	}
	if rc.Anderson {
		opts = append(opts, WithAnderson())
	}
	if rc.TileA != 0 || rc.TileE != 0 {
		opts = append(opts, WithTiles(rc.TileA, rc.TileE))
	}
	if rc.Workers > 0 {
		opts = append(opts, WithWorkers(rc.Workers))
	}
	if rc.ErrorProbe {
		opts = append(opts, WithErrorProbe())
	}
	if rc.PipelineDepth > 0 {
		opts = append(opts, WithPipelineDepth(rc.PipelineDepth))
	}
	if rc.AutoPlan {
		opts = append(opts, WithAutoPlan())
		if rc.Schedule != "" {
			// The plan knobs present in the config are a recorded
			// resolution — use them verbatim instead of re-probing.
			opts = append(opts, withResolvedPlan())
		}
	}
	if rc.GemmBlocking != "" {
		var bs linalg.BlockSizes
		if _, err := fmt.Sscanf(rc.GemmBlocking, "%dx%dx%d", &bs.MC, &bs.KC, &bs.NC); err != nil {
			return nil, fmt.Errorf("qt: gemm_blocking %q: want MCxKCxNC", rc.GemmBlocking)
		}
		opts = append(opts, withGemmBlocking(bs))
	}
	if rc.Trace {
		opts = append(opts, WithTrace())
	}
	return opts, nil
}

// NewFromConfig builds the simulation a RunConfig describes — the
// deserialization path of the service layer. Extra options (e.g.
// WithWarmStart, which has no serialized form) apply after the config's
// own.
func NewFromConfig(rc RunConfig, extra ...Option) (*Simulation, error) {
	opts, err := rc.Options()
	if err != nil {
		return nil, fmt.Errorf("qt: %w", err)
	}
	return New(rc.Spec, append(opts, extra...)...)
}

// Key returns the canonical content hash of the configuration: the
// SHA-256 of its JSON form re-serialized with recursively sorted object
// keys, so the hash is independent of field order and stable across
// struct reordering. Semantically identical configurations share a key
// only when both are resolved (Simulation.Config output); hash resolved
// configs, not raw request bodies.
func (rc RunConfig) Key() string { return rc.hash(false) }

// WarmKey is Key with the bias and the disorder seed removed from the
// hash: it names the family of configurations identical up to Vds and
// disorder realization — the near-identical neighbours whose converged
// Σ≷ state a warm start may be seeded from. Disorder realizations of
// one profile share tensor shapes by the lowering contract, and
// neighbouring ensemble members converge to nearby fixed points, so a
// sibling's Σ≷ is an excellent initial guess.
func (rc RunConfig) WarmKey() string { return rc.hash(true) }

func (rc RunConfig) hash(warm bool) string {
	b, err := json.Marshal(rc)
	if err != nil {
		panic("qt: RunConfig not marshalable: " + err.Error())
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		panic("qt: RunConfig JSON not an object: " + err.Error())
	}
	if warm {
		if spec, ok := m["spec"].(map[string]any); ok {
			delete(spec, "bias")
			delete(spec, "disorder_seed")
		}
	}
	h := sha256.New()
	writeCanonical(h, m)
	return hex.EncodeToString(h.Sum(nil))
}

// Key returns the canonical content hash of the defaulted Spec alone —
// the structure-level identity. RunConfig.Key covers the full resolved
// configuration and is what the service cache keys on.
func (s Spec) Key() string {
	b, err := json.Marshal(s.withDefaults())
	if err != nil {
		panic("qt: Spec not marshalable: " + err.Error())
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		panic("qt: Spec JSON not an object: " + err.Error())
	}
	h := sha256.New()
	writeCanonical(h, m)
	return hex.EncodeToString(h.Sum(nil))
}

// writeCanonical streams a parsed-JSON value with sorted object keys —
// a canonical byte form to hash, independent of the encoder's field
// order.
func writeCanonical(w io.Writer, v any) {
	switch t := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		io.WriteString(w, "{")
		for i, k := range keys {
			if i > 0 {
				io.WriteString(w, ",")
			}
			kb, _ := json.Marshal(k)
			w.Write(kb)
			io.WriteString(w, ":")
			writeCanonical(w, t[k])
		}
		io.WriteString(w, "}")
	case []any:
		io.WriteString(w, "[")
		for i, e := range t {
			if i > 0 {
				io.WriteString(w, ",")
			}
			writeCanonical(w, e)
		}
		io.WriteString(w, "]")
	default:
		b, _ := json.Marshal(t)
		w.Write(b)
	}
}
