package model

import (
	"repro/internal/device"
	"repro/internal/half"
)

// Bytes-per-object sizes (complex128 = 16 bytes; both lesser and greater
// components are moved, hence the factor 32 per stored element).
func sizeGPair(p device.Params) float64 {
	// One electron (kz, E) point: Na diagonal Norb×Norb blocks, ≷ pair.
	return 32 * float64(p.Na) * float64(p.Norb) * float64(p.Norb)
}

func sizeDPoint(p device.Params) float64 {
	// One phonon (qz, ω) point: Na×(Nb+1) blocks of N3D², ≷ pair.
	return 32 * float64(p.Na) * float64(p.NbT+1) * float64(device.N3D) * float64(device.N3D)
}

// OMENCommVolume returns the per-iteration SSE communication volume (bytes)
// of the original momentum×energy decomposition on P processes:
//
//	V = 2·Nqz·Nω·Nkz·NE·sG  +  2·P·Nqz·Nω·sD
//
// The first term is the point-to-point replication of every electron
// Green's function to its 2·Nqz·Nω stencil partners; the second is the
// broadcast of each phonon point to all processes plus the reduction of
// the partial Π≷ from all processes. Reproduces Tables 4–5 within ~2%.
func OMENCommVolume(p device.Params, procs int) float64 {
	rounds := float64(p.Nqz()) * float64(p.Nomega)
	g := 2 * rounds * float64(p.Nkz) * float64(p.NE) * sizeGPair(p)
	d := 2 * float64(procs) * rounds * sizeDPoint(p)
	return g + d
}

// DaCeCommVolume returns the per-iteration SSE communication volume of the
// communication-avoiding Ta×TE decomposition (§6.1.2): each of the P=Ta·TE
// processes contributes
//
//	64·Nkz·(NE/TE + 2Nω)·(Na/Ta + Nb)·Norb²            (G≷ and Σ≷)
//	64·Nqz·Nω·(Na/Ta + Nb)·(Nb+1)·N3D²                 (D≷ and Π≷)
//
// bytes across the four Alltoallv collectives.
func DaCeCommVolume(p device.Params, ta, te int) float64 {
	procs := float64(ta * te)
	atomShare := float64(p.Na)/float64(ta) + float64(p.NbT)
	energyShare := float64(p.NE)/float64(te) + 2*float64(p.Nomega)
	g := 64 * float64(p.Nkz) * energyShare * atomShare * float64(p.Norb) * float64(p.Norb)
	d := 64 * float64(p.Nqz()) * float64(p.Nomega) * atomShare * float64(p.NbT+1) *
		float64(device.N3D) * float64(device.N3D)
	return procs * (g + d)
}

// DaCeCommVolumeMixed returns the predicted per-iteration SSE wire
// volume of the Ta×TE decomposition when the exchanges ship the
// half-width split-complex binary16 format (internal/half's wire
// encoding) instead of complex128. Each (point, atom) block unit of the
// fp64 model becomes one wire segment of 1 + ⌈n/4⌉ words (n elements
// packed four complex values per word, plus the per-segment
// normalization header), assuming no segment takes the fp64 fallback —
// the prediction the measured mixed Alltoallv bytes are set against.
func DaCeCommVolumeMixed(p device.Params, ta, te int) float64 {
	procs := float64(ta * te)
	atomShare := float64(p.Na)/float64(ta) + float64(p.NbT)
	energyShare := float64(p.NE)/float64(te) + 2*float64(p.Nomega)
	segG := 2 * p.Norb * p.Norb
	segD := 2 * (p.NbT + 1) * device.N3D * device.N3D
	// Block units per process: electron (point, atom) pairs for the
	// G≷/Σ≷ stage pair, phonon (point, atom) pairs for D≷/Π≷; each unit
	// moves one segment in each stage of its pair.
	uG := float64(p.Nkz) * energyShare * atomShare
	uD := float64(p.Nqz()) * float64(p.Nomega) * atomShare
	g := 2 * uG * 16 * float64(half.WireWords(segG))
	d := 2 * uD * 16 * float64(half.WireWords(segD))
	return procs * (g + d)
}

// PaperTiling returns the Ta×TE split the published tables use:
// TE = Nkz energy tiles and Ta = P/Nkz atom tiles.
func PaperTiling(p device.Params, procs int) (ta, te int) {
	te = p.Nkz
	ta = procs / te
	if ta < 1 {
		ta = 1
	}
	return ta, te
}

// TiB converts bytes to binary terabytes.
func TiB(b float64) float64 { return b / (1 << 40) }

// GiB converts bytes to binary gigabytes.
func GiB(b float64) float64 { return b / (1 << 30) }

// CommRow is one column of Table 4 or Table 5.
type CommRow struct {
	Nkz     int
	Procs   int
	OMENTiB float64
	DaCeTiB float64
	Ratio   float64
}

// Table4 evaluates the weak-scaling communication volumes of the "Small"
// structure: P = 256·Nkz processes, paper tiling.
func Table4(nkzs []int) []CommRow {
	out := make([]CommRow, 0, len(nkzs))
	for _, nkz := range nkzs {
		p := device.Small(nkz)
		procs := 256 * nkz
		ta, te := PaperTiling(p, procs)
		omen := OMENCommVolume(p, procs)
		dace := DaCeCommVolume(p, ta, te)
		out = append(out, CommRow{Nkz: nkz, Procs: procs,
			OMENTiB: TiB(omen), DaCeTiB: TiB(dace), Ratio: omen / dace})
	}
	return out
}

// Table5 evaluates the strong-scaling volumes at fixed Nkz=7.
func Table5(procs []int) []CommRow {
	out := make([]CommRow, 0, len(procs))
	p := device.Small(7)
	for _, pr := range procs {
		ta, te := PaperTiling(p, pr)
		omen := OMENCommVolume(p, pr)
		dace := DaCeCommVolume(p, ta, te)
		out = append(out, CommRow{Nkz: 7, Procs: pr,
			OMENTiB: TiB(omen), DaCeTiB: TiB(dace), Ratio: omen / dace})
	}
	return out
}

// Section612 reproduces the §6.1.2 worked example for the "Large"
// structure with NE = 1,000: the OMEN scheme's D≷/Π≷ traffic per electron
// process, its total G≷ replication volume, and the DaCe totals.
type Section612 struct {
	OMENDPerProcessGiB float64 // "receiving and sending 276 GiB for D≷ (Π≷)"
	OMENGTotalPiB      float64 // "2.58 PiB for G≷"
	DaCeDPerProcMiB    float64 // "minor overhead of 28.26 MiB per process"
	DaCeGTotalTiB      float64 // "only 1.8 TiB distributed to all processes"
}

// WorkedExample evaluates Section612 with the paper's parameters
// (Ta = P, TE = 1, in the large-P limit for the per-process numbers).
func WorkedExample() Section612 {
	p := device.Large(21)
	p.NE = 1000
	rounds := float64(p.Nqz()) * float64(p.Nomega)
	// Per electron process: receive all D≷ points and send all Π≷ partials.
	dPer := 2 * rounds * sizeDPoint(p)
	gTotal := 2 * rounds * float64(p.Nkz) * float64(p.NE) * sizeGPair(p)
	// DaCe with Ta = P, TE = 1. The paper quotes the per-process overhead
	// with the realized halo c = 1 extra atom (it over-approximates c by
	// Nb only in the volume tables) and the distributed G≷ total without
	// the 2Nω energy halo.
	const realizedHalo = 1
	dDace := 64 * rounds * realizedHalo * float64(p.NbT+1) * 9
	gDace := 64 * float64(p.Nkz) * float64(p.NE) *
		float64(p.Na) * float64(p.Norb) * float64(p.Norb) // Σ over processes of Na/Ta = Na
	return Section612{
		OMENDPerProcessGiB: GiB(dPer),
		OMENGTotalPiB:      gTotal / (1 << 50),
		DaCeDPerProcMiB:    dDace / (1 << 20),
		DaCeGTotalTiB:      TiB(gDace),
	}
}

// OMENMPIInvocations returns the per-iteration MPI call count of the
// original scheme: 9 calls per (ω, qz) round per energy sub-communicator
// (§5.2 reports 9·Nω·Nqz·NE/tE).
func OMENMPIInvocations(p device.Params, tE int) int64 {
	return 9 * int64(p.Nomega) * int64(p.Nqz()) * int64(p.NE) / int64(tE)
}

// DaCeMPIInvocations is the constant collective count of the
// communication-avoiding variant.
func DaCeMPIInvocations() int64 { return 4 }
