package model

import (
	"math"
	"testing"

	"repro/internal/device"
)

// within asserts relative agreement with a published paper value.
func within(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	if want == 0 {
		t.Fatalf("%s: zero reference", name)
	}
	if rel := math.Abs(got-want) / math.Abs(want); rel > relTol {
		t.Errorf("%s: got %.4g, paper %.4g (rel err %.3f > %.3f)", name, got, want, rel, relTol)
	}
}

func TestTable3MatchesPaper(t *testing.T) {
	// Published Table 3 (Pflop), "Small" structure.
	want := map[int][4]float64{
		3:  {8.45, 52.95, 24.41, 12.38},
		5:  {14.12, 88.25, 67.80, 34.19},
		7:  {19.77, 123.55, 132.89, 66.85},
		9:  {25.42, 158.85, 219.67, 110.36},
		11: {31.06, 194.15, 328.15, 164.71},
	}
	rows := Table3([]int{3, 5, 7, 9, 11})
	for _, r := range rows {
		w := want[r.Nkz]
		within(t, "BC", r.BC, w[0], 0.01)
		within(t, "RGF", r.RGF, w[1], 0.01)
		within(t, "SSE(OMEN)", r.SSEOMEN, w[2], 0.005)
		within(t, "SSE(DaCe)", r.SSEDaCe, w[3], 0.005)
	}
}

func TestTable4MatchesPaper(t *testing.T) {
	// Published Table 4 (TiB): OMEN and DaCe volumes, weak scaling.
	wantOMEN := map[int]float64{3: 32.11, 5: 89.18, 7: 174.80, 9: 288.95, 11: 431.65}
	wantDaCe := map[int]float64{3: 0.54, 5: 1.22, 7: 2.17, 9: 3.38, 11: 4.86}
	for _, r := range Table4([]int{3, 5, 7, 9, 11}) {
		within(t, "Table4 OMEN", r.OMENTiB, wantOMEN[r.Nkz], 0.02)
		within(t, "Table4 DaCe", r.DaCeTiB, wantDaCe[r.Nkz], 0.04)
		// Reduction ratios: 59–89× in the paper.
		if r.Ratio < 50 || r.Ratio > 100 {
			t.Errorf("Table4 Nkz=%d: ratio %.0f outside the paper's 59-89x band", r.Nkz, r.Ratio)
		}
	}
}

func TestTable5MatchesPaper(t *testing.T) {
	wantOMEN := map[int]float64{224: 108.24, 448: 117.75, 896: 136.76, 1792: 174.80, 2688: 212.84}
	wantDaCe := map[int]float64{224: 0.95, 448: 1.13, 896: 1.48, 1792: 2.17, 2688: 2.87}
	for _, r := range Table5([]int{224, 448, 896, 1792, 2688}) {
		within(t, "Table5 OMEN", r.OMENTiB, wantOMEN[r.Procs], 0.02)
		within(t, "Table5 DaCe", r.DaCeTiB, wantDaCe[r.Procs], 0.04)
	}
	// The reduction shrinks as processes grow (114x -> 74x): strong
	// scaling erodes the advantage because the D/Π broadcast-reduce term
	// in OMEN grows with P while the DaCe per-process halo grows too.
	rows := Table5([]int{224, 2688})
	if rows[0].Ratio <= rows[1].Ratio {
		t.Errorf("reduction ratio should shrink with P: %.0f vs %.0f", rows[0].Ratio, rows[1].Ratio)
	}
}

func TestWorkedExample612(t *testing.T) {
	ex := WorkedExample()
	// Paper: 276 GiB per process for D≷/Π≷; 2.58 PiB for G≷.
	within(t, "OMEN D per process", ex.OMENDPerProcessGiB, 276, 0.03)
	within(t, "OMEN G total", ex.OMENGTotalPiB, 2.58, 0.01)
	// Paper: 28.26 MiB per-process overhead and 1.8 TiB total for DaCe.
	within(t, "DaCe D per process", ex.DaCeDPerProcMiB, 28.26, 0.05)
	within(t, "DaCe G total", ex.DaCeGTotalTiB, 1.8, 0.15)
}

func TestMPIInvocationCounts(t *testing.T) {
	p := device.Small(7)
	if got := OMENMPIInvocations(p, p.NE); got != 9*70*7 {
		t.Fatalf("OMEN invocations = %d", got)
	}
	if DaCeMPIInvocations() != 4 {
		t.Fatal("DaCe must use 4 collectives")
	}
}

func TestMachines(t *testing.T) {
	pd, sm := PizDaint(), Summit()
	if pd.GPUsPerNode != 1 || sm.GPUsPerNode != 6 {
		t.Fatal("GPU counts wrong")
	}
	// Summit's GPU/CPU imbalance: the paper quotes 81.43x.
	ratio := float64(sm.GPUsPerNode) * sm.GPUPeak / sm.CPUPeak
	if ratio < 70 || ratio > 95 {
		t.Fatalf("Summit GPU/CPU ratio %.1f implausible", ratio)
	}
	// Piz Daint: 9.4x.
	ratio = pd.GPUPeak / pd.CPUPeak
	if math.Abs(ratio-9.4) > 0.3 {
		t.Fatalf("Piz Daint GPU/CPU ratio %.2f, paper says 9.4", ratio)
	}
}

func TestTable11Headline(t *testing.T) {
	r := Table11()
	// The paper sustains 85.45 Pflop/s double / 90.89 mixed including
	// I/O; the model must land in the same regime and preserve the
	// ordering mixed > double.
	if r.Double.SustainedPflops < 60 || r.Double.SustainedPflops > 115 {
		t.Fatalf("double-precision sustained %.1f Pflop/s far from the paper's 85.45", r.Double.SustainedPflops)
	}
	if r.Mixed.SustainedPflops <= r.Double.SustainedPflops {
		t.Fatal("mixed precision must beat double precision")
	}
	// Total per-iteration Eflop: paper reports 8.17 (cached).
	within(t, "total Eflop", r.Double.UsefulEflop, 8.17, 0.03)
	within(t, "GF Eflop", r.Double.GFEflop, 6.00, 0.01)
	within(t, "SSE Eflop", r.Double.SSEEflop, 2.18, 0.01)
	// Time scale: the paper's iteration takes ~95 s.
	if r.Double.TotalSec < 40 || r.Double.TotalSec > 200 {
		t.Fatalf("iteration time %.1f s far from the paper's ~95 s", r.Double.TotalSec)
	}
}

func TestTable12PerAtomGap(t *testing.T) {
	rows := Table12()
	if rows[0].Variant != "OMEN" || rows[1].Variant != "DaCe" {
		t.Fatal("row order")
	}
	speedup := rows[0].TimePerAtom / rows[1].TimePerAtom
	// Paper: 140.9x. The model must reproduce the two-orders-of-magnitude
	// shape.
	if speedup < 50 || speedup > 300 {
		t.Fatalf("per-atom speedup %.1fx outside the expected band (paper: 140.9x)", speedup)
	}
	// DaCe absolute time should resemble the measured 333 s.
	if rows[1].TimeSec < 150 || rows[1].TimeSec > 700 {
		t.Fatalf("DaCe large-run time %.0f s far from the paper's 333 s", rows[1].TimeSec)
	}
}

func TestFigure8StrongScalingShape(t *testing.T) {
	for _, m := range []Machine{PizDaint(), Summit()} {
		pts := StrongScaling(m, []int{100, 300, 1000, 2000, 5000})
		for i, pt := range pts {
			if pt.DaCe.TotalSec >= pt.OMEN.TotalSec {
				t.Fatalf("%s: DaCe must be faster at %d GPUs", m.Name, pt.GPUs)
			}
			if i > 0 && pt.DaCe.TotalSec >= pts[i-1].DaCe.TotalSec {
				t.Fatalf("%s: DaCe time must fall with more GPUs", m.Name)
			}
			// OMEN should be dominated by SSE+comm (the 95% observation).
			frac := (pt.OMEN.SSESec + pt.OMEN.CommSec) / pt.OMEN.TotalSec
			if frac < 0.5 {
				t.Fatalf("%s: OMEN SSE+comm fraction %.2f too small", m.Name, frac)
			}
		}
		last := pts[len(pts)-1]
		if last.Speedup < 8 || last.Speedup > 60 {
			t.Fatalf("%s: modelled speedup %.1fx outside the paper band (16.3x Piz Daint / 24.5x Summit)",
				m.Name, last.Speedup)
		}
		// Summit's speedup exceeds Piz Daint's (POWER9 library penalty).
	}
	pd := StrongScaling(PizDaint(), []int{2000})[0].Speedup
	sm := StrongScaling(Summit(), []int{2000})[0].Speedup
	if sm <= pd {
		t.Fatalf("Summit speedup (%.1f) should exceed Piz Daint (%.1f), §7.2", sm, pd)
	}
}

func TestWeakScalingShape(t *testing.T) {
	pts := WeakScaling(Summit(), []int{3, 5, 7, 9, 11})
	// "the higher the simulation accuracy (Nkz), the greater the speedup".
	for i := 1; i < len(pts); i++ {
		if pts[i].Speedup <= pts[i-1].Speedup {
			t.Fatalf("speedup should grow with Nkz: %v then %v", pts[i-1].Speedup, pts[i].Speedup)
		}
	}
}

func TestFigure9Shape(t *testing.T) {
	pts := Figure9([]int{3420, 6840, 13680, 27360})
	for i := 1; i < len(pts); i++ {
		if pts[i].DoublePflops <= pts[i-1].DoublePflops {
			t.Fatal("sustained Pflop/s must grow with GPUs")
		}
	}
	last := pts[len(pts)-1]
	// Paper: 86.26 Pflop/s compute-only at 27,360 GPUs (85.45 with I/O).
	if last.DoublePflops < 60 || last.DoublePflops > 115 {
		t.Fatalf("full-scale Pflop/s %.1f far from the paper's 86.26", last.DoublePflops)
	}
	if last.MixedPflops <= last.DoublePflops {
		t.Fatal("mixed precision should add throughput")
	}
	// Cache modes order: fewer recomputed flops, less time.
	if !(last.Double[CacheBCSpec].TotalSec < last.Double[CacheBC].TotalSec &&
		last.Double[CacheBC].TotalSec < last.Double[NoCache].TotalSec) {
		t.Fatal("cache modes must be ordered NoCache > CacheBC > CacheBC+Spec in time")
	}
	// Strong-scaling efficiency 3,420 -> 27,360 GPUs: paper achieves
	// 86.26/11.53 = 7.5x on 8x GPUs.
	gain := last.DoublePflops / pts[0].DoublePflops
	if gain < 4 || gain > 8.1 {
		t.Fatalf("scaling gain %.2fx implausible vs paper's 7.5x", gain)
	}
}

func TestRooflineClassification(t *testing.T) {
	pts := Roofline(device.Large(21))
	byName := map[string]RooflinePoint{}
	for _, p := range pts {
		byName[p.Kernel] = p
	}
	if byName["RGF"].Bound != "compute" {
		t.Fatalf("RGF must be compute-bound, got %+v", byName["RGF"])
	}
	if byName["SSE-64"].Bound != "memory" {
		t.Fatalf("SSE-64 must be memory-bound, got %+v", byName["SSE-64"])
	}
	if byName["SSE-16"].Bound != "memory" {
		t.Fatalf("SSE-16 must remain memory-bound, got %+v", byName["SSE-16"])
	}
	// SSE-16 doubles the operational intensity of SSE-64.
	if math.Abs(byName["SSE-16"].Intensity/byName["SSE-64"].Intensity-2) > 1e-9 {
		t.Fatal("fp16 should double the flop/byte intensity")
	}
	// Achieved never exceeds attainable.
	for _, p := range pts {
		if p.Achieved > p.Attainable*1.05 {
			t.Fatalf("%s achieves above its roofline", p.Kernel)
		}
	}
}

func TestTotalIterationFlops(t *testing.T) {
	p := device.Small(7)
	omen := TotalIterationFlops(p, false)
	dace := TotalIterationFlops(p, true)
	if dace >= omen {
		t.Fatal("DaCe variant must need fewer flops")
	}
	// The SSE savings are roughly half the SSE cost.
	saved := omen - dace
	if saved < 0.4*SSEOMENFlops(p)*0.5 || saved > 0.6*SSEOMENFlops(p) {
		t.Fatalf("savings %.3g implausible vs SSE %.3g", saved, SSEOMENFlops(p))
	}
}

func TestDaCeCommVolumeMixed(t *testing.T) {
	p := device.TestParams(24, 4, 2)
	p.NE = 16
	p.Nomega = 4
	fp := DaCeCommVolume(p, 2, 4)
	mx := DaCeCommVolumeMixed(p, 2, 4)
	if mx <= 0 || fp <= 0 {
		t.Fatalf("volumes must be positive: fp64 %g, mixed %g", fp, mx)
	}
	// Norb=2 electron segments pack 8 words into 3 (8/3×), the phonon
	// segments better: the overall predicted reduction must exceed the
	// 1.8× acceptance factor and stay below the asymptotic 4×.
	ratio := fp / mx
	if ratio < 1.8 || ratio > 4 {
		t.Errorf("predicted mixed reduction %.3fx outside (1.8, 4)", ratio)
	}
	// The prediction composes per segment: halving Ta doubles nothing
	// structurally — volume stays monotone in the process count.
	if DaCeCommVolumeMixed(p, 4, 4) <= mx {
		t.Error("mixed volume must grow with the process count")
	}
}
