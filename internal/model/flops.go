// Package model implements the paper's §6.1 performance model: the
// computational load of every kernel (Table 3), the SSE communication
// volumes of both decompositions (Tables 4–5 and the §6.1.2 worked
// example), machine descriptions of Piz Daint and Summit, the scaling
// projections behind Figs. 8–9 and Tables 11–12, and the roofline
// coordinates of Fig. 10.
//
// Everything here is a closed form evaluated at paper scale; the measured
// counterparts on scaled-down problems come from the kernels and the
// simulated-MPI decompositions elsewhere in this repository.
package model

import "repro/internal/device"

// Flop-count calibration constants. The analytic formulas reproduce the
// structure of the cost; two coefficients absorb the difference between
// the model and the nvprof-measured values the paper reports in Table 3
// ("flop values, defined empirically and analytically").
const (
	// RGFMeasuredRatio is the nvprof-measured fraction of the dense RGF
	// flop model — the sparse Hamiltonian blocks let the GPU skip ~10% of
	// the dense-model arithmetic (§6.1.1 notes the dense term is an upper
	// bound; 52.95 Pflop published vs 59.13 modelled at Nkz=3).
	RGFMeasuredRatio = 52.95 / 59.127247
	// BCIterFactor is the effective number of block-cubed operations per
	// (kz, E) point in the boundary-condition kernel (decimation/contour
	// iterations × matrix products per iteration), calibrated to the
	// 8.45 Pflop of Table 3 at Nkz=3.
	BCIterFactor = 137.64
)

// RGFFlops returns the per-iteration flops of the RGF kernel over all
// (kz, E) points: 8·(26·bnum − 25)·(Na·Norb/bnum)³ per point (§6.1.1).
// For the Small structure (1,536-wide blocks) the nvprof-measured count
// sits ~10% below the dense model because the sparse Hamiltonian blocks
// skip work; the Large structure's published 6.00 Eflop matches the dense
// model directly, so the ratio applies only below the 2,048 block size.
func RGFFlops(p device.Params) float64 {
	bs := float64(p.Na) * float64(p.Norb) / float64(p.Bnum)
	perPoint := 8 * (26*float64(p.Bnum) - 25) * bs * bs * bs
	ratio := 1.0
	if bs < 2048 {
		ratio = RGFMeasuredRatio
	}
	return ratio * perPoint * float64(p.Nkz) * float64(p.NE)
}

// BCFlops returns the per-iteration boundary-condition flops over all
// (kz, E) points.
func BCFlops(p device.Params) float64 {
	bs := float64(p.Na) * float64(p.Norb) / float64(p.Bnum)
	return BCIterFactor * 8 * bs * bs * bs * float64(p.Nkz) * float64(p.NE)
}

// SSEOMENFlops returns the per-iteration flops of the original SSE kernel:
// 64·Na·Nb·N3D·Nkz·Nqz·NE·Nω·Norb³ (§6.1.1, exact).
func SSEOMENFlops(p device.Params) float64 {
	norb3 := float64(p.Norb) * float64(p.Norb) * float64(p.Norb)
	return 64 * float64(p.Na) * float64(p.NbT) * float64(device.N3D) *
		float64(p.Nkz) * float64(p.Nqz()) * float64(p.NE) * float64(p.Nomega) * norb3
}

// SSEDaCeFlops returns the flops of the transformed SSE kernel after the
// multiplication-reduction of §5.3. The paper states the reduction factor
// 2·NqzNω/(NqzNω+1); the published Table 3 values follow that expression
// with the momentum-symmetry-folded product x = Nqz·Nω/3 (the OMEN
// implementation folds the threefold kz symmetry), which this function
// uses so that every Table 3 column is reproduced exactly.
func SSEDaCeFlops(p device.Params) float64 {
	x := float64(p.Nqz()) * float64(p.Nomega) / 3
	return SSEOMENFlops(p) * (x + 1) / (2 * x)
}

// Pflop converts flops to Pflop.
func Pflop(f float64) float64 { return f / 1e15 }

// Eflop converts flops to Eflop.
func Eflop(f float64) float64 { return f / 1e18 }

// Table3Row is one column of Table 3 (a given Nkz) for the Small device.
type Table3Row struct {
	Nkz                       int
	BC, RGF, SSEOMEN, SSEDaCe float64 // Pflop
}

// Table3 evaluates the single-iteration computational load of the "Small"
// structure for the paper's Nkz sweep.
func Table3(nkzs []int) []Table3Row {
	out := make([]Table3Row, 0, len(nkzs))
	for _, nkz := range nkzs {
		p := device.Small(nkz)
		out = append(out, Table3Row{
			Nkz:     nkz,
			BC:      Pflop(BCFlops(p)),
			RGF:     Pflop(RGFFlops(p)),
			SSEOMEN: Pflop(SSEOMENFlops(p)),
			SSEDaCe: Pflop(SSEDaCeFlops(p)),
		})
	}
	return out
}

// TotalIterationFlops returns the full per-iteration cost (BC + RGF + SSE)
// for the given SSE variant.
func TotalIterationFlops(p device.Params, dace bool) float64 {
	sse := SSEOMENFlops(p)
	if dace {
		sse = SSEDaCeFlops(p)
	}
	return BCFlops(p) + RGFFlops(p) + sse
}
