package model

import (
	"math"

	"repro/internal/device"
)

// Variant selects the code being modelled.
type Variant int

const (
	// VariantOMEN is the original C++ OMEN.
	VariantOMEN Variant = iota
	// VariantDaCe is the data-centric rewrite.
	VariantDaCe
)

func (v Variant) String() string {
	if v == VariantOMEN {
		return "OMEN"
	}
	return "DaCe"
}

// CacheMode mirrors the §7.1.2 execution modes of the GF phase.
type CacheMode int

const (
	// NoCache recomputes specialization data and boundary conditions
	// every iteration.
	NoCache CacheMode = iota
	// CacheBC caches boundary conditions, re-specializes per iteration.
	CacheBC
	// CacheBCSpec caches both (largest memory footprint, fewest flops).
	CacheBCSpec
)

func (m CacheMode) String() string {
	switch m {
	case NoCache:
		return "No Cache"
	case CacheBC:
		return "Cache BC"
	default:
		return "Cache BC + Spec."
	}
}

// SpecFlopsFraction models the per-iteration specialization cost as a
// fraction of the boundary-condition cost (only the CacheBC middle curve
// of Fig. 9 depends on it).
const SpecFlopsFraction = 0.33

// OMENSummitLibraryPenalty derates the original OMEN's efficiency on
// Summit: its external GPU libraries are "not necessarily optimized for
// every architecture (e.g., IBM POWER9)" (§7.2). Calibrated so that the
// modelled Table 12 run time approaches the measured 4,695.7 s.
const OMENSummitLibraryPenalty = 5.0

// P2PUtilization is the achieved fraction of injection bandwidth for the
// OMEN scheme's point-to-point stencil replication (small, irregular
// messages on a fat tree do far worse than the bandwidth-optimal
// alltoall).
const P2PUtilization = 0.25

// Breakdown is a modelled per-iteration execution profile — the rows of
// Table 11 for the DaCe variant at full scale.
type Breakdown struct {
	Variant  Variant
	Machine  string
	Nodes    int
	Mixed    bool
	Cache    CacheMode
	BCSec    float64
	GFSec    float64
	SSESec   float64
	CommSec  float64
	TotalSec float64
	BCEflop  float64
	GFEflop  float64
	SSEEflop float64
	// UsefulEflop counts the flops credited to the sustained rate: GF and
	// SSE always; BC only when it is recomputed each iteration.
	UsefulEflop float64
	// SustainedPflops = UsefulEflop·1000/TotalSec.
	SustainedPflops float64
}

// Iteration models one GF+SSE iteration of the given variant.
func Iteration(p device.Params, m Machine, nodes int, v Variant, mixed bool, cache CacheMode) Breakdown {
	return iteration(p, m, nodes, v, mixed, cache, false)
}

func iteration(p device.Params, m Machine, nodes int, v Variant, mixed bool, cache CacheMode, derated bool) Breakdown {
	peak := m.NodePeak() * float64(nodes)
	b := Breakdown{Variant: v, Machine: m.Name, Nodes: nodes, Mixed: mixed, Cache: cache}

	bcFlops := BCFlops(p) * bcSizeScale(p)
	rgfFlops := RGFFlops(p)
	var sseFlops float64
	if v == VariantDaCe {
		sseFlops = SSEDaCeFlops(p)
	} else {
		sseFlops = SSEOMENFlops(p)
	}

	// Efficiencies per machine and variant.
	effGF, effSSE, effBC := phaseEfficiencies(m, v, derated)
	if mixed && v == VariantDaCe && m.TensorCorePeak > 0 {
		effSSE = EffSSEMixed
	}

	// Cache modes change how much boundary/specialization work recurs.
	iterBC := 0.0
	switch cache {
	case NoCache:
		iterBC = bcFlops * (1 + SpecFlopsFraction)
	case CacheBC:
		iterBC = bcFlops * SpecFlopsFraction
	case CacheBCSpec:
		iterBC = 0
	}
	b.BCEflop = Eflop(iterBC)
	b.GFEflop = Eflop(rgfFlops)
	b.SSEEflop = Eflop(sseFlops)
	b.BCSec = iterBC / (effBC * peak)
	b.GFSec = rgfFlops / (effGF * peak)
	b.SSESec = sseFlops / (effSSE * peak)

	// Communication.
	procs := nodes * m.ProcsPerNode
	aggBW := float64(nodes) * m.InjectionBW
	if v == VariantDaCe {
		ta, te := PaperTiling(p, procs)
		vol := DaCeCommVolume(p, ta, te)
		// Split utilization between the dense D/Π part and the sparser
		// G/Σ alltoall (§7.1.8).
		b.CommSec = 0.5*vol/(aggBW*AlltoallUtilization) + 0.5*vol/(aggBW*AlltoallUtilizationG)
	} else {
		vol := OMENCommVolume(p, procs)
		b.CommSec = vol / (aggBW * P2PUtilization)
	}

	b.TotalSec = b.BCSec + b.GFSec + b.SSESec + b.CommSec
	b.UsefulEflop = b.BCEflop + b.GFEflop + b.SSEEflop
	b.SustainedPflops = b.UsefulEflop * 1000 / b.TotalSec
	return b
}

// bcSizeScale captures the growth of boundary-solver iterations with the
// contact block size (calibrated: 8.45 Pflop for the Small structure,
// 1.23 Eflop for Large, Table 3 / Table 11).
func bcSizeScale(p device.Params) float64 {
	bs := float64(p.Na) * float64(p.Norb) / float64(p.Bnum)
	return math.Pow(bs/1536.0, 0.59)
}

// phaseEfficiencies returns the achieved fraction of peak per phase.
// derated applies the POWER9 library penalty to the original OMEN — the
// regime the Table 12 measurement exercises (tiny per-GPU workloads on an
// architecture its libraries were never tuned for, §7.2); the Fig. 8
// strong-scaling runs use larger per-GPU workloads where the penalty does
// not apply.
func phaseEfficiencies(m Machine, v Variant, derated bool) (gf, sse, bc float64) {
	if v == VariantDaCe {
		if m.Name == "Summit" {
			return EffRGF, EffSSE, EffBoundary
		}
		// Piz Daint single-node results (Table 10): GF 30.1%, SSE 20.4%.
		return 0.301, 0.204, EffBoundary
	}
	// Original OMEN (Table 10): GF 23.2%, SSE 1.3% on Piz Daint.
	gf, sse, bc = OMENEffGF, OMENEffSSE, EffBoundary*0.7
	if derated && m.Name == "Summit" {
		gf /= OMENSummitLibraryPenalty * 0.5
		sse /= OMENSummitLibraryPenalty
	}
	return gf, sse, bc
}

// ScalingPoint is one x-position of Fig. 8 or Fig. 9.
type ScalingPoint struct {
	GPUs    int
	OMEN    Breakdown
	DaCe    Breakdown
	Speedup float64 // OMEN total / DaCe total
}

// StrongScaling models Fig. 8's strong-scaling panels: the Small
// structure at fixed Nkz=7 across GPU counts.
func StrongScaling(m Machine, gpuCounts []int) []ScalingPoint {
	p := device.Small(7)
	return scalingSeries(p, m, gpuCounts)
}

// WeakScaling models Fig. 8's weak-scaling panels: Nkz grows with the
// machine allocation (P = 256·Nkz ranks, as in Table 4).
func WeakScaling(m Machine, nkzs []int) []ScalingPoint {
	out := make([]ScalingPoint, 0, len(nkzs))
	for _, nkz := range nkzs {
		p := device.Small(nkz)
		nodes := 256 * nkz / m.ProcsPerNode
		gpus := nodes * m.GPUsPerNode
		o := Iteration(p, m, nodes, VariantOMEN, false, CacheBC)
		d := Iteration(p, m, nodes, VariantDaCe, false, CacheBC)
		out = append(out, ScalingPoint{GPUs: gpus, OMEN: o, DaCe: d, Speedup: o.TotalSec / d.TotalSec})
	}
	return out
}

func scalingSeries(p device.Params, m Machine, gpuCounts []int) []ScalingPoint {
	out := make([]ScalingPoint, 0, len(gpuCounts))
	for _, g := range gpuCounts {
		nodes := g / m.GPUsPerNode
		if nodes < 1 {
			nodes = 1
		}
		o := Iteration(p, m, nodes, VariantOMEN, false, CacheBC)
		d := Iteration(p, m, nodes, VariantDaCe, false, CacheBC)
		out = append(out, ScalingPoint{GPUs: g, OMEN: o, DaCe: d, Speedup: o.TotalSec / d.TotalSec})
	}
	return out
}

// Figure9Point is one bar group of Fig. 9: the Large structure on Summit.
type Figure9Point struct {
	GPUs         int
	Double       map[CacheMode]Breakdown
	MixedPflops  float64
	DoublePflops float64 // best cache mode, double precision
	PctOfHPL     float64
}

// Figure9 models the extreme-scale strong-scaling experiment: Large
// structure, Nkz=21, on Summit.
func Figure9(gpuCounts []int) []Figure9Point {
	p := device.Large(21)
	m := Summit()
	out := make([]Figure9Point, 0, len(gpuCounts))
	for _, g := range gpuCounts {
		nodes := g / m.GPUsPerNode
		pt := Figure9Point{GPUs: g, Double: make(map[CacheMode]Breakdown)}
		for _, c := range []CacheMode{NoCache, CacheBC, CacheBCSpec} {
			pt.Double[c] = Iteration(p, m, nodes, VariantDaCe, false, c)
		}
		best := pt.Double[CacheBCSpec]
		pt.DoublePflops = best.SustainedPflops
		mx := Iteration(p, m, nodes, VariantDaCe, true, CacheBCSpec)
		pt.MixedPflops = mx.SustainedPflops
		pt.PctOfHPL = best.SustainedPflops / m.HPLPflops * 100
		out = append(out, pt)
	}
	return out
}

// Table12Row compares per-atom performance of the two variants at the
// paper's operating points (P = 6,840 GPUs, Norb = 12, NE = 1,220,
// Nω = 70, Nkz = 21).
type Table12Row struct {
	Variant     string
	Na          int
	TimeSec     float64
	TimePerAtom float64
}

// Table12 models the per-atom comparison. The paper measures 4,695.7 s
// for OMEN on 1,064 atoms and 333.36 s for DaCe on 10,240 atoms — a
// 140.9× per-atom gap; the model reproduces the two-orders-of-magnitude
// shape from the efficiency and flop differences alone.
func Table12() []Table12Row {
	m := Summit()
	nodes := 6840 / m.GPUsPerNode
	// OMEN on the small 1,064-atom device.
	po := device.Params{
		Na: 1064, Bnum: 8, Norb: 12, NbT: 34,
		Nkz: 21, NE: 1220, Nomega: 70,
		Emin: -1.5, DE: 0.005, Mu: 0, Vds: 0.6, TC: 300,
		Coupling: 0.08, Eta: 1e-4, Seed: 1,
	}
	bo := iteration(po, m, nodes, VariantOMEN, false, CacheBC, true)
	pd := device.Large(21)
	bd := iteration(pd, m, nodes, VariantDaCe, false, CacheBC, false)
	return []Table12Row{
		{Variant: "OMEN", Na: po.Na, TimeSec: bo.TotalSec, TimePerAtom: bo.TotalSec / float64(po.Na)},
		{Variant: "DaCe", Na: pd.Na, TimeSec: bd.TotalSec, TimePerAtom: bd.TotalSec / float64(pd.Na)},
	}
}

// Table11 models the full-scale 10,240-atom run breakdown on 4,560 Summit
// nodes (27,360 GPUs) in the best cache mode, with the measured ingestion
// time from §7.1.1 attached.
type Table11Result struct {
	Double    Breakdown
	Mixed     Breakdown
	Ingestion float64 // seconds (staged broadcast, §7.1.1)
	PctOfHPL  float64
	PctOfPeak float64
}

// Table11 evaluates the headline run.
func Table11() Table11Result {
	p := device.Large(21)
	m := Summit()
	nodes := 4560
	d := Iteration(p, m, nodes, VariantDaCe, false, CacheBCSpec)
	x := Iteration(p, m, nodes, VariantDaCe, true, CacheBCSpec)
	peak := m.NodePeak() * float64(nodes) / 1e15
	return Table11Result{
		Double:    d,
		Mixed:     x,
		Ingestion: 31.1,
		PctOfHPL:  d.SustainedPflops / m.HPLPflops * 100,
		PctOfPeak: d.SustainedPflops / peak * 100,
	}
}
