package model

// Machine describes one of the paper's two target systems (§6.2) at the
// level the performance model needs.
type Machine struct {
	Name           string
	Nodes          int
	GPUsPerNode    int
	GPUPeak        float64 // double-precision flop/s per GPU
	CPUPeak        float64 // double-precision flop/s per node (CPU part)
	TensorCorePeak float64 // half-precision flop/s per GPU (0 if none)
	InjectionBW    float64 // bytes/s per node
	HPLPflops      float64 // measured effective maximum (HPL)
	ProcsPerNode   int     // MPI ranks per node in the paper's runs
}

// NodePeak returns the combined double-precision peak of one node.
func (m Machine) NodePeak() float64 {
	return float64(m.GPUsPerNode)*m.GPUPeak + m.CPUPeak
}

// PizDaint is the CSCS Cray XC50 partition: one P100 per node.
func PizDaint() Machine {
	return Machine{
		Name:         "Piz Daint",
		Nodes:        5704,
		GPUsPerNode:  1,
		GPUPeak:      4.7e12,
		CPUPeak:      499.2e9,
		InjectionBW:  10e9, // Aries per-node injection
		HPLPflops:    21.2,
		ProcsPerNode: 2,
	}
}

// Summit is the OLCF system: six V100 GPUs and two POWER9 CPUs per node.
func Summit() Machine {
	return Machine{
		Name:           "Summit",
		Nodes:          4608,
		GPUsPerNode:    6,
		GPUPeak:        7.0e12,
		CPUPeak:        515.76e9,
		TensorCorePeak: 120e12,
		InjectionBW:    23e9, // §7.1.8
		HPLPflops:      148.6,
		ProcsPerNode:   6,
	}
}

// Phase efficiencies achieved by DaCe OMEN on Summit, read off Table 11
// (achieved Pflop/s over machine peak for the participating nodes). These
// encode how compute-bound (GF) or memory-bound (BC, SSE) each phase is —
// the roofline positions of Fig. 10.
const (
	EffBoundary = 0.2012 // 20.12% of peak
	EffRGF      = 0.7222 // 72.22% of peak: near the HPL ceiling
	EffSSE      = 0.2587 // 25.87% of peak: memory-bound small matmuls
	// EffSSEMixed is the effective double-precision-equivalent rate gain
	// of the Tensor-Core SSE relative to SSE-64 (41.91 s → 36.16 s in
	// Table 11).
	EffSSEMixed = EffSSE * 41.91 / 36.16
	// AlltoallUtilization is the measured fraction of the injection-
	// bandwidth lower bound achieved by the D≷/Π≷ exchange (§7.1.8).
	AlltoallUtilization = 0.8457
	// AlltoallUtilizationG is the same for the G≷/Σ≷ exchange.
	AlltoallUtilizationG = 0.4232
)

// OMENEfficiency is the fraction of peak the original OMEN SSE kernel
// sustains (Table 10: 1.3% on Piz Daint for SSE; its GF phase runs at
// 23.2%).
const (
	OMENEffGF  = 0.232
	OMENEffSSE = 0.013
)
