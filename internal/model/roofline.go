package model

import "repro/internal/device"

// RooflinePoint is one kernel's coordinate in Fig. 10: operational
// intensity against attainable and achieved performance on a V100.
type RooflinePoint struct {
	Kernel     string
	Intensity  float64 // flop/byte
	Attainable float64 // flop/s under the roofline
	Achieved   float64 // flop/s the paper's phase efficiencies imply
	Bound      string  // "memory" or "compute"
}

// V100 ceilings used by Fig. 10.
const (
	V100DP    = 7.0e12  // double-precision peak per GPU
	V100TC    = 120e12  // Tensor Core half-precision peak
	V100L2BW  = 2.15e12 // L2 cache bandwidth (bytes/s)
	V100HBMBW = 0.9e12  // HBM2 bandwidth (bytes/s)
)

// Roofline evaluates the Fig. 10 points for the given structure.
//
//   - RGF works on bs×bs blocks: 8·bs³ flops over ~3·16·bs² bytes of
//     operands per multiply → intensity ≈ bs/6 flop/byte: compute-bound.
//   - SSE-64 multiplies Norb×Norb blocks streamed from batches: intensity
//     ≈ Norb/6: far left of the ridge, memory-bound (the batch fits in L2,
//     so the L2 bandwidth is the operative ceiling).
//   - SSE-16 halves the bytes per element, doubling intensity, but the
//     Tensor-Core ridge point moves right even faster — still
//     memory-bound (§7.3).
func Roofline(p device.Params) []RooflinePoint {
	bs := float64(p.Na) * float64(p.Norb) / float64(p.Bnum)
	norb := float64(p.Norb)

	mk := func(name string, oi, ceilFlops, bw, achieved float64) RooflinePoint {
		att := bw * oi
		bound := "memory"
		if att > ceilFlops {
			att = ceilFlops
			bound = "compute"
		}
		return RooflinePoint{Kernel: name, Intensity: oi, Attainable: att, Achieved: achieved, Bound: bound}
	}
	return []RooflinePoint{
		mk("RGF", bs/6, V100DP, V100HBMBW, EffRGF*V100DP),
		mk("SSE-64", norb/6, V100DP, V100L2BW, EffSSE*V100DP),
		mk("SSE-16", norb/3, V100TC, V100L2BW, EffSSE*V100DP*41.91/36.16),
	}
}
