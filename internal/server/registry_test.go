package server

import (
	"testing"
	"time"

	"repro/internal/qt"
)

func TestRegistryPersistence(t *testing.T) {
	dir := t.TempDir()
	reg, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := qt.RunConfig{Spec: qt.Spec{Atoms: 12, Slabs: 3}}
	now := time.Now().UTC()
	statuses := []Status{StatusDone, StatusQueued, StatusRunning, StatusFailed}
	var ids []string
	for _, st := range statuses {
		id := reg.NewID()
		ids = append(ids, id)
		if err := reg.Put(Record{
			ID: id, Tenant: "acme", Key: "k-" + string(st), WarmKey: "w",
			Config: cfg, Status: st, Submitted: now,
		}); err != nil {
			t.Fatal(err)
		}
	}

	reopened, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Runs owned by the dead process are relabelled lost.
	for i, st := range statuses {
		rec, ok := reopened.Get(ids[i])
		if !ok {
			t.Fatalf("record %s missing after reopen", ids[i])
		}
		want := st
		if st == StatusQueued || st == StatusRunning {
			want = StatusLost
		}
		if rec.Status != want {
			t.Fatalf("%s: status %s after reopen, want %s", ids[i], rec.Status, want)
		}
	}
	// IDs keep increasing across restarts.
	if id := reopened.NewID(); id != "run-000005" {
		t.Fatalf("NewID after reopen = %s, want run-000005", id)
	}

	// Query filters and newest-first order.
	lost := reopened.List(Query{Status: StatusLost})
	if len(lost) != 2 {
		t.Fatalf("lost runs = %d, want 2", len(lost))
	}
	if lost[0].ID != ids[2] || lost[1].ID != ids[1] {
		t.Fatalf("lost order = %s, %s; want newest first %s, %s",
			lost[0].ID, lost[1].ID, ids[2], ids[1])
	}
	if got := reopened.List(Query{Tenant: "nobody"}); len(got) != 0 {
		t.Fatalf("tenant filter matched %d records, want 0", len(got))
	}
	if got := reopened.List(Query{Limit: 1}); len(got) != 1 || got[0].ID != ids[3] {
		t.Fatalf("Limit 1 = %v", got)
	}
	if got := reopened.List(Query{Key: "k-done"}); len(got) != 1 || got[0].ID != ids[0] {
		t.Fatalf("key filter = %v", got)
	}
}

func TestRegistryMemoryOnly(t *testing.T) {
	reg, err := OpenRegistry("")
	if err != nil {
		t.Fatal(err)
	}
	id := reg.NewID()
	if err := reg.Put(Record{ID: id, Status: StatusDone}); err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Get(id); !ok {
		t.Fatal("record missing from memory-only registry")
	}
	// Mutating the returned copy must not affect the stored record.
	rec, _ := reg.Get(id)
	rec.Status = StatusFailed
	if again, _ := reg.Get(id); again.Status != StatusDone {
		t.Fatal("Get returned a shared reference, not a copy")
	}
}
