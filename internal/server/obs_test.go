package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

// getBody fetches a URL and returns status + body.
func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

// A traced distributed run submitted over HTTP yields a Perfetto-loadable
// Chrome trace on GET /v1/runs/{id}/trace, with BC/RGF/SSE/exchange
// coverage for every rank — and the artifact survives a daemon restart
// without confusing the registry loader (run-*.trace.json matches the
// record glob).
func TestServiceTraceEndToEnd(t *testing.T) {
	const ranks = 2
	dir := t.TempDir()
	s, ts := newService(t, Config{Slots: 1, DataDir: dir})

	rc := convergingConfig(0.18)
	rc.Ranks = ranks
	rc.Trace = true
	rec := postRun(t, ts, "acme", 0, rc, http.StatusAccepted)
	waitForStatus(t, s, rec.ID, StatusDone)

	code, body := getBody(t, ts.URL+"/v1/runs/"+rec.ID+"/trace")
	if code != http.StatusOK {
		t.Fatalf("GET trace = %d: %s", code, body)
	}
	ct, err := obs.ParseChrome(body)
	if err != nil {
		t.Fatal(err)
	}
	// coverage[rank][cat]: every rank must show the four hot-path phases.
	coverage := map[int]map[string]bool{}
	for _, ev := range ct.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		r := ev.Pid - 1
		if coverage[r] == nil {
			coverage[r] = map[string]bool{}
		}
		coverage[r][ev.Cat] = true
	}
	for r := 0; r < ranks; r++ {
		for _, cat := range []string{"bc", "rgf", "sse", "exchange"} {
			if !coverage[r][cat] {
				t.Errorf("rank %d: category %q missing from trace (got %v)", r, cat, coverage[r])
			}
		}
	}

	// An untraced run answers 409 (known, no artifact), an unknown id 404.
	plain := postRun(t, ts, "acme", 0, convergingConfig(0.19), http.StatusAccepted)
	waitForStatus(t, s, plain.ID, StatusDone)
	if code, _ := getBody(t, ts.URL+"/v1/runs/"+plain.ID+"/trace"); code != http.StatusConflict {
		t.Errorf("GET trace of untraced run = %d, want 409", code)
	}
	if code, _ := getBody(t, ts.URL+"/v1/runs/run-999999/trace"); code != http.StatusNotFound {
		t.Errorf("GET trace of unknown run = %d, want 404", code)
	}

	// Restart: the loader must skip the .trace.json artifact and the
	// trace must still be served — now from disk.
	reg, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Get(rec.ID); !ok {
		t.Fatalf("record %s lost across restart", rec.ID)
	}
	disk, ok := reg.GetTrace(rec.ID)
	if !ok {
		t.Fatalf("trace %s lost across restart", rec.ID)
	}
	if _, err := obs.ParseChrome(disk); err != nil {
		t.Fatal(err)
	}
}

// The Prometheus endpoint exposes the tenant-labeled admission picture
// plus the cache and run-outcome series after traffic has flowed.
func TestServiceMetricsExposition(t *testing.T) {
	s, ts := newService(t, Config{Slots: 1})

	rec := postRun(t, ts, "acme", 0, convergingConfig(0.21), http.StatusAccepted)
	waitForStatus(t, s, rec.ID, StatusDone)
	// Identical resubmission: a cache hit.
	postRun(t, ts, "acme", 0, convergingConfig(0.21), http.StatusOK)

	code, body := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	text := string(body)
	for _, want := range []string{
		`qtd_queue_depth{tenant="acme"} 0`,
		`qtd_queue_wait_seconds_count{tenant="acme"} 1`,
		`qtd_cache_hits_total 1`,
		`qtd_cache_misses_total 1`,
		`qtd_runs_total{tenant="acme",status="done"} 1`,
		`qtd_run_duration_seconds_count 1`,
		`qtd_run_iterations_count 1`,
		`qtd_slots_busy 0`,
		`qtd_slots 1`,
		"# TYPE qtd_run_duration_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// A full queue increments the tenant's shed counter.
func TestServiceShedMetric(t *testing.T) {
	s, ts := newService(t, Config{Slots: 1, QueueCap: 1})
	// Occupy the slot and fill the queue.
	first := postRun(t, ts, "acme", 0, busyConfig(0.31, 300), http.StatusAccepted)
	waitForStatus(t, s, first.ID, StatusRunning)
	postRun(t, ts, "acme", 0, busyConfig(0.32, 300), http.StatusAccepted)
	postRun(t, ts, "acme", 0, busyConfig(0.33, 300), http.StatusTooManyRequests)

	rec := httptest.NewRecorder()
	s.met.reg.WritePrometheus(rec)
	if !strings.Contains(rec.Body.String(), `qtd_shed_total{tenant="acme"} 1`) {
		t.Errorf("shed counter missing: %s", rec.Body.String())
	}
}
