package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/ensemble"
	"repro/internal/qt"
	"repro/internal/report"
)

// maxStudyMembers bounds one study's realization axis: a study is one
// request minting up to this many runs against the shared slots.
const maxStudyMembers = 256

// studyRequest is the POST /v1/ensembles body: the base configuration
// plus the realization axis. Member i runs Config with
// spec.disorder_seed = BaseSeed + i, so sibling members share a WarmKey
// family (warm-start donors) while keying distinct cache artifacts.
type studyRequest struct {
	Tenant   string       `json:"tenant"`
	Priority int          `json:"priority"`
	Members  int          `json:"members"`
	BaseSeed uint64       `json:"base_seed"`
	Config   qt.RunConfig `json:"config"`
}

// studyRun is the live handle of an executing study, mirroring job:
// member-completion events fan out to subscribed SSE streams, done
// closes when the study record reached its terminal state.
type studyRun struct {
	id     string
	tenant string

	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	events []report.MemberRow
	subs   map[chan report.MemberRow]bool

	done     chan struct{}
	doneOnce sync.Once
}

func (st *studyRun) publish(row report.MemberRow) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.events = append(st.events, row)
	for ch := range st.subs {
		select {
		case ch <- row:
		default:
		}
	}
}

// subscribe returns the member events so far plus a live channel for
// the rest; the caller must invoke the returned unsubscribe.
func (st *studyRun) subscribe(members int) ([]report.MemberRow, chan report.MemberRow, func()) {
	st.mu.Lock()
	defer st.mu.Unlock()
	snap := append([]report.MemberRow(nil), st.events...)
	ch := make(chan report.MemberRow, members+1)
	st.subs[ch] = true
	return snap, ch, func() {
		st.mu.Lock()
		delete(st.subs, ch)
		st.mu.Unlock()
	}
}

func (st *studyRun) markDone() { st.doneOnce.Do(func() { close(st.done) }) }

// submitStudy validates and launches one ensemble study. The returned
// handle streams member completions; the study executes detached on its
// own goroutine, fanning members through the regular submit path (so
// duplicate realizations hit the result cache and every member is a
// first-class registry run with study lineage).
func (s *Server) submitStudy(req studyRequest) (StudyRecord, *studyRun, error) {
	if req.Members <= 0 || req.Members > maxStudyMembers {
		return StudyRecord{}, nil, fmt.Errorf("members must be in [1, %d] (got %d)", maxStudyMembers, req.Members)
	}
	if req.Config.Spec.Profile == nil {
		return StudyRecord{}, nil, fmt.Errorf("spec has no profile: an ensemble over a clean device is %d copies of one run", req.Members)
	}
	sim, err := qt.NewFromConfig(req.Config)
	if err != nil {
		return StudyRecord{}, nil, err
	}
	rec := StudyRecord{
		ID: s.reg.NewStudyID(), Tenant: req.Tenant, Priority: req.Priority,
		Config: sim.Config(), Members: req.Members, BaseSeed: req.BaseSeed,
		Status: StatusQueued, Submitted: time.Now().UTC(),
	}
	if err := s.reg.PutStudy(rec); err != nil {
		return StudyRecord{}, nil, err
	}
	st := &studyRun{
		id: rec.ID, tenant: rec.Tenant,
		subs: map[chan report.MemberRow]bool{},
		done: make(chan struct{}),
	}
	st.ctx, st.cancel = context.WithCancel(s.ctx)
	s.mu.Lock()
	s.studies[st.id] = st
	s.mu.Unlock()
	s.studyWg.Add(1)
	go s.runStudy(st, rec)
	s.log.Info("study admitted", "study", rec.ID, "tenant", rec.Tenant, "members", rec.Members)
	return rec, st, nil
}

func (s *Server) studyByID(id string) (*studyRun, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.studies[id]
	return st, ok
}

func (s *Server) removeStudy(id string) {
	s.mu.Lock()
	delete(s.studies, id)
	s.mu.Unlock()
}

// cancelStudy cancels a running study: member submission stops and
// in-flight member runs are cancelled. Returns the record and whether
// the id was known.
func (s *Server) cancelStudy(id string) (StudyRecord, bool) {
	if st, live := s.studyByID(id); live {
		st.cancel()
	}
	return s.reg.GetStudy(id)
}

// memberOutcome is one member's terminal state as the runner saw it.
type memberOutcome struct {
	rec Record     // final registry record (zero if never admitted)
	res *qt.Result // full result when available (solved or still cached)
	err error      // admission error / cancellation before admission
}

// runStudy executes one study: admit every member through the regular
// submit path (content-addressed fast path included), wait for them,
// reduce in member-index order, finalize the study record.
func (s *Server) runStudy(st *studyRun, rec StudyRecord) {
	defer s.studyWg.Done()
	defer st.markDone()
	defer s.removeStudy(st.id)

	start := time.Now()
	rec.Status = StatusRunning
	rec.Started = time.Now().UTC()
	rec.MemberRuns = make([]string, rec.Members)
	s.reg.PutStudy(rec)

	outcomes := make([]memberOutcome, rec.Members)
	var mu sync.Mutex // guards rec progress counters + PutStudy ordering
	var wg sync.WaitGroup

	// Cancellation watcher: a cancelled study cancels its in-flight
	// member runs (queued ones are finalized immediately, running ones
	// stop between iterations).
	go func() {
		select {
		case <-st.ctx.Done():
			mu.Lock()
			ids := append([]string(nil), rec.MemberRuns...)
			mu.Unlock()
			for _, id := range ids {
				if id != "" {
					s.cancelRun(id)
				}
			}
		case <-st.done:
		}
	}()

	// finish folds one member's terminal record into the study progress
	// and publishes its completion event (called in completion order).
	finish := func(i int, out memberOutcome) {
		mu.Lock()
		outcomes[i] = out
		rec.DoneMembers++
		if out.rec.CacheHit {
			rec.CacheHits++
		}
		if out.rec.WarmStart {
			rec.WarmStarts++
		}
		progress := rec
		mu.Unlock()
		s.reg.PutStudy(progress)
		s.met.ensembleMembers.Inc()
		st.publish(report.MemberRow{
			Index: i, Seed: rec.BaseSeed + uint64(i), RunID: out.rec.ID,
			Current: out.rec.Current, Iterations: out.rec.Iterations,
			Converged: out.rec.Converged,
			CacheHit:  out.rec.CacheHit, WarmStart: out.rec.WarmStart,
			WallNs: out.rec.WallNs,
		})
	}

	for i := 0; i < rec.Members; i++ {
		if st.ctx.Err() != nil {
			outcomes[i] = memberOutcome{err: st.ctx.Err()}
			continue
		}
		mrc := rec.Config
		mrc.Spec.DisorderSeed = rec.BaseSeed + uint64(i)

		var mrec Record
		var j *job
		var err error
		for {
			mrec, j, err = s.submit(rec.Tenant, rec.Priority, mrc, rec.ID)
			if !errors.Is(err, ErrQueueFull) {
				break
			}
			// Backpressure: the study yields until a queue slot frees.
			select {
			case <-st.ctx.Done():
				err = st.ctx.Err()
			case <-time.After(25 * time.Millisecond):
				continue
			}
			break
		}
		if err != nil {
			finish(i, memberOutcome{err: err})
			continue
		}
		mu.Lock()
		rec.MemberRuns[i] = mrec.ID
		mu.Unlock()
		if st.ctx.Err() != nil && j != nil {
			// The watcher snapshotted MemberRuns before this admission;
			// cancel the straggler ourselves.
			s.cancelRun(mrec.ID)
		}

		if j == nil {
			// Content-addressed fast path: no slot consumed. The full
			// result (with observables for the DOS reduction) is still in
			// the cache unless it was evicted since submit looked.
			out := memberOutcome{rec: mrec}
			if e, ok := s.cache.peek(mrec.Key); ok {
				out.res = e.Result
			}
			finish(i, out)
			continue
		}
		wg.Add(1)
		go func(i int, j *job) {
			defer wg.Done()
			<-j.done
			final, _ := s.reg.Get(j.id)
			finish(i, memberOutcome{rec: final, res: j.result})
		}(i, j)
	}
	wg.Wait()

	// Reduce in member-index order — deterministic regardless of the
	// completion order the members finished in.
	members := make([]ensemble.Member, rec.Members)
	for i := range members {
		out := outcomes[i]
		members[i] = ensemble.Member{Index: i, Seed: rec.BaseSeed + uint64(i), WallNs: out.rec.WallNs}
		switch {
		case out.err != nil:
			members[i].Err = out.err
		case out.rec.Status == StatusFailed, out.rec.Status == StatusCancelled, out.rec.Status == StatusLost:
			members[i].Err = fmt.Errorf("member run %s: %s", out.rec.ID, out.rec.Status)
		case out.res != nil:
			members[i].Result = out.res
		case out.rec.ID != "":
			// Cached member whose artifact was evicted meanwhile: the
			// scalars survive in the record; only the DOS detail is lost.
			members[i].Result = &qt.Result{
				Converged: out.rec.Converged, Iterations: out.rec.Iterations,
				Current: out.rec.Current,
			}
		default:
			members[i].Err = context.Canceled
		}
	}

	rec.Finished = time.Now().UTC()
	rec.WallNs = time.Since(start).Nanoseconds()
	dev, err := rec.Config.Spec.Build()
	if err != nil {
		// Cannot happen for a config that admitted members, but fail loudly.
		rec.Status = StatusFailed
		rec.Error = err.Error()
	} else {
		rep := ensemble.Reduce(dev, members)
		rep.BaseSeed = rec.BaseSeed
		rep.WallNs = rec.WallNs
		for k := range rep.MemberRows {
			out := outcomes[rep.MemberRows[k].Index]
			rep.MemberRows[k].RunID = out.rec.ID
			rep.MemberRows[k].CacheHit = out.rec.CacheHit
			rep.MemberRows[k].WarmStart = out.rec.WarmStart
		}
		rec.Report = rep
		switch {
		case st.ctx.Err() != nil:
			rec.Status = StatusCancelled
		case rep.Current.N == 0:
			rec.Status = StatusFailed
			rec.Error = "no member produced a result"
		default:
			rec.Status = StatusDone
		}
	}
	s.reg.PutStudy(rec)
	s.met.ensembles.With(string(rec.Status)).Inc()
	s.log.Info("study finished", "study", rec.ID, "tenant", rec.Tenant,
		"status", string(rec.Status), "members", rec.DoneMembers,
		"cache_hits", rec.CacheHits, "warm_starts", rec.WarmStarts,
		"wall_ms", rec.WallNs/1e6)
}
