package server

import (
	"container/list"
	"sync"

	"repro/internal/qt"
	"repro/internal/report"
)

// cacheEntry is one content-addressed result artifact: the resolved
// configuration, the full facade result (including, for sequential runs,
// the converged Σ≷/Π≷ state near-identical requests warm-start from),
// the rendered report, and the run that produced it (lineage).
type cacheEntry struct {
	Key     string
	WarmKey string
	RunID   string
	Config  qt.RunConfig
	Result  *qt.Result
	Report  *report.Run
}

// CacheStats is the cache telemetry surfaced on /v1/stats.
type CacheStats struct {
	Entries  int   `json:"entries"`
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	WarmHits int64 `json:"warm_hits"`
	Bytes    int64 `json:"bytes"` // Σ≷ artifact bytes held
}

// cache is the LRU content-addressed result cache, keyed on
// qt.RunConfig.Key: an identical resolved configuration — the common
// case under sweep-heavy traffic — is answered from here without
// touching a solver slot. Warm scans the same entries by WarmKey (the
// bias-independent family hash) for a converged Σ≷ state to seed a
// near-identical request from.
type cache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used; values are *cacheEntry
	byKey map[string]*list.Element

	hits, misses, warmHits int64
}

func newCache(capacity int) *cache {
	return &cache{cap: capacity, ll: list.New(), byKey: map[string]*list.Element{}}
}

// Get returns the entry for an exact configuration key, refreshing its
// recency.
func (c *cache) Get(key string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry), true
}

// peek returns the entry for a key without touching recency or the
// hit/miss counters — for re-reading an artifact a submit fast-path
// already accounted for (the ensemble runner fetching a cached member's
// full result).
func (c *cache) peek(key string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	return el.Value.(*cacheEntry), true
}

// Put stores (or refreshes) an entry and evicts the least recently used
// entries beyond capacity.
func (c *cache) Put(e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[e.Key]; ok {
		el.Value = e
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[e.Key] = c.ll.PushFront(e)
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.byKey, last.Value.(*cacheEntry).Key)
	}
}

// Warm returns the most recently used entry of the same bias-family
// (excluding the exact key, which Get already covers) that carries a
// warm-startable Σ≷ state.
func (c *cache) Warm(warmKey, excludeKey string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*cacheEntry)
		if e.WarmKey != warmKey || e.Key == excludeKey {
			continue
		}
		if e.Result == nil || e.Result.FinalState == nil {
			continue
		}
		c.warmHits++
		return e, true
	}
	return nil, false
}

// Stats snapshots the cache counters.
func (c *cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CacheStats{
		Entries: c.ll.Len(),
		Hits:    c.hits, Misses: c.misses, WarmHits: c.warmHits,
	}
	for el := c.ll.Front(); el != nil; el = el.Next() {
		if e := el.Value.(*cacheEntry); e.Result != nil && e.Result.FinalState != nil {
			st.Bytes += e.Result.FinalState.Bytes()
		}
	}
	return st
}
