package server

import (
	"errors"
	"testing"
	"time"
)

func qjob(id, tenant string, priority int) *job {
	return &job{id: id, tenant: tenant, priority: priority}
}

func mustPop(t *testing.T, q *queue) *job {
	t.Helper()
	j, ok := q.Pop()
	if !ok {
		t.Fatal("Pop: queue closed")
	}
	return j
}

// A tenant flooding the queue must not starve a light tenant: with one
// of A's jobs holding the only slot, B's single job goes next, before
// A's remaining backlog.
func TestQueueFairShare(t *testing.T) {
	q := newQueue(16)
	for _, j := range []*job{
		qjob("a1", "A", 0), qjob("a2", "A", 0), qjob("a3", "A", 0), qjob("b1", "B", 0),
	} {
		if err := q.Push(j); err != nil {
			t.Fatal(err)
		}
	}
	// No Done calls in between: every popped job keeps occupying its
	// tenant's share, the single-slot worst case.
	var order []string
	for range 4 {
		order = append(order, mustPop(t, q).id)
	}
	want := []string{"a1", "b1", "a2", "a3"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", order, want)
		}
	}
}

// Done returns the share: after A's job finishes, A and B alternate.
func TestQueueFairShareAlternates(t *testing.T) {
	q := newQueue(16)
	for _, j := range []*job{
		qjob("a1", "A", 0), qjob("a2", "A", 0), qjob("b1", "B", 0), qjob("b2", "B", 0),
	} {
		if err := q.Push(j); err != nil {
			t.Fatal(err)
		}
	}
	var order []string
	for range 4 {
		j := mustPop(t, q)
		order = append(order, j.id)
		q.Done(j.tenant) // single slot: finish before the next dispatch
	}
	want := []string{"a1", "b1", "a2", "b2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", order, want)
		}
	}
}

func TestQueuePriorityWithinTenant(t *testing.T) {
	q := newQueue(16)
	for _, j := range []*job{
		qjob("low1", "A", 0), qjob("low2", "A", 0), qjob("high", "A", 5), qjob("mid", "A", 2),
	} {
		if err := q.Push(j); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"high", "mid", "low1", "low2"}
	for _, w := range want {
		if got := mustPop(t, q).id; got != w {
			t.Fatalf("popped %s, want %s", got, w)
		}
	}
}

func TestQueueFull(t *testing.T) {
	q := newQueue(2)
	if err := q.Push(qjob("1", "A", 0)); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(qjob("2", "B", 0)); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(qjob("3", "C", 0)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Push beyond capacity: err = %v, want ErrQueueFull", err)
	}
	queued, running := q.Stats()
	if queued != 2 || running != 0 {
		t.Fatalf("Stats = (%d, %d), want (2, 0)", queued, running)
	}
}

func TestQueueRemove(t *testing.T) {
	q := newQueue(16)
	q.Push(qjob("1", "A", 0))
	q.Push(qjob("2", "A", 0))
	if j := q.Remove("2"); j == nil || j.id != "2" {
		t.Fatalf("Remove(2) = %v", j)
	}
	if j := q.Remove("2"); j != nil {
		t.Fatalf("second Remove(2) = %v, want nil", j)
	}
	if got := mustPop(t, q).id; got != "1" {
		t.Fatalf("popped %s, want 1", got)
	}
	if j := q.Remove("1"); j != nil {
		t.Fatalf("Remove of a popped job = %v, want nil", j)
	}
}

func TestQueueCloseUnblocksPop(t *testing.T) {
	q := newQueue(16)
	done := make(chan bool)
	go func() {
		_, ok := q.Pop()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Pop on a closed empty queue returned a job")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Pop did not unblock on Close")
	}
}

// Close drains what is already queued before reporting closed — the
// worker shutdown path finalizes those jobs as cancelled.
func TestQueuePopDrainsAfterClose(t *testing.T) {
	q := newQueue(16)
	q.Push(qjob("1", "A", 0))
	q.Close()
	if got := mustPop(t, q).id; got != "1" {
		t.Fatalf("popped %s, want 1", got)
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop after drain returned a job")
	}
}
