package server

import (
	"repro/internal/obs"
	"repro/internal/qt"
)

// metrics is the qtd instrument set: the per-tenant admission picture
// (queue depth, wait time, sheds), slot utilization, the
// content-addressed cache counters, and per-run outcome series —
// exposed on GET /metrics in Prometheus text format.
type metrics struct {
	reg *obs.Registry

	queueDepth *obs.GaugeVec     // tenant
	queueWait  *obs.HistogramVec // tenant
	slotsBusy  *obs.Gauge
	shed       *obs.CounterVec // tenant

	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	warmStarts  *obs.Counter

	runs     *obs.CounterVec // tenant, status
	runDur   *obs.Histogram
	runIters *obs.Histogram

	ensembles       *obs.CounterVec // status
	ensembleMembers *obs.Counter

	sseBytes       *obs.Counter
	reduceBytes    *obs.Counter
	fallbackBlocks *obs.Counter
}

func newMetrics(cfg Config) *metrics {
	r := obs.NewRegistry()
	m := &metrics{
		reg: r,
		queueDepth: r.GaugeVec("qtd_queue_depth",
			"Jobs waiting in the admission queue, per tenant.", "tenant"),
		queueWait: r.HistogramVec("qtd_queue_wait_seconds",
			"Time from admission to dispatch onto a solver slot.",
			obs.ExpBuckets(0.001, 4, 10), "tenant"),
		slotsBusy: r.Gauge("qtd_slots_busy",
			"Solver slots currently executing a run."),
		shed: r.CounterVec("qtd_shed_total",
			"Submissions shed with 429 (queue full), per tenant.", "tenant"),
		cacheHits: r.Counter("qtd_cache_hits_total",
			"Requests answered from the content-addressed result cache."),
		cacheMisses: r.Counter("qtd_cache_misses_total",
			"Requests that missed the result cache and were queued."),
		warmStarts: r.Counter("qtd_warm_starts_total",
			"Runs seeded with a cached converged Σ state."),
		runs: r.CounterVec("qtd_runs_total",
			"Finished runs by terminal status.", "tenant", "status"),
		runDur: r.Histogram("qtd_run_duration_seconds",
			"Solver-slot run wall time.", obs.ExpBuckets(0.01, 4, 10)),
		runIters: r.Histogram("qtd_run_iterations",
			"Self-consistent iterations to convergence (or the cap).",
			[]float64{1, 2, 4, 8, 16, 32, 64}),
		ensembles: r.CounterVec("qtd_ensembles_total",
			"Finished ensemble studies by terminal status.", "status"),
		ensembleMembers: r.Counter("qtd_ensemble_members_total",
			"Ensemble member runs completed (cached or solved)."),
		sseBytes: r.Counter("qtd_sse_bytes_total",
			"Distributed SSE exchange traffic across all runs (wire bytes)."),
		reduceBytes: r.Counter("qtd_reduce_bytes_total",
			"Distributed observable-reduction traffic across all runs (bytes)."),
		fallbackBlocks: r.Counter("qtd_fallback_blocks_total",
			"Mixed-precision exchange segments shipped as verbatim fp64."),
	}
	r.GaugeFunc("qtd_slots",
		"Configured solver slots.", func() float64 { return float64(cfg.Slots) })
	return m
}

// observeRun folds one slot-executed run's result into the run series;
// status is the terminal registry status.
func (m *metrics) observeRun(tenant string, status Status, wallSec float64, res *qt.Result) {
	m.runs.With(tenant, string(status)).Inc()
	m.runDur.Observe(wallSec)
	if res == nil {
		return
	}
	m.runIters.Observe(float64(res.Iterations))
	for _, st := range res.Trace {
		m.sseBytes.Add(float64(st.SSEBytes))
		m.reduceBytes.Add(float64(st.ReduceBytes))
		m.fallbackBlocks.Add(float64(st.FallbackBlocks))
	}
}
