package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/qt"
	"repro/internal/report"
)

// Status is a run's lifecycle state in the registry.
type Status string

const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusDone      Status = "done"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
	// StatusCached marks a request answered from the content-addressed
	// result cache: no solver slot was consumed, SourceRun names the run
	// that produced the artifact.
	StatusCached Status = "cached"
	// StatusLost marks a run found queued/running when the registry was
	// reopened: the daemon died underneath it.
	StatusLost Status = "lost"
)

// Record is one registry row: the resolved spec + options, the run's
// lifecycle, a telemetry summary, and the artifact lineage (which cached
// entry answered or seeded it). Records are the JSON bodies of
// GET /v1/runs responses and the per-run files under the data dir.
type Record struct {
	ID       string `json:"id"`
	Tenant   string `json:"tenant"`
	Priority int    `json:"priority,omitempty"`

	// Key is the canonical content hash of Config (the cache address);
	// WarmKey the bias-independent family hash warm starts match on.
	Key     string       `json:"key"`
	WarmKey string       `json:"warm_key"`
	Config  qt.RunConfig `json:"config"`

	Status Status `json:"status"`
	Error  string `json:"error,omitempty"`

	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitzero"`
	Finished  time.Time `json:"finished,omitzero"`

	// Telemetry summary of the finished (or partial) run.
	Converged  bool    `json:"converged"`
	Iterations int     `json:"iterations"`
	Current    float64 `json:"current"`
	WallNs     int64   `json:"wall_ns"`

	// Lineage: CacheHit means the response was served straight from the
	// cache; WarmStart means the run was seeded with a cached Σ≷ state.
	// SourceRun names the producing run in both cases. Study names the
	// ensemble study this run is a member of, if any.
	CacheHit  bool   `json:"cache_hit,omitempty"`
	WarmStart bool   `json:"warm_start,omitempty"`
	SourceRun string `json:"source_run,omitempty"`
	Study     string `json:"study,omitempty"`

	// Report is the full rendered run report (trace included) once the
	// run finished — what /v1/runs/{id}/report re-encodes.
	Report *report.Run `json:"report,omitempty"`
}

// Registry is the persistent run registry: an in-memory index over
// JSON-on-disk records (one file per run under dir; dir = "" keeps it
// memory-only, the in-process test mode). Ensemble studies live next to
// the runs as their own record kind (study-NNNNNN.json).
type Registry struct {
	mu    sync.Mutex
	dir   string
	recs  map[string]*Record
	order []string // insertion order; IDs are monotonic
	seq   int
	// traces holds the Chrome-trace artifacts of WithTrace runs, encoded
	// JSON by run ID; the disk form is <id>.trace.json next to the record.
	traces map[string][]byte

	studies    map[string]*StudyRecord
	studyOrder []string
	studySeq   int
}

// OpenRegistry loads (creating if needed) the registry at dir. Runs and
// studies still marked queued/running are relabelled lost: the process
// that owned them is gone.
func OpenRegistry(dir string) (*Registry, error) {
	r := &Registry{
		dir: dir, recs: map[string]*Record{}, traces: map[string][]byte{},
		studies: map[string]*StudyRecord{},
	}
	if dir == "" {
		return r, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: registry dir: %w", err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "run-*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	for _, f := range files {
		if strings.HasSuffix(f, ".trace.json") {
			continue // run-NNNNNN.trace.json artifacts match the record glob
		}
		b, err := os.ReadFile(f)
		if err != nil {
			return nil, fmt.Errorf("server: registry read %s: %w", f, err)
		}
		var rec Record
		if err := json.Unmarshal(b, &rec); err != nil {
			return nil, fmt.Errorf("server: registry decode %s: %w", f, err)
		}
		if rec.Status == StatusQueued || rec.Status == StatusRunning {
			rec.Status = StatusLost
			if err := r.write(&rec); err != nil {
				return nil, err
			}
		}
		r.recs[rec.ID] = &rec
		r.order = append(r.order, rec.ID)
		if n, err := strconv.Atoi(strings.TrimPrefix(rec.ID, "run-")); err == nil && n > r.seq {
			r.seq = n
		}
	}
	studies, err := filepath.Glob(filepath.Join(dir, "study-*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(studies)
	for _, f := range studies {
		b, err := os.ReadFile(f)
		if err != nil {
			return nil, fmt.Errorf("server: registry read %s: %w", f, err)
		}
		var rec StudyRecord
		if err := json.Unmarshal(b, &rec); err != nil {
			return nil, fmt.Errorf("server: registry decode %s: %w", f, err)
		}
		if rec.Status == StatusQueued || rec.Status == StatusRunning {
			rec.Status = StatusLost
			if err := r.writeStudy(&rec); err != nil {
				return nil, err
			}
		}
		r.studies[rec.ID] = &rec
		r.studyOrder = append(r.studyOrder, rec.ID)
		if n, err := strconv.Atoi(strings.TrimPrefix(rec.ID, "study-")); err == nil && n > r.studySeq {
			r.studySeq = n
		}
	}
	return r, nil
}

// NewID mints the next run ID (monotonic across daemon restarts).
func (r *Registry) NewID() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	return fmt.Sprintf("run-%06d", r.seq)
}

// Put stores (a copy of) the record and persists it.
func (r *Registry) Put(rec Record) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.recs[rec.ID]; !ok {
		r.order = append(r.order, rec.ID)
	}
	r.recs[rec.ID] = &rec
	return r.write(&rec)
}

// write persists one record (atomically: temp file + rename). Callers
// hold r.mu or have exclusive access.
func (r *Registry) write(rec *Record) error {
	if r.dir == "" {
		return nil
	}
	b, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(r.dir, rec.ID+".json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// PutTrace stores the run's per-phase span recording as its Chrome
// trace-event artifact (the body of GET /v1/runs/{id}/trace), persisted
// as <id>.trace.json when the registry has a data dir.
func (r *Registry) PutTrace(id string, tr *obs.Trace) error {
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		return fmt.Errorf("server: encode trace %s: %w", id, err)
	}
	b := buf.Bytes()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.traces[id] = b
	if r.dir == "" {
		return nil
	}
	path := filepath.Join(r.dir, id+".trace.json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// GetTrace returns the run's Chrome trace JSON: from memory for runs of
// this process, falling back to the data dir for runs of a previous one.
func (r *Registry) GetTrace(id string) ([]byte, bool) {
	r.mu.Lock()
	b, ok := r.traces[id]
	dir := r.dir
	r.mu.Unlock()
	if ok {
		return b, true
	}
	if dir == "" {
		return nil, false
	}
	b, err := os.ReadFile(filepath.Join(dir, id+".trace.json"))
	if err != nil {
		return nil, false
	}
	return b, true
}

// Get returns a copy of the record.
func (r *Registry) Get(id string) (Record, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec, ok := r.recs[id]
	if !ok {
		return Record{}, false
	}
	return *rec, true
}

// Query filters the registry; zero fields match everything.
type Query struct {
	Tenant  string
	Status  Status
	Key     string
	WarmKey string
	Study   string // ensemble-study lineage filter
	Limit   int    // 0 = unlimited
}

// List returns matching records, newest first.
func (r *Registry) List(q Query) []Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Record
	for i := len(r.order) - 1; i >= 0; i-- {
		rec := r.recs[r.order[i]]
		if q.Tenant != "" && rec.Tenant != q.Tenant {
			continue
		}
		if q.Status != "" && rec.Status != q.Status {
			continue
		}
		if q.Key != "" && rec.Key != q.Key {
			continue
		}
		if q.WarmKey != "" && rec.WarmKey != q.WarmKey {
			continue
		}
		if q.Study != "" && rec.Study != q.Study {
			continue
		}
		out = append(out, *rec)
		if q.Limit > 0 && len(out) >= q.Limit {
			break
		}
	}
	return out
}
