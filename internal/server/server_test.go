package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/linalg"
	"repro/internal/qt"
)

// smallSpec mirrors the fast device structure the qt tests run on.
func smallSpec(bias float64) qt.Spec {
	return qt.Spec{Atoms: 12, Slabs: 3, Orbitals: 2, EnergyPoints: 12, PhononModes: 3, Bias: bias}
}

// convergingConfig solves to tolerance in a handful of iterations.
func convergingConfig(bias float64) qt.RunConfig {
	return qt.RunConfig{Spec: smallSpec(bias), MaxIterations: 40, Tolerance: 1e-6}
}

// busyConfig never reaches tolerance: it holds its solver slot for the
// full iteration budget — the controllable load for queueing tests.
func busyConfig(bias float64, iters int) qt.RunConfig {
	return qt.RunConfig{Spec: smallSpec(bias), MaxIterations: iters, Tolerance: 1e-12}
}

func newService(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// postRun submits a run and decodes the response record (or fails the
// test if the status is unexpected).
func postRun(t *testing.T, ts *httptest.Server, tenant string, priority int, rc qt.RunConfig, wantStatus int) Record {
	t.Helper()
	body, _ := json.Marshal(submitRequest{Tenant: tenant, Priority: priority, Config: rc})
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST /v1/runs = %d, want %d: %s", resp.StatusCode, wantStatus, raw)
	}
	var rec Record
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatalf("decode record: %v: %s", err, raw)
	}
	return rec
}

// waitForStatus polls the registry until the run reaches a terminal (or
// requested) status.
func waitForStatus(t *testing.T, s *Server, id string, want Status) Record {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		rec, ok := s.reg.Get(id)
		if ok && rec.Status == want {
			return rec
		}
		time.Sleep(5 * time.Millisecond)
	}
	rec, _ := s.reg.Get(id)
	t.Fatalf("run %s stuck in status %s, want %s", id, rec.Status, want)
	return Record{}
}

func getStats(t *testing.T, ts *httptest.Server) Stats {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitForGoroutines asserts the goroutine count settles back near the
// baseline (the leak check of the cancellation path).
func waitForGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= before+3 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, n)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Two tenants interleave on one solver slot: with tenant A's first job
// running and {A2, A3, B1} queued, fair-share dispatches B's single job
// before A's backlog.
func TestServiceFairShare(t *testing.T) {
	s, ts := newService(t, Config{Slots: 1, QueueCap: 16})

	a1 := postRun(t, ts, "tenant-a", 0, busyConfig(0.10, 60), http.StatusAccepted)
	waitForStatus(t, s, a1.ID, StatusRunning)
	a2 := postRun(t, ts, "tenant-a", 0, busyConfig(0.12, 20), http.StatusAccepted)
	a3 := postRun(t, ts, "tenant-a", 0, busyConfig(0.14, 20), http.StatusAccepted)
	b1 := postRun(t, ts, "tenant-b", 0, busyConfig(0.16, 20), http.StatusAccepted)

	recs := map[string]Record{}
	for _, r := range []Record{a1, a2, a3, b1} {
		recs[r.ID] = waitForStatus(t, s, r.ID, StatusDone)
	}
	started := func(r Record) time.Time { return recs[r.ID].Started }
	if !started(b1).Before(started(a2)) || !started(a2).Before(started(a3)) {
		t.Fatalf("fair-share violated: B1 %v, A2 %v, A3 %v (want B1 < A2 < A3)",
			started(b1), started(a2), started(a3))
	}
}

// An identical resolved configuration is answered from the cache: same
// result, CacheHit lineage, and no solver slot consumed.
func TestServiceCacheHit(t *testing.T) {
	s, ts := newService(t, Config{Slots: 2, QueueCap: 16})

	first := postRun(t, ts, "acme", 0, convergingConfig(0.30), http.StatusAccepted)
	done := waitForStatus(t, s, first.ID, StatusDone)
	if !done.Converged {
		t.Fatal("first run did not converge")
	}
	slotRuns := getStats(t, ts).SlotRuns

	dup := postRun(t, ts, "other-tenant", 0, convergingConfig(0.30), http.StatusOK)
	if dup.Status != StatusCached || !dup.CacheHit {
		t.Fatalf("duplicate spec: status %s, cache_hit %v; want cached hit", dup.Status, dup.CacheHit)
	}
	if dup.SourceRun != first.ID {
		t.Fatalf("lineage: source_run %s, want %s", dup.SourceRun, first.ID)
	}
	if dup.Current != done.Current || dup.Iterations != done.Iterations {
		t.Fatal("cached answer differs from the original result")
	}
	after := getStats(t, ts)
	if after.SlotRuns != slotRuns {
		t.Fatalf("cache hit consumed a solver slot: slot_runs %d -> %d", slotRuns, after.SlotRuns)
	}
	if after.Cache.Hits == 0 || after.Cache.Entries == 0 {
		t.Fatalf("cache stats not accounted: %+v", after.Cache)
	}
}

// A near-identical request (same family, different bias) warm-starts
// from the cached converged Σ≷ state and converges in fewer iterations
// than the same configuration solved cold.
func TestServiceWarmStart(t *testing.T) {
	s, ts := newService(t, Config{Slots: 2, QueueCap: 16})

	seed := postRun(t, ts, "acme", 0, convergingConfig(0.30), http.StatusAccepted)
	waitForStatus(t, s, seed.ID, StatusDone)

	// Cold reference: the neighbouring bias solved directly.
	near := convergingConfig(0.32)
	sim, err := qt.NewFromConfig(near)
	if err != nil {
		t.Fatal(err)
	}
	run, err := sim.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cold, err := run.Wait()
	if err != nil || !cold.Converged {
		t.Fatalf("cold reference: converged=%v err=%v", cold != nil && cold.Converged, err)
	}

	warm := postRun(t, ts, "acme", 0, near, http.StatusAccepted)
	rec := waitForStatus(t, s, warm.ID, StatusDone)
	if !rec.WarmStart || rec.SourceRun != seed.ID {
		t.Fatalf("lineage: warm_start=%v source_run=%s, want seeded from %s",
			rec.WarmStart, rec.SourceRun, seed.ID)
	}
	if !rec.Converged {
		t.Fatal("warm-started run did not converge")
	}
	if rec.Iterations >= cold.Iterations {
		t.Fatalf("warm start did not help: %d iterations vs %d cold", rec.Iterations, cold.Iterations)
	}
}

// readSSE reads frames ("event" + decoded data line) until the body
// ends or fn signals to stop.
func readSSE(r io.Reader, fn func(event string, data []byte) bool) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if !fn(event, []byte(strings.TrimPrefix(line, "data: "))) {
				return nil
			}
		}
	}
	return sc.Err()
}

// Submit-and-stream: the SSE response carries the run frame (with the
// id), live iter frames, and the terminal done frame.
func TestServiceSubmitStream(t *testing.T) {
	_, ts := newService(t, Config{Slots: 2, QueueCap: 16})

	body, _ := json.Marshal(submitRequest{Tenant: "acme", Config: convergingConfig(0.20)})
	resp, err := http.Post(ts.URL+"/v1/runs?stream=sse", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %s", ct)
	}
	var runID string
	var iters int
	var final Record
	err = readSSE(resp.Body, func(event string, data []byte) bool {
		switch event {
		case "run":
			var rec Record
			json.Unmarshal(data, &rec)
			runID = rec.ID
		case "iter":
			iters++
		case "done":
			json.Unmarshal(data, &final)
			return false
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if runID == "" || iters == 0 {
		t.Fatalf("stream incomplete: id %q, %d iter frames", runID, iters)
	}
	if final.Status != StatusDone || !final.Converged {
		t.Fatalf("done frame: status %s converged %v", final.Status, final.Converged)
	}
	if iters != final.Iterations {
		t.Fatalf("streamed %d iter frames, run reports %d iterations", iters, final.Iterations)
	}
}

// Killing the streaming client mid-run cancels the run and leaks no
// goroutines.
func TestServiceCancelOnDisconnect(t *testing.T) {
	s, ts := newService(t, Config{Slots: 1, QueueCap: 16})
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(submitRequest{Tenant: "acme", Config: busyConfig(0.25, 500)})
	req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/runs?stream=sse", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}

	var runID string
	readSSE(resp.Body, func(event string, data []byte) bool {
		if event == "run" {
			var rec Record
			json.Unmarshal(data, &rec)
			runID = rec.ID
		}
		return event != "iter" // hang up after the first live iteration
	})
	cancel() // client gone mid-stream
	resp.Body.Close()

	if runID == "" {
		t.Fatal("run frame never arrived")
	}
	rec := waitForStatus(t, s, runID, StatusCancelled)
	if rec.Iterations >= 500 {
		t.Fatal("run was not cancelled early")
	}
	waitForGoroutines(t, before)
}

// Beyond queue capacity submissions are shed with 429 + Retry-After; a
// queued run can be cancelled before it ever starts.
func TestServiceBackpressureAndCancel(t *testing.T) {
	s, ts := newService(t, Config{Slots: 1, QueueCap: 1})

	running := postRun(t, ts, "acme", 0, busyConfig(0.10, 500), http.StatusAccepted)
	waitForStatus(t, s, running.ID, StatusRunning)
	queued := postRun(t, ts, "acme", 0, busyConfig(0.12, 500), http.StatusAccepted)

	body, _ := json.Marshal(submitRequest{Tenant: "acme", Config: busyConfig(0.14, 500)})
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submission = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// Cancel the queued job: it must finalize without ever starting.
	delReq, _ := http.NewRequest("DELETE", ts.URL+"/v1/runs/"+queued.ID, nil)
	delResp, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, delResp.Body)
	delResp.Body.Close()
	rec := waitForStatus(t, s, queued.ID, StatusCancelled)
	if !rec.Started.IsZero() {
		t.Fatalf("cancelled-while-queued run has Started = %v", rec.Started)
	}

	// Cancel the running job too, so the test tears down promptly.
	delReq, _ = http.NewRequest("DELETE", ts.URL+"/v1/runs/"+running.ID, nil)
	delResp, err = http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, delResp.Body)
	delResp.Body.Close()
	waitForStatus(t, s, running.ID, StatusCancelled)
}

// The registry is queryable over HTTP and a finished run replays both
// its report (in every encoding) and its SSE stream.
func TestServiceRegistryAndReport(t *testing.T) {
	s, ts := newService(t, Config{Slots: 2, QueueCap: 16})
	rec := postRun(t, ts, "acme", 0, convergingConfig(0.28), http.StatusAccepted)
	waitForStatus(t, s, rec.ID, StatusDone)

	resp, err := http.Get(ts.URL + "/v1/runs?tenant=acme&status=done&limit=5")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Runs  []Record `json:"runs"`
		Count int      `json:"count"`
	}
	json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if list.Count != 1 || list.Runs[0].ID != rec.ID {
		t.Fatalf("query = %+v, want the one done acme run", list)
	}

	for format, wantCT := range map[string]string{
		"json": "application/json",
		"csv":  "text/csv",
		"text": "text/plain; charset=utf-8",
	} {
		resp, err := http.Get(fmt.Sprintf("%s/v1/runs/%s/report?format=%s", ts.URL, rec.ID, format))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != wantCT {
			t.Fatalf("report %s: status %d content-type %s", format, resp.StatusCode, resp.Header.Get("Content-Type"))
		}
		if len(raw) == 0 {
			t.Fatalf("report %s: empty body", format)
		}
	}

	// Replayed stream of a finished run.
	resp, err = http.Get(ts.URL + "/v1/runs/" + rec.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	frames := map[string]int{}
	readSSE(resp.Body, func(event string, data []byte) bool {
		frames[event]++
		return true
	})
	resp.Body.Close()
	if frames["run"] != 1 || frames["iter"] == 0 || frames["done"] != 1 {
		t.Fatalf("replayed frames = %v", frames)
	}

	// Unknown id and invalid config are clean client errors.
	resp, _ = http.Get(ts.URL + "/v1/runs/run-999999")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown run = %d, want 404", resp.StatusCode)
	}
	bad := qt.RunConfig{Spec: smallSpec(0.1), Schedule: "weird"}
	body, _ := json.Marshal(submitRequest{Tenant: "acme", Config: bad})
	resp, _ = http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(body))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid config = %d, want 400", resp.StatusCode)
	}
}

// TestServiceAutoPlanRegistry: an auto-plan submission resolves its
// execution plan at admission (qt.NewFromConfig runs the autotuner), so
// the registry record carries the concrete schedule/worker/depth choice
// from the first Put, and the finished report names the plan with its
// [auto] marker.
func TestServiceAutoPlanRegistry(t *testing.T) {
	defer linalg.ResetBlocking()
	s, ts := newService(t, Config{Slots: 1, QueueCap: 4})
	rc := qt.RunConfig{Spec: smallSpec(0.3), Ranks: 2, AutoPlan: true,
		MaxIterations: 3, Tolerance: 1e-300}
	rec := postRun(t, ts, "acme", 0, rc, http.StatusAccepted)
	if !rec.Config.AutoPlan || rec.Config.Schedule == "" {
		t.Fatalf("admission record lacks the resolved plan: %+v", rec.Config)
	}
	if rec.Config.Workers < 1 {
		t.Fatalf("resolved plan has no worker choice: %+v", rec.Config)
	}

	done := waitForStatus(t, s, rec.ID, StatusDone)
	if done.Config != rec.Config {
		t.Errorf("resolved plan drifted between admission and completion:\n  %+v\n  %+v",
			rec.Config, done.Config)
	}
	if done.Report == nil || !strings.Contains(done.Report.Plan, "[auto]") {
		t.Errorf("finished report does not name the auto plan: %+v", done.Report)
	}

	// The registry view over HTTP exposes the same resolved config.
	resp, err := http.Get(ts.URL + "/v1/runs/" + rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got Record
	json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if got.Config.Schedule != rec.Config.Schedule || !got.Config.AutoPlan {
		t.Errorf("HTTP record lost the plan: %+v", got.Config)
	}
}
