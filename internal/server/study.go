package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/qt"
	"repro/internal/report"
)

// StudyRecord is one ensemble study's registry row: the base
// configuration the members derive from, the realization axis, the
// member-run lineage, and — once finished — the reduced ensemble
// report. Studies are the JSON bodies of /v1/ensembles responses and
// the study-NNNNNN.json files under the data dir.
type StudyRecord struct {
	ID       string `json:"id"`
	Tenant   string `json:"tenant"`
	Priority int    `json:"priority,omitempty"`

	// Config is the base resolved configuration; member i runs it with
	// spec.disorder_seed = BaseSeed + i.
	Config   qt.RunConfig `json:"config"`
	Members  int          `json:"members"`
	BaseSeed uint64       `json:"base_seed"`

	Status Status `json:"status"`
	Error  string `json:"error,omitempty"`

	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitzero"`
	Finished  time.Time `json:"finished,omitzero"`

	// Progress and provenance counters, updated as members finish.
	DoneMembers int `json:"done_members"`
	CacheHits   int `json:"cache_hits"`
	WarmStarts  int `json:"warm_starts"`

	// MemberRuns lists the member run IDs in member-index order (the
	// reverse direction of Record.Study). Filled as members are admitted.
	MemberRuns []string `json:"member_runs,omitempty"`

	WallNs int64 `json:"wall_ns,omitempty"`

	// Report is the reduced ensemble statistics once the study finished —
	// what /v1/ensembles/{id}/report re-encodes.
	Report *report.Ensemble `json:"report,omitempty"`
}

// NewStudyID mints the next study ID (monotonic across restarts).
func (r *Registry) NewStudyID() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.studySeq++
	return fmt.Sprintf("study-%06d", r.studySeq)
}

// PutStudy stores (a copy of) the study record and persists it.
func (r *Registry) PutStudy(rec StudyRecord) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.studies[rec.ID]; !ok {
		r.studyOrder = append(r.studyOrder, rec.ID)
	}
	r.studies[rec.ID] = &rec
	return r.writeStudy(&rec)
}

// writeStudy persists one study record (atomically). Callers hold r.mu.
func (r *Registry) writeStudy(rec *StudyRecord) error {
	if r.dir == "" {
		return nil
	}
	b, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(r.dir, rec.ID+".json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// GetStudy returns a copy of the study record.
func (r *Registry) GetStudy(id string) (StudyRecord, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec, ok := r.studies[id]
	if !ok {
		return StudyRecord{}, false
	}
	return *rec, true
}

// StudyQuery filters the study listing; zero fields match everything.
type StudyQuery struct {
	Tenant string
	Status Status
	Limit  int // 0 = unlimited
}

// ListStudies returns matching study records, newest first.
func (r *Registry) ListStudies(q StudyQuery) []StudyRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []StudyRecord
	for i := len(r.studyOrder) - 1; i >= 0; i-- {
		rec := r.studies[r.studyOrder[i]]
		if q.Tenant != "" && rec.Tenant != q.Tenant {
			continue
		}
		if q.Status != "" && rec.Status != q.Status {
			continue
		}
		out = append(out, *rec)
		if q.Limit > 0 && len(out) >= q.Limit {
			break
		}
	}
	return out
}
