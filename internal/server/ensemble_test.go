package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/qt"
)

// disorderedConfig is the fast profiled configuration the study tests
// fan out over disorder seeds.
func disorderedConfig(bias float64) qt.RunConfig {
	spec := smallSpec(bias)
	spec.Profile = &device.Profile{
		Doping: &device.Doping{Fraction: 0.25, Shift: -0.08},
		Strain: &device.Strain{Amplitude: 0.04},
	}
	return qt.RunConfig{Spec: spec, MaxIterations: 40, Tolerance: 1e-6}
}

// postStudy submits a study and decodes the admission record.
func postStudy(t *testing.T, ts *httptest.Server, req studyRequest, wantStatus int) StudyRecord {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/ensembles", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST /v1/ensembles = %d, want %d: %s", resp.StatusCode, wantStatus, raw)
	}
	var rec StudyRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatalf("decode study record: %v: %s", err, raw)
	}
	return rec
}

// waitForStudy polls the registry until the study reaches the wanted
// status.
func waitForStudy(t *testing.T, s *Server, id string, want Status) StudyRecord {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		rec, ok := s.reg.GetStudy(id)
		if ok && rec.Status == want {
			return rec
		}
		time.Sleep(5 * time.Millisecond)
	}
	rec, _ := s.reg.GetStudy(id)
	t.Fatalf("study %s stuck in status %s, want %s", id, rec.Status, want)
	return StudyRecord{}
}

// TestStudyEndToEnd is the acceptance path: an N=8 study through the
// HTTP surface, member lineage in the registry, the reduced moments
// matching a serial recomputation to 1e-12, and a resubmission answered
// entirely from the cache without consuming a solver slot.
func TestStudyEndToEnd(t *testing.T) {
	const n = 8
	s, ts := newService(t, Config{Slots: 2, QueueCap: 32})

	rec := postStudy(t, ts, studyRequest{
		Tenant: "lab", Members: n, BaseSeed: 1000, Config: disorderedConfig(0.1),
	}, http.StatusAccepted)
	if rec.Members != n || rec.Status != StatusQueued {
		t.Fatalf("admission record: %+v", rec)
	}
	final := waitForStudy(t, s, rec.ID, StatusDone)

	// Every member is a first-class registry run carrying study lineage.
	if len(final.MemberRuns) != n {
		t.Fatalf("MemberRuns = %d ids, want %d", len(final.MemberRuns), n)
	}
	linked := s.reg.List(Query{Study: final.ID, Limit: 100})
	if len(linked) != n {
		t.Fatalf("List(Study=%s) = %d runs, want %d", final.ID, len(linked), n)
	}
	seeds := map[uint64]bool{}
	for _, mr := range linked {
		if mr.Study != final.ID {
			t.Fatalf("run %s study lineage %q, want %q", mr.ID, mr.Study, final.ID)
		}
		seeds[mr.Config.Spec.DisorderSeed] = true
	}
	for i := uint64(0); i < n; i++ {
		if !seeds[1000+i] {
			t.Fatalf("no member run with disorder seed %d", 1000+i)
		}
	}

	// The reduced moments must match a serial two-pass recomputation over
	// the per-member currents to 1e-12.
	if final.Report == nil {
		t.Fatal("finished study has no report")
	}
	if final.Report.Current.N != n {
		t.Fatalf("Current.N = %d, want %d", final.Report.Current.N, n)
	}
	currents := make([]float64, 0, n)
	for _, id := range final.MemberRuns {
		mr, ok := s.reg.Get(id)
		if !ok || !mr.Converged {
			t.Fatalf("member %s missing or unconverged", id)
		}
		currents = append(currents, mr.Current)
	}
	mean := 0.0
	for _, x := range currents {
		mean += x
	}
	mean /= float64(n)
	varSum := 0.0
	for _, x := range currents {
		varSum += (x - mean) * (x - mean)
	}
	variance := varSum / float64(n-1)
	if relErr(final.Report.Current.Mean, mean) > 1e-12 {
		t.Errorf("mean: reduced %.17g vs serial %.17g", final.Report.Current.Mean, mean)
	}
	if relErr(final.Report.Current.Variance, variance) > 1e-12 {
		t.Errorf("variance: reduced %.17g vs serial %.17g", final.Report.Current.Variance, variance)
	}
	if final.Report.Current.Min == final.Report.Current.Max {
		t.Error("disorder produced identical member currents — profile not applied?")
	}
	if final.Report.DOSMembers == 0 || len(final.Report.DOS) == 0 {
		t.Errorf("DOS reduction empty: members %d, rows %d",
			final.Report.DOSMembers, len(final.Report.DOS))
	}

	// Resubmitting the identical study is answered member-for-member from
	// the content-addressed cache: no additional solver slot runs.
	slotsBefore := s.slotRuns.Load()
	rec2 := postStudy(t, ts, studyRequest{
		Tenant: "lab", Members: n, BaseSeed: 1000, Config: disorderedConfig(0.1),
	}, http.StatusAccepted)
	final2 := waitForStudy(t, s, rec2.ID, StatusDone)
	if got := s.slotRuns.Load(); got != slotsBefore {
		t.Fatalf("resubmission consumed %d solver slots, want 0", got-slotsBefore)
	}
	if final2.CacheHits != n {
		t.Fatalf("resubmission CacheHits = %d, want %d", final2.CacheHits, n)
	}
	if relErr(final2.Report.Current.Mean, final.Report.Current.Mean) > 0 {
		t.Errorf("cached rerun mean %.17g != original %.17g",
			final2.Report.Current.Mean, final.Report.Current.Mean)
	}
}

// TestStudyWarmStartLineage runs members serially on one slot so every
// member after the first finds a converged sibling Σ≷ state in the
// cache (same WarmKey family — the disorder seed is excluded from the
// family hash).
func TestStudyWarmStartLineage(t *testing.T) {
	const n = 4
	s, _ := newService(t, Config{Slots: 1, QueueCap: 32})

	rec, _, err := s.submitStudy(studyRequest{
		Tenant: "lab", Members: n, BaseSeed: 7, Config: disorderedConfig(0.2),
	})
	if err != nil {
		t.Fatal(err)
	}
	final := waitForStudy(t, s, rec.ID, StatusDone)
	if final.WarmStarts != n-1 {
		t.Fatalf("WarmStarts = %d, want %d (members 2..%d seed from sibling states)",
			final.WarmStarts, n-1, n)
	}
	for i, id := range final.MemberRuns {
		mr, _ := s.reg.Get(id)
		if i == 0 && mr.WarmStart {
			t.Error("first member warm-started with an empty cache")
		}
		if i > 0 && !mr.WarmStart {
			t.Errorf("member %d (%s) did not warm-start", i, id)
		}
	}
}

// TestStudyStream exercises the SSE surface: the live submit stream
// carries study/member/done frames, and the replay of the finished
// study reproduces the same sequence.
func TestStudyStream(t *testing.T) {
	const n = 3
	s, ts := newService(t, Config{Slots: 2, QueueCap: 32})

	body, _ := json.Marshal(studyRequest{
		Tenant: "lab", Members: n, BaseSeed: 42, Config: disorderedConfig(0.15),
	})
	resp, err := http.Post(ts.URL+"/v1/ensembles?stream=sse", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	events, id := drainStudyStream(t, resp.Body)
	if events["study"] != 1 || events["done"] != 1 || events["member"] != n {
		t.Fatalf("live stream frames = %v, want 1 study / %d member / 1 done", events, n)
	}

	// Replay of the finished study yields the identical frame shape.
	waitForStudy(t, s, id, StatusDone)
	resp2, err := http.Get(ts.URL + "/v1/ensembles/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	replay, _ := drainStudyStream(t, resp2.Body)
	if replay["study"] != 1 || replay["done"] != 1 || replay["member"] != n {
		t.Fatalf("replay frames = %v, want 1 study / %d member / 1 done", replay, n)
	}

	// The report endpoint renders all three formats.
	for _, format := range []string{"text", "json", "csv"} {
		r3, err := http.Get(ts.URL + "/v1/ensembles/" + id + "/report?format=" + format)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(r3.Body)
		r3.Body.Close()
		if r3.StatusCode != http.StatusOK || len(b) == 0 {
			t.Fatalf("report format=%s: status %d, %d bytes", format, r3.StatusCode, len(b))
		}
	}
}

// drainStudyStream counts SSE frames by event name and extracts the
// study id from the first frame.
func drainStudyStream(t *testing.T, r io.Reader) (map[string]int, string) {
	t.Helper()
	events := map[string]int{}
	var id string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var event string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
			events[event]++
		case strings.HasPrefix(line, "data: ") && event == "study" && id == "":
			var rec StudyRecord
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &rec); err != nil {
				t.Fatalf("decode study frame: %v", err)
			}
			id = rec.ID
		}
	}
	return events, id
}

// TestStudyValidation covers the request-shape rejections.
func TestStudyValidation(t *testing.T) {
	_, ts := newService(t, Config{Slots: 1, QueueCap: 8})

	for name, req := range map[string]studyRequest{
		"zero members": {Members: 0, Config: disorderedConfig(0.1)},
		"over cap":     {Members: maxStudyMembers + 1, Config: disorderedConfig(0.1)},
		"no profile":   {Members: 4, Config: convergingConfig(0.1)},
	} {
		body, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/v1/ensembles", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestStudyCancel cancels a running study and expects a terminal
// cancelled record without leaked members.
func TestStudyCancel(t *testing.T) {
	s, ts := newService(t, Config{Slots: 1, QueueCap: 64})

	cfg := disorderedConfig(0.3)
	cfg.MaxIterations = 60
	cfg.Tolerance = 1e-12 // members hold their slot for the full budget
	rec := postStudy(t, ts, studyRequest{
		Tenant: "lab", Members: 6, BaseSeed: 1, Config: cfg,
	}, http.StatusAccepted)
	waitForStudy(t, s, rec.ID, StatusRunning)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/ensembles/"+rec.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE study = %d, want 200", resp.StatusCode)
	}
	final := waitForStudy(t, s, rec.ID, StatusCancelled)
	if final.Finished.IsZero() {
		t.Error("cancelled study has no finish stamp")
	}
}

// TestStudyPersistence restarts the registry directory and expects the
// finished study (and its lineage) to survive, with member listing
// filtered by study id.
func TestStudyPersistence(t *testing.T) {
	dir := t.TempDir()
	s1, _ := newService(t, Config{Slots: 2, QueueCap: 32, DataDir: dir})
	rec, _, err := s1.submitStudy(studyRequest{
		Tenant: "lab", Members: 3, BaseSeed: 5, Config: disorderedConfig(0.25),
	})
	if err != nil {
		t.Fatal(err)
	}
	final := waitForStudy(t, s1, rec.ID, StatusDone)
	s1.Close()

	s2, err := New(Config{Slots: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, ok := s2.reg.GetStudy(final.ID)
	if !ok {
		t.Fatalf("study %s lost across restart", final.ID)
	}
	if got.Status != StatusDone || got.Report == nil {
		t.Fatalf("reloaded study: status %s, report %v", got.Status, got.Report != nil)
	}
	if len(s2.reg.List(Query{Study: final.ID, Limit: 10})) != 3 {
		t.Error("member lineage lost across restart")
	}
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}
