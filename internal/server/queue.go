package server

import (
	"errors"
	"sync"
)

// ErrQueueFull is the admission-control signal: the bounded queue is at
// capacity and the caller must shed load (HTTP 429 + Retry-After).
var ErrQueueFull = errors.New("server: admission queue full")

// queue is the fair-share admission queue in front of the solver slots.
// Jobs wait in one FIFO per tenant, ordered by priority within the
// tenant (higher first, stable for equal priorities); dispatch picks the
// tenant with the fewest jobs currently occupying slots, breaking ties
// toward the least recently served tenant — so a tenant flooding the
// queue cannot starve a light tenant, but idle capacity still goes to
// whoever has work.
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	cap    int
	closed bool

	size     int
	pending  map[string][]*job
	inflight map[string]int   // jobs of this tenant currently holding a slot
	served   map[string]int64 // tick of the tenant's most recent dispatch
	tick     int64
}

func newQueue(capacity int) *queue {
	q := &queue{
		cap:      capacity,
		pending:  map[string][]*job{},
		inflight: map[string]int{},
		served:   map[string]int64{},
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push admits a job or fails with ErrQueueFull. Within the tenant's
// FIFO the job is placed after the last job of equal or higher priority.
func (q *queue) Push(j *job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return errors.New("server: queue closed")
	}
	if q.size >= q.cap {
		return ErrQueueFull
	}
	list := q.pending[j.tenant]
	i := len(list)
	for i > 0 && list[i-1].priority < j.priority {
		i--
	}
	list = append(list, nil)
	copy(list[i+1:], list[i:])
	list[i] = j
	q.pending[j.tenant] = list
	q.size++
	q.cond.Signal()
	return nil
}

// Pop blocks until a job is available under the fair-share policy (or
// the queue is closed: ok = false). The popped job counts against its
// tenant's inflight share until Done is called.
func (q *queue) Pop() (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if t := q.pick(); t != "" {
			list := q.pending[t]
			j := list[0]
			copy(list, list[1:])
			list = list[:len(list)-1]
			if len(list) == 0 {
				delete(q.pending, t)
			} else {
				q.pending[t] = list
			}
			q.size--
			q.inflight[t]++
			q.tick++
			q.served[t] = q.tick
			return j, true
		}
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
}

// pick chooses the tenant to serve next; "" when nothing is pending.
func (q *queue) pick() string {
	best := ""
	for t, list := range q.pending {
		if len(list) == 0 {
			continue
		}
		if best == "" || q.before(t, best) {
			best = t
		}
	}
	return best
}

// before orders tenants for dispatch: fewer slots in use first, then
// least recently served, then name — a deterministic total order.
func (q *queue) before(a, b string) bool {
	if q.inflight[a] != q.inflight[b] {
		return q.inflight[a] < q.inflight[b]
	}
	if q.served[a] != q.served[b] {
		return q.served[a] < q.served[b]
	}
	return a < b
}

// Done releases the tenant's inflight share after its popped job
// finished (or was skipped).
func (q *queue) Done(tenant string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.inflight[tenant] > 0 {
		q.inflight[tenant]--
	}
}

// Remove deletes a still-queued job by id — cancellation before
// dispatch. Returns the job, or nil if it was already popped (the
// worker owns it now) or never queued.
func (q *queue) Remove(id string) *job {
	q.mu.Lock()
	defer q.mu.Unlock()
	for t, list := range q.pending {
		for i, j := range list {
			if j.id != id {
				continue
			}
			list = append(list[:i], list[i+1:]...)
			if len(list) == 0 {
				delete(q.pending, t)
			} else {
				q.pending[t] = list
			}
			q.size--
			return j
		}
	}
	return nil
}

// Stats reports the queued and running job counts.
func (q *queue) Stats() (queued, running int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, n := range q.inflight {
		running += n
	}
	return q.size, running
}

// Close wakes every blocked Pop. Jobs already queued are still handed
// out (the shutting-down workers finalize them as cancelled); once the
// queue drains, Pop reports ok = false.
func (q *queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}
