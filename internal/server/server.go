// Package server is the multi-tenant simulation service behind the qtd
// daemon: an HTTP/JSON front over the qt facade with SSE streaming of
// the per-iteration telemetry, a fair-share priority queue admitting
// jobs to a bounded pool of solver slots, a content-addressed result
// cache keyed on the canonical qt.RunConfig hash (identical requests are
// answered instantly; near-identical ones warm-start from a cached
// converged Σ≷ state), and a persistent run registry with artifact
// lineage — the paper's data-centric runs turned into registered,
// addressable, reusable artifacts.
package server

import (
	"context"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/qt"
	"repro/internal/report"
)

// Config sizes the service.
type Config struct {
	// Slots bounds the number of concurrently executing solver runs
	// (default: max(2, NumCPU/2)). Each slot multiplexes one qt run,
	// which parallelizes internally.
	Slots int
	// QueueCap bounds the admission queue; beyond it submissions are
	// shed with 429 + Retry-After (default 64).
	QueueCap int
	// CacheCap bounds the content-addressed result cache entries
	// (default 128).
	CacheCap int
	// DataDir persists the run registry ("" = in-memory only).
	DataDir string
	// NoWarmStart disables Σ≷ seeding from the cache (A/B debugging).
	NoWarmStart bool
	// Logger receives the service's structured log records (admission,
	// dispatch, cache hits, sheds, completions), each carrying run-id and
	// tenant attributes. Nil discards them — the in-process test default.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Slots <= 0 {
		c.Slots = max(2, runtime.NumCPU()/2)
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.CacheCap <= 0 {
		c.CacheCap = 128
	}
	return c
}

// job is one admitted (queued or running) run.
type job struct {
	id       string
	tenant   string
	priority int
	cfg      qt.RunConfig // resolved configuration
	key      string
	warmKey  string
	// submitted stamps admission; the queue-wait histogram observes the
	// distance to dispatch.
	submitted time.Time

	ctx    context.Context
	cancel context.CancelFunc

	mu    sync.Mutex
	trace []qt.IterStats
	subs  map[chan qt.IterStats]bool

	// result is the full facade result, set by execute before done is
	// closed (the close is the happens-before edge readers synchronize
	// on). The ensemble runner reads it for the DOS reduction — the
	// registry record only carries scalars.
	result *qt.Result

	done     chan struct{}
	doneOnce sync.Once
}

// publish appends one iteration's telemetry and fans it out to the
// subscribed streams (never blocking the solver: subscriber channels are
// buffered for the full iteration budget).
func (j *job) publish(st qt.IterStats) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.trace = append(j.trace, st)
	for ch := range j.subs {
		select {
		case ch <- st:
		default:
		}
	}
}

// subscribe returns a snapshot of the telemetry so far plus a live
// channel for the rest; the caller must invoke the returned unsubscribe.
func (j *job) subscribe() ([]qt.IterStats, chan qt.IterStats, func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	snap := append([]qt.IterStats(nil), j.trace...)
	n := j.cfg.MaxIterations
	if n <= 0 {
		n = 25
	}
	ch := make(chan qt.IterStats, n+1)
	j.subs[ch] = true
	return snap, ch, func() {
		j.mu.Lock()
		delete(j.subs, ch)
		j.mu.Unlock()
	}
}

// markDone closes the done channel exactly once, after the registry
// record reached its final state.
func (j *job) markDone() { j.doneOnce.Do(func() { close(j.done) }) }

// Server is the in-process service; cmd/qtd wraps it in an http.Server.
type Server struct {
	cfg   Config
	q     *queue
	cache *cache
	reg   *Registry
	mux   *http.ServeMux
	log   *slog.Logger
	met   *metrics

	ctx  context.Context
	stop context.CancelFunc
	wg   sync.WaitGroup

	mu      sync.Mutex
	jobs    map[string]*job      // admitted and not yet finalized
	studies map[string]*studyRun // ensemble studies not yet finalized

	// studyWg tracks study runner goroutines separately from the slot
	// workers: a runner blocks on member jobs, so Close must drain the
	// workers and finalize leftover queued jobs BEFORE waiting on it.
	studyWg sync.WaitGroup

	slotRuns  atomic.Int64 // runs that actually consumed a solver slot
	runNsEWMA atomic.Int64 // smoothed run wall time, feeds Retry-After
}

// New builds the service and starts its solver-slot workers.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	reg, err := OpenRegistry(cfg.DataDir)
	if err != nil {
		return nil, err
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	s := &Server{
		cfg:     cfg,
		q:       newQueue(cfg.QueueCap),
		cache:   newCache(cfg.CacheCap),
		reg:     reg,
		log:     log,
		met:     newMetrics(cfg),
		jobs:    map[string]*job{},
		studies: map[string]*studyRun{},
	}
	s.ctx, s.stop = context.WithCancel(context.Background())
	s.mux = s.routes()
	for i := 0; i < cfg.Slots; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Registry exposes the run registry (read access for tools and tests).
func (s *Server) Registry() *Registry { return s.reg }

// Close cancels every admitted run, stops the workers, and waits for
// them to drain. Safe to call more than once.
func (s *Server) Close() {
	s.stop()    // cancels all job contexts (they derive from s.ctx)
	s.q.Close() // wakes idle workers
	s.wg.Wait()
	// Finalize jobs the workers never popped (queue closed first).
	s.mu.Lock()
	left := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		left = append(left, j)
	}
	s.mu.Unlock()
	for _, j := range left {
		if q := s.q.Remove(j.id); q != nil {
			s.finalizeCancelled(j)
		}
	}
	// Only now can study runners finish: they block on member job done
	// channels, which the finalize loop above closed for never-popped
	// queued members.
	s.studyWg.Wait()
}

// worker is one solver slot: it executes admitted jobs under the
// fair-share dispatch order until the queue closes.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.q.Pop()
		if !ok {
			return
		}
		s.met.queueDepth.With(j.tenant).Add(-1)
		s.met.queueWait.With(j.tenant).Observe(time.Since(j.submitted).Seconds())
		s.log.Info("dispatch", "run", j.id, "tenant", j.tenant,
			"wait_ms", time.Since(j.submitted).Milliseconds())
		s.execute(j)
		s.q.Done(j.tenant)
	}
}

// Stats is the service-level telemetry of /v1/stats.
type Stats struct {
	Queued   int        `json:"queued"`
	Running  int        `json:"running"`
	Slots    int        `json:"slots"`
	SlotRuns int64      `json:"slot_runs"` // runs that consumed a slot (cache hits do not)
	Cache    CacheStats `json:"cache"`
}

// ServiceStats snapshots the queue, slot, and cache counters.
func (s *Server) ServiceStats() Stats {
	queued, running := s.q.Stats()
	return Stats{
		Queued: queued, Running: running,
		Slots: s.cfg.Slots, SlotRuns: s.slotRuns.Load(),
		Cache: s.cache.Stats(),
	}
}

// retryAfter estimates how long a shed client should back off: the
// smoothed run time times the queue depth per slot, floored at 1s.
func (s *Server) retryAfter() time.Duration {
	avg := time.Duration(s.runNsEWMA.Load())
	if avg <= 0 {
		avg = 5 * time.Second
	}
	queued, _ := s.q.Stats()
	d := avg * time.Duration(queued/s.cfg.Slots+1)
	if d < time.Second {
		d = time.Second
	}
	return d
}

func (s *Server) observeRunTime(d time.Duration) {
	prev := s.runNsEWMA.Load()
	if prev == 0 {
		s.runNsEWMA.Store(d.Nanoseconds())
		return
	}
	s.runNsEWMA.Store((3*prev + d.Nanoseconds()) / 4)
}

// submit validates and admits one request. It returns the registry
// record of the outcome: a cached answer (no slot consumed), or a queued
// job (whose handle is returned for streaming/cancellation). studyID,
// when non-empty, stamps the record with its ensemble-study lineage.
// err is ErrQueueFull under backpressure, or a validation error.
func (s *Server) submit(tenant string, priority int, rc qt.RunConfig, studyID string) (Record, *job, error) {
	sim, err := qt.NewFromConfig(rc)
	if err != nil {
		return Record{}, nil, err
	}
	resolved := sim.Config()
	key, warmKey := resolved.Key(), resolved.WarmKey()
	now := time.Now().UTC()

	// Content-addressed fast path: identical resolved configuration.
	if e, ok := s.cache.Get(key); ok {
		s.met.cacheHits.Inc()
		rec := Record{
			ID: s.reg.NewID(), Tenant: tenant, Priority: priority,
			Key: key, WarmKey: warmKey, Config: resolved,
			Status: StatusCached, Submitted: now, Finished: now,
			CacheHit: true, SourceRun: e.RunID, Study: studyID,
			Converged: e.Result.Converged, Iterations: e.Result.Iterations,
			Current: e.Result.Current,
			Report:  e.Report,
		}
		if err := s.reg.Put(rec); err != nil {
			return Record{}, nil, err
		}
		s.log.Info("cache hit", "run", rec.ID, "tenant", tenant, "source", e.RunID)
		return rec, nil, nil
	}

	j := &job{
		id: s.reg.NewID(), tenant: tenant, priority: priority,
		cfg: resolved, key: key, warmKey: warmKey,
		submitted: time.Now(),
		subs:      map[chan qt.IterStats]bool{},
		done:      make(chan struct{}),
	}
	j.ctx, j.cancel = context.WithCancel(s.ctx)

	s.mu.Lock()
	s.jobs[j.id] = j
	s.mu.Unlock()
	if err := s.q.Push(j); err != nil {
		s.removeJob(j.id)
		j.cancel()
		s.met.shed.With(tenant).Inc()
		s.log.Warn("shed", "tenant", tenant, "err", err)
		return Record{}, nil, err
	}
	s.met.cacheMisses.Inc()
	s.met.queueDepth.With(tenant).Add(1)
	s.log.Info("admitted", "run", j.id, "tenant", tenant, "priority", priority)
	rec := Record{
		ID: j.id, Tenant: tenant, Priority: priority,
		Key: key, WarmKey: warmKey, Config: resolved,
		Status: StatusQueued, Submitted: now, Study: studyID,
	}
	if err := s.reg.Put(rec); err != nil {
		return Record{}, nil, err
	}
	return rec, j, nil
}

// jobByID returns the live (not yet finalized) job.
func (s *Server) jobByID(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) removeJob(id string) {
	s.mu.Lock()
	delete(s.jobs, id)
	s.mu.Unlock()
}

// cancelRun cancels a queued or running run. Returns the record and
// whether the id was known.
func (s *Server) cancelRun(id string) (Record, bool) {
	j, live := s.jobByID(id)
	if live {
		if q := s.q.Remove(id); q != nil {
			// Still queued: the worker will never see it — finalize here.
			s.finalizeCancelled(j)
		} else {
			// Running (or being popped): the solver observes the context
			// between iterations and the worker finalizes.
			j.cancel()
		}
	}
	return s.reg.Get(id)
}

// finalizeCancelled marks a never-executed job cancelled. Callers have
// already removed it from the queue, so the depth gauge drops here.
func (s *Server) finalizeCancelled(j *job) {
	s.met.queueDepth.With(j.tenant).Add(-1)
	s.log.Info("cancelled while queued", "run", j.id, "tenant", j.tenant)
	j.cancel()
	if rec, ok := s.reg.Get(j.id); ok {
		rec.Status = StatusCancelled
		rec.Finished = time.Now().UTC()
		s.reg.Put(rec)
	}
	s.removeJob(j.id)
	j.markDone()
}

// execute runs one admitted job on the calling worker's slot.
func (s *Server) execute(j *job) {
	defer j.markDone()
	defer s.removeJob(j.id)
	s.met.slotsBusy.Add(1)
	defer s.met.slotsBusy.Add(-1)

	rec, ok := s.reg.Get(j.id)
	if !ok {
		return
	}
	if j.ctx.Err() != nil {
		rec.Status = StatusCancelled
		rec.Finished = time.Now().UTC()
		s.reg.Put(rec)
		return
	}

	// Warm-start lineage: a converged Σ≷ state of the same bias-family
	// seeds the sequential loop close to its fixed point.
	var extra []qt.Option
	if !s.cfg.NoWarmStart && j.cfg.Ranks == 0 {
		if e, ok := s.cache.Warm(j.warmKey, j.key); ok {
			extra = append(extra, qt.WithWarmStart(e.Result.FinalState))
			rec.WarmStart = true
			rec.SourceRun = e.RunID
			s.met.warmStarts.Inc()
			s.log.Info("warm start", "run", j.id, "tenant", j.tenant, "source", e.RunID)
		}
	}
	sim, err := qt.NewFromConfig(j.cfg, extra...)
	if err != nil {
		rec.Status = StatusFailed
		rec.Error = err.Error()
		rec.Finished = time.Now().UTC()
		s.reg.Put(rec)
		return
	}

	s.slotRuns.Add(1)
	rec.Status = StatusRunning
	rec.Started = time.Now().UTC()
	s.reg.Put(rec)

	start := time.Now()
	run, err := sim.Start(j.ctx)
	if err != nil {
		rec.Status = StatusCancelled
		rec.Finished = time.Now().UTC()
		s.reg.Put(rec)
		return
	}
	for st := range run.Stats() {
		j.publish(st)
	}
	res, err := run.Wait()
	wall := time.Since(start)
	s.observeRunTime(wall)
	j.result = res // published to waiters by the deferred markDone

	rec.Finished = time.Now().UTC()
	rec.WallNs = wall.Nanoseconds()
	if res != nil {
		rec.Converged = res.Converged
		rec.Iterations = res.Iterations
		rec.Current = res.Current
	}
	switch {
	case err == nil:
		rec.Status = StatusDone
		rep := report.NewRun(sim, res, kernelName(j.cfg), wall.Nanoseconds())
		if j.cfg.Ranks > 0 {
			rep.Schedule = scheduleName(j.cfg)
		}
		rec.Report = rep
		if res.Converged {
			s.cache.Put(&cacheEntry{
				Key: j.key, WarmKey: j.warmKey, RunID: j.id,
				Config: j.cfg, Result: res, Report: rep,
			})
		}
	case j.ctx.Err() != nil:
		rec.Status = StatusCancelled
	default:
		rec.Status = StatusFailed
		rec.Error = err.Error()
	}
	s.reg.Put(rec)
	if res != nil && res.Spans != nil {
		if err := s.reg.PutTrace(j.id, res.Spans); err != nil {
			s.log.Warn("trace store failed", "run", j.id, "err", err)
		}
	}
	s.met.observeRun(j.tenant, rec.Status, wall.Seconds(), res)
	s.log.Info("finished", "run", j.id, "tenant", j.tenant,
		"status", string(rec.Status), "converged", rec.Converged,
		"iterations", rec.Iterations, "wall_ms", wall.Milliseconds(),
		"plan", sim.PlanString())
}

// kernelName is the report label of the configuration's SSE kernel.
func kernelName(rc qt.RunConfig) string {
	if rc.Precision == "mixed" {
		return "mixed"
	}
	if rc.Kernel != "" {
		return rc.Kernel
	}
	return "dace"
}

func scheduleName(rc qt.RunConfig) string {
	if rc.Schedule != "" {
		return rc.Schedule
	}
	return "phases"
}
