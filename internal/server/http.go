package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/qt"
	"repro/internal/report"
)

// submitRequest is the POST /v1/runs body.
type submitRequest struct {
	Tenant   string       `json:"tenant"`
	Priority int          `json:"priority"`
	Config   qt.RunConfig `json:"config"`
}

// ServeHTTP makes the Server an http.Handler (what cmd/qtd mounts).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	mux.HandleFunc("GET /v1/runs", s.handleList)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/runs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/runs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/runs/{id}/report", s.handleReport)
	mux.HandleFunc("GET /v1/runs/{id}/trace", s.handleTrace)
	mux.HandleFunc("POST /v1/ensembles", s.handleSubmitStudy)
	mux.HandleFunc("GET /v1/ensembles", s.handleListStudies)
	mux.HandleFunc("GET /v1/ensembles/{id}", s.handleGetStudy)
	mux.HandleFunc("DELETE /v1/ensembles/{id}", s.handleCancelStudy)
	mux.HandleFunc("GET /v1/ensembles/{id}/stream", s.handleStudyStream)
	mux.HandleFunc("GET /v1/ensembles/{id}/report", s.handleStudyReport)
	mux.Handle("GET /metrics", s.met.reg.Handler())
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.ServiceStats())
}

// handleSubmit admits one run. With ?stream=sse the response is a live
// server-sent event stream whose disconnection cancels the run; without
// it the queued (202) or cached (200) registry record is returned and
// the run proceeds detached.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	if req.Tenant == "" {
		req.Tenant = "anonymous"
	}
	stream := r.URL.Query().Get("stream") == "sse"

	rec, j, err := s.submit(req.Tenant, req.Priority, req.Config, "")
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(int(s.retryAfter().Seconds())))
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if j == nil { // answered from the content-addressed cache
		if stream {
			s.replayStream(w, rec)
			return
		}
		writeJSON(w, http.StatusOK, rec)
		return
	}
	if stream {
		// The submitting client owns the run: hanging up cancels it.
		s.streamJob(w, r, j, true)
		return
	}
	writeJSON(w, http.StatusAccepted, rec)
}

// List bounds: an unqualified GET /v1/runs returns the newest
// defaultListLimit records, and an explicit ?limit= is clamped to
// maxListLimit — the registry can outgrow any single response.
const (
	defaultListLimit = 100
	maxListLimit     = 1000
)

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	qp := r.URL.Query()
	q := Query{
		Tenant:  qp.Get("tenant"),
		Status:  Status(qp.Get("status")),
		Key:     qp.Get("key"),
		WarmKey: qp.Get("warm_key"),
		Study:   qp.Get("study"),
		Limit:   defaultListLimit,
	}
	if v := qp.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, "bad limit %q", v)
			return
		}
		q.Limit = min(n, maxListLimit)
	}
	recs := s.reg.List(q)
	writeJSON(w, http.StatusOK, map[string]any{"runs": recs, "count": len(recs)})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown run %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.cancelRun(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown run %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// handleStream attaches to a run's telemetry without owning it: a
// finished run replays its recorded trace, a live one streams from the
// current iteration on. Disconnecting does not cancel the run.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if j, ok := s.jobByID(id); ok {
		s.streamJob(w, r, j, false)
		return
	}
	rec, ok := s.reg.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown run %q", id)
		return
	}
	s.replayStream(w, rec)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown run %q", r.PathValue("id"))
		return
	}
	if rec.Report == nil {
		writeError(w, http.StatusConflict, "run %s has no report (status %s)", rec.ID, rec.Status)
		return
	}
	f, err := report.ParseFormat(r.URL.Query().Get("format"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Content-Type", f.ContentType())
	report.Write(w, f, rec.Report)
}

// handleTrace serves the Chrome trace-event artifact of a WithTrace run
// (load it in Perfetto / chrome://tracing). 409 distinguishes "run known
// but not traced (or not finished)" from an unknown id.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	b, ok := s.reg.GetTrace(id)
	if !ok {
		if _, known := s.reg.Get(id); known {
			writeError(w, http.StatusConflict,
				"run %s has no trace (submit with config.trace=true and wait for completion)", id)
			return
		}
		writeError(w, http.StatusNotFound, "unknown run %q", id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

// sseHeaders switches the response into a server-sent event stream and
// returns the flusher (nil if the transport cannot stream).
func sseHeaders(w http.ResponseWriter) http.Flusher {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "response writer cannot stream")
		return nil
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	return fl
}

// replayStream renders a finished run as the same frame sequence a live
// stream produces: run, one iter per trace row, done.
func (s *Server) replayStream(w http.ResponseWriter, rec Record) {
	fl := sseHeaders(w)
	if fl == nil {
		return
	}
	report.SSE(w, "run", rec)
	if rec.Report != nil {
		for _, st := range rec.Report.Trace {
			report.SSE(w, "iter", st)
		}
	}
	report.SSE(w, "done", rec)
	fl.Flush()
}

// streamJob streams a live run: a "run" frame with the registry record
// (the client learns the id), "iter" frames as the solver produces them
// (recorded iterations are replayed first), and a terminal "done" frame
// with the final record. When ownCancel is set, the client hanging up
// cancels the run — the submit-and-stream contract.
func (s *Server) streamJob(w http.ResponseWriter, r *http.Request, j *job, ownCancel bool) {
	fl := sseHeaders(w)
	if fl == nil {
		return
	}
	rec, _ := s.reg.Get(j.id)
	report.SSE(w, "run", rec)
	fl.Flush()

	snap, ch, unsub := j.subscribe()
	defer unsub()
	for _, st := range snap {
		report.SSE(w, "iter", st)
	}
	fl.Flush()

	ctx := r.Context()
	for {
		select {
		case st := <-ch:
			report.SSE(w, "iter", st)
			fl.Flush()
		case <-ctx.Done():
			if ownCancel {
				j.cancel()
				// The worker still owns the finalization; wait so the
				// registry reaches its terminal state before we return
				// (the connection is gone — nothing more is written).
				<-j.done
			}
			return
		case <-j.done:
			// Drain iterations that raced the close.
			for {
				select {
				case st := <-ch:
					report.SSE(w, "iter", st)
					continue
				default:
				}
				break
			}
			final, _ := s.reg.Get(j.id)
			report.SSE(w, "done", final)
			fl.Flush()
			return
		}
	}
}

// handleSubmitStudy admits one ensemble study. With ?stream=sse the
// response is a live event stream ("study" admission frame, one "member"
// frame per completed realization, terminal "done" frame with the
// reduced report); disconnecting does NOT cancel the study — a study is
// a batch artifact, not an interactive session. Without streaming the
// queued record is returned with 202.
func (s *Server) handleSubmitStudy(w http.ResponseWriter, r *http.Request) {
	var req studyRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	if req.Tenant == "" {
		req.Tenant = "anonymous"
	}
	rec, st, err := s.submitStudy(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if r.URL.Query().Get("stream") == "sse" {
		s.streamStudy(w, r, st)
		return
	}
	writeJSON(w, http.StatusAccepted, rec)
}

func (s *Server) handleListStudies(w http.ResponseWriter, r *http.Request) {
	qp := r.URL.Query()
	q := StudyQuery{
		Tenant: qp.Get("tenant"),
		Status: Status(qp.Get("status")),
		Limit:  defaultListLimit,
	}
	if v := qp.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, "bad limit %q", v)
			return
		}
		q.Limit = min(n, maxListLimit)
	}
	recs := s.reg.ListStudies(q)
	writeJSON(w, http.StatusOK, map[string]any{"studies": recs, "count": len(recs)})
}

func (s *Server) handleGetStudy(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.reg.GetStudy(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown study %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *Server) handleCancelStudy(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.cancelStudy(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown study %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// handleStudyStream attaches to a study's member-completion feed: a
// finished study replays its recorded member rows, a live one streams
// from the current member on.
func (s *Server) handleStudyStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if st, ok := s.studyByID(id); ok {
		s.streamStudy(w, r, st)
		return
	}
	rec, ok := s.reg.GetStudy(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown study %q", id)
		return
	}
	s.replayStudyStream(w, rec)
}

// handleStudyReport renders the reduced ensemble report in
// text/json/csv; 409 until the study reaches a terminal state.
func (s *Server) handleStudyReport(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.reg.GetStudy(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown study %q", r.PathValue("id"))
		return
	}
	if rec.Report == nil {
		writeError(w, http.StatusConflict, "study %s has no report (status %s)", rec.ID, rec.Status)
		return
	}
	f, err := report.ParseFormat(r.URL.Query().Get("format"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Content-Type", f.ContentType())
	report.Write(w, f, rec.Report)
}

// replayStudyStream renders a finished study as the same frame sequence
// a live stream produces: study, one member row each, done.
func (s *Server) replayStudyStream(w http.ResponseWriter, rec StudyRecord) {
	fl := sseHeaders(w)
	if fl == nil {
		return
	}
	report.SSE(w, "study", rec)
	if rec.Report != nil {
		for _, row := range rec.Report.MemberRows {
			report.SSE(w, "member", row)
		}
	}
	report.SSE(w, "done", rec)
	fl.Flush()
}

// streamStudy streams a live study: a "study" frame with the registry
// record, "member" frames as realizations complete (recorded ones are
// replayed first), and a terminal "done" frame with the final record
// (including the reduced report). Hanging up detaches without
// cancelling — a study is a batch artifact, not an interactive session.
func (s *Server) streamStudy(w http.ResponseWriter, r *http.Request, st *studyRun) {
	fl := sseHeaders(w)
	if fl == nil {
		return
	}
	rec, _ := s.reg.GetStudy(st.id)
	report.SSE(w, "study", rec)
	fl.Flush()

	snap, ch, unsub := st.subscribe(rec.Members)
	defer unsub()
	for _, row := range snap {
		report.SSE(w, "member", row)
	}
	fl.Flush()

	ctx := r.Context()
	for {
		select {
		case row := <-ch:
			report.SSE(w, "member", row)
			fl.Flush()
		case <-ctx.Done():
			return
		case <-st.done:
			for {
				select {
				case row := <-ch:
					report.SSE(w, "member", row)
					continue
				default:
				}
				break
			}
			final, _ := s.reg.GetStudy(st.id)
			report.SSE(w, "done", final)
			fl.Flush()
			return
		}
	}
}
