// Package stream is a discrete-event scheduler modelling the automatic
// copy/compute pipelining of §7.1.3: DaCe schedules independent SDFG nodes
// onto CUDA streams, overlapping host↔device copies with kernels. The GPU
// is modelled as one copy engine and one compute engine; a stream is a
// FIFO chain of tasks, and tasks from different streams may overlap across
// engines — exactly the CUDA semantics that produce Table 6's shape, where
// going from 1 stream (fully serial) to 32 streams (fully overlapped)
// recovers the copy time.
package stream

import "sort"

// Task is one unit of GF work: an input copy, a kernel, an output copy.
type Task struct {
	CopyIn  float64 // seconds on the copy engine before compute
	Compute float64 // seconds on the compute engine
	CopyOut float64 // seconds on the copy engine after compute
}

// Makespan simulates executing tasks round-robin over `streams` streams
// and returns the total completion time.
//
// Engine model: the copy engine and the compute engine each execute one
// operation at a time. Operations within a stream are ordered; operations
// from different streams compete for the engines in issue order.
func Makespan(tasks []Task, streams int) float64 {
	if streams < 1 {
		streams = 1
	}
	type op struct {
		isCopy bool
		dur    float64
	}
	// Build per-stream FIFO queues (round-robin task assignment).
	queues := make([][]op, streams)
	for i, t := range tasks {
		s := i % streams
		for _, o := range []op{{true, t.CopyIn}, {false, t.Compute}, {true, t.CopyOut}} {
			if o.dur > 0 {
				queues[s] = append(queues[s], o)
			}
		}
	}
	streamTime := make([]float64, streams)
	head := make([]int, streams)
	var copyFree, computeFree float64
	for {
		// Greedy list scheduling: among every stream's next operation,
		// run the one that can start earliest (the hardware engines pick
		// whichever queued operation is ready first).
		best := -1
		bestStart := 0.0
		for s := 0; s < streams; s++ {
			if head[s] >= len(queues[s]) {
				continue
			}
			o := queues[s][head[s]]
			start := streamTime[s]
			if o.isCopy {
				if copyFree > start {
					start = copyFree
				}
			} else if computeFree > start {
				start = computeFree
			}
			if best < 0 || start < bestStart {
				best, bestStart = s, start
			}
		}
		if best < 0 {
			break
		}
		o := queues[best][head[best]]
		head[best]++
		end := bestStart + o.dur
		if o.isCopy {
			copyFree = end
		} else {
			computeFree = end
		}
		streamTime[best] = end
	}
	var endT float64
	for _, t := range streamTime {
		if t > endT {
			endT = t
		}
	}
	return endT
}

// Table6Row is one column of the CUDA-stream sweep.
type Table6Row struct {
	Streams int
	TimeSec float64
	Speedup float64 // vs 1 stream
}

// GFTaskSet builds a synthetic electron-GF workload shaped like the
// paper's: n independent (kz, E) points whose copies are a small fraction
// of the compute (Table 6 recovers ~7.5% going 1 → 32 streams, so copies
// are ≈8% of the serial time).
func GFTaskSet(n int, computeSec, copyFraction float64) []Task {
	per := computeSec / float64(n)
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i] = Task{
			CopyIn:  per * copyFraction * 0.6,
			Compute: per,
			CopyOut: per * copyFraction * 0.4,
		}
	}
	return tasks
}

// Sweep evaluates the makespan for each stream count, mirroring Table 6.
func Sweep(tasks []Task, streamCounts []int) []Table6Row {
	counts := append([]int(nil), streamCounts...)
	sort.Ints(counts)
	base := Makespan(tasks, 1)
	out := make([]Table6Row, 0, len(counts))
	for _, s := range counts {
		t := Makespan(tasks, s)
		out = append(out, Table6Row{Streams: s, TimeSec: t, Speedup: base / t})
	}
	return out
}
