package stream

import (
	"math"
	"testing"
)

func TestSingleStreamIsSerial(t *testing.T) {
	tasks := []Task{{1, 2, 1}, {1, 2, 1}}
	if got := Makespan(tasks, 1); math.Abs(got-8) > 1e-12 {
		t.Fatalf("serial makespan = %g, want 8", got)
	}
}

func TestTwoStreamsOverlapCopyAndCompute(t *testing.T) {
	// With two streams the copy of task 2 overlaps the compute of task 1.
	tasks := []Task{{1, 2, 0}, {1, 2, 0}}
	serial := Makespan(tasks, 1)  // 1+2+1+2 = 6
	overlap := Makespan(tasks, 2) // 1 + max-chain = 1+2+2 = 5
	if overlap >= serial {
		t.Fatalf("streams should overlap: %g vs %g", overlap, serial)
	}
	if math.Abs(overlap-5) > 1e-12 {
		t.Fatalf("two-stream makespan = %g, want 5", overlap)
	}
}

func TestMoreStreamsNeverSlower(t *testing.T) {
	tasks := GFTaskSet(64, 10, 0.08)
	prev := math.Inf(1)
	for _, s := range []int{1, 2, 4, 8, 16, 32} {
		got := Makespan(tasks, s)
		if got > prev+1e-9 {
			t.Fatalf("%d streams slower than fewer (%g > %g)", s, got, prev)
		}
		prev = got
	}
}

func TestComputeBoundLimit(t *testing.T) {
	// With copies ≪ compute, infinite streams approach the compute total.
	tasks := GFTaskSet(32, 10, 0.08)
	best := Makespan(tasks, 32)
	if best < 10 {
		t.Fatalf("cannot beat the compute-engine total: %g < 10", best)
	}
	if best > 10*1.05 {
		t.Fatalf("32 streams should hide nearly all copies: %g", best)
	}
}

func TestTable6Shape(t *testing.T) {
	// The paper's Table 6: 10.07 s at 1 stream → 9.32 s at 32 streams
	// (≈7.5% gain) — copies are ~8% of the serial time.
	tasks := GFTaskSet(64, 9.32, 0.082)
	rows := Sweep(tasks, []int{1, 2, 4, 16, 32})
	if rows[0].Streams != 1 || rows[len(rows)-1].Streams != 32 {
		t.Fatal("sweep ordering")
	}
	serial := rows[0].TimeSec
	best := rows[len(rows)-1].TimeSec
	gain := (serial - best) / serial
	if gain < 0.05 || gain > 0.10 {
		t.Fatalf("1→32 stream gain %.3f, paper shape is ≈0.075", gain)
	}
	// Most of the gain needs more than 16 streams in the paper; at least
	// assert monotonicity and a residual gain from 16 to 32.
	var at16, at32 float64
	for _, r := range rows {
		if r.Streams == 16 {
			at16 = r.TimeSec
		}
		if r.Streams == 32 {
			at32 = r.TimeSec
		}
	}
	if at32 > at16 {
		t.Fatal("32 streams should not be slower than 16")
	}
}

func TestZeroDurationOpsSkipped(t *testing.T) {
	tasks := []Task{{0, 5, 0}}
	if got := Makespan(tasks, 4); got != 5 {
		t.Fatalf("makespan = %g, want 5", got)
	}
}

func TestStreamsClampedToOne(t *testing.T) {
	tasks := []Task{{1, 1, 1}}
	if Makespan(tasks, 0) != Makespan(tasks, 1) {
		t.Fatal("stream count must clamp to 1")
	}
}
