package sse

import (
	"repro/internal/device"
	"repro/internal/half"
	"repro/internal/linalg"
	"repro/internal/tensor"
)

// Mixed is the §5.4 mixed-precision SSE kernel: it runs the DaCe schedule
// with every input tensor (∇H, G≷, D≷) quantized through emulated IEEE
// binary16, reproducing the Tensor-Core data path — fp16 inputs, wide
// accumulation, dynamic per-tensor normalization factors computed from the
// input magnitudes, clamping for out-of-range values, and algebraic
// denormalization of the results.
//
// With Normalize=false the quantization happens at the raw magnitudes, the
// ablation of Fig. 7 "without normalization": the tiny Green's-function
// values fall below the fp16 subnormal floor and the self-consistent loop
// converges to a visibly wrong current.
// Atoms/ELo/EHi carry the same tile restriction as DaCe (nil/0 = full),
// so a distributed rank can run its Ta×TE tile of the exchange in mixed
// precision; summing restricted outputs over a partition of
// atoms×energies reproduces the full mixed result.
type Mixed struct {
	// Normalize enables the dynamic normalization factors (§5.4). The
	// paper's default; disable only for the Fig. 7 ablation.
	Normalize bool
	// Atoms restricts the kernel to a subset of atoms (nil = all).
	Atoms []int
	// ELo, EHi restrict the owned electron energy range (0, 0 = full).
	ELo, EHi int
}

// Name implements Kernel.
func (m Mixed) Name() string {
	if m.Normalize {
		return "Mixed-16 (normalized)"
	}
	return "Mixed-16 (unnormalized)"
}

// Compute implements Kernel.
func (m Mixed) Compute(in *Input) *Output {
	// Per-tensor normalization factors from input magnitudes.
	sG, sD, sH := 1.0, 1.0, 1.0
	if m.Normalize {
		sG = half.ScaleFor(maxAbs2(in.GL.Data, in.GG.Data))
		sD = half.ScaleFor(maxAbs2(in.DL.Data, in.DG.Data))
		sH = half.ScaleFor(maxGradH(in.Dev))
	}

	// Quantize the Green's functions into scaled fp16-valued copies.
	qIn := &Input{
		Dev: in.Dev,
		GL:  quantizeElectron(in.GL, sG),
		GG:  quantizeElectron(in.GG, sG),
		DL:  quantizePhonon(in.DL, sD),
		DG:  quantizePhonon(in.DG, sD),
	}

	// Quantize the coupling matrices once up front.
	type pd struct{ a, b, i int }
	qGrad := make(map[pd]*linalg.Matrix)
	for a := 0; a < in.Dev.P.Na; a++ {
		for _, b := range in.Dev.Neigh[a] {
			for i := 0; i < 3; i++ {
				g := in.Dev.GradH(a, b, i)
				qg := linalg.New(g.Rows, g.Cols)
				for e, v := range g.Data {
					qg.Data[e] = quantizeC(v, sH)
				}
				qGrad[pd{a, b, i}] = qg
			}
		}
	}

	q := &quantizer{
		gradH: func(a, b, i int) *linalg.Matrix { return qGrad[pd{a, b, i}] },
		gBlock: func(lesser bool, ik, ie, a int) []complex128 {
			if lesser {
				return qIn.GL.Block(ik, ie, a)
			}
			return qIn.GG.Block(ik, ie, a)
		},
		weights: func(wl, wg *[9]complex128) {}, // D̃ built from quantized D already
		// Σ carries ∇H·G·∇H·D̃ → sH²·sG·sD; Π carries ∇H·G·∇H·G → sH²·sG².
		denormSigma: complex(1/(sH*sH*sG*sD), 0),
		denormPi:    complex(1/(sH*sH*sG*sG), 0),
	}
	out := daceCompute(qIn, q, (DaCe{Atoms: m.Atoms, ELo: m.ELo, EHi: m.EHi}).restrict(qIn))
	// Halve the byte estimate for the quantized inputs (fp16 vs fp64),
	// reflecting the reduced memory traffic of SSE-16 in Fig. 10.
	out.Stats.BytesMoved -= (in.GL.Bytes() + in.GG.Bytes() + in.DL.Bytes() + in.DG.Bytes()) * 3 / 4
	return out
}

func quantizeC(v complex128, scale float64) complex128 {
	return complex(half.Quantize(real(v)*scale), half.Quantize(imag(v)*scale))
}

func quantizeElectron(t *tensor.Electron, scale float64) *tensor.Electron {
	q := tensor.NewElectron(t.Nkz, t.NE, t.Na, t.Norb)
	for i, v := range t.Data {
		q.Data[i] = quantizeC(v, scale)
	}
	return q
}

func quantizePhonon(t *tensor.Phonon, scale float64) *tensor.Phonon {
	q := tensor.NewPhonon(t.Nqz, t.Nw, t.Na, t.NbP1, t.N3D)
	for i, v := range t.Data {
		q.Data[i] = quantizeC(v, scale)
	}
	return q
}

func maxAbs2(a, b []complex128) float64 {
	m := half.MaxAbsComplex(a)
	if m2 := half.MaxAbsComplex(b); m2 > m {
		m = m2
	}
	return m
}

func maxGradH(d *device.Device) float64 {
	var m float64
	for a := 0; a < d.P.Na; a++ {
		for _, b := range d.Neigh[a] {
			for i := 0; i < 3; i++ {
				if x := d.GradH(a, b, i).MaxAbs(); x > m {
					m = x
				}
			}
		}
	}
	return m
}
