package sse

import (
	"sync/atomic"

	"repro/internal/batch"
	"repro/internal/linalg"
)

// DaCe is the data-centric SSE kernel after the Fig. 6 transformation
// chain: ❶ map fission materializes the ∇H·G≷ products as transients,
// ❷ the data layout places the energy axis contiguous ("constant stride"),
// ❸ the accumulated products collapse into strided-batched multiplications
// with a fixed right operand (SBSMM), and ❹ the maps are fused back per
// atom. The result is bit-wise the same self-energies as OMEN with ~6·Nω
// fewer matrix multiplications; the surviving work is scalar AXPY streams,
// which is why SSE lands in the memory-bound region of the roofline
// (Fig. 10).
// Atoms optionally restricts the kernel to a subset of atoms (nil = all):
// Σ≷_aa and the Π≷_a* blocks are produced only for listed atoms. ELo/EHi
// restrict the electron energy range [ELo, EHi) owned by this instance
// (0,0 = full range): Σ≷ is written only at owned energies and Π≷ sums
// only over pairs whose base energy is owned. Together these express the
// Ta×TE tile of the communication-avoiding decomposition (Fig. 5, right);
// summing outputs over a partition of atoms×energies reproduces the full
// result.
type DaCe struct {
	Atoms    []int
	ELo, EHi int
}

// Name implements Kernel.
func (DaCe) Name() string { return "DaCe" }

// Compute implements Kernel.
func (d DaCe) Compute(in *Input) *Output {
	return daceCompute(in, nil, d.restrict(in))
}

// restrict normalizes the tile description.
func (d DaCe) restrict(in *Input) *restriction {
	r := &restriction{atoms: d.Atoms, elo: d.ELo, ehi: d.EHi}
	if r.atoms == nil {
		r.atoms = make([]int, in.GL.Na)
		for i := range r.atoms {
			r.atoms[i] = i
		}
	}
	if r.ehi <= 0 {
		r.ehi = in.GL.NE
	}
	return r
}

// restriction is the resolved tile: the atom list and owned energy range.
type restriction struct {
	atoms    []int
	elo, ehi int
}

// transient holds the ∇iH·G≷ products for one ordered pair:
// layout [3 directions][Nkz][NE][Norb²] with the energy axis contiguous
// per direction/momentum — the step-❷ data layout.
type transient struct {
	data    []complex128
	nkz, ne int
	bl      int
}

func newTransient(nkz, ne, bl int) *transient {
	return &transient{data: make([]complex128, 3*nkz*ne*bl), nkz: nkz, ne: ne, bl: bl}
}

func (t *transient) block(i, ik, ie int) []complex128 {
	o := ((i*t.nkz+ik)*t.ne + ie) * t.bl
	return t.data[o : o+t.bl]
}

// eRow returns the contiguous [NE][Norb²] row for (direction, momentum) —
// the strided batch the SBSMM operates on.
func (t *transient) eRow(i, ik int) []complex128 {
	o := (i*t.nkz + ik) * t.ne * t.bl
	return t.data[o : o+t.ne*t.bl]
}

// quantizer optionally maps tensors into emulated fp16 before use; nil
// means full double precision. It is how the Mixed kernel reuses the DaCe
// schedule.
type quantizer struct {
	gradH   func(a, b, i int) *linalg.Matrix
	gBlock  func(lesser bool, ik, ie, a int) []complex128
	weights func(wl, wg *[9]complex128)
	// denorm rescales the final accumulations (inverse normalization).
	denormSigma complex128
	denormPi    complex128
}

func daceCompute(in *Input, q *quantizer, restr *restriction) *Output {
	if restr == nil {
		restr = (DaCe{}).restrict(in)
	}
	out := newOutput(in)
	p := in.Dev.P
	norb := p.Norb
	bl := norb * norb
	nw := p.Nomega
	nkz, ne := p.Nkz, p.NE
	prefS := prefSigma(p)
	prefP := prefPi(p)
	if q != nil {
		prefS *= q.denormSigma
		prefP *= q.denormPi
	}
	gradH := in.Dev.GradH
	gBlock := func(lesser bool, ik, ie, a int) []complex128 {
		if lesser {
			return in.GL.Block(ik, ie, a)
		}
		return in.GG.Block(ik, ie, a)
	}
	if q != nil {
		gradH = q.gradH
		gBlock = q.gBlock
	}

	var matmuls, scalarOps atomic.Int64

	parallelAtoms(len(restr.atoms), func(ai int) {
		a := restr.atoms[ai]
		var wl, wg [9]complex128
		var localMuls, localScalar int64
		// Per-pair transients and accumulators, reused across neighbours.
		pLab := newTransient(nkz, ne, bl) // ∇iH_ab·G<_bb
		pGab := newTransient(nkz, ne, bl) // ∇iH_ab·G>_bb
		pLba := newTransient(nkz, ne, bl) // ∇iH_ba·G<_aa
		pGba := newTransient(nkz, ne, bl) // ∇iH_ba·G>_aa
		vL := newTransient(nkz, ne, bl)   // Σ-stage accumulators, per j
		vG := newTransient(nkz, ne, bl)
		cBuf := make([]complex128, ne*bl) // SBSMM output row
		// Loop-hoisted operand/destination headers, rebound to each block's
		// backing slice: the innermost (i, kz, E) iteration used to allocate
		// four fresh FromSlice headers per neighbour per point, pure GC churn
		// around zero-copy views.
		gm := &linalg.Matrix{Rows: norb, Cols: norb}
		pm := &linalg.Matrix{Rows: norb, Cols: norb}

		for slotAB, b := range in.Dev.Neigh[a] {
			slotBA := in.Dev.NeighbourSlot(b, a)

			// ── Stage ❶: map fission — materialize the ∇H·G transients.
			for i := 0; i < 3; i++ {
				gab := gradH(a, b, i)
				gba := gradH(b, a, i)
				for ik := 0; ik < nkz; ik++ {
					for ie := 0; ie < ne; ie++ {
						gm.Data = gBlock(true, ik, ie, b)
						pm.Data = pLab.block(i, ik, ie)
						linalg.GEMM(1, gab, linalg.NoTrans, gm, linalg.NoTrans, 0, pm)
						gm.Data = gBlock(false, ik, ie, b)
						pm.Data = pGab.block(i, ik, ie)
						linalg.GEMM(1, gab, linalg.NoTrans, gm, linalg.NoTrans, 0, pm)
						gm.Data = gBlock(true, ik, ie, a)
						pm.Data = pLba.block(i, ik, ie)
						linalg.GEMM(1, gba, linalg.NoTrans, gm, linalg.NoTrans, 0, pm)
						gm.Data = gBlock(false, ik, ie, a)
						pm.Data = pGba.block(i, ik, ie)
						linalg.GEMM(1, gba, linalg.NoTrans, gm, linalg.NoTrans, 0, pm)
						localMuls += 4
					}
				}
			}

			// ── Stage ❷: ω-stencil accumulation with the energy axis
			// contiguous. V_j(kz,E) gathers every (qz, ω, i) contribution
			// as scalar AXPYs; the matrix multiplications by ∇jH_ba are
			// deferred to stage ❸.
			zero(vL.data)
			zero(vG.data)
			for iq := 0; iq < nkz; iq++ {
				for m := 1; m <= nw; m++ {
					dTilde(in.DL, in.DG, iq, m-1, a, b, slotAB, slotBA, &wl, &wg)
					if q != nil {
						q.weights(&wl, &wg)
					}
					for ik := 0; ik < nkz; ik++ {
						ikq := ((ik-iq)%nkz + nkz) % nkz
						for i := 0; i < 3; i++ {
							for j := 0; j < 3; j++ {
								wle, wge := wl[i*3+j], wg[i*3+j]
								if wle == 0 && wge == 0 {
									continue
								}
								for ie := 0; ie < ne; ie++ {
									vLrow := vL.block(j, ik, ie)
									vGrow := vG.block(j, ik, ie)
									if ie-m >= 0 {
										axpyRow(vLrow, wle, pLab.block(i, ikq, ie-m))
										axpyRow(vGrow, wge, pGab.block(i, ikq, ie-m))
									}
									if ie+m < ne {
										axpyRow(vLrow, wge, pLab.block(i, ikq, ie+m))
										axpyRow(vGrow, wle, pGab.block(i, ikq, ie+m))
									}
								}
							}
						}
					}
				}
			}
			localScalar += int64(9*nkz*nkz*nw) * int64(2*ne) * int64(bl) * 8

			// ── Stage ❸: strided-batched SBSMM with fixed right operand
			// ∇jH_ba over the contiguous energy batch, then fused
			// scatter-accumulate into Σ≷ (stage ❹).
			eCount := restr.ehi - restr.elo
			for j := 0; j < 3; j++ {
				gjh := gradH(b, a, j)
				for ik := 0; ik < nkz; ik++ {
					zero(cBuf[:eCount*bl])
					batch.SBSMMFixedB(cBuf[:eCount*bl], vL.eRow(j, ik)[restr.elo*bl:restr.ehi*bl], gjh.Data, norb, eCount)
					localMuls += int64(eCount)
					for ie := restr.elo; ie < restr.ehi; ie++ {
						axpyRow(out.SigL.Block(ik, ie, a), prefS, cBuf[(ie-restr.elo)*bl:(ie-restr.elo+1)*bl])
					}
					zero(cBuf[:eCount*bl])
					batch.SBSMMFixedB(cBuf[:eCount*bl], vG.eRow(j, ik)[restr.elo*bl:restr.ehi*bl], gjh.Data, norb, eCount)
					localMuls += int64(eCount)
					for ie := restr.elo; ie < restr.ehi; ie++ {
						axpyRow(out.SigG.Block(ik, ie, a), prefS, cBuf[(ie-restr.elo)*bl:(ie-restr.elo+1)*bl])
					}
				}
			}

			// ── Π≷ via the same transients: trace contractions replace
			// the OMEN matmul+trace, and the (a,b) kernel feeds both the
			// neighbour block and the diagonal l-sum of Eq. (3).
			for iq := 0; iq < nkz; iq++ {
				for m := 1; m <= nw; m++ {
					piLd := out.PiL.Block(iq, m-1, a, 0)
					piGd := out.PiG.Block(iq, m-1, a, 0)
					piLn := out.PiL.Block(iq, m-1, a, 1+slotAB)
					piGn := out.PiG.Block(iq, m-1, a, 1+slotAB)
					for i := 0; i < 3; i++ {
						for j := 0; j < 3; j++ {
							var sumL, sumG complex128
							for ik := 0; ik < nkz; ik++ {
								ikpq := (ik + iq) % nkz
								eMax := restr.ehi
								if ne-m < eMax {
									eMax = ne - m
								}
								for ie := restr.elo; ie < eMax; ie++ {
									// tr[(∇iH_ba·G≷_aa(E+ω))·(∇jH_ab·G≶_bb(E))]
									sumL += traceDot(pLba.block(i, ikpq, ie+m), pGab.block(j, ik, ie), norb)
									sumG += traceDot(pGba.block(i, ikpq, ie+m), pLab.block(j, ik, ie), norb)
								}
							}
							piLd[i*3+j] += prefP * sumL
							piGd[i*3+j] += prefP * sumG
							piLn[i*3+j] += prefP * sumL
							piGn[i*3+j] += prefP * sumG
						}
					}
				}
			}
			localScalar += int64(9*nkz*nkz*nw) * int64(ne) * int64(bl) * 16
		}
		matmuls.Add(localMuls)
		scalarOps.Add(localScalar)
	})

	n3 := int64(norb) * int64(norb) * int64(norb)
	out.Stats = Stats{
		MatMuls:   matmuls.Load(),
		Flops:     matmuls.Load() * 8 * n3,
		ScalarOps: scalarOps.Load(),
		BytesMoved: in.GL.Bytes() + in.GG.Bytes() + in.DL.Bytes() + in.DG.Bytes() +
			out.SigL.Bytes() + out.SigG.Bytes() + out.PiL.Bytes() + out.PiG.Bytes(),
	}
	return out
}

// traceDot computes tr(X·Y) for row-major n×n blocks.
func traceDot(x, y []complex128, n int) complex128 {
	var t complex128
	for r := 0; r < n; r++ {
		xr := x[r*n : (r+1)*n]
		for s, xv := range xr {
			t += xv * y[s*n+r]
		}
	}
	return t
}

func axpyRow(dst []complex128, s complex128, src []complex128) {
	for i, v := range src {
		dst[i] += s * v
	}
}

func zero(v []complex128) {
	for i := range v {
		v[i] = 0
	}
}
